#include "obs/trace.h"

#include <string>
#include <utility>

namespace gknn::obs {

std::string_view PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kExpand:
      return "expand";
    case Phase::kClean:
      return "clean";
    case Phase::kSdist:
      return "sdist";
    case Phase::kTopk:
      return "topk";
    case Phase::kUnresolved:
      return "unresolved";
    case Phase::kRefine:
      return "refine";
    case Phase::kFallback:
      return "fallback";
    case Phase::kDrain:
      return "drain";
  }
  return "unknown";
}

#if GKNN_OBS

Tracer::Tracer(MetricRegistry* registry, const Clock* clock,
               size_t ring_capacity)
    : registry_(registry),
      clock_(clock != nullptr ? clock : MonotonicClock::Get()),
      ring_capacity_(ring_capacity),
      queries_total_(registry->GetCounter("gknn_queries_total")),
      query_errors_total_(registry->GetCounter("gknn_query_errors_total")),
      query_fallbacks_total_(
          registry->GetCounter("gknn_query_fallbacks_total")),
      query_device_errors_total_(
          registry->GetCounter("gknn_query_device_errors_total")),
      cells_examined_total_(
          registry->GetCounter("gknn_query_cells_examined_total")),
      messages_deduped_total_(
          registry->GetCounter("gknn_messages_deduped_total")),
      query_seconds_(registry->GetHistogram("gknn_query_seconds")) {
  for (size_t i = 0; i < kNumPhases; ++i) {
    std::string name = "gknn_query_phase_seconds{phase=\"";
    name += PhaseName(static_cast<Phase>(i));
    name += "\"}";
    phase_seconds_[i] = registry->GetHistogram(name);
  }
}

void Tracer::FinishQuery(QueryTraceRecord record) {
  queries_total_->Increment();
  if (!record.ok) query_errors_total_->Increment();
  if (record.cpu_fallback) query_fallbacks_total_->Increment();
  query_device_errors_total_->Add(record.fault_events);
  cells_examined_total_->Add(record.cells_examined);
  messages_deduped_total_->Add(record.messages_deduped);

  // Every finished query observes the total histogram exactly once, so
  // gknn_query_seconds_count equals gknn_queries_total; phase histograms
  // observe only the phases the query actually ran.
  query_seconds_->Observe(record.total_seconds);
  for (size_t i = 0; i < kNumPhases; ++i) {
    if (record.phases_touched & (1u << i)) {
      phase_seconds_[i]->Observe(record.phase_seconds[i]);
    }
  }

  util::lockdep::MutexLock lock(ring_mutex_);
  ring_.push_back(std::move(record));
  while (ring_.size() > ring_capacity_) ring_.pop_front();
}

std::vector<QueryTraceRecord> Tracer::RecentTraces() const {
  util::lockdep::MutexLock lock(ring_mutex_);
  return std::vector<QueryTraceRecord>(ring_.begin(), ring_.end());
}

#else  // !GKNN_OBS

Tracer::Tracer(MetricRegistry* registry, const Clock* clock,
               size_t ring_capacity)
    : registry_(registry),
      clock_(clock != nullptr ? clock : MonotonicClock::Get()),
      ring_capacity_(ring_capacity) {}

void Tracer::FinishQuery(QueryTraceRecord record) { (void)record; }

std::vector<QueryTraceRecord> Tracer::RecentTraces() const { return {}; }

#endif  // GKNN_OBS

}  // namespace gknn::obs
