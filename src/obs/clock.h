#ifndef GKNN_OBS_CLOCK_H_
#define GKNN_OBS_CLOCK_H_

#include <chrono>

namespace gknn::obs {

/// Time source for spans and histograms. Injectable so tests can drive
/// phase timings deterministically (no real-time flakiness): production
/// code uses MonotonicClock, tests hand a FakeClock to the Tracer.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Seconds since an arbitrary fixed epoch; must be monotone.
  virtual double NowSeconds() const = 0;
};

/// Wall clock backed by std::chrono::steady_clock.
class MonotonicClock : public Clock {
 public:
  double NowSeconds() const override {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Process-wide instance (the default clock of every Tracer).
  static const MonotonicClock* Get() {
    static const MonotonicClock clock;
    return &clock;
  }
};

/// Manually advanced clock for deterministic tests.
class FakeClock : public Clock {
 public:
  double NowSeconds() const override { return now_; }

  void Advance(double seconds) { now_ += seconds; }
  void Set(double seconds) { now_ = seconds; }

 private:
  double now_ = 0;
};

}  // namespace gknn::obs

#endif  // GKNN_OBS_CLOCK_H_
