#ifndef GKNN_OBS_TRACE_H_
#define GKNN_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "util/lockdep.h"

namespace gknn::obs {

/// The phases of one kNN/range query, matching the paper's pipeline
/// stages. Spans of distinct phases never overlap (nested work is
/// attributed to exactly one phase), so per-record phase times sum to at
/// most the record's total.
enum class Phase : uint8_t {
  kExpand = 0,    // candidate-cell growth (Alg. 4 ring expansion)
  kClean,         // message cleaning (GPU pipeline or host fold)
  kSdist,         // GPU_SDist region shortest paths
  kTopk,          // GPU_First_k candidate distances + selection
  kUnresolved,    // GPU_Unresolved boundary compaction
  kRefine,        // CPU Refine_kNN bounded Dijkstra
  kFallback,      // CPU-only re-execution after a device error
  kDrain,         // server inbox drain ahead of a query
};

inline constexpr size_t kNumPhases = 8;

std::string_view PhaseName(Phase phase);

/// Everything one query left behind: phase wall times, work counters, the
/// execution path taken, and fault/rollback events. Records land in the
/// Tracer's ring buffer for postmortems and are folded into the
/// MetricRegistry's histograms.
struct QueryTraceRecord {
  uint64_t query_id = 0;
  double t_query = 0;       // the query's logical timestamp
  uint32_t k = 0;           // 0 for range queries
  bool range = false;
  bool ok = true;
  uint32_t results = 0;

  /// Execution: the ExecMode value the answer came from (core::ExecMode
  /// cast to its underlying type; 0 = auto/GPU, 2 = CPU-only).
  uint8_t exec_mode = 0;
  bool cpu_fallback = false;
  uint32_t retries = 0;        // extra server-level GPU attempts
  uint32_t fault_events = 0;   // device errors observed by this query
  uint32_t rollback_events = 0;  // transactional clean rollbacks

  uint32_t cells_examined = 0;
  uint32_t cells_cleaned = 0;
  uint32_t messages_shipped = 0;
  uint32_t messages_deduped = 0;  // shipped minus surviving latest messages

  std::array<double, kNumPhases> phase_seconds{};
  uint32_t phases_touched = 0;  // bitmask; bit i = Phase(i) ran
  double total_seconds = 0;

  double PhaseSum() const {
    double sum = 0;
    for (double s : phase_seconds) sum += s;
    return sum;
  }
};

/// RAII phase span: accumulates clock time into one phase slot of a
/// QueryTraceRecord between construction and Stop()/destruction. A
/// default-constructed (or null-record) span is a no-op, which is how the
/// fallback path suppresses double counting of its inner phases.
class Span {
 public:
  Span() = default;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
#if GKNN_OBS
    Stop();
    sink_ = other.sink_;
    clock_ = other.clock_;
    start_ = other.start_;
    other.sink_ = nullptr;
#else
    (void)other;
#endif
    return *this;
  }
  ~Span() { Stop(); }

  /// Ends the span, adding the elapsed time to its phase. Idempotent.
  void Stop() {
#if GKNN_OBS
    if (sink_ == nullptr) return;
    *sink_ += clock_->NowSeconds() - start_;
    sink_ = nullptr;
#endif
  }

 private:
  friend class Tracer;
  Span(const Clock* clock, double* sink)
#if GKNN_OBS
      : sink_(sink), clock_(clock), start_(clock->NowSeconds())
#endif
  {
#if !GKNN_OBS
    (void)clock;
    (void)sink;
#endif
  }

#if GKNN_OBS
  double* sink_ = nullptr;
  const Clock* clock_ = nullptr;
  double start_ = 0;
#endif
};

/// Hands out spans, assigns query ids, folds finished QueryTraceRecords
/// into the registry's histograms/counters, and keeps a bounded ring of
/// recent records for postmortems.
///
/// Thread-safety: StartSpan/StartTotal touch only the caller's record;
/// FinishQuery, Annotate, AnnotateLast and RecentTraces synchronize on
/// the ring mutex, and the registry side is atomic — safe under the query
/// server's concurrency model (docs/CONCURRENCY.md).
class Tracer {
 public:
  explicit Tracer(MetricRegistry* registry, const Clock* clock = nullptr,
                  size_t ring_capacity = 64);

  const Clock& clock() const { return *clock_; }
  MetricRegistry* registry() const { return registry_; }

  uint64_t NextQueryId() {
    return next_query_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Starts a span over `phase`, accumulating into `record` (no-op when
  /// `record` is null).
  Span StartSpan(QueryTraceRecord* record, Phase phase) const {
    if (record == nullptr || !kEnabled) return Span{};
    record->phases_touched |= 1u << static_cast<size_t>(phase);
    return Span(clock_, &record->phase_seconds[static_cast<size_t>(phase)]);
  }

  /// Starts the whole-query span, accumulating into total_seconds.
  Span StartTotal(QueryTraceRecord* record) const {
    if (record == nullptr || !kEnabled) return Span{};
    return Span(clock_, &record->total_seconds);
  }

  /// Folds a finished record into the registry and pushes it onto the
  /// ring buffer.
  void FinishQuery(QueryTraceRecord record);

  /// Runs `fn` on the most recently finished record (if any) under the
  /// ring lock — lets the server attach retry/breaker context it only
  /// knows after the engine returned. Only safe when one query is in
  /// flight; concurrent callers must use Annotate(query_id, fn) so they
  /// touch their own record instead of whichever finished last.
  template <typename Fn>
  void AnnotateLast(Fn&& fn) {
#if GKNN_OBS
    util::lockdep::MutexLock lock(ring_mutex_);
    if (!ring_.empty()) fn(ring_.back());
#else
    (void)fn;
#endif
  }

  /// Runs `fn` on the finished record with id `query_id` (if still in the
  /// ring) under the ring lock. Scans from the back: the record being
  /// annotated almost always just finished. Returns whether it was found.
  /// A `query_id` of 0 (engine had no tracer / record already evicted)
  /// is a no-op.
  template <typename Fn>
  bool Annotate(uint64_t query_id, Fn&& fn) {
#if GKNN_OBS
    if (query_id == 0) return false;
    util::lockdep::MutexLock lock(ring_mutex_);
    for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
      if (it->query_id == query_id) {
        fn(*it);
        return true;
      }
    }
    return false;
#else
    (void)query_id;
    (void)fn;
    return false;
#endif
  }

  /// The last up-to-`ring_capacity` finished records, oldest first.
  std::vector<QueryTraceRecord> RecentTraces() const;

 private:
  MetricRegistry* registry_;
  const Clock* clock_;
  size_t ring_capacity_;
  std::atomic<uint64_t> next_query_id_{0};

#if GKNN_OBS
  // Hot-path metric handles, resolved once at construction.
  Counter* queries_total_;
  Counter* query_errors_total_;
  Counter* query_fallbacks_total_;
  Counter* query_device_errors_total_;
  Counter* cells_examined_total_;
  Counter* messages_deduped_total_;
  Histogram* query_seconds_;
  std::array<Histogram*, kNumPhases> phase_seconds_;

  /// obs.ring in the lock order: a leaf — push/annotate only touches the
  /// deque (the registry side of FinishQuery goes through pre-resolved
  /// atomic handles, never the registry mutex).
  mutable util::lockdep::Mutex ring_mutex_{util::lockdep::kObsRingClass};
  std::deque<QueryTraceRecord> ring_;
#endif
};

}  // namespace gknn::obs

#endif  // GKNN_OBS_TRACE_H_
