#ifndef GKNN_OBS_METRICS_H_
#define GKNN_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/lockdep.h"

// GKNN_OBS selects whether the observability subsystem is compiled in.
// The build sets it via -DGKNN_OBS=0 (CMake option GKNN_OBS=OFF); the
// default is on. When off, every recording call below compiles to an empty
// inline function and the registry never allocates: the query path carries
// no atomics, no clock reads, and no ring buffer.
#ifndef GKNN_OBS
#define GKNN_OBS 1
#endif

namespace gknn::obs {

/// True when the subsystem is compiled in; tests gate their metric
/// assertions on this so a GKNN_OBS=0 build still passes the suite.
inline constexpr bool kEnabled = (GKNN_OBS != 0);

/// Monotone event counter. Writes are lock-free and striped across cache
/// lines so concurrent producers (the server's inbox threads, the CPU
/// refinement pool) do not bounce one hot line; Value() folds the stripes.
class Counter {
 public:
#if GKNN_OBS
  void Add(uint64_t n) {
    cells_[StripeIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }
#else
  void Add(uint64_t) {}
  void Increment() {}
  uint64_t Value() const { return 0; }
#endif

 private:
#if GKNN_OBS
  static constexpr size_t kStripes = 8;
  struct alignas(64) Cell {
    std::atomic<uint64_t> value{0};
  };

  static size_t StripeIndex();

  std::array<Cell, kStripes> cells_;
#endif
};

/// Last-written value (device clock, ledger totals, memory breakdown —
/// quantities owned elsewhere and folded into the registry at snapshot
/// time).
class Gauge {
 public:
#if GKNN_OBS
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
#else
  void Set(double) {}
  double Value() const { return 0; }
#endif

 private:
#if GKNN_OBS
  std::atomic<double> value_{0};
#endif
};

/// Fixed-bucket latency histogram: exponential bucket bounds from 1 us
/// doubling up to ~33 s, plus an overflow bucket. Observation is two
/// relaxed atomic adds; quantiles are extracted from the bucket counts
/// with linear interpolation inside the winning bucket.
class Histogram {
 public:
  /// Number of finite bucket upper bounds; bucket kNumBounds is +Inf.
  static constexpr size_t kNumBounds = 26;

  /// Upper bound (seconds, inclusive) of finite bucket `i`. Defined
  /// inline (not in metrics.cc) so it links in GKNN_OBS=0 builds too.
  static double BucketBound(size_t i) {
    return 1e-6 * static_cast<double>(1ull << i);
  }

#if GKNN_OBS
  void Observe(double seconds);

  uint64_t TotalCount() const;

  /// Sum of every observed value, in seconds.
  double Sum() const;

  /// The q-quantile (q in [0, 1]) of the recorded distribution, estimated
  /// from the bucket counts. Returns 0 when the histogram is empty.
  double Quantile(double q) const;

  /// Cumulative count of observations <= BucketBound(i); index kNumBounds
  /// is the total (the +Inf bucket).
  std::vector<uint64_t> CumulativeCounts() const;
#else
  void Observe(double) {}
  uint64_t TotalCount() const { return 0; }
  double Sum() const { return 0; }
  double Quantile(double) const { return 0; }
  std::vector<uint64_t> CumulativeCounts() const {
    return std::vector<uint64_t>(kNumBounds + 1, 0);
  }
#endif

 private:
#if GKNN_OBS
  std::array<std::atomic<uint64_t>, kNumBounds + 1> counts_{};
  std::atomic<uint64_t> sum_nanos_{0};
#endif
};

/// Data-only snapshot of one registry (see MetricRegistry::Snapshot):
/// plain values, safe to ship across threads or compare across time.
struct RegistrySnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  struct HistogramData {
    uint64_t count = 0;
    double sum = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    std::vector<uint64_t> cumulative;  // per BucketBound, then +Inf
  };
  std::map<std::string, HistogramData> histograms;
};

/// Registry of named metrics with Prometheus-text and JSON exposition.
///
/// Names follow Prometheus conventions and may carry one inline label set,
/// e.g. `gknn_query_phase_seconds{phase="clean"}` — the renderers split the
/// base name from the labels. Get* registers on first use and returns a
/// pointer that stays valid for the registry's lifetime, so hot paths
/// resolve their metrics once and then touch only atomics.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

#if GKNN_OBS
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  RegistrySnapshot Snapshot() const;

  /// Prometheus text exposition format (one TYPE line per metric family,
  /// histogram bucket/sum/count series).
  std::string RenderPrometheusText() const;

  /// One-line JSON dump with an explicit schema tag; consumed by
  /// scripts/bench_to_csv.py, which refuses unknown schema versions.
  std::string RenderJson() const;
#else
  Counter* GetCounter(std::string_view) { return &dummy_counter_; }
  Gauge* GetGauge(std::string_view) { return &dummy_gauge_; }
  Histogram* GetHistogram(std::string_view) { return &dummy_histogram_; }

  RegistrySnapshot Snapshot() const { return RegistrySnapshot{}; }
  std::string RenderPrometheusText() const {
    return "# gknn observability compiled out (GKNN_OBS=0)\n";
  }
  std::string RenderJson() const {
    return R"({"schema":"gknn-metrics/v1","enabled":false})";
  }
#endif

  /// The JSON schema tag emitted by RenderJson.
  static constexpr std::string_view kJsonSchema = "gknn-metrics/v1";

 private:
#if GKNN_OBS
  /// obs.registry in the lock order: a leaf — Get* only touches the maps.
  mutable util::lockdep::Mutex mutex_{util::lockdep::kObsRegistryClass};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
#else
  Counter dummy_counter_;
  Gauge dummy_gauge_;
  Histogram dummy_histogram_;
#endif
};

}  // namespace gknn::obs

#endif  // GKNN_OBS_METRICS_H_
