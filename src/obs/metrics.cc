#include "obs/metrics.h"

#if GKNN_OBS

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace gknn::obs {

namespace {

/// Shortest round-trippable decimal for exposition output.
std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

/// Splits `gknn_foo{phase="clean"}` into ("gknn_foo", `phase="clean"`);
/// label part is empty when the name carries no label set.
std::pair<std::string_view, std::string_view> SplitName(
    std::string_view name) {
  const size_t pos = name.find('{');
  if (pos == std::string_view::npos || name.back() != '}') {
    return {name, std::string_view{}};
  }
  return {name.substr(0, pos), name.substr(pos + 1, name.size() - pos - 2)};
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

size_t Counter::StripeIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return stripe;
}

void Histogram::Observe(double seconds) {
  if (seconds < 0) seconds = 0;
  size_t bucket = 0;
  while (bucket < kNumBounds && seconds > BucketBound(bucket)) ++bucket;
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<uint64_t>(std::llround(seconds * 1e9)),
                       std::memory_order_relaxed);
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (const auto& c : counts_) total += c.load(std::memory_order_relaxed);
  return total;
}

double Histogram::Sum() const {
  return static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) *
         1e-9;
}

std::vector<uint64_t> Histogram::CumulativeCounts() const {
  std::vector<uint64_t> cumulative(kNumBounds + 1, 0);
  uint64_t running = 0;
  for (size_t i = 0; i <= kNumBounds; ++i) {
    running += counts_[i].load(std::memory_order_relaxed);
    cumulative[i] = running;
  }
  return cumulative;
}

double Histogram::Quantile(double q) const {
  const std::vector<uint64_t> cumulative = CumulativeCounts();
  const uint64_t total = cumulative.back();
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  uint64_t previous = 0;
  for (size_t i = 0; i <= kNumBounds; ++i) {
    if (static_cast<double>(cumulative[i]) >= target) {
      const double lower = i == 0 ? 0.0 : BucketBound(i - 1);
      // Observations beyond the last finite bound have no upper edge;
      // report the bound itself rather than extrapolating.
      if (i == kNumBounds) return lower;
      const double upper = BucketBound(i);
      const uint64_t in_bucket = cumulative[i] - previous;
      if (in_bucket == 0) return upper;
      const double fraction =
          (target - static_cast<double>(previous)) /
          static_cast<double>(in_bucket);
      return lower + fraction * (upper - lower);
    }
    previous = cumulative[i];
  }
  return BucketBound(kNumBounds - 1);
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  util::lockdep::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  util::lockdep::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricRegistry::GetHistogram(std::string_view name) {
  util::lockdep::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot snapshot;
  util::lockdep::MutexLock lock(mutex_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    RegistrySnapshot::HistogramData data;
    data.count = histogram->TotalCount();
    data.sum = histogram->Sum();
    data.p50 = histogram->Quantile(0.50);
    data.p95 = histogram->Quantile(0.95);
    data.p99 = histogram->Quantile(0.99);
    data.cumulative = histogram->CumulativeCounts();
    snapshot.histograms[name] = std::move(data);
  }
  return snapshot;
}

std::string MetricRegistry::RenderPrometheusText() const {
  const RegistrySnapshot snapshot = Snapshot();
  std::string out;
  std::string_view last_type_base;
  auto type_line = [&](std::string_view base, std::string_view type) {
    if (base == last_type_base) return;
    last_type_base = base;
    out += "# TYPE ";
    out += base;
    out += ' ';
    out += type;
    out += '\n';
  };

  for (const auto& [name, value] : snapshot.counters) {
    const auto [base, labels] = SplitName(name);
    type_line(base, "counter");
    out += name;
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  }
  last_type_base = {};
  for (const auto& [name, value] : snapshot.gauges) {
    const auto [base, labels] = SplitName(name);
    type_line(base, "gauge");
    out += name;
    out += ' ';
    out += FormatDouble(value);
    out += '\n';
  }
  last_type_base = {};
  for (const auto& [name, data] : snapshot.histograms) {
    const auto [base, labels] = SplitName(name);
    type_line(base, "histogram");
    auto series = [&](std::string_view suffix, std::string_view extra_label,
                      const std::string& value) {
      out += base;
      out += suffix;
      if (!labels.empty() || !extra_label.empty()) {
        out += '{';
        out += labels;
        if (!labels.empty() && !extra_label.empty()) out += ',';
        out += extra_label;
        out += '}';
      }
      out += ' ';
      out += value;
      out += '\n';
    };
    for (size_t i = 0; i < Histogram::kNumBounds; ++i) {
      series("_bucket",
             "le=\"" + FormatDouble(Histogram::BucketBound(i)) + "\"",
             std::to_string(data.cumulative[i]));
    }
    series("_bucket", "le=\"+Inf\"", std::to_string(data.cumulative.back()));
    series("_sum", {}, FormatDouble(data.sum));
    series("_count", {}, std::to_string(data.count));
  }
  return out;
}

std::string MetricRegistry::RenderJson() const {
  const RegistrySnapshot snapshot = Snapshot();
  std::string out = "{\"schema\":\"";
  out += kJsonSchema;
  out += "\",\"enabled\":true,\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":" + FormatDouble(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, data] : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"' + JsonEscape(name) + "\":{\"count\":" +
           std::to_string(data.count) + ",\"sum\":" + FormatDouble(data.sum) +
           ",\"p50\":" + FormatDouble(data.p50) +
           ",\"p95\":" + FormatDouble(data.p95) +
           ",\"p99\":" + FormatDouble(data.p99) + ",\"buckets\":[";
    for (size_t i = 0; i < data.cumulative.size(); ++i) {
      if (i > 0) out += ',';
      const std::string le = i < Histogram::kNumBounds
                                 ? FormatDouble(Histogram::BucketBound(i))
                                 : std::string("\"+Inf\"");
      out += '[' + le + ',' + std::to_string(data.cumulative[i]) + ']';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace gknn::obs

#endif  // GKNN_OBS
