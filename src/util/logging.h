#ifndef GKNN_UTIL_LOGGING_H_
#define GKNN_UTIL_LOGGING_H_

#include <cassert>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace gknn::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Process-wide minimum level for log output. Messages below this level are
/// dropped. Defaults to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Accumulates one log line and emits it on destruction. `fatal` aborts the
/// process after emitting (used by GKNN_CHECK).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when logging is disabled at this level.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace gknn::util

#define GKNN_LOG(level)                                              \
  ::gknn::util::internal_logging::LogMessage(                        \
      ::gknn::util::LogLevel::k##level, __FILE__, __LINE__)          \
      .stream()

/// Fatal assertion: evaluates `cond`; on failure logs the condition plus any
/// streamed context and aborts. Active in all build modes — invariants in a
/// database engine must not be compiled out.
#define GKNN_CHECK(cond)                                                  \
  (cond) ? static_cast<void>(0)                                           \
         : GKNN_CHECK_FAIL_("Check failed: " #cond " ")

#define GKNN_CHECK_FAIL_(msg)                                             \
  ::gknn::util::internal_logging::Voidify() &                             \
      ::gknn::util::internal_logging::LogMessage(                         \
          ::gknn::util::LogLevel::kError, __FILE__, __LINE__, /*fatal=*/true) \
          .stream()                                                       \
      << msg

#define GKNN_CHECK_OK(expr)                                           \
  do {                                                                \
    ::gknn::util::Status _st = (expr);                                \
    GKNN_CHECK(_st.ok()) << _st.ToString();                           \
  } while (false)

#define GKNN_DCHECK(cond) assert(cond)

namespace gknn::util::internal_logging {
/// Helper giving the ternary in GKNN_CHECK a common void type.
struct Voidify {
  void operator&(std::ostream&) {}
};
}  // namespace gknn::util::internal_logging

#endif  // GKNN_UTIL_LOGGING_H_
