#ifndef GKNN_UTIL_MIN_HEAP_H_
#define GKNN_UTIL_MIN_HEAP_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/logging.h"

namespace gknn::util {

/// Indexed binary min-heap with decrease-key, keyed by dense integer ids in
/// [0, capacity). This is the priority queue used by the Dijkstra variants
/// in `roadnet` and by the CPU refinement step of the kNN engine
/// (paper Alg. 6); decrease-key keeps each vertex in the heap at most once.
template <typename Priority>
class IndexedMinHeap {
 public:
  static constexpr uint32_t kInvalidPos = std::numeric_limits<uint32_t>::max();

  explicit IndexedMinHeap(uint32_t capacity)
      : positions_(capacity, kInvalidPos) {}

  bool empty() const { return heap_.empty(); }
  uint32_t size() const { return static_cast<uint32_t>(heap_.size()); }
  bool Contains(uint32_t id) const { return positions_[id] != kInvalidPos; }

  /// Priority of an id currently in the heap.
  Priority PriorityOf(uint32_t id) const {
    GKNN_DCHECK(Contains(id));
    return heap_[positions_[id]].priority;
  }

  /// Inserts id with the given priority, or lowers its priority if already
  /// present and the new priority is smaller. Returns true if the heap
  /// changed.
  bool PushOrDecrease(uint32_t id, Priority priority) {
    uint32_t pos = positions_[id];
    if (pos == kInvalidPos) {
      heap_.push_back(Entry{priority, id});
      positions_[id] = size() - 1;
      SiftUp(size() - 1);
      return true;
    }
    if (priority < heap_[pos].priority) {
      heap_[pos].priority = priority;
      SiftUp(pos);
      return true;
    }
    return false;
  }

  /// Minimum element without removing it.
  std::pair<uint32_t, Priority> Top() const {
    GKNN_DCHECK(!empty());
    return {heap_[0].id, heap_[0].priority};
  }

  /// Removes and returns the minimum (id, priority) pair.
  std::pair<uint32_t, Priority> Pop() {
    GKNN_DCHECK(!empty());
    Entry top = heap_[0];
    positions_[top.id] = kInvalidPos;
    Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      positions_[last.id] = 0;
      SiftDown(0);
    }
    return {top.id, top.priority};
  }

  /// Removes all elements; keeps capacity.
  void Clear() {
    for (const Entry& e : heap_) positions_[e.id] = kInvalidPos;
    heap_.clear();
  }

 private:
  struct Entry {
    Priority priority;
    uint32_t id;
  };

  void SiftUp(uint32_t pos) {
    Entry e = heap_[pos];
    while (pos > 0) {
      uint32_t parent = (pos - 1) / 2;
      if (!(e.priority < heap_[parent].priority)) break;
      heap_[pos] = heap_[parent];
      positions_[heap_[pos].id] = pos;
      pos = parent;
    }
    heap_[pos] = e;
    positions_[e.id] = pos;
  }

  void SiftDown(uint32_t pos) {
    Entry e = heap_[pos];
    const uint32_t n = size();
    while (true) {
      uint32_t child = 2 * pos + 1;
      if (child >= n) break;
      if (child + 1 < n && heap_[child + 1].priority < heap_[child].priority) {
        ++child;
      }
      if (!(heap_[child].priority < e.priority)) break;
      heap_[pos] = heap_[child];
      positions_[heap_[pos].id] = pos;
      pos = child;
    }
    heap_[pos] = e;
    positions_[e.id] = pos;
  }

  std::vector<Entry> heap_;
  std::vector<uint32_t> positions_;  // id -> position in heap_
};

/// Fixed-size max-heap keeping the k smallest values seen. Used to select
/// the k nearest candidates (paper's GPU_First_k refinement on the CPU
/// side) without sorting the full candidate set.
template <typename Value>
class BoundedTopK {
 public:
  explicit BoundedTopK(uint32_t k) : k_(k) { heap_.reserve(k); }

  uint32_t k() const { return k_; }
  uint32_t size() const { return static_cast<uint32_t>(heap_.size()); }
  bool Full() const { return size() == k_; }

  /// Largest of the kept values; only valid when Full().
  const Value& Worst() const {
    GKNN_DCHECK(!heap_.empty());
    return heap_.front();
  }

  /// Offers a value; keeps it if fewer than k were seen or it beats the
  /// current worst. Returns true if the value was kept.
  bool Offer(const Value& v) {
    if (size() < k_) {
      heap_.push_back(v);
      std::push_heap(heap_.begin(), heap_.end());
      return true;
    }
    if (v < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = v;
      std::push_heap(heap_.begin(), heap_.end());
      return true;
    }
    return false;
  }

  /// Extracts the kept values in ascending order; the heap is left empty.
  std::vector<Value> TakeSorted() {
    std::sort_heap(heap_.begin(), heap_.end());
    return std::move(heap_);
  }

 private:
  uint32_t k_;
  std::vector<Value> heap_;
};

}  // namespace gknn::util

#endif  // GKNN_UTIL_MIN_HEAP_H_
