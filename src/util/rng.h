#ifndef GKNN_UTIL_RNG_H_
#define GKNN_UTIL_RNG_H_

#include <cstdint>

namespace gknn::util {

/// Deterministic 64-bit PRNG (xoshiro256**). All randomized components of
/// the library (workload generators, partitioner tie-breaking, tests) take
/// an explicit Rng so that every experiment is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  /// Re-seeds the generator; distinct seeds give independent streams.
  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the full state, as recommended
    // by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform random 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless method would be overkill here; modulo
    // bias is negligible for the bounds used in this library (< 2^40).
    return Next() % bound;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBounded(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace gknn::util

#endif  // GKNN_UTIL_RNG_H_
