#include "util/morton.h"

namespace gknn::util {

uint64_t SpreadBits2(uint32_t v) {
  uint64_t x = v;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

uint32_t CollectBits2(uint64_t v) {
  uint64_t x = v & 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<uint32_t>(x);
}

}  // namespace gknn::util
