#include "util/logging.h"

#include <atomic>
#include <mutex>

namespace gknn::util {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};
// Deliberately raw, not a lockdep::Mutex: GKNN_LOG runs while leaf locks
// (breaker_mu_, device stats) are held, and lockdep itself logs its
// violations — tracking this mutex would recurse and self-report.
// gknn-lint: allow(raw-mutex): logging runs under held leaves and inside lockdep reports
std::mutex& OutputMutex() {
  static std::mutex* m = new std::mutex;  // gknn-lint: allow(raw-mutex): see above
  return *m;
}
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal), enabled_(fatal || level >= GetLogLevel()) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    // gknn-lint: allow(raw-mutex): see OutputMutex
    std::lock_guard<std::mutex> lock(OutputMutex());
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace gknn::util
