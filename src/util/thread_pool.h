#ifndef GKNN_UTIL_THREAD_POOL_H_
#define GKNN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gknn::util {

/// Work-queue thread pool used for the CPU-parallel parts of the system:
/// the per-unresolved-vertex Dijkstra searches of Refine_kNN (paper Alg. 6,
/// "we use different threads in the CPU to run the algorithm in parallel")
/// and the multi-query harness. A pool of size 1 degrades to inline
/// execution order but keeps the same semantics.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers; 0 means
  /// hardware_concurrency.
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n), distributing chunks over the workers, and
  /// blocks until all iterations complete. Safe to call with n == 0.
  void ParallelFor(uint64_t n, const std::function<void(uint64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  uint64_t in_flight_ = 0;  // queued + running tasks
  bool shutdown_ = false;
};

}  // namespace gknn::util

#endif  // GKNN_UTIL_THREAD_POOL_H_
