#ifndef GKNN_UTIL_THREAD_POOL_H_
#define GKNN_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "util/lockdep.h"

namespace gknn::util {

/// Work-queue thread pool used for the CPU-parallel parts of the system:
/// the server's concurrent query batches (QueryServer::QueryKnnBatch) and
/// the multi-query harness. A pool of size 1 degrades to inline execution
/// order but keeps the same semantics.
///
/// Thread-safety: Submit/SubmitTask/Wait may be called from any thread,
/// including from inside pool tasks. Destruction drains the queue: tasks
/// already submitted still run to completion before the workers join.
class ThreadPool {
 public:
  /// Tag selecting the zero-thread inline pool: no workers are spawned and
  /// every submitted task runs synchronously on the submitting thread.
  /// This is the degradation mode for single-threaded servers
  /// (ServerOptions::query_threads == 0) and for tests that want
  /// deterministic execution order.
  struct Inline {};

  /// Creates a pool with `num_threads` workers; 0 means
  /// hardware_concurrency.
  explicit ThreadPool(unsigned num_threads = 0);

  /// Creates an inline pool (num_threads() == 0, tasks run on the caller).
  explicit ThreadPool(Inline);

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task for asynchronous execution. The task must not throw;
  /// an escaping exception terminates the worker (use SubmitTask when the
  /// task can fail). On an inline pool the task runs before Submit returns.
  void Submit(std::function<void()> task);

  /// Enqueues a task and returns a future that becomes ready when the task
  /// completes. An exception thrown by the task is captured and rethrown
  /// from future::get() on the waiting thread — this is how batch query
  /// fan-out propagates per-query failures back to the caller. On an
  /// inline pool the task runs synchronously and the future is ready on
  /// return.
  std::future<void> SubmitTask(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n), distributing chunks over the workers, and
  /// blocks until all iterations complete. Safe to call with n == 0. An
  /// inline pool (or a pool of one worker) runs all iterations on the
  /// calling thread.
  void ParallelFor(uint64_t n, const std::function<void(uint64_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  /// Queue lock; a leaf in the lock order (docs/CONCURRENCY.md): it is
  /// released before any task runs, so tasks may start at the top of the
  /// hierarchy. condition_variable_any because the lockdep wrapper is a
  /// Lockable, not a std::unique_lock<std::mutex>.
  lockdep::Mutex mu_{lockdep::kPoolQueueClass};
  std::condition_variable_any task_available_;
  std::condition_variable_any all_done_;
  uint64_t in_flight_ = 0;  // queued + running tasks
  bool shutdown_ = false;
};

}  // namespace gknn::util

#endif  // GKNN_UTIL_THREAD_POOL_H_
