#ifndef GKNN_UTIL_THREAD_POOL_H_
#define GKNN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "util/deadline.h"
#include "util/lockdep.h"

namespace gknn::util {

/// Work-queue thread pool used for the CPU-parallel parts of the system:
/// the server's concurrent query batches (QueryServer::QueryKnnBatch) and
/// the multi-query harness. A pool of size 1 degrades to inline execution
/// order but keeps the same semantics.
///
/// Thread-safety: Submit/SubmitTask/Wait may be called from any thread,
/// including from inside pool tasks. Destruction drains the queue: tasks
/// already submitted still run to completion before the workers join.
class ThreadPool {
 public:
  /// Tag selecting the zero-thread inline pool: no workers are spawned and
  /// every submitted task runs synchronously on the submitting thread.
  /// This is the degradation mode for single-threaded servers
  /// (ServerOptions::query_threads == 0) and for tests that want
  /// deterministic execution order.
  struct Inline {};

  /// A deadline-tagged unit of work. Workers check `deadline` immediately
  /// before running `run`: an expired submission is dropped without
  /// executing and `on_expired` (if set) runs in its place, so a queue
  /// that backed up past the callers' latency budgets sheds the stale
  /// work instead of burning cores on answers nobody is waiting for.
  struct Submission {
    std::function<void()> run;
    /// Optional; invoked (on the worker) instead of `run` when the
    /// deadline expired while queued. Must not throw.
    std::function<void()> on_expired;
    Deadline deadline;
  };

  /// Creates a pool with `num_threads` workers; 0 means
  /// hardware_concurrency. `max_queued` bounds the number of tasks waiting
  /// in the queue (not counting running ones); 0 means unbounded. When the
  /// bound is reached, Submit/SubmitTask block is NOT the policy — they
  /// still enqueue (internal callers like ParallelFor must not deadlock) —
  /// the bound is enforced only through TrySubmit, which is what
  /// admission-controlled callers use.
  explicit ThreadPool(unsigned num_threads = 0, size_t max_queued = 0);

  /// Creates an inline pool (num_threads() == 0, tasks run on the caller).
  explicit ThreadPool(Inline);

  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task for asynchronous execution. The task must not throw;
  /// an escaping exception terminates the worker (use SubmitTask when the
  /// task can fail). On an inline pool the task runs before Submit returns.
  void Submit(std::function<void()> task);

  /// Enqueues a task and returns a future that becomes ready when the task
  /// completes. An exception thrown by the task is captured and rethrown
  /// from future::get() on the waiting thread — this is how batch query
  /// fan-out propagates per-query failures back to the caller. On an
  /// inline pool the task runs synchronously and the future is ready on
  /// return.
  std::future<void> SubmitTask(std::function<void()> task);

  /// Bounded enqueue: returns false (and runs nothing) if the pool was
  /// constructed with a `max_queued` bound and the queue is full. On an
  /// unbounded or inline pool this never fails. This is the backpressure
  /// primitive QueryServer's batch fan-out uses — a false return becomes
  /// a typed ResourceExhausted for that query rather than unbounded queue
  /// growth.
  bool TrySubmit(std::function<void()> task);

  /// Deadline-aware SubmitTask: the future becomes ready after either
  /// `run` (deadline still live when a worker picked it up) or
  /// `on_expired` (budget blown while queued). Inline pools evaluate the
  /// deadline synchronously. Expired drops are counted in
  /// expired_tasks().
  std::future<void> SubmitTask(Submission submission);

  /// Bounded, deadline-aware submission: TrySubmit's backpressure plus
  /// Submission's expiry drop. Returns an empty optional (nothing runs,
  /// on_expired included) when the queue bound rejects the task.
  std::optional<std::future<void>> TrySubmitTask(Submission submission);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  /// Runs fn(i) for i in [0, n), distributing chunks over the workers, and
  /// blocks until all iterations complete. Safe to call with n == 0. An
  /// inline pool (or a pool of one worker) runs all iterations on the
  /// calling thread.
  void ParallelFor(uint64_t n, const std::function<void(uint64_t)>& fn);

  /// Queue bound this pool was constructed with (0 = unbounded).
  size_t max_queued() const { return max_queued_; }

  /// Tasks currently waiting in the queue (excludes running tasks).
  /// Racy by nature; for gauges and tests, not control flow.
  size_t queued() const;

  /// Number of deadline-tagged submissions dropped before execution
  /// because their deadline expired while queued.
  uint64_t expired_tasks() const {
    return expired_tasks_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  /// Queue lock; a leaf in the lock order (docs/CONCURRENCY.md): it is
  /// released before any task runs, so tasks may start at the top of the
  /// hierarchy. condition_variable_any because the lockdep wrapper is a
  /// Lockable, not a std::unique_lock<std::mutex>.
  mutable lockdep::Mutex mu_{lockdep::kPoolQueueClass};
  std::condition_variable_any task_available_;
  std::condition_variable_any all_done_;
  uint64_t in_flight_ = 0;  // queued + running tasks
  bool shutdown_ = false;
  size_t max_queued_ = 0;  // 0 = unbounded; enforced by TrySubmit only
  std::atomic<uint64_t> expired_tasks_{0};
};

}  // namespace gknn::util

#endif  // GKNN_UTIL_THREAD_POOL_H_
