#ifndef GKNN_UTIL_TIMER_H_
#define GKNN_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>
#include <ctime>

namespace gknn::util {

/// Monotonic wall-clock stopwatch used by the benchmark harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time since construction/Restart, in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// Elapsed time since construction/Restart, in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Per-thread CPU-time stopwatch: counts only cycles this thread actually
/// burned, so the reading is insensitive to other processes (or other
/// ctest shards) competing for cores. The batch-query smoke gate uses this
/// instead of wall time — a loaded machine stretches wall time but not
/// CPU time, so the modeled-scaling ratio stays stable under `ctest -j`.
///
/// Falls back to the wall clock on platforms without
/// CLOCK_THREAD_CPUTIME_ID; the gate is then exactly as load-sensitive as
/// it was before, no worse.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() : start_(Now()) {}

  void Restart() { start_ = Now(); }

  /// Thread CPU seconds since construction/Restart.
  double ElapsedSeconds() const { return Now() - start_; }

 private:
  static double Now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  double start_;
};

}  // namespace gknn::util

#endif  // GKNN_UTIL_TIMER_H_
