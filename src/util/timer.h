#ifndef GKNN_UTIL_TIMER_H_
#define GKNN_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace gknn::util {

/// Monotonic wall-clock stopwatch used by the benchmark harness.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time since construction/Restart, in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// Elapsed time since construction/Restart, in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gknn::util

#endif  // GKNN_UTIL_TIMER_H_
