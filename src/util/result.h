#ifndef GKNN_UTIL_RESULT_H_
#define GKNN_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace gknn::util {

/// Result<T> holds either a value of type T or an error Status.
///
/// [[nodiscard]] like Status: a Result-returning call whose value *and*
/// error are both ignored is a compile error (and a gknn_lint.py finding).
///
/// Usage:
///   Result<Graph> r = LoadGraph(path);
///   if (!r.ok()) return r.status();
///   Graph g = std::move(r).ValueOrDie();
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs a Result holding a value (implicit on purpose so functions
  /// can `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error (implicit on purpose so functions
  /// can `return Status::...;`). Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }

  /// The error status; Status::OK() when a value is held.
  const Status& status() const { return status_; }

  /// Value accessors. Must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok());
    return *value_;
  }
  T& ValueOrDie() & {
    assert(ok());
    return *value_;
  }
  T&& ValueOrDie() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace gknn::util

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the enclosing function.
#define GKNN_ASSIGN_OR_RETURN(lhs, rexpr)            \
  GKNN_ASSIGN_OR_RETURN_IMPL_(                       \
      GKNN_RESULT_CONCAT_(_gknn_result_, __LINE__), lhs, rexpr)

#define GKNN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).ValueOrDie()

#define GKNN_RESULT_CONCAT_(a, b) GKNN_RESULT_CONCAT_2_(a, b)
#define GKNN_RESULT_CONCAT_2_(a, b) a##b

#endif  // GKNN_UTIL_RESULT_H_
