#ifndef GKNN_UTIL_STATUS_H_
#define GKNN_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace gknn::util {

/// Error categories used across the library. Mirrors the Arrow/RocksDB
/// convention of returning a Status object instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kResourceExhausted = 5,
  kIoError = 6,
  kInternal = 7,
  kNotImplemented = 8,
  kDeadlineExceeded = 9,
};

/// Returns a human-readable name for a status code ("OK", "Invalid argument",
/// ...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status encodes either success (OK) or an error code plus message.
///
/// The OK state carries no allocation: `rep_` is null, so returning OK from
/// hot paths is free. Statuses are cheap to move and copyable.
///
/// The class is [[nodiscard]]: every expression returning a Status by
/// value must be consumed (checked, returned, or assigned). Dropping one
/// on the floor is a compile error under -Werror and is additionally
/// flagged by tools/gknn_lint.py, so device errors and bad-argument
/// reports cannot silently vanish.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      rep_ = std::make_shared<Rep>(Rep{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// The error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // Shared so that copying a Status is cheap; error paths are cold.
  std::shared_ptr<const Rep> rep_;
};

}  // namespace gknn::util

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is an error.
#define GKNN_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::gknn::util::Status _st = (expr);           \
    if (!_st.ok()) return _st;                   \
  } while (false)

#endif  // GKNN_UTIL_STATUS_H_
