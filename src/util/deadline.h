#ifndef GKNN_UTIL_DEADLINE_H_
#define GKNN_UTIL_DEADLINE_H_

#include <chrono>
#include <limits>

namespace gknn::util {

/// A point in time a unit of work must finish by, expressed on the steady
/// (monotonic) clock so wall-clock adjustments cannot expire work early or
/// extend a budget.
///
/// The default-constructed Deadline is infinite: it never expires and costs
/// nothing to check beyond a branch, so APIs can thread a Deadline
/// unconditionally and callers without a budget pass `Deadline()`.
///
/// Deadlines interoperate with condition-variable timed waits through
/// `time_point()` — an admission queue sleeping for a slot wakes exactly
/// when the query's budget runs out (see QueryServer::QueryKnn).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite deadline (never expires).
  Deadline() = default;

  /// Never expires; spelled-out alias of the default constructor.
  static Deadline Infinite() { return Deadline(); }

  /// Expires `seconds` from now. A non-positive budget yields a deadline
  /// that is already expired — useful for tests and for "shed immediately
  /// under pressure" policies.
  static Deadline AfterSeconds(double seconds) {
    Deadline d;
    d.infinite_ = false;
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
    return d;
  }

  /// Expires at an absolute steady-clock time point.
  static Deadline At(Clock::time_point when) {
    Deadline d;
    d.infinite_ = false;
    d.when_ = when;
    return d;
  }

  bool is_infinite() const { return infinite_; }

  bool Expired() const { return !infinite_ && Clock::now() >= when_; }

  /// Seconds until expiry: +infinity for an infinite deadline, negative
  /// once expired. This is the "slack" the server's deadline-slack
  /// histogram observes at completion time.
  double RemainingSeconds() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(when_ - Clock::now()).count();
  }

  /// The absolute expiry instant. Only meaningful when !is_infinite();
  /// callers gate timed waits on that (an infinite deadline waits
  /// untimed).
  Clock::time_point time_point() const { return when_; }

 private:
  bool infinite_ = true;
  Clock::time_point when_{};
};

}  // namespace gknn::util

#endif  // GKNN_UTIL_DEADLINE_H_
