#ifndef GKNN_UTIL_BACKOFF_H_
#define GKNN_UTIL_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <thread>

namespace gknn::util {

/// Deterministic exponential backoff: base, 2*base, 4*base, ... capped at
/// max. No jitter on purpose — retry schedules in tests and in the
/// simulated server must be reproducible (the fault injector is seeded for
/// the same reason).
class ExponentialBackoff {
 public:
  ExponentialBackoff(double base_ms, double max_ms)
      : base_ms_(base_ms), max_ms_(max_ms), next_ms_(base_ms) {}

  /// The delay to wait before the upcoming retry; doubles per call.
  double NextDelayMs() {
    const double delay = std::min(next_ms_, max_ms_);
    next_ms_ = std::min(next_ms_ * 2, max_ms_);
    return delay;
  }

  void Reset() { next_ms_ = base_ms_; }

  /// Convenience: sleep for the next delay (no-op for non-positive base).
  void SleepNext() {
    const double delay = NextDelayMs();
    if (delay <= 0) return;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
  }

 private:
  double base_ms_;
  double max_ms_;
  double next_ms_;
};

}  // namespace gknn::util

#endif  // GKNN_UTIL_BACKOFF_H_
