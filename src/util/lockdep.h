#ifndef GKNN_UTIL_LOCKDEP_H_
#define GKNN_UTIL_LOCKDEP_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>         // gknn-lint: allow(raw-mutex): this file IS the lockdep layer
#include <shared_mutex>  // gknn-lint: allow(raw-mutex): this file IS the lockdep layer
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

// GKNN_LOCKDEP selects whether runtime lock-order validation is compiled
// in. The build sets it via -DGKNN_LOCKDEP=0 (CMake option
// GKNN_LOCKDEP=OFF); the default is on. When off, every wrapper below is a
// thin shell over the std primitive — same size, no per-acquisition
// bookkeeping — exactly like the GKNN_OBS gate.
#ifndef GKNN_LOCKDEP
#define GKNN_LOCKDEP 1
#endif

namespace gknn::util::lockdep {

/// True when lock-order validation is compiled in; tests gate their
/// violation assertions on this so a GKNN_LOCKDEP=0 build still passes.
inline constexpr bool kEnabled = (GKNN_LOCKDEP != 0);

/// One lock *class* of the global ordering (docs/CONCURRENCY.md "Lock
/// ordering", machine-checked by tools/gknn_lint.py). Every lockdep
/// mutex belongs to a class; the class carries the static rank that
/// encodes the hierarchy:
///
///  - A thread may only acquire a class whose rank is strictly greater
///    than the deepest rank it currently holds.
///  - `nestable` classes (the cleaner's striped cell locks) may hold
///    several instances at once, but only in strictly ascending instance
///    key order — the ascending-stripe rule.
///  - `leaf` classes may never be held while acquiring *any* tracked
///    lock, regardless of rank.
///  - Two distinct classes of equal rank may be taken in either order
///    (neither dominates), but every observed acquisition order feeds the
///    global order graph, whose DFS cycle detection flags an A->B / B->A
///    pattern even when no single run interleaves into a deadlock.
#if GKNN_LOCKDEP
class LockClass {
 public:
  constexpr LockClass(const char* name, int rank, bool nestable = false,
                      bool leaf = false)
      : name_(name), rank_(rank), nestable_(nestable), leaf_(leaf) {}

  LockClass(const LockClass&) = delete;
  LockClass& operator=(const LockClass&) = delete;

  const char* name() const { return name_; }
  int rank() const { return rank_; }
  bool nestable() const { return nestable_; }
  bool leaf() const { return leaf_; }

  /// Dense id used by the acquisition-order graph; assigned on first use.
  int id() const;

 private:
  const char* name_;
  int rank_;
  bool nestable_;
  bool leaf_;
  mutable std::atomic<int> id_{-1};
};
#else
class LockClass {
 public:
  constexpr LockClass(const char*, int, bool = false, bool = false) {}
  LockClass(const LockClass&) = delete;
  LockClass& operator=(const LockClass&) = delete;
};
#endif

/// The production lock classes. This block is the single source of truth
/// for the lock hierarchy: tools/gknn_lint.py parses the lines between the
/// two markers and fails the lint when the `name (rank)` pairs drift from
/// the table in docs/CONCURRENCY.md. Ranks increase downward; 900+ are
/// leaves.
// gknn-lockdep-table-begin
inline constinit LockClass kServerIndexClass{"server.index", 100};
inline constinit LockClass kRouterObjectsClass{"router.objects", 150};
inline constinit LockClass kServerInboxClass{"server.inbox", 200};
inline constinit LockClass kCleanerStripeClass{"cleaner.stripe", 300, true};
inline constinit LockClass kCleanerDeviceClass{"cleaner.device", 400};
inline constinit LockClass kCoreArenaClass{"core.arena", 500};
inline constinit LockClass kServerBreakerClass{"server.breaker", 900, false, true};
inline constinit LockClass kServerAdmissionClass{"server.admission", 902, false, true};
inline constinit LockClass kGpusimSchedulerClass{"gpusim.scheduler", 903, false, true};
inline constinit LockClass kEngineWorkspaceClass{"engine.workspace", 905, false, true};
inline constinit LockClass kObsRingClass{"obs.ring", 910, false, true};
inline constinit LockClass kObsRegistryClass{"obs.registry", 920, false, true};
inline constinit LockClass kDeviceFaultClass{"device.fault", 930, false, true};
inline constinit LockClass kDeviceStatsClass{"device.stats", 940, false, true};
inline constinit LockClass kPoolQueueClass{"pool.queue", 950, false, true};
// gknn-lockdep-table-end

/// One detected lock-discipline violation. Detection never blocks or
/// throws: the offending acquisition still proceeds (the checker reports
/// *potential* deadlocks; it must not create real ones), the violation is
/// counted, and the installed handler — by default GKNN_LOG(Error) — is
/// invoked.
struct Violation {
  enum class Kind {
    kRankInversion,  // acquired a rank <= the deepest held rank
    kLeafHeld,       // acquired a tracked lock while holding a leaf
    kSameClass,      // same-class re-entry, or nestable keys not ascending
    kCycle,          // new order-graph edge closed a cycle
  };
  Kind kind;
  std::string message;
};

#if GKNN_LOCKDEP
/// Total violations detected since process start (relaxed atomic). The
/// query server folds this into the metric registry as
/// `gknn_lockdep_violations_total`.
uint64_t ViolationCount();

/// Status form of the most recent violation: OK when none has occurred,
/// Internal with the violation message otherwise.
Status LastViolationStatus();

using ViolationHandler = void (*)(const Violation&);

/// Installs `handler` (nullptr restores the default logging handler) and
/// returns the previous one. Tests install a capturing handler to assert
/// on seeded violations regression-style instead of death-style.
ViolationHandler SetViolationHandler(ViolationHandler handler);

/// Clears the violation counter and last-violation status (the order
/// graph is intentionally kept: recorded edges are facts about the
/// program). Test-only.
void ResetViolationsForTesting();

namespace internal {
/// Pre-acquisition hook: runs the rank / leaf / nestable-key checks
/// against the calling thread's held-lock stack, records order-graph
/// edges (running cycle detection on first insertion), and pushes the
/// lock. Called before the physical acquisition so a would-be deadlock is
/// reported rather than silently blocked on.
void OnAcquire(const LockClass& cls, uint32_t key, const void* addr);
/// Pops `addr` from the calling thread's held-lock stack (out-of-order
/// release supported: condition-variable waits unlock mid-stack).
void OnRelease(const void* addr);
}  // namespace internal
#else
inline uint64_t ViolationCount() { return 0; }
inline Status LastViolationStatus() { return Status::OK(); }
using ViolationHandler = void (*)(const Violation&);
inline ViolationHandler SetViolationHandler(ViolationHandler) {
  return nullptr;
}
inline void ResetViolationsForTesting() {}
#endif

template <size_t N>
class StripedMutexes;

/// std::mutex carrying a LockClass. Satisfies Lockable, so it works with
/// std::condition_variable_any; acquisitions and releases are validated
/// against the calling thread's held-lock stack when GKNN_LOCKDEP is on.
class Mutex {
 public:
#if GKNN_LOCKDEP
  explicit Mutex(const LockClass& cls, uint32_t key = 0)
      : cls_(&cls), key_(key) {}

  void lock() {
    internal::OnAcquire(*cls_, key_, this);
    mu_.lock();
  }
  bool try_lock() {
    if (!mu_.try_lock()) return false;
    internal::OnAcquire(*cls_, key_, this);
    return true;
  }
  void unlock() {
    internal::OnRelease(this);
    mu_.unlock();
  }
#else
  explicit Mutex(const LockClass&, uint32_t = 0) {}

  void lock() { mu_.lock(); }
  bool try_lock() { return mu_.try_lock(); }
  void unlock() { mu_.unlock(); }
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

 private:
  template <size_t N>
  friend class StripedMutexes;

  /// Unbound instance; only StripedMutexes may create one, and it binds
  /// the class before the array is visible to any other thread.
  Mutex() = default;
#if GKNN_LOCKDEP
  void Bind(const LockClass& cls, uint32_t key) {
    cls_ = &cls;
    key_ = key;
  }
#else
  void Bind(const LockClass&, uint32_t) {}
#endif

  std::mutex mu_;  // gknn-lint: allow(raw-mutex): wrapped primitive
#if GKNN_LOCKDEP
  const LockClass* cls_ = nullptr;
  uint32_t key_ = 0;
#endif
};

/// std::shared_mutex carrying a LockClass. Shared acquisitions partake in
/// the same ordering as exclusive ones: a reader deadlocks with a writer
/// exactly as a writer does, so both sides push onto the held stack.
class SharedMutex {
 public:
#if GKNN_LOCKDEP
  explicit SharedMutex(const LockClass& cls, uint32_t key = 0)
      : cls_(&cls), key_(key) {}

  void lock() {
    internal::OnAcquire(*cls_, key_, this);
    mu_.lock();
  }
  void unlock() {
    internal::OnRelease(this);
    mu_.unlock();
  }
  void lock_shared() {
    internal::OnAcquire(*cls_, key_, this);
    mu_.lock_shared();
  }
  void unlock_shared() {
    internal::OnRelease(this);
    mu_.unlock_shared();
  }
#else
  explicit SharedMutex(const LockClass&, uint32_t = 0) {}

  void lock() { mu_.lock(); }
  void unlock() { mu_.unlock(); }
  void lock_shared() { mu_.lock_shared(); }
  void unlock_shared() { mu_.unlock_shared(); }
#endif

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

 private:
  std::shared_mutex mu_;  // gknn-lint: allow(raw-mutex): wrapped primitive
#if GKNN_LOCKDEP
  const LockClass* cls_ = nullptr;
  uint32_t key_ = 0;
#endif
};

/// std::lock_guard replacement for lockdep::Mutex.
class MutexLock {
 public:
  explicit MutexLock(Mutex& mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// std::unique_lock replacement: relockable, so it composes with
/// std::condition_variable_any (ThreadPool's worker wait).
class UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) : mu_(&mu) { lock(); }
  ~UniqueLock() {
    if (owns_) mu_->unlock();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() {
    mu_->lock();
    owns_ = true;
  }
  void unlock() {
    owns_ = false;
    mu_->unlock();
  }
  bool owns_lock() const { return owns_; }

 private:
  Mutex* mu_;
  bool owns_ = false;
};

/// Writer-side guard over a SharedMutex (std::unique_lock<shared_mutex>
/// replacement for scoped exclusive sections).
class ExclusiveLock {
 public:
  explicit ExclusiveLock(SharedMutex& mu) : mu_(mu) { mu_.lock(); }
  ~ExclusiveLock() { mu_.unlock(); }

  ExclusiveLock(const ExclusiveLock&) = delete;
  ExclusiveLock& operator=(const ExclusiveLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Reader-side guard over a SharedMutex (std::shared_lock replacement).
class SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu) : mu_(mu) { mu_.lock_shared(); }
  ~SharedLock() { mu_.unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Acquires a set of same-class mutexes as one ranked multi-lock and
/// releases them in reverse on destruction. The caller passes the
/// instances in ascending key order (the cleaner passes its sorted,
/// deduplicated stripe set); with lockdep on, the per-acquisition
/// nestable-key check *asserts* the ascending-stripe order — an unsorted
/// or duplicated sequence is reported as a violation, closing the ABBA
/// window two overlapping cell sets would otherwise have.
class MultiLock {
 public:
  MultiLock() = default;
  explicit MultiLock(std::vector<Mutex*> mutexes) { Lock(std::move(mutexes)); }
  ~MultiLock() { Unlock(); }

  MultiLock(const MultiLock&) = delete;
  MultiLock& operator=(const MultiLock&) = delete;

  /// Locks `mutexes` front to back. Must not already hold a set.
  void Lock(std::vector<Mutex*> mutexes) {
    held_ = std::move(mutexes);
    for (Mutex* mu : held_) mu->lock();
  }

  /// Releases the held set back to front. Idempotent.
  void Unlock() {
    for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
      (*it)->unlock();
    }
    held_.clear();
  }

  size_t size() const { return held_.size(); }

 private:
  std::vector<Mutex*> held_;
};

/// A fixed array of same-class mutexes keyed by index — the shape of the
/// cleaner's per-cell stripes and the server's inbox stripes. Instance i
/// carries key i, so the nestable-key check can assert ascending-stripe
/// acquisition across the array.
template <size_t N>
class StripedMutexes {
 public:
  explicit StripedMutexes(const LockClass& cls) {
    for (size_t i = 0; i < N; ++i) {
      mus_[i].Bind(cls, static_cast<uint32_t>(i));
    }
  }

  StripedMutexes(const StripedMutexes&) = delete;
  StripedMutexes& operator=(const StripedMutexes&) = delete;

  Mutex& operator[](size_t i) { return mus_[i]; }
  const Mutex& operator[](size_t i) const { return mus_[i]; }
  static constexpr size_t size() { return N; }

 private:
  Mutex mus_[N];
};

}  // namespace gknn::util::lockdep

#endif  // GKNN_UTIL_LOCKDEP_H_
