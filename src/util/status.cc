#include "util/status.h"

namespace gknn::util {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kIoError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace gknn::util
