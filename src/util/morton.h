#ifndef GKNN_UTIL_MORTON_H_
#define GKNN_UTIL_MORTON_H_

#include <cstdint>
#include <utility>

namespace gknn::util {

/// Z-order (Morton) curve codec for two-dimensional grid coordinates.
///
/// The G-Grid stores its cells in a one-dimensional array ordered by the
/// Z-value of each cell's (x, y) grid coordinate (paper §III-A): the Z-value
/// interleaves the bits of y and x so that nearby cells in the grid tend to
/// be nearby in the array, which preserves memory locality for the GPU.
///
/// Bit convention (matches the paper's example): x supplies the even bits
/// (bit 0, 2, 4, ...) and y supplies the odd bits, so (x=3, y=4) maps to
/// interleave(y=100, x=011) = 100101b = 37.

/// Spreads the low 32 bits of `v` so that bit i moves to bit 2*i.
uint64_t SpreadBits2(uint32_t v);

/// Inverse of SpreadBits2: collects every second bit (bit 2*i -> bit i).
uint32_t CollectBits2(uint64_t v);

/// Encodes grid coordinate (x, y) to its Z-value.
inline uint64_t MortonEncode(uint32_t x, uint32_t y) {
  return SpreadBits2(x) | (SpreadBits2(y) << 1);
}

/// Decodes a Z-value back to its (x, y) grid coordinate.
inline std::pair<uint32_t, uint32_t> MortonDecode(uint64_t z) {
  return {CollectBits2(z), CollectBits2(z >> 1)};
}

}  // namespace gknn::util

#endif  // GKNN_UTIL_MORTON_H_
