#include "util/lockdep.h"

#if GKNN_LOCKDEP

#include <sstream>

#include "util/logging.h"

namespace gknn::util::lockdep {
namespace {

/// Upper bound on distinct LockClasses (production table + test-local
/// classes). Classes past the bound still get rank/leaf checking; only
/// the order graph skips them.
constexpr int kMaxClasses = 64;

/// Upper bound on locks one thread holds at once. The production maximum
/// is the cleaner's full stripe set plus the enclosing query locks.
constexpr int kMaxHeld = 128;

struct Registry {
  std::mutex mu;  // gknn-lint: allow(raw-mutex): lockdep internals are untracked
  const LockClass* classes[kMaxClasses] = {};
  int num_classes = 0;
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives static destructors
  return *r;
}

/// Acquisition-order graph over class ids. edge[f][t] is set once the
/// program has been observed holding f while acquiring t; insertion of a
/// new edge runs a DFS under graph_mu to detect a t ->* f path — a cycle
/// means some pair of threads orders the classes both ways, a potential
/// deadlock even if this run never interleaves into one.
struct OrderGraph {
  std::mutex mu;  // gknn-lint: allow(raw-mutex): lockdep internals are untracked
  std::atomic<bool> edge[kMaxClasses][kMaxClasses] = {};
};

OrderGraph& graph() {
  static OrderGraph* g = new OrderGraph;
  return *g;
}

struct Held {
  const LockClass* cls;
  uint32_t key;
  const void* addr;
};

thread_local Held t_held[kMaxHeld];
thread_local int t_num_held = 0;

std::atomic<uint64_t> g_violations{0};
std::atomic<ViolationHandler> g_handler{nullptr};

struct LastViolation {
  std::mutex mu;  // gknn-lint: allow(raw-mutex): lockdep internals are untracked
  std::string message;
};

LastViolation& last_violation() {
  static LastViolation* v = new LastViolation;
  return *v;
}

void Report(Violation::Kind kind, std::string message) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  {
    LastViolation& last = last_violation();
    std::lock_guard<std::mutex> lock(last.mu);  // gknn-lint: allow(raw-mutex): lockdep internals
    last.message = message;
  }
  ViolationHandler handler = g_handler.load(std::memory_order_acquire);
  if (handler != nullptr) {
    handler(Violation{kind, std::move(message)});
  } else {
    GKNN_LOG(Error) << "lockdep: " << message;
  }
}

/// DFS over the order graph: is `to` reachable from `from`?
bool Reaches(const OrderGraph& g, int from, int to) {
  bool visited[kMaxClasses] = {};
  int stack[kMaxClasses];
  int depth = 0;
  stack[depth++] = from;
  visited[from] = true;
  while (depth > 0) {
    const int node = stack[--depth];
    if (node == to) return true;
    for (int next = 0; next < kMaxClasses; ++next) {
      if (!visited[next] &&
          g.edge[node][next].load(std::memory_order_relaxed)) {
        visited[next] = true;
        stack[depth++] = next;
      }
    }
  }
  return false;
}

/// Records the edge held -> acquired; on first insertion checks whether
/// the reverse direction was already reachable, which closes a cycle.
void AddEdge(const LockClass& held, const LockClass& acquired) {
  const int from = held.id();
  const int to = acquired.id();
  if (from < 0 || to < 0 || from == to) return;
  OrderGraph& g = graph();
  if (g.edge[from][to].load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(g.mu);  // gknn-lint: allow(raw-mutex): lockdep internals
  if (g.edge[from][to].exchange(true, std::memory_order_relaxed)) return;
  if (Reaches(g, to, from)) {
    std::ostringstream oss;
    oss << "acquisition-order cycle: holding " << held.name()
        << " while acquiring " << acquired.name() << ", but "
        << acquired.name() << " is already ordered before " << held.name()
        << " on some other path (potential ABBA deadlock)";
    Report(Violation::Kind::kCycle, oss.str());
  }
}

}  // namespace

int LockClass::id() const {
  int id = id_.load(std::memory_order_acquire);
  if (id >= 0) return id;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);  // gknn-lint: allow(raw-mutex): lockdep internals
  id = id_.load(std::memory_order_relaxed);
  if (id >= 0) return id;
  if (r.num_classes >= kMaxClasses) {
    id_.store(-2, std::memory_order_release);  // no graph slot; checks still run
    return -2;
  }
  id = r.num_classes++;
  r.classes[id] = this;
  id_.store(id, std::memory_order_release);
  return id;
}

uint64_t ViolationCount() {
  return g_violations.load(std::memory_order_relaxed);
}

Status LastViolationStatus() {
  LastViolation& last = last_violation();
  std::lock_guard<std::mutex> lock(last.mu);  // gknn-lint: allow(raw-mutex): lockdep internals
  if (last.message.empty()) return Status::OK();
  return Status::Internal("lockdep violation: " + last.message);
}

ViolationHandler SetViolationHandler(ViolationHandler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

void ResetViolationsForTesting() {
  g_violations.store(0, std::memory_order_relaxed);
  LastViolation& last = last_violation();
  std::lock_guard<std::mutex> lock(last.mu);  // gknn-lint: allow(raw-mutex): lockdep internals
  last.message.clear();
}

namespace internal {

void OnAcquire(const LockClass& cls, uint32_t key, const void* addr) {
  if (t_num_held > 0) {
    // One pass over the held stack: the deepest rank, whether a leaf is
    // held, and the deepest same-class instance key.
    int max_rank = INT32_MIN;
    const LockClass* deepest = nullptr;
    const LockClass* held_leaf = nullptr;
    bool same_class = false;
    uint32_t max_same_key = 0;
    for (int i = 0; i < t_num_held; ++i) {
      const Held& h = t_held[i];
      if (h.cls->rank() >= max_rank) {
        max_rank = h.cls->rank();
        deepest = h.cls;
      }
      if (h.cls->leaf()) held_leaf = h.cls;
      if (h.cls == &cls) {
        same_class = true;
        if (h.key >= max_same_key) max_same_key = h.key;
      }
    }
    std::ostringstream oss;
    if (held_leaf != nullptr) {
      oss << "acquired " << cls.name() << " (rank " << cls.rank()
          << ") while holding leaf class " << held_leaf->name()
          << " — leaves must never be held across another acquisition";
      Report(Violation::Kind::kLeafHeld, oss.str());
    } else if (same_class) {
      if (!cls.nestable()) {
        oss << "re-entered non-nestable class " << cls.name()
            << " (already held by this thread)";
        Report(Violation::Kind::kSameClass, oss.str());
      } else if (key <= max_same_key) {
        oss << "nestable class " << cls.name() << ": acquired key " << key
            << " while already holding key " << max_same_key
            << " — instance keys must be strictly ascending"
            << " (ascending-stripe rule)";
        Report(Violation::Kind::kSameClass, oss.str());
      }
    } else if (cls.rank() < max_rank) {
      oss << "rank inversion: acquired " << cls.name() << " (rank "
          << cls.rank() << ") while holding " << deepest->name() << " (rank "
          << max_rank << ")";
      Report(Violation::Kind::kRankInversion, oss.str());
    }
    // Feed the order graph from every held class, violation or not: the
    // cycle detector should still learn from runs that also break ranks.
    for (int i = 0; i < t_num_held; ++i) {
      if (t_held[i].cls != &cls) AddEdge(*t_held[i].cls, cls);
    }
  }
  if (t_num_held < kMaxHeld) {
    t_held[t_num_held++] = Held{&cls, key, addr};
  }
}

void OnRelease(const void* addr) {
  // Scan from the top: releases are almost always LIFO; a mid-stack hit
  // is a condition-variable wait or an explicit early unlock.
  for (int i = t_num_held - 1; i >= 0; --i) {
    if (t_held[i].addr != addr) continue;
    for (int j = i; j + 1 < t_num_held; ++j) t_held[j] = t_held[j + 1];
    --t_num_held;
    return;
  }
  // Unknown address: the stack overflowed at acquisition time; ignore.
}

}  // namespace internal

}  // namespace gknn::util::lockdep

#endif  // GKNN_LOCKDEP
