#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace gknn::util {

ThreadPool::ThreadPool(unsigned num_threads, size_t max_queued)
    : max_queued_(max_queued) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::ThreadPool(Inline) {}  // no workers: Submit runs inline

ThreadPool::~ThreadPool() {
  {
    lockdep::MutexLock lock(mu_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline pool: synchronous execution, nothing ever queues, so Wait()
    // trivially holds once Submit returns.
    task();
    return;
  }
  {
    lockdep::MutexLock lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  if (workers_.empty()) {
    // Inline pool: nothing ever queues, so the bound cannot be exceeded.
    task();
    return true;
  }
  {
    lockdep::MutexLock lock(mu_);
    if (max_queued_ != 0 && queue_.size() >= max_queued_) return false;
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
  return true;
}

std::future<void> ThreadPool::SubmitTask(std::function<void()> task) {
  // std::function must be copyable, so the move-only packaged_task rides
  // behind a shared_ptr.
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  Submit([packaged] { (*packaged)(); });
  return future;
}

std::future<void> ThreadPool::SubmitTask(Submission submission) {
  auto body = [this, run = std::move(submission.run),
               on_expired = std::move(submission.on_expired),
               deadline = submission.deadline] {
    // The expiry check runs on the worker, immediately before execution:
    // a task whose budget died while it sat in the queue is dropped here,
    // before it takes any lock or touches the device.
    if (deadline.Expired()) {
      expired_tasks_.fetch_add(1, std::memory_order_relaxed);
      if (on_expired) on_expired();
      return;
    }
    run();
  };
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(body));
  std::future<void> future = packaged->get_future();
  Submit([packaged] { (*packaged)(); });
  return future;
}

std::optional<std::future<void>> ThreadPool::TrySubmitTask(
    Submission submission) {
  auto body = [this, run = std::move(submission.run),
               on_expired = std::move(submission.on_expired),
               deadline = submission.deadline] {
    if (deadline.Expired()) {
      expired_tasks_.fetch_add(1, std::memory_order_relaxed);
      if (on_expired) on_expired();
      return;
    }
    run();
  };
  auto packaged = std::make_shared<std::packaged_task<void()>>(std::move(body));
  std::future<void> future = packaged->get_future();
  if (!TrySubmit([packaged] { (*packaged)(); })) return std::nullopt;
  return future;
}

void ThreadPool::Wait() {
  lockdep::UniqueLock lock(mu_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

size_t ThreadPool::queued() const {
  lockdep::MutexLock lock(mu_);
  return queue_.size();
}

void ThreadPool::ParallelFor(uint64_t n,
                             const std::function<void(uint64_t)>& fn) {
  if (n == 0) return;
  const unsigned workers = num_threads();
  if (workers <= 1 || n == 1) {
    for (uint64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Static chunking: cheap and deterministic; the per-iteration work in our
  // call sites (bounded Dijkstra searches) is coarse enough that dynamic
  // stealing would not pay for its overhead.
  const uint64_t chunks = std::min<uint64_t>(n, workers * 4ull);
  std::atomic<uint64_t> next{0};
  for (uint64_t c = 0; c < chunks; ++c) {
    Submit([&, chunks, n] {
      for (;;) {
        const uint64_t chunk = next.fetch_add(1, std::memory_order_relaxed);
        if (chunk >= chunks) return;
        const uint64_t begin = chunk * n / chunks;
        const uint64_t end = (chunk + 1) * n / chunks;
        for (uint64_t i = begin; i < end; ++i) fn(i);
      }
    });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      lockdep::UniqueLock lock(mu_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      lockdep::MutexLock lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace gknn::util
