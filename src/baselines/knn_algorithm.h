#ifndef GKNN_BASELINES_KNN_ALGORITHM_H_
#define GKNN_BASELINES_KNN_ALGORITHM_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/types.h"
#include "roadnet/graph.h"
#include "util/result.h"

namespace gknn::baselines {

/// Time spent by an algorithm, split by where it ran. `cpu_seconds` is
/// self-measured host wall time; `gpu_seconds`/`transfer_seconds` are the
/// simulated device's modeled times (zero for CPU-only algorithms). The
/// benchmark harness accumulates these into the paper's amortized
/// (T_u + T_q) / n_q metric.
struct TimeBreakdown {
  double cpu_seconds = 0;
  double gpu_seconds = 0;
  double transfer_seconds = 0;
  uint64_t h2d_bytes = 0;
  uint64_t d2h_bytes = 0;

  double total() const { return cpu_seconds + gpu_seconds; }
  uint64_t transfer_bytes() const { return h2d_bytes + d2h_bytes; }

  TimeBreakdown& operator+=(const TimeBreakdown& other) {
    cpu_seconds += other.cpu_seconds;
    gpu_seconds += other.gpu_seconds;
    transfer_seconds += other.transfer_seconds;
    h2d_bytes += other.h2d_bytes;
    d2h_bytes += other.d2h_bytes;
    return *this;
  }
};

/// Common interface over G-Grid and the baseline algorithms, as compared in
/// the paper's §VII: V-Tree [4], ROAD [9] (extended to moving objects),
/// V-Tree (G), and a brute-force oracle.
///
/// All implementations answer the same snapshot kNN query (Definition 1)
/// with identical travel semantics, so their results are interchangeable
/// and cross-checked in tests.
class KnnAlgorithm {
 public:
  virtual ~KnnAlgorithm() = default;

  virtual std::string_view name() const = 0;

  /// Processes one object location update.
  virtual void Ingest(core::ObjectId object, roadnet::EdgePoint position,
                      double time) = 0;

  /// Answers a kNN query at time t_now: up to k entries by ascending
  /// network distance.
  virtual util::Result<std::vector<core::KnnResultEntry>> QueryKnn(
      roadnet::EdgePoint location, uint32_t k, double t_now) = 0;

  /// Resident index size in bytes (graph representation + object
  /// structures + precomputed tables), as reported in Fig. 6.
  virtual uint64_t MemoryBytes() const = 0;

  /// Returns the time consumed since the previous call and resets the
  /// accumulator.
  virtual TimeBreakdown ConsumeCosts() = 0;
};

}  // namespace gknn::baselines

#endif  // GKNN_BASELINES_KNN_ALGORITHM_H_
