#include "baselines/vtree.h"

#include <algorithm>
#include <queue>
#include <set>

#include "roadnet/dijkstra.h"
#include "util/logging.h"
#include "util/timer.h"

namespace gknn::baselines {

using core::KnnResultEntry;
using core::ObjectId;
using roadnet::Distance;
using roadnet::Edge;
using roadnet::EdgeId;
using roadnet::EdgePoint;
using roadnet::Graph;
using roadnet::kInfiniteDistance;
using roadnet::VertexId;

util::Result<std::unique_ptr<VTree>> VTree::Build(const Graph* graph,
                                                  const Options& options) {
  GKNN_ASSIGN_OR_RETURN(roadnet::BisectionTree tree,
                        roadnet::BuildBisectionTree(*graph, options.leaf_size,
                                                    options.partition));
  std::unique_ptr<VTree> vtree(new VTree(graph));
  vtree->leaf_of_vertex_.assign(graph->num_vertices(), 0);
  GKNN_ASSIGN_OR_RETURN(vtree->hierarchy_,
                        roadnet::BuildBorderHierarchy(*graph, tree));
  vtree->node_object_count_.assign(tree.nodes.size(), 0);

  // Collect leaves from the bisection tree; renumber densely.
  std::unordered_map<uint32_t, uint32_t> leaf_id_of_node;
  for (uint32_t n = 0; n < tree.nodes.size(); ++n) {
    if (!tree.nodes[n].IsLeaf()) continue;
    const uint32_t leaf_id = static_cast<uint32_t>(vtree->leaves_.size());
    leaf_id_of_node.emplace(n, leaf_id);
    Leaf leaf;
    leaf.vertices = tree.nodes[n].vertices;
    std::sort(leaf.vertices.begin(), leaf.vertices.end());
    for (uint32_t i = 0; i < leaf.vertices.size(); ++i) {
      leaf.local_of.emplace(leaf.vertices[i], i);
      vtree->leaf_of_vertex_[leaf.vertices[i]] = leaf_id;
    }
    vtree->leaves_.push_back(std::move(leaf));
  }

  // Identify borders: a vertex with any edge (either direction) whose
  // other endpoint lies in a different leaf.
  for (uint32_t leaf_id = 0; leaf_id < vtree->leaves_.size(); ++leaf_id) {
    Leaf& leaf = vtree->leaves_[leaf_id];
    for (VertexId v : leaf.vertices) {
      bool is_border = false;
      for (EdgeId id : graph->OutEdgeIds(v)) {
        if (vtree->leaf_of_vertex_[graph->edge(id).target] != leaf_id) {
          is_border = true;
          break;
        }
      }
      if (!is_border) {
        for (EdgeId id : graph->InEdgeIds(v)) {
          if (vtree->leaf_of_vertex_[graph->edge(id).source] != leaf_id) {
            is_border = true;
            break;
          }
        }
      }
      if (is_border) {
        leaf.borders.push_back(v);
        vtree->border_index_.emplace(
            v, static_cast<uint32_t>(vtree->border_vertices_.size()));
        vtree->border_vertices_.push_back(v);
      }
    }
  }

  // Precompute within-leaf border-to-vertex matrices: a Dijkstra per
  // border restricted to the leaf's subgraph.
  for (uint32_t leaf_id = 0; leaf_id < vtree->leaves_.size(); ++leaf_id) {
    Leaf& leaf = vtree->leaves_[leaf_id];
    const uint32_t n = static_cast<uint32_t>(leaf.vertices.size());
    leaf.border_to_vertex.assign(
        static_cast<size_t>(leaf.borders.size()) * n, kInfiniteDistance);
    for (uint32_t row = 0; row < leaf.borders.size(); ++row) {
      // Dijkstra within the leaf subgraph over local ids.
      std::vector<Distance> dist(n, kInfiniteDistance);
      util::IndexedMinHeap<Distance> heap(n);
      const uint32_t source_local = leaf.local_of.at(leaf.borders[row]);
      dist[source_local] = 0;
      heap.PushOrDecrease(source_local, 0);
      while (!heap.empty()) {
        auto [u, d] = heap.Pop();
        for (EdgeId id : graph->OutEdgeIds(leaf.vertices[u])) {
          const Edge& e = graph->edge(id);
          auto it = leaf.local_of.find(e.target);
          if (it == leaf.local_of.end()) continue;  // leaves the subgraph
          if (d + e.weight < dist[it->second]) {
            dist[it->second] = d + e.weight;
            heap.PushOrDecrease(it->second, d + e.weight);
          }
        }
      }
      std::copy(dist.begin(), dist.end(),
                leaf.border_to_vertex.begin() +
                    static_cast<size_t>(row) * n);
    }
  }

  // Border overlay: within-leaf border-to-border entries plus original
  // crossing edges.
  const uint32_t num_borders =
      static_cast<uint32_t>(vtree->border_vertices_.size());
  std::vector<std::vector<OverlayEdge>> adjacency(num_borders);
  for (const Leaf& leaf : vtree->leaves_) {
    for (uint32_t row = 0; row < leaf.borders.size(); ++row) {
      const uint32_t from = vtree->border_index_.at(leaf.borders[row]);
      for (VertexId to_vertex : leaf.borders) {
        if (to_vertex == leaf.borders[row]) continue;
        const Distance d =
            leaf.BorderToVertex(row, leaf.local_of.at(to_vertex));
        if (d != kInfiniteDistance) {
          adjacency[from].push_back(
              OverlayEdge{vtree->border_index_.at(to_vertex), d});
        }
      }
    }
  }
  for (const Edge& e : graph->edges()) {
    if (vtree->leaf_of_vertex_[e.source] != vtree->leaf_of_vertex_[e.target]) {
      adjacency[vtree->border_index_.at(e.source)].push_back(
          OverlayEdge{vtree->border_index_.at(e.target), e.weight});
    }
  }
  vtree->overlay_offsets_.assign(num_borders + 1, 0);
  for (uint32_t b = 0; b < num_borders; ++b) {
    vtree->overlay_offsets_[b + 1] =
        vtree->overlay_offsets_[b] + static_cast<uint32_t>(adjacency[b].size());
  }
  vtree->overlay_edges_.reserve(vtree->overlay_offsets_.back());
  for (auto& edges : adjacency) {
    vtree->overlay_edges_.insert(vtree->overlay_edges_.end(), edges.begin(),
                                 edges.end());
  }
  return vtree;
}

void VTree::RebuildLeafObjectCache(uint32_t leaf_id) {
  Leaf& leaf = leaves_[leaf_id];
  leaf.border_to_object.assign(
      static_cast<size_t>(leaf.borders.size()) * leaf.objects.size(),
      kInfiniteDistance);
  for (uint32_t row = 0; row < leaf.borders.size(); ++row) {
    for (uint32_t col = 0; col < leaf.objects.size(); ++col) {
      const auto it = positions_.find(leaf.objects[col]);
      GKNN_DCHECK(it != positions_.end());
      const Edge& e = graph_->edge(it->second.edge);
      const Distance d =
          leaf.BorderToVertex(row, leaf.local_of.at(e.source));
      if (d != kInfiniteDistance) {
        leaf.border_to_object[row * leaf.objects.size() + col] =
            d + it->second.offset;
      }
    }
  }
  last_update_work_ +=
      static_cast<uint64_t>(leaf.borders.size()) * leaf.objects.size();
}

void VTree::Ingest(ObjectId object, EdgePoint position, double time) {
  (void)time;
  const Update update{object, position};
  IngestBatch(std::span<const Update>(&update, 1));
}

void VTree::IngestBatch(std::span<const Update> updates) {
  util::Timer timer;
  last_update_work_ = 0;
  std::vector<uint32_t> dirty_leaves;
  // Eager maintenance of the per-node object counts along the
  // leaf-to-root path (the tree's occupancy pruning data).
  auto adjust_counts = [&](VertexId vertex, int32_t delta) {
    for (uint32_t n = hierarchy_.leaf_node_of_vertex[vertex];;
         n = hierarchy_.nodes[n].parent) {
      node_object_count_[n] =
          static_cast<uint32_t>(node_object_count_[n] + delta);
      if (n == 0) break;
    }
  };
  for (const Update& u : updates) {
    const VertexId new_vertex = graph_->edge(u.position.edge).source;
    const uint32_t new_leaf = leaf_of_vertex_[new_vertex];
    auto it = positions_.find(u.object);
    if (it != positions_.end()) {
      const VertexId old_vertex = graph_->edge(it->second.edge).source;
      const uint32_t old_leaf = leaf_of_vertex_[old_vertex];
      it->second = u.position;
      if (old_leaf != new_leaf) {
        auto& old_objects = leaves_[old_leaf].objects;
        old_objects.erase(
            std::remove(old_objects.begin(), old_objects.end(), u.object),
            old_objects.end());
        leaves_[new_leaf].objects.push_back(u.object);
        dirty_leaves.push_back(old_leaf);
        adjust_counts(old_vertex, -1);
        adjust_counts(new_vertex, +1);
      }
    } else {
      positions_.emplace(u.object, u.position);
      leaves_[new_leaf].objects.push_back(u.object);
      adjust_counts(new_vertex, +1);
    }
    dirty_leaves.push_back(new_leaf);
  }
  // Eager maintenance: every affected leaf's border-to-object entries are
  // recomputed before the update is acknowledged — the repeated work the
  // paper's lazy scheme skips. Batching (the GPU variant) at least
  // deduplicates leaves touched multiple times within one batch.
  std::sort(dirty_leaves.begin(), dirty_leaves.end());
  dirty_leaves.erase(std::unique(dirty_leaves.begin(), dirty_leaves.end()),
                     dirty_leaves.end());
  for (uint32_t leaf_id : dirty_leaves) RebuildLeafObjectCache(leaf_id);
  costs_.cpu_seconds += timer.ElapsedSeconds();
}

util::Result<std::vector<KnnResultEntry>> VTree::QueryKnn(EdgePoint location,
                                                          uint32_t k,
                                                          double t_now) {
  (void)t_now;
  if (k == 0) return util::Status::InvalidArgument("k must be positive");
  if (location.edge >= graph_->num_edges()) {
    return util::Status::InvalidArgument("query edge out of range");
  }
  util::Timer timer;
  last_query_scan_entries_ = 0;

  // Best distance per object plus an ordered multiset of those distances;
  // an object can be reached through several borders, so a plain k-bounded
  // heap would let duplicates evict distinct objects.
  std::unordered_map<ObjectId, Distance> best;
  std::multiset<Distance> best_values;
  auto offer = [&](ObjectId object, Distance d) {
    auto [it, inserted] = best.emplace(object, d);
    if (!inserted) {
      if (d >= it->second) return;
      best_values.erase(best_values.find(it->second));
      it->second = d;
    }
    best_values.insert(d);
  };
  // Distance of the current kth best (infinite while fewer than k known).
  auto kth_threshold = [&]() -> Distance {
    if (best_values.size() < k) return kInfiniteDistance;
    auto it = best_values.begin();
    std::advance(it, k - 1);
    return *it;
  };

  // Same-edge-ahead objects.
  for (const auto& [object, pos] : positions_) {
    if (pos.edge == location.edge && pos.offset >= location.offset) {
      offer(object, pos.offset - location.offset);
    }
  }

  // Entry: reach the query edge's target, then Dijkstra within its leaf.
  const Edge& query_edge = graph_->edge(location.edge);
  const VertexId entry = query_edge.target;
  const Distance entry_cost = query_edge.weight - location.offset;
  const uint32_t leaf0_id = leaf_of_vertex_[entry];
  const Leaf& leaf0 = leaves_[leaf0_id];

  std::vector<Distance> local_dist(leaf0.vertices.size(), kInfiniteDistance);
  {
    util::IndexedMinHeap<Distance> heap(
        static_cast<uint32_t>(leaf0.vertices.size()));
    const uint32_t src = leaf0.local_of.at(entry);
    local_dist[src] = entry_cost;
    heap.PushOrDecrease(src, entry_cost);
    while (!heap.empty()) {
      auto [u, d] = heap.Pop();
      for (EdgeId id : graph_->OutEdgeIds(leaf0.vertices[u])) {
        const Edge& e = graph_->edge(id);
        auto it = leaf0.local_of.find(e.target);
        if (it == leaf0.local_of.end()) continue;
        if (d + e.weight < local_dist[it->second]) {
          local_dist[it->second] = d + e.weight;
          heap.PushOrDecrease(it->second, d + e.weight);
        }
      }
    }
  }
  // Direct within-leaf distances to leaf0's objects.
  for (uint32_t col = 0; col < leaf0.objects.size(); ++col) {
    const auto& pos = positions_.at(leaf0.objects[col]);
    const Edge& e = graph_->edge(pos.edge);
    const Distance d = local_dist[leaf0.local_of.at(e.source)];
    if (d != kInfiniteDistance) {
      offer(leaf0.objects[col], d + pos.offset);
    }
  }

  // Best-first search over the border overlay. Leaves without objects are
  // only traversed (matrix hops), never scanned.
  const uint32_t num_borders =
      static_cast<uint32_t>(border_vertices_.size());
  util::IndexedMinHeap<Distance> heap(num_borders);
  std::vector<Distance> dist(num_borders, kInfiniteDistance);
  for (uint32_t row = 0; row < leaf0.borders.size(); ++row) {
    const Distance d = local_dist[leaf0.local_of.at(leaf0.borders[row])];
    if (d != kInfiniteDistance) {
      const uint32_t b = border_index_.at(leaf0.borders[row]);
      dist[b] = d;
      heap.PushOrDecrease(b, d);
    }
  }
  while (!heap.empty()) {
    auto [b, d] = heap.Pop();
    if (d >= kth_threshold()) break;  // no remaining path can improve top-k
    // Offer this leaf's objects through the maintained cache.
    const VertexId bv = border_vertices_[b];
    const uint32_t leaf_id = leaf_of_vertex_[bv];
    const Leaf& leaf = leaves_[leaf_id];
    if (!leaf.objects.empty()) {
      const uint32_t row = static_cast<uint32_t>(
          std::find(leaf.borders.begin(), leaf.borders.end(), bv) -
          leaf.borders.begin());
      last_query_scan_entries_ += leaf.objects.size();
      for (uint32_t col = 0; col < leaf.objects.size(); ++col) {
        const Distance od =
            leaf.border_to_object[row * leaf.objects.size() + col];
        if (od != kInfiniteDistance) {
          offer(leaf.objects[col], d + od);
        }
      }
    }
    // Empty-subtree skip: the largest object-free tree node containing bv
    // (and not the query entry) is crossed in one hop per border using its
    // precomputed matrix, instead of leaf-by-leaf overlay expansion. Any
    // entry into such a region lands on one of its borders, whose matrix
    // row covers every through-path, so interior borders need no
    // expansion at all.
    uint32_t skip = roadnet::BorderHierarchy::kNoNode;
    for (uint32_t n = hierarchy_.leaf_node_of_vertex[bv];;
         n = hierarchy_.nodes[n].parent) {
      if (node_object_count_[n] != 0 || hierarchy_.Contains(n, entry)) break;
      skip = n;
      if (n == 0) break;
    }
    if (skip != roadnet::BorderHierarchy::kNoNode) {
      auto sc = hierarchy_.nodes[skip].shortcuts.find(bv);
      if (sc != hierarchy_.nodes[skip].shortcuts.end()) {
        last_query_scan_entries_ += sc->second.size();
        for (const auto& [tv, w] : sc->second) {
          const uint32_t t = border_index_.at(tv);
          if (d + w < dist[t]) {
            dist[t] = d + w;
            heap.PushOrDecrease(t, d + w);
          }
        }
      }
      // Only edges that leave the skipped region still need relaxing.
      for (uint32_t i = overlay_offsets_[b]; i < overlay_offsets_[b + 1];
           ++i) {
        const OverlayEdge& e = overlay_edges_[i];
        if (hierarchy_.Contains(skip, border_vertices_[e.target])) continue;
        if (d + e.weight < dist[e.target]) {
          dist[e.target] = d + e.weight;
          heap.PushOrDecrease(e.target, d + e.weight);
        }
      }
      continue;
    }
    last_query_scan_entries_ += overlay_offsets_[b + 1] - overlay_offsets_[b];
    for (uint32_t i = overlay_offsets_[b]; i < overlay_offsets_[b + 1]; ++i) {
      const OverlayEdge& e = overlay_edges_[i];
      if (d + e.weight < dist[e.target]) {
        dist[e.target] = d + e.weight;
        heap.PushOrDecrease(e.target, d + e.weight);
      }
    }
  }

  util::BoundedTopK<KnnResultEntry> topk(k);
  for (const auto& [object, d] : best) {
    topk.Offer(KnnResultEntry{object, d});
  }
  costs_.cpu_seconds += timer.ElapsedSeconds();
  return topk.TakeSorted();
}

uint64_t VTree::MemoryBytes() const {
  uint64_t bytes = MatrixBytes();
  bytes += node_object_count_.size() * sizeof(uint32_t);
  bytes += leaf_of_vertex_.size() * sizeof(uint32_t);
  bytes += border_vertices_.size() * sizeof(VertexId);
  bytes += overlay_offsets_.size() * sizeof(uint32_t);
  bytes += overlay_edges_.size() * sizeof(OverlayEdge);
  for (const Leaf& leaf : leaves_) {
    bytes += leaf.vertices.size() * sizeof(VertexId) +
             leaf.borders.size() * sizeof(VertexId) +
             leaf.objects.size() * sizeof(ObjectId) +
             leaf.border_to_object.size() * sizeof(Distance) +
             leaf.local_of.size() * (sizeof(VertexId) + sizeof(uint32_t) +
                                     2 * sizeof(void*));
  }
  bytes += positions_.size() *
           (sizeof(ObjectId) + sizeof(EdgePoint) + 2 * sizeof(void*));
  return bytes;
}

uint64_t VTree::MatrixBytes() const {
  // Within-leaf border-to-vertex matrices plus the hierarchy's per-node
  // border-to-border matrices — the precomputed distance data V-Tree
  // carries (and what makes its index larger than G-Grid's, Fig. 6).
  uint64_t bytes = hierarchy_.MemoryBytes();
  for (const Leaf& leaf : leaves_) {
    bytes += leaf.border_to_vertex.size() * sizeof(Distance);
  }
  return bytes;
}

}  // namespace gknn::baselines
