#ifndef GKNN_BASELINES_BRUTE_FORCE_H_
#define GKNN_BASELINES_BRUTE_FORCE_H_

#include <unordered_map>
#include <vector>

#include "baselines/knn_algorithm.h"
#include "roadnet/graph.h"

namespace gknn::baselines {

/// Ground-truth oracle: keeps only a hash table of latest positions and
/// answers queries with a full single-source Dijkstra from the query point.
/// Exact by construction; used to validate every other algorithm and as
/// the "no index" lower bound on index size.
class BruteForce : public KnnAlgorithm {
 public:
  explicit BruteForce(const roadnet::Graph* graph) : graph_(graph) {}

  std::string_view name() const override { return "BruteForce"; }

  void Ingest(core::ObjectId object, roadnet::EdgePoint position,
              double time) override;

  util::Result<std::vector<core::KnnResultEntry>> QueryKnn(
      roadnet::EdgePoint location, uint32_t k, double t_now) override;

  uint64_t MemoryBytes() const override;

  TimeBreakdown ConsumeCosts() override {
    TimeBreakdown out = costs_;
    costs_ = TimeBreakdown{};
    return out;
  }

 private:
  const roadnet::Graph* graph_;
  std::unordered_map<core::ObjectId, roadnet::EdgePoint> positions_;
  TimeBreakdown costs_;
};

}  // namespace gknn::baselines

#endif  // GKNN_BASELINES_BRUTE_FORCE_H_
