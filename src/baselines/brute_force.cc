#include "baselines/brute_force.h"

#include <algorithm>

#include "roadnet/dijkstra.h"
#include "util/min_heap.h"
#include "util/timer.h"

namespace gknn::baselines {

using core::KnnResultEntry;
using roadnet::Distance;
using roadnet::EdgePoint;
using roadnet::kInfiniteDistance;

void BruteForce::Ingest(core::ObjectId object, EdgePoint position,
                        double time) {
  (void)time;
  util::Timer timer;
  positions_[object] = position;
  costs_.cpu_seconds += timer.ElapsedSeconds();
}

util::Result<std::vector<KnnResultEntry>> BruteForce::QueryKnn(
    EdgePoint location, uint32_t k, double t_now) {
  (void)t_now;
  if (k == 0) return util::Status::InvalidArgument("k must be positive");
  if (location.edge >= graph_->num_edges()) {
    return util::Status::InvalidArgument("query edge out of range");
  }
  util::Timer timer;
  const auto dist = roadnet::ShortestPathsFromPoint(*graph_, location);
  util::BoundedTopK<KnnResultEntry> topk(k);
  for (const auto& [object, pos] : positions_) {
    const auto& e = graph_->edge(pos.edge);
    Distance d = kInfiniteDistance;
    if (dist[e.source] != kInfiniteDistance) {
      d = dist[e.source] + pos.offset;
    }
    if (pos.edge == location.edge && pos.offset >= location.offset) {
      d = std::min<Distance>(d, pos.offset - location.offset);
    }
    if (d != kInfiniteDistance) topk.Offer(KnnResultEntry{object, d});
  }
  costs_.cpu_seconds += timer.ElapsedSeconds();
  return topk.TakeSorted();
}

uint64_t BruteForce::MemoryBytes() const {
  return positions_.size() *
             (sizeof(core::ObjectId) + sizeof(EdgePoint) + 2 * sizeof(void*)) +
         positions_.bucket_count() * sizeof(void*);
}

}  // namespace gknn::baselines
