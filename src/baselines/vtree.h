#ifndef GKNN_BASELINES_VTREE_H_
#define GKNN_BASELINES_VTREE_H_

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "baselines/knn_algorithm.h"
#include "roadnet/border_hierarchy.h"
#include "roadnet/graph.h"
#include "roadnet/partitioner.h"
#include "util/min_heap.h"

namespace gknn::baselines {

/// The V-Tree baseline [Shen et al., ICDE 2017], the paper's main
/// comparison point: a balanced partition tree over the road network with
/// precomputed border-distance matrices, object lists attached to leaf
/// subgraphs, and *eager* index maintenance — every location update
/// immediately rebuilds the affected leaves' border-to-object distance
/// entries, which is exactly the per-update work G-Grid's lazy scheme
/// avoids.
///
/// Query processing follows the V-Tree/G-tree scheme: distances travel
/// through leaf borders using the precomputed within-leaf matrices
/// (assembled here as a border overlay graph), object-free subtrees are
/// crossed in one hop using the per-node border matrices of the tree
/// hierarchy (the storage that makes V-Tree's index large, Fig. 6), and
/// object distances come straight from the maintained border-to-object
/// entries. Results are exact and are cross-validated against the
/// brute-force oracle in tests.
class VTree : public KnnAlgorithm {
 public:
  struct Options {
    /// Maximum vertices per leaf subgraph.
    uint32_t leaf_size = 128;
    roadnet::PartitionOptions partition;
  };

  static util::Result<std::unique_ptr<VTree>> Build(
      const roadnet::Graph* graph, const Options& options);

  std::string_view name() const override { return "V-Tree"; }

  void Ingest(core::ObjectId object, roadnet::EdgePoint position,
              double time) override;

  /// One buffered location update (used by the batched GPU variant).
  struct Update {
    core::ObjectId object;
    roadnet::EdgePoint position;
  };

  /// Applies a batch of updates, rebuilding each affected leaf's
  /// border-to-object entries once instead of once per update — the
  /// warp-batched maintenance V-Tree (G) performs on the device.
  void IngestBatch(std::span<const Update> updates);

  util::Result<std::vector<core::KnnResultEntry>> QueryKnn(
      roadnet::EdgePoint location, uint32_t k, double t_now) override;

  uint64_t MemoryBytes() const override;

  TimeBreakdown ConsumeCosts() override {
    TimeBreakdown out = costs_;
    costs_ = TimeBreakdown{};
    return out;
  }

  // --- introspection for tests and the GPU variant -----------------------

  uint32_t num_leaves() const { return static_cast<uint32_t>(leaves_.size()); }
  uint32_t num_borders() const {
    return static_cast<uint32_t>(border_vertices_.size());
  }
  /// Bytes of the precomputed distance matrices alone (what V-Tree (G)
  /// mirrors into device memory).
  uint64_t MatrixBytes() const;
  /// Work (in matrix-entry touches) done by the last eager update; the GPU
  /// variant bills this to the simulated device.
  uint64_t last_update_work() const { return last_update_work_; }

  /// Matrix entries scanned by the last query (border-to-object rows and
  /// shortcut rows). This is the data-parallel portion of a query: the GPU
  /// variant re-bills it to the simulated device, which is what makes
  /// V-Tree (G) overtake V-Tree at large k in the paper's Fig. 7.
  uint64_t last_query_scan_entries() const { return last_query_scan_entries_; }
  uint32_t LeafOfVertex(roadnet::VertexId v) const {
    return leaf_of_vertex_[v];
  }

 private:
  struct Leaf {
    std::vector<roadnet::VertexId> vertices;
    std::vector<roadnet::VertexId> borders;
    /// Row-major borders x vertices within-leaf shortest distances.
    std::vector<roadnet::Distance> border_to_vertex;
    /// Objects currently in this leaf (source vertex of their edge is
    /// here).
    std::vector<core::ObjectId> objects;
    /// Row-major borders x objects distances, rebuilt eagerly on every
    /// update touching this leaf.
    std::vector<roadnet::Distance> border_to_object;
    /// Position of each vertex in `vertices` (dense local ids).
    std::unordered_map<roadnet::VertexId, uint32_t> local_of;

    roadnet::Distance BorderToVertex(uint32_t border_row,
                                     uint32_t vertex_col) const {
      return border_to_vertex[border_row * vertices.size() + vertex_col];
    }
  };

  explicit VTree(const roadnet::Graph* graph) : graph_(graph) {}

  /// Rebuilds leaf.border_to_object after an object entered/left/moved
  /// within the leaf — the eager maintenance step.
  void RebuildLeafObjectCache(uint32_t leaf_id);

  const roadnet::Graph* graph_;
  std::vector<Leaf> leaves_;
  std::vector<uint32_t> leaf_of_vertex_;

  /// The partition-tree hierarchy with per-node border matrices, plus the
  /// eagerly maintained per-node object counts used to skip empty
  /// subtrees.
  roadnet::BorderHierarchy hierarchy_;
  std::vector<uint32_t> node_object_count_;

  // Border overlay graph: nodes are border vertices (across all leaves);
  // edges are within-leaf matrix entries plus original crossing edges.
  std::vector<roadnet::VertexId> border_vertices_;
  std::unordered_map<roadnet::VertexId, uint32_t> border_index_;
  std::vector<uint32_t> overlay_offsets_;  // CSR
  struct OverlayEdge {
    uint32_t target;  // overlay node index
    roadnet::Distance weight;
  };
  std::vector<OverlayEdge> overlay_edges_;

  std::unordered_map<core::ObjectId, roadnet::EdgePoint> positions_;
  TimeBreakdown costs_;
  uint64_t last_update_work_ = 0;
  uint64_t last_query_scan_entries_ = 0;
};

}  // namespace gknn::baselines

#endif  // GKNN_BASELINES_VTREE_H_
