#ifndef GKNN_BASELINES_CPU_GRID_H_
#define GKNN_BASELINES_CPU_GRID_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/knn_algorithm.h"
#include "roadnet/dijkstra.h"
#include "roadnet/graph.h"

namespace gknn::baselines {

/// CPU grid baseline: incremental network expansion (INE) over an eagerly
/// maintained object-location table — the classic CPU approach of Papadias
/// et al. [VLDB'03] that the paper's introduction positions against, and
/// the road-network analogue of the main-memory grids of Šidlauskas et
/// al. [SIGMOD'12] (related work [7]/[24]: "for update-intensive workloads
/// grid-based structures outperform tree-based structures").
///
/// Updates: O(1) hash-table and per-edge list maintenance (eager but
/// cheap — no precomputed distances to repair). Queries: a single bounded
/// Dijkstra from the query point that scans objects on the out-edges of
/// every settled vertex, shrinking its radius as the kth-best improves.
/// No index beyond the object structures, so memory is minimal and every
/// query pays the full expansion — the trade the GPU-accelerated G-Grid
/// removes.
class CpuGrid : public KnnAlgorithm {
 public:
  explicit CpuGrid(const roadnet::Graph* graph)
      : graph_(graph), search_(graph) {}

  std::string_view name() const override { return "CPU-INE"; }

  void Ingest(core::ObjectId object, roadnet::EdgePoint position,
              double time) override;

  util::Result<std::vector<core::KnnResultEntry>> QueryKnn(
      roadnet::EdgePoint location, uint32_t k, double t_now) override;

  uint64_t MemoryBytes() const override;

  TimeBreakdown ConsumeCosts() override {
    TimeBreakdown out = costs_;
    costs_ = TimeBreakdown{};
    return out;
  }

 private:
  const roadnet::Graph* graph_;
  roadnet::BoundedDijkstra search_;
  std::unordered_map<core::ObjectId, roadnet::EdgePoint> positions_;
  std::unordered_map<roadnet::EdgeId, std::vector<core::ObjectId>>
      objects_on_edge_;
  TimeBreakdown costs_;
};

}  // namespace gknn::baselines

#endif  // GKNN_BASELINES_CPU_GRID_H_
