#ifndef GKNN_BASELINES_ROAD_H_
#define GKNN_BASELINES_ROAD_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "baselines/knn_algorithm.h"
#include "roadnet/border_hierarchy.h"
#include "roadnet/graph.h"
#include "roadnet/partitioner.h"

namespace gknn::baselines {

/// The ROAD baseline [Lee, Lee, Zheng, EDBT 2009], extended to moving
/// objects following the V-Tree paper, as in the experiments of §VII.
///
/// ROAD organizes the network as a hierarchy of nested regional subnets
/// ("Rnets") with precomputed border-to-border *shortcuts* (the shared
/// roadnet::BorderHierarchy). A kNN search is a Dijkstra expansion that
/// skips over Rnets containing no objects by following their shortcuts
/// ("route overlay"), consulting the *association directory* (per-Rnet
/// object membership) to decide. Object updates eagerly maintain the
/// association directory along the whole leaf-to-root path; the directory
/// is kept as sorted arrays (ROAD's structures are sequential-scan
/// friendly, designed for disk pages), so each update pays an
/// O(|objects|) shift per level — the eager cost that dominates ROAD's
/// running time in the paper's experiments.
class Road : public KnnAlgorithm {
 public:
  struct Options {
    /// Rnet hierarchy leaf size.
    uint32_t leaf_size = 64;
    roadnet::PartitionOptions partition;
  };

  static util::Result<std::unique_ptr<Road>> Build(
      const roadnet::Graph* graph, const Options& options);

  std::string_view name() const override { return "ROAD"; }

  void Ingest(core::ObjectId object, roadnet::EdgePoint position,
              double time) override;

  util::Result<std::vector<core::KnnResultEntry>> QueryKnn(
      roadnet::EdgePoint location, uint32_t k, double t_now) override;

  uint64_t MemoryBytes() const override;

  TimeBreakdown ConsumeCosts() override {
    TimeBreakdown out = costs_;
    costs_ = TimeBreakdown{};
    return out;
  }

  uint32_t num_rnets() const {
    return static_cast<uint32_t>(hierarchy_.nodes.size());
  }
  const roadnet::BorderHierarchy& hierarchy() const { return hierarchy_; }

 private:
  explicit Road(const roadnet::Graph* graph) : graph_(graph) {}

  const roadnet::Graph* graph_;
  roadnet::BorderHierarchy hierarchy_;
  /// Association directory: objects inside each Rnet, sorted by id.
  std::vector<std::vector<core::ObjectId>> rnet_objects_;

  std::unordered_map<core::ObjectId, roadnet::EdgePoint> positions_;
  std::unordered_map<roadnet::EdgeId, std::vector<core::ObjectId>>
      objects_on_edge_;
  TimeBreakdown costs_;
};

}  // namespace gknn::baselines

#endif  // GKNN_BASELINES_ROAD_H_
