#include "baselines/cpu_grid.h"

#include <algorithm>
#include <set>

#include "util/min_heap.h"
#include "util/timer.h"

namespace gknn::baselines {

using core::KnnResultEntry;
using core::ObjectId;
using roadnet::Distance;
using roadnet::Edge;
using roadnet::EdgeId;
using roadnet::EdgePoint;
using roadnet::kInfiniteDistance;
using roadnet::VertexId;

void CpuGrid::Ingest(ObjectId object, EdgePoint position, double time) {
  (void)time;
  util::Timer timer;
  auto it = positions_.find(object);
  if (it != positions_.end() && it->second.edge != position.edge) {
    auto em = objects_on_edge_.find(it->second.edge);
    if (em != objects_on_edge_.end()) {
      auto& vec = em->second;
      vec.erase(std::remove(vec.begin(), vec.end(), object), vec.end());
      if (vec.empty()) objects_on_edge_.erase(em);
    }
  }
  if (it == positions_.end() || it->second.edge != position.edge) {
    objects_on_edge_[position.edge].push_back(object);
  }
  positions_[object] = position;
  costs_.cpu_seconds += timer.ElapsedSeconds();
}

util::Result<std::vector<KnnResultEntry>> CpuGrid::QueryKnn(
    EdgePoint location, uint32_t k, double t_now) {
  (void)t_now;
  if (k == 0) return util::Status::InvalidArgument("k must be positive");
  if (location.edge >= graph_->num_edges()) {
    return util::Status::InvalidArgument("query edge out of range");
  }
  util::Timer timer;

  std::unordered_map<ObjectId, Distance> best;
  std::multiset<Distance> best_values;
  auto offer = [&](ObjectId object, Distance d) {
    auto [it, inserted] = best.emplace(object, d);
    if (!inserted) {
      if (d >= it->second) return;
      best_values.erase(best_values.find(it->second));
      it->second = d;
    }
    best_values.insert(d);
  };
  auto kth = [&]() -> Distance {
    if (best_values.size() < k) return kInfiniteDistance - 1;
    auto it = best_values.begin();
    std::advance(it, k - 1);
    return *it;
  };

  for (const auto& [object, pos] : positions_) {
    if (pos.edge == location.edge && pos.offset >= location.offset) {
      offer(object, pos.offset - location.offset);
    }
  }

  // Incremental network expansion with a shrinking radius: the search
  // stops the moment the next settled vertex is farther than the current
  // kth-best object.
  search_.BeginSearch();
  {
    const Edge& e = graph_->edge(location.edge);
    search_.SeedMore(e.target, e.weight - location.offset);
  }
  search_.SearchPrunedDynamic(kth, [&](VertexId v, Distance d) {
    for (EdgeId id : graph_->OutEdgeIds(v)) {
      auto it = objects_on_edge_.find(id);
      if (it == objects_on_edge_.end()) continue;
      for (ObjectId o : it->second) {
        offer(o, d + positions_.at(o).offset);
      }
    }
    return true;
  });

  util::BoundedTopK<KnnResultEntry> topk(k);
  for (const auto& [object, d] : best) {
    topk.Offer(KnnResultEntry{object, d});
  }
  costs_.cpu_seconds += timer.ElapsedSeconds();
  return topk.TakeSorted();
}

uint64_t CpuGrid::MemoryBytes() const {
  uint64_t bytes = positions_.size() * (sizeof(ObjectId) + sizeof(EdgePoint) +
                                        2 * sizeof(void*));
  for (const auto& [edge, objects] : objects_on_edge_) {
    (void)edge;
    bytes += sizeof(EdgeId) + 2 * sizeof(void*) +
             objects.capacity() * sizeof(ObjectId);
  }
  return bytes;
}

}  // namespace gknn::baselines
