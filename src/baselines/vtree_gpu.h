#ifndef GKNN_BASELINES_VTREE_GPU_H_
#define GKNN_BASELINES_VTREE_GPU_H_

#include <memory>
#include <vector>

#include "baselines/vtree.h"
#include "gpusim/device.h"
#include "gpusim/device_buffer.h"

namespace gknn::baselines {

/// V-Tree (G): the GPU-resident V-Tree variant the paper builds as an
/// additional baseline (§VII-B): "we store the core index structure of
/// V-Tree in the GPU memory. Upon receiving a message, we send it to the
/// GPU immediately. We cache the messages in the GPU until the number of
/// cached messages reaches 32, i.e., the size of a GPU warp. Then, we
/// process the cached messages in parallel."
///
/// Here the distance matrices are mirrored into simulated device memory
/// (so building fails with ResourceExhausted when they exceed the device —
/// which is how the USA dataset drops out of Fig. 5, exactly as in the
/// paper), every message is charged as an immediate host-to-device
/// transfer, and each 32-message batch is applied by a warp-sized kernel
/// whose modeled time covers the eager matrix maintenance.
class VTreeG : public KnnAlgorithm {
 public:
  static util::Result<std::unique_ptr<VTreeG>> Build(
      const roadnet::Graph* graph, const VTree::Options& options,
      gpusim::Device* device);

  std::string_view name() const override { return "V-Tree (G)"; }

  void Ingest(core::ObjectId object, roadnet::EdgePoint position,
              double time) override;

  util::Result<std::vector<core::KnnResultEntry>> QueryKnn(
      roadnet::EdgePoint location, uint32_t k, double t_now) override;

  uint64_t MemoryBytes() const override;

  TimeBreakdown ConsumeCosts() override {
    TimeBreakdown out = costs_;
    costs_ = TimeBreakdown{};
    return out;
  }

  uint32_t pending_updates() const {
    return static_cast<uint32_t>(pending_.size());
  }

 private:
  VTreeG(std::unique_ptr<VTree> inner, gpusim::Device* device)
      : inner_(std::move(inner)), device_(device) {}

  /// Applies the buffered batch on the simulated device.
  void Flush();

  static constexpr uint32_t kWarpBatch = 32;

  std::unique_ptr<VTree> inner_;
  gpusim::Device* device_;
  gpusim::DeviceBuffer<uint8_t> device_matrices_;
  std::vector<VTree::Update> pending_;
  TimeBreakdown costs_;
};

}  // namespace gknn::baselines

#endif  // GKNN_BASELINES_VTREE_GPU_H_
