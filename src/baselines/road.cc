#include "baselines/road.h"

#include <algorithm>
#include <set>

#include "util/logging.h"
#include "util/min_heap.h"
#include "util/timer.h"

namespace gknn::baselines {

using core::KnnResultEntry;
using core::ObjectId;
using roadnet::BorderHierarchy;
using roadnet::Distance;
using roadnet::Edge;
using roadnet::EdgeId;
using roadnet::EdgePoint;
using roadnet::Graph;
using roadnet::kInfiniteDistance;
using roadnet::VertexId;

util::Result<std::unique_ptr<Road>> Road::Build(const Graph* graph,
                                                const Options& options) {
  GKNN_ASSIGN_OR_RETURN(roadnet::BisectionTree tree,
                        roadnet::BuildBisectionTree(*graph, options.leaf_size,
                                                    options.partition));
  std::unique_ptr<Road> road(new Road(graph));
  GKNN_ASSIGN_OR_RETURN(road->hierarchy_,
                        roadnet::BuildBorderHierarchy(*graph, tree));
  road->rnet_objects_.resize(road->hierarchy_.nodes.size());
  return road;
}

void Road::Ingest(ObjectId object, EdgePoint position, double time) {
  (void)time;
  util::Timer timer;
  auto it = positions_.find(object);
  if (it != positions_.end()) {
    // Remove from the association directory along the old leaf-to-root
    // path and from the old edge (eager maintenance, per update).
    if (it->second.edge != position.edge) {
      auto em = objects_on_edge_.find(it->second.edge);
      if (em != objects_on_edge_.end()) {
        auto& vec = em->second;
        vec.erase(std::remove(vec.begin(), vec.end(), object), vec.end());
        if (vec.empty()) objects_on_edge_.erase(em);
      }
    }
    const VertexId old_vertex = graph_->edge(it->second.edge).source;
    for (uint32_t n = hierarchy_.leaf_node_of_vertex[old_vertex];;
         n = hierarchy_.nodes[n].parent) {
      auto& objects = rnet_objects_[n];
      auto pos = std::lower_bound(objects.begin(), objects.end(), object);
      if (pos != objects.end() && *pos == object) objects.erase(pos);
      if (n == 0) break;
    }
    it->second = position;
  } else {
    positions_.emplace(object, position);
  }
  const VertexId new_vertex = graph_->edge(position.edge).source;
  for (uint32_t n = hierarchy_.leaf_node_of_vertex[new_vertex];;
       n = hierarchy_.nodes[n].parent) {
    auto& objects = rnet_objects_[n];
    auto pos = std::lower_bound(objects.begin(), objects.end(), object);
    if (pos == objects.end() || *pos != object) objects.insert(pos, object);
    if (n == 0) break;
  }
  auto& on_edge = objects_on_edge_[position.edge];
  if (std::find(on_edge.begin(), on_edge.end(), object) == on_edge.end()) {
    on_edge.push_back(object);
  }
  costs_.cpu_seconds += timer.ElapsedSeconds();
}

util::Result<std::vector<KnnResultEntry>> Road::QueryKnn(EdgePoint location,
                                                         uint32_t k,
                                                         double t_now) {
  (void)t_now;
  if (k == 0) return util::Status::InvalidArgument("k must be positive");
  if (location.edge >= graph_->num_edges()) {
    return util::Status::InvalidArgument("query edge out of range");
  }
  util::Timer timer;

  std::unordered_map<ObjectId, Distance> best;
  std::multiset<Distance> best_values;
  auto offer = [&](ObjectId object, Distance d) {
    auto [it, inserted] = best.emplace(object, d);
    if (!inserted) {
      if (d >= it->second) return;
      best_values.erase(best_values.find(it->second));
      it->second = d;
    }
    best_values.insert(d);
  };
  auto kth_threshold = [&]() -> Distance {
    if (best_values.size() < k) return kInfiniteDistance;
    auto it = best_values.begin();
    std::advance(it, k - 1);
    return *it;
  };

  for (const auto& [object, pos] : positions_) {
    if (pos.edge == location.edge && pos.offset >= location.offset) {
      offer(object, pos.offset - location.offset);
    }
  }

  // Dijkstra over the route overlay: raw edges inside occupied regions,
  // shortcut jumps over empty Rnets.
  const Edge& query_edge = graph_->edge(location.edge);
  util::IndexedMinHeap<Distance> heap(graph_->num_vertices());
  std::vector<Distance> dist(graph_->num_vertices(), kInfiniteDistance);
  const Distance entry_cost = query_edge.weight - location.offset;
  dist[query_edge.target] = entry_cost;
  heap.PushOrDecrease(query_edge.target, entry_cost);

  auto relax = [&](VertexId u, Distance d) {
    if (d < dist[u]) {
      dist[u] = d;
      heap.PushOrDecrease(u, d);
    }
  };

  while (!heap.empty()) {
    auto [v, d] = heap.Pop();
    if (d >= kth_threshold()) break;
    // Objects live on out-edges of settled vertices.
    for (EdgeId id : graph_->OutEdgeIds(v)) {
      auto em = objects_on_edge_.find(id);
      if (em != objects_on_edge_.end()) {
        for (ObjectId o : em->second) {
          offer(o, d + positions_.at(o).offset);
        }
      }
    }
    for (EdgeId id : graph_->OutEdgeIds(v)) {
      const Edge& e = graph_->edge(id);
      const VertexId u = e.target;
      const Distance du = d + e.weight;
      // Find the largest empty Rnet containing u but not v: the route
      // overlay lets the search hop straight to its borders.
      uint32_t skip = BorderHierarchy::kNoNode;
      for (uint32_t n = hierarchy_.leaf_node_of_vertex[u];;
           n = hierarchy_.nodes[n].parent) {
        if (hierarchy_.Contains(n, v) || !rnet_objects_[n].empty()) break;
        skip = n;
        if (n == 0) break;
      }
      relax(u, du);
      if (skip != BorderHierarchy::kNoNode) {
        auto sc = hierarchy_.nodes[skip].shortcuts.find(u);
        if (sc != hierarchy_.nodes[skip].shortcuts.end()) {
          for (const auto& [b, w] : sc->second) {
            relax(b, du + w);
          }
        }
      }
    }
  }

  util::BoundedTopK<KnnResultEntry> topk(k);
  for (const auto& [object, d] : best) {
    topk.Offer(KnnResultEntry{object, d});
  }
  costs_.cpu_seconds += timer.ElapsedSeconds();
  return topk.TakeSorted();
}

uint64_t Road::MemoryBytes() const {
  uint64_t bytes = hierarchy_.MemoryBytes();
  for (const auto& objects : rnet_objects_) {
    bytes += objects.capacity() * sizeof(ObjectId);
  }
  bytes += positions_.size() *
           (sizeof(ObjectId) + sizeof(EdgePoint) + 2 * sizeof(void*));
  for (const auto& [edge, objects] : objects_on_edge_) {
    (void)edge;
    bytes += sizeof(EdgeId) + 2 * sizeof(void*) +
             objects.capacity() * sizeof(ObjectId);
  }
  return bytes;
}

}  // namespace gknn::baselines
