#include "baselines/vtree_gpu.h"

#include "util/logging.h"

#include <algorithm>
#include <cmath>

#include "util/timer.h"

namespace gknn::baselines {

using gpusim::DeviceBuffer;
using gpusim::ThreadCtx;

util::Result<std::unique_ptr<VTreeG>> VTreeG::Build(
    const roadnet::Graph* graph, const VTree::Options& options,
    gpusim::Device* device) {
  GKNN_ASSIGN_OR_RETURN(std::unique_ptr<VTree> inner,
                        VTree::Build(graph, options));
  std::unique_ptr<VTreeG> vtree_g(new VTreeG(std::move(inner), device));
  // "We store the core index structure of V-Tree in the GPU memory": the
  // whole index (matrices, overlay, leaf structures) is mirrored. On
  // datasets where it does not fit, building fails — which is how the
  // paper's Fig. 5 omits V-Tree (G) on USA.
  const uint64_t index_bytes = vtree_g->inner_->MemoryBytes();
  GKNN_ASSIGN_OR_RETURN(
      vtree_g->device_matrices_,
      DeviceBuffer<uint8_t>::Allocate(device, index_bytes, "vtree_matrices"));
  device->ledger().RecordH2D(index_bytes, device->config());
  return vtree_g;
}

void VTreeG::Ingest(core::ObjectId object, roadnet::EdgePoint position,
                    double time) {
  (void)time;
  // Each message is shipped to the device immediately...
  const double before_clock = device_->ClockSeconds();
  const double seconds = device_->ledger().RecordH2D(
      sizeof(VTree::Update), device_->config());
  device_->AdvanceClock(seconds);
  costs_.transfer_seconds += seconds;
  costs_.h2d_bytes += sizeof(VTree::Update);
  costs_.gpu_seconds += device_->ClockSeconds() - before_clock;
  // ...and buffered there until a full warp's worth is available.
  pending_.push_back(VTree::Update{object, position});
  if (pending_.size() >= kWarpBatch) Flush();
}

void VTreeG::Flush() {
  if (pending_.empty()) return;
  // Apply the batch functionally; the inner V-Tree self-times this as CPU
  // work, but here it models the device-side maintenance kernel, so the
  // measured host time is replaced by modeled device time for the same
  // matrix-entry workload.
  inner_->IngestBatch(pending_);
  (void)inner_->ConsumeCosts();  // simulation overhead, not billed as CPU
  const uint64_t work = inner_->last_update_work();
  const uint32_t threads = static_cast<uint32_t>(pending_.size());
  const double before_clock = device_->ClockSeconds();
  const auto stats =
      device_->Launch("VTreeG_Maintain", threads, [work, threads](ThreadCtx& ctx) {
        // The eager maintenance work is spread across the warp's lanes.
        ctx.CountOps(work / threads + 1);
      });
  if (!stats.ok()) {
    // The baselines run without a fault/fallback story (the host copy in
    // inner_ already applied the batch); a device error only skews the
    // modeled timing, so report it and carry on.
    GKNN_LOG(Warning) << "VTreeG maintenance kernel failed: "
                      << stats.status().ToString();
  }
  costs_.gpu_seconds += device_->ClockSeconds() - before_clock;
  pending_.clear();
}

util::Result<std::vector<core::KnnResultEntry>> VTreeG::QueryKnn(
    roadnet::EdgePoint location, uint32_t k, double t_now) {
  // A query must observe every buffered message (snapshot semantics).
  Flush();
  auto result = inner_->QueryKnn(location, k, t_now);
  TimeBreakdown inner_costs = inner_->ConsumeCosts();
  // The matrix scans (border-to-object rows, shortcut rows) are the
  // data-parallel part of a V-Tree query; with the index resident on the
  // device they run there. Deduct their estimated host share and bill the
  // modeled device time instead — at large k the scans dominate, which is
  // why the paper's Fig. 7 shows V-Tree (G) overtaking V-Tree there.
  const uint64_t entries = inner_->last_query_scan_entries();
  constexpr double kHostSecondsPerEntry = 8e-9;  // ~one cache line touch
  const double scan_host_seconds = entries * kHostSecondsPerEntry;
  costs_.cpu_seconds +=
      std::max(0.0, inner_costs.cpu_seconds - scan_host_seconds);
  {
    const auto& config = device_->config();
    const double waves =
        std::ceil(static_cast<double>(entries) / config.num_cores);
    const double seconds = config.kernel_launch_seconds +
                           config.CyclesToSeconds(waves * 4);
    device_->AdvanceClock(seconds);
    costs_.gpu_seconds += seconds;
  }
  if (result.ok()) {
    // Candidate results travel back from the device.
    const double before_clock = device_->ClockSeconds();
    const uint64_t bytes = result->size() * sizeof(core::KnnResultEntry) + 1;
    const double seconds =
        device_->ledger().RecordD2H(bytes, device_->config());
    device_->AdvanceClock(seconds);
    costs_.transfer_seconds += seconds;
    costs_.d2h_bytes += bytes;
    costs_.gpu_seconds += device_->ClockSeconds() - before_clock;
  }
  return result;
}

uint64_t VTreeG::MemoryBytes() const {
  return inner_->MemoryBytes() + device_matrices_.size_bytes();
}

}  // namespace gknn::baselines
