#ifndef GKNN_BASELINES_GGRID_ADAPTER_H_
#define GKNN_BASELINES_GGRID_ADAPTER_H_

#include <memory>

#include "baselines/knn_algorithm.h"
#include "core/ggrid_index.h"
#include "gpusim/device.h"

namespace gknn::baselines {

/// Adapts the G-Grid index to the common KnnAlgorithm interface used by
/// the benchmark harness and the cross-validation tests.
///
/// Time accounting: CPU phases of ingest/query are self-measured wall
/// time; device kernels and PCIe transfers contribute their modeled times
/// from the simulated GPU (see gpusim::DeviceConfig).
class GGridAlgorithm : public KnnAlgorithm {
 public:
  static util::Result<std::unique_ptr<GGridAlgorithm>> Build(
      const roadnet::Graph* graph, const core::GGridOptions& options,
      gpusim::Device* device);

  std::string_view name() const override { return "G-Grid"; }

  void Ingest(core::ObjectId object, roadnet::EdgePoint position,
              double time) override;

  util::Result<std::vector<core::KnnResultEntry>> QueryKnn(
      roadnet::EdgePoint location, uint32_t k, double t_now) override;

  uint64_t MemoryBytes() const override { return index_->Memory().total(); }

  TimeBreakdown ConsumeCosts() override {
    TimeBreakdown out = costs_;
    costs_ = TimeBreakdown{};
    return out;
  }

  core::GGridIndex& index() { return *index_; }
  const core::KnnStats& last_query_stats() const { return last_stats_; }

 private:
  explicit GGridAlgorithm(std::unique_ptr<core::GGridIndex> index)
      : index_(std::move(index)) {}

  std::unique_ptr<core::GGridIndex> index_;
  core::KnnStats last_stats_;
  TimeBreakdown costs_;
};

}  // namespace gknn::baselines

#endif  // GKNN_BASELINES_GGRID_ADAPTER_H_
