#include "baselines/ggrid_adapter.h"

#include "util/timer.h"

namespace gknn::baselines {

util::Result<std::unique_ptr<GGridAlgorithm>> GGridAlgorithm::Build(
    const roadnet::Graph* graph, const core::GGridOptions& options,
    gpusim::Device* device) {
  GKNN_ASSIGN_OR_RETURN(std::unique_ptr<core::GGridIndex> index,
                        core::GGridIndex::Build(graph, options, device));
  return std::unique_ptr<GGridAlgorithm>(
      new GGridAlgorithm(std::move(index)));
}

void GGridAlgorithm::Ingest(core::ObjectId object,
                            roadnet::EdgePoint position, double time) {
  gpusim::Device& device = index_->device();
  const double sim_wall_before = device.sim_wall_seconds();
  const double clock_before = device.ClockSeconds();
  util::Timer timer;
  const util::Status ingested = index_->Ingest(object, position, time);
  if (!ingested.ok()) {
    // The benchmark Algorithm interface has no error channel; a workload
    // position off the network is a harness bug, so surface it loudly.
    GKNN_LOG(Warning) << "ggrid ingest failed: " << ingested.ToString();
  }
  // Lazy ingestion runs no device work; the eager-update ablation does,
  // and its simulated kernels are billed to the device, not the host.
  costs_.cpu_seconds +=
      std::max(0.0, timer.ElapsedSeconds() -
                        (device.sim_wall_seconds() - sim_wall_before));
  costs_.gpu_seconds += device.ClockSeconds() - clock_before;
}

util::Result<std::vector<core::KnnResultEntry>> GGridAlgorithm::QueryKnn(
    roadnet::EdgePoint location, uint32_t k, double t_now) {
  auto result = index_->QueryKnn(location, k, t_now, &last_stats_);
  if (result.ok()) {
    costs_.cpu_seconds += last_stats_.cpu_seconds;
    costs_.gpu_seconds += last_stats_.gpu_seconds;
    costs_.transfer_seconds += last_stats_.transfer_seconds;
    costs_.h2d_bytes += last_stats_.h2d_bytes;
    costs_.d2h_bytes += last_stats_.d2h_bytes;
  }
  return result;
}

}  // namespace gknn::baselines
