#ifndef GKNN_WORKLOAD_QUERIES_H_
#define GKNN_WORKLOAD_QUERIES_H_

#include <cstdint>
#include <vector>

#include "roadnet/graph.h"

namespace gknn::workload {

/// One snapshot kNN query (paper Definition 1): find the k objects nearest
/// to `location` by network distance at time `time`.
struct KnnQuery {
  roadnet::EdgePoint location;
  uint32_t k = 16;
  double time = 0;
};

/// Options for the query stream: "we randomly generate the query locations
/// and assume a fixed time interval between the queries" (paper §VII-A).
struct QueryWorkloadOptions {
  uint32_t num_queries = 100;
  uint32_t k = 16;  // paper default
  double start_time = 1.0;
  double interval_seconds = 0.5;
  uint64_t seed = 1;
};

/// Generates the query stream: random edge points, fixed inter-arrival
/// interval, constant k.
std::vector<KnnQuery> GenerateQueries(const roadnet::Graph& graph,
                                      const QueryWorkloadOptions& options);

}  // namespace gknn::workload

#endif  // GKNN_WORKLOAD_QUERIES_H_
