#include "workload/synthetic_network.h"

#include <cmath>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace gknn::workload {

namespace {

/// Union-find over vertex ids, used to stitch lattice components together.
class DisjointSets {
 public:
  explicit DisjointSets(uint32_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  bool Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return false;
    parent_[a] = b;
    return true;
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace

util::Result<roadnet::Graph> GenerateSyntheticRoadNetwork(
    const SyntheticNetworkOptions& options) {
  using roadnet::Edge;
  using roadnet::VertexId;

  const uint32_t n = options.num_vertices;
  if (n == 0) {
    return util::Status::InvalidArgument("num_vertices must be positive");
  }
  if (options.min_weight == 0 || options.min_weight > options.max_weight) {
    return util::Status::InvalidArgument(
        "require 0 < min_weight <= max_weight");
  }
  util::Rng rng(options.seed);
  const uint32_t side =
      static_cast<uint32_t>(std::ceil(std::sqrt(static_cast<double>(n))));

  std::vector<Edge> edges;
  DisjointSets components(n);
  auto random_weight = [&rng, &options]() {
    return static_cast<uint32_t>(
        rng.NextInRange(options.min_weight, options.max_weight));
  };
  auto add_road = [&edges, &components](VertexId a, VertexId b, uint32_t w) {
    edges.push_back(Edge{a, b, w});
    edges.push_back(Edge{b, a, w});
    components.Union(a, b);
  };

  // Thinned lattice: each vertex i sits at (i % side, i / side); candidate
  // roads go right and down.
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t x = i % side;
    const uint32_t y = i / side;
    if (x + 1 < side && i + 1 < n && rng.NextBool(options.keep_probability)) {
      add_road(i, i + 1, random_weight());
    }
    if (i + side < n && rng.NextBool(options.keep_probability)) {
      add_road(i, i + side, random_weight());
    }
    // Occasional diagonal shortcut.
    if (x + 1 < side && i + side + 1 < n &&
        rng.NextBool(options.extra_edge_fraction)) {
      add_road(i, i + side + 1, random_weight());
    }
    (void)y;
  }

  // Stitch disconnected components with bridge roads between lattice
  // neighbors first (preserves planarity), then arbitrary pairs.
  for (uint32_t i = 0; i + 1 < n; ++i) {
    if (components.Find(i) != components.Find(i + 1) && (i % side) + 1 < side) {
      add_road(i, i + 1, random_weight());
    }
  }
  for (uint32_t i = 0; i + side < n; ++i) {
    if (components.Find(i) != components.Find(i + side)) {
      add_road(i, i + side, random_weight());
    }
  }
  // Fallback for any stragglers (can only happen for degenerate shapes).
  uint32_t anchor = 0;
  for (uint32_t i = 1; i < n; ++i) {
    if (components.Find(i) != components.Find(anchor)) {
      add_road(anchor, i, random_weight());
    }
  }

  return roadnet::Graph::FromEdges(n, std::move(edges));
}

util::Result<roadnet::Graph> GenerateRadialCityNetwork(
    const RadialCityOptions& options) {
  using roadnet::Edge;
  using roadnet::VertexId;

  if (options.num_rings == 0 || options.num_spokes < 3) {
    return util::Status::InvalidArgument(
        "need at least 1 ring and 3 spokes");
  }
  if (options.min_weight == 0 || options.min_weight > options.max_weight) {
    return util::Status::InvalidArgument(
        "require 0 < min_weight <= max_weight");
  }
  util::Rng rng(options.seed);
  auto random_weight = [&]() {
    return static_cast<uint32_t>(
        rng.NextInRange(options.min_weight, options.max_weight));
  };
  // Vertex 0 is the center; vertex 1 + r*spokes + s sits on ring r,
  // spoke s.
  const uint32_t n = 1 + options.num_rings * options.num_spokes;
  auto at = [&](uint32_t ring, uint32_t spoke) -> VertexId {
    return 1 + ring * options.num_spokes + (spoke % options.num_spokes);
  };
  std::vector<Edge> edges;
  auto add_road = [&](VertexId a, VertexId b) {
    const uint32_t w = random_weight();
    edges.push_back(Edge{a, b, w});
    edges.push_back(Edge{b, a, w});
  };
  // Radial avenues: center -> ring 0 -> ring 1 -> ... (always kept).
  for (uint32_t s = 0; s < options.num_spokes; ++s) {
    add_road(0, at(0, s));
    for (uint32_t r = 0; r + 1 < options.num_rings; ++r) {
      add_road(at(r, s), at(r + 1, s));
    }
  }
  // Ring segments, probabilistically thinned. Outer rings are longer
  // roads: scale weights by the ring index.
  for (uint32_t r = 0; r < options.num_rings; ++r) {
    for (uint32_t s = 0; s < options.num_spokes; ++s) {
      if (rng.NextBool(options.ring_keep)) {
        const uint32_t w = random_weight() * (1 + r / 4);
        edges.push_back(Edge{at(r, s), at(r, s + 1), w});
        edges.push_back(Edge{at(r, s + 1), at(r, s), w});
      }
    }
  }
  return roadnet::Graph::FromEdges(n, std::move(edges));
}

}  // namespace gknn::workload
