#include "workload/queries.h"

#include "util/rng.h"

namespace gknn::workload {

std::vector<KnnQuery> GenerateQueries(const roadnet::Graph& graph,
                                      const QueryWorkloadOptions& options) {
  util::Rng rng(options.seed);
  std::vector<KnnQuery> queries;
  queries.reserve(options.num_queries);
  for (uint32_t i = 0; i < options.num_queries; ++i) {
    KnnQuery q;
    q.location.edge =
        static_cast<roadnet::EdgeId>(rng.NextBounded(graph.num_edges()));
    const uint32_t weight = graph.edge(q.location.edge).weight;
    q.location.offset = static_cast<uint32_t>(rng.NextBounded(weight + 1));
    q.k = options.k;
    q.time = options.start_time + i * options.interval_seconds;
    queries.push_back(q);
  }
  return queries;
}

}  // namespace gknn::workload
