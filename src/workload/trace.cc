#include "workload/trace.h"

#include <cstdio>
#include <cstring>

namespace gknn::workload {

namespace {
constexpr char kHeader[] = "gknn-trace v1";
}  // namespace

util::Status WriteTrace(const std::vector<TraceEvent>& events,
                        const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + path + " for writing");
  }
  std::fprintf(f, "%s\n", kHeader);
  for (const TraceEvent& e : events) {
    switch (e.kind) {
      case TraceEvent::Kind::kUpdate:
        std::fprintf(f, "u %u %u %u %.6f\n", e.object, e.position.edge,
                     e.position.offset, e.time);
        break;
      case TraceEvent::Kind::kRemove:
        std::fprintf(f, "r %u %.6f\n", e.object, e.time);
        break;
      case TraceEvent::Kind::kQuery:
        std::fprintf(f, "q %u %u %u %.6f\n", e.position.edge,
                     e.position.offset, e.k, e.time);
        break;
    }
  }
  if (std::fclose(f) != 0) {
    return util::Status::IoError("error closing " + path);
  }
  return util::Status::OK();
}

util::Result<std::vector<TraceEvent>> ReadTrace(const roadnet::Graph& graph,
                                                const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + path);
  }
  char line[256];
  if (std::fgets(line, sizeof(line), f) == nullptr ||
      std::strncmp(line, kHeader, std::strlen(kHeader)) != 0) {
    std::fclose(f);
    return util::Status::IoError(path + ": not a gknn trace (bad header)");
  }
  std::vector<TraceEvent> events;
  int line_no = 1;
  auto fail = [&](const std::string& what) -> util::Status {
    std::fclose(f);
    return util::Status::IoError(path + ":" + std::to_string(line_no) + ": " +
                                 what);
  };
  auto check_position = [&](const roadnet::EdgePoint& p) {
    return p.edge < graph.num_edges() &&
           p.offset <= graph.edge(p.edge).weight;
  };
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    TraceEvent e;
    unsigned object = 0, edge = 0, offset = 0, k = 0;
    double time = 0;
    if (line[0] == '\n' || line[0] == '#') continue;
    if (std::sscanf(line, "u %u %u %u %lf", &object, &edge, &offset, &time) ==
        4) {
      e.kind = TraceEvent::Kind::kUpdate;
      e.object = object;
      e.position = {edge, offset};
      e.time = time;
      if (!check_position(e.position)) return fail("update off the network");
    } else if (std::sscanf(line, "r %u %lf", &object, &time) == 2) {
      e.kind = TraceEvent::Kind::kRemove;
      e.object = object;
      e.time = time;
    } else if (std::sscanf(line, "q %u %u %u %lf", &edge, &offset, &k,
                           &time) == 4) {
      e.kind = TraceEvent::Kind::kQuery;
      e.position = {edge, offset};
      e.k = k;
      e.time = time;
      if (!check_position(e.position)) return fail("query off the network");
      if (k == 0) return fail("query with k = 0");
    } else {
      return fail("malformed event");
    }
    events.push_back(e);
  }
  std::fclose(f);
  return events;
}

std::vector<TraceEvent> RecordScenario(const roadnet::Graph& graph,
                                       const RecordOptions& options) {
  MovingObjectSimulator sim(
      &graph, {.num_objects = options.num_objects,
               .update_frequency_hz = options.update_frequency_hz,
               .seed = options.seed});
  const auto queries =
      GenerateQueries(graph, {.num_queries = options.num_queries,
                              .k = options.k,
                              .start_time = options.query_start,
                              .interval_seconds = options.query_interval,
                              .seed = options.seed + 7});
  std::vector<TraceEvent> events;
  std::vector<LocationUpdate> updates;
  // Initial fleet snapshot, then the interleaved update/query stream.
  sim.EmitFullSnapshot(&updates);
  for (const auto& u : updates) {
    events.push_back(TraceEvent{TraceEvent::Kind::kUpdate, u.object_id,
                                u.position, 0, u.time});
  }
  for (const auto& q : queries) {
    updates.clear();
    sim.AdvanceTo(q.time, &updates);
    for (const auto& u : updates) {
      events.push_back(TraceEvent{TraceEvent::Kind::kUpdate, u.object_id,
                                  u.position, 0, u.time});
    }
    events.push_back(
        TraceEvent{TraceEvent::Kind::kQuery, 0, q.location, q.k, q.time});
  }
  return events;
}

}  // namespace gknn::workload
