#ifndef GKNN_WORKLOAD_MOVING_OBJECTS_H_
#define GKNN_WORKLOAD_MOVING_OBJECTS_H_

#include <cstdint>
#include <vector>

#include "roadnet/graph.h"
#include "util/rng.h"

namespace gknn::workload {

/// A location update reported by one moving object (the paper's message
/// m = <o, e, d, t> before the index attaches the cell id).
struct LocationUpdate {
  uint32_t object_id = 0;
  roadnet::EdgePoint position;
  double time = 0;
};

/// Simulates a fleet of objects (cars) random-walking along the road
/// network and reporting their position every 1 / update_frequency_hz
/// seconds. This substitutes for the MOTO trace generator [10] the paper
/// uses: the index only ever observes the message stream, and this
/// simulator emits messages with the same statistics (uniform initial
/// placement, per-object periodic reporting with phase jitter, movement
/// constrained to the network).
class MovingObjectSimulator {
 public:
  /// How objects pick their next edge at an intersection.
  enum class MovementModel {
    /// Uniform random out-edge (drunkard's walk). Cheap, stateless.
    kRandomWalk,
    /// Trip-based: each object samples a destination vertex and follows
    /// the shortest path to it, then samples a new destination — closer
    /// to how MOTO-style generators and real fleets move (purposeful
    /// trips produce longer straight runs and fewer immediate
    /// backtracks, i.e. more cell crossings per reported distance).
    kTrips,
  };

  struct Options {
    uint32_t num_objects = 1000;
    /// The paper's f: updates per object per second (default 1, §VII-A).
    double update_frequency_hz = 1.0;
    /// Travel speed range in weight units per second.
    double min_speed = 5.0;
    double max_speed = 25.0;
    MovementModel movement = MovementModel::kRandomWalk;
    uint64_t seed = 1;
  };

  MovingObjectSimulator(const roadnet::Graph* graph, const Options& options);

  uint32_t num_objects() const {
    return static_cast<uint32_t>(objects_.size());
  }
  double now() const { return now_; }

  /// Advances simulated time to `time`, appending every location update
  /// the fleet emits in (now, time] to `out` in chronological order.
  void AdvanceTo(double time, std::vector<LocationUpdate>* out);

  /// The exact current position of an object (ground truth for oracles).
  roadnet::EdgePoint PositionOf(uint32_t object_id) const;

  /// The position an object last *reported* — what a consistent index
  /// should believe. Before the first report this equals the initial
  /// position, which is also reported at simulation start.
  roadnet::EdgePoint LastReportedPositionOf(uint32_t object_id) const;

  /// Emits an immediate update for every object at the current time
  /// (used to prime an index with the initial fleet positions).
  void EmitFullSnapshot(std::vector<LocationUpdate>* out);

 private:
  struct ObjectState {
    roadnet::EdgeId edge = roadnet::kInvalidEdge;
    double offset = 0;          // exact position along edge
    double speed = 0;           // weight units / second
    double next_report = 0;     // absolute time of next update
    double last_moved = 0;      // absolute time position was integrated to
    roadnet::EdgePoint last_reported;
    /// Trip model: remaining edge ids to traverse, in travel order
    /// (back() is next). Empty means "sample a new trip".
    std::vector<roadnet::EdgeId> route;
    roadnet::VertexId destination = roadnet::kInvalidVertex;
  };

  /// Integrates an object's motion up to `time`, hopping edges at vertices.
  void MoveObject(ObjectState* obj, double time);

  /// Picks the edge an object continues on after reaching `at` (model
  /// dependent).
  roadnet::EdgeId NextEdge(ObjectState* obj, roadnet::VertexId at);

  /// Trip model: samples a reachable destination for `obj` standing at
  /// `from` and fills its route (edge ids from `from` to the destination).
  void PlanTrip(ObjectState* obj, roadnet::VertexId from);

  /// Quantized EdgePoint of an object's exact state.
  roadnet::EdgePoint Quantize(const ObjectState& obj) const;

  const roadnet::Graph* graph_;
  Options options_;
  util::Rng rng_;
  std::vector<ObjectState> objects_;
  double now_ = 0;
};

}  // namespace gknn::workload

#endif  // GKNN_WORKLOAD_MOVING_OBJECTS_H_
