#ifndef GKNN_WORKLOAD_TRACE_H_
#define GKNN_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "roadnet/graph.h"
#include "util/result.h"
#include "workload/moving_objects.h"
#include "workload/queries.h"

namespace gknn::workload {

/// One event of a recorded workload: an object location update, an object
/// removal, or a kNN query. Traces make experiments shippable artifacts —
/// a run can be recorded once and replayed bit-identically against any
/// algorithm or build.
struct TraceEvent {
  enum class Kind : uint8_t { kUpdate, kRemove, kQuery };

  Kind kind = Kind::kUpdate;
  uint32_t object = 0;             // update/remove
  roadnet::EdgePoint position;     // update/query location
  uint32_t k = 0;                  // query
  double time = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Writes a trace in the line-oriented text format:
///   gknn-trace v1
///   u <object> <edge> <offset> <time>
///   r <object> <time>
///   q <edge> <offset> <k> <time>
util::Status WriteTrace(const std::vector<TraceEvent>& events,
                        const std::string& path);

/// Reads a trace written by WriteTrace. Fails on unknown headers,
/// malformed lines, or events that do not fit `graph` (edge out of range,
/// offset beyond the edge weight).
util::Result<std::vector<TraceEvent>> ReadTrace(const roadnet::Graph& graph,
                                                const std::string& path);

/// Records the standard benchmark scenario as a trace: a fleet of
/// `num_objects` objects moving at `update_frequency_hz`, interleaved with
/// `num_queries` queries of parameter `k` at fixed intervals. Deterministic
/// in `seed`.
struct RecordOptions {
  uint32_t num_objects = 1000;
  double update_frequency_hz = 1.0;
  uint32_t num_queries = 50;
  uint32_t k = 16;
  double query_start = 1.0;
  double query_interval = 0.25;
  uint64_t seed = 1;
};
std::vector<TraceEvent> RecordScenario(const roadnet::Graph& graph,
                                       const RecordOptions& options);

}  // namespace gknn::workload

#endif  // GKNN_WORKLOAD_TRACE_H_
