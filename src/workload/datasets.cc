#include "workload/datasets.h"

#include <algorithm>
#include <filesystem>

#include "roadnet/dimacs.h"
#include "workload/synthetic_network.h"

namespace gknn::workload {

const std::vector<DatasetSpec>& PaperDatasets() {
  // Table II of the paper. Edge counts are directed arcs.
  static const std::vector<DatasetSpec>* kDatasets =
      new std::vector<DatasetSpec>{
          {"NY", "New York City", 264'346, 733'846, "USA-road-d.NY.gr"},
          {"COL", "Colorado", 435'666, 1'057'066, "USA-road-d.COL.gr"},
          {"FLA", "Florida", 1'070'376, 2'712'798, "USA-road-d.FLA.gr"},
          {"CAL", "California and Nevada", 1'890'815, 4'657'742,
           "USA-road-d.CAL.gr"},
          {"LKS", "Great Lakes", 2'758'119, 6'885'658, "USA-road-d.LKS.gr"},
          {"USA", "Full USA", 23'947'347, 58'333'344, "USA-road-d.USA.gr"},
      };
  return *kDatasets;
}

util::Result<DatasetSpec> FindDataset(const std::string& name) {
  for (const DatasetSpec& spec : PaperDatasets()) {
    if (spec.name == name) return spec;
  }
  return util::Status::NotFound("unknown dataset: " + name);
}

util::Result<roadnet::Graph> InstantiateDataset(const DatasetSpec& spec,
                                                uint32_t scale_divisor,
                                                uint64_t seed,
                                                const std::string& dimacs_dir) {
  if (scale_divisor == 0) {
    return util::Status::InvalidArgument("scale_divisor must be positive");
  }
  if (!dimacs_dir.empty()) {
    const std::filesystem::path path =
        std::filesystem::path(dimacs_dir) / spec.dimacs_file;
    if (std::filesystem::exists(path)) {
      return roadnet::ReadDimacsGraph(path.string());
    }
  }
  SyntheticNetworkOptions options;
  options.num_vertices =
      std::max(16u, spec.full_vertices / scale_divisor);
  // Thin the lattice toward the dataset's own arcs-per-vertex ratio
  // (between 2.42 for LKS/COL and 2.78 for NY). A full jittered lattice
  // has ~4 arcs per vertex at keep=1.0 (two undirected roads per vertex),
  // so keep ~= ratio / 4.
  const double ratio = static_cast<double>(spec.full_edges) /
                       static_cast<double>(spec.full_vertices);
  options.keep_probability = std::clamp(ratio / 4.0, 0.5, 0.75);
  options.seed = seed;
  return GenerateSyntheticRoadNetwork(options);
}

}  // namespace gknn::workload
