#include "workload/moving_objects.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>

#include "util/logging.h"

namespace gknn::workload {

using roadnet::Edge;
using roadnet::EdgeId;
using roadnet::EdgePoint;
using roadnet::Graph;

MovingObjectSimulator::MovingObjectSimulator(const Graph* graph,
                                             const Options& options)
    : graph_(graph), options_(options), rng_(options.seed) {
  GKNN_CHECK(graph_->num_edges() > 0) << "cannot place objects on empty graph";
  GKNN_CHECK(options_.update_frequency_hz > 0);
  const double period = 1.0 / options_.update_frequency_hz;
  objects_.resize(options_.num_objects);
  for (uint32_t i = 0; i < options_.num_objects; ++i) {
    ObjectState& obj = objects_[i];
    obj.edge = static_cast<EdgeId>(rng_.NextBounded(graph_->num_edges()));
    const uint32_t weight = graph_->edge(obj.edge).weight;
    obj.offset = rng_.NextDouble() * weight;
    obj.speed = options_.min_speed +
                rng_.NextDouble() * (options_.max_speed - options_.min_speed);
    // Spread first reports over one period so the update stream is smooth.
    obj.next_report =
        period * static_cast<double>(i) / options_.num_objects;
    obj.last_moved = 0;
    obj.last_reported = Quantize(obj);
  }
}

EdgePoint MovingObjectSimulator::Quantize(const ObjectState& obj) const {
  const uint32_t weight = graph_->edge(obj.edge).weight;
  const uint32_t offset = std::min(
      weight, static_cast<uint32_t>(std::floor(obj.offset)));
  return EdgePoint{obj.edge, offset};
}

void MovingObjectSimulator::MoveObject(ObjectState* obj, double time) {
  double remaining = (time - obj->last_moved) * obj->speed;
  obj->last_moved = time;
  while (remaining > 0) {
    const Edge& e = graph_->edge(obj->edge);
    const double to_end = static_cast<double>(e.weight) - obj->offset;
    if (remaining < to_end) {
      obj->offset += remaining;
      return;
    }
    remaining -= to_end;
    // Arrived at the edge's target vertex: continue per movement model.
    const roadnet::EdgeId next = NextEdge(obj, e.target);
    if (next == roadnet::kInvalidEdge) {
      // Dead end (cannot happen on bidirectional road networks): park.
      obj->offset = static_cast<double>(e.weight);
      return;
    }
    obj->edge = next;
    obj->offset = 0;
  }
}

roadnet::EdgeId MovingObjectSimulator::NextEdge(ObjectState* obj,
                                                roadnet::VertexId at) {
  if (options_.movement == MovementModel::kTrips) {
    if (obj->route.empty()) PlanTrip(obj, at);
    if (!obj->route.empty()) {
      const roadnet::EdgeId next = obj->route.back();
      obj->route.pop_back();
      return next;
    }
    // Planning failed (isolated pocket): fall through to a random hop.
  }
  const auto out = graph_->OutEdgeIds(at);
  if (out.empty()) return roadnet::kInvalidEdge;
  return out[rng_.NextBounded(out.size())];
}

void MovingObjectSimulator::PlanTrip(ObjectState* obj,
                                     roadnet::VertexId from) {
  // Bounded Dijkstra ball around `from` with parent-edge tracking; a
  // uniformly random settled vertex becomes the destination and the
  // shortest path to it the route. The ball radius approximates a few
  // minutes of driving at this object's speed.
  const double radius = obj->speed * 180.0;
  struct Label {
    double dist;
    roadnet::EdgeId parent;
  };
  std::unordered_map<roadnet::VertexId, Label> labels;
  std::set<std::pair<double, roadnet::VertexId>> queue;
  labels[from] = {0.0, roadnet::kInvalidEdge};
  queue.insert({0.0, from});
  std::vector<roadnet::VertexId> settled;
  while (!queue.empty() && settled.size() < 400) {
    auto [d, v] = *queue.begin();
    queue.erase(queue.begin());
    if (d > radius) break;
    settled.push_back(v);
    for (roadnet::EdgeId id : graph_->OutEdgeIds(v)) {
      const roadnet::Edge& e = graph_->edge(id);
      const double nd = d + e.weight;
      auto it = labels.find(e.target);
      if (it == labels.end() || nd < it->second.dist) {
        if (it != labels.end()) queue.erase({it->second.dist, e.target});
        labels[e.target] = {nd, id};
        queue.insert({nd, e.target});
      }
    }
  }
  if (settled.size() <= 1) return;  // nowhere to go
  // Skip index 0 (the current position).
  const roadnet::VertexId destination =
      settled[1 + rng_.NextBounded(settled.size() - 1)];
  obj->destination = destination;
  obj->route.clear();
  for (roadnet::VertexId v = destination; v != from;) {
    const roadnet::EdgeId parent = labels.at(v).parent;
    obj->route.push_back(parent);  // back() ends up being the first hop
    v = graph_->edge(parent).source;
  }
}

void MovingObjectSimulator::AdvanceTo(double time,
                                      std::vector<LocationUpdate>* out) {
  GKNN_CHECK(time >= now_) << "simulation time cannot go backwards";
  const double period = 1.0 / options_.update_frequency_hz;
  const size_t first_new = out->size();
  for (uint32_t i = 0; i < objects_.size(); ++i) {
    ObjectState& obj = objects_[i];
    while (obj.next_report <= time) {
      MoveObject(&obj, obj.next_report);
      obj.last_reported = Quantize(obj);
      out->push_back(LocationUpdate{i, obj.last_reported, obj.next_report});
      obj.next_report += period;
    }
    MoveObject(&obj, time);
  }
  now_ = time;
  std::sort(out->begin() + static_cast<ptrdiff_t>(first_new), out->end(),
            [](const LocationUpdate& a, const LocationUpdate& b) {
              if (a.time != b.time) return a.time < b.time;
              return a.object_id < b.object_id;
            });
}

EdgePoint MovingObjectSimulator::PositionOf(uint32_t object_id) const {
  return Quantize(objects_[object_id]);
}

EdgePoint MovingObjectSimulator::LastReportedPositionOf(
    uint32_t object_id) const {
  return objects_[object_id].last_reported;
}

void MovingObjectSimulator::EmitFullSnapshot(
    std::vector<LocationUpdate>* out) {
  for (uint32_t i = 0; i < objects_.size(); ++i) {
    ObjectState& obj = objects_[i];
    MoveObject(&obj, now_);
    obj.last_reported = Quantize(obj);
    out->push_back(LocationUpdate{i, obj.last_reported, now_});
  }
}

}  // namespace gknn::workload
