#ifndef GKNN_WORKLOAD_SYNTHETIC_NETWORK_H_
#define GKNN_WORKLOAD_SYNTHETIC_NETWORK_H_

#include <cstdint>

#include "roadnet/graph.h"
#include "util/result.h"

namespace gknn::workload {

/// Options for the synthetic road-network generator.
///
/// The paper evaluates on six real DIMACS road networks (Table II). Those
/// files are not bundled here, so the benchmarks default to generated
/// networks that match the structural statistics the algorithms are
/// sensitive to: connected, near-planar, arc-to-vertex ratio below 3
/// (the property the paper uses to pick delta_v = 2), and integral edge
/// weights with bounded spread. See DESIGN.md §2.
struct SyntheticNetworkOptions {
  /// Number of vertices to generate (exact).
  uint32_t num_vertices = 1000;

  /// Probability of keeping each lattice edge. Road networks average
  /// ~2.4 arcs per vertex (Table II: all six datasets are between 2.42 and
  /// 2.52); a jittered lattice thinned to ~62% reproduces that, including
  /// the mix of degree-2 chain vertices and degree-4 intersections.
  double keep_probability = 0.62;

  /// Fraction of vertices that get an extra diagonal shortcut edge
  /// (overpasses / non-grid roads).
  double extra_edge_fraction = 0.03;

  /// Edge weights are drawn uniformly from [min_weight, max_weight]
  /// (think meters of road segment).
  uint32_t min_weight = 50;
  uint32_t max_weight = 500;

  /// Every road is two-way: each undirected road contributes two directed
  /// arcs of equal weight, as in the paper's model (§II).
  uint64_t seed = 1;
};

/// Generates a connected road-like network. All roads are bidirectional,
/// so the result is strongly connected; the generator adds bridge edges
/// between any lattice components the thinning disconnected.
util::Result<roadnet::Graph> GenerateSyntheticRoadNetwork(
    const SyntheticNetworkOptions& options);

/// Options for the radial ("ring and spoke") city generator: a center,
/// concentric ring roads, and radial avenues — the topology of many
/// European cities, with very different cell-adjacency structure than the
/// lattice (hub congestion, long rings). Used by robustness tests and as a
/// workload variation knob.
struct RadialCityOptions {
  uint32_t num_rings = 12;
  uint32_t num_spokes = 16;
  /// Probability of keeping each ring segment (spokes are always kept, so
  /// the network stays connected through the center).
  double ring_keep = 0.85;
  uint32_t min_weight = 50;
  uint32_t max_weight = 500;
  uint64_t seed = 1;
};

/// Generates the radial city: 1 + num_rings * num_spokes vertices, all
/// roads bidirectional, strongly connected.
util::Result<roadnet::Graph> GenerateRadialCityNetwork(
    const RadialCityOptions& options);

}  // namespace gknn::workload

#endif  // GKNN_WORKLOAD_SYNTHETIC_NETWORK_H_
