#ifndef GKNN_WORKLOAD_DATASETS_H_
#define GKNN_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "roadnet/graph.h"
#include "util/result.h"

namespace gknn::workload {

/// One of the paper's six road networks (Table II).
struct DatasetSpec {
  std::string name;          // e.g. "NY"
  std::string region;        // e.g. "New York City"
  uint32_t full_vertices;    // |V| of the real DIMACS network
  uint32_t full_edges;       // |E| (directed arcs) of the real network
  std::string dimacs_file;   // canonical DIMACS file name
};

/// The six datasets of Table II, ordered smallest to largest
/// (NY, COL, FLA, CAL, LKS, USA).
const std::vector<DatasetSpec>& PaperDatasets();

/// Looks up a dataset spec by name ("NY", ..., "USA").
util::Result<DatasetSpec> FindDataset(const std::string& name);

/// Materializes a dataset as a Graph.
///
/// If `dimacs_dir` is non-empty and contains the dataset's DIMACS file, the
/// real network is loaded. Otherwise a synthetic network with
/// full_vertices / scale_divisor vertices and the dataset's arc/vertex
/// ratio is generated (deterministic in `seed`), which keeps the relative
/// size ordering of the six datasets intact — the property the scalability
/// experiments (Fig. 5, 6, 10) depend on.
util::Result<roadnet::Graph> InstantiateDataset(const DatasetSpec& spec,
                                                uint32_t scale_divisor,
                                                uint64_t seed,
                                                const std::string& dimacs_dir =
                                                    "");

}  // namespace gknn::workload

#endif  // GKNN_WORKLOAD_DATASETS_H_
