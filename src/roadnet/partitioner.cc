#include "roadnet/partitioner.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>
#include <utility>

#include "util/logging.h"
#include "util/rng.h"

namespace gknn::roadnet {

uint32_t ComputePsi(uint32_t num_vertices, uint32_t delta_c) {
  GKNN_CHECK(delta_c > 0);
  if (num_vertices <= delta_c) return 0;
  const double ratio =
      static_cast<double>(num_vertices) / static_cast<double>(delta_c);
  uint32_t psi = static_cast<uint32_t>(std::ceil(0.5 * std::log2(ratio)));
  // Guard against floating point edge cases: psi must satisfy
  // 4^psi * delta_c >= num_vertices.
  while ((uint64_t{delta_c} << (2 * psi)) < num_vertices) ++psi;
  return psi;
}

namespace internal_partitioner {
namespace {

/// Undirected weighted multigraph over the local node ids of one subset.
/// Node weights track how many original vertices a coarse node represents.
struct LocalGraph {
  // Per node: sorted (neighbor, weight) pairs; self-loops dropped.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> adj;
  std::vector<uint32_t> node_weight;

  uint32_t size() const { return static_cast<uint32_t>(adj.size()); }
  uint64_t TotalWeight() const {
    return std::accumulate(node_weight.begin(), node_weight.end(),
                           uint64_t{0});
  }
};

/// Merges duplicate (neighbor, weight) pairs in place, summing weights.
void SortAndMergeNeighbors(std::vector<std::pair<uint32_t, uint32_t>>* nbrs) {
  std::sort(nbrs->begin(), nbrs->end());
  size_t out = 0;
  for (size_t i = 0; i < nbrs->size();) {
    uint32_t node = (*nbrs)[i].first;
    uint64_t weight = 0;
    while (i < nbrs->size() && (*nbrs)[i].first == node) {
      weight += (*nbrs)[i].second;
      ++i;
    }
    (*nbrs)[out++] = {node, static_cast<uint32_t>(
                                std::min<uint64_t>(weight, UINT32_MAX))};
  }
  nbrs->resize(out);
}

/// Builds the induced undirected local graph of `vertices` (which must be
/// sorted). Edge directions are ignored: the partitioner minimizes the
/// undirected cut, as in [5].
LocalGraph BuildLocalGraph(const Graph& graph,
                           const std::vector<VertexId>& vertices) {
  const uint32_t n = static_cast<uint32_t>(vertices.size());
  LocalGraph local;
  local.adj.resize(n);
  local.node_weight.assign(n, 1);
  auto local_id = [&vertices](VertexId v) -> uint32_t {
    auto it = std::lower_bound(vertices.begin(), vertices.end(), v);
    if (it == vertices.end() || *it != v) return kInvalidVertex;
    return static_cast<uint32_t>(it - vertices.begin());
  };
  for (uint32_t i = 0; i < n; ++i) {
    const VertexId v = vertices[i];
    for (EdgeId id : graph.OutEdgeIds(v)) {
      const uint32_t j = local_id(graph.edge(id).target);
      if (j != kInvalidVertex && j != i) {
        local.adj[i].emplace_back(j, 1);
        local.adj[j].emplace_back(i, 1);
      }
    }
    // In-edges whose source is also inside the subset were already added
    // when that source was visited (out direction); in-edges from inside
    // are symmetric. Only out-edges need scanning to see each internal
    // edge exactly once.
  }
  for (auto& nbrs : local.adj) SortAndMergeNeighbors(&nbrs);
  return local;
}

/// Heavy-edge matching: coarse node = matched pair (or singleton). Returns
/// the coarse graph and the fine->coarse mapping.
std::pair<LocalGraph, std::vector<uint32_t>> CoarsenHem(
    const LocalGraph& fine, util::Rng* rng) {
  const uint32_t n = fine.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  for (uint32_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng->NextBounded(i)]);
  }
  std::vector<uint32_t> match(n, kInvalidVertex);
  std::vector<uint32_t> coarse_id(n, kInvalidVertex);
  uint32_t num_coarse = 0;
  for (uint32_t v : order) {
    if (match[v] != kInvalidVertex) continue;
    uint32_t best = kInvalidVertex;
    uint32_t best_weight = 0;
    for (const auto& [u, w] : fine.adj[v]) {
      if (match[u] == kInvalidVertex && w > best_weight) {
        best = u;
        best_weight = w;
      }
    }
    if (best != kInvalidVertex) {
      match[v] = best;
      match[best] = v;
      coarse_id[v] = coarse_id[best] = num_coarse++;
    } else {
      match[v] = v;
      coarse_id[v] = num_coarse++;
    }
  }
  LocalGraph coarse;
  coarse.adj.resize(num_coarse);
  coarse.node_weight.assign(num_coarse, 0);
  for (uint32_t v = 0; v < n; ++v) {
    coarse.node_weight[coarse_id[v]] += fine.node_weight[v];
    for (const auto& [u, w] : fine.adj[v]) {
      if (coarse_id[u] != coarse_id[v]) {
        coarse.adj[coarse_id[v]].emplace_back(coarse_id[u], w);
      }
    }
  }
  for (auto& nbrs : coarse.adj) SortAndMergeNeighbors(&nbrs);
  return {std::move(coarse), std::move(coarse_id)};
}

/// Grows side 0 by BFS from a random root until it holds at least half the
/// total node weight; everything else is side 1. Restarts from a fresh
/// random node when the frontier empties (disconnected subsets).
std::vector<uint8_t> InitialBisection(const LocalGraph& g, util::Rng* rng) {
  const uint32_t n = g.size();
  std::vector<uint8_t> side(n, 1);
  const uint64_t target = (g.TotalWeight() + 1) / 2;
  uint64_t grown = 0;
  std::vector<char> visited(n, 0);
  std::deque<uint32_t> frontier;
  uint32_t scan = 0;
  while (grown < target) {
    if (frontier.empty()) {
      // Find an unvisited node, starting the scan at a random offset.
      uint32_t start = static_cast<uint32_t>(rng->NextBounded(n));
      uint32_t v = kInvalidVertex;
      for (uint32_t i = 0; i < n; ++i) {
        const uint32_t candidate = (start + i) % n;
        if (!visited[candidate]) {
          v = candidate;
          break;
        }
      }
      if (v == kInvalidVertex) break;  // everything visited
      visited[v] = 1;
      frontier.push_back(v);
      (void)scan;
    }
    const uint32_t v = frontier.front();
    frontier.pop_front();
    side[v] = 0;
    grown += g.node_weight[v];
    for (const auto& [u, w] : g.adj[v]) {
      (void)w;
      if (!visited[u]) {
        visited[u] = 1;
        frontier.push_back(u);
      }
    }
  }
  return side;
}

/// Gain of moving `v` to the other side: cut-weight reduction.
int64_t MoveGain(const LocalGraph& g, const std::vector<uint8_t>& side,
                 uint32_t v) {
  int64_t gain = 0;
  for (const auto& [u, w] : g.adj[v]) {
    gain += (side[u] != side[v]) ? static_cast<int64_t>(w)
                                 : -static_cast<int64_t>(w);
  }
  return gain;
}

/// Greedy refinement pass allowing single-node moves while each side stays
/// within `tolerance` of half the total weight. Returns true if any move
/// was applied.
bool RefinePassBalanced(const LocalGraph& g, std::vector<uint8_t>* side,
                        double tolerance) {
  const uint64_t total = g.TotalWeight();
  const double max_side = (1.0 + tolerance) * static_cast<double>(total) / 2;
  uint64_t w0 = 0;
  for (uint32_t v = 0; v < g.size(); ++v) {
    if ((*side)[v] == 0) w0 += g.node_weight[v];
  }
  // Collect candidates with positive static gain, best first.
  std::vector<std::pair<int64_t, uint32_t>> candidates;
  for (uint32_t v = 0; v < g.size(); ++v) {
    const int64_t gain = MoveGain(g, *side, v);
    if (gain > 0) candidates.emplace_back(gain, v);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  bool moved = false;
  for (const auto& [stale_gain, v] : candidates) {
    (void)stale_gain;
    const int64_t gain = MoveGain(g, *side, v);  // re-check after prior moves
    if (gain <= 0) continue;
    const uint64_t nw = g.node_weight[v];
    if ((*side)[v] == 0) {
      if (static_cast<double>(total - (w0 - nw)) > max_side) continue;
      w0 -= nw;
      (*side)[v] = 1;
    } else {
      if (static_cast<double>(w0 + nw) > max_side) continue;
      w0 += nw;
      (*side)[v] = 0;
    }
    moved = true;
  }
  return moved;
}

/// Moves boundary nodes from the oversized side (by count; node weights are
/// 1 at the finest level) until side 0 holds exactly `target0` nodes,
/// preferring moves that hurt the cut least.
void EnforceExactCounts(const LocalGraph& g, std::vector<uint8_t>* side,
                        uint32_t target0) {
  uint32_t count0 = static_cast<uint32_t>(
      std::count(side->begin(), side->end(), uint8_t{0}));
  while (count0 != target0) {
    const uint8_t from = count0 > target0 ? 0 : 1;
    uint32_t best = kInvalidVertex;
    int64_t best_gain = INT64_MIN;
    for (uint32_t v = 0; v < g.size(); ++v) {
      if ((*side)[v] != from) continue;
      const int64_t gain = MoveGain(g, *side, v);
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    GKNN_CHECK(best != kInvalidVertex) << "bisection fixup stuck";
    (*side)[best] = static_cast<uint8_t>(1 - from);
    count0 += (from == 0) ? -1 : 1;
  }
}

/// Cut-improving pairwise swaps that keep side sizes exact. Examines the
/// top boundary candidates from each side (bounded to keep the pass cheap).
bool RefinePassSwaps(const LocalGraph& g, std::vector<uint8_t>* side) {
  constexpr size_t kCandidatesPerSide = 32;
  std::vector<std::pair<int64_t, uint32_t>> cand0, cand1;
  for (uint32_t v = 0; v < g.size(); ++v) {
    const int64_t gain = MoveGain(g, *side, v);
    if (gain <= -1) continue;  // hopeless: a swap needs combined gain > 0
    ((*side)[v] == 0 ? cand0 : cand1).emplace_back(gain, v);
  }
  auto shrink = [](std::vector<std::pair<int64_t, uint32_t>>* c) {
    std::sort(c->begin(), c->end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (c->size() > kCandidatesPerSide) c->resize(kCandidatesPerSide);
  };
  shrink(&cand0);
  shrink(&cand1);
  bool swapped = false;
  for (const auto& [g0, a] : cand0) {
    (void)g0;
    for (const auto& [g1, b] : cand1) {
      (void)g1;
      if ((*side)[a] != 0 || (*side)[b] != 1) continue;  // already moved
      int64_t gain = MoveGain(g, *side, a) + MoveGain(g, *side, b);
      // If a and b are adjacent, both counted the a-b edge as a win; after
      // the swap it is still cut, so subtract it twice.
      for (const auto& [u, w] : g.adj[a]) {
        if (u == b) gain -= 2 * static_cast<int64_t>(w);
      }
      if (gain > 0) {
        (*side)[a] = 1;
        (*side)[b] = 0;
        swapped = true;
      }
    }
  }
  return swapped;
}

/// Bisects a local graph with the full multilevel pipeline. Side sizes are
/// weight-balanced; exact node counts are enforced by the caller.
std::vector<uint8_t> BisectLocal(const LocalGraph& finest,
                                 const PartitionOptions& options,
                                 util::Rng* rng) {
  // Coarsening chain.
  std::vector<LocalGraph> levels;
  std::vector<std::vector<uint32_t>> mappings;  // fine -> coarse per level
  levels.push_back(finest);
  while (levels.back().size() > options.coarsen_threshold) {
    auto [coarse, mapping] = CoarsenHem(levels.back(), rng);
    if (coarse.size() > 0.95 * levels.back().size()) break;  // stalled
    levels.push_back(std::move(coarse));
    mappings.push_back(std::move(mapping));
  }

  std::vector<uint8_t> side = InitialBisection(levels.back(), rng);
  for (uint32_t pass = 0; pass < options.refinement_passes; ++pass) {
    if (!RefinePassBalanced(levels.back(), &side, /*tolerance=*/0.05)) break;
  }

  // Uncoarsen with refinement at each level.
  for (size_t level = mappings.size(); level-- > 0;) {
    const std::vector<uint32_t>& mapping = mappings[level];
    std::vector<uint8_t> fine_side(mapping.size());
    for (uint32_t v = 0; v < mapping.size(); ++v) {
      fine_side[v] = side[mapping[v]];
    }
    side = std::move(fine_side);
    for (uint32_t pass = 0; pass < options.refinement_passes; ++pass) {
      if (!RefinePassBalanced(levels[level], &side, /*tolerance=*/0.05)) {
        break;
      }
    }
  }
  return side;
}

}  // namespace

std::vector<uint8_t> Bisect(const Graph& graph,
                            const std::vector<VertexId>& vertices,
                            const PartitionOptions& options, uint64_t seed) {
  const uint32_t n = static_cast<uint32_t>(vertices.size());
  const uint32_t target0 = (n + 1) / 2;
  std::vector<uint8_t> side(n, 1);
  if (n == 0) return side;
  if (n == 1) {
    side[0] = 0;
    return side;
  }
  GKNN_DCHECK(std::is_sorted(vertices.begin(), vertices.end()));
  util::Rng rng(seed);
  const LocalGraph local = BuildLocalGraph(graph, vertices);
  side = BisectLocal(local, options, &rng);
  EnforceExactCounts(local, &side, target0);
  for (uint32_t pass = 0; pass < options.refinement_passes; ++pass) {
    if (!RefinePassSwaps(local, &side)) break;
  }
  return side;
}

}  // namespace internal_partitioner

util::Result<GridPartition> PartitionIntoGrid(const Graph& graph,
                                              uint32_t delta_c,
                                              const PartitionOptions& options) {
  if (delta_c == 0) {
    return util::Status::InvalidArgument("cell capacity must be positive");
  }
  if (graph.num_vertices() == 0) {
    return util::Status::InvalidArgument("cannot partition an empty graph");
  }
  GridPartition result;
  result.psi = ComputePsi(graph.num_vertices(), delta_c);
  result.grid_dim = 1u << result.psi;
  result.num_cells = 1u << (2 * result.psi);
  result.cell_of_vertex.assign(graph.num_vertices(), 0);

  const uint32_t target_depth = 2 * result.psi;
  struct WorkItem {
    std::vector<VertexId> vertices;
    uint32_t depth;
    uint32_t z_prefix;
  };
  std::vector<VertexId> all(graph.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  std::deque<WorkItem> work;
  work.push_back(WorkItem{std::move(all), 0, 0});
  uint64_t split_counter = 0;
  while (!work.empty()) {
    WorkItem item = std::move(work.front());
    work.pop_front();
    if (item.depth == target_depth) {
      for (VertexId v : item.vertices) {
        result.cell_of_vertex[v] = item.z_prefix;
      }
      continue;
    }
    const std::vector<uint8_t> side = internal_partitioner::Bisect(
        graph, item.vertices, options, options.seed + (++split_counter));
    WorkItem left{{}, item.depth + 1, item.z_prefix << 1};
    WorkItem right{{}, item.depth + 1, (item.z_prefix << 1) | 1};
    for (size_t i = 0; i < item.vertices.size(); ++i) {
      (side[i] == 0 ? left : right).vertices.push_back(item.vertices[i]);
    }
    work.push_back(std::move(left));
    work.push_back(std::move(right));
  }

  for (const Edge& e : graph.edges()) {
    if (result.cell_of_vertex[e.source] != result.cell_of_vertex[e.target]) {
      ++result.edge_cut;
    }
  }
  return result;
}

util::Result<std::vector<uint32_t>> AssignCellsToShards(
    const GridPartition& partition, uint32_t num_shards) {
  if (num_shards == 0) {
    return util::Status::InvalidArgument("num_shards must be positive");
  }
  std::vector<uint64_t> cell_load(partition.num_cells, 0);
  uint64_t total = 0;
  for (uint32_t cell : partition.cell_of_vertex) {
    if (cell >= partition.num_cells) {
      return util::Status::InvalidArgument(
          "partition maps a vertex to cell " + std::to_string(cell) +
          " outside its " + std::to_string(partition.num_cells) +
          "-cell grid");
    }
    ++cell_load[cell];
    ++total;
  }
  // Sweep the Z-ordered cells once, cutting the sequence wherever the
  // cumulative vertex load crosses the next multiple of total/num_shards.
  // Every shard is a contiguous Z-range; the cut after shard s sits at the
  // first cell whose cumulative load reaches ceil((s+1) * total /
  // num_shards), so loads stay within one cell of ideal.
  std::vector<uint32_t> shard_of_cell(partition.num_cells, 0);
  if (total == 0) {
    // Degenerate partition (no vertices): split the cell range evenly so
    // the table is still a deterministic cover.
    for (uint32_t cell = 0; cell < partition.num_cells; ++cell) {
      shard_of_cell[cell] = static_cast<uint32_t>(
          (static_cast<uint64_t>(cell) * num_shards) / partition.num_cells);
    }
    return shard_of_cell;
  }
  uint32_t shard = 0;
  uint64_t seen = 0;
  for (uint32_t cell = 0; cell < partition.num_cells; ++cell) {
    shard_of_cell[cell] = shard;
    seen += cell_load[cell];
    while (shard + 1 < num_shards &&
           seen * num_shards >= (static_cast<uint64_t>(shard) + 1) * total) {
      ++shard;
    }
  }
  return shard_of_cell;
}

util::Result<BisectionTree> BuildBisectionTree(
    const Graph& graph, uint32_t max_leaf_size,
    const PartitionOptions& options) {
  if (max_leaf_size == 0) {
    return util::Status::InvalidArgument("max_leaf_size must be positive");
  }
  if (graph.num_vertices() == 0) {
    return util::Status::InvalidArgument("cannot partition an empty graph");
  }
  BisectionTree tree;
  tree.leaf_of_vertex.assign(graph.num_vertices(), 0);

  std::vector<VertexId> all(graph.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  tree.nodes.push_back(BisectionTree::Node{});
  tree.nodes[0].vertices = std::move(all);

  uint64_t split_counter = 0;
  std::deque<uint32_t> work = {0};
  while (!work.empty()) {
    const uint32_t node_id = work.front();
    work.pop_front();
    // Note: nodes vector may reallocate below, so re-index by id.
    if (tree.nodes[node_id].vertices.size() <= max_leaf_size) {
      for (VertexId v : tree.nodes[node_id].vertices) {
        tree.leaf_of_vertex[v] = node_id;
      }
      continue;
    }
    const std::vector<uint8_t> side = internal_partitioner::Bisect(
        graph, tree.nodes[node_id].vertices, options,
        options.seed + (++split_counter));
    BisectionTree::Node left, right;
    left.parent = right.parent = node_id;
    left.depth = right.depth = tree.nodes[node_id].depth + 1;
    for (size_t i = 0; i < tree.nodes[node_id].vertices.size(); ++i) {
      (side[i] == 0 ? left : right)
          .vertices.push_back(tree.nodes[node_id].vertices[i]);
    }
    const uint32_t left_id = static_cast<uint32_t>(tree.nodes.size());
    const uint32_t right_id = left_id + 1;
    tree.nodes[node_id].left = left_id;
    tree.nodes[node_id].right = right_id;
    tree.nodes.push_back(std::move(left));
    tree.nodes.push_back(std::move(right));
    work.push_back(left_id);
    work.push_back(right_id);
  }
  return tree;
}

}  // namespace gknn::roadnet
