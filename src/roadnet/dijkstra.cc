#include "roadnet/dijkstra.h"

namespace gknn::roadnet {

std::vector<Distance> ShortestPathsFrom(const Graph& graph, VertexId source) {
  std::vector<Distance> dist(graph.num_vertices(), kInfiniteDistance);
  util::IndexedMinHeap<Distance> heap(graph.num_vertices());
  dist[source] = 0;
  heap.PushOrDecrease(source, 0);
  while (!heap.empty()) {
    auto [v, d] = heap.Pop();
    if (d != dist[v]) continue;  // stale entry (cannot happen with
                                 // decrease-key, kept for safety)
    for (EdgeId id : graph.OutEdgeIds(v)) {
      const Edge& e = graph.edge(id);
      const Distance nd = d + e.weight;
      if (nd < dist[e.target]) {
        dist[e.target] = nd;
        heap.PushOrDecrease(e.target, nd);
      }
    }
  }
  return dist;
}

std::vector<Distance> ShortestPathsFromPoint(const Graph& graph,
                                             EdgePoint point) {
  std::vector<Distance> dist(graph.num_vertices(), kInfiniteDistance);
  util::IndexedMinHeap<Distance> heap(graph.num_vertices());
  const Edge& e = graph.edge(point.edge);
  GKNN_CHECK(point.offset <= e.weight) << "point offset beyond edge weight";
  const Distance initial = e.weight - point.offset;
  dist[e.target] = initial;
  heap.PushOrDecrease(e.target, initial);
  while (!heap.empty()) {
    auto [v, d] = heap.Pop();
    for (EdgeId id : graph.OutEdgeIds(v)) {
      const Edge& edge = graph.edge(id);
      const Distance nd = d + edge.weight;
      if (nd < dist[edge.target]) {
        dist[edge.target] = nd;
        heap.PushOrDecrease(edge.target, nd);
      }
    }
  }
  return dist;
}

}  // namespace gknn::roadnet
