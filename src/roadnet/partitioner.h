#ifndef GKNN_ROADNET_PARTITIONER_H_
#define GKNN_ROADNET_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "roadnet/graph.h"
#include "util/result.h"

namespace gknn::roadnet {

/// Options for the multilevel recursive-bisection partitioner.
///
/// The paper adopts the multilevel scheme of Karypis and Kumar [5]
/// ("iteratively divides a set of vertices into equal-sized subsets while
/// minimizing the number of edges between vertices in two subsets"). This
/// implementation follows the same template: heavy-edge-matching
/// coarsening, greedy BFS-grown initial bisection, and
/// Fiduccia–Mattheyses-style swap refinement, applied recursively.
struct PartitionOptions {
  /// Random seed for matching and BFS-root selection (deterministic).
  uint64_t seed = 1;
  /// Subsets at most this large are bisected directly, without coarsening.
  uint32_t coarsen_threshold = 4096;
  /// Number of refinement sweeps after each (un)coarsening step.
  uint32_t refinement_passes = 4;
};

/// Result of partitioning a graph onto the 2^psi x 2^psi grid of the
/// G-Grid index (paper §III-A).
struct GridPartition {
  /// Grid is 2^psi x 2^psi; psi = ceil(1/2 * log2(|V| / delta_c)).
  uint32_t psi = 0;
  uint32_t grid_dim = 1;    // 2^psi
  uint32_t num_cells = 1;   // 4^psi
  /// Z-value (= position in the 1-D cell array) of each vertex's cell.
  std::vector<uint32_t> cell_of_vertex;
  /// Number of graph edges whose endpoints land in different cells.
  uint64_t edge_cut = 0;
};

/// Computes psi for a graph of `num_vertices` and cell capacity `delta_c`
/// (paper: psi = ceil(1/2 * log2(|V| / delta_c))).
uint32_t ComputePsi(uint32_t num_vertices, uint32_t delta_c);

/// Partitions `graph` into 4^psi grid cells of at most `delta_c` vertices
/// each. Splits are exactly balanced at every bisection level, which
/// guarantees every cell receives at most ceil(|V| / 4^psi) <= delta_c
/// vertices. Cell ids follow the Z-curve: sibling subsets of a bisection
/// land in Z-adjacent cells, preserving the locality the GPU layout needs.
util::Result<GridPartition> PartitionIntoGrid(const Graph& graph,
                                              uint32_t delta_c,
                                              const PartitionOptions& options);

/// Maps every grid cell of `partition` to one of `num_shards` region
/// shards (the ShardRouter's routing table, docs/SHARDING.md). Shards are
/// contiguous Z-ranges of cells balanced by vertex count: the Z-curve
/// keeps each shard spatially coherent (sibling cells of a bisection are
/// Z-adjacent), so a query's candidate ring usually stays inside one
/// shard. Deterministic — depends only on the partition, so two routers
/// built from the same partition agree cell-for-cell. When num_shards
/// exceeds the number of populated cells, trailing shards own no cells
/// (legal; they simply hold no objects).
util::Result<std::vector<uint32_t>> AssignCellsToShards(
    const GridPartition& partition, uint32_t num_shards);

/// A binary tree of nested vertex subsets produced by recursive bisection.
/// The V-Tree and ROAD baselines build their hierarchies on this.
struct BisectionTree {
  static constexpr uint32_t kNoChild = kInvalidVertex;

  struct Node {
    uint32_t parent = kNoChild;
    uint32_t left = kNoChild;
    uint32_t right = kNoChild;
    uint32_t depth = 0;
    /// Vertices of this subset; filled for every node (ancestors hold the
    /// union of their descendants).
    std::vector<VertexId> vertices;
    bool IsLeaf() const { return left == kNoChild; }
  };

  std::vector<Node> nodes;  // nodes[0] is the root
  /// Leaf node index containing each vertex.
  std::vector<uint32_t> leaf_of_vertex;
};

/// Recursively bisects `graph` until every leaf holds at most
/// `max_leaf_size` vertices.
util::Result<BisectionTree> BuildBisectionTree(const Graph& graph,
                                               uint32_t max_leaf_size,
                                               const PartitionOptions& options);

namespace internal_partitioner {

/// Bisects the subset `vertices` of `graph` into two halves of size
/// ceil(n/2) and floor(n/2), minimizing the edge cut. Returns the side
/// (0 or 1) of each position in `vertices`. Exposed for testing.
std::vector<uint8_t> Bisect(const Graph& graph,
                            const std::vector<VertexId>& vertices,
                            const PartitionOptions& options, uint64_t seed);

}  // namespace internal_partitioner

}  // namespace gknn::roadnet

#endif  // GKNN_ROADNET_PARTITIONER_H_
