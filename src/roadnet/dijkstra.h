#ifndef GKNN_ROADNET_DIJKSTRA_H_
#define GKNN_ROADNET_DIJKSTRA_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "roadnet/graph.h"
#include "util/deadline.h"
#include "util/min_heap.h"

namespace gknn::roadnet {

/// Single-source shortest path distances from `source` to every vertex,
/// following edge directions. Unreachable vertices get kInfiniteDistance.
/// This is the reference implementation used by the brute-force oracle and
/// by tests that validate GPU_SDist.
std::vector<Distance> ShortestPathsFrom(const Graph& graph, VertexId source);

/// Shortest path distances from a point located on an edge (the paper's
/// query location q = <e, d>): the search starts at the target vertex of
/// `point.edge` with initial cost weight - offset. Requires
/// point.offset <= weight(point.edge).
std::vector<Distance> ShortestPathsFromPoint(const Graph& graph,
                                             EdgePoint point);

/// Reusable bounded Dijkstra used by the CPU refinement step (paper Alg. 6:
/// dijkstra_search over each unresolved range) and by the ROAD baseline.
///
/// The workspace (distance labels, heap) is allocated once and recycled
/// with epoch stamping, so running many small searches costs O(settled)
/// each rather than O(|V|).
///
/// Not thread-safe: use one instance per thread (Refine_kNN gives each CPU
/// thread its own).
class BoundedDijkstra {
 public:
  explicit BoundedDijkstra(const Graph* graph)
      : graph_(graph),
        dist_(graph->num_vertices(), 0),
        epoch_of_(graph->num_vertices(), 0),
        heap_(graph->num_vertices()) {}

  /// Visits every vertex v with dist(source, v) <= radius, in nondecreasing
  /// distance order, calling visit(v, dist). Follows out-edges.
  void Run(VertexId source, Distance radius,
           const std::function<void(VertexId, Distance)>& visit) {
    Seed(source, 0);
    Search(radius, visit);
  }

  /// As Run, but starting from a point on an edge.
  void RunFromPoint(EdgePoint point, Distance radius,
                    const std::function<void(VertexId, Distance)>& visit) {
    BeginSearch();
    const Edge& e = graph_->edge(point.edge);
    const Distance initial = e.weight - point.offset;
    if (initial <= radius) SeedMore(e.target, initial);
    Search(radius, visit);
  }

  /// Multi-source variant: begins a search seeded at several (vertex, cost)
  /// pairs. Call BeginSearch, then SeedMore for each source, then Search.
  void BeginSearch() {
    ++epoch_;
    heap_.Clear();
  }

  void SeedMore(VertexId v, Distance cost) {
    if (Label(v) > cost) {
      SetLabel(v, cost);
      heap_.PushOrDecrease(v, cost);
    }
  }

  void Search(Distance radius,
              const std::function<void(VertexId, Distance)>& visit) {
    SearchPruned(radius, [&](VertexId v, Distance d) {
      visit(v, d);
      return true;
    });
  }

  /// As Search, but the visitor returns whether to relax the settled
  /// vertex's out-edges. Returning false prunes expansion *through* the
  /// vertex while still reporting it (used by Refine_kNN to stop searches
  /// from re-expanding the already-resolved candidate region).
  void SearchPruned(Distance radius,
                    const std::function<bool(VertexId, Distance)>& visit) {
    SearchPrunedDynamic([radius] { return radius; }, visit);
  }

  /// Attaches a query deadline: the search polls it every 64 settled
  /// vertices and stops early (setting cancelled()) once it expires. Null
  /// (the default) disables polling. The pointer must outlive the search.
  void set_deadline(const util::Deadline* deadline) { deadline_ = deadline; }

  /// True when the previous Search/Run stopped because the attached
  /// deadline expired rather than because the frontier was exhausted.
  bool cancelled() const { return cancelled_; }

  /// As SearchPruned with a radius re-evaluated at every step. The radius
  /// must be non-increasing over the search (a shrinking kNN bound); the
  /// search stops as soon as the next settled distance exceeds it.
  void SearchPrunedDynamic(
      const std::function<Distance()>& radius,
      const std::function<bool(VertexId, Distance)>& visit) {
    cancelled_ = false;
    uint32_t settled = 0;
    while (!heap_.empty()) {
      if (deadline_ != nullptr && (++settled & 63u) == 0 &&
          deadline_->Expired()) {
        cancelled_ = true;
        break;
      }
      auto [v, d] = heap_.Pop();
      if (d > radius()) break;
      if (!visit(v, d)) continue;
      const Distance bound = radius();
      for (EdgeId id : graph_->OutEdgeIds(v)) {
        const Edge& e = graph_->edge(id);
        const Distance nd = d + e.weight;
        if (nd <= bound && nd < Label(e.target)) {
          SetLabel(e.target, nd);
          heap_.PushOrDecrease(e.target, nd);
        }
      }
    }
  }

 private:
  void Seed(VertexId source, Distance cost) {
    BeginSearch();
    SeedMore(source, cost);
  }

  Distance Label(VertexId v) const {
    return epoch_of_[v] == epoch_ ? dist_[v] : kInfiniteDistance;
  }
  void SetLabel(VertexId v, Distance d) {
    epoch_of_[v] = epoch_;
    dist_[v] = d;
  }

  const Graph* graph_;
  std::vector<Distance> dist_;
  std::vector<uint64_t> epoch_of_;
  uint64_t epoch_ = 0;
  util::IndexedMinHeap<Distance> heap_;
  const util::Deadline* deadline_ = nullptr;
  bool cancelled_ = false;
};

}  // namespace gknn::roadnet

#endif  // GKNN_ROADNET_DIJKSTRA_H_
