#ifndef GKNN_ROADNET_DIMACS_H_
#define GKNN_ROADNET_DIMACS_H_

#include <string>

#include "roadnet/graph.h"
#include "util/result.h"

namespace gknn::roadnet {

/// Reads a 9th DIMACS Implementation Challenge road-network graph
/// (`.gr` format: comment lines `c ...`, one problem line `p sp N M`, and
/// arc lines `a u v w` with 1-based vertex ids). This is the format of the
/// six real datasets in the paper's Table II
/// (http://www.dis.uniroma1.it/challenge9/download.shtml); drop the files
/// next to the benchmarks to run them on the real networks.
util::Result<Graph> ReadDimacsGraph(const std::string& path);

/// Writes a graph in the same `.gr` format (used by tests to round-trip and
/// by the dataset registry to cache generated networks).
util::Status WriteDimacsGraph(const Graph& graph, const std::string& path);

}  // namespace gknn::roadnet

#endif  // GKNN_ROADNET_DIMACS_H_
