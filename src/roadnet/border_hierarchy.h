#ifndef GKNN_ROADNET_BORDER_HIERARCHY_H_
#define GKNN_ROADNET_BORDER_HIERARCHY_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "roadnet/graph.h"
#include "roadnet/partitioner.h"
#include "util/result.h"

namespace gknn::roadnet {

/// A hierarchy of nested subnetworks with precomputed border-to-border
/// shortest distances ("shortcuts"), built over a recursive bisection of
/// the road network.
///
/// This is the structural core shared by the hierarchical baselines: ROAD's
/// Rnets + route overlay [Lee et al., EDBT'09] and V-Tree's per-node border
/// distance matrices [Shen et al., ICDE'17] are both instances of it.
///
/// Shortcuts are assembled bottom-up: a leaf searches its raw subgraph; an
/// internal node searches the overlay formed by its children's shortcuts
/// plus the raw edges crossing between the children — every matrix is exact
/// for within-node travel.
struct BorderHierarchy {
  static constexpr uint32_t kNoNode = kInvalidVertex;

  struct Node {
    uint32_t parent = kNoNode;
    uint32_t left = kNoNode;
    uint32_t right = kNoNode;
    uint32_t depth = 0;
    /// Leaf-interval labeling: the node contains vertex v iff the DFS
    /// position of v's leaf lies in [leaf_lo, leaf_hi].
    uint32_t leaf_lo = 0;
    uint32_t leaf_hi = 0;
    /// Vertices of this node with an edge (either direction) crossing its
    /// boundary. The root has none.
    std::vector<VertexId> borders;
    /// Within-node shortest distances: border -> (border, distance).
    std::unordered_map<VertexId,
                       std::vector<std::pair<VertexId, Distance>>>
        shortcuts;

    bool IsLeaf() const { return left == kNoNode; }
  };

  std::vector<Node> nodes;  // nodes[0] is the root
  /// Tree node index of each vertex's leaf.
  std::vector<uint32_t> leaf_node_of_vertex;
  /// DFS position of each vertex's leaf (for interval containment).
  std::vector<uint32_t> leaf_pos_of_vertex;
  uint32_t num_leaves = 0;

  /// O(1) containment test.
  bool Contains(const Node& node, VertexId v) const {
    const uint32_t pos = leaf_pos_of_vertex[v];
    return node.leaf_lo <= pos && pos <= node.leaf_hi;
  }
  bool Contains(uint32_t node_index, VertexId v) const {
    return Contains(nodes[node_index], v);
  }

  /// Total bytes held by the border lists and shortcut matrices.
  uint64_t MemoryBytes() const;
};

/// Builds the hierarchy for `graph` over the given bisection tree (node
/// indices correspond one-to-one with the tree's).
util::Result<BorderHierarchy> BuildBorderHierarchy(
    const Graph& graph, const BisectionTree& tree);

}  // namespace gknn::roadnet

#endif  // GKNN_ROADNET_BORDER_HIERARCHY_H_
