#include "roadnet/border_hierarchy.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace gknn::roadnet {

uint64_t BorderHierarchy::MemoryBytes() const {
  uint64_t bytes = (leaf_node_of_vertex.size() + leaf_pos_of_vertex.size()) *
                   sizeof(uint32_t);
  for (const Node& node : nodes) {
    bytes += sizeof(Node);
    bytes += node.borders.size() * sizeof(VertexId);
    for (const auto& [from, outs] : node.shortcuts) {
      (void)from;
      bytes += sizeof(VertexId) + 2 * sizeof(void*) +
               outs.size() * sizeof(std::pair<VertexId, Distance>);
    }
  }
  return bytes;
}

util::Result<BorderHierarchy> BuildBorderHierarchy(
    const Graph& graph, const BisectionTree& tree) {
  BorderHierarchy hierarchy;
  hierarchy.nodes.resize(tree.nodes.size());
  hierarchy.leaf_node_of_vertex.assign(graph.num_vertices(), 0);
  hierarchy.leaf_pos_of_vertex.assign(graph.num_vertices(), 0);

  // DFS leaf numbering so every node covers a contiguous leaf interval.
  struct Frame {
    uint32_t node;
    bool expanded;
  };
  std::vector<Frame> frames = {{0, false}};
  while (!frames.empty()) {
    const Frame f = frames.back();
    frames.pop_back();
    const auto& tree_node = tree.nodes[f.node];
    BorderHierarchy::Node& node = hierarchy.nodes[f.node];
    node.parent = tree_node.parent == roadnet::BisectionTree::kNoChild
                      ? BorderHierarchy::kNoNode
                      : tree_node.parent;
    node.left = tree_node.IsLeaf() ? BorderHierarchy::kNoNode
                                   : tree_node.left;
    node.right = tree_node.IsLeaf() ? BorderHierarchy::kNoNode
                                    : tree_node.right;
    node.depth = tree_node.depth;
    if (tree_node.IsLeaf()) {
      node.leaf_lo = node.leaf_hi = hierarchy.num_leaves;
      for (VertexId v : tree_node.vertices) {
        hierarchy.leaf_node_of_vertex[v] = f.node;
        hierarchy.leaf_pos_of_vertex[v] = hierarchy.num_leaves;
      }
      ++hierarchy.num_leaves;
    } else if (!f.expanded) {
      frames.push_back({f.node, true});
      frames.push_back({tree_node.right, false});
      frames.push_back({tree_node.left, false});
    } else {
      node.leaf_lo = hierarchy.nodes[tree_node.left].leaf_lo;
      node.leaf_hi = hierarchy.nodes[tree_node.right].leaf_hi;
    }
  }

  // Borders of every node (the root has no boundary).
  for (uint32_t n = 1; n < tree.nodes.size(); ++n) {
    BorderHierarchy::Node& node = hierarchy.nodes[n];
    for (VertexId v : tree.nodes[n].vertices) {
      bool is_border = false;
      for (EdgeId id : graph.OutEdgeIds(v)) {
        if (!hierarchy.Contains(node, graph.edge(id).target)) {
          is_border = true;
          break;
        }
      }
      if (!is_border) {
        for (EdgeId id : graph.InEdgeIds(v)) {
          if (!hierarchy.Contains(node, graph.edge(id).source)) {
            is_border = true;
            break;
          }
        }
      }
      if (is_border) node.borders.push_back(v);
    }
  }

  // Shortcuts, deepest nodes first so children are ready before parents.
  std::vector<uint32_t> order(hierarchy.nodes.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return hierarchy.nodes[a].depth > hierarchy.nodes[b].depth;
  });
  for (uint32_t n : order) {
    if (n == 0) continue;
    BorderHierarchy::Node& node = hierarchy.nodes[n];
    const auto& tree_node = tree.nodes[n];

    // Local overlay adjacency for the within-node searches.
    std::unordered_map<VertexId,
                       std::vector<std::pair<VertexId, Distance>>>
        overlay;
    if (tree_node.IsLeaf()) {
      for (VertexId v : tree_node.vertices) {
        for (EdgeId id : graph.OutEdgeIds(v)) {
          const Edge& e = graph.edge(id);
          if (hierarchy.Contains(node, e.target)) {
            overlay[v].emplace_back(e.target, e.weight);
          }
        }
      }
    } else {
      for (uint32_t child : {node.left, node.right}) {
        for (const auto& [from, outs] : hierarchy.nodes[child].shortcuts) {
          auto& adj = overlay[from];
          adj.insert(adj.end(), outs.begin(), outs.end());
        }
        for (VertexId v : hierarchy.nodes[child].borders) {
          for (EdgeId id : graph.OutEdgeIds(v)) {
            const Edge& e = graph.edge(id);
            if (hierarchy.Contains(node, e.target) &&
                !hierarchy.Contains(hierarchy.nodes[child], e.target)) {
              overlay[v].emplace_back(e.target, e.weight);
            }
          }
        }
      }
    }

    for (VertexId source : node.borders) {
      std::unordered_map<VertexId, Distance> dist;
      std::set<std::pair<Distance, VertexId>> queue;
      dist[source] = 0;
      queue.insert({0, source});
      while (!queue.empty()) {
        auto [d, v] = *queue.begin();
        queue.erase(queue.begin());
        auto it = overlay.find(v);
        if (it == overlay.end()) continue;
        for (const auto& [u, w] : it->second) {
          auto du = dist.find(u);
          if (du == dist.end() || d + w < du->second) {
            if (du != dist.end()) queue.erase({du->second, u});
            dist[u] = d + w;
            queue.insert({d + w, u});
          }
        }
      }
      auto& outs = node.shortcuts[source];
      for (VertexId target : node.borders) {
        if (target == source) continue;
        auto it = dist.find(target);
        if (it != dist.end()) outs.emplace_back(target, it->second);
      }
    }
  }
  return hierarchy;
}

}  // namespace gknn::roadnet
