#ifndef GKNN_ROADNET_GRAPH_H_
#define GKNN_ROADNET_GRAPH_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace gknn::roadnet {

/// Dense vertex identifier in [0, num_vertices).
using VertexId = uint32_t;
/// Dense edge identifier in [0, num_edges).
using EdgeId = uint32_t;
/// Network distance. Edge weights are integral (as in the DIMACS road
/// networks the paper uses), so distances are exact 64-bit sums — no
/// floating-point comparison hazards in the kNN ordering.
using Distance = uint64_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();
inline constexpr Distance kInfiniteDistance =
    std::numeric_limits<Distance>::max();

/// A directed weighted edge. The paper writes e = <id, v_s, w> with the
/// edge stored at its *destination* vertex; here edges are stored centrally
/// and indexed from both endpoints.
struct Edge {
  VertexId source = kInvalidVertex;
  VertexId target = kInvalidVertex;
  uint32_t weight = 0;
};

/// A directed road-network graph G = <V, E> in CSR form (paper §II).
///
/// Both adjacency directions are materialized: out-edges drive Dijkstra
/// searches from the query object, and in-edges ("edges having v as the
/// destination vertex") are what the G-Grid stores per vertex so that the
/// GPU Bellman-Ford can relax all edges of a vertex without write conflicts
/// (paper §V-B).
///
/// Immutable after construction; cheap to move, expensive to copy.
class Graph {
 public:
  /// Builds a graph from an edge list. Fails if any endpoint is out of
  /// range. Parallel edges and self-loops are preserved (real road data
  /// contains both).
  static util::Result<Graph> FromEdges(uint32_t num_vertices,
                                       std::vector<Edge> edges);

  Graph() = default;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;
  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;

  uint32_t num_vertices() const { return num_vertices_; }
  uint32_t num_edges() const { return static_cast<uint32_t>(edges_.size()); }

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  const std::vector<Edge>& edges() const { return edges_; }

  /// Ids of edges leaving `v`.
  std::span<const EdgeId> OutEdgeIds(VertexId v) const {
    return {out_edge_ids_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  /// Ids of edges entering `v`.
  std::span<const EdgeId> InEdgeIds(VertexId v) const {
    return {in_edge_ids_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  uint32_t OutDegree(VertexId v) const {
    return out_offsets_[v + 1] - out_offsets_[v];
  }
  uint32_t InDegree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }

  /// Total weight of all edges (useful for sanity checks and stats).
  uint64_t TotalWeight() const;

  /// True if the graph is connected when edge directions are ignored.
  bool IsWeaklyConnected() const;

  /// Estimated resident size of the CSR structures in bytes.
  uint64_t MemoryBytes() const;

 private:
  uint32_t num_vertices_ = 0;
  std::vector<Edge> edges_;
  std::vector<uint32_t> out_offsets_;  // size num_vertices_+1
  std::vector<EdgeId> out_edge_ids_;   // size num_edges
  std::vector<uint32_t> in_offsets_;   // size num_vertices_+1
  std::vector<EdgeId> in_edge_ids_;    // size num_edges
};

/// A position on the network: distance `offset` from the source vertex of
/// `edge` along it (the paper's <e, d>). Objects and queries are both
/// located this way.
struct EdgePoint {
  EdgeId edge = kInvalidEdge;
  uint32_t offset = 0;

  friend bool operator==(const EdgePoint&, const EdgePoint&) = default;
};

}  // namespace gknn::roadnet

#endif  // GKNN_ROADNET_GRAPH_H_
