#include "roadnet/graph.h"

#include <numeric>
#include <string>
#include <vector>

namespace gknn::roadnet {

util::Result<Graph> Graph::FromEdges(uint32_t num_vertices,
                                     std::vector<Edge> edges) {
  for (size_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    if (e.source >= num_vertices || e.target >= num_vertices) {
      return util::Status::InvalidArgument(
          "edge " + std::to_string(i) + " references vertex out of range [0, " +
          std::to_string(num_vertices) + ")");
    }
  }

  Graph g;
  g.num_vertices_ = num_vertices;
  g.edges_ = std::move(edges);
  const uint32_t m = g.num_edges();

  // Counting sort of edge ids into CSR rows, once per direction.
  g.out_offsets_.assign(num_vertices + 1, 0);
  g.in_offsets_.assign(num_vertices + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.out_offsets_[e.source + 1];
    ++g.in_offsets_[e.target + 1];
  }
  for (uint32_t v = 0; v < num_vertices; ++v) {
    g.out_offsets_[v + 1] += g.out_offsets_[v];
    g.in_offsets_[v + 1] += g.in_offsets_[v];
  }
  g.out_edge_ids_.resize(m);
  g.in_edge_ids_.resize(m);
  std::vector<uint32_t> out_cursor(g.out_offsets_.begin(),
                                   g.out_offsets_.end() - 1);
  std::vector<uint32_t> in_cursor(g.in_offsets_.begin(),
                                  g.in_offsets_.end() - 1);
  for (EdgeId id = 0; id < m; ++id) {
    const Edge& e = g.edges_[id];
    g.out_edge_ids_[out_cursor[e.source]++] = id;
    g.in_edge_ids_[in_cursor[e.target]++] = id;
  }
  return g;
}

uint64_t Graph::TotalWeight() const {
  uint64_t total = 0;
  for (const Edge& e : edges_) total += e.weight;
  return total;
}

bool Graph::IsWeaklyConnected() const {
  if (num_vertices_ == 0) return true;
  std::vector<char> visited(num_vertices_, 0);
  std::vector<VertexId> stack = {0};
  visited[0] = 1;
  uint32_t count = 1;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    for (EdgeId id : OutEdgeIds(v)) {
      const VertexId u = edges_[id].target;
      if (!visited[u]) {
        visited[u] = 1;
        ++count;
        stack.push_back(u);
      }
    }
    for (EdgeId id : InEdgeIds(v)) {
      const VertexId u = edges_[id].source;
      if (!visited[u]) {
        visited[u] = 1;
        ++count;
        stack.push_back(u);
      }
    }
  }
  return count == num_vertices_;
}

uint64_t Graph::MemoryBytes() const {
  return edges_.size() * sizeof(Edge) +
         (out_offsets_.size() + in_offsets_.size()) * sizeof(uint32_t) +
         (out_edge_ids_.size() + in_edge_ids_.size()) * sizeof(EdgeId);
}

}  // namespace gknn::roadnet
