#ifndef GKNN_SERVER_SHARD_ROUTER_H_
#define GKNN_SERVER_SHARD_ROUTER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/types.h"
#include "gpusim/device.h"
#include "gpusim/device_set.h"
#include "obs/metrics.h"
#include "roadnet/dijkstra.h"
#include "roadnet/graph.h"
#include "server/query_server.h"
#include "util/deadline.h"
#include "util/lockdep.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace gknn::server {

/// Router-level knobs (docs/SHARDING.md).
struct ShardRouterOptions {
  /// Number of region shards. Each shard owns its own simulated device,
  /// GGridIndex, KnnEngine, and inbox; objects are partitioned between
  /// them by the cell of their latest position. May exceed the number of
  /// grid cells (the surplus shards own no cells and stay empty).
  uint32_t num_shards = 1;
  /// Per-shard retry/breaker policy plus the *router-level* overload
  /// knobs: query_threads sizes the router's batch pool, and
  /// default_deadline_ms / max_inflight / max_queued / brownout apply
  /// once per logical query at the router (each shard is created with
  /// admission off and an inline pool — one admission decision and one
  /// budget govern every shard a query touches).
  ServerOptions server;
  /// Configuration of each shard's devices (fault spec defaults to
  /// GKNN_FAULTS, so environment storms hit every shard; tests kill a
  /// single shard via device(s).SetFaultSpec).
  gpusim::DeviceConfig device;
  /// Simulated devices per shard: each shard owns a DeviceSet of this
  /// size and schedules its clean/query work across it (see
  /// GGridIndex::Build's multi-device form). Composes with num_shards —
  /// the process models num_shards * devices_per_shard GPUs in total.
  uint32_t devices_per_shard = 1;
  /// Fan-out target: phase 1 selects shards around the query's home shard
  /// until they hold at least max(k, fanout_rho * k) objects (by the
  /// router's approximate per-shard counts). Purely a performance
  /// heuristic — phase 3's cross-border refinement restores exactness
  /// whatever this picks.
  double fanout_rho = 2.0;
};

/// Router-level counters; every field is cumulative. The overload
/// quadruple (admitted/shed/expired/brownout) accounts *logical* queries
/// at the router gate; the per-shard ServerStats account the shard
/// sub-queries those fan out into.
struct RouterStats {
  uint64_t queries = 0;            // logical kNN queries issued
  uint64_t admitted_queries = 0;   // granted a router execution slot
  uint64_t shed_queries = 0;       // rejected: router admission queue full
  uint64_t expired_queries = 0;    // returned DeadlineExceeded
  uint64_t brownout_queries = 0;   // executed under brownout pressure
  uint64_t fanout_shards = 0;      // shard queries issued in phase 2
  uint64_t refine_shards = 0;      // extra shard queries from phase 3
  uint64_t border_refinements = 0; // queries that needed a phase-3 pass
  uint64_t full_fanouts = 0;       // queries that touched every shard
  uint64_t routed_updates = 0;     // Report/Deregister calls routed
  uint64_t cross_shard_moves = 0;  // updates that moved an object's shard
};

/// Multi-engine sharding of one logical road network (docs/SHARDING.md;
/// ROADMAP item 1). The graph is replicated — every shard's engine can
/// compute distances anywhere — but the *objects* are partitioned: an
/// object lives in exactly one shard, the shard owning the grid cell of
/// its latest reported position (roadnet::AssignCellsToShards builds the
/// deterministic cell→shard table from the same Z-ordered partition every
/// GGridIndex uses).
///
/// Updates route by cell → shard under a striped object→shard map; a
/// cross-shard move enqueues a Deregister to the old shard and the Report
/// to the new one atomically per object (stripe lock, rank 150, above the
/// shard inbox rank 200 in the lock order).
///
/// Queries run an exact three-phase protocol:
///  1. fan-out selection: starting from the query's home shard, grow over
///     the shard-adjacency graph until the selected shards hold enough
///     objects (fanout_rho);
///  2. per-shard top-k (QueryServer::QueryKnnRouted threads the router's
///     deadline and brownout pressure into each shard) merged by the
///     engine's (distance, object) order with per-object dedup;
///  3. cross-border refinement: with D the merged kth distance, a bounded
///     Dijkstra from the query point (the same machinery Refine_kNN uses
///     for unresolved boundary ranges) finds every unqueried shard owning
///     a vertex within D; those shards are queried and merged once more.
///     Any object in a shard none of whose vertices is within D sits at
///     network distance > D and cannot displace the merged top-k, so one
///     round is exact — bit-for-bit identical to a single-engine server
///     (proven by tests/test_shard_differential.cc).
///
/// Thread-safety mirrors QueryServer: Report/Deregister from any thread;
/// QueryKnn/QueryKnnBatch from any thread concurrently.
class ShardRouter {
 public:
  /// Builds num_shards devices + QueryServers over `graph` (identical
  /// deterministic grids) and the cell→shard table. The graph must
  /// outlive the router.
  static util::Result<std::unique_ptr<ShardRouter>> Create(
      const roadnet::Graph* graph, const core::GGridOptions& options,
      const ShardRouterOptions& router_options);

  ~ShardRouter();

  /// Routes one location report to the shard owning the position's cell.
  /// A move between shards deregisters the object from its old shard in
  /// the same stripe-locked step. An off-network position is forwarded to
  /// the object's current shard unrouted, where the drain drops it with
  /// the same warning a single-engine server logs (the object stays put).
  void Report(core::ObjectId object, roadnet::EdgePoint position,
              double time);

  /// Routes a deregistration to the object's current shard (shard 0 for
  /// unknown objects, where it is the same no-op it would be on a
  /// single-engine server).
  void Deregister(core::ObjectId object, double time);

  /// Answers a snapshot kNN query exactly (three-phase protocol above).
  util::Result<std::vector<core::KnnResultEntry>> QueryKnn(
      roadnet::EdgePoint location, uint32_t k, double t_now);

  /// Fans a batch over the router's pool; each task is a full logical
  /// query (router admission, budget, three phases). First error fails
  /// the batch, matching QueryServer::QueryKnnBatch.
  util::Result<std::vector<std::vector<core::KnnResultEntry>>> QueryKnnBatch(
      std::span<const roadnet::EdgePoint> locations, uint32_t k,
      double t_now);

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.size());
  }
  QueryServer& shard(uint32_t s) { return *shards_[s]; }
  /// Device 0 of shard s's set (the only device at devices_per_shard=1).
  gpusim::Device& device(uint32_t s) { return device_sets_[s]->device(0); }
  /// Every device of shard s (size devices_per_shard).
  gpusim::DeviceSet& device_set(uint32_t s) { return *device_sets_[s]; }

  /// The deterministic routing table (one shard id per grid cell).
  const std::vector<uint32_t>& cell_to_shard() const {
    return cell_to_shard_;
  }
  uint32_t ShardOfCell(core::CellId cell) const {
    return cell_to_shard_[cell];
  }
  /// Shard owning the cell of `point`'s edge. Requires a valid edge id.
  uint32_t ShardOfPoint(roadnet::EdgePoint point) const;

  /// This router's counters (relaxed-atomic snapshot).
  RouterStats router_stats() const;

  /// One shard's degradation counters.
  ServerStats ShardStats(uint32_t s) const { return shards_[s]->stats(); }

  /// Element-wise sum of every shard's ServerStats (`degraded` is the OR:
  /// true while any shard's breaker is open).
  ServerStats AggregateStats() const;

  uint64_t pending_updates() const;
  uint64_t applied_updates() const;
  unsigned query_threads() const { return query_pool_->num_threads(); }

  /// Point-in-time view of the whole router: every shard's counters and
  /// gauges re-exposed under a `shard="i"` label, their element-wise sums
  /// under the unlabelled name (so single-engine dashboards keep working),
  /// and the gknn_router_* counters. Shard histograms are not folded —
  /// read them from shard(i).MetricsSnapshot() when needed.
  obs::RegistrySnapshot MetricsSnapshot();
  std::string MetricsPrometheus();
  std::string MetricsJson();

  /// Merges per-shard top-k lists into the global top-k: ascending
  /// (distance, object) — the engine's deterministic order — deduplicated
  /// per object keeping its best entry. k greater than the total yields
  /// every distinct object. Exposed for tests/test_shard_router.cc.
  static std::vector<core::KnnResultEntry> MergeTopK(
      const std::vector<std::vector<core::KnnResultEntry>>& per_shard,
      uint32_t k);

 private:
  static constexpr size_t kStripes = 8;

  /// One stripe of the object→shard map. Rank 150 (router.objects) sits
  /// between the index lock and the shard inboxes, so the routing step may
  /// enqueue into a shard inbox (rank 200) while holding it — that is what
  /// makes a cross-shard move's Deregister+Report pair atomic per object.
  struct Stripe {
    mutable util::lockdep::Mutex mutex{util::lockdep::kRouterObjectsClass};
    std::unordered_map<core::ObjectId, uint32_t> shard_of;
  };

  struct AtomicRouterStats {
    std::atomic<uint64_t> queries{0};
    std::atomic<uint64_t> admitted_queries{0};
    std::atomic<uint64_t> shed_queries{0};
    std::atomic<uint64_t> expired_queries{0};
    std::atomic<uint64_t> brownout_queries{0};
    std::atomic<uint64_t> fanout_shards{0};
    std::atomic<uint64_t> refine_shards{0};
    std::atomic<uint64_t> border_refinements{0};
    std::atomic<uint64_t> full_fanouts{0};
    std::atomic<uint64_t> routed_updates{0};
    std::atomic<uint64_t> cross_shard_moves{0};
  };

  /// Outcome of one router-level admission decision (mirror of
  /// QueryServer::Admission; the gate reuses the server.admission leaf
  /// class — same rank-902 discipline, one more instance).
  struct Admission {
    util::Status status = util::Status::OK();
    bool brownout = false;
  };

  ShardRouter(const roadnet::Graph* graph,
              const ShardRouterOptions& options);

  Stripe& StripeOf(core::ObjectId object) {
    return stripes_[object % kStripes];
  }

  util::Deadline DefaultDeadline() const {
    return options_.server.default_deadline_ms > 0
               ? util::Deadline::AfterSeconds(
                     options_.server.default_deadline_ms * 1e-3)
               : util::Deadline();
  }

  Admission Admit(const util::Deadline& deadline);
  void ReleaseSlot();

  /// The full logical-query path (admission + three phases) under an
  /// explicit budget; QueryKnn passes DefaultDeadline() and the batch
  /// fan-out passes its shared one.
  util::Result<std::vector<core::KnnResultEntry>> QueryKnnInternal(
      roadnet::EdgePoint location, uint32_t k, double t_now,
      const util::Deadline& deadline);

  /// Phase 1: the ordered shard fan-out for a query homed in `home`.
  std::vector<uint32_t> SelectShards(uint32_t home, uint32_t k) const;

  /// Leases a BoundedDijkstra workspace for one phase-3 refinement.
  /// Instances are not thread-safe, so concurrent refiners each lease
  /// their own; the epoch-stamped workspace makes a recycled search
  /// O(settled), not O(|V|).
  std::unique_ptr<roadnet::BoundedDijkstra> AcquireDijkstra();
  void ReleaseDijkstra(std::unique_ptr<roadnet::BoundedDijkstra> dijkstra);

  void FoldRouterMetrics();

  const roadnet::Graph* graph_;
  ShardRouterOptions options_;
  std::vector<std::unique_ptr<gpusim::DeviceSet>> device_sets_;
  std::vector<std::unique_ptr<QueryServer>> shards_;
  const core::GraphGrid* grid_ = nullptr;  // shard 0's (all identical)
  std::vector<uint32_t> cell_to_shard_;
  /// Shard-adjacency lists (sorted, deduplicated): s' is adjacent to s
  /// when some cell of s borders a cell of s' in the grid's neighborhood
  /// relation. Built once; phase 1 grows its fan-out over this graph.
  std::vector<std::vector<uint32_t>> shard_neighbors_;
  /// Approximate live-object count per shard, maintained by the routing
  /// step (heuristic input to phase 1 only — never a correctness input).
  std::vector<std::atomic<uint64_t>> shard_objects_;

  Stripe stripes_[kStripes];
  std::unique_ptr<util::ThreadPool> query_pool_;
  AtomicRouterStats stats_;

  /// Router admission gate (docs/SHARDING.md): same leaf discipline as
  /// QueryServer's — the condvar wait releases the mutex, so a blocked
  /// admitter holds nothing.
  mutable util::lockdep::Mutex admission_mu_{
      util::lockdep::kServerAdmissionClass};
  std::condition_variable_any admission_cv_;
  uint32_t inflight_ = 0;          // guarded by admission_mu_
  uint32_t admission_queued_ = 0;  // guarded by admission_mu_

  /// Recycled refinement workspaces (leaf lock, same per-query-scratch
  /// discipline as engine.workspace — one more instance of that class).
  mutable util::lockdep::Mutex dijkstra_mu_{
      util::lockdep::kEngineWorkspaceClass};
  std::vector<std::unique_ptr<roadnet::BoundedDijkstra>> dijkstra_pool_;

  obs::MetricRegistry router_registry_;
};

}  // namespace gknn::server

#endif  // GKNN_SERVER_SHARD_ROUTER_H_
