#include "server/shard_router.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <map>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>

#include "core/graph_grid.h"
#include "roadnet/dijkstra.h"
#include "roadnet/partitioner.h"
#include "util/logging.h"

namespace gknn::server {

namespace {

/// `name` with a `shard="s"` label merged into its (possibly existing)
/// label set: `a_total` -> `a_total{shard="2"}` and
/// `a_total{path="gpu"}` -> `a_total{path="gpu",shard="2"}`.
std::string WithShardLabel(const std::string& name, uint32_t shard) {
  const std::string label = "shard=\"" + std::to_string(shard) + "\"";
  if (!name.empty() && name.back() == '}') {
    return name.substr(0, name.size() - 1) + "," + label + "}";
  }
  return name + "{" + label + "}";
}

}  // namespace

ShardRouter::ShardRouter(const roadnet::Graph* graph,
                         const ShardRouterOptions& options)
    : graph_(graph),
      options_(options),
      shard_objects_(options.num_shards),
      query_pool_(options.server.query_threads == 0
                      ? std::make_unique<util::ThreadPool>(
                            util::ThreadPool::Inline{})
                      : std::make_unique<util::ThreadPool>(
                            options.server.query_threads,
                            options.server.max_queued)) {}

ShardRouter::~ShardRouter() = default;

util::Result<std::unique_ptr<ShardRouter>> ShardRouter::Create(
    const roadnet::Graph* graph, const core::GGridOptions& options,
    const ShardRouterOptions& router_options) {
  if (router_options.num_shards == 0) {
    return util::Status::InvalidArgument("num_shards must be positive");
  }
  if (router_options.fanout_rho < 1.0) {
    return util::Status::InvalidArgument("fanout_rho must be >= 1");
  }
  std::unique_ptr<ShardRouter> router(
      new ShardRouter(graph, router_options));

  // Each shard runs with admission off, no default budget, and an inline
  // pool: the router applies one admission decision, one deadline, and
  // one brownout signal per *logical* query, and its own pool provides
  // the batch parallelism. Retry/breaker knobs pass through so each shard
  // degrades independently when its device dies.
  ServerOptions shard_options = router_options.server;
  shard_options.query_threads = 0;
  shard_options.max_inflight = 0;
  shard_options.max_queued = 0;
  shard_options.default_deadline_ms = 0;
  shard_options.brownout = false;  // pressure arrives via QueryKnnRouted

  const uint32_t devices_per_shard =
      std::max<uint32_t>(1, router_options.devices_per_shard);
  for (uint32_t s = 0; s < router_options.num_shards; ++s) {
    router->device_sets_.push_back(std::make_unique<gpusim::DeviceSet>(
        devices_per_shard, router_options.device));
    GKNN_ASSIGN_OR_RETURN(
        std::unique_ptr<QueryServer> shard,
        QueryServer::Create(graph, options, router->device_sets_.back().get(),
                            shard_options));
    router->shards_.push_back(std::move(shard));
  }
  router->grid_ = &router->shards_[0]->index().grid();

  // The grids must be bit-identical across shards — the partitioner is
  // deterministic in its seed, so this only fires if that determinism
  // regresses, in which case routing by shard 0's grid would silently
  // disagree with where other shards file their cleaning work.
  for (uint32_t s = 1; s < router_options.num_shards; ++s) {
    const auto& mine =
        router->shards_[s]->index().grid().partition().cell_of_vertex;
    if (mine != router->grid_->partition().cell_of_vertex) {
      return util::Status::Internal(
          "shard " + std::to_string(s) +
          " partitioned the graph differently than shard 0; the "
          "partitioner is expected to be deterministic in its seed");
    }
  }

  GKNN_ASSIGN_OR_RETURN(
      router->cell_to_shard_,
      roadnet::AssignCellsToShards(router->grid_->partition(),
                                   router_options.num_shards));

  // Shard adjacency from the grid's cell neighborhoods (sorted, deduped).
  router->shard_neighbors_.assign(router_options.num_shards, {});
  const uint32_t num_cells = router->grid_->num_cells();
  std::vector<std::unordered_set<uint32_t>> adjacent(
      router_options.num_shards);
  for (core::CellId c = 0; c < num_cells; ++c) {
    const uint32_t sc = router->cell_to_shard_[c];
    for (core::CellId n : router->grid_->NeighborCells(c)) {
      const uint32_t sn = router->cell_to_shard_[n];
      if (sn != sc) adjacent[sc].insert(sn);
    }
  }
  for (uint32_t s = 0; s < router_options.num_shards; ++s) {
    router->shard_neighbors_[s].assign(adjacent[s].begin(),
                                       adjacent[s].end());
    std::sort(router->shard_neighbors_[s].begin(),
              router->shard_neighbors_[s].end());
  }
  return router;
}

uint32_t ShardRouter::ShardOfPoint(roadnet::EdgePoint point) const {
  return cell_to_shard_[grid_->CellOfEdge(point.edge)];
}

void ShardRouter::Report(core::ObjectId object, roadnet::EdgePoint position,
                         double time) {
  stats_.routed_updates.fetch_add(1, std::memory_order_relaxed);
  const bool valid =
      position.edge < graph_->num_edges() &&
      position.offset <= graph_->edge(position.edge).weight;
  Stripe& stripe = StripeOf(object);
  util::lockdep::MutexLock lock(stripe.mutex);
  auto it = stripe.shard_of.find(object);
  if (!valid) {
    // Keep single-engine semantics for poison updates: the entry reaches
    // a drain, is dropped there with a warning, and the object (if any)
    // stays at its last good position — so it must not be re-routed.
    const uint32_t current = it != stripe.shard_of.end() ? it->second : 0;
    shards_[current]->Report(object, position, time);
    return;
  }
  const uint32_t target = cell_to_shard_[grid_->CellOfEdge(position.edge)];
  if (it == stripe.shard_of.end()) {
    stripe.shard_of.emplace(object, target);
    shard_objects_[target].fetch_add(1, std::memory_order_relaxed);
  } else if (it->second != target) {
    // Cross-shard move: the old shard gets the departure, the new one the
    // report, both under this stripe lock so no query can observe the
    // object in two shards or in none via the routing table.
    shards_[it->second]->Deregister(object, time);
    shard_objects_[it->second].fetch_sub(1, std::memory_order_relaxed);
    shard_objects_[target].fetch_add(1, std::memory_order_relaxed);
    it->second = target;
    stats_.cross_shard_moves.fetch_add(1, std::memory_order_relaxed);
  }
  shards_[target]->Report(object, position, time);
}

void ShardRouter::Deregister(core::ObjectId object, double time) {
  stats_.routed_updates.fetch_add(1, std::memory_order_relaxed);
  Stripe& stripe = StripeOf(object);
  util::lockdep::MutexLock lock(stripe.mutex);
  auto it = stripe.shard_of.find(object);
  if (it == stripe.shard_of.end()) {
    // Unknown object: same no-op Remove it would be on a single engine.
    shards_[0]->Deregister(object, time);
    return;
  }
  shards_[it->second]->Deregister(object, time);
  shard_objects_[it->second].fetch_sub(1, std::memory_order_relaxed);
  stripe.shard_of.erase(it);
}

ShardRouter::Admission ShardRouter::Admit(const util::Deadline& deadline) {
  Admission out;
  const uint32_t max_inflight = options_.server.max_inflight;
  if (max_inflight == 0) {
    util::lockdep::MutexLock lock(admission_mu_);
    ++inflight_;
    stats_.admitted_queries.fetch_add(1, std::memory_order_relaxed);
    return out;
  }
  bool waited = false;
  util::lockdep::UniqueLock lock(admission_mu_);
  while (inflight_ >= max_inflight) {
    if (!waited) {
      if (admission_queued_ >= options_.server.max_queued) {
        out.status = util::Status::ResourceExhausted(
            "router admission queue full (" +
            std::to_string(admission_queued_) + " waiting, " +
            std::to_string(inflight_) + " inflight)");
        return out;
      }
      ++admission_queued_;
      waited = true;
    }
    if (deadline.is_infinite()) {
      admission_cv_.wait(lock);
    } else {
      admission_cv_.wait_until(lock, deadline.time_point());
      if (inflight_ >= max_inflight && deadline.Expired()) {
        --admission_queued_;
        out.status = util::Status::DeadlineExceeded(
            "deadline expired waiting for a router execution slot");
        return out;
      }
    }
  }
  if (waited) --admission_queued_;
  ++inflight_;
  stats_.admitted_queries.fetch_add(1, std::memory_order_relaxed);
  out.brownout = options_.server.brownout &&
                 (waited || inflight_ * 2 > max_inflight);
  return out;
}

void ShardRouter::ReleaseSlot() {
  {
    util::lockdep::MutexLock lock(admission_mu_);
    --inflight_;
  }
  admission_cv_.notify_one();
}

std::vector<uint32_t> ShardRouter::SelectShards(uint32_t home,
                                                uint32_t k) const {
  const uint64_t target = std::max<uint64_t>(
      k, static_cast<uint64_t>(std::ceil(options_.fanout_rho * k)));
  std::vector<uint32_t> selected{home};
  std::vector<uint8_t> in(num_shards(), 0);
  in[home] = 1;
  uint64_t covered = shard_objects_[home].load(std::memory_order_relaxed);
  std::vector<uint32_t> frontier{home};
  // gknn-check: allow(deadline-checkpoint): BFS over the shard topology
  // visits each of the (few, fixed) shards at most once via `in`; it
  // terminates in at most num_shards() iterations with no device work.
  while (covered < target && !frontier.empty()) {
    std::vector<uint32_t> next;
    for (uint32_t s : frontier) {
      for (uint32_t n : shard_neighbors_[s]) {
        if (in[n]) continue;
        in[n] = 1;
        selected.push_back(n);
        next.push_back(n);
        covered += shard_objects_[n].load(std::memory_order_relaxed);
        if (covered >= target) break;
      }
      if (covered >= target) break;
    }
    frontier = std::move(next);
  }
  return selected;
}

std::vector<core::KnnResultEntry> ShardRouter::MergeTopK(
    const std::vector<std::vector<core::KnnResultEntry>>& per_shard,
    uint32_t k) {
  std::vector<core::KnnResultEntry> all;
  for (const auto& entries : per_shard) {
    all.insert(all.end(), entries.begin(), entries.end());
  }
  // The engine's deterministic total order; after the sort the first
  // occurrence of an object is its best entry, so the dedup is a single
  // seen-set pass.
  std::sort(all.begin(), all.end());
  std::vector<core::KnnResultEntry> merged;
  std::unordered_set<core::ObjectId> seen;
  for (const core::KnnResultEntry& entry : all) {
    if (merged.size() >= k) break;
    if (!seen.insert(entry.object).second) continue;
    merged.push_back(entry);
  }
  return merged;
}

util::Result<std::vector<core::KnnResultEntry>> ShardRouter::QueryKnn(
    roadnet::EdgePoint location, uint32_t k, double t_now) {
  return QueryKnnInternal(location, k, t_now, DefaultDeadline());
}

util::Result<std::vector<core::KnnResultEntry>>
ShardRouter::QueryKnnInternal(roadnet::EdgePoint location, uint32_t k,
                              double t_now, const util::Deadline& deadline) {
  stats_.queries.fetch_add(1, std::memory_order_relaxed);
  Admission admission = Admit(deadline);
  if (!admission.status.ok()) {
    if (admission.status.IsDeadlineExceeded()) {
      stats_.expired_queries.fetch_add(1, std::memory_order_relaxed);
    } else {
      stats_.shed_queries.fetch_add(1, std::memory_order_relaxed);
    }
    return admission.status;
  }
  struct SlotGuard {
    ShardRouter* router;
    ~SlotGuard() { router->ReleaseSlot(); }
  } slot_guard{this};
  const bool pressure = admission.brownout;
  if (pressure) {
    stats_.brownout_queries.fetch_add(1, std::memory_order_relaxed);
  }

  auto finish = [&](util::Result<std::vector<core::KnnResultEntry>> result) {
    if (!result.ok() && result.status().IsDeadlineExceeded()) {
      stats_.expired_queries.fetch_add(1, std::memory_order_relaxed);
    }
    return result;
  };

  // An invalid location or k is forwarded to one shard unrouted so the
  // caller sees exactly the typed validation error a single-engine server
  // returns (the selection below needs a valid edge for CellOfEdge).
  if (k == 0 || location.edge >= graph_->num_edges() ||
      location.offset > graph_->edge(location.edge).weight) {
    return finish(
        shards_[0]->QueryKnnRouted(location, k, t_now, deadline, pressure));
  }

  // Phase 1: fan out to the shards the candidate ring plausibly touches.
  const uint32_t home = cell_to_shard_[grid_->CellOfEdge(location.edge)];
  std::vector<uint32_t> selected = SelectShards(home, k);
  std::vector<uint8_t> queried(num_shards(), 0);

  // Phase 2: per-shard top-k, merged in the engine's (distance, object)
  // order. The home shard is queried first — it owns the query's own
  // edge, whose objects are the one case the vertex-distance bound of
  // phase 3 does not cover.
  std::vector<std::vector<core::KnnResultEntry>> per_shard;
  per_shard.reserve(selected.size());
  for (uint32_t s : selected) {
    auto result =
        shards_[s]->QueryKnnRouted(location, k, t_now, deadline, pressure);
    if (!result.ok()) return finish(result.status());
    per_shard.push_back(std::move(result).ValueOrDie());
    queried[s] = 1;
  }
  stats_.fanout_shards.fetch_add(selected.size(),
                                 std::memory_order_relaxed);
  std::vector<core::KnnResultEntry> merged = MergeTopK(per_shard, k);

  // Phase 3: cross-border refinement. With D the merged kth distance,
  // any object homed in an unqueried shard sits at distance
  // >= dist(q, source(its edge)), and that source vertex belongs to the
  // shard; so a shard none of whose vertices is within D cannot hold a
  // competitor, and one refinement round is exact (D only shrinks).
  if (selected.size() < num_shards()) {
    const bool have_bound = merged.size() >= k;
    const roadnet::Distance bound =
        have_bound ? merged.back().distance : roadnet::kInfiniteDistance;
    std::vector<uint32_t> extra;
    if (!have_bound) {
      // Fewer than k merged results: no exclusion bound exists; the
      // remaining shards must all be asked.
      for (uint32_t s = 0; s < num_shards(); ++s) {
        if (!queried[s]) extra.push_back(s);
      }
    } else {
      std::vector<uint8_t> reachable(num_shards(), 0);
      std::unique_ptr<roadnet::BoundedDijkstra> dijkstra = AcquireDijkstra();
      dijkstra->set_deadline(&deadline);
      dijkstra->RunFromPoint(
          location, bound, [&](roadnet::VertexId v, roadnet::Distance) {
            reachable[cell_to_shard_[grid_->CellOfVertex(v)]] = 1;
          });
      const bool expired = dijkstra->cancelled();
      ReleaseDijkstra(std::move(dijkstra));
      if (expired) {
        return util::Status::DeadlineExceeded(
            "route: query budget exhausted during border refinement");
      }
      for (uint32_t s = 0; s < num_shards(); ++s) {
        if (!queried[s] && reachable[s]) extra.push_back(s);
      }
    }
    if (!extra.empty()) {
      stats_.border_refinements.fetch_add(1, std::memory_order_relaxed);
      stats_.refine_shards.fetch_add(extra.size(),
                                     std::memory_order_relaxed);
      for (uint32_t s : extra) {
        // With a bound, a range probe of radius D (inclusive, so ties at
        // D still merge and lose or win on the object-id tie-break) costs
        // the border ring it touches; full kNN on a sparse remote region
        // would expand far past it. Without a bound the full kNN stands.
        auto result =
            have_bound
                ? shards_[s]->QueryRangeRouted(location, bound, t_now,
                                               deadline, pressure)
                : shards_[s]->QueryKnnRouted(location, k, t_now, deadline,
                                             pressure);
        if (!result.ok()) return finish(result.status());
        per_shard.push_back(std::move(result).ValueOrDie());
        queried[s] = 1;
        selected.push_back(s);
      }
      merged = MergeTopK(per_shard, k);
    }
  }
  if (selected.size() == num_shards()) {
    stats_.full_fanouts.fetch_add(1, std::memory_order_relaxed);
  }
  return finish(std::move(merged));
}

util::Result<std::vector<std::vector<core::KnnResultEntry>>>
ShardRouter::QueryKnnBatch(std::span<const roadnet::EdgePoint> locations,
                           uint32_t k, double t_now) {
  const util::Deadline deadline = DefaultDeadline();
  std::vector<std::vector<core::KnnResultEntry>> results(locations.size());
  std::vector<util::Status> statuses(locations.size(), util::Status::OK());
  std::vector<std::future<void>> tasks;
  tasks.reserve(locations.size());
  for (size_t i = 0; i < locations.size(); ++i) {
    util::ThreadPool::Submission submission;
    submission.deadline = deadline;
    submission.run = [this, &results, &statuses, location = locations[i], k,
                      t_now, i, deadline] {
      auto result = QueryKnnInternal(location, k, t_now, deadline);
      if (result.ok()) {
        results[i] = std::move(result).ValueOrDie();
      } else {
        statuses[i] = result.status();
      }
    };
    submission.on_expired = [this, &statuses, i] {
      stats_.expired_queries.fetch_add(1, std::memory_order_relaxed);
      statuses[i] = util::Status::DeadlineExceeded(
          "query budget exhausted in the router batch queue");
    };
    std::optional<std::future<void>> task =
        query_pool_->TrySubmitTask(std::move(submission));
    if (!task.has_value()) {
      stats_.shed_queries.fetch_add(1, std::memory_order_relaxed);
      statuses[i] = util::Status::ResourceExhausted(
          "router batch query pool queue full");
      continue;
    }
    tasks.push_back(std::move(*task));
  }
  for (std::future<void>& task : tasks) task.get();
  for (util::Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return results;
}

std::unique_ptr<roadnet::BoundedDijkstra> ShardRouter::AcquireDijkstra() {
  {
    util::lockdep::MutexLock lock(dijkstra_mu_);
    if (!dijkstra_pool_.empty()) {
      std::unique_ptr<roadnet::BoundedDijkstra> out =
          std::move(dijkstra_pool_.back());
      dijkstra_pool_.pop_back();
      return out;
    }
  }
  return std::make_unique<roadnet::BoundedDijkstra>(graph_);
}

void ShardRouter::ReleaseDijkstra(
    std::unique_ptr<roadnet::BoundedDijkstra> dijkstra) {
  // The deadline pointer belongs to the query that borrowed the searcher;
  // it must not survive into the pool.
  dijkstra->set_deadline(nullptr);
  util::lockdep::MutexLock lock(dijkstra_mu_);
  dijkstra_pool_.push_back(std::move(dijkstra));
}

RouterStats ShardRouter::router_stats() const {
  RouterStats out;
  out.queries = stats_.queries.load(std::memory_order_relaxed);
  out.admitted_queries =
      stats_.admitted_queries.load(std::memory_order_relaxed);
  out.shed_queries = stats_.shed_queries.load(std::memory_order_relaxed);
  out.expired_queries =
      stats_.expired_queries.load(std::memory_order_relaxed);
  out.brownout_queries =
      stats_.brownout_queries.load(std::memory_order_relaxed);
  out.fanout_shards = stats_.fanout_shards.load(std::memory_order_relaxed);
  out.refine_shards = stats_.refine_shards.load(std::memory_order_relaxed);
  out.border_refinements =
      stats_.border_refinements.load(std::memory_order_relaxed);
  out.full_fanouts = stats_.full_fanouts.load(std::memory_order_relaxed);
  out.routed_updates =
      stats_.routed_updates.load(std::memory_order_relaxed);
  out.cross_shard_moves =
      stats_.cross_shard_moves.load(std::memory_order_relaxed);
  return out;
}

ServerStats ShardRouter::AggregateStats() const {
  ServerStats total;
  for (const auto& shard : shards_) {
    const ServerStats s = shard->stats();
    total.gpu_failures += s.gpu_failures;
    total.retries += s.retries;
    total.fallback_queries += s.fallback_queries;
    total.degraded_queries += s.degraded_queries;
    total.breaker_trips += s.breaker_trips;
    total.breaker_closes += s.breaker_closes;
    total.update_requeues += s.update_requeues;
    total.degraded = total.degraded || s.degraded;
    total.admitted_queries += s.admitted_queries;
    total.shed_queries += s.shed_queries;
    total.expired_queries += s.expired_queries;
    total.brownout_queries += s.brownout_queries;
  }
  return total;
}

uint64_t ShardRouter::pending_updates() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->pending_updates();
  return total;
}

uint64_t ShardRouter::applied_updates() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->applied_updates();
  return total;
}

void ShardRouter::FoldRouterMetrics() {
  if (!obs::kEnabled) return;
  // Per-shard folds first (each takes that shard's writer lock and
  // releases it before the next — shard snapshots are mutually consistent
  // per shard, not across shards), then the relabelled copies and sums.
  std::map<std::string, double> sums;
  for (uint32_t s = 0; s < num_shards(); ++s) {
    const obs::RegistrySnapshot snapshot = shards_[s]->MetricsSnapshot();
    for (const auto& [name, value] : snapshot.counters) {
      router_registry_.GetGauge(WithShardLabel(name, s))
          ->Set(static_cast<double>(value));
      sums[name] += static_cast<double>(value);
    }
    for (const auto& [name, value] : snapshot.gauges) {
      router_registry_.GetGauge(WithShardLabel(name, s))->Set(value);
      sums[name] += value;
    }
  }
  for (const auto& [name, value] : sums) {
    router_registry_.GetGauge(name)->Set(value);
  }
  const RouterStats rs = router_stats();
  auto set = [&](std::string_view name, double value) {
    router_registry_.GetGauge(name)->Set(value);
  };
  set("gknn_router_shards", static_cast<double>(num_shards()));
  set("gknn_router_queries", static_cast<double>(rs.queries));
  set("gknn_router_admitted_queries",
      static_cast<double>(rs.admitted_queries));
  set("gknn_router_shed_queries", static_cast<double>(rs.shed_queries));
  set("gknn_router_expired_queries",
      static_cast<double>(rs.expired_queries));
  set("gknn_router_brownout_queries",
      static_cast<double>(rs.brownout_queries));
  set("gknn_router_fanout_shards", static_cast<double>(rs.fanout_shards));
  set("gknn_router_refine_shards", static_cast<double>(rs.refine_shards));
  set("gknn_router_border_refinements",
      static_cast<double>(rs.border_refinements));
  set("gknn_router_full_fanouts", static_cast<double>(rs.full_fanouts));
  set("gknn_router_routed_updates",
      static_cast<double>(rs.routed_updates));
  set("gknn_router_cross_shard_moves",
      static_cast<double>(rs.cross_shard_moves));
}

obs::RegistrySnapshot ShardRouter::MetricsSnapshot() {
  FoldRouterMetrics();
  return router_registry_.Snapshot();
}

std::string ShardRouter::MetricsPrometheus() {
  FoldRouterMetrics();
  return router_registry_.RenderPrometheusText();
}

std::string ShardRouter::MetricsJson() {
  FoldRouterMetrics();
  return router_registry_.RenderJson();
}

}  // namespace gknn::server
