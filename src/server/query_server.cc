#include "server/query_server.h"

#include <algorithm>
#include <future>
#include <string_view>
#include <utility>

#include "gpusim/fault_injector.h"
#include "util/backoff.h"
#include "util/logging.h"

namespace gknn::server {

util::Result<std::unique_ptr<QueryServer>> QueryServer::Create(
    const roadnet::Graph* graph, const core::GGridOptions& options,
    gpusim::Device* device, const ServerOptions& server_options) {
  GKNN_ASSIGN_OR_RETURN(std::unique_ptr<core::GGridIndex> index,
                        core::GGridIndex::Build(graph, options, device));
  return std::unique_ptr<QueryServer>(
      new QueryServer(std::move(index), server_options));
}

void QueryServer::Report(core::ObjectId object, roadnet::EdgePoint position,
                         double time) {
  Inbox& inbox = InboxOf(object);
  util::lockdep::MutexLock lock(inbox.mutex);
  inbox.entries.push_back(Inbox::Entry{object, position, time, false});
}

void QueryServer::Deregister(core::ObjectId object, double time) {
  Inbox& inbox = InboxOf(object);
  util::lockdep::MutexLock lock(inbox.mutex);
  inbox.entries.push_back(Inbox::Entry{object, {}, time, true});
}

util::Status QueryServer::DrainExclusive() {
  util::Status first_error = util::Status::OK();
  for (Inbox& inbox : inboxes_) {
    std::vector<Inbox::Entry> batch;
    {
      util::lockdep::MutexLock lock(inbox.mutex);
      batch.swap(inbox.entries);
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      const Inbox::Entry& e = batch[i];
      const util::Status applied =
          e.remove ? index_->Remove(e.object, e.time)
                   : index_->Ingest(e.object, e.position, e.time);
      if (applied.ok()) continue;
      if (!gpusim::IsDeviceError(applied)) {
        // Permanent error (a position off the network): drop the poison
        // entry and keep draining — one bad producer must not wedge the
        // whole inbox. First such error is reported to the caller.
        GKNN_LOG(Warning) << "dropping bad update for object " << e.object
                          << ": " << applied.ToString();
        if (first_error.ok()) first_error = applied;
        continue;
      }
      // Transient device error: re-queue the failed entry and the rest of
      // its batch at the *front* of the stripe (per-object FIFO order is
      // preserved) and move on; the next drain retries them.
      {
        util::lockdep::MutexLock lock(inbox.mutex);
        inbox.entries.insert(inbox.entries.begin(), batch.begin() + i,
                             batch.end());
      }
      ++stats_.update_requeues;
      if (first_error.ok()) first_error = applied;
      break;
    }
  }
  return first_error;
}

util::Status QueryServer::TimedDrainExclusive() {
  if (!obs::kEnabled) return DrainExclusive();
  const obs::Clock& clock = index_->tracer().clock();
  const double start = clock.NowSeconds();
  util::Status status = DrainExclusive();
  index_->metrics()
      .GetHistogram("gknn_server_drain_seconds")
      ->Observe(clock.NowSeconds() - start);
  return status;
}

util::Status QueryServer::DrainIfPending() {
  if (pending_updates() == 0) return util::Status::OK();
  util::lockdep::ExclusiveLock lock(index_mutex_);
  return TimedDrainExclusive();
}

template <typename RunFn>
util::Result<std::vector<core::KnnResultEntry>> QueryServer::ExecuteShared(
    RunFn run, uint64_t* query_retries) {
  using core::ExecMode;
  // Degraded path. The decision (count the query, pace the probe) happens
  // under breaker_mu_; the query itself runs without it so concurrent
  // readers only serialize for a counter update.
  bool degraded_now = false;
  bool probe_due = false;
  {
    util::lockdep::MutexLock lock(breaker_mu_);
    if (stats_.degraded.load(std::memory_order_relaxed)) {
      degraded_now = true;
      ++stats_.degraded_queries;
      ++degraded_query_count_;
      probe_due = options_.probe_interval > 0 &&
                  degraded_query_count_ % options_.probe_interval == 0;
    }
  }
  if (degraded_now) {
    if (probe_due) {
      // Half-open probe: try the GPU once; success closes the breaker and
      // this probe's answer is the query's answer.
      auto probe = run(ExecMode::kGpuOnly);
      if (probe.ok()) {
        util::lockdep::MutexLock lock(breaker_mu_);
        // Another probe may have closed the breaker while ours ran.
        if (stats_.degraded.load(std::memory_order_relaxed)) {
          breaker_seq_.fetch_add(1, std::memory_order_release);
          stats_.degraded.store(false, std::memory_order_relaxed);
          stats_.breaker_closes.fetch_add(1, std::memory_order_relaxed);
          breaker_seq_.fetch_add(1, std::memory_order_release);
          consecutive_query_failures_ = 0;
          GKNN_LOG(Info) << "device recovered: circuit breaker closed";
        }
        return probe;
      }
      if (!gpusim::IsDeviceError(probe.status())) return probe;
      ++stats_.gpu_failures;
    }
    ++stats_.fallback_queries;
    return run(ExecMode::kCpuOnly);
  }

  util::ExponentialBackoff backoff(options_.backoff_base_ms,
                                   options_.backoff_max_ms);
  const uint32_t attempts = std::max<uint32_t>(1, options_.gpu_attempts);
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      ++stats_.retries;
      if (query_retries != nullptr) ++*query_retries;
      backoff.SleepNext();
    }
    auto result = run(ExecMode::kGpuOnly);
    if (result.ok()) {
      util::lockdep::MutexLock lock(breaker_mu_);
      consecutive_query_failures_ = 0;
      return result;
    }
    if (!gpusim::IsDeviceError(result.status())) return result;
    ++stats_.gpu_failures;
  }
  {
    util::lockdep::MutexLock lock(breaker_mu_);
    if (++consecutive_query_failures_ >= options_.breaker_threshold &&
        !stats_.degraded.load(std::memory_order_relaxed)) {
      breaker_seq_.fetch_add(1, std::memory_order_release);
      stats_.degraded.store(true, std::memory_order_relaxed);
      stats_.breaker_trips.fetch_add(1, std::memory_order_relaxed);
      breaker_seq_.fetch_add(1, std::memory_order_release);
      degraded_query_count_ = 0;
      GKNN_LOG(Warning) << "circuit breaker open after "
                        << consecutive_query_failures_
                        << " consecutive device failures; serving from CPU";
    }
  }
  ++stats_.fallback_queries;
  return run(ExecMode::kCpuOnly);
}

util::Result<std::vector<core::KnnResultEntry>> QueryServer::QueryKnn(
    roadnet::EdgePoint location, uint32_t k, double t_now) {
  GKNN_RETURN_NOT_OK(DrainIfPending());
  // gknn-check: allow(shared-block): the reader lock is the query protocol —
  // kernels, transfers, and retry backoff run under it by design so queries
  // never block each other; writers drain via DrainIfPending first. See
  // docs/CONCURRENCY.md "reader-writer query protocol".
  util::lockdep::SharedLock lock(index_mutex_);
  core::KnnStats stats;
  uint64_t query_retries = 0;
  auto result = ExecuteShared(
      [&](core::ExecMode mode) {
        return index_->QueryKnn(location, k, t_now, &stats, mode);
      },
      &query_retries);
  AnnotateTrace(stats.query_id, query_retries);
  return result;
}

util::Result<std::vector<core::KnnResultEntry>> QueryServer::QueryRange(
    roadnet::EdgePoint location, roadnet::Distance radius, double t_now) {
  GKNN_RETURN_NOT_OK(DrainIfPending());
  // gknn-check: allow(shared-block): same intentional design as QueryKnn —
  // device work under the reader lock is the query protocol.
  util::lockdep::SharedLock lock(index_mutex_);
  core::KnnStats stats;
  uint64_t query_retries = 0;
  auto result = ExecuteShared(
      [&](core::ExecMode mode) {
        return index_->QueryRange(location, radius, t_now, &stats, mode);
      },
      &query_retries);
  AnnotateTrace(stats.query_id, query_retries);
  return result;
}

util::Result<std::vector<std::vector<core::KnnResultEntry>>>
QueryServer::QueryKnnBatch(std::span<const roadnet::EdgePoint> locations,
                           uint32_t k, double t_now) {
  GKNN_RETURN_NOT_OK(DrainIfPending());
  std::vector<std::vector<core::KnnResultEntry>> results(locations.size());
  std::vector<util::Status> statuses(locations.size(), util::Status::OK());
  std::vector<std::future<void>> tasks;
  tasks.reserve(locations.size());
  for (size_t i = 0; i < locations.size(); ++i) {
    tasks.push_back(query_pool_->SubmitTask(
        [this, &results, &statuses, location = locations[i], k, t_now, i] {
          // gknn-check: allow(shared-block): same intentional design as
          // QueryKnn — device work under the reader lock is the protocol.
          util::lockdep::SharedLock lock(index_mutex_);
          core::KnnStats stats;
          uint64_t query_retries = 0;
          auto result = ExecuteShared(
              [&](core::ExecMode mode) {
                return index_->QueryKnn(location, k, t_now, &stats, mode);
              },
              &query_retries);
          AnnotateTrace(stats.query_id, query_retries);
          if (result.ok()) {
            results[i] = *std::move(result);
          } else {
            statuses[i] = result.status();
          }
        }));
  }
  // get() (not wait()) so an exception escaping a task — impossible for
  // the query path itself, which reports through Status — still reaches
  // the caller instead of being swallowed.
  for (std::future<void>& task : tasks) task.get();
  for (util::Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return results;
}

void QueryServer::AnnotateTrace(uint64_t query_id, uint64_t query_retries) {
  if (!obs::kEnabled) return;
  index_->tracer().Annotate(query_id, [&](obs::QueryTraceRecord& record) {
    record.retries = static_cast<uint32_t>(query_retries);
  });
}

void QueryServer::FoldServerMetricsExclusive() {
  if (!obs::kEnabled) return;
  index_->FoldDeviceMetrics();
  obs::MetricRegistry& registry = index_->metrics();
  const ServerStats snapshot = stats();
  auto set = [&](std::string_view name, double value) {
    registry.GetGauge(name)->Set(value);
  };
  set("gknn_server_gpu_failures", static_cast<double>(snapshot.gpu_failures));
  set("gknn_server_retries", static_cast<double>(snapshot.retries));
  set("gknn_server_fallback_queries",
      static_cast<double>(snapshot.fallback_queries));
  set("gknn_server_degraded_queries",
      static_cast<double>(snapshot.degraded_queries));
  set("gknn_server_breaker_trips",
      static_cast<double>(snapshot.breaker_trips));
  set("gknn_server_breaker_closes",
      static_cast<double>(snapshot.breaker_closes));
  set("gknn_server_update_requeues",
      static_cast<double>(snapshot.update_requeues));
  set("gknn_server_degraded", snapshot.degraded ? 1.0 : 0.0);
  set("gknn_server_pending_updates",
      static_cast<double>(pending_updates()));
  // Lock-discipline violations (docs/LOCKDEP.md). The lockdep layer keeps
  // one process-global count; fold the delta so the registry counter stays
  // monotone across snapshots. Zero always, unless a bug slipped past the
  // rank table.
  const uint64_t violations = util::lockdep::ViolationCount();
  obs::Counter* violation_counter =
      registry.GetCounter("gknn_lockdep_violations_total");
  if (violations > folded_lockdep_violations_) {
    violation_counter->Add(violations - folded_lockdep_violations_);
  }
  folded_lockdep_violations_ = violations;
}

obs::RegistrySnapshot QueryServer::MetricsSnapshot() {
  util::lockdep::ExclusiveLock lock(index_mutex_);
  FoldServerMetricsExclusive();
  return index_->metrics().Snapshot();
}

std::string QueryServer::MetricsPrometheus() {
  util::lockdep::ExclusiveLock lock(index_mutex_);
  FoldServerMetricsExclusive();
  return index_->metrics().RenderPrometheusText();
}

std::string QueryServer::MetricsJson() {
  util::lockdep::ExclusiveLock lock(index_mutex_);
  FoldServerMetricsExclusive();
  return index_->metrics().RenderJson();
}

uint64_t QueryServer::pending_updates() const {
  uint64_t total = 0;
  for (const Inbox& inbox : inboxes_) {
    util::lockdep::MutexLock lock(inbox.mutex);
    total += inbox.entries.size();
  }
  return total;
}

}  // namespace gknn::server
