#include "server/query_server.h"

#include <algorithm>
#include <future>
#include <string_view>
#include <utility>

#include "core/cost_model.h"
#include "gpusim/fault_injector.h"
#include "util/backoff.h"
#include "util/logging.h"
#include "util/timer.h"

namespace gknn::server {

util::Result<std::unique_ptr<QueryServer>> QueryServer::Create(
    const roadnet::Graph* graph, const core::GGridOptions& options,
    gpusim::Device* device, const ServerOptions& server_options) {
  GKNN_ASSIGN_OR_RETURN(std::unique_ptr<core::GGridIndex> index,
                        core::GGridIndex::Build(graph, options, device));
  return std::unique_ptr<QueryServer>(
      new QueryServer(std::move(index), server_options));
}

util::Result<std::unique_ptr<QueryServer>> QueryServer::Create(
    const roadnet::Graph* graph, const core::GGridOptions& options,
    gpusim::DeviceSet* devices, const ServerOptions& server_options) {
  GKNN_ASSIGN_OR_RETURN(std::unique_ptr<core::GGridIndex> index,
                        core::GGridIndex::Build(graph, options, devices));
  return std::unique_ptr<QueryServer>(
      new QueryServer(std::move(index), server_options));
}

void QueryServer::Report(core::ObjectId object, roadnet::EdgePoint position,
                         double time) {
  Inbox& inbox = InboxOf(object);
  util::lockdep::MutexLock lock(inbox.mutex);
  inbox.entries.push_back(Inbox::Entry{object, position, time, false});
}

void QueryServer::Deregister(core::ObjectId object, double time) {
  Inbox& inbox = InboxOf(object);
  util::lockdep::MutexLock lock(inbox.mutex);
  inbox.entries.push_back(Inbox::Entry{object, {}, time, true});
}

util::Status QueryServer::DrainExclusive() {
  util::Status first_error = util::Status::OK();
  for (Inbox& inbox : inboxes_) {
    std::vector<Inbox::Entry> batch;
    {
      util::lockdep::MutexLock lock(inbox.mutex);
      batch.swap(inbox.entries);
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      const Inbox::Entry& e = batch[i];
      const util::Status applied =
          e.remove ? index_->Remove(e.object, e.time)
                   : index_->Ingest(e.object, e.position, e.time);
      if (applied.ok()) continue;
      if (!gpusim::IsDeviceError(applied)) {
        // Permanent error (a position off the network): drop the poison
        // entry and keep draining — one bad producer must not wedge the
        // whole inbox. First such error is reported to the caller.
        GKNN_LOG(Warning) << "dropping bad update for object " << e.object
                          << ": " << applied.ToString();
        if (first_error.ok()) first_error = applied;
        continue;
      }
      // Transient device error: re-queue the failed entry and the rest of
      // its batch at the *front* of the stripe (per-object FIFO order is
      // preserved) and move on; the next drain retries them.
      {
        util::lockdep::MutexLock lock(inbox.mutex);
        inbox.entries.insert(inbox.entries.begin(), batch.begin() + i,
                             batch.end());
      }
      ++stats_.update_requeues;
      if (first_error.ok()) first_error = applied;
      break;
    }
  }
  return first_error;
}

util::Status QueryServer::TimedDrainExclusive() {
  if (!obs::kEnabled) return DrainExclusive();
  const obs::Clock& clock = index_->tracer().clock();
  const double start = clock.NowSeconds();
  util::Status status = DrainExclusive();
  index_->metrics()
      .GetHistogram("gknn_server_drain_seconds")
      ->Observe(clock.NowSeconds() - start);
  return status;
}

util::Status QueryServer::DrainIfPending() {
  if (pending_updates() == 0) return util::Status::OK();
  util::lockdep::ExclusiveLock lock(index_mutex_);
  return TimedDrainExclusive();
}

QueryServer::Admission QueryServer::Admit(const util::Deadline& deadline) {
  Admission out;
  if (options_.max_inflight == 0) {
    // Admission control off: no queue, no shedding; keep the inflight
    // gauge honest anyway.
    util::lockdep::MutexLock lock(admission_mu_);
    ++inflight_;
    ++stats_.admitted_queries;
    return out;
  }
  util::Timer wait_timer;
  bool waited = false;
  util::lockdep::UniqueLock lock(admission_mu_);
  while (inflight_ >= options_.max_inflight) {
    if (!waited) {
      if (admission_queued_ >= options_.max_queued) {
        // Reject-newest: the arrival is shed, everyone already waiting
        // keeps its place — FIFO fairness for the admitted backlog.
        out.status = util::Status::ResourceExhausted(
            "admission queue full (" + std::to_string(admission_queued_) +
            " waiting, " + std::to_string(inflight_) + " inflight)");
        return out;
      }
      ++admission_queued_;
      waited = true;
    }
    if (deadline.is_infinite()) {
      admission_cv_.wait(lock);
    } else {
      admission_cv_.wait_until(lock, deadline.time_point());
      if (inflight_ >= options_.max_inflight && deadline.Expired()) {
        --admission_queued_;
        out.status = util::Status::DeadlineExceeded(
            "deadline expired waiting for an execution slot");
        return out;
      }
    }
  }
  if (waited) --admission_queued_;
  ++inflight_;
  ++stats_.admitted_queries;
  // Brownout pressure signal: this query had to queue, or admission is
  // past half capacity — degrade before the queue fills and sheds.
  out.brownout =
      options_.brownout && (waited || inflight_ * 2 > options_.max_inflight);
  out.waited_seconds = waited ? wait_timer.ElapsedSeconds() : 0.0;
  return out;
}

void QueryServer::ReleaseSlot() {
  {
    util::lockdep::MutexLock lock(admission_mu_);
    --inflight_;
  }
  admission_cv_.notify_one();
}

uint32_t QueryServer::inflight_queries() const {
  util::lockdep::MutexLock lock(admission_mu_);
  return inflight_;
}

uint32_t QueryServer::admission_queue_depth() const {
  util::lockdep::MutexLock lock(admission_mu_);
  return admission_queued_;
}

double QueryServer::PredictQueryGpuSeconds(uint32_t k) const {
  const core::GGridOptions& opts = index_->options();
  const roadnet::Graph& graph = index_->grid().graph();
  core::CostModelInputs inputs;
  inputs.k = k;
  inputs.rho = opts.rho;
  inputs.delta_b = opts.delta_b;
  inputs.delta_c = opts.delta_c;
  inputs.delta_v = opts.delta_v;
  inputs.eta = opts.eta;
  inputs.num_vertices = graph.num_vertices();
  inputs.num_edges = graph.num_edges();
  inputs.num_objects = index_->object_table().size();
  return core::PredictCosts(inputs, index_->device().config())
      .total_gpu_seconds;
}

template <typename IndexFn>
util::Result<std::vector<core::KnnResultEntry>> QueryServer::ExecuteAdmitted(
    const util::Deadline& deadline, double predicted_gpu_seconds,
    IndexFn index_fn, bool external_brownout) {
  Admission admission = Admit(deadline);
  if (!admission.status.ok()) {
    if (admission.status.IsDeadlineExceeded()) {
      ++stats_.expired_queries;
    } else {
      ++stats_.shed_queries;
    }
    return admission.status;
  }
  // Slot held from here to the end of the query, error paths included.
  struct SlotGuard {
    QueryServer* server;
    ~SlotGuard() { server->ReleaseSlot(); }
  } slot_guard{this};
  if (admission_wait_hist_ != nullptr) {
    admission_wait_hist_->Observe(admission.waited_seconds);
  }

  core::QueryControl control;
  control.deadline = deadline;
  bool force_cpu = false;
  if (admission.brownout || external_brownout) {
    ++stats_.brownout_queries;
    if (predicted_gpu_seconds > 0 &&
        predicted_gpu_seconds < options_.brownout_cheap_gpu_seconds) {
      // Cheap query: the ~100 µs device round-trip dominates it; under
      // pressure answer from the host and leave the device to the
      // expensive queries.
      force_cpu = true;
    } else {
      control.rho_scale = options_.brownout_rho_scale;
    }
  }

  auto finish = [&](util::Result<std::vector<core::KnnResultEntry>> result) {
    if (!deadline.is_infinite() && deadline_slack_hist_ != nullptr) {
      deadline_slack_hist_->Observe(std::max(0.0, deadline.RemainingSeconds()));
    }
    if (!result.ok() && result.status().IsDeadlineExceeded()) {
      ++stats_.expired_queries;
    }
    return result;
  };

  util::Status drained = DrainIfPending();
  if (!drained.ok()) return finish(std::move(drained));
  // gknn-check: allow(shared-block): the reader lock is the query protocol —
  // kernels, transfers, and retry backoff run under it by design so queries
  // never block each other; writers drain via DrainIfPending first. See
  // docs/CONCURRENCY.md "reader-writer query protocol".
  util::lockdep::SharedLock lock(index_mutex_);
  core::KnnStats stats;
  uint64_t query_retries = 0;
  auto result = ExecuteShared(
      [&](core::ExecMode mode) { return index_fn(mode, &stats, &control); },
      &query_retries, deadline, force_cpu);
  AnnotateTrace(stats.query_id, query_retries);
  return finish(std::move(result));
}

template <typename RunFn>
util::Result<std::vector<core::KnnResultEntry>> QueryServer::ExecuteShared(
    RunFn run, uint64_t* query_retries, const util::Deadline& deadline,
    bool force_cpu) {
  using core::ExecMode;
  // Brownout routing decided at admission: a cheap degraded query goes
  // straight to the exact CPU path, skipping the retry/breaker machinery
  // (there is nothing to retry — no device work is attempted).
  if (force_cpu) return run(ExecMode::kCpuOnly);
  // Degraded path. The decision (count the query, pace the probe) happens
  // under breaker_mu_; the query itself runs without it so concurrent
  // readers only serialize for a counter update.
  bool degraded_now = false;
  bool probe_due = false;
  {
    util::lockdep::MutexLock lock(breaker_mu_);
    if (stats_.degraded.load(std::memory_order_relaxed)) {
      degraded_now = true;
      ++stats_.degraded_queries;
      ++degraded_query_count_;
      probe_due = options_.probe_interval > 0 &&
                  degraded_query_count_ % options_.probe_interval == 0;
    }
  }
  if (degraded_now) {
    if (probe_due) {
      // Half-open probe: try the GPU once; success closes the breaker and
      // this probe's answer is the query's answer.
      auto probe = run(ExecMode::kGpuOnly);
      if (probe.ok()) {
        util::lockdep::MutexLock lock(breaker_mu_);
        // Another probe may have closed the breaker while ours ran.
        if (stats_.degraded.load(std::memory_order_relaxed)) {
          breaker_seq_.fetch_add(1, std::memory_order_release);
          stats_.degraded.store(false, std::memory_order_relaxed);
          stats_.breaker_closes.fetch_add(1, std::memory_order_relaxed);
          breaker_seq_.fetch_add(1, std::memory_order_release);
          consecutive_query_failures_ = 0;
          GKNN_LOG(Info) << "device recovered: circuit breaker closed";
        }
        return probe;
      }
      if (!gpusim::IsDeviceError(probe.status())) return probe;
      ++stats_.gpu_failures;
    }
    ++stats_.fallback_queries;
    return run(ExecMode::kCpuOnly);
  }

  util::ExponentialBackoff backoff(options_.backoff_base_ms,
                                   options_.backoff_max_ms);
  const uint32_t attempts = std::max<uint32_t>(1, options_.gpu_attempts);
  for (uint32_t attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // A budgeted query does not sleep its remaining budget away in
      // retry backoff: once the deadline is gone, stop retrying and
      // report it (typed, not a device error — no fallback follows).
      if (deadline.Expired()) {
        return util::Status::DeadlineExceeded(
            "query budget exhausted during retry backoff");
      }
      ++stats_.retries;
      if (query_retries != nullptr) ++*query_retries;
      backoff.SleepNext();
    }
    auto result = run(ExecMode::kGpuOnly);
    if (result.ok()) {
      util::lockdep::MutexLock lock(breaker_mu_);
      consecutive_query_failures_ = 0;
      return result;
    }
    if (!gpusim::IsDeviceError(result.status())) return result;
    ++stats_.gpu_failures;
  }
  {
    util::lockdep::MutexLock lock(breaker_mu_);
    if (++consecutive_query_failures_ >= options_.breaker_threshold &&
        !stats_.degraded.load(std::memory_order_relaxed)) {
      breaker_seq_.fetch_add(1, std::memory_order_release);
      stats_.degraded.store(true, std::memory_order_relaxed);
      stats_.breaker_trips.fetch_add(1, std::memory_order_relaxed);
      breaker_seq_.fetch_add(1, std::memory_order_release);
      degraded_query_count_ = 0;
      GKNN_LOG(Warning) << "circuit breaker open after "
                        << consecutive_query_failures_
                        << " consecutive device failures; serving from CPU";
    }
  }
  ++stats_.fallback_queries;
  return run(ExecMode::kCpuOnly);
}

util::Result<std::vector<core::KnnResultEntry>> QueryServer::QueryKnn(
    roadnet::EdgePoint location, uint32_t k, double t_now) {
  return ExecuteAdmitted(
      DefaultDeadline(),
      options_.brownout ? PredictQueryGpuSeconds(k) : 0.0,
      [&](core::ExecMode mode, core::KnnStats* stats,
          const core::QueryControl* control) {
        return index_->QueryKnn(location, k, t_now, stats, mode, control);
      });
}

util::Result<std::vector<core::KnnResultEntry>> QueryServer::QueryKnnRouted(
    roadnet::EdgePoint location, uint32_t k, double t_now,
    const util::Deadline& deadline, bool brownout_pressure) {
  const bool degrade = options_.brownout || brownout_pressure;
  return ExecuteAdmitted(
      deadline, degrade ? PredictQueryGpuSeconds(k) : 0.0,
      [&](core::ExecMode mode, core::KnnStats* stats,
          const core::QueryControl* control) {
        return index_->QueryKnn(location, k, t_now, stats, mode, control);
      },
      brownout_pressure);
}

util::Result<std::vector<core::KnnResultEntry>> QueryServer::QueryRangeRouted(
    roadnet::EdgePoint location, roadnet::Distance radius, double t_now,
    const util::Deadline& deadline, bool brownout_pressure) {
  return ExecuteAdmitted(
      deadline, 0.0,
      [&](core::ExecMode mode, core::KnnStats* stats,
          const core::QueryControl* control) {
        return index_->QueryRange(location, radius, t_now, stats, mode,
                                  control);
      },
      brownout_pressure);
}

util::Result<std::vector<core::KnnResultEntry>> QueryServer::QueryRange(
    roadnet::EdgePoint location, roadnet::Distance radius, double t_now) {
  // Range queries have no k for the cost model; brownout degrades them
  // through the ring scale only.
  return ExecuteAdmitted(
      DefaultDeadline(), 0.0,
      [&](core::ExecMode mode, core::KnnStats* stats,
          const core::QueryControl* control) {
        return index_->QueryRange(location, radius, t_now, stats, mode,
                                  control);
      });
}

util::Result<std::vector<std::vector<core::KnnResultEntry>>>
QueryServer::QueryKnnBatch(std::span<const roadnet::EdgePoint> locations,
                           uint32_t k, double t_now) {
  GKNN_RETURN_NOT_OK(DrainIfPending());
  const util::Deadline deadline = DefaultDeadline();
  const double predicted =
      options_.brownout ? PredictQueryGpuSeconds(k) : 0.0;
  std::vector<std::vector<core::KnnResultEntry>> results(locations.size());
  std::vector<util::Status> statuses(locations.size(), util::Status::OK());
  std::vector<std::future<void>> tasks;
  tasks.reserve(locations.size());
  for (size_t i = 0; i < locations.size(); ++i) {
    util::ThreadPool::Submission submission;
    submission.deadline = deadline;
    // Each fan-out task is a full admitted query: admission slot, budget,
    // brownout — batch queries obey the same overload policy as single
    // ones.
    submission.run = [this, &results, &statuses, location = locations[i], k,
                      t_now, i, deadline, predicted] {
      auto result = ExecuteAdmitted(
          deadline, predicted,
          [&](core::ExecMode mode, core::KnnStats* stats,
              const core::QueryControl* control) {
            return index_->QueryKnn(location, k, t_now, stats, mode, control);
          });
      if (result.ok()) {
        results[i] = *std::move(result);
      } else {
        statuses[i] = result.status();
      }
    };
    submission.on_expired = [this, &statuses, i] {
      // The budget died while the task sat in the pool queue; the pool
      // dropped it before it took any lock.
      ++stats_.expired_queries;
      statuses[i] = util::Status::DeadlineExceeded(
          "query budget exhausted in the batch queue");
    };
    std::optional<std::future<void>> task =
        query_pool_->TrySubmitTask(std::move(submission));
    if (!task.has_value()) {
      // Bounded pool queue full (ServerOptions::max_queued): shed this
      // query, typed, without blocking the submitter.
      ++stats_.shed_queries;
      statuses[i] =
          util::Status::ResourceExhausted("batch query pool queue full");
      continue;
    }
    tasks.push_back(std::move(*task));
  }
  // get() (not wait()) so an exception escaping a task — impossible for
  // the query path itself, which reports through Status — still reaches
  // the caller instead of being swallowed.
  for (std::future<void>& task : tasks) task.get();
  for (util::Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return results;
}

void QueryServer::AnnotateTrace(uint64_t query_id, uint64_t query_retries) {
  if (!obs::kEnabled) return;
  index_->tracer().Annotate(query_id, [&](obs::QueryTraceRecord& record) {
    record.retries = static_cast<uint32_t>(query_retries);
  });
}

void QueryServer::FoldServerMetricsExclusive() {
  if (!obs::kEnabled) return;
  index_->FoldDeviceMetrics();
  obs::MetricRegistry& registry = index_->metrics();
  const ServerStats snapshot = stats();
  auto set = [&](std::string_view name, double value) {
    registry.GetGauge(name)->Set(value);
  };
  set("gknn_server_gpu_failures", static_cast<double>(snapshot.gpu_failures));
  set("gknn_server_retries", static_cast<double>(snapshot.retries));
  set("gknn_server_fallback_queries",
      static_cast<double>(snapshot.fallback_queries));
  set("gknn_server_degraded_queries",
      static_cast<double>(snapshot.degraded_queries));
  set("gknn_server_breaker_trips",
      static_cast<double>(snapshot.breaker_trips));
  set("gknn_server_breaker_closes",
      static_cast<double>(snapshot.breaker_closes));
  set("gknn_server_update_requeues",
      static_cast<double>(snapshot.update_requeues));
  set("gknn_server_degraded", snapshot.degraded ? 1.0 : 0.0);
  set("gknn_server_pending_updates",
      static_cast<double>(pending_updates()));
  // Overload control (docs/ROBUSTNESS.md "Overload control").
  set("gknn_server_admitted_queries",
      static_cast<double>(snapshot.admitted_queries));
  set("gknn_server_shed_queries", static_cast<double>(snapshot.shed_queries));
  set("gknn_server_expired_queries",
      static_cast<double>(snapshot.expired_queries));
  set("gknn_server_brownout_queries",
      static_cast<double>(snapshot.brownout_queries));
  set("gknn_server_inflight_queries",
      static_cast<double>(inflight_queries()));
  set("gknn_server_admission_queue_depth",
      static_cast<double>(admission_queue_depth()));
  set("gknn_server_pool_expired_tasks",
      static_cast<double>(query_pool_->expired_tasks()));
  // Lock-discipline violations (docs/LOCKDEP.md). The lockdep layer keeps
  // one process-global count; fold the delta so the registry counter stays
  // monotone across snapshots. Zero always, unless a bug slipped past the
  // rank table.
  const uint64_t violations = util::lockdep::ViolationCount();
  obs::Counter* violation_counter =
      registry.GetCounter("gknn_lockdep_violations_total");
  if (violations > folded_lockdep_violations_) {
    violation_counter->Add(violations - folded_lockdep_violations_);
  }
  folded_lockdep_violations_ = violations;
}

obs::RegistrySnapshot QueryServer::MetricsSnapshot() {
  util::lockdep::ExclusiveLock lock(index_mutex_);
  FoldServerMetricsExclusive();
  return index_->metrics().Snapshot();
}

std::string QueryServer::MetricsPrometheus() {
  util::lockdep::ExclusiveLock lock(index_mutex_);
  FoldServerMetricsExclusive();
  return index_->metrics().RenderPrometheusText();
}

std::string QueryServer::MetricsJson() {
  util::lockdep::ExclusiveLock lock(index_mutex_);
  FoldServerMetricsExclusive();
  return index_->metrics().RenderJson();
}

uint64_t QueryServer::pending_updates() const {
  uint64_t total = 0;
  for (const Inbox& inbox : inboxes_) {
    util::lockdep::MutexLock lock(inbox.mutex);
    total += inbox.entries.size();
  }
  return total;
}

}  // namespace gknn::server
