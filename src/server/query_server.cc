#include "server/query_server.h"

#include <algorithm>

namespace gknn::server {

util::Result<std::unique_ptr<QueryServer>> QueryServer::Create(
    const roadnet::Graph* graph, const core::GGridOptions& options,
    gpusim::Device* device, util::ThreadPool* pool) {
  GKNN_ASSIGN_OR_RETURN(std::unique_ptr<core::GGridIndex> index,
                        core::GGridIndex::Build(graph, options, device, pool));
  return std::unique_ptr<QueryServer>(new QueryServer(std::move(index)));
}

void QueryServer::Report(core::ObjectId object, roadnet::EdgePoint position,
                         double time) {
  Inbox& inbox = InboxOf(object);
  std::lock_guard<std::mutex> lock(inbox.mutex);
  inbox.entries.push_back(Inbox::Entry{object, position, time, false});
}

void QueryServer::Deregister(core::ObjectId object, double time) {
  Inbox& inbox = InboxOf(object);
  std::lock_guard<std::mutex> lock(inbox.mutex);
  inbox.entries.push_back(Inbox::Entry{object, {}, time, true});
}

void QueryServer::DrainLocked() {
  for (Inbox& inbox : inboxes_) {
    std::vector<Inbox::Entry> batch;
    {
      std::lock_guard<std::mutex> lock(inbox.mutex);
      batch.swap(inbox.entries);
    }
    for (const Inbox::Entry& e : batch) {
      if (e.remove) {
        index_->Remove(e.object, e.time);
      } else {
        index_->Ingest(e.object, e.position, e.time);
      }
    }
  }
}

util::Result<std::vector<core::KnnResultEntry>> QueryServer::QueryKnn(
    roadnet::EdgePoint location, uint32_t k, double t_now) {
  std::lock_guard<std::mutex> lock(index_mutex_);
  DrainLocked();
  return index_->QueryKnn(location, k, t_now);
}

util::Result<std::vector<core::KnnResultEntry>> QueryServer::QueryRange(
    roadnet::EdgePoint location, roadnet::Distance radius, double t_now) {
  std::lock_guard<std::mutex> lock(index_mutex_);
  DrainLocked();
  return index_->QueryRange(location, radius, t_now);
}

uint64_t QueryServer::pending_updates() const {
  uint64_t total = 0;
  for (const Inbox& inbox : inboxes_) {
    std::lock_guard<std::mutex> lock(inbox.mutex);
    total += inbox.entries.size();
  }
  return total;
}

}  // namespace gknn::server
