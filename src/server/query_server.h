#ifndef GKNN_SERVER_QUERY_SERVER_H_
#define GKNN_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "core/ggrid_index.h"
#include "gpusim/device.h"
#include "roadnet/graph.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace gknn::server {

/// Thread-safe front end over a GGridIndex — the paper's "query server"
/// (§II): data objects report location updates from many connections while
/// kNN queries arrive concurrently.
///
/// Concurrency model: producers call Report/Deregister from any thread;
/// updates land in a striped in-memory inbox (cheap, lock per stripe —
/// the message-list append itself is so cheap that G-Grid's laziness makes
/// a single writer sufficient). Queries drain the inbox up to their
/// timestamp and then run on the underlying index, serialized by the index
/// mutex, exactly preserving snapshot semantics: a query at time t sees
/// every update reported before it.
class QueryServer {
 public:
  /// Builds the server and its index. The graph must outlive the server.
  static util::Result<std::unique_ptr<QueryServer>> Create(
      const roadnet::Graph* graph, const core::GGridOptions& options,
      gpusim::Device* device, util::ThreadPool* pool);

  /// Reports an object location (producer-side, thread-safe, non-blocking
  /// beyond a stripe lock).
  void Report(core::ObjectId object, roadnet::EdgePoint position,
              double time);

  /// Deregisters an object (thread-safe).
  void Deregister(core::ObjectId object, double time);

  /// Answers a snapshot kNN query at time t_now: drains every buffered
  /// update, then queries the index. Thread-safe; queries serialize.
  util::Result<std::vector<core::KnnResultEntry>> QueryKnn(
      roadnet::EdgePoint location, uint32_t k, double t_now);

  /// Range variant: every object within network distance `radius`.
  /// Thread-safe like QueryKnn.
  util::Result<std::vector<core::KnnResultEntry>> QueryRange(
      roadnet::EdgePoint location, roadnet::Distance radius, double t_now);

  /// Buffered updates not yet applied to the index.
  uint64_t pending_updates() const;

  /// Updates applied to the index so far.
  uint64_t applied_updates() const {
    std::lock_guard<std::mutex> lock(index_mutex_);
    return index_->counters().updates_ingested;
  }

  core::GGridIndex& index() { return *index_; }

 private:
  struct Inbox {
    struct Entry {
      core::ObjectId object;
      roadnet::EdgePoint position;
      double time;
      bool remove;
    };
    mutable std::mutex mutex;
    std::vector<Entry> entries;
  };

  explicit QueryServer(std::unique_ptr<core::GGridIndex> index)
      : index_(std::move(index)) {}

  /// Moves every buffered update into the index (called under
  /// index_mutex_).
  void DrainLocked();

  static constexpr size_t kStripes = 8;

  /// Updates of one object always land in the same stripe and each stripe
  /// drains in FIFO order, so per-object update order is preserved — the
  /// property the tombstone protocol of Algorithm 1 depends on.
  Inbox& InboxOf(core::ObjectId object) {
    return inboxes_[object % kStripes];
  }

  std::unique_ptr<core::GGridIndex> index_;
  mutable std::mutex index_mutex_;
  Inbox inboxes_[kStripes];
};

}  // namespace gknn::server

#endif  // GKNN_SERVER_QUERY_SERVER_H_
