#ifndef GKNN_SERVER_QUERY_SERVER_H_
#define GKNN_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/ggrid_index.h"
#include "gpusim/device.h"
#include "obs/metrics.h"
#include "roadnet/graph.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace gknn::server {

/// Degradation policy knobs (docs/ROBUSTNESS.md).
struct ServerOptions {
  /// GPU attempts per query while the circuit breaker is closed (1 = no
  /// retry). Retries back off exponentially between attempts.
  uint32_t gpu_attempts = 3;
  double backoff_base_ms = 0.1;
  double backoff_max_ms = 5.0;
  /// Consecutive fully-failed queries (all GPU attempts exhausted) that
  /// trip the breaker into degraded CPU mode.
  uint32_t breaker_threshold = 3;
  /// While degraded, every Nth query additionally probes the GPU path; a
  /// successful probe closes the breaker.
  uint32_t probe_interval = 4;
};

/// Degradation counters; snapshot via QueryServer::stats().
struct ServerStats {
  uint64_t gpu_failures = 0;      // GPU query attempts that returned an error
  uint64_t retries = 0;           // extra attempts after a failed one
  uint64_t fallback_queries = 0;  // queries answered by the CPU path
  uint64_t degraded_queries = 0;  // queries served while the breaker was open
  uint64_t breaker_trips = 0;
  uint64_t breaker_closes = 0;
  uint64_t update_requeues = 0;   // drain batches re-queued on device errors
  bool degraded = false;          // breaker currently open
};

/// Thread-safe front end over a GGridIndex — the paper's "query server"
/// (§II): data objects report location updates from many connections while
/// kNN queries arrive concurrently.
///
/// Concurrency model: producers call Report/Deregister from any thread;
/// updates land in a striped in-memory inbox (cheap, lock per stripe —
/// the message-list append itself is so cheap that G-Grid's laziness makes
/// a single writer sufficient). Queries drain the inbox up to their
/// timestamp and then run on the underlying index, serialized by the index
/// mutex, exactly preserving snapshot semantics: a query at time t sees
/// every update reported before it.
///
/// Robustness: a query first runs on the GPU pipeline with bounded
/// retries; when `breaker_threshold` consecutive queries exhaust their
/// attempts the server trips into degraded mode and answers from the exact
/// CPU path, probing the GPU every `probe_interval` queries until it
/// recovers. Results are identical either way — only latency degrades.
class QueryServer {
 public:
  /// Builds the server and its index. The graph must outlive the server.
  static util::Result<std::unique_ptr<QueryServer>> Create(
      const roadnet::Graph* graph, const core::GGridOptions& options,
      gpusim::Device* device, util::ThreadPool* pool,
      const ServerOptions& server_options = ServerOptions{});

  /// Reports an object location (producer-side, thread-safe, non-blocking
  /// beyond a stripe lock).
  void Report(core::ObjectId object, roadnet::EdgePoint position,
              double time);

  /// Deregisters an object (thread-safe).
  void Deregister(core::ObjectId object, double time);

  /// Answers a snapshot kNN query at time t_now: drains every buffered
  /// update, then queries the index. Thread-safe; queries serialize.
  util::Result<std::vector<core::KnnResultEntry>> QueryKnn(
      roadnet::EdgePoint location, uint32_t k, double t_now);

  /// Range variant: every object within network distance `radius`.
  /// Thread-safe like QueryKnn.
  util::Result<std::vector<core::KnnResultEntry>> QueryRange(
      roadnet::EdgePoint location, roadnet::Distance radius, double t_now);

  /// Buffered updates not yet applied to the index.
  uint64_t pending_updates() const;

  /// Updates applied to the index so far.
  uint64_t applied_updates() const {
    std::lock_guard<std::mutex> lock(index_mutex_);
    return index_->counters().updates_ingested;
  }

  /// Snapshot of the degradation counters. Lock-free: the counters are
  /// atomics mutated on the query path, so monitoring threads polling this
  /// never contend with queries for the index mutex.
  ServerStats stats() const {
    ServerStats out;
    out.gpu_failures = stats_.gpu_failures.load(std::memory_order_relaxed);
    out.retries = stats_.retries.load(std::memory_order_relaxed);
    out.fallback_queries =
        stats_.fallback_queries.load(std::memory_order_relaxed);
    out.degraded_queries =
        stats_.degraded_queries.load(std::memory_order_relaxed);
    out.breaker_trips = stats_.breaker_trips.load(std::memory_order_relaxed);
    out.breaker_closes =
        stats_.breaker_closes.load(std::memory_order_relaxed);
    out.update_requeues =
        stats_.update_requeues.load(std::memory_order_relaxed);
    out.degraded = stats_.degraded.load(std::memory_order_relaxed);
    return out;
  }

  /// Point-in-time view of every metric the server can expose: folds the
  /// device totals, transfer ledger, memory breakdown and the degradation
  /// counters above into the index's registry, then snapshots it.
  /// Thread-safe (takes the index mutex for the fold).
  obs::RegistrySnapshot MetricsSnapshot();

  /// The same fold rendered as Prometheus text / one-line JSON
  /// (gknn_cli --metrics; docs/OBSERVABILITY.md).
  std::string MetricsPrometheus();
  std::string MetricsJson();

  core::GGridIndex& index() { return *index_; }

 private:
  struct Inbox {
    struct Entry {
      core::ObjectId object;
      roadnet::EdgePoint position;
      double time;
      bool remove;
    };
    mutable std::mutex mutex;
    std::vector<Entry> entries;
  };

  QueryServer(std::unique_ptr<core::GGridIndex> index,
              const ServerOptions& options)
      : index_(std::move(index)), options_(options) {}

  /// Moves every buffered update into the index (called under
  /// index_mutex_). A transient device error re-queues the unapplied
  /// remainder of the stripe at its front (order preserved) and keeps
  /// draining the other stripes; a permanent error (bad position) drops
  /// the poison entry, keeps draining, and is returned — a bad producer
  /// must not wedge the inbox.
  util::Status DrainLocked();

  /// One query through the retry + circuit-breaker policy (called under
  /// index_mutex_). `run` executes the query at a given ExecMode.
  template <typename RunFn>
  util::Result<std::vector<core::KnnResultEntry>> ExecuteLocked(RunFn run);

  /// DrainLocked wrapped in a gknn_server_drain_seconds observation.
  util::Status TimedDrainLocked();

  /// Stamps server-side context (retry count) onto the query's trace
  /// record, which the engine just pushed into the tracer's ring.
  void AnnotateLastTraceLocked(uint64_t retries_before);

  static constexpr size_t kStripes = 8;

  /// Updates of one object always land in the same stripe and each stripe
  /// drains in FIFO order, so per-object update order is preserved — the
  /// property the tombstone protocol of Algorithm 1 depends on.
  Inbox& InboxOf(core::ObjectId object) {
    return inboxes_[object % kStripes];
  }

  /// Mirror of ServerStats with atomic members. Writers run under
  /// index_mutex_ (the query path), so plain relaxed increments are safe;
  /// readers (stats(), monitoring threads) load without the mutex.
  struct AtomicServerStats {
    std::atomic<uint64_t> gpu_failures{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> fallback_queries{0};
    std::atomic<uint64_t> degraded_queries{0};
    std::atomic<uint64_t> breaker_trips{0};
    std::atomic<uint64_t> breaker_closes{0};
    std::atomic<uint64_t> update_requeues{0};
    std::atomic<bool> degraded{false};
  };

  /// Pushes the degradation counters into the index's registry as gauges
  /// (called by MetricsSnapshot and the renderers, under index_mutex_).
  void FoldServerMetricsLocked();

  std::unique_ptr<core::GGridIndex> index_;
  ServerOptions options_;
  mutable std::mutex index_mutex_;
  Inbox inboxes_[kStripes];

  // Breaker state. The atomic counters may be read lock-free; the breaker
  // bookkeeping below them is guarded by index_mutex_.
  AtomicServerStats stats_;
  uint32_t consecutive_query_failures_ = 0;
  uint64_t degraded_query_count_ = 0;  // probes pace off this
};

}  // namespace gknn::server

#endif  // GKNN_SERVER_QUERY_SERVER_H_
