#ifndef GKNN_SERVER_QUERY_SERVER_H_
#define GKNN_SERVER_QUERY_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/ggrid_index.h"
#include "gpusim/device.h"
#include "obs/metrics.h"
#include "roadnet/graph.h"
#include "util/deadline.h"
#include "util/lockdep.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace gknn::server {

/// Degradation policy knobs (docs/ROBUSTNESS.md) and concurrency sizing
/// (docs/CONCURRENCY.md).
struct ServerOptions {
  /// GPU attempts per query while the circuit breaker is closed (1 = no
  /// retry). Retries back off exponentially between attempts.
  uint32_t gpu_attempts = 3;
  double backoff_base_ms = 0.1;
  double backoff_max_ms = 5.0;
  /// Consecutive fully-failed queries (all GPU attempts exhausted) that
  /// trip the breaker into degraded CPU mode.
  uint32_t breaker_threshold = 3;
  /// While degraded, every Nth query additionally probes the GPU path; a
  /// successful probe closes the breaker.
  uint32_t probe_interval = 4;
  /// Worker threads of the server-owned pool that fans out
  /// QueryKnnBatch. 0 (the default) runs batches inline on the calling
  /// thread — the right choice for single-threaded clients and for
  /// deterministic tests. Single queries never touch the pool.
  uint32_t query_threads = 0;

  // ---- Overload control (docs/ROBUSTNESS.md "Overload control") ----

  /// Per-query latency budget in milliseconds; 0 (the default) means
  /// unlimited. A budgeted query either completes in time or returns
  /// Status::DeadlineExceeded — while waiting for an admission slot,
  /// while queued in the batch pool, or at the engine's phase-boundary
  /// cancellation checkpoints.
  double default_deadline_ms = 0;
  /// Queries executing concurrently before new arrivals queue for a
  /// slot; 0 (the default) disables admission control entirely.
  uint32_t max_inflight = 0;
  /// Arrivals allowed to wait for a slot once max_inflight is reached
  /// (the admission queue). Beyond it the server sheds reject-newest
  /// with Status::ResourceExhausted. 0 means no waiting room: anything
  /// over max_inflight is shed immediately. Ignored when max_inflight
  /// is 0. Also bounds the batch pool's task queue.
  uint32_t max_queued = 0;
  /// Brownout: under admission pressure (a query had to queue, or more
  /// than half the inflight slots are busy), degrade admitted queries
  /// before shedding arrivals — cheap queries (predicted device time
  /// under brownout_cheap_gpu_seconds via the §VI cost model) skip the
  /// GPU round-trip and run kCpuOnly; expensive ones shrink their
  /// candidate ring by brownout_rho_scale. Answers stay exact either
  /// way (docs/ROBUSTNESS.md); only latency/throughput trade off.
  bool brownout = false;
  double brownout_cheap_gpu_seconds = 100e-6;
  double brownout_rho_scale = 0.5;
};

/// Degradation counters; snapshot via QueryServer::stats().
///
/// Consistency contract under concurrent queries: the monotonic counters
/// (gpu_failures, retries, fallback_queries, degraded_queries,
/// update_requeues) are independent relaxed atomics — each is exact, but
/// one snapshot may catch them mid-query relative to each other. The
/// breaker triple (breaker_trips, breaker_closes, degraded) is published
/// through a seqlock, so within one snapshot it is mutually consistent
/// and satisfies `degraded == (breaker_trips > breaker_closes)`.
struct ServerStats {
  uint64_t gpu_failures = 0;      // GPU query attempts that returned an error
  uint64_t retries = 0;           // extra attempts after a failed one
  uint64_t fallback_queries = 0;  // queries answered by the CPU path
  uint64_t degraded_queries = 0;  // queries served while the breaker was open
  uint64_t breaker_trips = 0;
  uint64_t breaker_closes = 0;
  uint64_t update_requeues = 0;   // drain batches re-queued on device errors
  bool degraded = false;          // breaker currently open
  // Overload-control accounting (docs/ROBUSTNESS.md). Every query the
  // server accepts ends in exactly one bucket: admitted (and then OK or
  // its own error), shed (ResourceExhausted before getting a slot), or
  // expired (DeadlineExceeded — waiting, queued, or mid-execution).
  uint64_t admitted_queries = 0;  // granted an execution slot
  uint64_t shed_queries = 0;      // rejected: admission queue full
  uint64_t expired_queries = 0;   // returned DeadlineExceeded
  uint64_t brownout_queries = 0;  // admitted but executed degraded
};

/// Thread-safe front end over a GGridIndex — the paper's "query server"
/// (§II): data objects report location updates from many connections while
/// kNN queries arrive concurrently.
///
/// Concurrency model (docs/CONCURRENCY.md): producers call
/// Report/Deregister from any thread; updates land in a striped in-memory
/// inbox (lock per stripe). Queries run under a reader-writer lock on the
/// index: a query that finds buffered updates first takes the writer side,
/// drains the inbox, releases, and then answers under the reader side —
/// so any number of queries execute concurrently and only update
/// application is exclusive. Snapshot semantics are preserved: a query at
/// time t sees every update reported before it was issued. The lazy
/// message cleaning queries perform is serialized per cell inside
/// MessageCleaner, which is why the reader side is sufficient for them.
///
/// Robustness: a query first runs on the GPU pipeline with bounded
/// retries; when `breaker_threshold` consecutive queries exhaust their
/// attempts the server trips into degraded mode and answers from the exact
/// CPU path, probing the GPU every `probe_interval` queries until it
/// recovers. Results are identical either way — only latency degrades.
/// Breaker bookkeeping lives under its own leaf mutex so concurrent
/// readers never serialize on it for longer than a counter update.
class QueryServer {
 public:
  /// Builds the server, its index, and its batch-query pool
  /// (ServerOptions::query_threads). The graph must outlive the server.
  static util::Result<std::unique_ptr<QueryServer>> Create(
      const roadnet::Graph* graph, const core::GGridOptions& options,
      gpusim::Device* device,
      const ServerOptions& server_options = ServerOptions{});

  /// Multi-device form: the index schedules clean/query phase work across
  /// every device of the set (see GGridIndex::Build). The set must outlive
  /// the server.
  static util::Result<std::unique_ptr<QueryServer>> Create(
      const roadnet::Graph* graph, const core::GGridOptions& options,
      gpusim::DeviceSet* devices,
      const ServerOptions& server_options = ServerOptions{});

  /// Reports an object location (producer-side, thread-safe, non-blocking
  /// beyond a stripe lock).
  void Report(core::ObjectId object, roadnet::EdgePoint position,
              double time);

  /// Deregisters an object (thread-safe).
  void Deregister(core::ObjectId object, double time);

  /// Answers a snapshot kNN query at time t_now: drains every buffered
  /// update (writer lock, skipped when the inbox is empty), then queries
  /// the index under the reader lock. Thread-safe; queries from different
  /// threads execute concurrently.
  util::Result<std::vector<core::KnnResultEntry>> QueryKnn(
      roadnet::EdgePoint location, uint32_t k, double t_now);

  /// Range variant: every object within network distance `radius`.
  /// Thread-safe like QueryKnn.
  util::Result<std::vector<core::KnnResultEntry>> QueryRange(
      roadnet::EdgePoint location, roadnet::Distance radius, double t_now);

  /// Router entry point (src/server/shard_router.h): one kNN query run
  /// through the full admitted path — drain-if-pending, retry/breaker,
  /// CPU fallback — but budgeted by the *caller's* deadline instead of
  /// this server's default, and degraded when the caller already observed
  /// overload pressure (`brownout_pressure`, OR-ed with this server's own
  /// admission signal). The ShardRouter uses it to apply one router-level
  /// deadline and brownout decision across every shard a query touches.
  util::Result<std::vector<core::KnnResultEntry>> QueryKnnRouted(
      roadnet::EdgePoint location, uint32_t k, double t_now,
      const util::Deadline& deadline, bool brownout_pressure);

  /// Range variant of QueryKnnRouted. The ShardRouter's cross-border
  /// refinement uses it with radius = the merged kth distance: a bounded
  /// range probe of a border shard costs the ring it touches, not the
  /// full-k expansion a sparse remote region would force on QueryKnn.
  util::Result<std::vector<core::KnnResultEntry>> QueryRangeRouted(
      roadnet::EdgePoint location, roadnet::Distance radius, double t_now,
      const util::Deadline& deadline, bool brownout_pressure);

  /// Answers a batch of same-timestamp queries, draining the inbox once
  /// and fanning the queries over the server's pool (inline when
  /// query_threads == 0). results[i] answers locations[i]. The first
  /// per-query error fails the whole batch (matching
  /// GGridIndex::QueryKnnBatch); answers are identical to issuing the
  /// queries one by one.
  util::Result<std::vector<std::vector<core::KnnResultEntry>>> QueryKnnBatch(
      std::span<const roadnet::EdgePoint> locations, uint32_t k,
      double t_now);

  /// Buffered updates not yet applied to the index.
  uint64_t pending_updates() const;

  /// Updates applied to the index so far. Lock-free (atomic counter).
  uint64_t applied_updates() const {
    return index_->counters().updates_ingested.load(
        std::memory_order_relaxed);
  }

  /// Worker threads of the batch-query pool (0 = inline execution).
  unsigned query_threads() const { return query_pool_->num_threads(); }

  /// Queries currently holding an execution slot. Tracked even with
  /// admission control off (max_inflight == 0) so the gauge is always
  /// meaningful.
  uint32_t inflight_queries() const;

  /// Arrivals currently waiting for an execution slot.
  uint32_t admission_queue_depth() const;

  /// Snapshot of the degradation counters. Lock-free: monitoring threads
  /// polling this never contend with queries for the index lock. See
  /// ServerStats for the consistency contract; the breaker triple is read
  /// through the seqlock so it never tears.
  ServerStats stats() const {
    ServerStats out;
    out.gpu_failures = stats_.gpu_failures.load(std::memory_order_relaxed);
    out.retries = stats_.retries.load(std::memory_order_relaxed);
    out.fallback_queries =
        stats_.fallback_queries.load(std::memory_order_relaxed);
    out.degraded_queries =
        stats_.degraded_queries.load(std::memory_order_relaxed);
    out.update_requeues =
        stats_.update_requeues.load(std::memory_order_relaxed);
    out.admitted_queries =
        stats_.admitted_queries.load(std::memory_order_relaxed);
    out.shed_queries = stats_.shed_queries.load(std::memory_order_relaxed);
    out.expired_queries =
        stats_.expired_queries.load(std::memory_order_relaxed);
    out.brownout_queries =
        stats_.brownout_queries.load(std::memory_order_relaxed);
    // Seqlock read of the breaker triple: retry while a writer is inside
    // the odd window or published a new version between our loads.
    uint64_t seq = breaker_seq_.load(std::memory_order_acquire);
    for (;;) {
      if ((seq & 1) == 0) {
        out.breaker_trips =
            stats_.breaker_trips.load(std::memory_order_relaxed);
        out.breaker_closes =
            stats_.breaker_closes.load(std::memory_order_relaxed);
        out.degraded = stats_.degraded.load(std::memory_order_relaxed);
        const uint64_t reread =
            breaker_seq_.load(std::memory_order_acquire);
        if (reread == seq) break;
        seq = reread;
      } else {
        seq = breaker_seq_.load(std::memory_order_acquire);
      }
    }
    return out;
  }

  /// Point-in-time view of every metric the server can expose: folds the
  /// device totals, transfer ledger, memory breakdown and the degradation
  /// counters above into the index's registry, then snapshots it.
  /// Thread-safe: takes the writer lock, so in-flight queries finish
  /// first and the snapshot is mutually consistent.
  obs::RegistrySnapshot MetricsSnapshot();

  /// The same fold rendered as Prometheus text / one-line JSON
  /// (gknn_cli --metrics; docs/OBSERVABILITY.md).
  std::string MetricsPrometheus();
  std::string MetricsJson();

  core::GGridIndex& index() { return *index_; }

 private:
  struct Inbox {
    struct Entry {
      core::ObjectId object;
      roadnet::EdgePoint position;
      double time;
      bool remove;
    };
    mutable util::lockdep::Mutex mutex{util::lockdep::kServerInboxClass};
    std::vector<Entry> entries;
  };

  QueryServer(std::unique_ptr<core::GGridIndex> index,
              const ServerOptions& options)
      : index_(std::move(index)),
        options_(options),
        query_pool_(options.query_threads == 0
                        ? std::make_unique<util::ThreadPool>(
                              util::ThreadPool::Inline{})
                        : std::make_unique<util::ThreadPool>(
                              options.query_threads, options.max_queued)) {
    if (obs::kEnabled) {
      // Resolve the hot-path histogram handles once: Observe is
      // atomics-only, so the query path never takes the registry mutex.
      obs::MetricRegistry& registry = index_->metrics();
      admission_wait_hist_ =
          registry.GetHistogram("gknn_server_admission_wait_seconds");
      deadline_slack_hist_ =
          registry.GetHistogram("gknn_server_deadline_slack_seconds");
    }
  }

  /// Moves every buffered update into the index; requires the writer lock
  /// on index_mutex_. A transient device error re-queues the unapplied
  /// remainder of the stripe at its front (order preserved) and keeps
  /// draining the other stripes; a permanent error (bad position) drops
  /// the poison entry, keeps draining, and is returned — a bad producer
  /// must not wedge the inbox.
  util::Status DrainExclusive();

  /// DrainExclusive wrapped in a gknn_server_drain_seconds observation.
  util::Status TimedDrainExclusive();

  /// Takes the writer lock and drains iff the inbox holds updates; the
  /// common case (nothing buffered) never touches index_mutex_, so a
  /// stream of queries against a quiet inbox stays fully concurrent.
  util::Status DrainIfPending();

  /// One query through the retry + circuit-breaker policy; requires the
  /// reader lock on index_mutex_. `run` executes the query at a given
  /// ExecMode; it may run several times (retries, probe, CPU fallback).
  /// `query_retries` (optional) receives this query's own retry count —
  /// the global stats_.retries counter is shared across concurrent
  /// queries and cannot attribute retries to one of them.
  template <typename RunFn>
  util::Result<std::vector<core::KnnResultEntry>> ExecuteShared(
      RunFn run, uint64_t* query_retries = nullptr,
      const util::Deadline& deadline = util::Deadline(),
      bool force_cpu = false);

  /// Outcome of one admission decision (docs/ROBUSTNESS.md "Overload
  /// control").
  struct Admission {
    util::Status status = util::Status::OK();  // OK = slot granted
    bool brownout = false;    // degrade this query (pressure observed)
    double waited_seconds = 0;  // time spent queued for the slot
  };

  /// Takes (or waits for) an execution slot. With max_inflight == 0 this
  /// only bumps the inflight gauge. Returns ResourceExhausted when the
  /// admission queue is full (reject-newest shedding) and
  /// DeadlineExceeded when the budget ran out while waiting. A granted
  /// slot must be returned via ReleaseSlot().
  Admission Admit(const util::Deadline& deadline);
  void ReleaseSlot();

  /// The per-query budget from ServerOptions::default_deadline_ms.
  util::Deadline DefaultDeadline() const {
    return options_.default_deadline_ms > 0
               ? util::Deadline::AfterSeconds(options_.default_deadline_ms *
                                              1e-3)
               : util::Deadline();
  }

  /// §VI cost-model estimate of one query's device seconds, used by the
  /// brownout policy to route cheap queries to the CPU path.
  double PredictQueryGpuSeconds(uint32_t k) const;

  /// The full admitted single-query path: admission, deadline budget,
  /// brownout degradation, drain-if-pending, then ExecuteShared under the
  /// reader lock. `index_fn(mode, stats, control)` runs one query against
  /// the index. Centralizes the shed/expired/brownout accounting.
  /// `external_brownout` is pressure observed by a caller above this
  /// server (the ShardRouter's admission gate); it forces the brownout
  /// degradation even when this server's own admission saw none.
  template <typename IndexFn>
  util::Result<std::vector<core::KnnResultEntry>> ExecuteAdmitted(
      const util::Deadline& deadline, double predicted_gpu_seconds,
      IndexFn index_fn, bool external_brownout = false);

  /// Stamps server-side context (this query's retry count) onto the trace
  /// record the engine pushed for query `query_id`. Concurrent-safe: the
  /// record is found by id, not by ring position.
  void AnnotateTrace(uint64_t query_id, uint64_t query_retries);

  static constexpr size_t kStripes = 8;

  /// Updates of one object always land in the same stripe and each stripe
  /// drains in FIFO order, so per-object update order is preserved — the
  /// property the tombstone protocol of Algorithm 1 depends on.
  Inbox& InboxOf(core::ObjectId object) {
    return inboxes_[object % kStripes];
  }

  /// Mirror of ServerStats with atomic members, so queries running
  /// concurrently under the reader lock can bump them and monitoring
  /// threads can read them without any lock. The breaker triple
  /// (breaker_trips / breaker_closes / degraded) is additionally
  /// published through breaker_seq_ (writers hold breaker_mu_).
  struct AtomicServerStats {
    std::atomic<uint64_t> gpu_failures{0};
    std::atomic<uint64_t> retries{0};
    std::atomic<uint64_t> fallback_queries{0};
    std::atomic<uint64_t> degraded_queries{0};
    std::atomic<uint64_t> breaker_trips{0};
    std::atomic<uint64_t> breaker_closes{0};
    std::atomic<uint64_t> update_requeues{0};
    std::atomic<bool> degraded{false};
    std::atomic<uint64_t> admitted_queries{0};
    std::atomic<uint64_t> shed_queries{0};
    std::atomic<uint64_t> expired_queries{0};
    std::atomic<uint64_t> brownout_queries{0};
  };

  /// Pushes the degradation counters into the index's registry as gauges
  /// (called by MetricsSnapshot and the renderers, under the writer
  /// lock).
  void FoldServerMetricsExclusive();

  std::unique_ptr<core::GGridIndex> index_;
  ServerOptions options_;

  /// Reader-writer lock over the index: queries hold it shared, update
  /// drains / metric folds hold it exclusive. Lock ordering
  /// (docs/CONCURRENCY.md): index_mutex_ -> inbox stripe mutexes ->
  /// cleaner stripe mutexes -> cleaner device mutex; breaker_mu_ and the
  /// tracer ring mutex are leaves. The ordering is enforced at runtime by
  /// the lockdep classes (docs/LOCKDEP.md).
  mutable util::lockdep::SharedMutex index_mutex_{
      util::lockdep::kServerIndexClass};
  Inbox inboxes_[kStripes];
  std::unique_ptr<util::ThreadPool> query_pool_;

  AtomicServerStats stats_;

  /// Breaker bookkeeping: state transitions and the failure/probe
  /// counters are serialized by breaker_mu_ (a leaf — never acquire
  /// another lock under it); breaker_seq_ is the seqlock generation for
  /// the published triple (odd while a transition is being written).
  util::lockdep::Mutex breaker_mu_{util::lockdep::kServerBreakerClass};
  std::atomic<uint64_t> breaker_seq_{0};
  uint32_t consecutive_query_failures_ = 0;  // guarded by breaker_mu_
  uint64_t degraded_query_count_ = 0;        // guarded by breaker_mu_

  /// Admission bookkeeping (docs/CONCURRENCY.md rank 902, a leaf: the
  /// slot counters are the only thing touched under it, and the condvar
  /// wait releases it, so a blocked admitter holds nothing).
  mutable util::lockdep::Mutex admission_mu_{
      util::lockdep::kServerAdmissionClass};
  std::condition_variable_any admission_cv_;
  uint32_t inflight_ = 0;          // guarded by admission_mu_
  uint32_t admission_queued_ = 0;  // guarded by admission_mu_

  /// Pre-resolved overload-metric handles (null when GKNN_OBS=0); see the
  /// constructor.
  obs::Histogram* admission_wait_hist_ = nullptr;
  obs::Histogram* deadline_slack_hist_ = nullptr;

  /// Lockdep violations already folded into the registry counter, so the
  /// fold can add only the delta (guarded by the exclusive index lock, the
  /// only context folds run in).
  uint64_t folded_lockdep_violations_ = 0;
};

}  // namespace gknn::server

#endif  // GKNN_SERVER_QUERY_SERVER_H_
