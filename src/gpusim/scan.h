#ifndef GKNN_GPUSIM_SCAN_H_
#define GKNN_GPUSIM_SCAN_H_

#include <cstdint>
#include <span>

#include "gpusim/device.h"
#include "util/result.h"

namespace gknn::gpusim {

/// Exclusive prefix sum over a device-side array, in place. Returns the
/// total (sum of all inputs), or the injected error when the fault
/// schedule fails the scan kernel (the array is left unmodified).
///
/// Modeled as the work-efficient Blelloch scan: 2·log2(n) sweep phases,
/// each a device-wide pass with a barrier — the standard building block
/// for stream compaction on GPUs (flag → scan → scatter), which is how
/// kernels like GPU_Unresolved emit variable-length result sets without
/// host-side synchronization.
util::Result<uint32_t> ExclusiveScan(Device* device,
                                     std::span<uint32_t> values);

}  // namespace gknn::gpusim

#endif  // GKNN_GPUSIM_SCAN_H_
