#include "gpusim/hazard.h"

#include <cstdlib>

namespace gknn::gpusim {

std::string_view AccessTypeName(AccessType type) {
  switch (type) {
    case AccessType::kRead:
      return "read";
    case AccessType::kWrite:
      return "write";
    case AccessType::kAtomic:
      return "atomic";
  }
  return "unknown";
}

std::string OwnerName(uint32_t owner) {
  if (owner == kManyOwners) return "multiple threads";
  if (owner & kWarpOwnerFlag) {
    return "warp " + std::to_string(owner & ~kWarpOwnerFlag);
  }
  return "thread " + std::to_string(owner);
}

std::string HazardRecord::ToString() const {
  std::string out = kernel.empty() ? std::string("<unlabeled kernel>") : kernel;
  out += ": ";
  out += AccessTypeName(first_access);
  out += "-";
  out += AccessTypeName(second_access);
  out += " hazard on '";
  out += buffer.empty() ? std::string("<unnamed buffer>") : buffer;
  out += "'[";
  out += std::to_string(element);
  out += "] between ";
  out += OwnerName(first_owner);
  out += " and ";
  out += OwnerName(second_owner);
  return out;
}

std::optional<ShadowMemory::Prior> ShadowMemory::Record(size_t index,
                                                        uint64_t epoch,
                                                        uint32_t owner,
                                                        AccessType type) {
  if (index >= cells_.size()) return std::nullopt;
  Cell& cell = cells_[index];
  std::optional<Prior> conflict;
  auto conflicts_with = [&](uint64_t cell_epoch, uint32_t prior_owner,
                            AccessType prior_type) {
    if (cell_epoch == epoch && prior_owner != owner && !conflict) {
      conflict = Prior{prior_owner, prior_type};
    }
  };

  switch (type) {
    case AccessType::kWrite:
      conflicts_with(cell.write_epoch, cell.writer, AccessType::kWrite);
      conflicts_with(cell.read_epoch, cell.reader, AccessType::kRead);
      conflicts_with(cell.atomic_epoch, cell.atomic_owner,
                     AccessType::kAtomic);
      cell.writer = (cell.write_epoch == epoch && cell.writer != owner)
                        ? kManyOwners
                        : owner;
      cell.write_epoch = epoch;
      break;
    case AccessType::kRead:
      conflicts_with(cell.write_epoch, cell.writer, AccessType::kWrite);
      if (cell.read_epoch != epoch) {
        cell.reader = owner;
        cell.read_epoch = epoch;
      } else if (cell.reader != owner) {
        cell.reader = kManyOwners;
      }
      break;
    case AccessType::kAtomic:
      conflicts_with(cell.write_epoch, cell.writer, AccessType::kWrite);
      if (cell.atomic_epoch != epoch) {
        cell.atomic_owner = owner;
        cell.atomic_epoch = epoch;
      } else if (cell.atomic_owner != owner) {
        cell.atomic_owner = kManyOwners;
      }
      break;
  }
  return conflict;
}

namespace internal_hazard {

bool& HazardCheckDefaultFlag() {
  static bool flag = [] {
#ifdef NDEBUG
    // Release builds keep checking off unless the environment opts in
    // (the test suite does, via ctest's ENVIRONMENT property).
    const char* env = std::getenv("GKNN_HAZARD_CHECK");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
#else
    return true;
#endif
  }();
  return flag;
}

}  // namespace internal_hazard

bool DefaultHazardCheck() { return internal_hazard::HazardCheckDefaultFlag(); }

void SetHazardCheckDefault(bool on) {
  internal_hazard::HazardCheckDefaultFlag() = on;
}

}  // namespace gknn::gpusim
