#ifndef GKNN_GPUSIM_FAULT_INJECTOR_H_
#define GKNN_GPUSIM_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"

namespace gknn::gpusim {

/// Where a fault can be injected into the simulated device.
enum class FaultSite : uint8_t {
  kAlloc = 0,     // Device::RegisterAlloc (device memory reservation)
  kKernel = 1,    // Launch / LaunchIterative / LaunchWarps, before execution
  kTransfer = 2,  // Upload / Download / stream copies, before the memcpy
};

std::string_view FaultSiteName(FaultSite site);

/// Deterministic, seeded fault injection for the simulated GPU
/// (docs/ROBUSTNESS.md). A Device owns one injector, configured through
/// DeviceConfig::faults or the GKNN_FAULTS environment variable.
///
/// Spec grammar — semicolon-separated clauses, each `site:mode=value`:
///
///   alloc:p=0.05       every alloc fails with probability 0.05 (seeded)
///   kernel:every=64    every 64th kernel launch fails
///   transfer:after=100 every transfer after the 100th fails
///   any:at=7           exactly the 7th device operation fails, counted
///                      across all sites (the fail-at-k sweep hook)
///   seed=42            seeds the probabilistic mode (default 0x5eed)
///
/// Sites: alloc | kernel | transfer | any (`any` matches every site and
/// counts operations globally). Modes: p (probability), every (period),
/// after (threshold, 1-based: `after=N` fails operations N+1, N+2, ...),
/// at (one-shot, 1-based). A site may carry one mode; later clauses for
/// the same site replace earlier ones.
///
/// Injected errors are typed by site: alloc -> ResourceExhausted,
/// kernel -> Internal, transfer -> IoError — the codes IsDeviceError()
/// recognizes, and the same codes a real CUDA backend would map
/// cudaErrorMemoryAllocation / kernel aborts / copy failures onto.
class FaultInjector {
 public:
  /// Disarmed: every Check returns OK at the cost of one branch.
  FaultInjector() = default;

  /// Parses `spec` (empty means disarmed). InvalidArgument on grammar
  /// errors, naming the offending clause.
  static util::Result<FaultInjector> Parse(std::string_view spec,
                                           uint64_t default_seed = 0x5eed);

  /// Consults the schedule for one operation at `site`. Returns OK or the
  /// site's typed error, mentioning `what` (a buffer or kernel name).
  util::Status Check(FaultSite site, std::string_view what);

  /// True when any clause is active.
  bool armed() const { return armed_; }

  /// Turns the schedule off (counters are kept). Used by tests that need a
  /// fault-free window after a faulty one.
  void Disarm() { armed_ = false; }

  /// Operations checked / faults injected, per site and overall.
  uint64_t checks(FaultSite site) const {
    return rules_[static_cast<size_t>(site)].checks;
  }
  uint64_t injected(FaultSite site) const {
    return rules_[static_cast<size_t>(site)].injected;
  }
  uint64_t total_checks() const { return total_checks_; }
  uint64_t total_injected() const { return total_injected_; }

  /// The normalized spec this injector was parsed from ("" when disarmed
  /// from construction).
  const std::string& spec() const { return spec_; }

 private:
  enum class Mode : uint8_t { kOff, kProbability, kEvery, kAfter, kAt };

  struct Rule {
    Mode mode = Mode::kOff;
    double probability = 0;
    uint64_t threshold = 0;  // every/after/at operand
    uint64_t checks = 0;     // operations seen at this site
    uint64_t injected = 0;
  };

  /// `count` is the 1-based ordinal of the current operation under `rule`.
  bool Fires(Rule* rule, uint64_t count);

  // Index 3 is the `any` rule, driven by the global operation count.
  std::array<Rule, 4> rules_;
  util::Rng rng_;
  uint64_t total_checks_ = 0;
  uint64_t total_injected_ = 0;
  bool armed_ = false;
  std::string spec_;
};

/// The process-default fault spec: the value of the GKNN_FAULTS environment
/// variable at first use (the CI fault-injection matrix sets it), or ""
/// (disarmed). DeviceConfig::faults defaults to this, mirroring how
/// DefaultHazardCheck() feeds DeviceConfig::hazard_check.
const std::string& DefaultFaultSpec();

/// True for the Status codes injected (and surfaced) by the device layer:
/// ResourceExhausted, Internal, IoError. Callers use this to distinguish
/// "the device failed, retry or fall back to the CPU path" from semantic
/// errors (InvalidArgument, NotFound) that no retry can fix.
inline bool IsDeviceError(const util::Status& status) {
  return status.IsResourceExhausted() || status.IsInternal() ||
         status.IsIoError();
}

}  // namespace gknn::gpusim

#endif  // GKNN_GPUSIM_FAULT_INJECTOR_H_
