#ifndef GKNN_GPUSIM_HAZARD_H_
#define GKNN_GPUSIM_HAZARD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gknn::gpusim {

/// How a kernel thread touched a device-buffer element. Atomic accesses
/// (read-modify-write collectives like atomicMin) commute with each other,
/// so two atomics never conflict; everything else follows the usual
/// happens-before rules within one sync epoch.
enum class AccessType : uint8_t { kRead = 0, kWrite = 1, kAtomic = 2 };

std::string_view AccessTypeName(AccessType type);

/// Owner ids identify the unit of execution whose accesses are mutually
/// ordered. Scalar kernel threads own their accesses individually; a warp
/// bundle executes in lockstep, so its lanes share one owner (intra-bundle
/// conflicts are resolved by SIMT arbitration, which CUDA defines as "one
/// lane's write wins"). The flag bit keeps the two id spaces disjoint.
inline constexpr uint32_t kWarpOwnerFlag = 0x80000000u;

/// Sentinel owner meaning "more than one distinct owner" (e.g. an element
/// read by many threads in the same epoch).
inline constexpr uint32_t kManyOwners = 0xffffffffu;

/// Renders an owner id as "thread 7", "warp 3", or "multiple threads".
std::string OwnerName(uint32_t owner);

/// One detected data hazard: two kernel threads touched the same buffer
/// element within the same sync epoch in a conflicting way.
struct HazardRecord {
  std::string kernel;       ///< label of the launch that detected it
  std::string buffer;       ///< name of the DeviceBuffer
  uint64_t element = 0;     ///< element index within the buffer
  uint32_t first_owner = 0;  ///< earlier access (thread/warp id)
  uint32_t second_owner = 0; ///< the access that closed the race
  AccessType first_access = AccessType::kRead;
  AccessType second_access = AccessType::kRead;

  /// "GPU_SDist: write-write hazard on 'dist'[42] between thread 3 and
  /// thread 7".
  std::string ToString() const;
};

/// Per-element shadow state of one DeviceBuffer.
///
/// Each element carries the owners that last read / wrote / atomically
/// updated it, tagged with the epoch of that access. Epoch tags make reuse
/// across launches O(1): state from an earlier epoch is logically cleared
/// without touching memory (exactly the trick TSan's shadow words and
/// cuda-memcheck's racecheck use).
class ShadowMemory {
 public:
  struct Prior {
    uint32_t owner = 0;
    AccessType access = AccessType::kRead;
  };

  /// Sizes the shadow to `n` elements. Passing 0 disables tracking.
  void Resize(size_t n) { cells_.assign(n, Cell{}); }

  bool enabled() const { return !cells_.empty(); }
  size_t size() const { return cells_.size(); }

  /// Records an access and returns the conflicting prior access within the
  /// same epoch, if any. `owner` is the accessing thread or warp id.
  ///
  /// Conflict matrix (distinct owners, same epoch):
  ///   write/write, read/write, write/read, atomic/write, write/atomic
  ///     -> hazard
  ///   read/read, atomic/atomic, atomic/read, read/atomic
  ///     -> allowed (atomics commute; a plain read beside atomics observes
  ///        some settled value, the usual relaxed-atomic idiom of GPU
  ///        relaxation kernels)
  std::optional<Prior> Record(size_t index, uint64_t epoch, uint32_t owner,
                              AccessType type);

 private:
  struct Cell {
    uint64_t write_epoch = 0;
    uint64_t read_epoch = 0;
    uint64_t atomic_epoch = 0;
    uint32_t writer = 0;
    uint32_t reader = 0;
    uint32_t atomic_owner = 0;
  };

  std::vector<Cell> cells_;
};

/// Process-wide default for DeviceConfig::hazard_check. True in debug
/// builds (!NDEBUG); in release builds it follows the GKNN_HAZARD_CHECK
/// environment variable (the test suite sets it to 1), defaulting to off so
/// benchmarks pay nothing.
bool DefaultHazardCheck();

/// Overrides the default for Devices constructed after the call (tests and
/// tools; existing DeviceConfig values are unaffected).
void SetHazardCheckDefault(bool on);

}  // namespace gknn::gpusim

#endif  // GKNN_GPUSIM_HAZARD_H_
