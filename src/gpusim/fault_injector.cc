#include "gpusim/fault_injector.h"

#include <charconv>
#include <cstdlib>

namespace gknn::gpusim {

namespace {

constexpr size_t kAnyRule = 3;

util::Status BadClause(std::string_view clause, std::string_view why) {
  return util::Status::InvalidArgument("GKNN_FAULTS clause '" +
                                       std::string(clause) +
                                       "': " + std::string(why));
}

}  // namespace

std::string_view FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kAlloc:
      return "alloc";
    case FaultSite::kKernel:
      return "kernel";
    case FaultSite::kTransfer:
      return "transfer";
  }
  return "unknown";
}

util::Result<FaultInjector> FaultInjector::Parse(std::string_view spec,
                                                 uint64_t default_seed) {
  FaultInjector injector;
  injector.spec_ = std::string(spec);
  uint64_t seed = default_seed;

  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string_view::npos) end = spec.size();
    std::string_view clause = spec.substr(pos, end - pos);
    pos = end + 1;
    // Trim surrounding whitespace so "alloc:p=0.1; kernel:every=4" parses.
    while (!clause.empty() && clause.front() == ' ') clause.remove_prefix(1);
    while (!clause.empty() && clause.back() == ' ') clause.remove_suffix(1);
    if (clause.empty()) continue;

    const size_t eq = clause.find('=');
    if (eq == std::string_view::npos) {
      return BadClause(clause, "expected site:mode=value or seed=N");
    }
    const std::string_view value = clause.substr(eq + 1);
    std::string_view key = clause.substr(0, eq);

    if (key == "seed") {
      if (std::from_chars(value.data(), value.data() + value.size(), seed)
              .ec != std::errc{}) {
        return BadClause(clause, "seed must be an unsigned integer");
      }
      continue;
    }

    const size_t colon = key.find(':');
    if (colon == std::string_view::npos) {
      return BadClause(clause, "expected site:mode=value");
    }
    const std::string_view site_name = key.substr(0, colon);
    const std::string_view mode_name = key.substr(colon + 1);

    size_t rule_index;
    if (site_name == "alloc") {
      rule_index = static_cast<size_t>(FaultSite::kAlloc);
    } else if (site_name == "kernel") {
      rule_index = static_cast<size_t>(FaultSite::kKernel);
    } else if (site_name == "transfer") {
      rule_index = static_cast<size_t>(FaultSite::kTransfer);
    } else if (site_name == "any") {
      rule_index = kAnyRule;
    } else {
      return BadClause(clause, "unknown site (alloc|kernel|transfer|any)");
    }

    Rule rule;
    if (mode_name == "p") {
      // std::from_chars for double is inconsistently available; strtod on a
      // bounded copy is fine for a config string.
      const std::string copy(value);
      char* parse_end = nullptr;
      rule.probability = std::strtod(copy.c_str(), &parse_end);
      if (parse_end != copy.c_str() + copy.size() || rule.probability < 0 ||
          rule.probability > 1) {
        return BadClause(clause, "p must be a number in [0, 1]");
      }
      rule.mode = Mode::kProbability;
    } else if (mode_name == "every" || mode_name == "after" ||
               mode_name == "at") {
      if (std::from_chars(value.data(), value.data() + value.size(),
                          rule.threshold)
              .ec != std::errc{}) {
        return BadClause(clause, "operand must be an unsigned integer");
      }
      if (mode_name == "every") {
        if (rule.threshold == 0) return BadClause(clause, "every=0 is invalid");
        rule.mode = Mode::kEvery;
      } else if (mode_name == "after") {
        rule.mode = Mode::kAfter;
      } else {
        if (rule.threshold == 0) return BadClause(clause, "at is 1-based");
        rule.mode = Mode::kAt;
      }
    } else {
      return BadClause(clause, "unknown mode (p|every|after|at)");
    }
    injector.rules_[rule_index] = rule;
  }

  injector.rng_.Seed(seed);
  for (const Rule& rule : injector.rules_) {
    if (rule.mode != Mode::kOff) injector.armed_ = true;
  }
  return injector;
}

bool FaultInjector::Fires(Rule* rule, uint64_t count) {
  switch (rule->mode) {
    case Mode::kOff:
      return false;
    case Mode::kProbability:
      return rng_.NextBool(rule->probability);
    case Mode::kEvery:
      return count % rule->threshold == 0;
    case Mode::kAfter:
      return count > rule->threshold;
    case Mode::kAt:
      return count == rule->threshold;
  }
  return false;
}

util::Status FaultInjector::Check(FaultSite site, std::string_view what) {
  Rule& site_rule = rules_[static_cast<size_t>(site)];
  ++site_rule.checks;
  Rule& any_rule = rules_[kAnyRule];
  ++any_rule.checks;
  ++total_checks_;
  if (!armed_) return util::Status::OK();

  const bool fire = Fires(&site_rule, site_rule.checks) ||
                    Fires(&any_rule, any_rule.checks);
  if (!fire) return util::Status::OK();
  ++site_rule.injected;
  ++total_injected_;

  const std::string message =
      "injected " + std::string(FaultSiteName(site)) + " fault (op #" +
      std::to_string(site_rule.checks) + "): " + std::string(what);
  switch (site) {
    case FaultSite::kAlloc:
      return util::Status::ResourceExhausted(message);
    case FaultSite::kKernel:
      return util::Status::Internal(message);
    case FaultSite::kTransfer:
      return util::Status::IoError(message);
  }
  return util::Status::Internal(message);
}

const std::string& DefaultFaultSpec() {
  static const std::string spec = [] {
    const char* env = std::getenv("GKNN_FAULTS");
    return std::string(env != nullptr ? env : "");
  }();
  return spec;
}

}  // namespace gknn::gpusim
