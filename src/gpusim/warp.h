#ifndef GKNN_GPUSIM_WARP_H_
#define GKNN_GPUSIM_WARP_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/hazard.h"
#include "util/logging.h"
#include "util/result.h"

namespace gknn::gpusim {

/// Execution context of one thread bundle (the paper's group of 2^eta
/// threads) running in warp-synchronous lockstep.
///
/// Kernels written against WarpCtx hold their per-lane registers as
/// `std::vector<T>` of length width() and apply collectives to the whole
/// register vector at once. This makes the SIMT lockstep explicit: every
/// lane is at the same program point when a collective runs, which is the
/// property CUDA's __shfl_xor_sync relies on.
class WarpCtx {
 public:
  WarpCtx(Device* device, uint32_t warp_id, uint32_t width)
      : device_(device), warp_id_(warp_id), width_(width) {
    GKNN_CHECK((width & (width - 1)) == 0) << "warp width must be a power of 2";
  }

  uint32_t warp_id() const { return warp_id_; }
  uint32_t width() const { return width_; }
  Device* device() const { return device_; }

  /// Hazard-detector owner id of this bundle. All lanes share it: they
  /// execute in lockstep, so conflicting lane accesses within one bundle
  /// are resolved by SIMT arbitration (CUDA: "one lane's write wins"),
  /// not hazards. Conflicts *between* bundles are real and flagged.
  uint32_t owner() const { return kWarpOwnerFlag | warp_id_; }

  /// Butterfly shuffle: lane i receives the register value of lane
  /// (i XOR lane_mask). This is the paper's shuffle_xor (§IV-C2). The
  /// exchange is total — every lane participates — matching a full-mask
  /// __shfl_xor_sync.
  ///
  /// Cost model: one cycle inside a hardware warp; a bundle wider than the
  /// device warp size must synchronize through shared memory and is charged
  /// `cross_warp_sync_cycles` (the penalty the paper measures when tuning
  /// 2^eta past 32, Fig. 4b).
  template <typename T>
  void ShflXor(std::vector<T>& regs, uint32_t lane_mask) {
    GKNN_DCHECK(regs.size() == width_);
    GKNN_DCHECK(lane_mask < width_);
    for (uint32_t lane = 0; lane < width_; ++lane) {
      const uint32_t peer = lane ^ lane_mask;
      if (peer > lane) {
        std::swap(regs[lane], regs[peer]);
      }
    }
    if (width_ > device_->config().warp_size) {
      cycles_ += device_->config().cross_warp_sync_cycles;
    } else {
      cycles_ += 1;
    }
  }

  /// Charges `ops` simulated instructions executed by every lane in
  /// lockstep (divergent lanes still occupy the SIMT slot, so per-lane ops
  /// are charged once per bundle step, not per active lane).
  void CountOpsPerLane(uint64_t ops) { cycles_ += ops; }

  uint64_t cycles() const { return cycles_; }

 private:
  Device* device_;
  uint32_t warp_id_;
  uint32_t width_;
  uint64_t cycles_ = 0;
};

/// Launches `n_warps` bundles of `width` lanes each; `fn(WarpCtx&)` runs
/// once per bundle. Bundles are independent (the paper: "each bundle works
/// independently from the others"), so the modeled duration is the slowest
/// bundle times the number of waves needed to place all lanes on the
/// device's cores. `label` names the kernel in hazard reports. Fails (with
/// nothing executed) when the fault schedule fires on the launch.
template <typename Fn>
util::Result<KernelStats> LaunchWarps(Device* device, std::string_view label,
                                      uint32_t n_warps, uint32_t width,
                                      Fn&& fn) {
  GKNN_RETURN_NOT_OK(device->CheckKernelFault(label));
  const auto wall_start = std::chrono::steady_clock::now();
  device->BeginKernel(label);
  KernelStats stats;
  stats.threads = n_warps * width;
  uint64_t max_warp_cycles = 0;
  for (uint32_t w = 0; w < n_warps; ++w) {
    WarpCtx ctx(device, w, width);
    fn(ctx);
    stats.total_ops += ctx.cycles() * width;
    if (ctx.cycles() > max_warp_cycles) max_warp_cycles = ctx.cycles();
  }
  stats.max_thread_ops = max_warp_cycles;

  const DeviceConfig& config = device->config();
  const uint32_t warp_slots =
      width == 0 ? 1 : std::max<uint32_t>(1, config.num_cores / width);
  const uint64_t waves =
      n_warps == 0 ? 1 : (n_warps + warp_slots - 1) / warp_slots;
  stats.modeled_seconds =
      config.kernel_launch_seconds +
      config.CyclesToSeconds(static_cast<double>(max_warp_cycles) *
                             static_cast<double>(waves));
  device->AdvanceClock(stats.modeled_seconds);
  device->FinishExternalLaunch(label, &stats);
  device->AddSimWallSeconds(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - wall_start)
                                .count());
  return stats;
}

template <typename Fn>
util::Result<KernelStats> LaunchWarps(Device* device, uint32_t n_warps,
                                      uint32_t width, Fn&& fn) {
  return LaunchWarps(device, "<unlabeled>", n_warps, width,
                     std::forward<Fn>(fn));
}

}  // namespace gknn::gpusim

#endif  // GKNN_GPUSIM_WARP_H_
