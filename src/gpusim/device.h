#ifndef GKNN_GPUSIM_DEVICE_H_
#define GKNN_GPUSIM_DEVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gpusim/device_config.h"
#include "gpusim/fault_injector.h"
#include "gpusim/hazard.h"
#include "gpusim/transfer_ledger.h"
#include "util/lockdep.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/status.h"

namespace gknn::gpusim {

/// Per-thread kernel context handed to data-parallel kernel bodies.
///
/// Kernels report the work they do through CountOps; the device converts
/// the per-thread maximum into modeled execution time (SIMT waves).
struct ThreadCtx {
  uint32_t thread_id = 0;
  uint64_t ops = 0;

  /// Charges `n` simulated instructions to this thread.
  void CountOps(uint64_t n) { ops += n; }
};

/// Outcome of a kernel launch: functional execution is complete, and
/// `modeled_seconds` holds the simulated device time.
struct KernelStats {
  uint32_t threads = 0;
  uint64_t max_thread_ops = 0;
  uint64_t total_ops = 0;
  uint32_t iterations = 1;
  double modeled_seconds = 0;
  /// Data hazards the shadow-memory detector flagged during this launch
  /// (always 0 when DeviceConfig::hazard_check is off).
  uint32_t hazards = 0;
};

/// The simulated GPU.
///
/// A Device owns the transfer ledger, the device-memory budget, and a
/// monotonically increasing modeled clock. Kernels launched through it run
/// functionally on the host (producing bit-exact results) while their
/// device-side duration is charged to the clock according to DeviceConfig.
///
/// Thread-safety: the Device is internally synchronized, like a CUDA
/// context used from multiple host threads with per-thread streams.
/// Launches, transfers, allocations, and the fault schedule may race
/// freely; the modeled clock, the transfer ledger, and every counter stay
/// consistent. Two things become approximate when launches overlap
/// (docs/CONCURRENCY.md):
///   - per-launch hazard attribution (KernelStats::hazards may include
///     hazards another thread's concurrent kernel recorded, and the sync
///     epoch advances globally, so cross-iteration conflicts in a kernel
///     that overlaps another thread's Sync can be missed — never falsely
///     reported, because shadow memory is per buffer and buffers are not
///     shared across concurrent launches);
///   - clock deltas observed around a launch include every other thread's
///     concurrent device work (one global device timeline).
/// DeviceBuffers themselves are not shareable across concurrent kernels;
/// each concurrent query works on buffers it owns.
class Device {
 public:
  explicit Device(DeviceConfig config = DeviceConfig{})
      : config_(std::move(config)) {
    util::Result<FaultInjector> parsed =
        FaultInjector::Parse(config_.faults, config_.fault_seed);
    if (parsed.ok()) {
      faults_ = std::move(parsed).ValueOrDie();
    } else {
      // An unusable schedule must not take the device down with it: run
      // fault-free and say so.
      GKNN_LOG(Warning) << "ignoring fault spec: "
                        << parsed.status().ToString();
    }
  }

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceConfig& config() const { return config_; }
  TransferLedger& ledger() { return ledger_; }
  const TransferLedger& ledger() const { return ledger_; }

  // --- Fault injection ------------------------------------------------------

  /// Direct injector access for tests and the CLI. Reading counters while
  /// other threads drive the device is racy; quiesce (join workers) first.
  FaultInjector& fault_injector() { return faults_; }
  const FaultInjector& fault_injector() const { return faults_; }

  /// Replaces the fault schedule (tests and gknn_cli --faults). An empty
  /// spec disarms injection. InvalidArgument on grammar errors, in which
  /// case the current schedule is kept.
  util::Status SetFaultSpec(std::string_view spec) {
    GKNN_ASSIGN_OR_RETURN(FaultInjector parsed,
                          FaultInjector::Parse(spec, config_.fault_seed));
    util::lockdep::MutexLock lock(fault_mu_);
    faults_ = std::move(parsed);
    return util::Status::OK();
  }

  /// Consulted by every launch path before the kernel body runs: an
  /// injected kernel fault means nothing executed (a failed launch).
  util::Status CheckKernelFault(std::string_view label) {
    util::lockdep::MutexLock lock(fault_mu_);
    return faults_.Check(FaultSite::kKernel, label);
  }

  /// Consulted by every transfer path *before* bytes move, so a failed
  /// copy leaves both sides untouched.
  util::Status CheckTransferFault(std::string_view what) {
    util::lockdep::MutexLock lock(fault_mu_);
    return faults_.Check(FaultSite::kTransfer, what);
  }

  // --- Device memory accounting -------------------------------------------

  /// Reserves `bytes` of device memory; fails with ResourceExhausted when
  /// the configured capacity would be exceeded (used by DeviceBuffer).
  util::Status RegisterAlloc(uint64_t bytes) {
    {
      util::lockdep::MutexLock lock(fault_mu_);
      GKNN_RETURN_NOT_OK(faults_.Check(
          FaultSite::kAlloc, std::to_string(bytes) + " bytes"));
    }
    // Reserve with a CAS loop so concurrent allocations never oversubscribe
    // the configured capacity.
    uint64_t current = bytes_allocated_.load(std::memory_order_relaxed);
    do {
      if (current + bytes > config_.memory_bytes) {
        return util::Status::ResourceExhausted(
            "device memory exhausted: " + std::to_string(current) + " + " +
            std::to_string(bytes) + " > " +
            std::to_string(config_.memory_bytes));
      }
    } while (!bytes_allocated_.compare_exchange_weak(
        current, current + bytes, std::memory_order_relaxed));
    const uint64_t now_allocated = current + bytes;
    uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
    while (now_allocated > peak &&
           !peak_bytes_.compare_exchange_weak(peak, now_allocated,
                                              std::memory_order_relaxed)) {
    }
    return util::Status::OK();
  }

  void RegisterFree(uint64_t bytes) {
    GKNN_DCHECK(bytes <= bytes_allocated_.load(std::memory_order_relaxed));
    bytes_allocated_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  uint64_t bytes_allocated() const {
    return bytes_allocated_.load(std::memory_order_relaxed);
  }
  uint64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

  // --- Modeled clock --------------------------------------------------------

  /// Adds modeled device-busy time (kernels and synchronous transfers).
  /// `seconds` may be negative (Stream::MoveKernelToStream re-books a
  /// kernel from the synchronous timeline onto a stream).
  void AdvanceClock(double seconds) { AtomicAdd(&clock_seconds_, seconds); }

  /// Total modeled device time since construction / ResetClock.
  double ClockSeconds() const {
    return clock_seconds_.load(std::memory_order_relaxed);
  }

  void ResetClock() { clock_seconds_.store(0, std::memory_order_relaxed); }

  uint64_t kernel_launches() const {
    return kernel_launches_.load(std::memory_order_relaxed);
  }

  /// Accumulated launch statistics per kernel label, for the observability
  /// registry's `gknn_kernel_*{kernel="..."}` gauges.
  struct KernelTotals {
    uint64_t launches = 0;
    uint64_t iterations = 0;
    double modeled_seconds = 0;
  };

  /// Per-kernel launch totals, copied under the device's stats lock so the
  /// caller gets a consistent snapshot even while launches race.
  std::map<std::string, KernelTotals, std::less<>> kernel_totals() const {
    util::lockdep::MutexLock lock(stats_mu_);
    return kernel_totals_;
  }

  /// Host wall time spent *executing kernels functionally* (the simulation
  /// itself). A real deployment runs this work on the device, so callers
  /// that measure their own CPU time subtract the delta of this counter to
  /// avoid billing simulation overhead as host work.
  double sim_wall_seconds() const {
    return sim_wall_seconds_.load(std::memory_order_relaxed);
  }

  void AddSimWallSeconds(double seconds) {
    AtomicAdd(&sim_wall_seconds_, seconds);
  }

  // --- Hazard checking ------------------------------------------------------

  /// Whether DeviceBuffers on this device carry shadow memory.
  bool hazard_check() const { return config_.hazard_check; }

  /// The current sync epoch. Accesses by distinct threads within one epoch
  /// are concurrent; a kernel boundary, an iteration barrier, or an
  /// explicit Sync() separates epochs — mirroring CUDA's happens-before
  /// edges (kernel launches on one stream are ordered; __syncthreads()
  /// orders accesses within a kernel).
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Advances the sync epoch, like cudaDeviceSynchronize: every access
  /// before the call happens-before every access after it.
  void Sync() { epoch_.fetch_add(1, std::memory_order_relaxed); }

  /// Marks the start of a labeled kernel so hazard reports can name it.
  /// Launch/LaunchIterative/LaunchWarps call this; kernels built from raw
  /// loops may call it directly. The label and the hazard baseline are
  /// per host thread, so concurrent launches each report their own kernel
  /// name.
  void BeginKernel(std::string_view label) {
    CurrentKernelLabel() = std::string(label);
    LaunchHazardBase() = hazard_count_.load(std::memory_order_acquire);
  }

  /// Hazards recorded since the matching BeginKernel on this thread. When
  /// other threads' kernels overlap, their hazards are included (the
  /// counter is device-global).
  uint32_t KernelHazards() const {
    return static_cast<uint32_t>(
        hazard_count_.load(std::memory_order_acquire) - LaunchHazardBase());
  }

  /// Called by DeviceBuffer's checked accessors: records the access in the
  /// buffer's shadow and files a HazardRecord on conflict.
  void RecordAccess(ShadowMemory* shadow, std::string_view buffer_name,
                    size_t index, uint32_t owner, AccessType type) {
    auto prior = shadow->Record(index, epoch_.load(std::memory_order_relaxed),
                                owner, type);
    if (!prior) return;
    hazard_count_.fetch_add(1, std::memory_order_relaxed);
    util::lockdep::MutexLock lock(stats_mu_);
    if (hazards_.size() < config_.max_hazard_records) {
      HazardRecord record;
      record.kernel = CurrentKernelLabel();
      record.buffer = std::string(buffer_name);
      record.element = index;
      record.first_owner = prior->owner;
      record.second_owner = owner;
      record.first_access = prior->access;
      record.second_access = type;
      if (hazards_.empty()) {
        GKNN_LOG(Warning) << "data hazard detected: " << record.ToString();
      }
      hazards_.push_back(std::move(record));
    }
  }

  /// Total hazards detected since construction / ClearHazards.
  uint64_t hazard_count() const {
    return hazard_count_.load(std::memory_order_acquire);
  }

  /// The recorded hazards (capped at config().max_hazard_records). Only
  /// stable while no kernel is in flight; quiesce before iterating.
  const std::vector<HazardRecord>& hazards() const { return hazards_; }

  void ClearHazards() {
    util::lockdep::MutexLock lock(stats_mu_);
    hazards_.clear();
    // Release pairs with the acquire in hazard_count(): a reader that
    // observes the reset count also observes the cleared records.
    hazard_count_.store(0, std::memory_order_release);
    LaunchHazardBase() = 0;
  }

  /// OK when no hazard has been detected; otherwise an Internal error
  /// carrying the first hazard and the total count.
  util::Status HazardStatus() const {
    if (hazard_count() == 0) return util::Status::OK();
    util::lockdep::MutexLock lock(stats_mu_);
    return util::Status::Internal(
        std::to_string(hazard_count_.load(std::memory_order_relaxed)) +
        " data hazard(s), first: " +
        (hazards_.empty() ? std::string("<record cap reached>")
                          : hazards_.front().ToString()));
  }

  // --- Kernel launches ------------------------------------------------------

  /// Launches a data-parallel kernel: `fn(ThreadCtx&)` runs once per thread
  /// id in [0, n_threads), with an implicit barrier at the end (kernel
  /// boundary). `label` names the kernel in hazard reports. Returns the
  /// launch statistics, or the injected error when the fault schedule fails
  /// this launch — in which case the kernel body never ran and no device
  /// state changed.
  template <typename Fn>
  util::Result<KernelStats> Launch(std::string_view label, uint32_t n_threads,
                                   Fn&& fn) {
    GKNN_RETURN_NOT_OK(CheckKernelFault(label));
    const auto wall_start = std::chrono::steady_clock::now();
    BeginKernel(label);
    KernelStats stats;
    stats.threads = n_threads;
    for (uint32_t tid = 0; tid < n_threads; ++tid) {
      ThreadCtx ctx;
      ctx.thread_id = tid;
      fn(ctx);
      stats.total_ops += ctx.ops;
      if (ctx.ops > stats.max_thread_ops) stats.max_thread_ops = ctx.ops;
    }
    FinishLaunch(label, &stats, n_threads, /*sync_points=*/0);
    AddSimWallSeconds(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count());
    return stats;
  }

  template <typename Fn>
  util::Result<KernelStats> Launch(uint32_t n_threads, Fn&& fn) {
    return Launch("<unlabeled>", n_threads, std::forward<Fn>(fn));
  }

  /// Launches an iterative kernel with a device-wide barrier between
  /// iterations (the paper's `sync_threads()` in GPU_SDist, Alg. 5):
  /// `fn(ThreadCtx&, iter)` returns true if the thread changed any state.
  /// Runs at most `max_iters` iterations; if `stop_when_stable` is set the
  /// kernel terminates after the first iteration in which no thread made a
  /// change (a fixpoint — the paper iterates a fixed |V| times, which is the
  /// worst-case bound for Bellman-Ford; stopping at the fixpoint computes
  /// the identical result). Each barrier advances the hazard-check epoch:
  /// accesses in different iterations never conflict.
  template <typename Fn>
  util::Result<KernelStats> LaunchIterative(std::string_view label,
                                            uint32_t n_threads,
                                            uint32_t max_iters,
                                            bool stop_when_stable, Fn&& fn) {
    GKNN_RETURN_NOT_OK(CheckKernelFault(label));
    const auto wall_start = std::chrono::steady_clock::now();
    BeginKernel(label);
    KernelStats stats;
    stats.threads = n_threads;
    stats.iterations = 0;
    for (uint32_t iter = 0; iter < max_iters; ++iter) {
      ++stats.iterations;
      bool any_changed = false;
      uint64_t iter_max_ops = 0;
      for (uint32_t tid = 0; tid < n_threads; ++tid) {
        ThreadCtx ctx;
        ctx.thread_id = tid;
        const bool changed = fn(ctx, iter);
        any_changed = any_changed || changed;
        stats.total_ops += ctx.ops;
        if (ctx.ops > iter_max_ops) iter_max_ops = ctx.ops;
      }
      stats.max_thread_ops += iter_max_ops;
      Sync();  // the device-wide barrier between iterations
      if (stop_when_stable && !any_changed) break;
    }
    FinishLaunch(label, &stats, n_threads, /*sync_points=*/stats.iterations,
                 /*synced=*/true);
    AddSimWallSeconds(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count());
    return stats;
  }

  template <typename Fn>
  util::Result<KernelStats> LaunchIterative(uint32_t n_threads,
                                            uint32_t max_iters,
                                            bool stop_when_stable, Fn&& fn) {
    return LaunchIterative("<unlabeled>", n_threads, max_iters,
                           stop_when_stable, std::forward<Fn>(fn));
  }

  /// Closes a launch executed outside Launch/LaunchIterative (LaunchWarps):
  /// stamps the hazard counter into `stats`, advances the epoch (kernel
  /// boundary), and counts the launch under `label`.
  void FinishExternalLaunch(std::string_view label, KernelStats* stats) {
    stats->hazards = KernelHazards();
    Sync();
    kernel_launches_.fetch_add(1, std::memory_order_relaxed);
    AccumulateKernelTotals(label, *stats);
  }

 private:
  /// Relaxed atomic add for doubles via CAS (fetch_add on atomic<double>
  /// is C++20; the CAS loop is portable across toolchains).
  static void AtomicAdd(std::atomic<double>* target, double value) {
    double current = target->load(std::memory_order_relaxed);
    while (!target->compare_exchange_weak(current, current + value,
                                          std::memory_order_relaxed)) {
    }
  }

  // The kernel label and hazard baseline belong to the host thread driving
  // the launch: concurrent launches each attribute their own reports.
  static std::string& CurrentKernelLabel() {
    static thread_local std::string label;
    return label;
  }
  static uint64_t& LaunchHazardBase() {
    static thread_local uint64_t base = 0;
    return base;
  }

  void FinishLaunch(std::string_view label, KernelStats* stats,
                    uint32_t n_threads, uint32_t sync_points,
                    bool synced = false) {
    const uint32_t cores = config_.num_cores;
    const uint64_t waves =
        n_threads == 0 ? 1 : (n_threads + cores - 1) / cores;
    const double cycles =
        static_cast<double>(stats->max_thread_ops) * static_cast<double>(waves) +
        static_cast<double>(sync_points) * config_.cross_warp_sync_cycles;
    stats->modeled_seconds =
        config_.kernel_launch_seconds + config_.CyclesToSeconds(cycles);
    stats->hazards = KernelHazards();
    if (!synced) Sync();  // implicit barrier at the kernel boundary
    AdvanceClock(stats->modeled_seconds);
    kernel_launches_.fetch_add(1, std::memory_order_relaxed);
    AccumulateKernelTotals(label, *stats);
  }

  void AccumulateKernelTotals(std::string_view label,
                              const KernelStats& stats) {
    util::lockdep::MutexLock lock(stats_mu_);
    auto it = kernel_totals_.find(label);
    if (it == kernel_totals_.end()) {
      it = kernel_totals_.emplace(std::string(label), KernelTotals{}).first;
    }
    KernelTotals& totals = it->second;
    ++totals.launches;
    totals.iterations += stats.iterations;
    totals.modeled_seconds += stats.modeled_seconds;
  }

  DeviceConfig config_;
  TransferLedger ledger_;
  std::atomic<uint64_t> bytes_allocated_{0};
  std::atomic<uint64_t> peak_bytes_{0};
  std::atomic<uint64_t> kernel_launches_{0};
  std::atomic<double> clock_seconds_{0};
  std::atomic<double> sim_wall_seconds_{0};

  // Serializes fault-schedule consultation (the injector's rule counters
  // and seeded RNG are stateful).
  util::lockdep::Mutex fault_mu_{util::lockdep::kDeviceFaultClass};
  FaultInjector faults_;

  // Hazard-detector state (see docs/HAZARD_CHECKER.md).
  std::atomic<uint64_t> epoch_{1};  // 0 is "never accessed" in shadow cells
  std::atomic<uint64_t> hazard_count_{0};
  // guards hazards_ and kernel_totals_; device.stats leaf in the lock order
  mutable util::lockdep::Mutex stats_mu_{util::lockdep::kDeviceStatsClass};
  std::vector<HazardRecord> hazards_;
  std::map<std::string, KernelTotals, std::less<>> kernel_totals_;
};

}  // namespace gknn::gpusim

#endif  // GKNN_GPUSIM_DEVICE_H_
