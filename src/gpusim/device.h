#ifndef GKNN_GPUSIM_DEVICE_H_
#define GKNN_GPUSIM_DEVICE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gpusim/device_config.h"
#include "gpusim/fault_injector.h"
#include "gpusim/hazard.h"
#include "gpusim/transfer_ledger.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/status.h"

namespace gknn::gpusim {

/// Per-thread kernel context handed to data-parallel kernel bodies.
///
/// Kernels report the work they do through CountOps; the device converts
/// the per-thread maximum into modeled execution time (SIMT waves).
struct ThreadCtx {
  uint32_t thread_id = 0;
  uint64_t ops = 0;

  /// Charges `n` simulated instructions to this thread.
  void CountOps(uint64_t n) { ops += n; }
};

/// Outcome of a kernel launch: functional execution is complete, and
/// `modeled_seconds` holds the simulated device time.
struct KernelStats {
  uint32_t threads = 0;
  uint64_t max_thread_ops = 0;
  uint64_t total_ops = 0;
  uint32_t iterations = 1;
  double modeled_seconds = 0;
  /// Data hazards the shadow-memory detector flagged during this launch
  /// (always 0 when DeviceConfig::hazard_check is off).
  uint32_t hazards = 0;
};

/// The simulated GPU.
///
/// A Device owns the transfer ledger, the device-memory budget, and a
/// monotonically increasing modeled clock. Kernels launched through it run
/// functionally on the host (producing bit-exact results) while their
/// device-side duration is charged to the clock according to DeviceConfig.
///
/// Thread-safety: a Device is confined to one host thread, like a CUDA
/// context used without streams from multiple threads.
class Device {
 public:
  explicit Device(DeviceConfig config = DeviceConfig{})
      : config_(std::move(config)) {
    util::Result<FaultInjector> parsed =
        FaultInjector::Parse(config_.faults, config_.fault_seed);
    if (parsed.ok()) {
      faults_ = std::move(parsed).ValueOrDie();
    } else {
      // An unusable schedule must not take the device down with it: run
      // fault-free and say so.
      GKNN_LOG(Warning) << "ignoring fault spec: "
                        << parsed.status().ToString();
    }
  }

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceConfig& config() const { return config_; }
  TransferLedger& ledger() { return ledger_; }
  const TransferLedger& ledger() const { return ledger_; }

  // --- Fault injection ------------------------------------------------------

  FaultInjector& fault_injector() { return faults_; }
  const FaultInjector& fault_injector() const { return faults_; }

  /// Replaces the fault schedule (tests and gknn_cli --faults). An empty
  /// spec disarms injection. InvalidArgument on grammar errors, in which
  /// case the current schedule is kept.
  util::Status SetFaultSpec(std::string_view spec) {
    GKNN_ASSIGN_OR_RETURN(faults_,
                          FaultInjector::Parse(spec, config_.fault_seed));
    return util::Status::OK();
  }

  /// Consulted by every launch path before the kernel body runs: an
  /// injected kernel fault means nothing executed (a failed launch).
  util::Status CheckKernelFault(std::string_view label) {
    return faults_.Check(FaultSite::kKernel, label);
  }

  /// Consulted by every transfer path *before* bytes move, so a failed
  /// copy leaves both sides untouched.
  util::Status CheckTransferFault(std::string_view what) {
    return faults_.Check(FaultSite::kTransfer, what);
  }

  // --- Device memory accounting -------------------------------------------

  /// Reserves `bytes` of device memory; fails with ResourceExhausted when
  /// the configured capacity would be exceeded (used by DeviceBuffer).
  util::Status RegisterAlloc(uint64_t bytes) {
    GKNN_RETURN_NOT_OK(faults_.Check(
        FaultSite::kAlloc, std::to_string(bytes) + " bytes"));
    if (bytes_allocated_ + bytes > config_.memory_bytes) {
      return util::Status::ResourceExhausted(
          "device memory exhausted: " + std::to_string(bytes_allocated_) +
          " + " + std::to_string(bytes) + " > " +
          std::to_string(config_.memory_bytes));
    }
    bytes_allocated_ += bytes;
    if (bytes_allocated_ > peak_bytes_) peak_bytes_ = bytes_allocated_;
    return util::Status::OK();
  }

  void RegisterFree(uint64_t bytes) {
    GKNN_DCHECK(bytes <= bytes_allocated_);
    bytes_allocated_ -= bytes;
  }

  uint64_t bytes_allocated() const { return bytes_allocated_; }
  uint64_t peak_bytes() const { return peak_bytes_; }

  // --- Modeled clock --------------------------------------------------------

  /// Adds modeled device-busy time (kernels and synchronous transfers).
  void AdvanceClock(double seconds) { clock_seconds_ += seconds; }

  /// Total modeled device time since construction / ResetClock.
  double ClockSeconds() const { return clock_seconds_; }

  void ResetClock() { clock_seconds_ = 0; }

  uint64_t kernel_launches() const { return kernel_launches_; }

  /// Accumulated launch statistics per kernel label, for the observability
  /// registry's `gknn_kernel_*{kernel="..."}` gauges.
  struct KernelTotals {
    uint64_t launches = 0;
    uint64_t iterations = 0;
    double modeled_seconds = 0;
  };

  const std::map<std::string, KernelTotals, std::less<>>& kernel_totals()
      const {
    return kernel_totals_;
  }

  /// Host wall time spent *executing kernels functionally* (the simulation
  /// itself). A real deployment runs this work on the device, so callers
  /// that measure their own CPU time subtract the delta of this counter to
  /// avoid billing simulation overhead as host work.
  double sim_wall_seconds() const { return sim_wall_seconds_; }

  void AddSimWallSeconds(double seconds) { sim_wall_seconds_ += seconds; }

  // --- Hazard checking ------------------------------------------------------

  /// Whether DeviceBuffers on this device carry shadow memory.
  bool hazard_check() const { return config_.hazard_check; }

  /// The current sync epoch. Accesses by distinct threads within one epoch
  /// are concurrent; a kernel boundary, an iteration barrier, or an
  /// explicit Sync() separates epochs — mirroring CUDA's happens-before
  /// edges (kernel launches on one stream are ordered; __syncthreads()
  /// orders accesses within a kernel).
  uint64_t epoch() const { return epoch_; }

  /// Advances the sync epoch, like cudaDeviceSynchronize: every access
  /// before the call happens-before every access after it.
  void Sync() { ++epoch_; }

  /// Marks the start of a labeled kernel so hazard reports can name it.
  /// Launch/LaunchIterative/LaunchWarps call this; kernels built from raw
  /// loops may call it directly.
  void BeginKernel(std::string_view label) {
    current_kernel_ = label;
    launch_hazard_base_ = hazard_count_;
  }

  /// Hazards recorded since the matching BeginKernel.
  uint32_t KernelHazards() const {
    return static_cast<uint32_t>(hazard_count_ - launch_hazard_base_);
  }

  /// Called by DeviceBuffer's checked accessors: records the access in the
  /// buffer's shadow and files a HazardRecord on conflict.
  void RecordAccess(ShadowMemory* shadow, std::string_view buffer_name,
                    size_t index, uint32_t owner, AccessType type) {
    auto prior = shadow->Record(index, epoch_, owner, type);
    if (!prior) return;
    ++hazard_count_;
    if (hazards_.size() < config_.max_hazard_records) {
      HazardRecord record;
      record.kernel = current_kernel_;
      record.buffer = std::string(buffer_name);
      record.element = index;
      record.first_owner = prior->owner;
      record.second_owner = owner;
      record.first_access = prior->access;
      record.second_access = type;
      if (hazards_.empty()) {
        GKNN_LOG(Warning) << "data hazard detected: " << record.ToString();
      }
      hazards_.push_back(std::move(record));
    }
  }

  /// Total hazards detected since construction / ClearHazards.
  uint64_t hazard_count() const { return hazard_count_; }

  /// The recorded hazards (capped at config().max_hazard_records).
  const std::vector<HazardRecord>& hazards() const { return hazards_; }

  void ClearHazards() {
    hazards_.clear();
    hazard_count_ = 0;
    launch_hazard_base_ = 0;
  }

  /// OK when no hazard has been detected; otherwise an Internal error
  /// carrying the first hazard and the total count.
  util::Status HazardStatus() const {
    if (hazard_count_ == 0) return util::Status::OK();
    return util::Status::Internal(
        std::to_string(hazard_count_) + " data hazard(s), first: " +
        hazards_.front().ToString());
  }

  // --- Kernel launches ------------------------------------------------------

  /// Launches a data-parallel kernel: `fn(ThreadCtx&)` runs once per thread
  /// id in [0, n_threads), with an implicit barrier at the end (kernel
  /// boundary). `label` names the kernel in hazard reports. Returns the
  /// launch statistics, or the injected error when the fault schedule fails
  /// this launch — in which case the kernel body never ran and no device
  /// state changed.
  template <typename Fn>
  util::Result<KernelStats> Launch(std::string_view label, uint32_t n_threads,
                                   Fn&& fn) {
    GKNN_RETURN_NOT_OK(CheckKernelFault(label));
    const auto wall_start = std::chrono::steady_clock::now();
    BeginKernel(label);
    KernelStats stats;
    stats.threads = n_threads;
    for (uint32_t tid = 0; tid < n_threads; ++tid) {
      ThreadCtx ctx;
      ctx.thread_id = tid;
      fn(ctx);
      stats.total_ops += ctx.ops;
      if (ctx.ops > stats.max_thread_ops) stats.max_thread_ops = ctx.ops;
    }
    FinishLaunch(&stats, n_threads, /*sync_points=*/0);
    AddSimWallSeconds(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count());
    return stats;
  }

  template <typename Fn>
  util::Result<KernelStats> Launch(uint32_t n_threads, Fn&& fn) {
    return Launch("<unlabeled>", n_threads, std::forward<Fn>(fn));
  }

  /// Launches an iterative kernel with a device-wide barrier between
  /// iterations (the paper's `sync_threads()` in GPU_SDist, Alg. 5):
  /// `fn(ThreadCtx&, iter)` returns true if the thread changed any state.
  /// Runs at most `max_iters` iterations; if `stop_when_stable` is set the
  /// kernel terminates after the first iteration in which no thread made a
  /// change (a fixpoint — the paper iterates a fixed |V| times, which is the
  /// worst-case bound for Bellman-Ford; stopping at the fixpoint computes
  /// the identical result). Each barrier advances the hazard-check epoch:
  /// accesses in different iterations never conflict.
  template <typename Fn>
  util::Result<KernelStats> LaunchIterative(std::string_view label,
                                            uint32_t n_threads,
                                            uint32_t max_iters,
                                            bool stop_when_stable, Fn&& fn) {
    GKNN_RETURN_NOT_OK(CheckKernelFault(label));
    const auto wall_start = std::chrono::steady_clock::now();
    BeginKernel(label);
    KernelStats stats;
    stats.threads = n_threads;
    stats.iterations = 0;
    for (uint32_t iter = 0; iter < max_iters; ++iter) {
      ++stats.iterations;
      bool any_changed = false;
      uint64_t iter_max_ops = 0;
      for (uint32_t tid = 0; tid < n_threads; ++tid) {
        ThreadCtx ctx;
        ctx.thread_id = tid;
        const bool changed = fn(ctx, iter);
        any_changed = any_changed || changed;
        stats.total_ops += ctx.ops;
        if (ctx.ops > iter_max_ops) iter_max_ops = ctx.ops;
      }
      stats.max_thread_ops += iter_max_ops;
      Sync();  // the device-wide barrier between iterations
      if (stop_when_stable && !any_changed) break;
    }
    FinishLaunch(&stats, n_threads, /*sync_points=*/stats.iterations,
                 /*synced=*/true);
    AddSimWallSeconds(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - wall_start)
                          .count());
    return stats;
  }

  template <typename Fn>
  util::Result<KernelStats> LaunchIterative(uint32_t n_threads,
                                            uint32_t max_iters,
                                            bool stop_when_stable, Fn&& fn) {
    return LaunchIterative("<unlabeled>", n_threads, max_iters,
                           stop_when_stable, std::forward<Fn>(fn));
  }

  /// Closes a launch executed outside Launch/LaunchIterative (LaunchWarps):
  /// stamps the hazard counter into `stats`, advances the epoch (kernel
  /// boundary), and counts the launch.
  void FinishExternalLaunch(KernelStats* stats) {
    stats->hazards = KernelHazards();
    Sync();
    ++kernel_launches_;
    AccumulateKernelTotals(*stats);
  }

 private:
  void FinishLaunch(KernelStats* stats, uint32_t n_threads,
                    uint32_t sync_points, bool synced = false) {
    const uint32_t cores = config_.num_cores;
    const uint64_t waves =
        n_threads == 0 ? 1 : (n_threads + cores - 1) / cores;
    const double cycles =
        static_cast<double>(stats->max_thread_ops) * static_cast<double>(waves) +
        static_cast<double>(sync_points) * config_.cross_warp_sync_cycles;
    stats->modeled_seconds =
        config_.kernel_launch_seconds + config_.CyclesToSeconds(cycles);
    stats->hazards = KernelHazards();
    if (!synced) Sync();  // implicit barrier at the kernel boundary
    AdvanceClock(stats->modeled_seconds);
    ++kernel_launches_;
    AccumulateKernelTotals(*stats);
  }

  void AccumulateKernelTotals(const KernelStats& stats) {
    KernelTotals& totals = kernel_totals_[current_kernel_];
    ++totals.launches;
    totals.iterations += stats.iterations;
    totals.modeled_seconds += stats.modeled_seconds;
  }

  DeviceConfig config_;
  TransferLedger ledger_;
  uint64_t bytes_allocated_ = 0;
  uint64_t peak_bytes_ = 0;
  uint64_t kernel_launches_ = 0;
  double clock_seconds_ = 0;
  double sim_wall_seconds_ = 0;

  FaultInjector faults_;

  // Hazard-detector state (see docs/HAZARD_CHECKER.md).
  uint64_t epoch_ = 1;  // 0 is "never accessed" in shadow cells
  uint64_t hazard_count_ = 0;
  uint64_t launch_hazard_base_ = 0;
  std::string current_kernel_;
  std::vector<HazardRecord> hazards_;

  std::map<std::string, KernelTotals, std::less<>> kernel_totals_;
};

}  // namespace gknn::gpusim

#endif  // GKNN_GPUSIM_DEVICE_H_
