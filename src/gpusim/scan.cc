#include "gpusim/scan.h"

#include <algorithm>

namespace gknn::gpusim {

util::Result<uint32_t> ExclusiveScan(Device* device,
                                     std::span<uint32_t> values) {
  const uint32_t n = static_cast<uint32_t>(values.size());
  if (n == 0) return 0u;

  // Temporal model: Blelloch up-sweep + down-sweep, one barrier per
  // level, n/2 active threads doing one add each per level. Launched
  // before the functional pass so an injected kernel fault leaves the
  // array unmodified.
  uint32_t levels = 0;
  while ((1u << levels) < n) ++levels;
  const uint32_t half = std::max(1u, n / 2);
  GKNN_RETURN_NOT_OK(
      device
          ->LaunchIterative("ExclusiveScan", half, std::max(1u, 2 * levels),
                            /*stop_when_stable=*/false,
                            [](ThreadCtx& ctx, uint32_t) {
                              ctx.CountOps(1);
                              return true;
                            })
          .status());
  // Functional result: a sequential exclusive scan (bit-exact regardless
  // of the parallel schedule, since uint32 addition is associative).
  uint32_t running = 0;
  for (uint32_t i = 0; i < n; ++i) {
    const uint32_t v = values[i];
    values[i] = running;
    running += v;
  }
  return running;
}

}  // namespace gknn::gpusim
