#ifndef GKNN_GPUSIM_TOPK_H_
#define GKNN_GPUSIM_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/warp.h"
#include "util/logging.h"
#include "util/result.h"

namespace gknn::gpusim {

/// Device-side k-smallest selection via warp-level bitonic networks — the
/// "parallel sorting algorithm that runs in O(log rho*k) time" the paper's
/// GPU_First_k uses (§VI-B2).
///
/// Algorithm (classic GPU top-k):
///  1. split the input into blocks of width B = max(32, next_pow2(k)),
///     padded with `sentinel` (a value larger than any real one);
///  2. each block bitonic-sorts ascending in registers — every
///     compare-exchange is one ShflXor between partner lanes;
///  3. merge blocks pairwise: C[i] = min(A[i], B[B-1-i]) holds exactly the
///     B smallest of A ∪ B and is bitonic, so one final bitonic-merge
///     pass (log B stages) re-sorts it; repeat until one block remains.
///
/// The first k entries of the surviving block are the answer. Blocks wider
/// than the hardware warp pay the cross-warp synchronization penalty per
/// collective, like every bundle in this simulator.
///
/// `T` must be totally ordered by `operator<` and copyable; `values` is a
/// device-side span (contents are not modified). Propagates injected
/// kernel/transfer faults from its launches and the final result copy.
template <typename T>
util::Result<std::vector<T>> TopKSmallest(Device* device,
                                          std::span<const T> values,
                                          uint32_t k, const T& sentinel) {
  GKNN_CHECK(k > 0);
  const uint32_t n = static_cast<uint32_t>(values.size());
  if (n == 0) return std::vector<T>{};
  k = std::min(k, n);

  uint32_t width = 32;
  while (width < k) width <<= 1;

  const uint32_t n_blocks = (n + width - 1) / width;
  // Working copy in "device registers": one vector of lane values per
  // block, padded with the sentinel.
  std::vector<std::vector<T>> blocks(n_blocks, std::vector<T>(width, sentinel));
  for (uint32_t i = 0; i < n; ++i) {
    blocks[i / width][i % width] = values[i];
  }

  // Step 2: bitonic sort every block ascending, one bundle per block.
  auto bitonic_sort = [width](WarpCtx& warp, std::vector<T>& regs) {
    for (uint32_t stage = 2; stage <= width; stage <<= 1) {
      for (uint32_t step = stage >> 1; step > 0; step >>= 1) {
        std::vector<T> partner = regs;
        warp.ShflXor(partner, step);
        for (uint32_t lane = 0; lane < width; ++lane) {
          const bool ascending = (lane & stage) == 0;
          const bool upper = (lane & step) != 0;
          // The upper lane of an ascending pair keeps the max (and
          // symmetrically): adopt the partner's value exactly when it is
          // the one this lane should hold.
          const bool take_max = ascending == upper;
          const bool partner_bigger = regs[lane] < partner[lane];
          if (take_max == partner_bigger) regs[lane] = partner[lane];
        }
        warp.CountOpsPerLane(2);
      }
    }
  };
  // Final merge pass for a bitonic sequence (the stage == width phase).
  auto bitonic_merge = [width](WarpCtx& warp, std::vector<T>& regs) {
    for (uint32_t step = width >> 1; step > 0; step >>= 1) {
      std::vector<T> partner = regs;
      warp.ShflXor(partner, step);
      for (uint32_t lane = 0; lane < width; ++lane) {
        const bool upper = (lane & step) != 0;
        const bool partner_bigger = regs[lane] < partner[lane];
        if (upper == partner_bigger) regs[lane] = partner[lane];
      }
      warp.CountOpsPerLane(2);
    }
  };

  GKNN_RETURN_NOT_OK(LaunchWarps(device, "GPU_First_k/sort", n_blocks, width,
                                 [&bitonic_sort, &blocks](WarpCtx& warp) {
                                   bitonic_sort(warp, blocks[warp.warp_id()]);
                                 })
                         .status());

  // Step 3: pairwise reduction rounds.
  uint32_t live = n_blocks;
  while (live > 1) {
    const uint32_t pairs = live / 2;
    auto merge_stats = LaunchWarps(
        device, "GPU_First_k/merge", pairs, width,
        [&blocks, &bitonic_merge, width](WarpCtx& warp) {
      std::vector<T>& a = blocks[2 * warp.warp_id()];
      std::vector<T>& b = blocks[2 * warp.warp_id() + 1];
      // C[i] = min(A[i], B[width-1-i]): the B smallest of A ∪ B, bitonic.
      for (uint32_t lane = 0; lane < width; ++lane) {
        const T& mirrored = b[width - 1 - lane];
        if (mirrored < a[lane]) a[lane] = mirrored;
      }
      warp.CountOpsPerLane(2);
      bitonic_merge(warp, a);
    });
    GKNN_RETURN_NOT_OK(merge_stats.status());
    // Compact the surviving blocks to the front (guarding self-moves).
    for (uint32_t p = 1; p < pairs; ++p) blocks[p] = std::move(blocks[2 * p]);
    if (live % 2 == 1 && pairs != live - 1) {
      blocks[pairs] = std::move(blocks[live - 1]);
    }
    live = pairs + (live % 2);
  }

  // The k smallest come back to the host.
  GKNN_RETURN_NOT_OK(device->CheckTransferFault("GPU_First_k/result"));
  device->ledger().RecordD2H(k * sizeof(T), device->config());
  std::vector<T> result(blocks[0].begin(), blocks[0].begin() + k);
  // Drop padding if fewer than k real values existed (k was clamped to n,
  // but sentinels can still surface when the caller's sentinel compares
  // equal to real data — callers pass a strictly-larger sentinel).
  return result;
}

}  // namespace gknn::gpusim

#endif  // GKNN_GPUSIM_TOPK_H_
