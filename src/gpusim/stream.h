#ifndef GKNN_GPUSIM_STREAM_H_
#define GKNN_GPUSIM_STREAM_H_

#include <algorithm>
#include <cstdint>

#include "gpusim/device.h"
#include "gpusim/device_buffer.h"

namespace gknn::gpusim {

/// A pipelined command stream: copies run on the copy engine, kernels on
/// the compute engine, and a kernel only starts once every copy enqueued
/// before it has landed. This models the paper's pipelined message-list
/// transfer (§V-A: "let the GPU process and receive messages
/// simultaneously").
///
/// Functional effects (the memcpy, the kernel's results) happen eagerly at
/// enqueue time; only the *modeled time* is deferred and overlapped. That
/// is sound because the consumers of a chunk's data are the kernels
/// enqueued after it, matching the dependency structure the timeline
/// enforces.
class Stream {
 public:
  /// `pipelined = false` degrades to a blocking command queue (copies and
  /// kernels strictly serialize), used by the pipeline ablation benchmark.
  explicit Stream(Device* device, bool pipelined = true)
      : device_(device), pipelined_(pipelined) {}

  Device* device() const { return device_; }

  /// Enqueues a host-to-device copy of `bytes` on the copy engine and
  /// records it in the ledger. Fails (without recording anything) when the
  /// fault schedule fires on the copy.
  util::Status EnqueueH2D(uint64_t bytes) {
    GKNN_RETURN_NOT_OK(device_->CheckTransferFault("stream H2D"));
    AddCopy(device_->ledger().RecordH2D(bytes, device_->config()));
    return util::Status::OK();
  }

  /// Enqueues a device-to-host copy of `bytes` on the copy engine.
  util::Status EnqueueD2H(uint64_t bytes) {
    GKNN_RETURN_NOT_OK(device_->CheckTransferFault("stream D2H"));
    AddCopy(device_->ledger().RecordD2H(bytes, device_->config()));
    return util::Status::OK();
  }

  /// Enqueues `seconds` of kernel time, dependent on all copies enqueued so
  /// far. Use with the stats of a kernel executed functionally at enqueue
  /// time (pass stats.modeled_seconds and subtract it from the device clock
  /// with MoveKernelToStream, or call EnqueueKernelSeconds directly).
  void EnqueueKernelSeconds(double seconds) {
    if (pipelined_) {
      compute_done_ = std::max(compute_done_, copy_done_) + seconds;
    } else {
      Serialize(seconds);
    }
  }

  /// Re-attributes an already-launched kernel to this stream: Launch()
  /// charged the device clock synchronously, so the charge is reversed and
  /// the duration placed on the stream's compute timeline instead.
  void MoveKernelToStream(const KernelStats& stats) {
    device_->AdvanceClock(-stats.modeled_seconds);
    EnqueueKernelSeconds(stats.modeled_seconds);
  }

  /// Completes the pipeline: returns the end-to-end modeled duration and
  /// charges it to the device clock. Resets the stream for reuse.
  double Synchronize() {
    const double total = std::max(copy_done_, compute_done_);
    device_->AdvanceClock(total);
    copy_done_ = 0;
    compute_done_ = 0;
    return total;
  }

 private:
  void AddCopy(double seconds) {
    if (pipelined_) {
      copy_done_ += seconds;
    } else {
      Serialize(seconds);
    }
  }

  void Serialize(double seconds) {
    const double t = std::max(copy_done_, compute_done_) + seconds;
    copy_done_ = compute_done_ = t;
  }

  Device* device_;
  bool pipelined_;
  double copy_done_ = 0;
  double compute_done_ = 0;
};

/// Uploads host data into `buf` through a stream: the bytes move eagerly
/// (so later kernels see them) while the modeled time lands on the stream's
/// copy-engine timeline instead of the device clock. The fault check runs
/// before the copy, so a failed async upload moves nothing.
template <typename T>
util::Status UploadAsync(Stream* stream, DeviceBuffer<T>* buf, const T* src,
                         size_t n, size_t offset = 0) {
  GKNN_DCHECK(buf->allocated());
  GKNN_CHECK(offset + n <= buf->size()) << "device buffer overflow";
  // Enqueue first: EnqueueH2D carries the fault check, and recording the
  // modeled time before the eager memcpy is equivalent on the timeline.
  GKNN_RETURN_NOT_OK(stream->EnqueueH2D(n * sizeof(T)));
  std::copy(src, src + n, buf->device_span().begin() + offset);
  return util::Status::OK();
}

}  // namespace gknn::gpusim

#endif  // GKNN_GPUSIM_STREAM_H_
