#ifndef GKNN_GPUSIM_DEVICE_CONFIG_H_
#define GKNN_GPUSIM_DEVICE_CONFIG_H_

#include <cstdint>
#include <string>

#include "gpusim/fault_injector.h"
#include "gpusim/hazard.h"

namespace gknn::gpusim {

/// Cost-model parameters of the simulated GPU.
///
/// The paper evaluates on an NVIDIA Quadro P2000 (1024 CUDA cores, 5 GB,
/// CUDA 9.0) attached over PCIe. This build has no physical GPU, so the
/// `gpusim` engine executes every kernel functionally on the host and
/// *models* device time with the parameters below (see DESIGN.md §2).
/// Defaults approximate the P2000. All reported "GPU time" and "transfer
/// time" in the benchmarks derive from this model; the functional results
/// (which messages survive cleaning, which distances are computed) are
/// exact.
struct DeviceConfig {
  /// Number of lanes that execute in lockstep; collectives within a warp
  /// are cheap, collectives spanning warps pay `cross_warp_sync_cycles`.
  uint32_t warp_size = 32;

  /// Total parallel cores; threads beyond this execute in additional waves.
  uint32_t num_cores = 1024;

  /// Core clock in cycles per second.
  double clock_hz = 1.37e9;

  /// Fixed host-side cost of launching any kernel, in seconds.
  double kernel_launch_seconds = 5e-6;

  /// Per-transfer fixed latency (driver + DMA setup), in seconds.
  double transfer_latency_seconds = 10e-6;

  /// PCIe throughput for host-to-device copies, bytes per second.
  double h2d_bytes_per_second = 12e9;

  /// PCIe throughput for device-to-host copies, bytes per second.
  double d2h_bytes_per_second = 12e9;

  /// Extra cycles charged per warp-collective that spans more than one
  /// warp (the paper's expensive `sync_threads` when a bundle exceeds the
  /// warp size, §VII-C1 "Optimizing 2^eta").
  uint32_t cross_warp_sync_cycles = 48;

  /// Device memory capacity. Allocations beyond this fail, which is how
  /// the reproduction of Fig. 5 omits V-Tree (G) on the USA dataset just
  /// as the paper does ("its space cost is beyond the capacity of our
  /// GPU").
  uint64_t memory_bytes = 5ull << 30;

  /// Enables the shadow-memory data-hazard detector (docs/HAZARD_CHECKER.md):
  /// DeviceBuffer's checked Load/Store/AtomicMin accessors record
  /// (owner, epoch, access type) per element and flag read-write or
  /// write-write conflicts between distinct kernel threads within one sync
  /// epoch. On by default in debug builds and under the test suite
  /// (GKNN_HAZARD_CHECK=1 in the environment); off in release benchmarks.
  bool hazard_check = DefaultHazardCheck();

  /// Cap on stored HazardRecords per device; hazards beyond it are still
  /// counted (a racy kernel can trip once per element per round).
  uint32_t max_hazard_records = 64;

  /// Fault-injection schedule (docs/ROBUSTNESS.md), e.g.
  /// "alloc:p=0.05;kernel:after=100;transfer:every=64". Empty = no faults.
  /// Defaults to the GKNN_FAULTS environment variable so the CI fault
  /// matrix can drive the whole test suite without code changes.
  std::string faults = DefaultFaultSpec();

  /// Seed for probabilistic fault modes; a `seed=N` clause in the spec
  /// overrides it.
  uint64_t fault_seed = 0x5eed;

  /// Converts a cycle count to modeled seconds.
  double CyclesToSeconds(double cycles) const { return cycles / clock_hz; }
};

}  // namespace gknn::gpusim

#endif  // GKNN_GPUSIM_DEVICE_CONFIG_H_
