#ifndef GKNN_GPUSIM_TRANSFER_LEDGER_H_
#define GKNN_GPUSIM_TRANSFER_LEDGER_H_

#include <cstdint>

#include "gpusim/device_config.h"

namespace gknn::gpusim {

/// Records every host<->device copy made through a Device, with the modeled
/// PCIe time of each. Figure 10(c)/(d) of the paper ("DRAM-GPU transfer
/// costs") are regenerated directly from this ledger.
class TransferLedger {
 public:
  struct Totals {
    uint64_t h2d_bytes = 0;
    uint64_t d2h_bytes = 0;
    uint64_t h2d_count = 0;
    uint64_t d2h_count = 0;
    double h2d_seconds = 0;
    double d2h_seconds = 0;

    uint64_t total_bytes() const { return h2d_bytes + d2h_bytes; }
    double total_seconds() const { return h2d_seconds + d2h_seconds; }
  };

  /// Records a host-to-device copy and returns its modeled duration.
  double RecordH2D(uint64_t bytes, const DeviceConfig& config) {
    const double seconds = config.transfer_latency_seconds +
                           static_cast<double>(bytes) /
                               config.h2d_bytes_per_second;
    totals_.h2d_bytes += bytes;
    totals_.h2d_count += 1;
    totals_.h2d_seconds += seconds;
    return seconds;
  }

  /// Records a device-to-host copy and returns its modeled duration.
  double RecordD2H(uint64_t bytes, const DeviceConfig& config) {
    const double seconds = config.transfer_latency_seconds +
                           static_cast<double>(bytes) /
                               config.d2h_bytes_per_second;
    totals_.d2h_bytes += bytes;
    totals_.d2h_count += 1;
    totals_.d2h_seconds += seconds;
    return seconds;
  }

  const Totals& totals() const { return totals_; }
  void Reset() { totals_ = Totals{}; }

 private:
  Totals totals_;
};

}  // namespace gknn::gpusim

#endif  // GKNN_GPUSIM_TRANSFER_LEDGER_H_
