#ifndef GKNN_GPUSIM_TRANSFER_LEDGER_H_
#define GKNN_GPUSIM_TRANSFER_LEDGER_H_

#include <atomic>
#include <cstdint>

#include "gpusim/device_config.h"

namespace gknn::gpusim {

/// Records every host<->device copy made through a Device, with the modeled
/// PCIe time of each. Figure 10(c)/(d) of the paper ("DRAM-GPU transfer
/// costs") are regenerated directly from this ledger.
///
/// Thread-safe: concurrent queries each run their own transfers, so the
/// tallies are relaxed atomics and totals() returns a value snapshot (each
/// field individually exact; the set is only mutually consistent when no
/// transfer is in flight).
class TransferLedger {
 public:
  struct Totals {
    uint64_t h2d_bytes = 0;
    uint64_t d2h_bytes = 0;
    uint64_t h2d_count = 0;
    uint64_t d2h_count = 0;
    double h2d_seconds = 0;
    double d2h_seconds = 0;

    uint64_t total_bytes() const { return h2d_bytes + d2h_bytes; }
    double total_seconds() const { return h2d_seconds + d2h_seconds; }
  };

  /// Records a host-to-device copy and returns its modeled duration.
  double RecordH2D(uint64_t bytes, const DeviceConfig& config) {
    const double seconds = config.transfer_latency_seconds +
                           static_cast<double>(bytes) /
                               config.h2d_bytes_per_second;
    h2d_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    h2d_count_.fetch_add(1, std::memory_order_relaxed);
    AtomicAdd(&h2d_seconds_, seconds);
    return seconds;
  }

  /// Records a device-to-host copy and returns its modeled duration.
  double RecordD2H(uint64_t bytes, const DeviceConfig& config) {
    const double seconds = config.transfer_latency_seconds +
                           static_cast<double>(bytes) /
                               config.d2h_bytes_per_second;
    d2h_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    d2h_count_.fetch_add(1, std::memory_order_relaxed);
    AtomicAdd(&d2h_seconds_, seconds);
    return seconds;
  }

  Totals totals() const {
    Totals t;
    t.h2d_bytes = h2d_bytes_.load(std::memory_order_relaxed);
    t.d2h_bytes = d2h_bytes_.load(std::memory_order_relaxed);
    t.h2d_count = h2d_count_.load(std::memory_order_relaxed);
    t.d2h_count = d2h_count_.load(std::memory_order_relaxed);
    t.h2d_seconds = h2d_seconds_.load(std::memory_order_relaxed);
    t.d2h_seconds = d2h_seconds_.load(std::memory_order_relaxed);
    return t;
  }

  void Reset() {
    h2d_bytes_.store(0, std::memory_order_relaxed);
    d2h_bytes_.store(0, std::memory_order_relaxed);
    h2d_count_.store(0, std::memory_order_relaxed);
    d2h_count_.store(0, std::memory_order_relaxed);
    h2d_seconds_.store(0, std::memory_order_relaxed);
    d2h_seconds_.store(0, std::memory_order_relaxed);
  }

 private:
  static void AtomicAdd(std::atomic<double>* target, double value) {
    double current = target->load(std::memory_order_relaxed);
    while (!target->compare_exchange_weak(current, current + value,
                                          std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> h2d_bytes_{0};
  std::atomic<uint64_t> d2h_bytes_{0};
  std::atomic<uint64_t> h2d_count_{0};
  std::atomic<uint64_t> d2h_count_{0};
  std::atomic<double> h2d_seconds_{0};
  std::atomic<double> d2h_seconds_{0};
};

}  // namespace gknn::gpusim

#endif  // GKNN_GPUSIM_TRANSFER_LEDGER_H_
