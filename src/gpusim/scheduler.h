#ifndef GKNN_GPUSIM_SCHEDULER_H_
#define GKNN_GPUSIM_SCHEDULER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "gpusim/device_set.h"
#include "util/lockdep.h"

namespace gknn::gpusim {

/// Placement policy knobs (docs/GPU_SIMULATION.md "Multi-device").
struct SchedulerOptions {
  /// Soft per-device concurrency target: the modeled analogue of the
  /// number of overlapping streams one device sustains. Acquire never
  /// blocks — when every device is at capacity the least-loaded one is
  /// oversubscribed (extra leases just queue on the device's modeled
  /// timeline, like extra streams on a real GPU).
  uint32_t streams_per_device = 4;
  /// Consecutive device errors that mark a device unhealthy; the
  /// scheduler then routes around it (its fault domain is considered
  /// down) until a probe succeeds.
  uint32_t failure_threshold = 2;
  /// While any device is unhealthy, every Nth Acquire leases it anyway as
  /// a probe — a recovered device (cleared fault spec) rejoins the rotation
  /// without an explicit revive call.
  uint32_t probe_interval = 8;
};

/// Per-device placement counters (snapshot via Scheduler::device_stats).
struct DeviceSchedStats {
  uint64_t leases = 0;          // Acquire decisions that picked this device
  uint64_t probes = 0;          // leases granted while unhealthy (probes)
  uint64_t device_errors = 0;   // failures reported against this device
  uint32_t outstanding = 0;     // leases currently live
  bool unhealthy = false;       // routed around until a probe succeeds
};

/// The multi-stream scheduler: places phase work (cleaning batches and
/// query GPU pipelines) onto the devices of a DeviceSet.
///
/// One Acquire = one lease = one stream's worth of work on the chosen
/// device. The policy is least-outstanding-first with the modeled device
/// clock as the tie-break — the LPT intuition the old modeled gate used,
/// but applied online to real work: the busiest device (most live leases,
/// then most accumulated modeled seconds) is avoided, so concurrent
/// queries spread across the set and the per-device clocks advance evenly.
/// Results do not depend on placement (every device computes bit-exact
/// host-functional kernels), which is what test_scheduler_differential
/// proves; placement only shapes the modeled timelines.
///
/// Health tracking mirrors QueryServer's circuit breaker one level down:
/// failure_threshold consecutive device errors (reported by the caller via
/// ReportResult) take a device out of rotation; every probe_interval-th
/// Acquire leases an unhealthy device as a probe, and one success restores
/// it. With every device unhealthy Acquire still returns a lease (the
/// caller's own CPU fallback is the last line of defense, not the
/// scheduler's).
///
/// Thread-safety: all methods may race freely. Internal state is guarded
/// by a leaf mutex (gpusim.scheduler, rank 903 — see docs/CONCURRENCY.md);
/// nothing else is ever acquired under it.
class Scheduler {
 public:
  explicit Scheduler(DeviceSet* devices, SchedulerOptions options = {});

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// RAII grant of one stream slot on one device. Move-only; releases its
  /// slot on destruction. A default-constructed lease is empty (no
  /// device) — callers only see those after moving from a lease.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept {
      Release();
      scheduler_ = other.scheduler_;
      device_ = other.device_;
      device_index_ = other.device_index_;
      other.scheduler_ = nullptr;
      other.device_ = nullptr;
      return *this;
    }
    ~Lease() { Release(); }

    Device* device() const { return device_; }
    uint32_t device_index() const { return device_index_; }

   private:
    friend class Scheduler;
    Lease(Scheduler* scheduler, Device* device, uint32_t device_index)
        : scheduler_(scheduler),
          device_(device),
          device_index_(device_index) {}

    void Release() {
      if (scheduler_ != nullptr) scheduler_->ReleaseSlot(device_index_);
      scheduler_ = nullptr;
      device_ = nullptr;
    }

    Scheduler* scheduler_ = nullptr;
    Device* device_ = nullptr;
    uint32_t device_index_ = 0;
  };

  /// Picks a device for one stream's worth of work. Never blocks.
  Lease Acquire();

  /// Acquire for a migration retry: same policy, but `avoid_device` (the
  /// device a first attempt just failed on) is excluded from selection
  /// whenever the set holds more than one device. With a single device
  /// this degenerates to Acquire.
  Lease AcquireAvoiding(uint32_t avoid_device);

  /// Reports the outcome of work run under a lease on `device_index`:
  /// device errors feed the health tracking, successes reset it. Callers
  /// report at most once per lease (the engine reports each GPU attempt).
  void ReportResult(uint32_t device_index, bool device_error);

  uint32_t num_devices() const { return devices_->size(); }
  DeviceSet& devices() { return *devices_; }
  const SchedulerOptions& options() const { return options_; }

  DeviceSchedStats device_stats(uint32_t device_index) const;

  /// Live leases across every device (0 when quiesced).
  uint32_t total_outstanding() const;

 private:
  friend class Lease;

  /// Shared selection body; `avoid_device` >= size() means no exclusion.
  Lease AcquireImpl(uint32_t avoid_device);

  void ReleaseSlot(uint32_t device_index);

  struct DeviceState {
    uint32_t outstanding = 0;
    uint64_t leases = 0;
    uint64_t probes = 0;
    uint64_t device_errors = 0;
    uint32_t consecutive_errors = 0;
    bool unhealthy = false;
  };

  DeviceSet* devices_;
  SchedulerOptions options_;

  /// Leaf (rank 903): selection reads only this state plus the devices'
  /// atomic clocks — never another tracked lock.
  mutable util::lockdep::Mutex mu_{util::lockdep::kGpusimSchedulerClass};
  std::vector<DeviceState> states_;  // guarded by mu_
  uint64_t acquires_ = 0;            // guarded by mu_
};

}  // namespace gknn::gpusim

#endif  // GKNN_GPUSIM_SCHEDULER_H_
