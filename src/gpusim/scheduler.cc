#include "gpusim/scheduler.h"

#include "util/logging.h"

namespace gknn::gpusim {

Scheduler::Scheduler(DeviceSet* devices, SchedulerOptions options)
    : devices_(devices), options_(options), states_(devices->size()) {
  GKNN_CHECK(devices_ != nullptr);
  if (options_.streams_per_device == 0) options_.streams_per_device = 1;
  if (options_.failure_threshold == 0) options_.failure_threshold = 1;
  if (options_.probe_interval == 0) options_.probe_interval = 1;
}

Scheduler::Lease Scheduler::Acquire() {
  return AcquireImpl(static_cast<uint32_t>(states_.size()));
}

Scheduler::Lease Scheduler::AcquireAvoiding(uint32_t avoid_device) {
  // With one device there is nowhere to migrate to; avoid nothing.
  if (states_.size() <= 1) avoid_device = static_cast<uint32_t>(states_.size());
  return AcquireImpl(avoid_device);
}

Scheduler::Lease Scheduler::AcquireImpl(uint32_t avoid_device) {
  util::lockdep::MutexLock lock(mu_);
  const uint32_t n = static_cast<uint32_t>(states_.size());
  ++acquires_;

  // Probe rotation: while some device is unhealthy, every Nth acquire
  // deliberately leases the least-loaded unhealthy device so a recovered
  // fault domain rejoins without an explicit revive.
  bool any_unhealthy = false;
  for (const DeviceState& s : states_) any_unhealthy |= s.unhealthy;
  const bool probe =
      any_unhealthy && (acquires_ % options_.probe_interval == 0);

  uint32_t best = n;  // invalid
  for (uint32_t i = 0; i < n; ++i) {
    const DeviceState& s = states_[i];
    if (i == avoid_device) continue;
    if (s.unhealthy != probe && any_unhealthy) {
      // Normal rounds skip unhealthy devices; probe rounds target them.
      // (With nothing unhealthy, every device is a candidate.)
      continue;
    }
    if (best == n) {
      best = i;
      continue;
    }
    const DeviceState& b = states_[best];
    if (s.outstanding != b.outstanding) {
      if (s.outstanding < b.outstanding) best = i;
      continue;
    }
    // Tie-break on the modeled clock: the device that has accumulated the
    // least busy time is the one whose timeline frees up first (online
    // LPT). Atomic read; no lock is taken under mu_ (a leaf).
    if (devices_->device(i).ClockSeconds() <
        devices_->device(best).ClockSeconds()) {
      best = i;
    }
  }
  // All devices filtered out (every one unhealthy on a non-probe round):
  // fall back to least-outstanding over the whole set — the caller's CPU
  // fallback handles a set that is truly down.
  if (best == n) {
    for (uint32_t i = 0; i < n; ++i) {
      if (i == avoid_device && n > 1) continue;
      if (best == n || states_[i].outstanding < states_[best].outstanding) {
        best = i;
      }
    }
  }

  DeviceState& chosen = states_[best];
  ++chosen.outstanding;
  ++chosen.leases;
  if (chosen.unhealthy) ++chosen.probes;
  return Lease(this, devices_->device_ptr(best), best);
}

void Scheduler::ReleaseSlot(uint32_t device_index) {
  util::lockdep::MutexLock lock(mu_);
  DeviceState& s = states_[device_index];
  GKNN_DCHECK(s.outstanding > 0);
  if (s.outstanding > 0) --s.outstanding;
}

void Scheduler::ReportResult(uint32_t device_index, bool device_error) {
  util::lockdep::MutexLock lock(mu_);
  DeviceState& s = states_[device_index];
  if (device_error) {
    ++s.device_errors;
    ++s.consecutive_errors;
    if (s.consecutive_errors >= options_.failure_threshold) {
      s.unhealthy = true;
    }
  } else {
    s.consecutive_errors = 0;
    s.unhealthy = false;
  }
}

DeviceSchedStats Scheduler::device_stats(uint32_t device_index) const {
  util::lockdep::MutexLock lock(mu_);
  const DeviceState& s = states_[device_index];
  DeviceSchedStats out;
  out.leases = s.leases;
  out.probes = s.probes;
  out.device_errors = s.device_errors;
  out.outstanding = s.outstanding;
  out.unhealthy = s.unhealthy;
  return out;
}

uint32_t Scheduler::total_outstanding() const {
  util::lockdep::MutexLock lock(mu_);
  uint32_t total = 0;
  for (const DeviceState& s : states_) total += s.outstanding;
  return total;
}

}  // namespace gknn::gpusim
