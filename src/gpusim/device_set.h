#ifndef GKNN_GPUSIM_DEVICE_SET_H_
#define GKNN_GPUSIM_DEVICE_SET_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/device_config.h"
#include "util/logging.h"

namespace gknn::gpusim {

/// A group of simulated GPUs (docs/GPU_SIMULATION.md "Multi-device").
///
/// Each Device in the set is a complete, independent fault domain: its own
/// modeled clock, transfer ledger, memory budget, hazard shadow state, and
/// FaultInjector — device i can die (SetFaultSpec(i, "kernel:after=0"))
/// while the others keep serving. The set itself adds no synchronization:
/// Device is internally thread-safe, and the set is an immutable container
/// after construction, so any number of threads may use any device
/// concurrently. Work placement across the set is the Scheduler's job
/// (gpusim/scheduler.h).
///
/// Two construction modes:
///  - owning: `DeviceSet(n, config)` builds n fresh devices from one
///    config (each parses GKNN_FAULTS / config.faults independently, so an
///    environment fault storm arms every device with its own schedule
///    state);
///  - adopting: `DeviceSet({&dev})` wraps existing devices without taking
///    ownership — how the single-Device Build/Create entry points stay
///    source-compatible (they wrap the caller's device in a singleton
///    set). The adopted devices must outlive the set.
class DeviceSet {
 public:
  /// Owning mode: n independent devices built from `config`.
  explicit DeviceSet(uint32_t count, const DeviceConfig& config = {}) {
    GKNN_CHECK(count > 0) << "a DeviceSet needs at least one device";
    owned_.reserve(count);
    devices_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      owned_.push_back(std::make_unique<Device>(config));
      devices_.push_back(owned_.back().get());
    }
  }

  /// Adopting mode: wraps caller-owned devices (must outlive the set).
  explicit DeviceSet(std::vector<Device*> devices)
      : devices_(std::move(devices)) {
    GKNN_CHECK(!devices_.empty()) << "a DeviceSet needs at least one device";
    for (Device* d : devices_) GKNN_CHECK(d != nullptr);
  }

  DeviceSet(const DeviceSet&) = delete;
  DeviceSet& operator=(const DeviceSet&) = delete;

  uint32_t size() const { return static_cast<uint32_t>(devices_.size()); }

  Device& device(uint32_t i) {
    GKNN_DCHECK(i < devices_.size());
    return *devices_[i];
  }
  const Device& device(uint32_t i) const {
    GKNN_DCHECK(i < devices_.size());
    return *devices_[i];
  }
  Device* device_ptr(uint32_t i) { return devices_[i]; }

  // --- Aggregates over every device (monitoring / benchmarks) ------------

  /// Sum of the per-device modeled clocks: total device-busy seconds
  /// across the set.
  double TotalClockSeconds() const {
    double total = 0;
    for (const Device* d : devices_) total += d->ClockSeconds();
    return total;
  }

  /// The busiest device's modeled clock — the makespan of work placed on
  /// the set since construction / per-device ResetClock. This is what the
  /// measured multi-device throughput gate divides by
  /// (bench_batch_queries).
  double MaxClockSeconds() const {
    double max_clock = 0;
    for (const Device* d : devices_) {
      if (d->ClockSeconds() > max_clock) max_clock = d->ClockSeconds();
    }
    return max_clock;
  }

  uint64_t TotalKernelLaunches() const {
    uint64_t total = 0;
    for (const Device* d : devices_) total += d->kernel_launches();
    return total;
  }

  uint64_t TotalHazards() const {
    uint64_t total = 0;
    for (const Device* d : devices_) total += d->hazard_count();
    return total;
  }

  uint64_t TotalFaultsInjected() const {
    uint64_t total = 0;
    for (const Device* d : devices_) {
      total += d->fault_injector().total_injected();
    }
    return total;
  }

 private:
  std::vector<std::unique_ptr<Device>> owned_;  // empty in adopting mode
  std::vector<Device*> devices_;
};

}  // namespace gknn::gpusim

#endif  // GKNN_GPUSIM_DEVICE_SET_H_
