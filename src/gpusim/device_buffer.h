#ifndef GKNN_GPUSIM_DEVICE_BUFFER_H_
#define GKNN_GPUSIM_DEVICE_BUFFER_H_

#include <algorithm>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "gpusim/device.h"
#include "gpusim/hazard.h"
#include "gpusim/warp.h"
#include "util/logging.h"
#include "util/result.h"

namespace gknn::gpusim {

/// A typed allocation in simulated device memory.
///
/// Host code must move data in and out through Upload/Download, which charge
/// the device's transfer ledger and clock — exactly the discipline CUDA
/// imposes with cudaMemcpy. Kernel bodies access the contents through the
/// checked per-element accessors Load/Store/AtomicMin, which feed the
/// shadow-memory hazard detector when DeviceConfig::hazard_check is on
/// (docs/HAZARD_CHECKER.md), or through device_span() for raw host-side
/// plumbing (transfers, post-kernel readbacks).
///
/// Move-only, like a real device allocation handle.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  /// Allocates `n` elements on `device`; fails with ResourceExhausted when
  /// device memory is exhausted. `name` identifies the buffer in hazard
  /// reports.
  static util::Result<DeviceBuffer<T>> Allocate(Device* device, size_t n,
                                                std::string_view name = "") {
    GKNN_RETURN_NOT_OK(device->RegisterAlloc(n * sizeof(T)));
    DeviceBuffer<T> buf;
    buf.device_ = device;
    buf.data_.resize(n);
    buf.name_ = std::string(name);
    if (device->hazard_check()) buf.shadow_.Resize(n);
    return buf;
  }

  ~DeviceBuffer() { Release(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      device_ = other.device_;
      data_ = std::move(other.data_);
      name_ = std::move(other.name_);
      shadow_ = std::move(other.shadow_);
      other.device_ = nullptr;
      other.data_.clear();
      other.shadow_.Resize(0);
    }
    return *this;
  }

  bool allocated() const { return device_ != nullptr; }
  size_t size() const { return data_.size(); }
  uint64_t size_bytes() const { return data_.size() * sizeof(T); }
  Device* device() const { return device_; }
  const std::string& name() const { return name_; }
  void set_name(std::string_view name) { name_ = std::string(name); }

  /// Copies `n` elements from host memory into the buffer at element offset
  /// `offset`. Charged to the ledger and the device clock (a synchronous
  /// cudaMemcpyHostToDevice). Returns the modeled transfer seconds, or the
  /// injected IoError when the fault schedule fails this copy — checked
  /// before any byte moves, so a failed Upload leaves the buffer untouched.
  util::Result<double> Upload(const T* src, size_t n, size_t offset = 0) {
    GKNN_DCHECK(allocated());
    GKNN_CHECK(offset + n <= data_.size()) << "device buffer overflow";
    GKNN_RETURN_NOT_OK(
        device_->CheckTransferFault(name_.empty() ? "H2D" : name_));
    std::copy(src, src + n, data_.begin() + offset);
    const double seconds =
        device_->ledger().RecordH2D(n * sizeof(T), device_->config());
    device_->AdvanceClock(seconds);
    return seconds;
  }

  util::Result<double> Upload(const std::vector<T>& src, size_t offset = 0) {
    return Upload(src.data(), src.size(), offset);
  }

  /// Copies `n` elements at element offset `offset` back to host memory.
  /// Charged like a synchronous cudaMemcpyDeviceToHost. Fails like Upload,
  /// with the host destination untouched.
  util::Result<double> Download(T* dst, size_t n, size_t offset = 0) const {
    GKNN_DCHECK(allocated());
    GKNN_CHECK(offset + n <= data_.size()) << "device buffer overread";
    GKNN_RETURN_NOT_OK(
        device_->CheckTransferFault(name_.empty() ? "D2H" : name_));
    std::copy(data_.begin() + offset, data_.begin() + offset + n, dst);
    const double seconds =
        device_->ledger().RecordD2H(n * sizeof(T), device_->config());
    device_->AdvanceClock(seconds);
    return seconds;
  }

  util::Result<std::vector<T>> Download() const {
    std::vector<T> out(data_.size());
    if (!data_.empty()) {
      GKNN_RETURN_NOT_OK(Download(out.data(), out.size()).status());
    }
    return out;
  }

  // --- Checked kernel-side accessors ---------------------------------------
  //
  // Each access is attributed to an owner: the scalar thread for Launch
  // kernels, the whole bundle for warp kernels (lanes run in lockstep, so
  // intra-bundle conflicts are resolved by SIMT arbitration and are not
  // hazards — see docs/HAZARD_CHECKER.md). With hazard_check off these
  // compile down to the raw element access.

  /// Reads element `i` from a scalar kernel thread.
  const T& Load(const ThreadCtx& ctx, size_t i) const {
    Track(i, ctx.thread_id, AccessType::kRead);
    return data_[i];
  }

  /// Writes element `i` from a scalar kernel thread.
  void Store(const ThreadCtx& ctx, size_t i, const T& value) {
    Track(i, ctx.thread_id, AccessType::kWrite);
    data_[i] = value;
  }

  /// Atomically lowers element `i` to min(current, value) and returns the
  /// previous value — CUDA's atomicMin, the idiom parallel Bellman-Ford
  /// relaxation kernels use. Atomic accesses never conflict with each
  /// other.
  T AtomicMin(const ThreadCtx& ctx, size_t i, const T& value) {
    Track(i, ctx.thread_id, AccessType::kAtomic);
    const T previous = data_[i];
    if (value < previous) data_[i] = value;
    return previous;
  }

  /// Reads element `i` from a warp kernel (owner = the whole bundle).
  const T& Load(const WarpCtx& warp, size_t i) const {
    Track(i, warp.owner(), AccessType::kRead);
    return data_[i];
  }

  /// Writes element `i` from a warp kernel (owner = the whole bundle).
  void Store(const WarpCtx& warp, size_t i, const T& value) {
    Track(i, warp.owner(), AccessType::kWrite);
    data_[i] = value;
  }

  /// Device-side view. Only for host-side plumbing (staging transfer
  /// chunks, post-kernel readbacks) — kernel bodies use the checked
  /// accessors above so the hazard detector sees their accesses.
  std::span<T> device_span() { return std::span<T>(data_); }
  std::span<const T> device_span() const {
    return std::span<const T>(data_);
  }

  /// Frees the allocation.
  void Release() {
    if (device_ != nullptr) {
      device_->RegisterFree(size_bytes());
      device_ = nullptr;
      data_.clear();
      shadow_.Resize(0);
    }
  }

 private:
  void Track(size_t i, uint32_t owner, AccessType type) const {
    GKNN_DCHECK(i < data_.size());
    if (!shadow_.enabled()) return;
    device_->RecordAccess(&shadow_, name_, i, owner, type);
  }

  Device* device_ = nullptr;
  std::vector<T> data_;
  std::string name_;
  // Shadow cells mutate on Load too (reader tracking); accessors stay
  // const like a read is.
  mutable ShadowMemory shadow_;
};

}  // namespace gknn::gpusim

#endif  // GKNN_GPUSIM_DEVICE_BUFFER_H_
