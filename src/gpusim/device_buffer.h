#ifndef GKNN_GPUSIM_DEVICE_BUFFER_H_
#define GKNN_GPUSIM_DEVICE_BUFFER_H_

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "gpusim/device.h"
#include "util/logging.h"
#include "util/result.h"

namespace gknn::gpusim {

/// A typed allocation in simulated device memory.
///
/// Host code must move data in and out through Upload/Download, which charge
/// the device's transfer ledger and clock — exactly the discipline CUDA
/// imposes with cudaMemcpy. Kernel bodies access the contents through
/// device_span(); by convention that accessor is only used inside kernels
/// launched on the owning Device.
///
/// Move-only, like a real device allocation handle.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;

  /// Allocates `n` elements on `device`; fails with ResourceExhausted when
  /// device memory is exhausted.
  static util::Result<DeviceBuffer<T>> Allocate(Device* device, size_t n) {
    GKNN_RETURN_NOT_OK(device->RegisterAlloc(n * sizeof(T)));
    DeviceBuffer<T> buf;
    buf.device_ = device;
    buf.data_.resize(n);
    return buf;
  }

  ~DeviceBuffer() { Release(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  DeviceBuffer(DeviceBuffer&& other) noexcept { *this = std::move(other); }
  DeviceBuffer& operator=(DeviceBuffer&& other) noexcept {
    if (this != &other) {
      Release();
      device_ = other.device_;
      data_ = std::move(other.data_);
      other.device_ = nullptr;
      other.data_.clear();
    }
    return *this;
  }

  bool allocated() const { return device_ != nullptr; }
  size_t size() const { return data_.size(); }
  uint64_t size_bytes() const { return data_.size() * sizeof(T); }
  Device* device() const { return device_; }

  /// Copies `n` elements from host memory into the buffer at element offset
  /// `offset`. Charged to the ledger and the device clock (a synchronous
  /// cudaMemcpyHostToDevice). Returns the modeled transfer seconds.
  double Upload(const T* src, size_t n, size_t offset = 0) {
    GKNN_DCHECK(allocated());
    GKNN_CHECK(offset + n <= data_.size()) << "device buffer overflow";
    std::copy(src, src + n, data_.begin() + offset);
    const double seconds =
        device_->ledger().RecordH2D(n * sizeof(T), device_->config());
    device_->AdvanceClock(seconds);
    return seconds;
  }

  double Upload(const std::vector<T>& src, size_t offset = 0) {
    return Upload(src.data(), src.size(), offset);
  }

  /// Copies `n` elements at element offset `offset` back to host memory.
  /// Charged like a synchronous cudaMemcpyDeviceToHost.
  double Download(T* dst, size_t n, size_t offset = 0) const {
    GKNN_DCHECK(allocated());
    GKNN_CHECK(offset + n <= data_.size()) << "device buffer overread";
    std::copy(data_.begin() + offset, data_.begin() + offset + n, dst);
    const double seconds =
        device_->ledger().RecordD2H(n * sizeof(T), device_->config());
    device_->AdvanceClock(seconds);
    return seconds;
  }

  std::vector<T> Download() const {
    std::vector<T> out(data_.size());
    if (!data_.empty()) Download(out.data(), out.size());
    return out;
  }

  /// Device-side view. Only for use inside kernel bodies.
  std::span<T> device_span() { return std::span<T>(data_); }
  std::span<const T> device_span() const {
    return std::span<const T>(data_);
  }

  /// Frees the allocation.
  void Release() {
    if (device_ != nullptr) {
      device_->RegisterFree(size_bytes());
      device_ = nullptr;
      data_.clear();
    }
  }

 private:
  Device* device_ = nullptr;
  std::vector<T> data_;
};

}  // namespace gknn::gpusim

#endif  // GKNN_GPUSIM_DEVICE_BUFFER_H_
