#include "core/graph_grid.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace gknn::core {

using roadnet::EdgeId;
using roadnet::Graph;
using roadnet::VertexId;

util::Result<GraphGrid> GraphGrid::Build(
    const Graph* graph, uint32_t delta_c, uint32_t delta_v,
    const roadnet::PartitionOptions& partition_options) {
  if (delta_v == 0) {
    return util::Status::InvalidArgument("delta_v must be positive");
  }
  GKNN_ASSIGN_OR_RETURN(
      roadnet::GridPartition partition,
      roadnet::PartitionIntoGrid(*graph, delta_c, partition_options));

  GraphGrid grid;
  grid.graph_ = graph;
  grid.delta_v_ = delta_v;
  grid.partition_ = std::move(partition);
  const uint32_t num_cells = grid.partition_.num_cells;

  // Group vertices by cell.
  std::vector<std::vector<VertexId>> cell_vertices(num_cells);
  for (VertexId v = 0; v < graph->num_vertices(); ++v) {
    cell_vertices[grid.partition_.cell_of_vertex[v]].push_back(v);
  }

  // A vertex with d in-edges needs max(1, ceil(d / delta_v)) entries: the
  // primary plus virtual continuations (paper §III-A).
  auto slots_needed = [&](VertexId v) -> uint32_t {
    const uint32_t d = graph->InDegree(v);
    return d == 0 ? 1 : (d + delta_v - 1) / delta_v;
  };
  grid.cell_slot_offsets_.assign(num_cells + 1, 0);
  grid.cell_edge_count_.assign(num_cells, 0);
  uint32_t max_slots = 1;
  for (CellId c = 0; c < num_cells; ++c) {
    uint32_t slots = 0;
    for (VertexId v : cell_vertices[c]) slots += slots_needed(v);
    grid.cell_slot_offsets_[c + 1] = grid.cell_slot_offsets_[c] + slots;
    max_slots = std::max(max_slots, slots);
  }
  grid.max_slots_per_cell_ = max_slots;

  // Lay out the flat slot and edge arrays.
  grid.slots_.assign(grid.cell_slot_offsets_[num_cells], VertexSlot{});
  grid.edge_entries_.assign(grid.slots_.size() * delta_v, EdgeEntry{});
  for (CellId c = 0; c < num_cells; ++c) {
    uint32_t slot = 0;
    for (VertexId v : cell_vertices[c]) {
      const auto in_edges = graph->InEdgeIds(v);
      uint32_t cursor = 0;
      bool first = true;
      do {
        const uint32_t take = std::min<uint32_t>(
            delta_v, static_cast<uint32_t>(in_edges.size()) - cursor);
        VertexSlot& s = grid.slots_[grid.GlobalSlot(c, slot)];
        s.vertex = v;
        s.n_edges = static_cast<uint16_t>(take);
        s.is_virtual = first ? 0 : 1;
        for (uint32_t j = 0; j < take; ++j) {
          const EdgeId id = in_edges[cursor + j];
          const roadnet::Edge& e = graph->edge(id);
          grid.edge_entries_[grid.GlobalSlot(c, slot) * delta_v + j] =
              EdgeEntry{id, e.source, e.weight};
        }
        cursor += take;
        first = false;
        ++slot;
      } while (cursor < in_edges.size());
      grid.cell_edge_count_[c] += static_cast<uint32_t>(in_edges.size());
    }
    GKNN_DCHECK(slot == grid.NumSlots(c));
  }

  // Cell adjacency: cells sharing an edge in either direction.
  std::vector<std::set<CellId>> neighbors(num_cells);
  for (const roadnet::Edge& e : graph->edges()) {
    const CellId a = grid.partition_.cell_of_vertex[e.source];
    const CellId b = grid.partition_.cell_of_vertex[e.target];
    if (a != b) {
      neighbors[a].insert(b);
      neighbors[b].insert(a);
    }
  }
  grid.neighbor_offsets_.assign(num_cells + 1, 0);
  for (CellId c = 0; c < num_cells; ++c) {
    grid.neighbor_offsets_[c + 1] =
        grid.neighbor_offsets_[c] + static_cast<uint32_t>(neighbors[c].size());
  }
  grid.neighbor_cells_.reserve(grid.neighbor_offsets_.back());
  for (CellId c = 0; c < num_cells; ++c) {
    grid.neighbor_cells_.insert(grid.neighbor_cells_.end(),
                                neighbors[c].begin(), neighbors[c].end());
  }
  return grid;
}

void GraphGrid::AppendCellVertices(CellId c,
                                   std::vector<VertexId>* out) const {
  for (uint32_t i = 0; i < NumSlots(c); ++i) {
    const VertexSlot& s = Slot(c, i);
    if (!s.empty() && !s.is_virtual) out->push_back(s.vertex);
  }
}

uint64_t GraphGrid::MemoryBytes() const {
  return slots_.size() * sizeof(VertexSlot) +
         edge_entries_.size() * sizeof(EdgeEntry) +
         partition_.cell_of_vertex.size() * sizeof(uint32_t) +
         (cell_slot_offsets_.size() + cell_edge_count_.size() +
          neighbor_offsets_.size()) *
             sizeof(uint32_t) +
         neighbor_cells_.size() * sizeof(CellId);
}

}  // namespace gknn::core
