#include "core/message_cleaner.h"

#include <algorithm>
#include <unordered_map>

#include "core/mu.h"
#include "gpusim/device_buffer.h"
#include "gpusim/stream.h"
#include "gpusim/warp.h"
#include "util/logging.h"

namespace gknn::core {

using gpusim::Device;
using gpusim::DeviceBuffer;
using gpusim::LaunchWarps;
using gpusim::Stream;
using gpusim::ThreadCtx;
using gpusim::WarpCtx;

MessageCleaner::MessageCleaner(Device* device, const Options& options)
    : owned_set_(std::make_unique<gpusim::DeviceSet>(
          std::vector<Device*>{device})),
      devices_(owned_set_.get()),
      options_(options),
      mu_(Mu(options.eta)) {
  GKNN_CHECK(options_.delta_b > 0);
  contexts_.push_back(std::make_unique<DeviceCtx>(device));
}

MessageCleaner::MessageCleaner(gpusim::DeviceSet* devices,
                               const Options& options)
    : devices_(devices), options_(options), mu_(Mu(options.eta)) {
  GKNN_CHECK(options_.delta_b > 0);
  for (uint32_t i = 0; i < devices_->size(); ++i) {
    contexts_.push_back(std::make_unique<DeviceCtx>(devices_->device_ptr(i)));
  }
}

void MessageCleaner::SetMetricRegistry(obs::MetricRegistry* registry) {
  if (registry == nullptr) return;
  cells_cleaned_total_ = registry->GetCounter("gknn_clean_cells_total");
  cells_served_compacted_total_ =
      registry->GetCounter("gknn_clean_cells_served_compacted_total");
  buckets_shipped_total_ =
      registry->GetCounter("gknn_clean_buckets_shipped_total");
  buckets_expired_total_ =
      registry->GetCounter("gknn_clean_buckets_expired_total");
  messages_shipped_total_ =
      registry->GetCounter("gknn_clean_messages_shipped_total");
  messages_deduped_total_ =
      registry->GetCounter("gknn_clean_messages_deduped_total");
  clean_batches_total_ =
      registry->GetCounter("gknn_clean_batches_total{path=\"gpu\"}");
  clean_cpu_batches_total_ =
      registry->GetCounter("gknn_clean_batches_total{path=\"cpu\"}");
  rollbacks_total_ = registry->GetCounter("gknn_clean_rollbacks_total");
  pipeline_seconds_ =
      registry->GetHistogram("gknn_clean_pipeline_seconds");
}

void MessageCleaner::RecordOutcome(const Outcome& outcome, bool on_device) {
  if (cells_cleaned_total_ == nullptr) return;
  cells_cleaned_total_->Add(outcome.cells_cleaned);
  cells_served_compacted_total_->Add(outcome.cells_served_compacted);
  buckets_shipped_total_->Add(outcome.buckets_shipped);
  buckets_expired_total_->Add(outcome.buckets_expired);
  messages_shipped_total_->Add(outcome.messages_shipped);
  // Deduplication: every shipped message minus the one-per-object
  // survivors the batch kept.
  if (outcome.messages_shipped > outcome.latest.size()) {
    messages_deduped_total_->Add(outcome.messages_shipped -
                                 outcome.latest.size());
  }
  // A batch counts only when it performed compaction work. Batches fully
  // answered from compacted lists (the double-checked skip under the clean
  // stripe locks) are visible through cells_served_compacted instead —
  // this is what lets the clean-once property test assert "exactly one
  // batch per dirty epoch" no matter how many readers race.
  if (outcome.buckets_shipped > 0 || outcome.buckets_expired > 0) {
    (on_device ? clean_batches_total_ : clean_cpu_batches_total_)
        ->Increment();
    pipeline_seconds_->Observe(outcome.pipeline_seconds);
  }
}

util::lockdep::MultiLock MessageCleaner::LockCellStripes(
    std::span<const CellId> cells) {
  // Ascending, deduplicated stripe order makes concurrent batches with
  // overlapping stripe sets acquire in one global order: no deadlock. The
  // stripes acquire as one ranked multi-lock, and lockdep's
  // ascending-stripe rule asserts the order on every acquisition — an
  // unsorted or duplicated set is reported as a violation rather than
  // left as a latent ABBA window.
  std::vector<size_t> stripes;
  stripes.reserve(cells.size());
  for (CellId cell : cells) stripes.push_back(cell % kCleanStripes);
  std::sort(stripes.begin(), stripes.end());
  stripes.erase(std::unique(stripes.begin(), stripes.end()), stripes.end());
  std::vector<util::lockdep::Mutex*> mutexes;
  mutexes.reserve(stripes.size());
  for (size_t stripe : stripes) {
    mutexes.push_back(&clean_stripes_[stripe]);
  }
  return util::lockdep::MultiLock(std::move(mutexes));
}

util::Status MessageCleaner::EnsureCapacity(Device* device,
                                            DeviceBuffer<Message>* buffer,
                                            size_t needed,
                                            std::string_view name) {
  if (buffer->size() >= needed) return util::Status::OK();
  const size_t capacity = std::max(needed, buffer->size() * 2);
  GKNN_ASSIGN_OR_RETURN(
      *buffer, DeviceBuffer<Message>::Allocate(device, capacity, name));
  return util::Status::OK();
}

// ---- Phase 1: preprocessing (lock lists, classify buckets) ----------------
MessageCleaner::Plan MessageCleaner::Preprocess(
    std::span<const CellId> cells, double t_now, BucketArena* arena,
    std::vector<MessageList>* lists) {
  Plan plan;
  Outcome& outcome = plan.outcome;
  for (CellId cell : cells) {
    MessageList& list = (*lists)[cell];
    if (list.locked()) continue;  // under processing: skip safely
    if (list.num_messages() == 0) {
      // No cached messages means no objects in this cell (an occupied
      // cell always retains at least the compacted latest message of each
      // object): nothing to lock, ship, or rewrite.
      ++outcome.cells_cleaned;
      continue;
    }
    if (list.compacted()) {
      // The list already holds exactly one latest message per object from
      // a previous cleaning and nothing arrived since: serve it from the
      // host copy without a device round trip — unless a bucket has aged
      // past t_Delta (possible only if an object stopped reporting, a
      // contract violation the full path resolves by expiry).
      bool fresh = true;
      for (uint32_t b = list.head(); b != kInvalidBucket;
           b = arena->bucket(b).next) {
        const Bucket& bucket = arena->bucket(b);
        if (!bucket.messages.empty() &&
            bucket.latest_time < t_now - options_.t_delta) {
          fresh = false;
          break;
        }
      }
      if (fresh) {
        for (uint32_t b = list.head(); b != kInvalidBucket;
             b = arena->bucket(b).next) {
          for (const Message& m : arena->bucket(b).messages) {
            outcome.latest.push_back(m);
            outcome.latest.back().cell = cell;
          }
        }
        ++outcome.cells_cleaned;
        ++outcome.cells_served_compacted;
        continue;
      }
    }
    std::vector<uint32_t> locked_ids = list.LockForCleaning(arena);
    LockedCell lc{cell, {}, {}};
    for (uint32_t bucket_id : locked_ids) {
      const Bucket& bucket = arena->bucket(bucket_id);
      if (bucket.messages.empty() ||
          bucket.latest_time < t_now - options_.t_delta) {
        // Every message in the bucket predates t_now - t_Delta: the
        // sender contract (one update per t_Delta) guarantees newer
        // messages exist, so the bucket is discarded wholesale — at
        // commit time; freeing it now would let the arena recycle it into
        // a later cell's lock bucket, corrupting the chain a rollback
        // must restore.
        ++outcome.buckets_expired;
        lc.expired_buckets.push_back(bucket_id);
        continue;
      }
      std::vector<Message> flat = bucket.messages;
      for (Message& m : flat) m.cell = cell;
      outcome.messages_shipped += static_cast<uint32_t>(flat.size());
      plan.host_buckets.push_back(std::move(flat));
      lc.shipped_buckets.push_back(bucket_id);
    }
    plan.locked.push_back(std::move(lc));
    ++outcome.cells_cleaned;
  }
  outcome.buckets_shipped = static_cast<uint32_t>(plan.host_buckets.size());
  return plan;
}

// ---- Phase 2 (GPU): upload + GPU_X_Shuffle + GPU_Collect ------------------
util::Result<std::vector<Message>> MessageCleaner::CompactOnDevice(
    Plan* plan, DeviceCtx* ctx, const util::Deadline* deadline) {
  Device* const device = ctx->device;
  const std::vector<std::vector<Message>>& host_buckets = plan->host_buckets;

  // Dense object index over every object appearing in the batch.
  std::unordered_map<ObjectId, uint32_t> object_index;
  for (const auto& bucket : host_buckets) {
    for (const Message& m : bucket) {
      object_index.emplace(m.object,
                           static_cast<uint32_t>(object_index.size()));
    }
  }
  const uint32_t num_objects = static_cast<uint32_t>(object_index.size());
  GKNN_DCHECK(num_objects > 0);

  const uint32_t width = 1u << options_.eta;
  const uint32_t n_buckets = static_cast<uint32_t>(host_buckets.size());
  const uint32_t n_bundles = (n_buckets + width - 1) / width;

  // ---- Device memory (tables T and R, §IV-B2) ----------------------------
  GKNN_RETURN_NOT_OK(EnsureCapacity(
      device, &ctx->device_messages,
      static_cast<size_t>(n_buckets) * options_.delta_b, "L.A"));
  GKNN_RETURN_NOT_OK(EnsureCapacity(
      device, &ctx->table_t, static_cast<size_t>(num_objects) * n_bundles,
      "T"));
  GKNN_RETURN_NOT_OK(EnsureCapacity(device, &ctx->table_r, num_objects, "R"));

  // gknn-lint: allow(device-span): host-side staging writes into L.A
  // between the chunk's EnqueueH2D and its kernel; kernels use the
  // checked Load.
  auto msg_span = ctx->device_messages.device_span();
  // T starts empty: a device-side memset kernel, one entry per thread.
  // Its cost is what makes small delta_b expensive — more buckets mean
  // more bundles, hence a wider T and a slower GPU_Collect (the paper's
  // Fig. 4a left branch).
  GKNN_RETURN_NOT_OK(
      device
          ->Launch("GPU_Memset_T",
                   static_cast<uint32_t>(static_cast<size_t>(num_objects) *
                                         n_bundles),
                   [ctx](ThreadCtx& thread) {
                     ctx->table_t.Store(thread, thread.thread_id,
                                        kNullMessage);
                     thread.CountOps(1);
                   })
          .status());

  // ---- Pipelined upload + GPU_X_Shuffle (§IV-C, Alg. 3) ------------------
  Stream stream(device, options_.pipelined_transfer);
  // Chunks are rounded to whole bundles so a kernel never reads buckets
  // from a chunk that has not "arrived" yet.
  const uint32_t chunk_buckets =
      std::max(width, (options_.transfer_chunk_buckets / width) * width);

  // Checked kernel-side views of L.A and T. The hazard detector attributes
  // every access to the calling bundle; elements of T are shared only
  // *within* a bundle (each bundle owns its T column), which lockstep
  // arbitration resolves — any cross-bundle conflict is a real bug and is
  // flagged.
  auto bucket_message = [this, ctx](const WarpCtx& warp, uint32_t bucket,
                                    uint32_t i) -> Message {
    return ctx->device_messages.Load(
        warp, static_cast<size_t>(bucket) * options_.delta_b + i);
  };
  auto t_load = [ctx, n_bundles](const WarpCtx& warp, uint32_t obj_idx,
                                 uint32_t bundle) -> Message {
    return ctx->table_t.Load(
        warp, static_cast<size_t>(obj_idx) * n_bundles + bundle);
  };
  auto t_store = [ctx, n_bundles](const WarpCtx& warp, uint32_t obj_idx,
                                  uint32_t bundle, const Message& m) {
    ctx->table_t.Store(warp,
                       static_cast<size_t>(obj_idx) * n_bundles + bundle, m);
  };

  for (uint32_t first = 0; first < n_buckets; first += chunk_buckets) {
    // Per-chunk deadline checkpoint: each chunk is a bounded unit of
    // device work, so polling here bounds the whole compaction by the
    // query budget; the caller's rollback restores the lists exactly.
    if (deadline != nullptr && deadline->Expired()) {
      return util::Status::DeadlineExceeded(
          "clean: query budget exhausted between compaction chunks");
    }
    const uint32_t count = std::min(chunk_buckets, n_buckets - first);
    // Upload this chunk of buckets. Slots beyond each bucket's fill are
    // never read (the kernel carries the per-bucket counts), so no padding
    // is written.
    GKNN_RETURN_NOT_OK(stream.EnqueueH2D(static_cast<uint64_t>(count) *
                                         options_.delta_b * sizeof(Message)));
    for (uint32_t b = first; b < first + count; ++b) {
      const auto& src = host_buckets[b];
      std::copy(src.begin(), src.end(),
                msg_span.begin() + static_cast<size_t>(b) * options_.delta_b);
    }

    const uint32_t first_bundle = first / width;
    const uint32_t chunk_bundles = (count + width - 1) / width;
    auto stats = LaunchWarps(
        device, "GPU_X_Shuffle", chunk_bundles, width,
        [this, &host_buckets, &object_index, &bucket_message, &t_load,
         &t_store, first_bundle, width, n_buckets](WarpCtx& warp) {
          const uint32_t bundle = first_bundle + warp.warp_id();
          // Per-lane message cache Gamma (Alg. 3 line 1). The paper sizes
          // it eta, but a lane performs eta+1 cache steps per read round
          // and can therefore meet eta+1 distinct objects; capacity eta+1
          // (scoped to the round, i.e. to the message set S that Theorem 1
          // reasons about) guarantees no eviction, which the covering
          // argument of Theorem 2 silently relies on — an evicted newer
          // message could no longer suppress an older duplicate arriving
          // later on the same lane.
          std::vector<std::vector<Message>> cache(width);
          for (auto& c : cache) c.reserve(options_.eta + 1);

          std::vector<Message> m(width);
          // Rounds beyond the fullest bucket in this bundle would read only
          // null padding; the per-bucket counts are on the device, so the
          // kernel can skip them warp-uniformly.
          uint32_t max_fill = 0;
          for (uint32_t lane = 0; lane < width; ++lane) {
            const uint32_t bucket = bundle * width + lane;
            if (bucket < n_buckets) {
              max_fill = std::max(
                  max_fill,
                  static_cast<uint32_t>(host_buckets[bucket].size()));
            }
          }
          for (uint32_t round = max_fill; round-- > 0;) {
            for (auto& c : cache) c.clear();
            // All lanes read message `round` of their bucket (newest
            // first: Alg. 3 iterates i from delta_m - 1 down to 0).
            for (uint32_t lane = 0; lane < width; ++lane) {
              const uint32_t bucket = bundle * width + lane;
              if (bucket < n_buckets &&
                  round < host_buckets[bucket].size()) {
                m[lane] = bucket_message(warp, bucket, round);
              } else {
                m[lane] = kNullMessage;
              }
            }
            warp.CountOpsPerLane(1);

            // Cache step (Alg. 3 lines 6-9): keep the newest message of
            // each object; upgrade an outdated in-flight message to the
            // cached newer one. Runs once on the freshly read messages and
            // once after every shuffle — eta+1 times total, matching the
            // paper's §IV-D cost statement ("each thread only needs to
            // process eta + 1 = 5 messages") and the covering argument of
            // Theorem 2, which compares messages on *arrival* at a thread,
            // including arrival via the final shuffle.
            auto cache_step = [&] {
              for (uint32_t lane = 0; lane < width; ++lane) {
                if (IsNullMessage(m[lane])) continue;
                auto& gamma = cache[lane];
                auto it = std::find_if(
                    gamma.begin(), gamma.end(), [&](const Message& g) {
                      return g.object == m[lane].object;
                    });
                if (it == gamma.end()) {
                  gamma.push_back(m[lane]);  // never exceeds eta+1 entries
                } else if (it->seq < m[lane].seq) {
                  *it = m[lane];
                } else {
                  m[lane] = *it;
                }
              }
              warp.CountOpsPerLane(options_.eta);
            };

            if (options_.use_x_shuffle) {
              cache_step();
              for (uint32_t j = 1; j <= options_.eta; ++j) {
                warp.ShflXor(m, 1u << (options_.eta - j));
                cache_step();
              }
            }

            // Step 2 (Alg. 3 lines 11-13): mu(eta) lockstep
            // compare-and-write rounds into T. Reads of all lanes happen
            // before any lane's write (SIMT), so a stale write can land
            // after a newer one; the mu repeats guarantee the newest
            // message wins because at most mu distinct messages per
            // object survive the shuffles (Theorem 1).
            // Without the shuffle, up to 2^eta distinct messages of one
            // object can still be in flight, so correctness needs a write
            // round per lane — the cost the shuffle exists to avoid.
            const uint32_t write_rounds =
                options_.use_x_shuffle ? mu_ : width;
            for (uint32_t r = 0; r < write_rounds; ++r) {
              std::vector<uint8_t> want(width, 0);
              for (uint32_t lane = 0; lane < width; ++lane) {
                if (IsNullMessage(m[lane])) continue;
                const uint32_t idx = object_index.at(m[lane].object);
                const Message current = t_load(warp, idx, bundle);
                want[lane] =
                    IsNullMessage(current) || current.seq < m[lane].seq;
              }
              for (uint32_t lane = 0; lane < width; ++lane) {
                if (want[lane]) {
                  t_store(warp, object_index.at(m[lane].object), bundle,
                          m[lane]);
                }
              }
              // A compare-and-write round hits the global-memory table T;
              // charge it at global-memory cost, unlike the register-file
              // shuffle and cache steps. This is the asymmetry the
              // X-shuffle exploits: eta+1 cheap hops replace almost all of
              // the expensive table writes (paper §IV-D).
              warp.CountOpsPerLane(8);
            }
          }
        });
    GKNN_RETURN_NOT_OK(stats.status());
    stream.MoveKernelToStream(*stats);
  }

  // ---- GPU_Collect — reduce T into R, one thread per object --------------
  std::vector<std::pair<ObjectId, uint32_t>> objects(object_index.begin(),
                                                     object_index.end());
  // gknn-lint: allow(device-span): host reads R only after Synchronize;
  // GPU_Collect itself writes through the checked Store.
  auto r_span = ctx->table_r.device_span();
  auto collect_stats = device->Launch(
      "GPU_Collect", num_objects,
      [ctx, &objects, n_bundles](ThreadCtx& thread) {
        const uint32_t idx = objects[thread.thread_id].second;
        Message best = kNullMessage;
        for (uint32_t bundle = 0; bundle < n_bundles; ++bundle) {
          const Message candidate = ctx->table_t.Load(
              thread, static_cast<size_t>(idx) * n_bundles + bundle);
          if (!IsNullMessage(candidate) &&
              (IsNullMessage(best) || candidate.seq > best.seq)) {
            best = candidate;
          }
        }
        ctx->table_r.Store(thread, idx, best);
        thread.CountOps(n_bundles);
      });
  GKNN_RETURN_NOT_OK(collect_stats.status());
  stream.MoveKernelToStream(*collect_stats);
  GKNN_RETURN_NOT_OK(
      stream.EnqueueD2H(static_cast<uint64_t>(num_objects) * sizeof(Message)));
  plan->outcome.pipeline_seconds = stream.Synchronize();

  return std::vector<Message>(r_span.begin(), r_span.begin() + num_objects);
}

// ---- Phase 2 (host): the same table R by a sequential fold ----------------
std::vector<Message> MessageCleaner::CompactOnHost(const Plan& plan) const {
  std::unordered_map<ObjectId, uint32_t> index_of;
  std::vector<Message> table_r;
  for (const auto& bucket : plan.host_buckets) {
    for (const Message& m : bucket) {
      auto [it, inserted] =
          index_of.emplace(m.object, static_cast<uint32_t>(table_r.size()));
      if (inserted) {
        table_r.push_back(m);
      } else if (table_r[it->second].seq < m.seq) {
        table_r[it->second] = m;
      }
    }
  }
  return table_r;
}

// ---- Phase 3: commit — rewrite lists, free buckets ------------------------
void MessageCleaner::Commit(Plan* plan, std::span<const Message> table_r,
                            BucketArena* arena,
                            std::vector<MessageList>* lists) {
  Outcome& outcome = plan->outcome;
  std::unordered_map<CellId, std::vector<Message>> per_cell;
  for (const Message& m : table_r) {
    GKNN_DCHECK(!IsNullMessage(m));
    if (m.IsTombstone()) continue;  // object moved outside this batch
    per_cell[m.cell].push_back(m);
    outcome.latest.push_back(m);
  }
  for (const LockedCell& lc : plan->locked) {
    auto it = per_cell.find(lc.cell);
    (*lists)[lc.cell].ReplaceLockedPrefix(
        arena, it == per_cell.end() ? std::vector<Message>{} : it->second);
    for (uint32_t b : lc.shipped_buckets) arena->Free(b);
    for (uint32_t b : lc.expired_buckets) arena->Free(b);
  }
}

void MessageCleaner::Rollback(const Plan& plan, BucketArena* arena,
                              std::vector<MessageList>* lists) {
  for (const LockedCell& lc : plan.locked) {
    (*lists)[lc.cell].AbortCleaning(arena);
  }
}

util::Result<MessageCleaner::Outcome> MessageCleaner::Clean(
    std::span<const CellId> cells, double t_now, BucketArena* arena,
    std::vector<MessageList>* lists, uint32_t device_index,
    const util::Deadline* deadline) {
  GKNN_DCHECK(device_index < contexts_.size());
  DeviceCtx& ctx =
      *contexts_[device_index < contexts_.size() ? device_index : 0];
  // Held through commit/rollback: a racing batch on an overlapping stripe
  // waits here, then finds the cells compacted inside its own Preprocess
  // (the double-checked skip) and does no duplicate work.
  const auto stripe_locks = LockCellStripes(cells);
  Plan plan = Preprocess(cells, t_now, arena, lists);
  if (plan.host_buckets.empty()) {
    // Nothing to ship (only expired buckets, compacted serves, or empty
    // lists): commit clears the locked prefixes without device work.
    Commit(&plan, {}, arena, lists);
    RecordOutcome(plan.outcome, /*on_device=*/true);
    return std::move(plan.outcome);
  }
  // Each device's staging buffers (L.A, T, R) persist across batches;
  // batches placed on the same device serialize their device phase, while
  // batches on different devices of the set overlap.
  util::Result<std::vector<Message>> table_r = [&] {
    util::lockdep::MutexLock device_lock(ctx.device_mu);
    return CompactOnDevice(&plan, &ctx, deadline);
  }();
  if (!table_r.ok()) {
    Rollback(plan, arena, lists);
    if (rollbacks_total_ != nullptr) rollbacks_total_->Increment();
    return table_r.status();
  }
  Commit(&plan, *table_r, arena, lists);
  RecordOutcome(plan.outcome, /*on_device=*/true);
  return std::move(plan.outcome);
}

util::Result<MessageCleaner::Outcome> MessageCleaner::CleanCpu(
    std::span<const CellId> cells, double t_now, BucketArena* arena,
    std::vector<MessageList>* lists) {
  const auto stripe_locks = LockCellStripes(cells);
  Plan plan = Preprocess(cells, t_now, arena, lists);
  Commit(&plan, CompactOnHost(plan), arena, lists);
  RecordOutcome(plan.outcome, /*on_device=*/false);
  return std::move(plan.outcome);
}

}  // namespace gknn::core
