#ifndef GKNN_CORE_OBJECT_TABLE_H_
#define GKNN_CORE_OBJECT_TABLE_H_

#include <cstdint>
#include <unordered_map>

#include "core/types.h"
#include "roadnet/graph.h"

namespace gknn::core {

/// The object table (paper §III-B): a CPU-resident hash table mapping each
/// object id to its latest known location, o.id -> <c.id, e.id, d>.
///
/// Unlike the message lists, this table is updated eagerly on every ingest
/// (Algorithm 1 line 6), so it always reflects the newest report of every
/// object; the laziness of G-Grid lives entirely in the per-cell message
/// lists consumed by the GPU.
class ObjectTable {
 public:
  struct Entry {
    CellId cell = kInvalidCell;
    roadnet::EdgeId edge = roadnet::kInvalidEdge;
    uint32_t offset = 0;
    double time = 0;
    uint64_t seq = 0;
  };

  /// Latest entry for `o`, or nullptr if the object has never reported.
  const Entry* Find(ObjectId o) const {
    auto it = entries_.find(o);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// The cell recorded for `o` (Algorithm 1's getCellFromOT), or
  /// kInvalidCell for unknown objects.
  CellId CellOf(ObjectId o) const {
    const Entry* e = Find(o);
    return e == nullptr ? kInvalidCell : e->cell;
  }

  /// Inserts or overwrites the entry for `o` (Algorithm 1's setOT).
  void Set(ObjectId o, const Entry& entry) { entries_[o] = entry; }

  /// Removes `o` (object deregistration). Returns true if it was present.
  bool Erase(ObjectId o) { return entries_.erase(o) > 0; }

  uint32_t size() const { return static_cast<uint32_t>(entries_.size()); }

  /// Approximate resident bytes (buckets + nodes), for the Fig. 6 index
  /// size report.
  uint64_t MemoryBytes() const {
    return entries_.bucket_count() * sizeof(void*) +
           entries_.size() * (sizeof(ObjectId) + sizeof(Entry) +
                              2 * sizeof(void*));
  }

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  std::unordered_map<ObjectId, Entry> entries_;
};

}  // namespace gknn::core

#endif  // GKNN_CORE_OBJECT_TABLE_H_
