#include "core/mu.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "util/logging.h"

namespace gknn::core {

uint64_t Lambda(uint32_t eta, uint32_t i) {
  // i * C(eta+1, 2) - sum_{j=1..i} (14-j)(j-1)/2 + i.
  const uint64_t pairs = static_cast<uint64_t>(eta + 1) * eta / 2;
  uint64_t correction = 0;
  for (uint32_t j = 1; j <= i; ++j) {
    correction += static_cast<uint64_t>(14 - j) * (j - 1) / 2;
  }
  return static_cast<uint64_t>(i) * pairs - correction + i;
}

uint32_t XDistance(uint32_t a, uint32_t b) {
  const uint32_t x = a ^ b;
  // Number of maximal runs of 1s: a run starts at each bit that is 1 while
  // the next-higher bit is 0.
  return static_cast<uint32_t>(std::popcount(x & ~(x >> 1)));
}

uint32_t BruteForceMaxExclusiveSet(uint32_t eta) {
  GKNN_CHECK(eta <= 4) << "brute force limited to bundles of <= 16 threads";
  const uint32_t n = 1u << eta;
  // adjacency[v]: bitmask of threads that cover / are covered by v.
  std::vector<uint32_t> adjacent(n, 0);
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = 0; b < n; ++b) {
      if (a != b && XDistance(a, b) == 1) adjacent[a] |= 1u << b;
    }
  }
  uint32_t best = 0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    bool independent = true;
    for (uint32_t v = 0; v < n && independent; ++v) {
      if ((mask & (1u << v)) && (mask & adjacent[v])) independent = false;
    }
    if (independent) {
      best = std::max(best, static_cast<uint32_t>(std::popcount(mask)));
    }
  }
  return best;
}

uint32_t Mu(uint32_t eta) {
  if (eta <= 3) {
    // Theorem 1 requires eta > 3; for small bundles use the exact value.
    // These are constant per eta, so compute once.
    static const uint32_t kSmall[4] = {
        1,                             // eta = 0: one thread
        BruteForceMaxExclusiveSet(1),  // 2 threads
        BruteForceMaxExclusiveSet(2),  // 4 threads
        BruteForceMaxExclusiveSet(3),  // 8 threads
    };
    return kSmall[eta];
  }
  const uint64_t bundle = uint64_t{1} << eta;
  // Theorem 1 case 1. Note: lambda is not monotone in i for eta = 5 (the
  // quadratic overlap correction overtakes the linear coverage term), so
  // the case split must scan for the first i reaching 2^eta rather than
  // testing lambda(eta, 8) — lambda(5, 4) = 32 covers the bundle even
  // though lambda(5, 8) = 16 does not. This reproduces the paper's stated
  // values mu(4..7) = 2, 4, 8, 16.
  for (uint32_t i = 1; i <= 8; ++i) {
    if (Lambda(eta, i) >= bundle) return i;
  }
  return static_cast<uint32_t>(bundle - Lambda(eta, 8) + 8);
}

}  // namespace gknn::core
