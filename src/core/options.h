#ifndef GKNN_CORE_OPTIONS_H_
#define GKNN_CORE_OPTIONS_H_

#include <cstdint>

#include "obs/clock.h"
#include "roadnet/partitioner.h"

namespace gknn::core {

/// Tuning parameters of the G-Grid index. Defaults are the values the
/// paper selects in §VII-C1 for its hardware.
struct GGridOptions {
  /// delta^c — cell capacity: maximum vertices per grid cell. The paper
  /// picks 3 so a cell (3 vertices x 32 B + 8 B header = 104 B, padded to
  /// 128 B) fits one CPU cache line.
  uint32_t delta_c = 3;

  /// delta^v — vertex capacity: incoming edges stored per vertex entry;
  /// vertices with more in-edges overflow into virtual vertices in the
  /// same cell (§III-A). The paper picks 2 because all six datasets have
  /// |E|/|V| < 3.
  uint32_t delta_v = 2;

  /// delta^b — bucket capacity of the message lists. Paper Fig. 4a finds
  /// 128 optimal.
  uint32_t delta_b = 128;

  /// Bundle size is 2^eta threads. Paper Fig. 4b finds 2^eta = 32 (the
  /// warp size) optimal; larger bundles pay cross-warp synchronization.
  uint32_t eta = 5;

  /// rho — CPU/GPU workload-balance factor: candidate cells are grown
  /// until they hold at least rho * k objects (§V-A). Paper Fig. 4c finds
  /// 1.8 best on its hardware.
  double rho = 1.8;

  /// t_Delta — maximum time between two location updates of one object
  /// (§II). Message buckets whose newest message is older than
  /// t_now - t_Delta are discarded wholesale during cleaning.
  double t_delta = 10.0;

  /// Number of message-list buckets uploaded per pipelined transfer chunk
  /// (§V-A "Transferring message lists").
  uint32_t transfer_chunk_buckets = 64;

  /// Ablation switch: when false, the cleaning kernel skips the butterfly
  /// shuffles entirely and instead guarantees the newest message by
  /// brute-force compare-and-write rounds — 2^eta write attempts per
  /// message instead of the shuffle's eta+1 message hops plus mu(eta)
  /// writes (the straightforward approach §IV-D compares against).
  bool use_x_shuffle = true;

  /// Ablation switch: when false, message-list buckets are uploaded in one
  /// blocking transfer before any kernel runs, instead of the paper's
  /// pipelined chunks (§V-A).
  bool pipelined_transfer = true;

  /// Ablation switch: when true, updates are applied eagerly — every
  /// ingested message immediately triggers cleaning of its cell — i.e. the
  /// "eager" strategy of prior work that the lazy design replaces (§IV).
  bool eager_updates = false;

  /// When true (default), GPU_SDist stops at the Bellman-Ford fixpoint
  /// instead of running the full |V| worst-case iterations the paper
  /// writes; results are identical. Exposed for the ablation benchmark.
  bool sdist_early_exit = true;

  /// Partitioner settings used when building the graph grid.
  roadnet::PartitionOptions partition;

  /// Capacity of the observability ring buffer of recent QueryTraceRecords
  /// (docs/OBSERVABILITY.md). 0 keeps only metrics, no per-query traces.
  uint32_t trace_ring_capacity = 64;

  /// Clock driving the observability spans; null selects the process
  /// monotonic clock. Tests inject obs::FakeClock here to make phase
  /// timings deterministic. Not owned; must outlive the index.
  const obs::Clock* obs_clock = nullptr;
};

}  // namespace gknn::core

#endif  // GKNN_CORE_OPTIONS_H_
