#ifndef GKNN_CORE_TYPES_H_
#define GKNN_CORE_TYPES_H_

#include <cstdint>
#include <limits>

#include "roadnet/graph.h"

namespace gknn::core {

/// Identifier of a moving data object.
using ObjectId = uint32_t;
/// Identifier of a grid cell: its Z-value, which is also its position in
/// the one-dimensional cell array (paper §III-A).
using CellId = uint32_t;

inline constexpr ObjectId kInvalidObject =
    std::numeric_limits<ObjectId>::max();
inline constexpr CellId kInvalidCell = std::numeric_limits<CellId>::max();

/// A cached location update (paper §II: m = <o, e, d, t>, extended with
/// the cell id attached during cleaning preprocessing, §IV-B1).
///
/// `edge == kInvalidEdge` marks a departure tombstone — the message
/// <m.o, null, null, m.t> Algorithm 1 appends to the cell an object moved
/// away from.
///
/// `seq` is a server-side ingest sequence number that totally orders the
/// messages of the same object. Timestamps alone cannot: Algorithm 1 gives
/// a move's real message and its tombstone the same t, and the real message
/// must win. The ingest path assigns the tombstone a lower seq than the
/// message that displaced it.
struct Message {
  ObjectId object = kInvalidObject;
  roadnet::EdgeId edge = roadnet::kInvalidEdge;
  uint32_t offset = 0;
  double time = 0;
  uint64_t seq = 0;
  CellId cell = kInvalidCell;

  bool IsTombstone() const { return edge == roadnet::kInvalidEdge; }
  bool NewerThan(const Message& other) const { return seq > other.seq; }
};

/// An "empty slot" marker for fixed-size GPU message arrays.
inline constexpr Message kNullMessage{};

inline bool IsNullMessage(const Message& m) {
  return m.object == kInvalidObject;
}

/// One kNN answer entry.
struct KnnResultEntry {
  ObjectId object = kInvalidObject;
  roadnet::Distance distance = roadnet::kInfiniteDistance;

  friend bool operator==(const KnnResultEntry&, const KnnResultEntry&) =
      default;
  friend bool operator<(const KnnResultEntry& a, const KnnResultEntry& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.object < b.object;  // deterministic tie-break
  }
};

}  // namespace gknn::core

#endif  // GKNN_CORE_TYPES_H_
