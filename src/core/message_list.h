#ifndef GKNN_CORE_MESSAGE_LIST_H_
#define GKNN_CORE_MESSAGE_LIST_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/types.h"
#include "util/lockdep.h"
#include "util/logging.h"

namespace gknn::core {

inline constexpr uint32_t kInvalidBucket =
    std::numeric_limits<uint32_t>::max();

/// A message bucket (paper §III-C: zeta = <A_m, n, t, p_n>): a fixed
/// capacity array of messages, the time of its newest message, and a link
/// to the next bucket.
struct Bucket {
  std::vector<Message> messages;  // at most delta_b entries
  double latest_time = 0;
  uint32_t next = kInvalidBucket;
};

/// Pool allocator for buckets. Buckets are recycled rather than freed so
/// steady-state update ingestion performs no heap allocation, and so the
/// index can report its message-list memory exactly (Fig. 6).
///
/// Thread-safety: Alloc/Free are internally synchronized so concurrent
/// cleaning passes over disjoint cells (docs/CONCURRENCY.md) can allocate
/// simultaneously. Storage is a chain of geometrically growing chunks
/// behind release-published atomic pointers: growth never relocates
/// existing buckets, and `bucket(id)` is a wait-free index (bit math plus
/// one acquire load) so the hot cleaning loops never touch the pool lock.
/// Bucket *contents* are not protected here — a bucket belongs to exactly
/// one cell's list, and the owning cell's clean stripe lock (or the
/// server's exclusive update lock) serializes access to it. MemoryBytes
/// reads bucket capacities and must only run while list mutations are
/// excluded (the server snapshots hold the exclusive lock).
class BucketArena {
 public:
  explicit BucketArena(uint32_t delta_b) : delta_b_(delta_b) {}

  ~BucketArena() {
    for (auto& chunk : chunks_) {
      delete[] chunk.load(std::memory_order_relaxed);
    }
  }

  BucketArena(const BucketArena&) = delete;
  BucketArena& operator=(const BucketArena&) = delete;

  uint32_t delta_b() const { return delta_b_; }

  /// Returns an empty bucket's index. Physical storage grows on demand up
  /// to the delta_b logical capacity, so a bucket holding two messages
  /// costs two messages of memory (the paper's space analysis counts
  /// cached messages, O(f_Delta * |O|), not reserved slots).
  uint32_t Alloc() {
    uint32_t id;
    {
      util::lockdep::MutexLock lock(mu_);
      if (!free_list_.empty()) {
        id = free_list_.back();
        free_list_.pop_back();
      } else {
        id = num_buckets_;
        const uint32_t chunk = ChunkOf(id);
        if (chunks_[chunk].load(std::memory_order_relaxed) == nullptr) {
          chunks_[chunk].store(new Bucket[ChunkSize(chunk)],
                               std::memory_order_release);
        }
        ++num_buckets_;
      }
    }
    // The slot is now exclusively ours and chunks never move, so the
    // reset needs no lock.
    Bucket& b = bucket(id);
    b.messages.clear();
    b.latest_time = 0;
    b.next = kInvalidBucket;
    return id;
  }

  void Free(uint32_t id) {
    util::lockdep::MutexLock lock(mu_);
    free_list_.push_back(id);
  }

  /// Stable reference to a bucket, wait-free: any id obtained from Alloc
  /// (directly or through a list head published under a stripe lock) sees
  /// its chunk pointer via the release store that preceded the id's
  /// existence.
  Bucket& bucket(uint32_t id) {
    const uint32_t adjusted = id + kFirstChunkSize;
    const uint32_t high =
        31 - static_cast<uint32_t>(std::countl_zero(adjusted));
    const uint32_t chunk = high - kFirstChunkLog2;
    GKNN_DCHECK(chunk < kNumChunks);
    if (chunk >= kNumChunks) __builtin_unreachable();
    return chunks_[chunk].load(
        std::memory_order_acquire)[adjusted - (1u << high)];
  }
  const Bucket& bucket(uint32_t id) const {
    return const_cast<BucketArena*>(this)->bucket(id);
  }

  uint32_t num_buckets() const {
    util::lockdep::MutexLock lock(mu_);
    return num_buckets_;
  }
  uint32_t num_free() const {
    util::lockdep::MutexLock lock(mu_);
    return static_cast<uint32_t>(free_list_.size());
  }

  /// Bytes held by all buckets (live and pooled). Requires mutation
  /// quiescence (see class comment).
  uint64_t MemoryBytes() const {
    util::lockdep::MutexLock lock(mu_);
    uint64_t bytes = uint64_t{num_buckets_} * sizeof(Bucket) +
                     free_list_.size() * sizeof(uint32_t);
    for (uint32_t id = 0; id < num_buckets_; ++id) {
      bytes += bucket(id).messages.capacity() * sizeof(Message);
    }
    return bytes;
  }

 private:
  // Chunk c holds kFirstChunkSize << c buckets, so 23 chunks cover every
  // representable id while keeping the smallest allocation at 512.
  static constexpr uint32_t kFirstChunkLog2 = 9;
  static constexpr uint32_t kFirstChunkSize = 1u << kFirstChunkLog2;
  static constexpr uint32_t kNumChunks = 32 - kFirstChunkLog2;

  static uint32_t ChunkOf(uint32_t id) {
    const uint32_t adjusted = id + kFirstChunkSize;
    return 31 - static_cast<uint32_t>(std::countl_zero(adjusted)) -
           kFirstChunkLog2;
  }
  static uint32_t ChunkSize(uint32_t chunk) {
    return kFirstChunkSize << chunk;
  }

  uint32_t delta_b_;
  /// core.arena in the lock order: taken under the clean stripe locks
  /// (bucket recycling during commit) and under the server's exclusive
  /// drain (appends); never held across another acquisition.
  mutable util::lockdep::Mutex mu_{util::lockdep::kCoreArenaClass};
  uint32_t num_buckets_ = 0;
  std::array<std::atomic<Bucket*>, kNumChunks> chunks_ = {};
  std::vector<uint32_t> free_list_;
};

/// The per-cell message list (paper §III-C): a chain of buckets with head
/// (p_h), tail (p_t), and lock (p_l) pointers. Buckets strictly before p_l
/// are locked for GPU cleaning; new messages keep appending at the tail,
/// which is at or after p_l.
///
/// Not internally synchronized: a list is protected by its cell's clean
/// stripe lock in MessageCleaner, or by the server's exclusive update
/// lock for Append (docs/CONCURRENCY.md).
class MessageList {
 public:
  bool empty() const { return head_ == kInvalidBucket; }
  uint32_t head() const { return head_; }
  uint32_t tail() const { return tail_; }
  uint32_t lock_boundary() const { return lock_; }
  bool locked() const { return lock_ != kInvalidBucket; }
  uint32_t num_messages() const { return num_messages_; }

  /// True when the list holds exactly the result of its last cleaning pass
  /// (one latest message per object, nothing appended since). Such a list
  /// can be served to a query without another GPU round trip.
  bool compacted() const { return compacted_; }

  /// Appends a message at the tail, opening a new bucket when the tail is
  /// full (Algorithm 1's append).
  void Append(BucketArena* arena, const Message& m) {
    if (tail_ == kInvalidBucket ||
        arena->bucket(tail_).messages.size() >= arena->delta_b()) {
      const uint32_t fresh = arena->Alloc();
      if (tail_ == kInvalidBucket) {
        head_ = tail_ = fresh;
      } else {
        arena->bucket(tail_).next = fresh;
        tail_ = fresh;
      }
    }
    Bucket& b = arena->bucket(tail_);
    b.messages.push_back(m);
    // Freshness stamp is the max, not the last: callers like the striped
    // server inbox only guarantee per-object chronological order, so a
    // cross-object append may carry an older timestamp — and expiry must
    // only drop a bucket when *every* message in it is stale.
    b.latest_time = std::max(b.latest_time, m.time);
    ++num_messages_;
    compacted_ = false;
  }

  /// Begins a cleaning pass (paper §IV-B1): appends a fresh empty bucket,
  /// points p_l at it, and returns the ids of the now-locked buckets
  /// (everything before p_l) in chronological order. The caller filters
  /// expired buckets and ships the rest to the GPU. Must not be called on
  /// a list that is already locked.
  std::vector<uint32_t> LockForCleaning(BucketArena* arena) {
    GKNN_DCHECK(!locked());
    const uint32_t fresh = arena->Alloc();
    std::vector<uint32_t> locked_buckets;
    for (uint32_t b = head_; b != kInvalidBucket; b = arena->bucket(b).next) {
      locked_buckets.push_back(b);
    }
    if (tail_ == kInvalidBucket) {
      head_ = tail_ = fresh;
    } else {
      arena->bucket(tail_).next = fresh;
      tail_ = fresh;
    }
    lock_ = fresh;
    return locked_buckets;
  }

  /// Aborts a cleaning pass begun by LockForCleaning, restoring the list
  /// to its pre-lock shape: when the fresh bucket appended by
  /// LockForCleaning is still empty and still the tail (nothing arrived
  /// while the aborted cleaning ran), it is unlinked and returned to the
  /// arena; otherwise the appended messages stay and only the lock marker
  /// is dropped. Either way no message is lost and the previously locked
  /// buckets remain chained exactly as they were — the rollback arm of the
  /// cleaner's transactional guarantee (docs/ROBUSTNESS.md).
  void AbortCleaning(BucketArena* arena) {
    GKNN_DCHECK(locked());
    const uint32_t lock_bucket = lock_;
    lock_ = kInvalidBucket;
    if (!arena->bucket(lock_bucket).messages.empty() ||
        tail_ != lock_bucket) {
      return;  // messages arrived during cleaning: keep the bucket
    }
    if (head_ == lock_bucket) {
      head_ = tail_ = kInvalidBucket;
    } else {
      uint32_t prev = head_;
      // gknn-check: allow(deadline-checkpoint): bounded walk of this
      // cell's own bucket chain under its stripe lock — the chain length
      // is capped by the cell's message count, and the rollback must
      // complete to keep the list consistent.
      while (arena->bucket(prev).next != lock_bucket) {
        prev = arena->bucket(prev).next;
      }
      arena->bucket(prev).next = kInvalidBucket;
      tail_ = prev;
    }
    arena->Free(lock_bucket);
  }

  /// Completes a cleaning pass: the locked prefix is replaced by
  /// `compacted` (the latest message of every object still in this cell,
  /// from the result table R), and the buckets appended during cleaning
  /// are preserved after it. The previously locked buckets are returned to
  /// the arena by the caller (it may have dropped some as expired already).
  void ReplaceLockedPrefix(BucketArena* arena,
                           const std::vector<Message>& compacted) {
    GKNN_DCHECK(locked());
    // Messages in the suffix (from p_l onward) stay; count them.
    uint32_t suffix_messages = 0;
    for (uint32_t b = lock_; b != kInvalidBucket; b = arena->bucket(b).next) {
      suffix_messages += static_cast<uint32_t>(arena->bucket(b).messages.size());
    }
    // Build the compacted prefix.
    uint32_t new_head = kInvalidBucket;
    uint32_t new_tail = kInvalidBucket;
    for (const Message& m : compacted) {
      if (new_tail == kInvalidBucket ||
          arena->bucket(new_tail).messages.size() >= arena->delta_b()) {
        const uint32_t fresh = arena->Alloc();
        if (new_tail == kInvalidBucket) {
          new_head = new_tail = fresh;
        } else {
          arena->bucket(new_tail).next = fresh;
          new_tail = fresh;
        }
      }
      Bucket& b = arena->bucket(new_tail);
      b.messages.push_back(m);
      // Compacted messages are grouped by object, not time-ordered, so the
      // bucket's freshness stamp must be the max (expiry only drops a
      // bucket when *every* message in it is stale).
      b.latest_time = std::max(b.latest_time, m.time);
    }
    if (new_head == kInvalidBucket) {
      head_ = lock_;
    } else {
      arena->bucket(new_tail).next = lock_;
      head_ = new_head;
    }
    // tail_ unchanged (it is at or after lock_).
    num_messages_ = static_cast<uint32_t>(compacted.size()) + suffix_messages;
    lock_ = kInvalidBucket;
    // The list is in canonical compacted form unless messages arrived
    // while the cleaning was in flight.
    compacted_ = suffix_messages == 0;
  }

 private:
  uint32_t head_ = kInvalidBucket;
  uint32_t tail_ = kInvalidBucket;
  uint32_t lock_ = kInvalidBucket;
  uint32_t num_messages_ = 0;
  bool compacted_ = false;
};

}  // namespace gknn::core

#endif  // GKNN_CORE_MESSAGE_LIST_H_
