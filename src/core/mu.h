#ifndef GKNN_CORE_MU_H_
#define GKNN_CORE_MU_H_

#include <cstdint>

namespace gknn::core {

/// lambda(eta, i) from Theorem 1: a lower bound on the number of threads
/// covered by an exclusive set of size i in a bundle of 2^eta threads.
/// lambda(eta, i) = i * C(eta+1, 2) - sum_{j=1..i} (14-j)(j-1)/2 + i.
uint64_t Lambda(uint32_t eta, uint32_t i);

/// mu(eta) from Theorem 1: the maximum number of distinct messages of one
/// object that can survive the eta butterfly shuffles of GPU_X_Shuffle in a
/// bundle of 2^eta threads. Each thread therefore only needs to attempt its
/// write to the intermediate table mu(eta) times (paper §IV-D).
///
/// The closed form holds for eta > 3 (paper Theorem 1); for eta <= 3 this
/// returns the exact value computed by brute force over the cover relation
/// (Lemma 1: alpha covers beta iff alpha XOR beta is a single run of 1s),
/// so every bundle size the benchmarks sweep (2^eta = 4 ... 128) is
/// supported.
///
/// Reference values: mu(4)=2, mu(5)=4, mu(6)=8, mu(7)=16.
uint32_t Mu(uint32_t eta);

/// The x-distance of Definition 2: the number of runs of 1s in the binary
/// representation of a XOR b. Exposed for the property tests of the
/// shuffle bound.
uint32_t XDistance(uint32_t a, uint32_t b);

/// Exact maximum exclusive-set size for a bundle of 2^eta threads, by
/// exhaustive search over the cover graph. Only feasible for small eta
/// (<= 4); used by tests to validate Mu().
uint32_t BruteForceMaxExclusiveSet(uint32_t eta);

}  // namespace gknn::core

#endif  // GKNN_CORE_MU_H_
