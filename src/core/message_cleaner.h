#ifndef GKNN_CORE_MESSAGE_CLEANER_H_
#define GKNN_CORE_MESSAGE_CLEANER_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include <memory>

#include "core/message_list.h"
#include "core/types.h"
#include "gpusim/device.h"
#include "gpusim/device_buffer.h"
#include "gpusim/device_set.h"
#include "obs/metrics.h"
#include "util/deadline.h"
#include "util/lockdep.h"
#include "util/result.h"

namespace gknn::core {

/// GPU message cleaning (paper §IV, Algorithms 2 and 3).
///
/// Given a set of cells, the cleaner:
///  1. locks each cell's message list and discards buckets whose newest
///     message predates t_now - t_Delta (preprocessing, §IV-B1);
///  2. ships the remaining buckets to the device in pipelined chunks
///     (§V-A);
///  3. runs GPU_X_Shuffle — one thread per bucket, bundles of 2^eta
///     threads deduplicating via butterfly shuffles, then at most mu(eta)
///     compare-and-write attempts into the intermediate table T (§IV-C);
///  4. runs GPU_Collect — one thread per object reducing T into the final
///     table R — and copies R back to the host;
///  5. replaces each cleaned list's locked prefix with its compacted
///     messages (one latest message per object still in the cell).
///
/// Thread-safety (docs/CONCURRENCY.md): Clean/CleanCpu may be called from
/// concurrent query threads. Each batch first acquires the clean stripe
/// locks covering its cells, in ascending stripe order (deadlock-free),
/// and holds them through commit or rollback, so two batches over
/// disjoint stripes proceed in parallel while two racing on one cell
/// serialize — the loser then finds the cell already compacted inside
/// Preprocess (the double-checked skip) and serves it from the host
/// without duplicating the clean. The device phase serializes on an
/// internal per-device mutex because each device's staging buffers (L.A,
/// T, R) persist across batches; built over a DeviceSet, batches placed
/// on *different* devices overlap their device phases freely while the
/// stripe locks still guarantee clean-once per cell.
class MessageCleaner {
 public:
  struct Options {
    uint32_t delta_b = 128;
    uint32_t eta = 5;
    double t_delta = 10.0;
    uint32_t transfer_chunk_buckets = 64;
    /// Ablations (see GGridOptions): disable the butterfly shuffle
    /// (falling back to 2^eta brute-force write rounds) or the pipelined
    /// transfer (falling back to blocking copies).
    bool use_x_shuffle = true;
    bool pipelined_transfer = true;
  };

  struct Outcome {
    /// Latest message of every object whose newest record in the cleaned
    /// cells is a real location (tombstone-latest objects are omitted:
    /// they have moved to a cell outside this batch). `cell` is set.
    std::vector<Message> latest;
    uint32_t cells_cleaned = 0;
    /// Cells answered from their host-side compacted lists without any
    /// device work (nothing new arrived since their last cleaning).
    uint32_t cells_served_compacted = 0;
    uint32_t buckets_shipped = 0;
    uint32_t buckets_expired = 0;
    uint32_t messages_shipped = 0;
    /// End-to-end modeled device time of the pipelined transfer + kernels.
    double pipeline_seconds = 0;
  };

  /// Single-device form: wraps `device` in an internal singleton set.
  MessageCleaner(gpusim::Device* device, const Options& options);

  /// Multi-device form: one staging context (buffers + device mutex) per
  /// device of the set, so concurrent batches placed on distinct devices
  /// run their device phases in parallel. The set must outlive the
  /// cleaner.
  MessageCleaner(gpusim::DeviceSet* devices, const Options& options);

  const Options& options() const { return options_; }

  /// Points the cleaner at an observability registry: every Clean/CleanCpu
  /// outcome is folded into `gknn_clean_*` counters and the pipeline-time
  /// histogram, and rollbacks are counted. Null (the default) disables
  /// recording.
  void SetMetricRegistry(obs::MetricRegistry* registry);

  /// Cleans the message lists of `cells` in one batch. Cells whose list is
  /// already locked are skipped (paper: "if the two pointers are pointing
  /// to different buckets, we can skip L safely").
  ///
  /// `gknn_clean_batches_total` counts only batches that performed
  /// compaction work (shipped or expired at least one bucket); a batch
  /// fully served from compacted lists does not increment it, which is
  /// what makes "exactly one clean per dirty epoch" observable.
  ///
  /// Transactional: a device error (injected fault, memory exhaustion)
  /// rolls every touched list back to exactly its pre-clean state — no
  /// compaction applied, no bucket freed, no message lost — and returns
  /// the error. A retry or a CleanCpu afterwards sees every message.
  ///
  /// `device_index` selects which device of the set runs the device phase
  /// (the scheduler's lease index); the result is identical whichever
  /// device executes it.
  ///
  /// `deadline`, when non-null, is polled between pipelined device chunks;
  /// on expiry the batch rolls back (same transactional guarantee as a
  /// device error) and DeadlineExceeded is returned.
  util::Result<Outcome> Clean(std::span<const CellId> cells, double t_now,
                              BucketArena* arena,
                              std::vector<MessageList>* lists,
                              uint32_t device_index = 0,
                              const util::Deadline* deadline = nullptr);

  /// Host-only cleaning: identical semantics and outcome to Clean (same
  /// survivors, same expiry, same list rewrites) computed by a sequential
  /// fold, with zero device work. This is the degraded-mode path queries
  /// fall back to when the device is unavailable.
  util::Result<Outcome> CleanCpu(std::span<const CellId> cells, double t_now,
                                 BucketArena* arena,
                                 std::vector<MessageList>* lists);

 private:
  /// One locked cell of an in-flight cleaning batch. Expired buckets are
  /// only *recorded* during preprocessing and freed at commit: BucketArena
  /// recycles freed ids, so freeing one mid-batch would let a later cell's
  /// lock bucket clobber a chain the rollback still needs intact.
  struct LockedCell {
    CellId cell;
    std::vector<uint32_t> shipped_buckets;  // live buckets sent to the GPU
    std::vector<uint32_t> expired_buckets;  // stale buckets, freed on commit
  };

  /// The host-side state of a cleaning batch between its phases.
  struct Plan {
    std::vector<LockedCell> locked;
    /// Copies of every shipped bucket's messages, cell id attached — the
    /// flattened L.A. The device phase reads these copies, so a mid-phase
    /// failure cannot have corrupted the lists.
    std::vector<std::vector<Message>> host_buckets;
    Outcome outcome;  // counters + compacted-fast-path results
  };

  /// Phase 1 (§IV-B1): lock lists, classify buckets, serve compacted
  /// cells from the host. Mutates lists only via LockForCleaning, which
  /// AbortCleaning reverts exactly.
  Plan Preprocess(std::span<const CellId> cells, double t_now,
                  BucketArena* arena, std::vector<MessageList>* lists);

  /// One device's staging state: the persistent buffers (L.A, T, R) plus
  /// the mutex serializing that device's compaction phase. Batches placed
  /// on different contexts never share device memory, so they overlap.
  struct DeviceCtx {
    explicit DeviceCtx(gpusim::Device* d) : device(d) {}
    gpusim::Device* device;
    /// Serializes this device's phase: the staging buffers below are
    /// reused across batches and must not see two batches at once.
    util::lockdep::Mutex device_mu{util::lockdep::kCleanerDeviceClass};
    gpusim::DeviceBuffer<Message> device_messages;  // L.A, delta_b-strided
    gpusim::DeviceBuffer<Message> table_t;          // intermediate results
    gpusim::DeviceBuffer<Message> table_r;          // final results
  };

  /// Phase 2, GPU (§IV-C): upload + GPU_X_Shuffle + GPU_Collect on
  /// `ctx`'s device. Returns table R — the newest message per object,
  /// tombstones included — or the first device error (partial device
  /// state is discarded by rollback). Caller holds ctx->device_mu.
  util::Result<std::vector<Message>> CompactOnDevice(
      Plan* plan, DeviceCtx* ctx, const util::Deadline* deadline);

  /// Phase 2, host fallback: the same R computed by a sequential fold
  /// (newest seq per object), no device involved.
  std::vector<Message> CompactOnHost(const Plan& plan) const;

  /// Phase 3: rewrite the locked prefixes from R, free shipped + expired
  /// buckets, fill outcome.latest. Only host data structures; cannot fail.
  void Commit(Plan* plan, std::span<const Message> table_r,
              BucketArena* arena, std::vector<MessageList>* lists);

  /// Abort arm: undo every LockForCleaning; frees nothing else.
  void Rollback(const Plan& plan, BucketArena* arena,
                std::vector<MessageList>* lists);

  /// Grows a persistent device buffer on `device` to at least `needed`
  /// elements. Buffers are reused across Clean calls: steady-state
  /// cleaning performs no device allocation. `name` labels the buffer in
  /// hazard reports.
  util::Status EnsureCapacity(gpusim::Device* device,
                              gpusim::DeviceBuffer<Message>* buffer,
                              size_t needed, std::string_view name);

  /// Folds one finished batch into the registry (no-op without one).
  void RecordOutcome(const Outcome& outcome, bool on_device);

  /// Locks the clean stripes covering `cells` as one ranked multi-lock in
  /// ascending stripe order (released when the MultiLock is destroyed).
  /// Lockdep asserts the ascending order on every acquisition
  /// (docs/LOCKDEP.md).
  util::lockdep::MultiLock LockCellStripes(std::span<const CellId> cells);

  /// Owned only in the single-device form (wraps the caller's device).
  std::unique_ptr<gpusim::DeviceSet> owned_set_;
  gpusim::DeviceSet* devices_;
  Options options_;
  uint32_t mu_;  // mu(eta), precomputed

  /// Striped per-cell clean locks: stripe = cell % kCleanStripes. Held
  /// from Preprocess through Commit/Rollback so a cell is cleaned exactly
  /// once per dirty epoch even under racing readers. Stripe i carries
  /// lockdep instance key i (nestable cleaner.stripe class).
  static constexpr size_t kCleanStripes = 64;
  mutable util::lockdep::StripedMutexes<kCleanStripes> clean_stripes_{
      util::lockdep::kCleanerStripeClass};

  /// One staging context per device of the set (index-aligned with it).
  std::vector<std::unique_ptr<DeviceCtx>> contexts_;

  // Observability handles, resolved once in SetMetricRegistry. All null
  // until then.
  obs::Counter* cells_cleaned_total_ = nullptr;
  obs::Counter* cells_served_compacted_total_ = nullptr;
  obs::Counter* buckets_shipped_total_ = nullptr;
  obs::Counter* buckets_expired_total_ = nullptr;
  obs::Counter* messages_shipped_total_ = nullptr;
  obs::Counter* messages_deduped_total_ = nullptr;
  obs::Counter* clean_batches_total_ = nullptr;
  obs::Counter* clean_cpu_batches_total_ = nullptr;
  obs::Counter* rollbacks_total_ = nullptr;
  obs::Histogram* pipeline_seconds_ = nullptr;
};

}  // namespace gknn::core

#endif  // GKNN_CORE_MESSAGE_CLEANER_H_
