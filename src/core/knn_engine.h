#ifndef GKNN_CORE_KNN_ENGINE_H_
#define GKNN_CORE_KNN_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/graph_grid.h"
#include "core/message_cleaner.h"
#include "core/message_list.h"
#include "core/object_table.h"
#include "core/options.h"
#include "core/types.h"
#include "gpusim/device.h"
#include "gpusim/scheduler.h"
#include "obs/trace.h"
#include "roadnet/dijkstra.h"
#include "util/deadline.h"
#include "util/lockdep.h"
#include "util/result.h"

namespace gknn::core {

/// Objects currently located on each edge; maintained eagerly by the index
/// at ingest time and consulted by the CPU refinement step to find data
/// objects inside unresolved ranges.
using EdgeObjectMap =
    std::unordered_map<roadnet::EdgeId, std::vector<ObjectId>>;

/// How a query is executed (robustness plumbing, docs/ROBUSTNESS.md).
enum class ExecMode : uint8_t {
  /// Try the GPU pipeline; on a device error (injected fault, exhausted
  /// memory) transparently re-run the query on the CPU-only path.
  kAuto,
  /// GPU pipeline only; device errors propagate to the caller. The query
  /// server uses this so its retry/circuit-breaker policy sees failures.
  kGpuOnly,
  /// CPU-only path: host message compaction + bounded Dijkstra over the
  /// object table. Exact (same answers), just not accelerated.
  kCpuOnly,
};

/// Per-query execution controls threaded down from the server's overload
/// layer (docs/ROBUSTNESS.md "Overload control"). Optional on every query
/// entry point; null means "no budget, full fidelity".
struct QueryControl {
  /// Latency budget. The engine checks it at phase boundaries
  /// (expand/clean/SDist/top-k/refine) — the cooperative cancellation
  /// checkpoints — and aborts with Status::DeadlineExceeded, so a query
  /// that blows its budget releases its workspace (and the caller its
  /// reader lock) within one phase rather than running to completion.
  util::Deadline deadline;
  /// Brownout knob: scales the candidate-ring target rho*k. Values < 1
  /// shrink the GPU-examined region under load. Answers stay exact — the
  /// boundary refinement settles anything a smaller ring misses — the
  /// query just shifts work from the device to host refinement.
  double rho_scale = 1.0;
};

/// Per-query statistics surfaced to the benchmark harness.
struct KnnStats {
  uint32_t cells_examined = 0;       // |L| after expansion
  uint32_t expansion_rounds = 0;     // ring expansions beyond the first
  uint32_t candidate_objects = 0;    // |C|
  uint32_t candidate_vertices = 0;   // |V| sent to GPU_SDist
  uint32_t sdist_iterations = 0;     // Bellman-Ford rounds executed
  uint32_t unresolved_vertices = 0;  // |U|
  uint32_t refined_objects = 0;      // objects found by Refine_kNN
  double clean_pipeline_seconds = 0;  // modeled cleaning pipeline time
  double gpu_seconds = 0;             // modeled device time (kernels+copies)
  double cpu_seconds = 0;             // measured host time of CPU phases
  uint64_t h2d_bytes = 0;             // transfer volume for this query
  uint64_t d2h_bytes = 0;
  double transfer_seconds = 0;        // modeled PCIe time for this query
  /// Trace id of this query (0 when the engine has no tracer). Concurrent
  /// callers use it to find their own record in the trace ring.
  uint64_t query_id = 0;
  /// True when the answer came from the CPU-only path (requested via
  /// ExecMode::kCpuOnly or after a device error under kAuto).
  bool cpu_fallback = false;
};

/// Cumulative degradation counters of one engine (never reset). The fields
/// are relaxed atomics so concurrent queries can bump them; read them
/// individually — the set is only mutually consistent while no query is in
/// flight.
struct EngineCounters {
  std::atomic<uint64_t> gpu_failures{0};  // GPU-path queries with device error
  std::atomic<uint64_t> fallback_queries{0};  // kAuto re-runs on the CPU path
  std::atomic<uint64_t> cpu_queries{0};  // queries requested as kCpuOnly
  /// kAuto queries whose GPU attempt failed on one device and succeeded
  /// after migrating to a different device of the set (multi-device only;
  /// requires a scheduler).
  std::atomic<uint64_t> migrated_queries{0};
};

/// The CPU-GPU collaborative kNN processor (paper §V, Algorithm 4):
/// candidate cells are grown around the query until they hold rho*k
/// objects, their message lists are GPU-cleaned, GPU_SDist computes
/// subgraph shortest-path distances, GPU_First_k extracts candidates,
/// GPU_Unresolved finds boundary vertices whose unresolved range could
/// hide closer objects, and Refine_kNN settles those ranges with a bounded
/// multi-source Dijkstra on the host (Algorithm 6).
///
/// Thread-safety (docs/CONCURRENCY.md): Query and QueryRange may be called
/// from any number of threads concurrently, provided no thread mutates the
/// index structures (message lists, object table, grid) at the same time —
/// lazy message cleaning is the one mutation queries perform themselves,
/// and MessageCleaner serializes it per cell. Each in-flight query checks
/// out a private QueryWorkspace (scratch vectors + Dijkstra state) from an
/// internal freelist, so queries share no mutable engine state beyond the
/// atomic counters and the tracer.
class KnnEngine {
 public:
  KnnEngine(gpusim::Device* device, const GraphGrid* grid,
            MessageCleaner* cleaner, BucketArena* arena,
            std::vector<MessageList>* lists, const ObjectTable* object_table,
            const EdgeObjectMap* objects_on_edge, const GGridOptions* options);

  /// Answers one snapshot kNN query at time `t_now`. Returns up to k
  /// entries sorted by ascending network distance (fewer when the whole
  /// network holds fewer reachable objects). `mode` selects the execution
  /// path; under the default kAuto a device error falls back to the exact
  /// CPU-only path, so only argument errors reach the caller.
  util::Result<std::vector<KnnResultEntry>> Query(
      roadnet::EdgePoint location, uint32_t k, double t_now,
      KnnStats* stats = nullptr, ExecMode mode = ExecMode::kAuto,
      const QueryControl* control = nullptr);

  /// Range variant (an extension beyond the paper): every object within
  /// network distance `radius` of `location`, sorted ascending. Uses the
  /// same pipeline — clean the query's cells, GPU_SDist over them, then
  /// refine outward from the unresolved boundary vertices with the fixed
  /// radius as the bound.
  util::Result<std::vector<KnnResultEntry>> QueryRange(
      roadnet::EdgePoint location, roadnet::Distance radius, double t_now,
      KnnStats* stats = nullptr, ExecMode mode = ExecMode::kAuto,
      const QueryControl* control = nullptr);

  const EngineCounters& counters() const { return counters_; }

  /// Attaches the multi-device scheduler: each GPU-path query then leases
  /// a device per attempt instead of pinning to the construction-time
  /// device, and a device error under kAuto first migrates once to a
  /// different device before falling back to the CPU path. Null (the
  /// default) keeps every query on the construction-time device. Not
  /// thread-safe against in-flight queries; set it during setup.
  void set_scheduler(gpusim::Scheduler* scheduler) { scheduler_ = scheduler; }

  /// Attaches the observability tracer: every Query/QueryRange then emits
  /// a QueryTraceRecord with per-phase spans. Null (the default) disables
  /// tracing entirely — the query path takes no clock reads. Not
  /// thread-safe against in-flight queries; set it during setup.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  /// Everything one in-flight query mutates on the host: the bounded
  /// Dijkstra used by refinement and the epoch-stamped vertex maps (dense
  /// vertex -> local id of the SDist region; membership of the unresolved
  /// seed set). Checked out of `free_workspaces_` for the duration of a
  /// query so concurrent queries never share scratch state.
  struct QueryWorkspace {
    explicit QueryWorkspace(const roadnet::Graph* graph)
        : search(graph),
          local_id_of_vertex(graph->num_vertices(), 0),
          local_id_epoch(graph->num_vertices(), 0),
          seed_epoch_of(graph->num_vertices(), 0) {}

    roadnet::BoundedDijkstra search;
    std::vector<uint32_t> local_id_of_vertex;
    std::vector<uint64_t> local_id_epoch;
    uint64_t query_epoch = 0;
    std::vector<uint64_t> seed_epoch_of;
    uint64_t seed_epoch = 0;
  };

  /// RAII checkout of a QueryWorkspace; returns it to the freelist on
  /// destruction.
  class WorkspaceLease {
   public:
    explicit WorkspaceLease(KnnEngine* engine)
        : engine_(engine), workspace_(engine->AcquireWorkspace()) {}
    ~WorkspaceLease() { engine_->ReleaseWorkspace(std::move(workspace_)); }
    WorkspaceLease(const WorkspaceLease&) = delete;
    WorkspaceLease& operator=(const WorkspaceLease&) = delete;
    QueryWorkspace& operator*() { return *workspace_; }

   private:
    KnnEngine* engine_;
    std::unique_ptr<QueryWorkspace> workspace_;
  };

  std::unique_ptr<QueryWorkspace> AcquireWorkspace();
  void ReleaseWorkspace(std::unique_ptr<QueryWorkspace> workspace);

  util::Status ValidateLocation(roadnet::EdgePoint location) const;

  /// A span over `phase` charging into `trace`; a no-op span when the
  /// engine has no tracer or the caller passed no record (the kAuto
  /// fallback re-run passes null so its inner phases are not double
  /// counted under the kFallback span).
  obs::Span PhaseSpan(obs::QueryTraceRecord* trace, obs::Phase phase) const {
    if (tracer_ == nullptr || trace == nullptr) return obs::Span{};
    return tracer_->StartSpan(trace, phase);
  }

  /// The paper's pipeline (GPU cleaning + SDist + First_k + Unresolved +
  /// CPU refinement), executed on `device` (index `device_index` of the
  /// set, used to route cleaning to that device's staging context). Any
  /// device error aborts the query and propagates.
  util::Result<std::vector<KnnResultEntry>> QueryGpu(
      gpusim::Device* device, uint32_t device_index,
      roadnet::EdgePoint location, uint32_t k, double t_now, KnnStats* stats,
      obs::QueryTraceRecord* trace, QueryWorkspace& ws,
      const QueryControl* control);
  /// Exact host-only execution: CleanCpu over the query's cells, then one
  /// bounded Dijkstra from the query point over the eagerly maintained
  /// object table, its radius shrinking with the running kth-best bound.
  util::Result<std::vector<KnnResultEntry>> QueryCpu(
      roadnet::EdgePoint location, uint32_t k, double t_now, KnnStats* stats,
      obs::QueryTraceRecord* trace, QueryWorkspace& ws,
      const QueryControl* control);
  util::Result<std::vector<KnnResultEntry>> QueryRangeGpu(
      gpusim::Device* device, uint32_t device_index,
      roadnet::EdgePoint location, roadnet::Distance radius, double t_now,
      KnnStats* stats, obs::QueryTraceRecord* trace, QueryWorkspace& ws,
      const QueryControl* control);
  util::Result<std::vector<KnnResultEntry>> QueryRangeCpu(
      roadnet::EdgePoint location, roadnet::Distance radius, double t_now,
      KnnStats* stats, obs::QueryTraceRecord* trace, QueryWorkspace& ws,
      const QueryControl* control);
  /// Construction-time device; every query runs here when no scheduler is
  /// attached (single-device builds), and it seeds device_index 0.
  gpusim::Device* device_;
  /// Optional multi-device placement (see set_scheduler). Not owned.
  gpusim::Scheduler* scheduler_ = nullptr;
  const GraphGrid* grid_;
  MessageCleaner* cleaner_;
  BucketArena* arena_;
  std::vector<MessageList>* lists_;
  const ObjectTable* object_table_;
  const EdgeObjectMap* objects_on_edge_;
  const GGridOptions* options_;

  /// Freelist of reusable query workspaces; grows to the high-water mark
  /// of concurrent queries. Guarded by ws_mu_ (a lock-order leaf: the
  /// freelist pop/push never acquires anything else).
  util::lockdep::Mutex ws_mu_{util::lockdep::kEngineWorkspaceClass};
  std::vector<std::unique_ptr<QueryWorkspace>> free_workspaces_;

  EngineCounters counters_;

  obs::Tracer* tracer_ = nullptr;
};

}  // namespace gknn::core

#endif  // GKNN_CORE_KNN_ENGINE_H_
