#ifndef GKNN_CORE_GRAPH_GRID_H_
#define GKNN_CORE_GRAPH_GRID_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/types.h"
#include "roadnet/graph.h"
#include "roadnet/partitioner.h"
#include "util/result.h"

namespace gknn::core {

/// The graph grid of the G-Grid index (paper §III-A): the road network laid
/// out as a Z-ordered array of cells, each holding fixed-stride vertex
/// entries, each holding up to delta^v incoming edges. Vertices with more
/// than delta^v in-edges spill into *virtual vertices* — continuation
/// entries in the same cell.
///
/// Array-based on purpose ("to reserve memory locality for highly parallel
/// accesses on the GPU, our graph grid is based on arrays instead of
/// pointer-based hierarchical structures"): all slots live in one flat
/// Z-ordered array indexed by per-cell CSR offsets, and all edge entries in
/// one flat array of stride delta_v per slot. (The paper pads every cell to
/// a fixed 128-byte stride; CSR offsets keep the same locality and O(1)
/// indexing without paying the max-cell stride in memory on cells that are
/// nearly empty.)
///
/// Immutable after Build; both the CPU and the simulated GPU read the same
/// arrays (the paper keeps two identical copies; the index accounts for the
/// GPU copy's memory and initial transfer separately).
class GraphGrid {
 public:
  /// A stored edge (paper e = <id, v_s, w>): the destination is implied by
  /// the vertex entry holding it.
  struct EdgeEntry {
    roadnet::EdgeId id = roadnet::kInvalidEdge;
    roadnet::VertexId source = roadnet::kInvalidVertex;
    uint32_t weight = 0;
  };

  /// A vertex entry (paper v = <id, A_e, n>). `is_virtual` marks a
  /// continuation entry of a vertex whose in-edges overflowed delta_v.
  /// Empty slots have vertex == kInvalidVertex.
  struct VertexSlot {
    roadnet::VertexId vertex = roadnet::kInvalidVertex;
    uint16_t n_edges = 0;
    uint8_t is_virtual = 0;

    bool empty() const { return vertex == roadnet::kInvalidVertex; }
  };

  /// Partitions `graph` and lays out the grid. The graph must outlive the
  /// grid.
  static util::Result<GraphGrid> Build(
      const roadnet::Graph* graph, uint32_t delta_c, uint32_t delta_v,
      const roadnet::PartitionOptions& partition_options);

  const roadnet::Graph& graph() const { return *graph_; }
  uint32_t delta_v() const { return delta_v_; }
  uint32_t psi() const { return partition_.psi; }
  uint32_t grid_dim() const { return partition_.grid_dim; }
  uint32_t num_cells() const { return partition_.num_cells; }
  /// Largest number of slots any cell holds.
  uint32_t max_slots_per_cell() const { return max_slots_per_cell_; }
  const roadnet::GridPartition& partition() const { return partition_; }

  CellId CellOfVertex(roadnet::VertexId v) const {
    return partition_.cell_of_vertex[v];
  }

  /// The inverted index (paper §III-A): an edge maps to the cell of its
  /// source vertex. This is the cell an object located on the edge belongs
  /// to (Algorithm 1's getCell).
  CellId CellOfEdge(roadnet::EdgeId e) const {
    return CellOfVertex(graph_->edge(e).source);
  }

  /// Number of used slots in a cell (real + virtual vertex entries;
  /// paper c.n_v).
  uint32_t NumSlots(CellId c) const {
    return cell_slot_offsets_[c + 1] - cell_slot_offsets_[c];
  }

  /// Number of edges stored in a cell (paper c.n_e).
  uint32_t NumEdges(CellId c) const { return cell_edge_count_[c]; }

  const VertexSlot& Slot(CellId c, uint32_t i) const {
    return slots_[GlobalSlot(c, i)];
  }

  /// The edge entries of slot i of cell c (size Slot(c, i).n_edges).
  std::span<const EdgeEntry> SlotEdges(CellId c, uint32_t i) const {
    const size_t base = static_cast<size_t>(GlobalSlot(c, i)) * delta_v_;
    return {edge_entries_.data() + base, Slot(c, i).n_edges};
  }

  /// Cells sharing an edge with `c` in either direction, sorted, excluding
  /// `c` itself (paper §V-A's cell neighborhood).
  std::span<const CellId> NeighborCells(CellId c) const {
    return {neighbor_cells_.data() + neighbor_offsets_[c],
            neighbor_offsets_[c + 1] - neighbor_offsets_[c]};
  }

  /// Appends the distinct (non-virtual) vertices of cell `c` to `out`.
  void AppendCellVertices(CellId c, std::vector<roadnet::VertexId>* out) const;

  /// Resident size of the grid arrays in bytes (one copy; the paper keeps
  /// an identical second copy in GPU memory).
  uint64_t MemoryBytes() const;

 private:
  friend util::Status WriteGraphGrid(const GraphGrid& grid,
                                     const std::string& path);
  friend util::Result<GraphGrid> ReadGraphGrid(const roadnet::Graph* graph,
                                               const std::string& path);

  size_t GlobalSlot(CellId c, uint32_t i) const {
    return cell_slot_offsets_[c] + i;
  }

  const roadnet::Graph* graph_ = nullptr;
  uint32_t delta_v_ = 0;
  uint32_t max_slots_per_cell_ = 0;
  roadnet::GridPartition partition_;
  std::vector<uint32_t> cell_slot_offsets_;  // CSR, size num_cells+1
  std::vector<VertexSlot> slots_;            // total slots, Z-ordered
  std::vector<EdgeEntry> edge_entries_;      // slots * delta_v
  std::vector<uint32_t> cell_edge_count_;
  std::vector<uint32_t> neighbor_offsets_;  // CSR over cells
  std::vector<CellId> neighbor_cells_;
};

}  // namespace gknn::core

#endif  // GKNN_CORE_GRAPH_GRID_H_
