#include "core/ggrid_index.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <string_view>

#include "gpusim/fault_injector.h"
#include "util/logging.h"

namespace gknn::core {

using roadnet::EdgePoint;

GGridIndex::GGridIndex(const roadnet::Graph* graph,
                       const GGridOptions& options,
                       gpusim::DeviceSet* devices)
    : graph_(graph),
      options_(options),
      devices_(devices),
      arena_(options.delta_b),
      tracer_(&registry_, options.obs_clock, options.trace_ring_capacity),
      updates_total_(registry_.GetCounter("gknn_updates_ingested_total")),
      tombstones_total_(registry_.GetCounter("gknn_tombstones_total")),
      clean_fallbacks_total_(
          registry_.GetCounter("gknn_clean_fallbacks_total")) {}

util::Result<std::unique_ptr<GGridIndex>> GGridIndex::Build(
    const roadnet::Graph* graph, const GGridOptions& options,
    gpusim::Device* device) {
  auto owned = std::make_unique<gpusim::DeviceSet>(
      std::vector<gpusim::Device*>{device});
  GKNN_ASSIGN_OR_RETURN(std::unique_ptr<GGridIndex> index,
                        Build(graph, options, owned.get()));
  index->owned_set_ = std::move(owned);
  return index;
}

util::Result<std::unique_ptr<GGridIndex>> GGridIndex::Build(
    const roadnet::Graph* graph, const GGridOptions& options,
    gpusim::DeviceSet* devices) {
  if (options.delta_b == 0) {
    return util::Status::InvalidArgument("delta_b must be positive");
  }
  if (options.eta > 10) {
    return util::Status::InvalidArgument("eta must be at most 10");
  }
  if (options.rho < 1.0) {
    return util::Status::InvalidArgument("rho must be at least 1");
  }
  std::unique_ptr<GGridIndex> index(new GGridIndex(graph, options, devices));

  GKNN_ASSIGN_OR_RETURN(
      GraphGrid grid, GraphGrid::Build(graph, options.delta_c, options.delta_v,
                                       options.partition));
  index->grid_ = std::make_unique<GraphGrid>(std::move(grid));
  index->lists_.resize(index->grid_->num_cells());

  // The paper keeps an identical copy of the graph grid in GPU memory
  // (§III-A); with several devices, every device holds its own replica so
  // any of them can serve any cell. The simulated kernels read the host
  // arrays directly, so each copy is modeled as an allocation of the same
  // size plus its one-time upload — which makes Fig. 6's "G-Grid (GPU)"
  // bar and the initial transfer cost real in each device's ledger. The
  // mirrors are accounting only, so a device error here degrades the size
  // report rather than failing the build: the index still answers every
  // query (via another device or the CPU path if a device stays down).
  for (uint32_t i = 0; i < devices->size(); ++i) {
    gpusim::Device* device = devices->device_ptr(i);
    auto mirror = gpusim::DeviceBuffer<uint8_t>::Allocate(
        device, index->grid_->MemoryBytes());
    if (mirror.ok()) {
      index->grid_gpu_copies_.push_back(std::move(mirror).ValueOrDie());
      device->ledger().RecordH2D(index->grid_->MemoryBytes(),
                                 device->config());
    } else if (gpusim::IsDeviceError(mirror.status())) {
      GKNN_LOG(Warning) << "grid GPU mirror unavailable on device " << i
                        << ": " << mirror.status().ToString();
    } else {
      return mirror.status();
    }
  }

  MessageCleaner::Options cleaner_options;
  cleaner_options.delta_b = options.delta_b;
  cleaner_options.eta = options.eta;
  cleaner_options.t_delta = options.t_delta;
  cleaner_options.transfer_chunk_buckets = options.transfer_chunk_buckets;
  cleaner_options.use_x_shuffle = options.use_x_shuffle;
  cleaner_options.pipelined_transfer = options.pipelined_transfer;
  index->cleaner_ =
      std::make_unique<MessageCleaner>(devices, cleaner_options);
  index->cleaner_->SetMetricRegistry(&index->registry_);

  index->scheduler_ = std::make_unique<gpusim::Scheduler>(devices);

  index->engine_ = std::make_unique<KnnEngine>(
      devices->device_ptr(0), index->grid_.get(), index->cleaner_.get(),
      &index->arena_, &index->lists_, &index->object_table_,
      &index->objects_on_edge_, &index->options_);
  index->engine_->SetTracer(&index->tracer_);
  index->engine_->set_scheduler(index->scheduler_.get());
  return index;
}

util::Status GGridIndex::Ingest(ObjectId object, EdgePoint position,
                                double time) {
  if (position.edge >= graph_->num_edges()) {
    return util::Status::InvalidArgument("update edge out of range");
  }
  if (position.offset > graph_->edge(position.edge).weight) {
    return util::Status::InvalidArgument("update offset beyond edge weight");
  }

  // Algorithm 1 line 1-2: append m to the list of its cell.
  const CellId cell = grid_->CellOfEdge(position.edge);
  Message m;
  m.object = object;
  m.edge = position.edge;
  m.offset = position.offset;
  m.time = time;
  m.cell = cell;
  // Two sequence numbers per ingest: the tombstone (if any) takes the lower
  // one so the real message always wins the newest-message race.
  const uint64_t tombstone_seq = next_seq_++;
  m.seq = next_seq_++;
  lists_[cell].Append(&arena_, m);

  // Algorithm 1 lines 3-5: if the object moved in from another cell,
  // append a departure tombstone <o, null, null, t> there. The previous
  // entry is copied by value: setOT below overwrites it in place.
  const ObjectTable::Entry* previous_ptr = object_table_.Find(object);
  const bool has_previous = previous_ptr != nullptr;
  const ObjectTable::Entry previous =
      has_previous ? *previous_ptr : ObjectTable::Entry{};
  if (has_previous && previous.cell != cell) {
    Message tombstone;
    tombstone.object = object;
    tombstone.edge = roadnet::kInvalidEdge;
    tombstone.offset = 0;
    tombstone.time = time;
    tombstone.seq = tombstone_seq;
    tombstone.cell = previous.cell;
    lists_[previous.cell].Append(&arena_, tombstone);
    ++counters_.tombstones_written;
    tombstones_total_->Increment();
  }

  // Maintain the eager edge->objects registry used by Refine_kNN.
  if (has_previous && previous.edge != position.edge) {
    auto it = objects_on_edge_.find(previous.edge);
    if (it != objects_on_edge_.end()) {
      auto& vec = it->second;
      vec.erase(std::remove(vec.begin(), vec.end(), object), vec.end());
      if (vec.empty()) objects_on_edge_.erase(it);
    }
  }
  if (!has_previous || previous.edge != position.edge) {
    objects_on_edge_[position.edge].push_back(object);
  }

  // Algorithm 1 line 6: setOT(m.o, <c, m.e, m.d>).
  object_table_.Set(object, ObjectTable::Entry{cell, position.edge,
                                               position.offset, time, m.seq});
  ++counters_.updates_ingested;
  updates_total_->Increment();

  if (options_.eager_updates) {
    // Ablation mode: enforce the update on the index immediately, like the
    // eager schemes of prior work — cleaning the touched cell (and the
    // departed cell) on every single message.
    std::vector<CellId> touched = {cell};
    if (has_previous && previous.cell != cell) {
      touched.push_back(previous.cell);
    }
    return CleanCells(touched, time);
  }
  return util::Status::OK();
}

util::Status GGridIndex::Remove(ObjectId object, double time) {
  const ObjectTable::Entry* entry = object_table_.Find(object);
  if (entry == nullptr) return util::Status::OK();
  Message tombstone;
  tombstone.object = object;
  tombstone.edge = roadnet::kInvalidEdge;
  tombstone.time = time;
  tombstone.seq = next_seq_++;
  tombstone.cell = entry->cell;
  lists_[entry->cell].Append(&arena_, tombstone);
  ++counters_.tombstones_written;
  tombstones_total_->Increment();

  auto it = objects_on_edge_.find(entry->edge);
  if (it != objects_on_edge_.end()) {
    auto& vec = it->second;
    vec.erase(std::remove(vec.begin(), vec.end(), object), vec.end());
    if (vec.empty()) objects_on_edge_.erase(it);
  }
  const CellId cell = entry->cell;
  object_table_.Erase(object);
  if (options_.eager_updates) {
    const CellId touched[] = {cell};
    return CleanCells(touched, time);
  }
  return util::Status::OK();
}

util::Status GGridIndex::TrimCaches(double t_now) {
  std::vector<CellId> occupied;
  for (CellId c = 0; c < static_cast<CellId>(lists_.size()); ++c) {
    if (lists_[c].num_messages() > 0) occupied.push_back(c);
  }
  return CleanCells(occupied, t_now);
}

util::Status GGridIndex::SaveSnapshot(const std::string& path,
                                      double t_now) {
  GKNN_RETURN_NOT_OK(TrimCaches(t_now));
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + path + " for writing");
  }
  std::fprintf(f, "gknn-snapshot v1 %u %u\n", graph_->num_vertices(),
               graph_->num_edges());
  for (const auto& [object, entry] : object_table_) {
    std::fprintf(f, "%u %u %u %.6f\n", object, entry.edge, entry.offset,
                 entry.time);
  }
  if (std::fclose(f) != 0) {
    return util::Status::IoError("error closing " + path);
  }
  return util::Status::OK();
}

util::Status GGridIndex::LoadSnapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + path);
  }
  unsigned vertices = 0, edges = 0;
  if (std::fscanf(f, "gknn-snapshot v1 %u %u\n", &vertices, &edges) != 2 ||
      vertices != graph_->num_vertices() || edges != graph_->num_edges()) {
    std::fclose(f);
    return util::Status::InvalidArgument(
        path + ": snapshot does not match this graph");
  }
  unsigned object = 0, edge = 0, offset = 0;
  double time = 0;
  int fields;
  while ((fields = std::fscanf(f, "%u %u %u %lf\n", &object, &edge, &offset,
                               &time)) == 4) {
    if (edge >= graph_->num_edges() ||
        offset > graph_->edge(edge).weight) {
      std::fclose(f);
      return util::Status::IoError(path + ": snapshot entry off the network");
    }
    const util::Status ingested = Ingest(object, {edge, offset}, time);
    if (!ingested.ok()) {
      std::fclose(f);
      return ingested;
    }
  }
  std::fclose(f);
  if (fields != EOF) {
    return util::Status::IoError(path + ": malformed snapshot entry");
  }
  return util::Status::OK();
}

util::Result<std::vector<std::vector<KnnResultEntry>>>
GGridIndex::QueryKnnBatch(std::span<const roadnet::EdgePoint> locations,
                          uint32_t k, double t_now,
                          KnnStats* aggregate_stats, ExecMode mode) {
  // Shared pass: clean the union of every query's initial region in one
  // batch (one pipelined transfer + kernel sequence), so per-query
  // cleaning afterwards touches already-compacted lists.
  std::vector<char> in_union(grid_->num_cells(), 0);
  std::vector<CellId> union_cells;
  auto add = [&](CellId c) {
    if (!in_union[c]) {
      in_union[c] = 1;
      union_cells.push_back(c);
    }
  };
  for (const roadnet::EdgePoint& q : locations) {
    if (q.edge >= graph_->num_edges()) {
      return util::Status::InvalidArgument("query edge out of range");
    }
    const CellId cq = grid_->CellOfEdge(q.edge);
    add(cq);
    add(grid_->CellOfVertex(graph_->edge(q.edge).target));
    for (CellId nb : grid_->NeighborCells(cq)) add(nb);
  }
  GKNN_RETURN_NOT_OK(CleanCells(union_cells, t_now));

  std::vector<std::vector<KnnResultEntry>> results;
  results.reserve(locations.size());
  KnnStats aggregate;
  for (const roadnet::EdgePoint& q : locations) {
    KnnStats stats;
    GKNN_ASSIGN_OR_RETURN(auto result,
                          engine_->Query(q, k, t_now, &stats, mode));
    ++counters_.queries_processed;
    aggregate.cells_examined += stats.cells_examined;
    aggregate.candidate_objects += stats.candidate_objects;
    aggregate.unresolved_vertices += stats.unresolved_vertices;
    aggregate.refined_objects += stats.refined_objects;
    aggregate.clean_pipeline_seconds += stats.clean_pipeline_seconds;
    aggregate.gpu_seconds += stats.gpu_seconds;
    aggregate.cpu_seconds += stats.cpu_seconds;
    aggregate.h2d_bytes += stats.h2d_bytes;
    aggregate.d2h_bytes += stats.d2h_bytes;
    aggregate.transfer_seconds += stats.transfer_seconds;
    results.push_back(std::move(result));
  }
  if (aggregate_stats != nullptr) *aggregate_stats = aggregate;
  return results;
}

util::Status GGridIndex::CleanCells(std::span<const CellId> cells,
                                    double t_now) {
  gpusim::Scheduler::Lease lease = scheduler_->Acquire();
  util::Result<MessageCleaner::Outcome> outcome =
      cleaner_->Clean(cells, t_now, &arena_, &lists_, lease.device_index());
  bool device_error =
      !outcome.ok() && gpusim::IsDeviceError(outcome.status());
  scheduler_->ReportResult(lease.device_index(), device_error);
  if (device_error && devices_->size() > 1) {
    // Migrate the batch once to a different device before surrendering it
    // to the host path (the failed pass rolled back transactionally).
    gpusim::Scheduler::Lease retry =
        scheduler_->AcquireAvoiding(lease.device_index());
    outcome =
        cleaner_->Clean(cells, t_now, &arena_, &lists_, retry.device_index());
    device_error = !outcome.ok() && gpusim::IsDeviceError(outcome.status());
    scheduler_->ReportResult(retry.device_index(), device_error);
  }
  if (device_error) {
    // The failed GPU pass rolled back transactionally, so the host pass
    // sees every message it saw.
    ++counters_.clean_fallbacks;
    clean_fallbacks_total_->Increment();
    outcome = cleaner_->CleanCpu(cells, t_now, &arena_, &lists_);
  }
  return outcome.status();
}

util::Result<std::vector<KnnResultEntry>> GGridIndex::QueryKnn(
    EdgePoint location, uint32_t k, double t_now, KnnStats* stats,
    ExecMode mode, const QueryControl* control) {
  ++counters_.queries_processed;
  return engine_->Query(location, k, t_now, stats, mode, control);
}

util::Result<std::vector<KnnResultEntry>> GGridIndex::QueryRange(
    EdgePoint location, roadnet::Distance radius, double t_now,
    KnnStats* stats, ExecMode mode, const QueryControl* control) {
  ++counters_.queries_processed;
  return engine_->QueryRange(location, radius, t_now, stats, mode, control);
}

uint64_t GGridIndex::cached_messages() const {
  uint64_t total = 0;
  for (const MessageList& list : lists_) total += list.num_messages();
  return total;
}

void GGridIndex::FoldDeviceMetrics() {
  if (!obs::kEnabled) return;
  auto set = [&](std::string_view name, double value) {
    registry_.GetGauge(name)->Set(value);
  };
  // Device totals and the transfer ledger. The unlabelled series is always
  // the sum over every device of the set — at one device it is exactly
  // that device's value, so single-device expositions are unchanged. With
  // more than one device each gauge also appears per device under a
  // `device="i"` label (no labels leak at N=1).
  const uint32_t n_devices = devices_->size();
  auto fold_device = [&](std::string_view suffix, gpusim::Device& dev) {
    auto set_dev = [&](std::string_view name, double value) {
      registry_.GetGauge(std::string(name) + std::string(suffix))
          ->Set(value);
    };
    set_dev("gknn_device_clock_seconds", dev.ClockSeconds());
    set_dev("gknn_device_kernel_launches",
            static_cast<double>(dev.kernel_launches()));
    set_dev("gknn_device_sim_wall_seconds", dev.sim_wall_seconds());
    set_dev("gknn_device_bytes_allocated",
            static_cast<double>(dev.bytes_allocated()));
    set_dev("gknn_device_peak_bytes", static_cast<double>(dev.peak_bytes()));
    set_dev("gknn_device_hazards", static_cast<double>(dev.hazard_count()));
    const gpusim::TransferLedger::Totals totals = dev.ledger().totals();
    set_dev("gknn_transfer_h2d_bytes", static_cast<double>(totals.h2d_bytes));
    set_dev("gknn_transfer_d2h_bytes", static_cast<double>(totals.d2h_bytes));
    set_dev("gknn_transfer_h2d_count", static_cast<double>(totals.h2d_count));
    set_dev("gknn_transfer_d2h_count", static_cast<double>(totals.d2h_count));
    set_dev("gknn_transfer_h2d_seconds", totals.h2d_seconds);
    set_dev("gknn_transfer_d2h_seconds", totals.d2h_seconds);
  };
  // Unlabelled sums: accumulate with gauge adds via a scratch pass. The
  // gauges are plain sets, so sum in host variables first.
  {
    double clock = 0, sim_wall = 0;
    uint64_t launches = 0, bytes = 0, peak = 0, hazards = 0;
    gpusim::TransferLedger::Totals sum{};
    for (uint32_t i = 0; i < n_devices; ++i) {
      gpusim::Device& dev = devices_->device(i);
      clock += dev.ClockSeconds();
      sim_wall += dev.sim_wall_seconds();
      launches += dev.kernel_launches();
      bytes += dev.bytes_allocated();
      peak += dev.peak_bytes();
      hazards += dev.hazard_count();
      const gpusim::TransferLedger::Totals t = dev.ledger().totals();
      sum.h2d_bytes += t.h2d_bytes;
      sum.d2h_bytes += t.d2h_bytes;
      sum.h2d_count += t.h2d_count;
      sum.d2h_count += t.d2h_count;
      sum.h2d_seconds += t.h2d_seconds;
      sum.d2h_seconds += t.d2h_seconds;
    }
    set("gknn_device_clock_seconds", clock);
    set("gknn_device_kernel_launches", static_cast<double>(launches));
    set("gknn_device_sim_wall_seconds", sim_wall);
    set("gknn_device_bytes_allocated", static_cast<double>(bytes));
    set("gknn_device_peak_bytes", static_cast<double>(peak));
    set("gknn_device_hazards", static_cast<double>(hazards));
    set("gknn_transfer_h2d_bytes", static_cast<double>(sum.h2d_bytes));
    set("gknn_transfer_d2h_bytes", static_cast<double>(sum.d2h_bytes));
    set("gknn_transfer_h2d_count", static_cast<double>(sum.h2d_count));
    set("gknn_transfer_d2h_count", static_cast<double>(sum.d2h_count));
    set("gknn_transfer_h2d_seconds", sum.h2d_seconds);
    set("gknn_transfer_d2h_seconds", sum.d2h_seconds);
  }
  if (n_devices > 1) {
    for (uint32_t i = 0; i < n_devices; ++i) {
      const std::string label = "{device=\"" + std::to_string(i) + "\"}";
      fold_device(label, devices_->device(i));
      const gpusim::DeviceSchedStats sched = scheduler_->device_stats(i);
      set("gknn_sched_leases" + label, static_cast<double>(sched.leases));
      set("gknn_sched_probes" + label, static_cast<double>(sched.probes));
      set("gknn_sched_device_errors" + label,
          static_cast<double>(sched.device_errors));
      set("gknn_sched_unhealthy" + label, sched.unhealthy ? 1.0 : 0.0);
    }
  }
  // Per-kernel timing, merged across the set (kernel names are shared).
  std::map<std::string, gpusim::Device::KernelTotals> merged;
  for (uint32_t i = 0; i < n_devices; ++i) {
    for (const auto& [kernel, k_totals] : devices_->device(i).kernel_totals()) {
      gpusim::Device::KernelTotals& m = merged[kernel];
      m.launches += k_totals.launches;
      m.iterations += k_totals.iterations;
      m.modeled_seconds += k_totals.modeled_seconds;
    }
  }
  for (const auto& [kernel, k_totals] : merged) {
    const std::string labels = "{kernel=\"" + kernel + "\"}";
    set("gknn_kernel_launches" + labels,
        static_cast<double>(k_totals.launches));
    set("gknn_kernel_iterations" + labels,
        static_cast<double>(k_totals.iterations));
    set("gknn_kernel_modeled_seconds" + labels, k_totals.modeled_seconds);
  }
  // Index memory and state.
  const MemoryBreakdown mem = Memory();
  set("gknn_memory_bytes{component=\"grid_cpu\"}",
      static_cast<double>(mem.grid_cpu));
  set("gknn_memory_bytes{component=\"object_table\"}",
      static_cast<double>(mem.object_table));
  set("gknn_memory_bytes{component=\"message_lists\"}",
      static_cast<double>(mem.message_lists));
  set("gknn_memory_bytes{component=\"support\"}",
      static_cast<double>(mem.support));
  set("gknn_memory_bytes{component=\"grid_gpu\"}",
      static_cast<double>(mem.grid_gpu));
  set("gknn_cached_messages", static_cast<double>(cached_messages()));
  set("gknn_index_queries_processed",
      static_cast<double>(counters_.queries_processed));
}

GGridIndex::MemoryBreakdown GGridIndex::Memory() const {
  MemoryBreakdown mem;
  mem.grid_cpu = grid_->MemoryBytes();
  mem.object_table = object_table_.MemoryBytes();
  mem.message_lists =
      arena_.MemoryBytes() + lists_.size() * sizeof(MessageList);
  uint64_t registry = objects_on_edge_.size() *
                      (sizeof(roadnet::EdgeId) + 3 * sizeof(void*));
  for (const auto& [edge, objects] : objects_on_edge_) {
    (void)edge;
    registry += objects.capacity() * sizeof(ObjectId);
  }
  mem.support = registry;
  mem.grid_gpu = 0;
  for (const auto& copy : grid_gpu_copies_) mem.grid_gpu += copy.size_bytes();
  return mem;
}

}  // namespace gknn::core
