#include "core/cost_model.h"

#include <algorithm>
#include <cmath>

#include "core/mu.h"

namespace gknn::core {

CostModelPrediction PredictCosts(const CostModelInputs& inputs,
                                 const gpusim::DeviceConfig& device) {
  CostModelPrediction p;

  // ---- §VI-A space ---------------------------------------------------------
  // Grid: one vertex entry (8 B) per vertex entry slot plus delta_v edge
  // entries (12 B each, the paper's packing); vertices with in-degree
  // above delta_v add virtual entries, amortized by |E| / delta_v.
  const uint64_t vertex_slots =
      inputs.num_vertices +
      inputs.num_edges / std::max(1u, inputs.delta_v);  // upper-ish bound
  p.grid_bytes = vertex_slots * 8ull + inputs.num_edges * 12ull +
                 inputs.num_vertices * 4ull;  // + cell_of_vertex
  p.message_list_bytes = static_cast<uint64_t>(
      inputs.f_delta * inputs.num_objects * inputs.message_bytes);
  p.object_table_bytes = inputs.num_objects * 48ull;

  // ---- §VI-B1 message cleaning --------------------------------------------
  // "the number of messages transferred to the GPU is bounded by
  //  O(f_Delta * rho * k)".
  p.messages_transferred = static_cast<uint64_t>(
      std::ceil(inputs.f_delta * inputs.rho * inputs.k));
  const uint64_t transfer_bytes =
      p.messages_transferred * inputs.message_bytes;
  p.transfer_seconds = device.transfer_latency_seconds +
                       static_cast<double>(transfer_bytes) /
                           device.h2d_bytes_per_second;

  // Per-thread kernel work: a bucket of delta_b messages, each processed
  // with eta+1 cache steps, eta shuffles, and mu(eta) global writes
  // (§VI-B1: "the overall cost for message cleaning is O(delta_b)").
  const uint32_t mu = Mu(inputs.eta);
  const double ops_per_message =
      (inputs.eta + 1.0) * inputs.eta  // cache steps
      + inputs.eta                     // shuffles
      + 8.0 * mu;                      // global-table write rounds
  const uint64_t buckets =
      (p.messages_transferred + inputs.delta_b - 1) / inputs.delta_b;
  const double waves = std::max(
      1.0, std::ceil(static_cast<double>(buckets) / device.num_cores));
  p.cleaning_kernel_seconds =
      device.kernel_launch_seconds +
      device.CyclesToSeconds(waves * inputs.delta_b * ops_per_message);

  // ---- §VI-B2 query computation --------------------------------------------
  // |C| cells ~ rho*k objects spread at |O| / num_cells objects per cell.
  const uint32_t psi = roadnet::ComputePsi(inputs.num_vertices,
                                           inputs.delta_c);
  const double num_cells = std::pow(4.0, psi);
  const double objects_per_cell =
      std::max(1e-9, static_cast<double>(inputs.num_objects) / num_cells);
  p.candidate_cells = static_cast<uint64_t>(
      std::ceil(inputs.rho * inputs.k / objects_per_cell));
  p.candidate_cells =
      std::min<uint64_t>(p.candidate_cells, static_cast<uint64_t>(num_cells));

  // GPU_SDist: each thread relaxes delta_v edges per round; the paper
  // bounds rounds by |C| * delta_c (the region's vertex count). In
  // practice Bellman-Ford converges in ~the region's hop diameter, which
  // for a near-planar region of n vertices is ~2*sqrt(n); we predict with
  // that tighter bound and report both.
  const double region_vertices =
      static_cast<double>(p.candidate_cells) * inputs.delta_c;
  const double rounds = 2.0 * std::sqrt(std::max(1.0, region_vertices));
  p.sdist_ops = static_cast<uint64_t>(rounds * inputs.delta_v);
  const double sdist_waves = std::max(
      1.0, std::ceil(region_vertices / device.num_cores));
  p.sdist_seconds =
      device.kernel_launch_seconds +
      device.CyclesToSeconds(sdist_waves * rounds * inputs.delta_v +
                             rounds * device.cross_warp_sync_cycles);

  p.total_gpu_seconds = p.transfer_seconds + p.cleaning_kernel_seconds +
                        p.sdist_seconds +
                        device.kernel_launch_seconds;  // selection kernel
  return p;
}

}  // namespace gknn::core
