#ifndef GKNN_CORE_COST_MODEL_H_
#define GKNN_CORE_COST_MODEL_H_

#include <cstdint>

#include "core/options.h"
#include "roadnet/partitioner.h"
#include "gpusim/device_config.h"

namespace gknn::core {

/// Analytical cost model of the G-Grid (paper §VI), evaluated against the
/// device parameters of the simulated GPU. `bench_cost_model` prints these
/// predictions next to measured values; the asymptotic forms are the
/// paper's, with explicit constants supplied by DeviceConfig so the
/// prediction lands in seconds/bytes rather than O(·).
struct CostModelInputs {
  /// Query parameter k and the balance factor rho (candidate set = rho*k
  /// objects, §V-A).
  uint32_t k = 16;
  double rho = 1.8;
  /// f_Delta: average messages per object within one t_Delta window
  /// (= update frequency * t_Delta, §VI-A).
  double f_delta = 10.0;
  /// Index parameters.
  uint32_t delta_b = 128;
  uint32_t delta_c = 3;
  uint32_t delta_v = 2;
  uint32_t eta = 5;
  /// Graph statistics.
  uint32_t num_vertices = 0;
  uint32_t num_edges = 0;
  uint32_t num_objects = 0;
  /// Bytes of one cached message record.
  uint32_t message_bytes = 48;
};

struct CostModelPrediction {
  // --- §VI-A space costs ---
  uint64_t grid_bytes = 0;           // O(|V| + |E|)
  uint64_t message_list_bytes = 0;   // O(f_Delta * |O|)
  uint64_t object_table_bytes = 0;   // O(|O|)

  // --- §VI-B1 message cleaning ---
  uint64_t messages_transferred = 0;  // O(f_Delta * rho * k)
  double transfer_seconds = 0;        // messages over the PCIe model
  double cleaning_kernel_seconds = 0; // O(delta_b) per thread + collect

  // --- §VI-B2 query computation ---
  uint64_t candidate_cells = 0;       // ~ rho*k / objects-per-cell
  uint64_t sdist_ops = 0;             // O(|C| * delta_c * delta_v) per thread
  double sdist_seconds = 0;
  double total_gpu_seconds = 0;       // cleaning + sdist + selection
};

/// Evaluates the §VI formulas under `device` constants.
CostModelPrediction PredictCosts(const CostModelInputs& inputs,
                                 const gpusim::DeviceConfig& device);

}  // namespace gknn::core

#endif  // GKNN_CORE_COST_MODEL_H_
