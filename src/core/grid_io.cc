#include "core/grid_io.h"

#include <cstdio>
#include <cstring>

namespace gknn::core {

namespace {

constexpr char kMagic[8] = {'G', 'K', 'N', 'N', 'G', 'R', 'I', 'D'};
constexpr uint32_t kVersion = 1;

/// FNV-1a over the edge list: cheap fingerprint tying a grid file to the
/// graph it was built from.
uint64_t GraphChecksum(const roadnet::Graph& graph) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(graph.num_vertices());
  for (const roadnet::Edge& e : graph.edges()) {
    mix(e.source);
    mix(e.target);
    mix(e.weight);
  }
  return h;
}

struct Writer {
  std::FILE* f;
  bool ok = true;

  void Bytes(const void* data, size_t n) {
    if (ok && std::fwrite(data, 1, n, f) != n) ok = false;
  }
  void U32(uint32_t v) { Bytes(&v, sizeof(v)); }
  void U64(uint64_t v) { Bytes(&v, sizeof(v)); }
  template <typename T>
  void Vec(const std::vector<T>& v) {
    U64(v.size());
    Bytes(v.data(), v.size() * sizeof(T));
  }
};

struct Reader {
  std::FILE* f;
  bool ok = true;

  void Bytes(void* data, size_t n) {
    if (ok && std::fread(data, 1, n, f) != n) ok = false;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Bytes(&v, sizeof(v));
    return v;
  }
  template <typename T>
  void Vec(std::vector<T>* v) {
    const uint64_t n = U64();
    if (!ok || n > (1ull << 40) / sizeof(T)) {  // implausible size: corrupt
      ok = false;
      return;
    }
    v->resize(n);
    Bytes(v->data(), n * sizeof(T));
  }
};

}  // namespace

util::Status WriteGraphGrid(const GraphGrid& grid, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + path + " for writing");
  }
  Writer w{f};
  w.Bytes(kMagic, sizeof(kMagic));
  w.U32(kVersion);
  w.U32(grid.graph_->num_vertices());
  w.U32(grid.graph_->num_edges());
  w.U64(GraphChecksum(*grid.graph_));
  w.U32(grid.delta_v_);
  w.U32(grid.max_slots_per_cell_);
  w.U32(grid.partition_.psi);
  w.U64(grid.partition_.edge_cut);
  w.Vec(grid.partition_.cell_of_vertex);
  w.Vec(grid.cell_slot_offsets_);
  w.Vec(grid.slots_);
  w.Vec(grid.edge_entries_);
  w.Vec(grid.cell_edge_count_);
  w.Vec(grid.neighbor_offsets_);
  w.Vec(grid.neighbor_cells_);
  const bool ok = w.ok && std::fclose(f) == 0;
  if (!ok) {
    return util::Status::IoError("error writing " + path);
  }
  return util::Status::OK();
}

util::Result<GraphGrid> ReadGraphGrid(const roadnet::Graph* graph,
                                      const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return util::Status::IoError("cannot open " + path);
  }
  Reader r{f};
  char magic[8] = {};
  r.Bytes(magic, sizeof(magic));
  if (!r.ok || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    std::fclose(f);
    return util::Status::IoError(path + ": not a gknn grid file");
  }
  const uint32_t version = r.U32();
  if (version != kVersion) {
    std::fclose(f);
    return util::Status::IoError(path + ": unsupported grid version " +
                                 std::to_string(version));
  }
  const uint32_t num_vertices = r.U32();
  const uint32_t num_edges = r.U32();
  const uint64_t checksum = r.U64();
  if (!r.ok || num_vertices != graph->num_vertices() ||
      num_edges != graph->num_edges() || checksum != GraphChecksum(*graph)) {
    std::fclose(f);
    return util::Status::InvalidArgument(
        path + ": grid was built from a different graph");
  }

  GraphGrid grid;
  grid.graph_ = graph;
  grid.delta_v_ = r.U32();
  grid.max_slots_per_cell_ = r.U32();
  grid.partition_.psi = r.U32();
  grid.partition_.grid_dim = 1u << grid.partition_.psi;
  grid.partition_.num_cells = 1u << (2 * grid.partition_.psi);
  grid.partition_.edge_cut = r.U64();
  r.Vec(&grid.partition_.cell_of_vertex);
  r.Vec(&grid.cell_slot_offsets_);
  r.Vec(&grid.slots_);
  r.Vec(&grid.edge_entries_);
  r.Vec(&grid.cell_edge_count_);
  r.Vec(&grid.neighbor_offsets_);
  r.Vec(&grid.neighbor_cells_);
  std::fclose(f);
  if (!r.ok) {
    return util::Status::IoError(path + ": truncated or corrupt grid file");
  }
  // Structural sanity: sizes must be mutually consistent.
  if (grid.partition_.cell_of_vertex.size() != num_vertices ||
      grid.cell_slot_offsets_.size() != grid.partition_.num_cells + 1 ||
      grid.slots_.size() != grid.cell_slot_offsets_.back() ||
      grid.edge_entries_.size() != grid.slots_.size() * grid.delta_v_ ||
      grid.cell_edge_count_.size() != grid.partition_.num_cells ||
      grid.neighbor_offsets_.size() != grid.partition_.num_cells + 1 ||
      grid.neighbor_cells_.size() != grid.neighbor_offsets_.back()) {
    return util::Status::IoError(path + ": inconsistent grid file");
  }
  return grid;
}

}  // namespace gknn::core
