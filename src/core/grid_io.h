#ifndef GKNN_CORE_GRID_IO_H_
#define GKNN_CORE_GRID_IO_H_

#include <string>

#include "core/graph_grid.h"
#include "util/result.h"

namespace gknn::core {

/// Binary serialization of a built GraphGrid.
///
/// Partitioning dominates index construction time on large networks, so a
/// deployment builds the grid once and reloads it at startup. The format
/// embeds the graph's vertex/edge counts and is validated on load: reading
/// a grid against a different graph fails cleanly instead of producing a
/// corrupt index.
///
/// Format (little-endian, version-tagged):
///   magic "GKNNGRID", u32 version,
///   u32 num_vertices, u32 num_edges, u32 delta_v, u32 psi,
///   cell_of_vertex[], cell_slot_offsets[], slots[], edge_entries[],
///   cell_edge_count[], neighbor_offsets[], neighbor_cells[].
util::Status WriteGraphGrid(const GraphGrid& grid, const std::string& path);

/// Loads a grid previously written by WriteGraphGrid. `graph` must be the
/// same road network the grid was built from (checked by vertex/edge
/// counts and an edge checksum) and must outlive the returned grid.
util::Result<GraphGrid> ReadGraphGrid(const roadnet::Graph* graph,
                                      const std::string& path);

}  // namespace gknn::core

#endif  // GKNN_CORE_GRID_IO_H_
