#include "core/knn_engine.h"

#include <algorithm>
#include <limits>
#include <mutex>
#include <set>

#include "gpusim/device_buffer.h"
#include "gpusim/fault_injector.h"
#include "gpusim/scan.h"
#include "gpusim/topk.h"
#include "util/min_heap.h"
#include "util/timer.h"

namespace gknn::core {

using gpusim::DeviceBuffer;
using gpusim::ThreadCtx;
using roadnet::Distance;
using roadnet::Edge;
using roadnet::EdgeId;
using roadnet::EdgePoint;
using roadnet::kInfiniteDistance;
using roadnet::kInvalidVertex;
using roadnet::VertexId;

namespace {

/// Shrinking kNN bound over *distinct* objects: the kth-smallest of each
/// known object's best distance. An upper bound on the true kth distance,
/// so using it as a search radius never cuts off a result; dedup matters —
/// counting one object twice would tighten the bound incorrectly.
class KthBound {
 public:
  explicit KthBound(uint32_t k) : k_(k) {}

  void Offer(ObjectId object, roadnet::Distance d) {
    auto [it, inserted] = best_.emplace(object, d);
    if (!inserted) {
      if (d >= it->second) return;
      values_.erase(values_.find(it->second));
      it->second = d;
    }
    values_.insert(d);
    if (values_.size() >= k_) {
      auto kth = values_.begin();
      std::advance(kth, k_ - 1);
      threshold_ = *kth;
    }
  }

  roadnet::Distance threshold() const { return threshold_; }

 private:
  uint32_t k_;
  std::unordered_map<ObjectId, roadnet::Distance> best_;
  std::multiset<roadnet::Distance> values_;
  roadnet::Distance threshold_ = roadnet::kInfiniteDistance - 1;
};

/// Cooperative cancellation checkpoint (docs/ROBUSTNESS.md "Overload
/// control"): consulted between pipeline phases. Returning the error from
/// a phase boundary lets RAII unwind the workspace lease (and the
/// caller's reader lock) without any phase observing a half-cancelled
/// state.
util::Status CheckBudget(const QueryControl* control, const char* phase) {
  if (control != nullptr && control->deadline.Expired()) {
    return util::Status::DeadlineExceeded(
        std::string("query budget exhausted after ") + phase);
  }
  return util::Status::OK();
}

/// Candidate-ring target: rho*k, shrunk by the brownout rho_scale but
/// never below k itself (a ring smaller than k forces a degenerate
/// all-refinement query).
double RhoK(const GGridOptions& options, uint32_t k,
            const QueryControl* control) {
  double scale = control != nullptr ? control->rho_scale : 1.0;
  if (scale <= 0.0) scale = 1.0;
  const double rho = std::max(1.0, options.rho * scale);
  return rho * static_cast<double>(k);
}

}  // namespace

KnnEngine::KnnEngine(gpusim::Device* device, const GraphGrid* grid,
                     MessageCleaner* cleaner, BucketArena* arena,
                     std::vector<MessageList>* lists,
                     const ObjectTable* object_table,
                     const EdgeObjectMap* objects_on_edge,
                     const GGridOptions* options)
    : device_(device),
      grid_(grid),
      cleaner_(cleaner),
      arena_(arena),
      lists_(lists),
      object_table_(object_table),
      objects_on_edge_(objects_on_edge),
      options_(options) {
  // One workspace up front: the common single-threaded case then never
  // allocates on the query path, only recycles through the freelist.
  free_workspaces_.push_back(
      std::make_unique<QueryWorkspace>(&grid_->graph()));
}

std::unique_ptr<KnnEngine::QueryWorkspace> KnnEngine::AcquireWorkspace() {
  {
    util::lockdep::MutexLock lock(ws_mu_);
    if (!free_workspaces_.empty()) {
      std::unique_ptr<QueryWorkspace> ws = std::move(free_workspaces_.back());
      free_workspaces_.pop_back();
      return ws;
    }
  }
  return std::make_unique<QueryWorkspace>(&grid_->graph());
}

void KnnEngine::ReleaseWorkspace(std::unique_ptr<QueryWorkspace> workspace) {
  util::lockdep::MutexLock lock(ws_mu_);
  free_workspaces_.push_back(std::move(workspace));
}

util::Status KnnEngine::ValidateLocation(EdgePoint location) const {
  const roadnet::Graph& graph = grid_->graph();
  if (location.edge >= graph.num_edges()) {
    return util::Status::InvalidArgument("query edge out of range");
  }
  if (location.offset > graph.edge(location.edge).weight) {
    return util::Status::InvalidArgument("query offset beyond edge weight");
  }
  return util::Status::OK();
}

util::Result<std::vector<KnnResultEntry>> KnnEngine::Query(
    EdgePoint location, uint32_t k, double t_now, KnnStats* stats,
    ExecMode mode, const QueryControl* control) {
  if (k == 0) return util::Status::InvalidArgument("k must be positive");
  GKNN_RETURN_NOT_OK(ValidateLocation(location));
  GKNN_RETURN_NOT_OK(CheckBudget(control, "admission"));

  WorkspaceLease lease(this);
  QueryWorkspace& ws = *lease;

  KnnStats local_stats;
  KnnStats* st = stats != nullptr ? stats : &local_stats;
  obs::QueryTraceRecord record;
  obs::QueryTraceRecord* trace = tracer_ != nullptr ? &record : nullptr;
  obs::Span total;
  if (trace != nullptr) {
    record.query_id = tracer_->NextQueryId();
    record.t_query = t_now;
    record.k = k;
    record.exec_mode = static_cast<uint8_t>(mode);
    total = tracer_->StartTotal(trace);
  }
  auto finish = [&](util::Result<std::vector<KnnResultEntry>> result) {
    total.Stop();
    if (trace != nullptr) {
      st->query_id = record.query_id;
      record.ok = result.ok();
      record.results =
          result.ok() ? static_cast<uint32_t>(result->size()) : 0;
      record.cpu_fallback = st->cpu_fallback;
      record.cells_examined = st->cells_examined;
      tracer_->FinishQuery(std::move(record));
    }
    return result;
  };

  if (mode == ExecMode::kCpuOnly) {
    ++counters_.cpu_queries;
    return finish(QueryCpu(location, k, t_now, st, trace, ws, control));
  }
  // One GPU attempt: lease a device from the scheduler (or pin to the
  // construction-time device without one), run the pipeline there, and
  // feed the outcome back into the scheduler's health tracking. The lease
  // spans only the attempt — a stream slot, not a query-lifetime claim.
  uint32_t last_device = 0;
  auto gpu_attempt =
      [&](bool avoid_last) -> util::Result<std::vector<KnnResultEntry>> {
    if (scheduler_ == nullptr) {
      last_device = 0;
      return QueryGpu(device_, 0, location, k, t_now, st, trace, ws, control);
    }
    gpusim::Scheduler::Lease sched_lease =
        avoid_last ? scheduler_->AcquireAvoiding(last_device)
                   : scheduler_->Acquire();
    last_device = sched_lease.device_index();
    util::Result<std::vector<KnnResultEntry>> r =
        QueryGpu(sched_lease.device(), sched_lease.device_index(), location, k,
                 t_now, st, trace, ws, control);
    scheduler_->ReportResult(sched_lease.device_index(),
                             !r.ok() && gpusim::IsDeviceError(r.status()));
    return r;
  };
  util::Result<std::vector<KnnResultEntry>> result =
      gpu_attempt(/*avoid_last=*/false);
  // DeadlineExceeded is not a device error, so a budget abort propagates
  // here instead of burning the remaining (already negative) budget on a
  // CPU re-run.
  if (!result.ok() && gpusim::IsDeviceError(result.status())) {
    ++counters_.gpu_failures;
    if (trace != nullptr) ++record.fault_events;
    if (mode == ExecMode::kAuto && scheduler_ != nullptr &&
        scheduler_->num_devices() > 1) {
      // Migrate once: re-run on a different device of the set before
      // surrendering the query to the CPU path. One failed fault domain
      // then costs a retry, not the GPU acceleration.
      result = gpu_attempt(/*avoid_last=*/true);
      if (result.ok()) {
        ++counters_.migrated_queries;
      } else if (gpusim::IsDeviceError(result.status())) {
        ++counters_.gpu_failures;
        if (trace != nullptr) ++record.fault_events;
      }
    }
    if (!result.ok() && gpusim::IsDeviceError(result.status()) &&
        mode == ExecMode::kAuto) {
      ++counters_.fallback_queries;
      // The re-run traces as one kFallback phase; its inner phases get a
      // null record so the fallback span alone accounts for the time.
      obs::Span fallback = PhaseSpan(trace, obs::Phase::kFallback);
      result = QueryCpu(location, k, t_now, st, nullptr, ws, control);
      fallback.Stop();
    }
  }
  return finish(std::move(result));
}

util::Result<std::vector<KnnResultEntry>> KnnEngine::QueryGpu(
    gpusim::Device* device, uint32_t device_index, EdgePoint location,
    uint32_t k, double t_now, KnnStats* stats, obs::QueryTraceRecord* trace,
    QueryWorkspace& ws, const QueryControl* control) {
  const roadnet::Graph& graph = grid_->graph();
  const Edge& query_edge = graph.edge(location.edge);

  KnnStats local_stats;
  KnnStats& st = stats != nullptr ? *stats : local_stats;
  st = KnnStats{};
  const auto ledger_before = device->ledger().totals();
  const double device_clock_before = device->ClockSeconds();
  const double sim_wall_before = device->sim_wall_seconds();
  util::Timer cpu_timer;

  // ---- Step 1 (Alg. 4 lines 1-4): candidate cells + message cleaning -----
  obs::Span expand_span = PhaseSpan(trace, obs::Phase::kExpand);
  std::vector<char> in_l(grid_->num_cells(), 0);
  std::vector<CellId> l_cells;
  auto add_cell = [&](CellId c) {
    if (!in_l[c]) {
      in_l[c] = 1;
      l_cells.push_back(c);
    }
  };
  const CellId query_cell = grid_->CellOfEdge(location.edge);
  add_cell(query_cell);
  // The SDist seed vertex is the query edge's target; make sure its cell is
  // part of the examined region.
  add_cell(grid_->CellOfVertex(query_edge.target));
  for (CellId c : grid_->NeighborCells(query_cell)) add_cell(c);
  expand_span.Stop();
  GKNN_RETURN_NOT_OK(CheckBudget(control, "expand"));

  std::vector<Message> candidates;
  size_t clean_from = 0;     // cells in l_cells[clean_from..) not yet cleaned
  size_t frontier_from = 0;  // cells added in the previous ring
  const double rho_k = RhoK(*options_, k, control);
  for (;;) {
    const std::span<const CellId> to_clean(l_cells.data() + clean_from,
                                           l_cells.size() - clean_from);
    frontier_from = clean_from;
    clean_from = l_cells.size();
    obs::Span clean_span = PhaseSpan(trace, obs::Phase::kClean);
    GKNN_ASSIGN_OR_RETURN(
        MessageCleaner::Outcome outcome,
        cleaner_->Clean(to_clean, t_now, arena_, lists_, device_index,
                        control != nullptr ? &control->deadline : nullptr));
    clean_span.Stop();
    if (trace != nullptr) {
      trace->cells_cleaned += outcome.cells_cleaned;
      trace->messages_shipped += outcome.messages_shipped;
      if (outcome.messages_shipped > outcome.latest.size()) {
        trace->messages_deduped += static_cast<uint32_t>(
            outcome.messages_shipped - outcome.latest.size());
      }
    }
    st.clean_pipeline_seconds += outcome.pipeline_seconds;
    candidates.insert(candidates.end(), outcome.latest.begin(),
                      outcome.latest.end());
    // Per-iteration checkpoint: the clean/expand loop is the unbounded
    // part of the pipeline (it can grow to the whole grid), so the budget
    // is enforced every ring.
    GKNN_RETURN_NOT_OK(CheckBudget(control, "clean"));
    if (static_cast<double>(candidates.size()) >= rho_k) break;
    // Expand one ring: neighbors(L) \ L. Only the previous ring can
    // contribute new neighbors.
    obs::Span ring_span = PhaseSpan(trace, obs::Phase::kExpand);
    const size_t before = l_cells.size();
    for (size_t i = frontier_from; i < before; ++i) {
      for (CellId nb : grid_->NeighborCells(l_cells[i])) add_cell(nb);
    }
    if (l_cells.size() == before) break;  // the whole grid is covered
    ++st.expansion_rounds;
  }
  st.cells_examined = static_cast<uint32_t>(l_cells.size());
  st.candidate_objects = static_cast<uint32_t>(candidates.size());

  // ---- Step 2a (Alg. 5): GPU_SDist over the candidate cells' vertices ----
  obs::Span sdist_span = PhaseSpan(trace, obs::Phase::kSdist);
  std::vector<VertexId> region_vertices;
  for (CellId c : l_cells) grid_->AppendCellVertices(c, &region_vertices);
  st.candidate_vertices = static_cast<uint32_t>(region_vertices.size());

  ++ws.query_epoch;
  for (uint32_t i = 0; i < region_vertices.size(); ++i) {
    ws.local_id_of_vertex[region_vertices[i]] = i;
    ws.local_id_epoch[region_vertices[i]] = ws.query_epoch;
  }
  // Local id of a vertex, or kInvalidVertex when it is outside the region.
  auto local_of = [&](VertexId v) -> uint32_t {
    return ws.local_id_epoch[v] == ws.query_epoch ? ws.local_id_of_vertex[v]
                                                  : kInvalidVertex;
  };

  GKNN_ASSIGN_OR_RETURN(auto device_dist,
                        DeviceBuffer<Distance>::Allocate(
                            device, region_vertices.size(), "D"));
  {
    std::vector<Distance> init(region_vertices.size(), kInfiniteDistance);
    const uint32_t seed = local_of(query_edge.target);
    if (seed != kInvalidVertex) {
      init[seed] = query_edge.weight - location.offset;
    }
    GKNN_RETURN_NOT_OK(device_dist.Upload(init).status());
  }
  // gknn-lint: allow(device-span): host reads D only after the kernels
  // complete; in-kernel accesses go through the checked Load/AtomicMin.
  auto dist_span = device_dist.device_span();

  // One thread per vertex entry (real or virtual); each relaxes the
  // delta_v in-edges it stores, with a device-wide barrier per round.
  // Distinct threads can touch the same D entry within a round — a virtual
  // continuation slot shares its destination vertex with the real entry,
  // and every thread reads the labels of its sources while their owners
  // rewrite them — so the relaxation lowers D through AtomicMin, exactly
  // like a real CUDA Bellman-Ford kernel. The plain Load of a source label
  // beside those atomics reads some settled value of the round; either
  // value keeps the label an upper bound that the fixpoint iteration
  // finishes off.
  struct SlotRef {
    CellId cell;
    uint32_t slot;
  };
  std::vector<SlotRef> slots;
  for (CellId c : l_cells) {
    for (uint32_t i = 0; i < grid_->NumSlots(c); ++i) {
      slots.push_back(SlotRef{c, i});
    }
  }
  GKNN_ASSIGN_OR_RETURN(
      const auto sdist_stats,
      device->LaunchIterative(
      "GPU_SDist", static_cast<uint32_t>(slots.size()),
      /*max_iters=*/std::max<uint32_t>(1, st.candidate_vertices),
      options_->sdist_early_exit,
      [this, &slots, &local_of, &device_dist](ThreadCtx& ctx, uint32_t) {
        const SlotRef ref = slots[ctx.thread_id];
        const GraphGrid::VertexSlot& slot = grid_->Slot(ref.cell, ref.slot);
        bool changed = false;
        if (!slot.empty()) {
          const uint32_t self = local_of(slot.vertex);
          for (const GraphGrid::EdgeEntry& e :
               grid_->SlotEdges(ref.cell, ref.slot)) {
            const uint32_t src = local_of(e.source);
            if (src == kInvalidVertex) continue;  // edge from outside L
            const Distance d = device_dist.Load(ctx, src);
            if (d != kInfiniteDistance &&
                device_dist.AtomicMin(ctx, self, d + e.weight) >
                    d + e.weight) {
              changed = true;
            }
          }
        }
        ctx.CountOps(grid_->delta_v());
        return changed;
      }));
  st.sdist_iterations = sdist_stats.iterations;
  sdist_span.Stop();
  GKNN_RETURN_NOT_OK(CheckBudget(control, "sdist"));

  // ---- Step 2b: GPU_First_k — candidate distances + k smallest -----------
  obs::Span topk_span = PhaseSpan(trace, obs::Phase::kTopk);
  auto object_distance = [&graph, &local_of, &device_dist, location](
                             ThreadCtx& ctx, const Message& m) -> Distance {
    const Edge& e = graph.edge(m.edge);
    Distance d = kInfiniteDistance;
    const uint32_t src = local_of(e.source);
    if (src != kInvalidVertex) {
      const Distance ds = device_dist.Load(ctx, src);
      if (ds != kInfiniteDistance) d = ds + m.offset;
    }
    if (m.edge == location.edge && m.offset >= location.offset) {
      // Object ahead of the query on the same edge: direct along-edge path.
      d = std::min<Distance>(d, m.offset - location.offset);
    }
    return d;
  };

  // Per-candidate distance entries, computed and selected on the device.
  // Ties break by object id before buffer position, so the selected
  // *objects* do not depend on the order cleaning emitted the candidates
  // in — a concurrent run and its single-threaded replay pick the same
  // winners.
  struct DistEntry {
    Distance distance = kInfiniteDistance;
    ObjectId object = std::numeric_limits<ObjectId>::max();
    uint32_t index = std::numeric_limits<uint32_t>::max();
    bool operator<(const DistEntry& other) const {
      if (distance != other.distance) return distance < other.distance;
      if (object != other.object) return object < other.object;
      return index < other.index;
    }
  };
  std::vector<KnnResultEntry> candidate_topk;
  if (!candidates.empty()) {
    GKNN_ASSIGN_OR_RETURN(auto device_entries,
                          DeviceBuffer<DistEntry>::Allocate(
                              device, candidates.size(), "entries"));
    // gknn-lint: allow(device-span): handed to gpusim::TopKSmallest, which
    // performs its own checked accesses.
    auto entry_span = device_entries.device_span();
    GKNN_RETURN_NOT_OK(
        device
            ->Launch("GPU_First_k/distances",
                     static_cast<uint32_t>(candidates.size()),
                     [&candidates, &device_entries,
                      &object_distance](ThreadCtx& ctx) {
                       const Message& m = candidates[ctx.thread_id];
                       device_entries.Store(
                           ctx, ctx.thread_id,
                           DistEntry{object_distance(ctx, m), m.object,
                                     ctx.thread_id});
                       ctx.CountOps(2);
                     })
            .status());
    // GPU_First_k: warp-bitonic k-smallest selection on the device; the k
    // winners come back to the host (charged inside TopKSmallest).
    GKNN_ASSIGN_OR_RETURN(const auto selected,
                          gpusim::TopKSmallest<DistEntry>(
                              device, entry_span, k, DistEntry{}));
    for (const DistEntry& e : selected) {
      if (e.distance != kInfiniteDistance) {
        candidate_topk.push_back(
            KnnResultEntry{candidates[e.index].object, e.distance});
      }
    }
  }
  const Distance l = candidate_topk.size() >= k
                         ? candidate_topk.back().distance
                         : kInfiniteDistance;
  topk_span.Stop();
  GKNN_RETURN_NOT_OK(CheckBudget(control, "topk"));

  // ---- Step 2c: GPU_Unresolved — boundary vertices with D[v] < l ---------
  // Stream compaction on the device: flag kernel -> exclusive scan ->
  // scatter kernel, then one copy of the compacted set to the host.
  obs::Span unresolved_span = PhaseSpan(trace, obs::Phase::kUnresolved);
  using UnresolvedEntry = std::pair<VertexId, Distance>;
  std::vector<UnresolvedEntry> unresolved;
  {
    const uint32_t n = static_cast<uint32_t>(region_vertices.size());
    auto is_unresolved = [this, &device_dist, l, &graph, &region_vertices,
                          &in_l](ThreadCtx& ctx, uint32_t i) {
      if (device_dist.Load(ctx, i) >= l) return false;
      for (EdgeId id : graph.OutEdgeIds(region_vertices[i])) {
        if (!in_l[grid_->CellOfVertex(graph.edge(id).target)]) return true;
      }
      return false;
    };
    GKNN_ASSIGN_OR_RETURN(
        auto flags, DeviceBuffer<uint32_t>::Allocate(device, n, "flags"));
    // gknn-lint: allow(device-span): handed to gpusim::ExclusiveScan, which
    // performs its own checked accesses.
    auto flag_span = flags.device_span();
    GKNN_RETURN_NOT_OK(
        device
            ->Launch("GPU_Unresolved/flag", n,
                     [&flags, &is_unresolved, &graph,
                      &region_vertices](ThreadCtx& ctx) {
                       flags.Store(ctx, ctx.thread_id,
                                   is_unresolved(ctx, ctx.thread_id) ? 1 : 0);
                       ctx.CountOps(
                           1 + graph.OutDegree(region_vertices[ctx.thread_id]));
                     })
            .status());
    GKNN_ASSIGN_OR_RETURN(const uint32_t total,
                          gpusim::ExclusiveScan(device, flag_span));
    if (total > 0) {
      GKNN_ASSIGN_OR_RETURN(auto compacted,
                            DeviceBuffer<UnresolvedEntry>::Allocate(
                                device, total, "unresolved"));
      GKNN_RETURN_NOT_OK(
          device
              ->Launch("GPU_Unresolved/scatter", n,
                       [&is_unresolved, &compacted, &flags, &region_vertices,
                        &device_dist](ThreadCtx& ctx) {
                         ctx.CountOps(1);
                         if (is_unresolved(ctx, ctx.thread_id)) {
                           compacted.Store(
                               ctx, flags.Load(ctx, ctx.thread_id),
                               UnresolvedEntry{
                                   region_vertices[ctx.thread_id],
                                   device_dist.Load(ctx, ctx.thread_id)});
                         }
                       })
              .status());
      GKNN_ASSIGN_OR_RETURN(unresolved, compacted.Download());
    }
  }
  st.unresolved_vertices = static_cast<uint32_t>(unresolved.size());
  // Mark the seeds so the refinement prune below can recognize them.
  ++ws.seed_epoch;
  for (const auto& [v, dv] : unresolved) {
    (void)dv;
    ws.seed_epoch_of[v] = ws.seed_epoch;
  }
  unresolved_span.Stop();
  GKNN_RETURN_NOT_OK(CheckBudget(control, "unresolved"));

  // ---- Step 3 (Alg. 6): Refine_kNN on the host ---------------------------
  obs::Span refine_span = PhaseSpan(trace, obs::Phase::kRefine);
  std::vector<KnnResultEntry> refined;
  if (!unresolved.empty()) {
    // One multi-source bounded Dijkstra over all unresolved vertices, each
    // seeded at its already-computed distance D[v]. Equivalent to the
    // paper's per-vertex searches of radius l - D[v] (both settle exactly
    // the locations within absolute distance l through some unresolved
    // vertex) but shares the work their overlapping ranges would repeat,
    // and settles vertices in one deterministic priority order — so a
    // concurrent run and its single-threaded replay find the same objects.
    roadnet::BoundedDijkstra& search = ws.search;
    search.set_deadline(control != nullptr ? &control->deadline : nullptr);
    search.BeginSearch();
    for (const auto& [v, dv] : unresolved) search.SeedMore(v, dv);
    // The search bound starts at l and tightens as refinement discovers
    // closer objects: the running kth-best estimate over candidates +
    // finds.
    KthBound bound(k);
    for (const KnnResultEntry& c : candidate_topk) {
      bound.Offer(c.object, c.distance);
    }
    search.SearchPrunedDynamic(
        [&]() -> Distance { return bound.threshold(); },
        [&](VertexId x, Distance dx) {
          for (EdgeId id : graph.OutEdgeIds(x)) {
            auto it = objects_on_edge_->find(id);
            if (it == objects_on_edge_->end()) continue;
            for (ObjectId o : it->second) {
              const ObjectTable::Entry* entry = object_table_->Find(o);
              if (entry == nullptr || entry->edge != id) continue;
              refined.push_back(KnnResultEntry{o, dx + entry->offset});
              bound.Offer(o, dx + entry->offset);
            }
          }
          // Prune: a non-seed region vertex settled at >= its SDist label
          // adds nothing — its in-region continuations were already relaxed
          // by GPU_SDist, and any out-of-region edge would have made it an
          // unresolved seed itself (or its label is >= l, beyond the
          // radius). Seeds always expand: they are the gateways out of the
          // region.
          const uint32_t lx = local_of(x);
          if (lx != kInvalidVertex && ws.seed_epoch_of[x] != ws.seed_epoch &&
              dx >= dist_span[lx]) {
            return false;
          }
          return true;
        });
  }
  refine_span.Stop();
  GKNN_RETURN_NOT_OK(CheckBudget(control, "refine"));

  // ---- Final merge ---------------------------------------------------------
  // Candidates beyond the top k cannot enter the answer (their distance is
  // >= l, and k candidates at <= l exist); refinement supplies any closer
  // path to them on its own. So merging top-k + refined is sufficient.
  std::unordered_map<ObjectId, Distance> best;
  best.reserve(candidate_topk.size());
  for (const KnnResultEntry& e : candidate_topk) {
    auto [it, inserted] = best.emplace(e.object, e.distance);
    if (!inserted) it->second = std::min(it->second, e.distance);
  }
  uint32_t refined_objects = 0;
  for (const KnnResultEntry& e : refined) {
    auto [it, inserted] = best.emplace(e.object, e.distance);
    if (inserted) {
      ++refined_objects;
    } else {
      it->second = std::min(it->second, e.distance);
    }
  }
  st.refined_objects = refined_objects;

  util::BoundedTopK<KnnResultEntry> final_topk(k);
  for (const auto& [object, distance] : best) {
    final_topk.Offer(KnnResultEntry{object, distance});
  }

  const auto ledger_after = device->ledger().totals();
  st.h2d_bytes = ledger_after.h2d_bytes - ledger_before.h2d_bytes;
  st.d2h_bytes = ledger_after.d2h_bytes - ledger_before.d2h_bytes;
  st.transfer_seconds =
      ledger_after.total_seconds() - ledger_before.total_seconds();
  st.gpu_seconds = device->ClockSeconds() - device_clock_before;
  // Host time excludes the wall clock the simulator spent executing
  // kernels functionally — that work runs on the device in a real
  // deployment and is billed through gpu_seconds. Under concurrent
  // queries the ledger and clock deltas fold in any overlapping query's
  // device work; exact per-query attribution needs a quiesced device.
  st.cpu_seconds =
      std::max(0.0, cpu_timer.ElapsedSeconds() -
                        (device->sim_wall_seconds() - sim_wall_before));

  return final_topk.TakeSorted();
}

util::Result<std::vector<KnnResultEntry>> KnnEngine::QueryRange(
    EdgePoint location, Distance radius, double t_now, KnnStats* stats,
    ExecMode mode, const QueryControl* control) {
  GKNN_RETURN_NOT_OK(ValidateLocation(location));
  GKNN_RETURN_NOT_OK(CheckBudget(control, "admission"));

  WorkspaceLease lease(this);
  QueryWorkspace& ws = *lease;

  KnnStats local_stats;
  KnnStats* st = stats != nullptr ? stats : &local_stats;
  obs::QueryTraceRecord record;
  obs::QueryTraceRecord* trace = tracer_ != nullptr ? &record : nullptr;
  obs::Span total;
  if (trace != nullptr) {
    record.query_id = tracer_->NextQueryId();
    record.t_query = t_now;
    record.range = true;
    record.exec_mode = static_cast<uint8_t>(mode);
    total = tracer_->StartTotal(trace);
  }
  auto finish = [&](util::Result<std::vector<KnnResultEntry>> result) {
    total.Stop();
    if (trace != nullptr) {
      st->query_id = record.query_id;
      record.ok = result.ok();
      record.results =
          result.ok() ? static_cast<uint32_t>(result->size()) : 0;
      record.cpu_fallback = st->cpu_fallback;
      record.cells_examined = st->cells_examined;
      tracer_->FinishQuery(std::move(record));
    }
    return result;
  };

  if (mode == ExecMode::kCpuOnly) {
    ++counters_.cpu_queries;
    return finish(
        QueryRangeCpu(location, radius, t_now, st, trace, ws, control));
  }
  // Same lease-per-attempt + migrate-once policy as Query above.
  uint32_t last_device = 0;
  auto gpu_attempt =
      [&](bool avoid_last) -> util::Result<std::vector<KnnResultEntry>> {
    if (scheduler_ == nullptr) {
      last_device = 0;
      return QueryRangeGpu(device_, 0, location, radius, t_now, st, trace, ws,
                           control);
    }
    gpusim::Scheduler::Lease sched_lease =
        avoid_last ? scheduler_->AcquireAvoiding(last_device)
                   : scheduler_->Acquire();
    last_device = sched_lease.device_index();
    util::Result<std::vector<KnnResultEntry>> r =
        QueryRangeGpu(sched_lease.device(), sched_lease.device_index(),
                      location, radius, t_now, st, trace, ws, control);
    scheduler_->ReportResult(sched_lease.device_index(),
                             !r.ok() && gpusim::IsDeviceError(r.status()));
    return r;
  };
  util::Result<std::vector<KnnResultEntry>> result =
      gpu_attempt(/*avoid_last=*/false);
  if (!result.ok() && gpusim::IsDeviceError(result.status())) {
    ++counters_.gpu_failures;
    if (trace != nullptr) ++record.fault_events;
    if (mode == ExecMode::kAuto && scheduler_ != nullptr &&
        scheduler_->num_devices() > 1) {
      result = gpu_attempt(/*avoid_last=*/true);
      if (result.ok()) {
        ++counters_.migrated_queries;
      } else if (gpusim::IsDeviceError(result.status())) {
        ++counters_.gpu_failures;
        if (trace != nullptr) ++record.fault_events;
      }
    }
    if (!result.ok() && gpusim::IsDeviceError(result.status()) &&
        mode == ExecMode::kAuto) {
      ++counters_.fallback_queries;
      obs::Span fallback = PhaseSpan(trace, obs::Phase::kFallback);
      result = QueryRangeCpu(location, radius, t_now, st, nullptr, ws, control);
      fallback.Stop();
    }
  }
  return finish(std::move(result));
}

util::Result<std::vector<KnnResultEntry>> KnnEngine::QueryRangeGpu(
    gpusim::Device* device, uint32_t device_index, EdgePoint location,
    Distance radius, double t_now, KnnStats* stats,
    obs::QueryTraceRecord* trace, QueryWorkspace& ws,
    const QueryControl* control) {
  const roadnet::Graph& graph = grid_->graph();
  const Edge& query_edge = graph.edge(location.edge);

  KnnStats local_stats;
  KnnStats& st = stats != nullptr ? *stats : local_stats;
  st = KnnStats{};
  const double device_clock_before = device->ClockSeconds();
  const double sim_wall_before = device->sim_wall_seconds();
  util::Timer cpu_timer;

  // Clean the query's immediate cells; correctness beyond them comes from
  // the boundary refinement (every location within `radius` outside the
  // region is reached through an unresolved vertex).
  std::vector<char> in_l(grid_->num_cells(), 0);
  std::vector<CellId> l_cells;
  auto add_cell = [&](CellId c) {
    if (!in_l[c]) {
      in_l[c] = 1;
      l_cells.push_back(c);
    }
  };
  obs::Span expand_span = PhaseSpan(trace, obs::Phase::kExpand);
  const CellId query_cell = grid_->CellOfEdge(location.edge);
  add_cell(query_cell);
  add_cell(grid_->CellOfVertex(query_edge.target));
  for (CellId nb : grid_->NeighborCells(query_cell)) add_cell(nb);
  expand_span.Stop();
  obs::Span clean_span = PhaseSpan(trace, obs::Phase::kClean);
  GKNN_ASSIGN_OR_RETURN(
      MessageCleaner::Outcome outcome,
      cleaner_->Clean(l_cells, t_now, arena_, lists_, device_index,
                      control != nullptr ? &control->deadline : nullptr));
  clean_span.Stop();
  if (trace != nullptr) {
    trace->cells_cleaned += outcome.cells_cleaned;
    trace->messages_shipped += outcome.messages_shipped;
    if (outcome.messages_shipped > outcome.latest.size()) {
      trace->messages_deduped += static_cast<uint32_t>(
          outcome.messages_shipped - outcome.latest.size());
    }
  }
  st.clean_pipeline_seconds = outcome.pipeline_seconds;
  st.cells_examined = static_cast<uint32_t>(l_cells.size());
  st.candidate_objects = static_cast<uint32_t>(outcome.latest.size());
  GKNN_RETURN_NOT_OK(CheckBudget(control, "clean"));

  // GPU_SDist over the region (same kernel as the kNN path).
  obs::Span sdist_span = PhaseSpan(trace, obs::Phase::kSdist);
  std::vector<VertexId> region_vertices;
  for (CellId c : l_cells) grid_->AppendCellVertices(c, &region_vertices);
  st.candidate_vertices = static_cast<uint32_t>(region_vertices.size());
  ++ws.query_epoch;
  for (uint32_t i = 0; i < region_vertices.size(); ++i) {
    ws.local_id_of_vertex[region_vertices[i]] = i;
    ws.local_id_epoch[region_vertices[i]] = ws.query_epoch;
  }
  auto local_of = [&](VertexId v) -> uint32_t {
    return ws.local_id_epoch[v] == ws.query_epoch ? ws.local_id_of_vertex[v]
                                                  : kInvalidVertex;
  };
  GKNN_ASSIGN_OR_RETURN(auto device_dist,
                        DeviceBuffer<Distance>::Allocate(
                            device, region_vertices.size(), "D"));
  {
    std::vector<Distance> init(region_vertices.size(), kInfiniteDistance);
    const uint32_t seed = local_of(query_edge.target);
    if (seed != kInvalidVertex) {
      init[seed] = query_edge.weight - location.offset;
    }
    GKNN_RETURN_NOT_OK(device_dist.Upload(init).status());
  }
  // gknn-lint: allow(device-span): host reads D only after the kernels
  // complete; in-kernel accesses go through the checked Load/AtomicMin.
  auto dist_span = device_dist.device_span();
  struct SlotRef {
    CellId cell;
    uint32_t slot;
  };
  std::vector<SlotRef> slots;
  for (CellId c : l_cells) {
    for (uint32_t i = 0; i < grid_->NumSlots(c); ++i) {
      slots.push_back(SlotRef{c, i});
    }
  }
  // AtomicMin relaxation, same as the kNN path's GPU_SDist.
  GKNN_ASSIGN_OR_RETURN(
      const auto sdist_stats,
      device->LaunchIterative(
      "GPU_SDist", static_cast<uint32_t>(slots.size()),
      std::max<uint32_t>(1, st.candidate_vertices),
      options_->sdist_early_exit,
      [this, &slots, &local_of, &device_dist](ThreadCtx& ctx, uint32_t) {
        const SlotRef ref = slots[ctx.thread_id];
        const GraphGrid::VertexSlot& slot = grid_->Slot(ref.cell, ref.slot);
        bool changed = false;
        if (!slot.empty()) {
          const uint32_t self = local_of(slot.vertex);
          for (const GraphGrid::EdgeEntry& e :
               grid_->SlotEdges(ref.cell, ref.slot)) {
            const uint32_t src = local_of(e.source);
            if (src == kInvalidVertex) continue;
            const Distance d = device_dist.Load(ctx, src);
            if (d != kInfiniteDistance &&
                device_dist.AtomicMin(ctx, self, d + e.weight) >
                    d + e.weight) {
              changed = true;
            }
          }
        }
        ctx.CountOps(grid_->delta_v());
        return changed;
      }));
  st.sdist_iterations = sdist_stats.iterations;
  sdist_span.Stop();
  GKNN_RETURN_NOT_OK(CheckBudget(control, "sdist"));

  // In-range candidates of the cleaned region.
  obs::Span topk_span = PhaseSpan(trace, obs::Phase::kTopk);
  std::unordered_map<ObjectId, Distance> best;
  for (const Message& m : outcome.latest) {
    const Edge& e = graph.edge(m.edge);
    Distance d = kInfiniteDistance;
    const uint32_t src = local_of(e.source);
    if (src != kInvalidVertex && dist_span[src] != kInfiniteDistance) {
      d = dist_span[src] + m.offset;
    }
    if (m.edge == location.edge && m.offset >= location.offset) {
      d = std::min<Distance>(d, m.offset - location.offset);
    }
    if (d <= radius) {
      auto [it, inserted] = best.emplace(m.object, d);
      if (!inserted) it->second = std::min(it->second, d);
    }
  }

  topk_span.Stop();

  // Unresolved boundary vertices within the radius, then the outward
  // refinement (fixed absolute bound, domination prune as in the kNN
  // path).
  obs::Span unresolved_span = PhaseSpan(trace, obs::Phase::kUnresolved);
  std::vector<std::pair<VertexId, Distance>> unresolved;
  for (uint32_t i = 0; i < region_vertices.size(); ++i) {
    const VertexId v = region_vertices[i];
    const Distance d = dist_span[i];
    if (d >= radius) continue;
    for (EdgeId id : graph.OutEdgeIds(v)) {
      if (!in_l[grid_->CellOfVertex(graph.edge(id).target)]) {
        unresolved.emplace_back(v, d);
        break;
      }
    }
  }
  st.unresolved_vertices = static_cast<uint32_t>(unresolved.size());
  ++ws.seed_epoch;
  for (const auto& [v, dv] : unresolved) {
    (void)dv;
    ws.seed_epoch_of[v] = ws.seed_epoch;
  }
  unresolved_span.Stop();
  GKNN_RETURN_NOT_OK(CheckBudget(control, "unresolved"));
  obs::Span refine_span = PhaseSpan(trace, obs::Phase::kRefine);
  if (!unresolved.empty()) {
    roadnet::BoundedDijkstra& search = ws.search;
    search.set_deadline(control != nullptr ? &control->deadline : nullptr);
    search.BeginSearch();
    for (const auto& [v, dv] : unresolved) search.SeedMore(v, dv);
    search.SearchPruned(radius, [&](VertexId x, Distance dx) {
      for (EdgeId id : graph.OutEdgeIds(x)) {
        auto it = objects_on_edge_->find(id);
        if (it == objects_on_edge_->end()) continue;
        for (ObjectId o : it->second) {
          const ObjectTable::Entry* entry = object_table_->Find(o);
          if (entry == nullptr || entry->edge != id) continue;
          const Distance d = dx + entry->offset;
          if (d <= radius) {
            auto [bit, inserted] = best.emplace(o, d);
            if (!inserted) bit->second = std::min(bit->second, d);
            ++st.refined_objects;
          }
        }
      }
      const uint32_t lx = local_of(x);
      return !(lx != kInvalidVertex && ws.seed_epoch_of[x] != ws.seed_epoch &&
               dx >= dist_span[lx]);
    });
  }
  refine_span.Stop();
  GKNN_RETURN_NOT_OK(CheckBudget(control, "refine"));

  std::vector<KnnResultEntry> result;
  result.reserve(best.size());
  for (const auto& [object, d] : best) {
    result.push_back(KnnResultEntry{object, d});
  }
  std::sort(result.begin(), result.end());

  st.gpu_seconds = device->ClockSeconds() - device_clock_before;
  st.cpu_seconds =
      std::max(0.0, cpu_timer.ElapsedSeconds() -
                        (device->sim_wall_seconds() - sim_wall_before));
  return result;
}

// ---- CPU-only execution (degraded mode) -----------------------------------
//
// The index maintains object_table_ and objects_on_edge_ eagerly at ingest
// time, so the current location of every object is known on the host
// without any message cleaning. A single bounded Dijkstra from the query
// point over those tables is therefore *exact* — the same answers as the
// full pipeline — just without the GPU's parallelism. Message lists are
// still compacted (host-side) so degraded operation does not let them grow
// without bound.

util::Result<std::vector<KnnResultEntry>> KnnEngine::QueryCpu(
    EdgePoint location, uint32_t k, double t_now, KnnStats* stats,
    obs::QueryTraceRecord* trace, QueryWorkspace& ws,
    const QueryControl* control) {
  const roadnet::Graph& graph = grid_->graph();
  const Edge& query_edge = graph.edge(location.edge);
  KnnStats local_stats;
  KnnStats& st = stats != nullptr ? *stats : local_stats;
  st = KnnStats{};
  st.cpu_fallback = true;
  util::Timer cpu_timer;

  // Host-side compaction of the query's immediate cells: same maintenance
  // the GPU path would have performed, zero device work.
  std::vector<CellId> l_cells;
  {
    std::vector<char> in_l(grid_->num_cells(), 0);
    auto add_cell = [&](CellId c) {
      if (!in_l[c]) {
        in_l[c] = 1;
        l_cells.push_back(c);
      }
    };
    const CellId query_cell = grid_->CellOfEdge(location.edge);
    add_cell(query_cell);
    add_cell(grid_->CellOfVertex(query_edge.target));
    for (CellId nb : grid_->NeighborCells(query_cell)) add_cell(nb);
  }
  obs::Span clean_span = PhaseSpan(trace, obs::Phase::kClean);
  GKNN_ASSIGN_OR_RETURN(MessageCleaner::Outcome outcome,
                        cleaner_->CleanCpu(l_cells, t_now, arena_, lists_));
  clean_span.Stop();
  if (trace != nullptr) trace->cells_cleaned += outcome.cells_cleaned;
  st.cells_examined = static_cast<uint32_t>(l_cells.size());
  st.candidate_objects = static_cast<uint32_t>(outcome.latest.size());
  GKNN_RETURN_NOT_OK(CheckBudget(control, "clean"));

  obs::Span refine_span = PhaseSpan(trace, obs::Phase::kRefine);
  std::unordered_map<ObjectId, Distance> best;
  KthBound bound(k);
  auto offer = [&](ObjectId o, Distance d) {
    auto [it, inserted] = best.emplace(o, d);
    if (!inserted) it->second = std::min(it->second, d);
    bound.Offer(o, d);
  };
  // Objects ahead of the query on its own edge: direct along-edge path,
  // the one route that does not pass through the edge's target.
  if (auto it = objects_on_edge_->find(location.edge);
      it != objects_on_edge_->end()) {
    for (ObjectId o : it->second) {
      const ObjectTable::Entry* entry = object_table_->Find(o);
      if (entry != nullptr && entry->edge == location.edge &&
          entry->offset >= location.offset) {
        offer(o, entry->offset - location.offset);
      }
    }
  }
  // Every other route starts at the query edge's target. The search radius
  // is the running kth-best bound over distinct objects — it starts
  // unbounded (the whole network is in scope when fewer than k objects are
  // known) and shrinks as objects are discovered.
  roadnet::BoundedDijkstra& search = ws.search;
  search.set_deadline(control != nullptr ? &control->deadline : nullptr);
  search.BeginSearch();
  search.SeedMore(query_edge.target, query_edge.weight - location.offset);
  search.SearchPrunedDynamic(
      [&]() -> Distance { return bound.threshold(); },
      [&](VertexId x, Distance dx) {
        for (EdgeId id : graph.OutEdgeIds(x)) {
          auto oit = objects_on_edge_->find(id);
          if (oit == objects_on_edge_->end()) continue;
          for (ObjectId o : oit->second) {
            const ObjectTable::Entry* entry = object_table_->Find(o);
            if (entry == nullptr || entry->edge != id) continue;
            offer(o, dx + entry->offset);
          }
        }
        return true;
      });
  refine_span.Stop();
  GKNN_RETURN_NOT_OK(CheckBudget(control, "refine"));
  st.refined_objects = static_cast<uint32_t>(best.size());

  util::BoundedTopK<KnnResultEntry> final_topk(k);
  for (const auto& [object, distance] : best) {
    final_topk.Offer(KnnResultEntry{object, distance});
  }
  st.cpu_seconds = cpu_timer.ElapsedSeconds();
  return final_topk.TakeSorted();
}

util::Result<std::vector<KnnResultEntry>> KnnEngine::QueryRangeCpu(
    EdgePoint location, Distance radius, double t_now, KnnStats* stats,
    obs::QueryTraceRecord* trace, QueryWorkspace& ws,
    const QueryControl* control) {
  const roadnet::Graph& graph = grid_->graph();
  const Edge& query_edge = graph.edge(location.edge);
  KnnStats local_stats;
  KnnStats& st = stats != nullptr ? *stats : local_stats;
  st = KnnStats{};
  st.cpu_fallback = true;
  util::Timer cpu_timer;

  std::vector<CellId> l_cells;
  {
    std::vector<char> in_l(grid_->num_cells(), 0);
    auto add_cell = [&](CellId c) {
      if (!in_l[c]) {
        in_l[c] = 1;
        l_cells.push_back(c);
      }
    };
    const CellId query_cell = grid_->CellOfEdge(location.edge);
    add_cell(query_cell);
    add_cell(grid_->CellOfVertex(query_edge.target));
    for (CellId nb : grid_->NeighborCells(query_cell)) add_cell(nb);
  }
  obs::Span clean_span = PhaseSpan(trace, obs::Phase::kClean);
  GKNN_ASSIGN_OR_RETURN(MessageCleaner::Outcome outcome,
                        cleaner_->CleanCpu(l_cells, t_now, arena_, lists_));
  clean_span.Stop();
  if (trace != nullptr) trace->cells_cleaned += outcome.cells_cleaned;
  st.cells_examined = static_cast<uint32_t>(l_cells.size());
  st.candidate_objects = static_cast<uint32_t>(outcome.latest.size());
  GKNN_RETURN_NOT_OK(CheckBudget(control, "clean"));

  obs::Span refine_span = PhaseSpan(trace, obs::Phase::kRefine);
  std::unordered_map<ObjectId, Distance> best;
  auto offer = [&](ObjectId o, Distance d) {
    if (d > radius) return;
    auto [it, inserted] = best.emplace(o, d);
    if (!inserted) it->second = std::min(it->second, d);
  };
  if (auto it = objects_on_edge_->find(location.edge);
      it != objects_on_edge_->end()) {
    for (ObjectId o : it->second) {
      const ObjectTable::Entry* entry = object_table_->Find(o);
      if (entry != nullptr && entry->edge == location.edge &&
          entry->offset >= location.offset) {
        offer(o, entry->offset - location.offset);
      }
    }
  }
  roadnet::BoundedDijkstra& search = ws.search;
  search.set_deadline(control != nullptr ? &control->deadline : nullptr);
  search.BeginSearch();
  search.SeedMore(query_edge.target, query_edge.weight - location.offset);
  search.SearchPruned(radius, [&](VertexId x, Distance dx) {
    for (EdgeId id : graph.OutEdgeIds(x)) {
      auto oit = objects_on_edge_->find(id);
      if (oit == objects_on_edge_->end()) continue;
      for (ObjectId o : oit->second) {
        const ObjectTable::Entry* entry = object_table_->Find(o);
        if (entry == nullptr || entry->edge != id) continue;
        offer(o, dx + entry->offset);
      }
    }
    return true;
  });
  refine_span.Stop();
  GKNN_RETURN_NOT_OK(CheckBudget(control, "refine"));
  st.refined_objects = static_cast<uint32_t>(best.size());

  std::vector<KnnResultEntry> result;
  result.reserve(best.size());
  for (const auto& [object, d] : best) {
    result.push_back(KnnResultEntry{object, d});
  }
  std::sort(result.begin(), result.end());
  st.cpu_seconds = cpu_timer.ElapsedSeconds();
  return result;
}

}  // namespace gknn::core
