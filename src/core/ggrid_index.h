#ifndef GKNN_CORE_GGRID_INDEX_H_
#define GKNN_CORE_GGRID_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/graph_grid.h"
#include "core/knn_engine.h"
#include "core/message_cleaner.h"
#include "core/message_list.h"
#include "core/object_table.h"
#include "core/options.h"
#include "core/types.h"
#include "gpusim/device.h"
#include "gpusim/device_buffer.h"
#include "gpusim/device_set.h"
#include "gpusim/scheduler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/result.h"

namespace gknn::core {

/// The G-Grid index (paper §III): graph grid + object table + per-cell
/// message lists, with lazy GPU-cleaned updates and CPU-GPU collaborative
/// kNN queries.
///
/// Usage:
///   gpusim::Device device;
///   auto index = GGridIndex::Build(&graph, options, &device);
///   index->Ingest(object_id, {edge, offset}, now);     // per update
///   auto result = index->QueryKnn({edge, offset}, k, now);
///
/// The graph and device must outlive the index.
///
/// Thread-safety (docs/CONCURRENCY.md): the query methods — QueryKnn,
/// QueryRange, QueryKnnBatch — may run concurrently with each other; the
/// lazy message cleaning they perform is serialized per cell inside
/// MessageCleaner, and per-query scratch lives in KnnEngine workspaces.
/// Everything that *writes* the index (Ingest, Remove, CleanCells,
/// TrimCaches, Save/LoadSnapshot) requires exclusive access: no query may
/// be in flight. QueryServer enforces this with a reader-writer lock.
class GGridIndex {
 public:
  /// Size report matching Fig. 6's breakdown.
  struct MemoryBreakdown {
    uint64_t grid_cpu = 0;       // graph grid arrays (host copy)
    uint64_t object_table = 0;   // hash table of latest locations
    uint64_t message_lists = 0;  // bucket arena + list headers
    uint64_t support = 0;        // eager edge->objects registry
    uint64_t grid_gpu = 0;       // device-resident copy of the grid
    uint64_t cpu_total() const {
      return grid_cpu + object_table + message_lists + support;
    }
    uint64_t total() const { return cpu_total() + grid_gpu; }
  };

  /// Cumulative counters for the benchmark harness. Relaxed atomics:
  /// queries bump queries_processed (and clean_fallbacks) concurrently.
  /// Read each field individually; the set is only mutually consistent
  /// while no query or update is in flight.
  struct Counters {
    std::atomic<uint64_t> updates_ingested{0};
    std::atomic<uint64_t> tombstones_written{0};
    std::atomic<uint64_t> queries_processed{0};
    /// Cleaning batches that hit a device error and were transparently
    /// re-run on the host (the GPU pass rolls back transactionally first).
    std::atomic<uint64_t> clean_fallbacks{0};
  };

  /// Single-device form: wraps `device` in an internal singleton set. The
  /// graph and device must outlive the index.
  static util::Result<std::unique_ptr<GGridIndex>> Build(
      const roadnet::Graph* graph, const GGridOptions& options,
      gpusim::Device* device);

  /// Multi-device form: the index mirrors the grid onto every device of
  /// the set, cleans and queries through a multi-stream scheduler that
  /// spreads concurrent work across the devices, and migrates around a
  /// failed fault domain. Answers are identical for every set size
  /// (test_scheduler_differential). The set must outlive the index.
  static util::Result<std::unique_ptr<GGridIndex>> Build(
      const roadnet::Graph* graph, const GGridOptions& options,
      gpusim::DeviceSet* devices);

  /// Ingests one location update (paper Algorithm 1): appends the message
  /// to its cell's list, writes a departure tombstone to the previous cell
  /// when the object moved between cells, and refreshes the object table.
  /// Returns InvalidArgument for a position off the network (the index is
  /// untouched); under eager_updates a cleaning error can also surface,
  /// with the update itself already durably appended.
  util::Status Ingest(ObjectId object, roadnet::EdgePoint position,
                      double time);

  /// Removes an object from the index (e.g. a car going off duty): writes
  /// a departure tombstone to its cell and erases it from the eager
  /// structures. Subsequent queries will not return it. No-op for unknown
  /// objects.
  util::Status Remove(ObjectId object, double time);

  /// Forces message cleaning of the given cells (used by the eager-update
  /// ablation and by maintenance jobs that want to trim caches off-peak).
  /// A device error rolls the GPU pass back and re-runs the batch on the
  /// host (counted in Counters::clean_fallbacks), so this only fails on
  /// non-device errors.
  util::Status CleanCells(std::span<const CellId> cells, double t_now);

  /// Maintenance sweep: cleans every cell whose list holds messages, which
  /// discards expired buckets and compacts the rest — bounding message
  /// memory to one entry per object between sweeps. Intended for off-peak
  /// housekeeping; queries trigger the same cleaning lazily.
  util::Status TrimCaches(double t_now);

  /// Persists the current object state (the object table: every live
  /// object's latest position and report time) so a restarted server can
  /// resume without replaying the update history. Pending uncleaned
  /// messages are compacted first; the graph grid itself is saved
  /// separately via WriteGraphGrid (core/grid_io.h).
  util::Status SaveSnapshot(const std::string& path, double t_now);

  /// Restores a snapshot written by SaveSnapshot into this (freshly built)
  /// index: every object is re-registered at its saved position. Fails if
  /// the snapshot does not fit the graph.
  util::Status LoadSnapshot(const std::string& path);

  /// Answers a batch of queries issued at the same time, sharing one
  /// message-cleaning pass over the union of their candidate regions (the
  /// paper: "our system can process multiple queries in parallel" — this
  /// is where G-Grid's amortized time beats its per-query latency).
  /// Results are identical to issuing the queries one by one.
  util::Result<std::vector<std::vector<KnnResultEntry>>> QueryKnnBatch(
      std::span<const roadnet::EdgePoint> locations, uint32_t k,
      double t_now, KnnStats* aggregate_stats = nullptr,
      ExecMode mode = ExecMode::kAuto);

  /// Answers a snapshot kNN query at time `t_now`. Under the default
  /// ExecMode::kAuto a device error transparently falls back to the exact
  /// CPU-only path (see KnnEngine::Query).
  util::Result<std::vector<KnnResultEntry>> QueryKnn(
      roadnet::EdgePoint location, uint32_t k, double t_now,
      KnnStats* stats = nullptr, ExecMode mode = ExecMode::kAuto,
      const QueryControl* control = nullptr);

  /// Range query (extension): every object within network distance
  /// `radius`, sorted ascending.
  util::Result<std::vector<KnnResultEntry>> QueryRange(
      roadnet::EdgePoint location, roadnet::Distance radius, double t_now,
      KnnStats* stats = nullptr, ExecMode mode = ExecMode::kAuto,
      const QueryControl* control = nullptr);

  MemoryBreakdown Memory() const;
  const Counters& counters() const { return counters_; }
  const EngineCounters& engine_counters() const { return engine_->counters(); }
  const GraphGrid& grid() const { return *grid_; }
  const ObjectTable& object_table() const { return object_table_; }
  const GGridOptions& options() const { return options_; }
  /// Device 0 of the set (the only device in single-device builds).
  gpusim::Device& device() { return devices_->device(0); }
  /// Every simulated device serving this index. Tests reach individual
  /// fault domains through here (e.g. device_set().device(i).SetFaultSpec).
  gpusim::DeviceSet& device_set() { return *devices_; }
  const gpusim::DeviceSet& device_set() const { return *devices_; }
  uint32_t num_devices() const { return devices_->size(); }
  /// The multi-stream scheduler placing clean/query phase work.
  gpusim::Scheduler& scheduler() { return *scheduler_; }

  /// Total messages currently cached across all message lists (pending +
  /// compacted).
  uint64_t cached_messages() const;

  /// The index's observability registry: query/cleaning histograms and
  /// counters accumulate here as work happens; FoldDeviceMetrics() adds the
  /// device-side totals on demand.
  obs::MetricRegistry& metrics() { return registry_; }
  const obs::MetricRegistry& metrics() const { return registry_; }
  obs::Tracer& tracer() { return tracer_; }

  /// Folds the device totals — modeled clock, kernel launches, per-kernel
  /// timing, transfer-ledger volume/latency, memory breakdown — into the
  /// registry as gauges, plus this index's cumulative Counters. Unlabelled
  /// series are always sums over the whole set; with more than one device
  /// each summed device gauge is additionally emitted per device under a
  /// `device="i"` label (mirroring ShardRouter's shard labels), alongside
  /// the scheduler's placement counters. Call before Snapshot/Render so
  /// the exposition reconciles with Device/TransferLedger state. Requires
  /// exclusive access (quiesced queries) for a mutually consistent
  /// snapshot; QueryServer calls it under its writer lock.
  void FoldDeviceMetrics();

 private:
  GGridIndex(const roadnet::Graph* graph, const GGridOptions& options,
             gpusim::DeviceSet* devices);

  const roadnet::Graph* graph_;
  GGridOptions options_;
  /// Owned only by the single-device Build form (wraps the caller's
  /// device in an adopting singleton set).
  std::unique_ptr<gpusim::DeviceSet> owned_set_;
  gpusim::DeviceSet* devices_;
  std::unique_ptr<gpusim::Scheduler> scheduler_;

  std::unique_ptr<GraphGrid> grid_;
  /// Device-resident grid mirror, one per device of the set (§III-A: the
  /// grid is replicated, objects/messages are partitioned by cell).
  std::vector<gpusim::DeviceBuffer<uint8_t>> grid_gpu_copies_;
  BucketArena arena_;
  std::vector<MessageList> lists_;
  ObjectTable object_table_;
  EdgeObjectMap objects_on_edge_;
  std::unique_ptr<MessageCleaner> cleaner_;
  std::unique_ptr<KnnEngine> engine_;
  Counters counters_;
  uint64_t next_seq_ = 1;

  obs::MetricRegistry registry_;
  obs::Tracer tracer_;
  obs::Counter* updates_total_;
  obs::Counter* tombstones_total_;
  obs::Counter* clean_fallbacks_total_;
};

}  // namespace gknn::core

#endif  // GKNN_CORE_GGRID_INDEX_H_
