// Ablation benchmarks for the design choices DESIGN.md calls out:
//   lazy      — the lazy update strategy vs cleaning on every ingest;
//   xshuffle  — GPU_X_Shuffle vs brute-force 2^eta write rounds;
//   pipeline  — pipelined message transfer vs blocking copies;
//   earlyexit — GPU_SDist fixpoint stop vs the full |V| Bellman-Ford
//               iterations the paper's Alg. 5 writes.
//
// Usage: bench_ablations [--dataset=FLA] [--scale=N] [--objects=N] ...

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "util/logging.h"

namespace gknn::bench {
namespace {

struct Variant {
  std::string name;
  core::GGridOptions options;
};

void Run(const std::string& dataset, const CommonFlags& flags) {
  auto graph = LoadDataset(dataset, flags.scale, flags.seed,
                           flags.dimacs_dir);
  GKNN_CHECK(graph.ok()) << graph.status().ToString();

  std::vector<Variant> variants;
  variants.push_back({"G-Grid (default)", core::GGridOptions{}});
  {
    core::GGridOptions o;
    o.eager_updates = true;
    variants.push_back({"eager updates", o});
  }
  {
    core::GGridOptions o;
    o.use_x_shuffle = false;
    variants.push_back({"no X-shuffle", o});
  }
  {
    core::GGridOptions o;
    o.pipelined_transfer = false;
    variants.push_back({"blocking transfer", o});
  }
  {
    core::GGridOptions o;
    o.sdist_early_exit = false;
    variants.push_back({"full SDist iterations", o});
  }

  // Untimed warm-up: the first scenario in a process pays allocator and
  // page-fault costs that would otherwise be misattributed to whichever
  // variant runs first.
  {
    gpusim::Device device(ScaledDeviceConfig(flags.scale));
    auto algorithm = BuildAlgorithm("G-Grid", &*graph, &device, core::GGridOptions{});
    GKNN_CHECK(algorithm.ok());
    ScenarioOptions warmup = flags.ToScenario();
    warmup.num_queries = std::min(5u, warmup.num_queries);
    (void)RunScenario(algorithm->get(), *graph, warmup);
  }

  std::printf("Ablations on %s (k=%u, |O|=%u, f=%.2f/s)\n\n",
              dataset.c_str(), flags.k, flags.num_objects, flags.frequency);
  TablePrinter table({"Variant", "Amortized", "Update time", "Query GPU",
                      "Transfer time", "vs default"});
  double baseline = 0;
  for (const Variant& v : variants) {
    gpusim::Device device(ScaledDeviceConfig(flags.scale));
    auto algorithm =
        BuildAlgorithm("G-Grid", &*graph, &device, v.options);
    GKNN_CHECK(algorithm.ok()) << algorithm.status().ToString();
    const RunResult r =
        RunScenario(algorithm->get(), *graph, flags.ToScenario());
    if (baseline == 0) baseline = r.amortized_seconds;
    table.AddRow({v.name, FormatSeconds(r.amortized_seconds),
                  FormatSeconds(r.update_seconds / flags.num_queries),
                  FormatSeconds(r.query_gpu_seconds / flags.num_queries),
                  FormatSeconds(r.transfer_seconds / flags.num_queries),
                  FormatDouble(r.amortized_seconds / baseline, 2) + "x"});
  }
  table.Print();
}

}  // namespace
}  // namespace gknn::bench

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  auto flags = bench::CommonFlags::Parse(args);
  // The cleaning-path ablations need message pressure to be visible.
  flags.frequency = args.GetDouble("f", 4.0);
  bench::Run(args.GetString("dataset", "FLA"), flags);
  return 0;
}
