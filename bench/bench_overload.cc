// Overload spike experiment (docs/ROBUSTNESS.md "Overload control"): client
// threads fire a traffic spike at a QueryServer running admission control,
// per-query deadline budgets, and (optionally) brownout, while a seeded
// device-fault storm pelts the simulated GPU. One table row per offered
// concurrency level:
//
//   clients   spike threads issuing back-to-back queries
//   ok/shed/expired/brownout   outcome buckets (exact accounting)
//   goodput   completed-OK queries per wall second
//   p50/p95   client-observed latency of the OK queries
//
// The interesting read: as offered load crosses the admission capacity,
// goodput should plateau (not collapse) while the overflow moves into the
// shed/expired buckets — graceful degradation instead of congestion
// collapse.
//
// Usage: bench_overload [--dataset=NY] [--clients=1,2,4,8,16]
//                       [--queries=N] [--max-inflight=N] [--max-queued=N]
//                       [--deadline-ms=D] [--brownout]
//                       [--faults=SPEC] [--smoke]
//
// --smoke runs a small spike and exits non-zero unless the overload
// invariants hold: every query lands in exactly one bucket, the server
// counters reconcile with the client tallies, and the slot/queue gauges
// drain to zero (the CI gate for the overload-control layer).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "server/query_server.h"
#include "util/logging.h"
#include "util/timer.h"
#include "workload/moving_objects.h"
#include "workload/queries.h"

namespace gknn::bench {
namespace {

struct SpikeConfig {
  uint32_t queries_per_client = 50;
  server::ServerOptions server_options;
  std::string faults;
};

struct SpikeResult {
  uint64_t issued = 0;
  uint64_t ok = 0;
  uint64_t shed = 0;
  uint64_t expired = 0;
  uint64_t other_errors = 0;
  uint64_t brownout = 0;
  double wall_seconds = 0;
  double p50_latency = 0;
  double p95_latency = 0;
  bool accounting_exact = false;
  bool gauges_drained = false;
};

double Percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size())));
  return sorted[index];
}

SpikeResult RunSpike(const roadnet::Graph& graph, const CommonFlags& flags,
                     const SpikeConfig& config, uint32_t clients) {
  gpusim::DeviceConfig device_config = ScaledDeviceConfig(flags.scale);
  device_config.faults = config.faults;
  gpusim::Device device(device_config);
  auto server = server::QueryServer::Create(&graph, core::GGridOptions{},
                                            &device, config.server_options);
  GKNN_CHECK(server.ok()) << server.status().ToString();

  workload::MovingObjectSimulator sim(
      &graph, {.num_objects = flags.num_objects, .seed = flags.seed});
  std::vector<workload::LocationUpdate> updates;
  sim.AdvanceTo(2.0, &updates);
  for (const auto& u : updates) {
    (*server)->Report(u.object_id, u.position, u.time);
  }
  const auto queries = workload::GenerateQueries(
      graph, {.num_queries = std::max<uint32_t>(config.queries_per_client, 1),
              .k = flags.k,
              .seed = flags.seed + 7});
  // Pay the inbox drain outside the spike so row one is not charged for
  // shared warmup work. The warmup query runs before any deadline
  // pressure exists, so it always completes.
  {
    auto warm = (*server)->QueryKnn(queries[0].location, flags.k, 2.0);
    GKNN_CHECK(warm.ok()) << warm.status().ToString();
  }
  const auto baseline = (*server)->stats();

  SpikeResult result;
  std::atomic<uint64_t> ok{0}, shed{0}, expired{0}, other{0};
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<bool> go{false};
  std::vector<std::thread> spike;
  for (uint32_t c = 0; c < clients; ++c) {
    spike.emplace_back([&, c] {
      while (!go.load()) std::this_thread::yield();
      for (uint32_t i = 0; i < config.queries_per_client; ++i) {
        const auto& q = queries[(c * 31 + i) % queries.size()];
        util::Timer timer;
        auto r = (*server)->QueryKnn(q.location, flags.k, 2.0);
        if (r.ok()) {
          latencies[c].push_back(timer.ElapsedSeconds());
          ok.fetch_add(1, std::memory_order_relaxed);
        } else if (r.status().IsResourceExhausted()) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else if (r.status().IsDeadlineExceeded()) {
          expired.fetch_add(1, std::memory_order_relaxed);
        } else {
          other.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  util::Timer wall;
  go.store(true);
  for (auto& s : spike) s.join();
  result.wall_seconds = wall.ElapsedSeconds();

  result.issued = static_cast<uint64_t>(clients) * config.queries_per_client;
  result.ok = ok.load();
  result.shed = shed.load();
  result.expired = expired.load();
  result.other_errors = other.load();
  const auto stats = (*server)->stats();
  result.brownout = stats.brownout_queries - baseline.brownout_queries;
  result.accounting_exact =
      result.ok + result.shed + result.expired + result.other_errors ==
          result.issued &&
      stats.shed_queries - baseline.shed_queries == result.shed &&
      stats.expired_queries - baseline.expired_queries == result.expired;
  result.gauges_drained = (*server)->inflight_queries() == 0 &&
                          (*server)->admission_queue_depth() == 0;

  std::vector<double> all_latencies;
  for (const auto& per_client : latencies) {
    all_latencies.insert(all_latencies.end(), per_client.begin(),
                         per_client.end());
  }
  std::sort(all_latencies.begin(), all_latencies.end());
  result.p50_latency = Percentile(all_latencies, 0.50);
  result.p95_latency = Percentile(all_latencies, 0.95);
  return result;
}

}  // namespace
}  // namespace gknn::bench

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  auto flags = bench::CommonFlags::Parse(args);
  const bool smoke = args.GetBool("smoke", false);

  bench::SpikeConfig config;
  config.server_options.max_inflight =
      static_cast<uint32_t>(args.GetInt("max-inflight", 2));
  config.server_options.max_queued =
      static_cast<uint32_t>(args.GetInt("max-queued", 2));
  config.server_options.default_deadline_ms =
      args.GetDouble("deadline-ms", 2000.0);
  config.server_options.brownout = args.GetBool("brownout", smoke);
  config.server_options.backoff_base_ms = 0;  // spikes, not retry timing
  config.queries_per_client =
      static_cast<uint32_t>(args.GetInt("queries", smoke ? 20 : 50));
  config.faults = args.GetString("faults", "alloc:p=0.1;seed=29");
  if (smoke) {
    flags.scale = std::max<uint32_t>(flags.scale, 2000);
    flags.num_objects = std::min<uint32_t>(flags.num_objects, 400);
  }

  std::vector<uint32_t> client_counts;
  for (const auto& s : bench::SplitCsv(
           args.GetString("clients", smoke ? "1,4,8" : "1,2,4,8,16"))) {
    client_counts.push_back(static_cast<uint32_t>(std::stoul(s)));
  }
  const std::string dataset = args.GetString("dataset", "NY");
  auto graph = bench::LoadDataset(dataset, flags.scale, flags.seed,
                                  flags.dimacs_dir);
  GKNN_CHECK(graph.ok()) << graph.status().ToString();

  std::printf(
      "Overload spike on %s (k=%u, |O|=%u): max_inflight=%u max_queued=%u "
      "deadline=%.0fms brownout=%d faults='%s'\n\n",
      dataset.c_str(), flags.k, flags.num_objects,
      config.server_options.max_inflight, config.server_options.max_queued,
      config.server_options.default_deadline_ms,
      config.server_options.brownout ? 1 : 0, config.faults.c_str());
  bench::TablePrinter table({"Clients", "Issued", "OK", "Shed", "Expired",
                             "Brownout", "Goodput q/s", "p50", "p95"});
  bool invariants_hold = true;
  for (uint32_t clients : client_counts) {
    const auto r = bench::RunSpike(*graph, flags, config, clients);
    invariants_hold = invariants_hold && r.accounting_exact &&
                      r.gauges_drained && r.other_errors == 0;
    table.AddRow({std::to_string(clients), std::to_string(r.issued),
                  std::to_string(r.ok), std::to_string(r.shed),
                  std::to_string(r.expired), std::to_string(r.brownout),
                  bench::FormatDouble(
                      r.wall_seconds > 0
                          ? static_cast<double>(r.ok) / r.wall_seconds
                          : 0,
                      0),
                  bench::FormatSeconds(r.p50_latency),
                  bench::FormatSeconds(r.p95_latency)});
  }
  table.Print();

  if (!smoke) return 0;
  std::printf("smoke: exact accounting, drained gauges, no foreign "
              "statuses -- %s\n",
              invariants_hold ? "PASS" : "FAIL");
  return invariants_hold ? 0 : 1;
}
