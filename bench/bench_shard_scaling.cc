// Shard scaling (docs/SHARDING.md): one logical road network served by
// N region shards, each with its own device, index, and inbox behind a
// ShardRouter. Reports wall-clock queries/sec through the router's batch
// pool and a *modeled multi-device* queries/sec: per-query modeled cost
// (the sum of every shard device's clock delta the query consumed, plus
// host thread-CPU time) measured serially, then binned by the query's
// home shard — the throughput N independent devices would sustain when
// each serves the queries homed in its region. The model is
// load-insensitive (device modeled clock + CLOCK_THREAD_CPUTIME_ID), so
// the smoke gate survives `ctest -j` core contention.
//
// Scaling comes from two properties the differential suite proves don't
// cost exactness: objects partition by region (each shard's index holds
// |O|/N objects), and a dense fleet keeps the candidate ring of most
// queries inside their home shard, so fan-out stays near 1 and the
// makespan divides by N.
//
// Usage: bench_shard_scaling [--dataset=USA] [--shards=1,2,4,8]
//                            [--scale=N] [--objects=N] [--queries=N]
//                            [--k=K] [--smoke]
//
// --smoke runs the USA-scale synthetic instance small and exits non-zero
// unless modeled q/s increases monotonically from 1 to 8 shards and the
// 4-shard throughput is at least 2x the 1-shard throughput (the CI
// regression gate for the sharding layer).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "server/shard_router.h"
#include "util/logging.h"
#include "util/timer.h"
#include "workload/moving_objects.h"
#include "workload/queries.h"

namespace gknn::bench {
namespace {

util::Result<std::unique_ptr<server::ShardRouter>> BuildRouter(
    const roadnet::Graph* graph, uint32_t num_shards, uint32_t query_threads,
    const CommonFlags& flags) {
  server::ShardRouterOptions options;
  options.num_shards = num_shards;
  options.server.query_threads = query_threads;
  options.device = ScaledDeviceConfig(flags.scale);
  return server::ShardRouter::Create(graph, core::GGridOptions{}, options);
}

/// Snapshot of every shard device's modeled clock.
std::vector<double> FleetClocks(server::ShardRouter* router) {
  std::vector<double> clocks(router->num_shards());
  for (uint32_t s = 0; s < router->num_shards(); ++s) {
    clocks[s] = router->device(s).ClockSeconds();
  }
  return clocks;
}

/// A full-fan-out query (k far above any shard's population) that drains
/// every shard's inbox and pays first-touch cleaning before the timed
/// window; its own cost is not recorded.
void WarmupAllShards(server::ShardRouter* router, roadnet::EdgePoint at,
                     uint32_t num_objects, double t_now) {
  auto r = router->QueryKnn(at, num_objects + 1, t_now);
  GKNN_CHECK(r.ok()) << r.status().ToString();
}

bool RunShardScaling(const std::string& dataset,
                     const std::vector<uint32_t>& shard_counts,
                     const CommonFlags& flags, bool smoke) {
  auto graph = LoadDataset(dataset, flags.scale, flags.seed,
                           flags.dimacs_dir);
  GKNN_CHECK(graph.ok()) << graph.status().ToString();
  const uint32_t num_queries = std::max<uint32_t>(flags.num_queries, 32);
  const auto queries = workload::GenerateQueries(
      *graph,
      {.num_queries = num_queries, .k = flags.k, .seed = flags.seed + 9});
  workload::MovingObjectSimulator sim(
      &*graph, {.num_objects = flags.num_objects, .seed = flags.seed});
  std::vector<workload::LocationUpdate> updates;
  sim.AdvanceTo(2.0, &updates);

  std::printf("Shard scaling on %s (|V|=%u, k=%u, |O|=%u, %u queries): "
              "ShardRouter over per-shard devices\n\n",
              dataset.c_str(), graph->num_vertices(), flags.k,
              flags.num_objects, num_queries);
  TablePrinter table({"Shards", "Avg fan-out", "Wall q/s",
                      "Modeled multi-device q/s", "Modeled speedup"});

  double modeled_qps_1 = 0;
  double modeled_qps_4 = 0;
  double serial_makespan_1 = 0;
  bool monotone = true;
  double prev_qps = 0;
  for (uint32_t shards : shard_counts) {
    // Cost router: serial measurement of per-query modeled cost and home
    // shard. Per-shard-count costs matter — fan-out (and so per-query
    // work) depends on how the borders cut the rings.
    auto cost_router = BuildRouter(&*graph, shards, /*query_threads=*/0,
                                   flags);
    GKNN_CHECK(cost_router.ok()) << cost_router.status().ToString();
    for (const auto& u : updates) {
      (*cost_router)->Report(u.object_id, u.position, u.time);
    }
    WarmupAllShards(cost_router->get(), queries[0].location,
                    flags.num_objects, 2.0);
    // Each query's device work is charged to the device that ran it (a
    // border probe executes on the neighbor shard's device — that is the
    // point of per-shard devices), and its host work to the home shard's
    // pool thread.
    std::vector<double> bins(shards, 0.0);
    double total_cost = 0;
    for (const auto& q : queries) {
      const std::vector<double> before = FleetClocks(cost_router->get());
      util::ThreadCpuTimer timer;
      auto r = (*cost_router)->QueryKnn(q.location, flags.k, 2.0);
      GKNN_CHECK(r.ok()) << r.status().ToString();
      const double host = timer.ElapsedSeconds();
      const std::vector<double> after = FleetClocks(cost_router->get());
      double cost = host;
      for (uint32_t s = 0; s < shards; ++s) {
        bins[s] += after[s] - before[s];
        cost += after[s] - before[s];
      }
      bins[(*cost_router)->ShardOfPoint(q.location)] += host;
      total_cost += cost;
    }
    const double makespan = *std::max_element(bins.begin(), bins.end());
    if (std::getenv("GKNN_BENCH_DEBUG") != nullptr) {
      std::fprintf(stderr,
                   "[debug] shards=%u total=%.3fms max_bin=%.3fms "
                   "avg_bin=%.3fms refines=%llu refine_shards=%llu\n",
                   shards, total_cost * 1e3, makespan * 1e3,
                   total_cost / shards * 1e3,
                   static_cast<unsigned long long>(
                       (*cost_router)->router_stats().border_refinements),
                   static_cast<unsigned long long>(
                       (*cost_router)->router_stats().refine_shards));
      std::fprintf(stderr, "[debug]   bins:");
      for (double b : bins) std::fprintf(stderr, " %.2fms", b * 1e3);
      std::fprintf(stderr, "\n[debug]   homes:");
      std::vector<uint32_t> homes(shards, 0);
      for (const auto& q : queries) {
        ++homes[(*cost_router)->ShardOfPoint(q.location)];
      }
      for (uint32_t h : homes) std::fprintf(stderr, " %u", h);
      std::fprintf(stderr, "\n");
    }
    const double modeled_qps = num_queries / makespan;
    const auto stats = (*cost_router)->router_stats();
    const double avg_fanout =
        static_cast<double>(stats.fanout_shards + stats.refine_shards) /
        static_cast<double>(stats.queries);

    // Wall router: the same workload through QueryKnnBatch with one pool
    // thread per shard (a fresh router so caches and clocks start equal).
    auto wall_router = BuildRouter(&*graph, shards, /*query_threads=*/shards,
                                   flags);
    GKNN_CHECK(wall_router.ok()) << wall_router.status().ToString();
    for (const auto& u : updates) {
      (*wall_router)->Report(u.object_id, u.position, u.time);
    }
    WarmupAllShards(wall_router->get(), queries[0].location,
                    flags.num_objects, 2.0);
    std::vector<roadnet::EdgePoint> locations;
    for (const auto& q : queries) locations.push_back(q.location);
    util::Timer wall;
    auto rb = (*wall_router)->QueryKnnBatch(locations, flags.k, 2.0);
    GKNN_CHECK(rb.ok()) << rb.status().ToString();
    const double wall_qps = num_queries / wall.ElapsedSeconds();

    if (shards == shard_counts.front()) {
      serial_makespan_1 = total_cost;
    }
    if (shards == 1) modeled_qps_1 = modeled_qps;
    if (shards == 4) modeled_qps_4 = modeled_qps;
    if (prev_qps > 0 && modeled_qps <= prev_qps) monotone = false;
    prev_qps = modeled_qps;
    table.AddRow({std::to_string(shards), FormatDouble(avg_fanout, 2),
                  FormatDouble(wall_qps, 0), FormatDouble(modeled_qps, 0),
                  FormatDouble(serial_makespan_1 / makespan, 2) + "x"});
  }
  table.Print();

  if (!smoke) return true;
  if (modeled_qps_1 <= 0 || modeled_qps_4 <= 0) {
    std::printf("SMOKE FAIL: need 1-shard and 4-shard rows for the gate\n");
    return false;
  }
  const double scaling_4 = modeled_qps_4 / modeled_qps_1;
  const bool pass = monotone && scaling_4 >= 2.0;
  std::printf("smoke: modeled q/s %s monotonically with shards; 4-shard "
              "throughput is %.2fx the 1-shard throughput (gate: monotone "
              "and >= 2x) -- %s\n",
              monotone ? "increases" : "DOES NOT increase", scaling_4,
              pass ? "PASS" : "FAIL");
  return pass;
}

}  // namespace
}  // namespace gknn::bench

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  auto flags = bench::CommonFlags::Parse(args);
  const bool smoke = args.GetBool("smoke", false);
  if (smoke) {
    // Small deterministic USA-scale instance for the ctest/CI gate: a
    // dense fleet keeps candidate rings home-shard-local (sparse fleets
    // push every query into cross-border refinement, which caps scaling).
    flags.scale = std::max<uint32_t>(flags.scale, 4000);
    flags.num_objects = std::max<uint32_t>(flags.num_objects, 1600);
    flags.num_queries = std::max<uint32_t>(flags.num_queries, 160);
    flags.k = std::min<uint32_t>(flags.k, 8);
  }
  std::vector<uint32_t> shards;
  for (const auto& s :
       bench::SplitCsv(args.GetString("shards", "1,2,4,8"))) {
    shards.push_back(static_cast<uint32_t>(std::stoul(s)));
  }
  const std::string dataset = args.GetString("dataset", "USA");
  if (!bench::RunShardScaling(dataset, shards, flags, smoke)) return 1;
  return 0;
}
