// Reproduces Fig. 7: running time vs k in {8 .. 256} on the USA and NY
// datasets, for G-Grid, V-Tree, V-Tree (G), and ROAD.
//
// Expected shape: G-Grid wins across the board; G-Grid and V-Tree grow
// with k (search ranges widen); ROAD is the most costly and the least
// affected by k (its cost is dominated by eager update handling).
//
// Usage: bench_fig7_vary_k [--datasets=NY,USA] [--ks=8,16,...]
//                          [--scale=N] [--objects=N] [--queries=N] ...

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "util/logging.h"

namespace gknn::bench {
namespace {

void Run(const std::vector<std::string>& datasets,
         const std::vector<uint32_t>& ks, const CommonFlags& flags) {
  for (const std::string& name : datasets) {
    auto graph = LoadDataset(name, flags.scale, flags.seed, flags.dimacs_dir);
    GKNN_CHECK(graph.ok()) << graph.status().ToString();
    std::printf("Fig. 7: varying k on %s (|O|=%u, f=%.2f/s)\n\n",
                name.c_str(), flags.num_objects, flags.frequency);
    TablePrinter table({"k", "G-Grid", "V-Tree", "V-Tree (G)", "ROAD"});

    // Indexes are built once per dataset and reused across k values (the
    // same fleet keeps moving; k only affects the queries).
    std::vector<std::string> names = {"G-Grid", "V-Tree", "V-Tree (G)",
                                      "ROAD"};
    std::vector<std::unique_ptr<gpusim::Device>> devices;
    std::vector<std::unique_ptr<baselines::KnnAlgorithm>> algorithms;
    std::vector<bool> available;
    for (const auto& algo_name : names) {
      devices.push_back(
          std::make_unique<gpusim::Device>(ScaledDeviceConfig(flags.scale)));
      auto algorithm = BuildAlgorithm(algo_name, &*graph,
                                      devices.back().get(), core::GGridOptions{});
      if (algorithm.ok()) {
        algorithms.push_back(std::move(algorithm).ValueOrDie());
        available.push_back(true);
      } else {
        algorithms.push_back(nullptr);
        available.push_back(false);
      }
    }

    for (uint32_t k : ks) {
      ScenarioOptions scenario = flags.ToScenario();
      scenario.k = k;
      std::vector<std::string> row = {std::to_string(k)};
      for (size_t i = 0; i < algorithms.size(); ++i) {
        if (!available[i]) {
          row.push_back("OOM");
          continue;
        }
        const RunResult r = RunScenario(algorithms[i].get(), *graph, scenario);
        row.push_back(FormatSeconds(r.amortized_seconds));
      }
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }
}

}  // namespace
}  // namespace gknn::bench

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  const auto flags = bench::CommonFlags::Parse(args);
  const auto datasets = bench::SplitCsv(args.GetString("datasets", "NY,USA"));
  std::vector<uint32_t> ks;
  for (const auto& s : bench::SplitCsv(
           args.GetString("ks", "8,16,32,64,128,256"))) {
    ks.push_back(static_cast<uint32_t>(std::stoul(s)));
  }
  bench::Run(datasets, ks, flags);
  return 0;
}
