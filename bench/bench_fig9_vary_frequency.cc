// Reproduces Fig. 9: running time vs the object update frequency f.
//
// Expected shape: G-Grid is nearly flat in f (the lazy scheme caches
// updates and the GPU cleans them in bulk) while the eager baselines grow
// rapidly — "this confirms the effectiveness of our proposed lazy update
// strategy".
//
// Usage: bench_fig9_vary_frequency [--dataset=FLA]
//                                  [--frequencies=0.25,0.5,1,2,4]
//                                  [--scale=N] [--objects=N] ...

#include <cstdio>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "util/logging.h"

namespace gknn::bench {
namespace {

void Run(const std::string& dataset, const std::vector<double>& frequencies,
         const CommonFlags& flags) {
  auto graph = LoadDataset(dataset, flags.scale, flags.seed,
                           flags.dimacs_dir);
  GKNN_CHECK(graph.ok()) << graph.status().ToString();
  std::printf("Fig. 9: varying update frequency f on %s (k=%u, |O|=%u)\n\n",
              dataset.c_str(), flags.k, flags.num_objects);
  TablePrinter table(
      {"f (1/s)", "G-Grid", "V-Tree", "V-Tree (G)", "ROAD"});
  for (double f : frequencies) {
    ScenarioOptions scenario = flags.ToScenario();
    scenario.update_frequency_hz = f;
    std::vector<std::string> row = {FormatDouble(f, 2)};
    for (const char* name : {"G-Grid", "V-Tree", "V-Tree (G)", "ROAD"}) {
      gpusim::Device device(ScaledDeviceConfig(flags.scale));
      auto algorithm =
          BuildAlgorithm(name, &*graph, &device, core::GGridOptions{});
      if (!algorithm.ok()) {
        row.push_back("OOM");
        continue;
      }
      const RunResult r = RunScenario(algorithm->get(), *graph, scenario);
      row.push_back(FormatSeconds(r.amortized_seconds));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace
}  // namespace gknn::bench

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  const auto flags = bench::CommonFlags::Parse(args);
  const std::string dataset = args.GetString("dataset", "FLA");
  std::vector<double> frequencies;
  for (const auto& s :
       bench::SplitCsv(args.GetString("frequencies", "0.25,0.5,1,2,4"))) {
    frequencies.push_back(std::stod(s));
  }
  bench::Run(dataset, frequencies, flags);
  return 0;
}
