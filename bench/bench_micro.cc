// Microbenchmarks of the hot paths (google-benchmark): Morton codec, heap
// operations, Dijkstra, partitioning, grid construction, message caching
// and cleaning, and per-update ingest cost of every algorithm.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "baselines/ggrid_adapter.h"
#include "baselines/road.h"
#include "baselines/vtree.h"
#include "core/ggrid_index.h"
#include "core/message_cleaner.h"
#include "core/mu.h"
#include "gpusim/topk.h"
#include "obs/metrics.h"
#include "roadnet/dijkstra.h"
#include "roadnet/partitioner.h"
#include "util/min_heap.h"
#include "util/morton.h"
#include "util/rng.h"
#include "workload/moving_objects.h"
#include "workload/synthetic_network.h"

namespace gknn {
namespace {

const roadnet::Graph& BenchGraph() {
  static const roadnet::Graph* graph = [] {
    auto g = workload::GenerateSyntheticRoadNetwork(
        {.num_vertices = 2000, .seed = 99});
    return new roadnet::Graph(std::move(g).ValueOrDie());
  }();
  return *graph;
}

void BM_MortonEncodeDecode(benchmark::State& state) {
  util::Rng rng(1);
  uint32_t x = static_cast<uint32_t>(rng.Next());
  uint32_t y = static_cast<uint32_t>(rng.Next());
  for (auto _ : state) {
    const uint64_t z = util::MortonEncode(x, y);
    auto [dx, dy] = util::MortonDecode(z);
    benchmark::DoNotOptimize(dx);
    benchmark::DoNotOptimize(dy);
    x += 7;
    y += 13;
  }
}
BENCHMARK(BM_MortonEncodeDecode);

void BM_IndexedMinHeap(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  util::Rng rng(2);
  std::vector<uint64_t> priorities(n);
  for (auto& p : priorities) p = rng.Next();
  for (auto _ : state) {
    util::IndexedMinHeap<uint64_t> heap(n);
    for (uint32_t i = 0; i < n; ++i) heap.PushOrDecrease(i, priorities[i]);
    while (!heap.empty()) benchmark::DoNotOptimize(heap.Pop());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_IndexedMinHeap)->Arg(256)->Arg(4096);

void BM_BoundedTopK(benchmark::State& state) {
  util::Rng rng(3);
  std::vector<uint64_t> values(10000);
  for (auto& v : values) v = rng.Next();
  for (auto _ : state) {
    util::BoundedTopK<uint64_t> topk(16);
    for (uint64_t v : values) topk.Offer(v);
    benchmark::DoNotOptimize(topk.Worst());
  }
  state.SetItemsProcessed(state.iterations() * values.size());
}
BENCHMARK(BM_BoundedTopK);

void BM_Mu(benchmark::State& state) {
  for (auto _ : state) {
    for (uint32_t eta = 2; eta <= 8; ++eta) {
      benchmark::DoNotOptimize(core::Mu(eta));
    }
  }
}
BENCHMARK(BM_Mu);

void BM_DijkstraFull(benchmark::State& state) {
  const auto& graph = BenchGraph();
  uint32_t source = 0;
  for (auto _ : state) {
    auto dist = roadnet::ShortestPathsFrom(graph, source);
    benchmark::DoNotOptimize(dist.data());
    source = (source + 17) % graph.num_vertices();
  }
}
BENCHMARK(BM_DijkstraFull);

void BM_BoundedDijkstra(benchmark::State& state) {
  const auto& graph = BenchGraph();
  roadnet::BoundedDijkstra search(&graph);
  uint32_t source = 0;
  for (auto _ : state) {
    uint64_t sum = 0;
    search.Run(source, 2000,
               [&](roadnet::VertexId, roadnet::Distance d) { sum += d; });
    benchmark::DoNotOptimize(sum);
    source = (source + 31) % graph.num_vertices();
  }
}
BENCHMARK(BM_BoundedDijkstra);

void BM_PartitionIntoGrid(benchmark::State& state) {
  const auto& graph = BenchGraph();
  for (auto _ : state) {
    auto partition =
        roadnet::PartitionIntoGrid(graph, 3, roadnet::PartitionOptions{});
    benchmark::DoNotOptimize(partition.ok());
  }
}
BENCHMARK(BM_PartitionIntoGrid);

void BM_GraphGridBuild(benchmark::State& state) {
  const auto& graph = BenchGraph();
  for (auto _ : state) {
    auto grid =
        core::GraphGrid::Build(&graph, 3, 2, roadnet::PartitionOptions{});
    benchmark::DoNotOptimize(grid.ok());
  }
}
BENCHMARK(BM_GraphGridBuild);

void BM_GGridIngest(benchmark::State& state) {
  const auto& graph = BenchGraph();
  gpusim::Device device;
  auto index = core::GGridIndex::Build(&graph, core::GGridOptions{}, &device);
  GKNN_CHECK(index.ok());
  workload::MovingObjectSimulator sim(&graph, {.num_objects = 500, .seed = 4});
  std::vector<workload::LocationUpdate> updates;
  sim.AdvanceTo(60.0, &updates);
  size_t i = 0;
  for (auto _ : state) {
    const auto& u = updates[i % updates.size()];
    GKNN_CHECK((*index)
                   ->Ingest(u.object_id, u.position,
                            u.time + static_cast<double>(i))
                   .ok());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GGridIngest);

void BM_VTreeIngest(benchmark::State& state) {
  const auto& graph = BenchGraph();
  auto vtree = baselines::VTree::Build(&graph, baselines::VTree::Options{});
  GKNN_CHECK(vtree.ok());
  workload::MovingObjectSimulator sim(&graph, {.num_objects = 500, .seed = 5});
  std::vector<workload::LocationUpdate> updates;
  sim.AdvanceTo(60.0, &updates);
  size_t i = 0;
  for (auto _ : state) {
    const auto& u = updates[i % updates.size()];
    (*vtree)->Ingest(u.object_id, u.position, u.time);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VTreeIngest);

void BM_RoadIngest(benchmark::State& state) {
  const auto& graph = BenchGraph();
  auto road = baselines::Road::Build(&graph, baselines::Road::Options{});
  GKNN_CHECK(road.ok());
  workload::MovingObjectSimulator sim(&graph, {.num_objects = 500, .seed = 6});
  std::vector<workload::LocationUpdate> updates;
  sim.AdvanceTo(60.0, &updates);
  size_t i = 0;
  for (auto _ : state) {
    const auto& u = updates[i % updates.size()];
    (*road)->Ingest(u.object_id, u.position, u.time);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoadIngest);

void BM_MessageCleaning(benchmark::State& state) {
  const uint32_t num_messages = static_cast<uint32_t>(state.range(0));
  gpusim::Device device;
  core::MessageCleaner::Options options;
  options.t_delta = 1e9;
  core::MessageCleaner cleaner(&device, options);
  util::Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    core::BucketArena arena(options.delta_b);
    std::vector<core::MessageList> lists(16);
    std::vector<core::CellId> cells;
    for (core::CellId c = 0; c < 16; ++c) cells.push_back(c);
    uint64_t seq = 0;
    for (uint32_t i = 0; i < num_messages; ++i) {
      core::Message m;
      m.object = static_cast<core::ObjectId>(rng.NextBounded(200));
      m.edge = 1;
      m.time = 1.0;
      m.seq = ++seq;
      const core::CellId cell =
          static_cast<core::CellId>(rng.NextBounded(16));
      m.cell = cell;
      lists[cell].Append(&arena, m);
    }
    state.ResumeTiming();
    auto outcome = cleaner.Clean(cells, 1.0, &arena, &lists);
    benchmark::DoNotOptimize(outcome.ok());
  }
  state.SetItemsProcessed(state.iterations() * num_messages);
}
BENCHMARK(BM_MessageCleaning)->Arg(1000)->Arg(10000);

void BM_TopKSelect(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const uint32_t k = static_cast<uint32_t>(state.range(1));
  gpusim::Device device;
  util::Rng rng(10);
  std::vector<uint64_t> values(n);
  for (auto& v : values) v = rng.Next();
  auto buf = gpusim::DeviceBuffer<uint64_t>::Allocate(&device, n);
  GKNN_CHECK(buf.ok());
  GKNN_CHECK(buf->Upload(values).ok());
  for (auto _ : state) {
    auto result = gpusim::TopKSmallest<uint64_t>(
        &device, buf->device_span(), k,
        std::numeric_limits<uint64_t>::max());
    benchmark::DoNotOptimize(result->data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_TopKSelect)->Args({1000, 16})->Args({10000, 16})->Args({10000, 256});

void BM_GGridQuery(benchmark::State& state) {
  const auto& graph = BenchGraph();
  gpusim::Device device;
  auto index = core::GGridIndex::Build(&graph, core::GGridOptions{}, &device);
  GKNN_CHECK(index.ok());
  workload::MovingObjectSimulator sim(&graph,
                                      {.num_objects = 1000, .seed = 8});
  std::vector<workload::LocationUpdate> snapshot;
  sim.EmitFullSnapshot(&snapshot);
  for (const auto& u : snapshot) {
    GKNN_CHECK((*index)->Ingest(u.object_id, u.position, u.time).ok());
  }
  util::Rng rng(9);
  for (auto _ : state) {
    const roadnet::EdgeId e =
        static_cast<roadnet::EdgeId>(rng.NextBounded(graph.num_edges()));
    auto result = (*index)->QueryKnn({e, 0}, 16, 0.0);
    benchmark::DoNotOptimize(result.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GGridQuery);

}  // namespace
}  // namespace gknn

namespace {

// Console reporter that additionally folds every finished run into an
// obs::MetricRegistry, so --json can emit the same schema-tagged JSON
// exposition the server's /metrics endpoint and bench --metrics use
// (docs/OBSERVABILITY.md). Per benchmark instance we record the mean
// real/cpu time per iteration as gauges plus items/s when the benchmark
// reports throughput; scripts/bench_to_csv.py and the future regression
// gate (ROADMAP item 5) key off these names.
class RegistryReporter : public benchmark::ConsoleReporter {
 public:
  explicit RegistryReporter(gknn::obs::MetricRegistry* registry)
      : registry_(registry) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& run : reports) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      registry_->GetGauge("gknn_bench_real_seconds{name=\"" + name + "\"}")
          ->Set(run.real_accumulated_time / iters);
      registry_->GetGauge("gknn_bench_cpu_seconds{name=\"" + name + "\"}")
          ->Set(run.cpu_accumulated_time / iters);
      auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        registry_
            ->GetGauge("gknn_bench_items_per_second{name=\"" + name + "\"}")
            ->Set(items->second.value);
      }
      registry_->GetCounter("gknn_bench_runs_total")->Increment();
    }
  }

 private:
  gknn::obs::MetricRegistry* registry_;
};

}  // namespace

// Custom main instead of BENCHMARK_MAIN so two repo-specific flags work:
//
//   --smoke        caps every benchmark at a minimal time budget, turning
//                  the binary into a fast ctest smoke test that still
//                  executes every benchmark body.
//   --json[=FILE]  after the run, writes a schema-tagged baseline file
//                  ("gknn-bench/v1", wrapping the obs registry's
//                  "gknn-metrics/v1" dump). FILE defaults to
//                  BENCH_<rev>.json in the working directory, with <rev>
//                  from --rev=<id> (committed baselines live under
//                  bench/baselines/ — ROADMAP item 5, the committed perf
//                  trajectory).
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool smoke = false;
  bool emit_json = false;
  std::string json_path;
  std::string rev = "unknown";
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--json") {
      emit_json = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      emit_json = true;
      json_path = std::string(arg.substr(7));
    } else if (arg.rfind("--rev=", 0) == 0) {
      rev = std::string(arg.substr(6));
    } else {
      args.push_back(argv[i]);
    }
  }
  static char min_time[] = "--benchmark_min_time=0.001";
  if (smoke) args.push_back(min_time);
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) {
    return 1;
  }
  gknn::obs::MetricRegistry registry;
  RegistryReporter reporter(&registry);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (emit_json) {
    if (json_path.empty()) json_path = "BENCH_" + rev + ".json";
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "bench_micro: cannot open %s for writing\n",
                   json_path.c_str());
      return 1;
    }
    out << "{\"schema\":\"gknn-bench/v1\",\"rev\":\"" << rev
        << "\",\"bench\":\"bench_micro\",\"smoke\":"
        << (smoke ? "true" : "false")
        << ",\"metrics\":" << registry.RenderJson() << "}\n";
    out.close();
    std::printf("bench_micro: wrote %s (schema gknn-bench/v1)\n",
                json_path.c_str());
  }
  return 0;
}
