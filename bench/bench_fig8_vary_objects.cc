// Reproduces Fig. 8: running time vs the number of data objects |O|.
//
// Expected shape: all algorithms grow with |O|, but G-Grid grows by less
// than 10x across the sweep while the eager baselines grow by ~100x
// (every additional object multiplies their per-update maintenance).
//
// Usage: bench_fig8_vary_objects [--dataset=FLA] [--sizes=100,1000,10000]
//                                [--scale=N] [--queries=N] ...

#include <cstdio>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "util/logging.h"

namespace gknn::bench {
namespace {

void Run(const std::string& dataset, const std::vector<uint32_t>& sizes,
         const CommonFlags& flags) {
  auto graph = LoadDataset(dataset, flags.scale, flags.seed,
                           flags.dimacs_dir);
  GKNN_CHECK(graph.ok()) << graph.status().ToString();
  std::printf("Fig. 8: varying |O| on %s (k=%u, f=%.2f/s)\n\n",
              dataset.c_str(), flags.k, flags.frequency);
  TablePrinter table({"|O|", "G-Grid", "V-Tree", "V-Tree (G)", "ROAD"});
  for (uint32_t num_objects : sizes) {
    ScenarioOptions scenario = flags.ToScenario();
    scenario.num_objects = num_objects;
    std::vector<std::string> row = {std::to_string(num_objects)};
    for (const char* name : {"G-Grid", "V-Tree", "V-Tree (G)", "ROAD"}) {
      // Fresh index per point: the fleet size is a build-time workload
      // property here.
      gpusim::Device device(ScaledDeviceConfig(flags.scale));
      auto algorithm =
          BuildAlgorithm(name, &*graph, &device, core::GGridOptions{});
      if (!algorithm.ok()) {
        row.push_back("OOM");
        continue;
      }
      const RunResult r = RunScenario(algorithm->get(), *graph, scenario);
      row.push_back(FormatSeconds(r.amortized_seconds));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace
}  // namespace gknn::bench

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  const auto flags = bench::CommonFlags::Parse(args);
  const std::string dataset = args.GetString("dataset", "FLA");
  std::vector<uint32_t> sizes;
  for (const auto& s :
       bench::SplitCsv(args.GetString("sizes", "100,1000,10000"))) {
    sizes.push_back(static_cast<uint32_t>(std::stoul(s)));
  }
  bench::Run(dataset, sizes, flags);
  return 0;
}
