// Reproduces Fig. 5: amortized query running time vs dataset for G-Grid,
// G-Grid (L), V-Tree, V-Tree (G), and ROAD (k = 16, defaults otherwise).
//
// Expected shape: G-Grid <= G-Grid (L) << all baselines; V-Tree (G) fails
// to build on USA because its matrices exceed the (scaled) device memory —
// printed as OOM, matching the paper's omission.
//
// Usage: bench_fig5_datasets [--datasets=NY,...] [--scale=N] [--objects=N]
//                            [--queries=N] [--k=K] [--f=HZ] [--seed=S]

#include <cstdio>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "util/logging.h"
#include "workload/datasets.h"

namespace gknn::bench {
namespace {

void Run(const std::vector<std::string>& datasets, const CommonFlags& flags) {
  std::printf(
      "Fig. 5: query running time vs datasets (k=%u, f=%.2f/s, |O| "
      "proportional to network size)\n\n",
      flags.k, flags.frequency);
  TablePrinter table({"Dataset", "|O|", "G-Grid", "G-Grid (L)", "V-Tree",
                      "V-Tree (G)", "ROAD"});
  for (const std::string& name : datasets) {
    auto graph = LoadDataset(name, flags.scale, flags.seed, flags.dimacs_dir);
    GKNN_CHECK(graph.ok()) << graph.status().ToString();
    ScenarioOptions scenario = flags.ToScenario();
    scenario.num_objects =
        ScaledObjectCount(flags.num_objects, graph->num_vertices());
    std::vector<std::string> row = {name,
                                    std::to_string(scenario.num_objects)};

    // G-Grid: one run provides both reporting modes.
    {
      gpusim::Device device(ScaledDeviceConfig(flags.scale));
      auto algorithm = BuildAlgorithm("G-Grid", &*graph, &device, core::GGridOptions{});
      GKNN_CHECK(algorithm.ok()) << algorithm.status().ToString();
      const RunResult r = RunScenario(algorithm->get(), *graph, scenario);
      row.push_back(FormatSeconds(r.amortized_seconds));
      row.push_back(FormatSeconds(r.latency_seconds));
    }
    for (const char* name2 : {"V-Tree", "V-Tree (G)", "ROAD"}) {
      gpusim::Device device(ScaledDeviceConfig(flags.scale));
      auto algorithm = BuildAlgorithm(name2, &*graph, &device, core::GGridOptions{});
      if (!algorithm.ok()) {
        // V-Tree (G) exceeding device memory reproduces the paper's
        // omission of that series on USA.
        row.push_back(algorithm.status().IsResourceExhausted() ? "OOM"
                                                               : "error");
        continue;
      }
      const RunResult r = RunScenario(algorithm->get(), *graph, scenario);
      row.push_back(FormatSeconds(r.amortized_seconds));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace
}  // namespace gknn::bench

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  const auto flags = bench::CommonFlags::Parse(args);
  std::string default_datasets;
  for (const auto& spec : workload::PaperDatasets()) {
    if (!default_datasets.empty()) default_datasets += ",";
    default_datasets += spec.name;
  }
  const auto datasets =
      bench::SplitCsv(args.GetString("datasets", default_datasets));
  bench::Run(datasets, flags);
  return 0;
}
