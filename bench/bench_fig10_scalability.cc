// Reproduces Fig. 10: scalability of G-Grid over the six road networks.
//   (a) running time vs network size    — grows with the network;
//   (b) throughput (queries/s)          — shrinks with the network;
//   (c) DRAM-GPU transfer size per query, k in {8, 32, 128} — grows with k
//       and network size, then flattens on large networks;
//   (d) transfer time per query          — tracks (c).
//
// Usage: bench_fig10_scalability [--datasets=...] [--ks=8,32,128]
//                                [--scale=N] [--objects=N] ...

#include <cstdio>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "util/logging.h"
#include "workload/datasets.h"

namespace gknn::bench {
namespace {

void Run(const std::vector<std::string>& datasets,
         const std::vector<uint32_t>& ks, const CommonFlags& flags) {
  std::printf("Fig. 10(a,b): G-Grid running time and throughput vs "
              "network size (k=%u, |O| proportional to network size)\n\n",
              flags.k);
  TablePrinter time_table(
      {"Dataset", "|V|", "|O|", "Amortized time", "Throughput (q/s)"});

  std::printf("(collecting...)\n");
  struct TransferRow {
    std::string dataset;
    std::vector<uint64_t> bytes_per_query;   // one per k
    std::vector<double> seconds_per_query;   // one per k
  };
  std::vector<TransferRow> transfer_rows;

  for (const std::string& name : datasets) {
    auto graph = LoadDataset(name, flags.scale, flags.seed,
                             flags.dimacs_dir);
    GKNN_CHECK(graph.ok()) << graph.status().ToString();
    gpusim::Device device(ScaledDeviceConfig(flags.scale));
    auto algorithm = BuildAlgorithm("G-Grid", &*graph, &device, core::GGridOptions{});
    GKNN_CHECK(algorithm.ok()) << algorithm.status().ToString();

    // Panel (a)/(b) at the default k, with constant object density.
    ScenarioOptions base = flags.ToScenario();
    base.num_objects =
        ScaledObjectCount(flags.num_objects, graph->num_vertices());
    const RunResult r = RunScenario(algorithm->get(), *graph, base);
    time_table.AddRow({name, std::to_string(graph->num_vertices()),
                       std::to_string(base.num_objects),
                       FormatSeconds(r.amortized_seconds),
                       FormatDouble(r.throughput_qps(), 1)});

    // Panels (c)/(d): transfer volume and modeled PCIe time per query for
    // each k, straight from the device ledger.
    TransferRow row;
    row.dataset = name;
    for (uint32_t k : ks) {
      ScenarioOptions scenario = base;
      scenario.k = k;
      const RunResult rk = RunScenario(algorithm->get(), *graph, scenario);
      row.bytes_per_query.push_back(
          (rk.h2d_bytes + rk.d2h_bytes) / std::max(1u, rk.queries));
      row.seconds_per_query.push_back(rk.transfer_seconds /
                                      std::max(1u, rk.queries));
    }
    transfer_rows.push_back(std::move(row));
  }
  time_table.Print();
  std::printf("\n");

  std::vector<std::string> headers = {"Dataset"};
  for (uint32_t k : ks) headers.push_back("bytes/query k=" + std::to_string(k));
  TablePrinter size_table(headers);
  for (const auto& row : transfer_rows) {
    std::vector<std::string> cells = {row.dataset};
    for (uint64_t b : row.bytes_per_query) cells.push_back(FormatBytes(b));
    size_table.AddRow(std::move(cells));
  }
  std::printf("Fig. 10(c): DRAM-GPU transfer size per query\n\n");
  size_table.Print();
  std::printf("\n");

  headers = {"Dataset"};
  for (uint32_t k : ks) headers.push_back("time/query k=" + std::to_string(k));
  TablePrinter seconds_table(headers);
  for (const auto& row : transfer_rows) {
    std::vector<std::string> cells = {row.dataset};
    for (double s : row.seconds_per_query) cells.push_back(FormatSeconds(s));
    seconds_table.AddRow(std::move(cells));
  }
  std::printf("Fig. 10(d): DRAM-GPU transfer time per query (modeled PCIe)\n\n");
  seconds_table.Print();
}

}  // namespace
}  // namespace gknn::bench

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  const auto flags = bench::CommonFlags::Parse(args);
  std::string default_datasets;
  for (const auto& spec : workload::PaperDatasets()) {
    if (!default_datasets.empty()) default_datasets += ",";
    default_datasets += spec.name;
  }
  const auto datasets =
      bench::SplitCsv(args.GetString("datasets", default_datasets));
  std::vector<uint32_t> ks;
  for (const auto& s : bench::SplitCsv(args.GetString("ks", "8,32,128"))) {
    ks.push_back(static_cast<uint32_t>(std::stoul(s)));
  }
  bench::Run(datasets, ks, flags);
  return 0;
}
