// Reproduces Fig. 6: index sizes vs datasets. Reports G-Grid (CPU),
// G-Grid (GPU), G-Grid (Total), and V-Tree after loading the same fleet.
//
// Expected shape: V-Tree is several times larger than G-Grid (Total)
// because it stores precomputed border-distance matrices, while the graph
// grid "only stores the original data".
//
// Usage: bench_fig6_index_size [--datasets=...] [--scale=N] [--objects=N]

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/ggrid_adapter.h"
#include "baselines/vtree.h"
#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "util/logging.h"
#include "workload/datasets.h"
#include "workload/moving_objects.h"

namespace gknn::bench {
namespace {

void Run(const std::vector<std::string>& datasets, const CommonFlags& flags) {
  std::printf(
      "Fig. 6: index size vs datasets (|O| proportional to network size)\n\n");
  TablePrinter table({"Dataset", "|O|", "G-Grid (CPU)", "G-Grid (GPU)",
                      "G-Grid (Total)", "V-Tree", "V-Tree / G-Grid"});
  for (const std::string& name : datasets) {
    auto graph = LoadDataset(name, flags.scale, flags.seed, flags.dimacs_dir);
    GKNN_CHECK(graph.ok()) << graph.status().ToString();
    gpusim::Device device;  // sizing only; use the full-size device

    auto ggrid = baselines::GGridAlgorithm::Build(
        &*graph, core::GGridOptions{}, &device);
    GKNN_CHECK(ggrid.ok()) << ggrid.status().ToString();
    auto vtree = baselines::VTree::Build(&*graph, baselines::VTree::Options{});
    GKNN_CHECK(vtree.ok()) << vtree.status().ToString();

    // Load the same fleet into both.
    const uint32_t num_objects =
        ScaledObjectCount(flags.num_objects, graph->num_vertices());
    workload::MovingObjectSimulator sim(
        &*graph, {.num_objects = num_objects, .seed = flags.seed});
    std::vector<workload::LocationUpdate> snapshot;
    sim.EmitFullSnapshot(&snapshot);
    for (const auto& u : snapshot) {
      (*ggrid)->Ingest(u.object_id, u.position, u.time);
      (*vtree)->Ingest(u.object_id, u.position, u.time);
    }

    const auto mem = (*ggrid)->index().Memory();
    const uint64_t vtree_bytes = (*vtree)->MemoryBytes();
    table.AddRow({name, std::to_string(num_objects),
                  FormatBytes(mem.cpu_total()),
                  FormatBytes(mem.grid_gpu), FormatBytes(mem.total()),
                  FormatBytes(vtree_bytes),
                  FormatDouble(static_cast<double>(vtree_bytes) /
                                   static_cast<double>(mem.total()),
                               2)});
  }
  table.Print();
}

}  // namespace
}  // namespace gknn::bench

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  const auto flags = bench::CommonFlags::Parse(args);
  std::string default_datasets;
  for (const auto& spec : workload::PaperDatasets()) {
    if (!default_datasets.empty()) default_datasets += ",";
    default_datasets += spec.name;
  }
  const auto datasets =
      bench::SplitCsv(args.GetString("datasets", default_datasets));
  bench::Run(datasets, flags);
  return 0;
}
