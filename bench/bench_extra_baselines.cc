// Beyond the paper's comparison set: G-Grid vs the classic CPU approaches
// the introduction argues against — eager-update G-Grid (the "enforce every
// update" strategy) and CPU incremental network expansion with no
// precomputation (Papadias et al. [1]; the road-network analogue of the
// main-memory grids of [7]/[24]).
//
// Expected: eager G-Grid pays the per-update cleaning the lazy scheme
// exists to avoid (orders of magnitude slower, growing with f). CPU-INE
// has near-zero update cost and tiny queries at CI scale — it wins on the
// scaled-down instances, with the crossover toward G-Grid appearing as
// network size, k, and object sparsity grow (try --dataset=USA --k=256
// --objects=1000): INE's expansion cost scales with the vertices inside
// the kth-neighbor ball, which at the paper's real 24M-vertex scale is
// what makes index-based methods necessary at all.
//
// Usage: bench_extra_baselines [--dataset=FLA] [--scale=N] [--objects=N]
//                              [--frequencies=0.5,1,2,4]

#include <cstdio>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "util/logging.h"

namespace gknn::bench {
namespace {

void Run(const std::string& dataset, const std::vector<double>& frequencies,
         const CommonFlags& flags) {
  auto graph = LoadDataset(dataset, flags.scale, flags.seed,
                           flags.dimacs_dir);
  GKNN_CHECK(graph.ok()) << graph.status().ToString();
  std::printf(
      "Extra baselines on %s (k=%u, |O|=%u): lazy vs eager vs CPU-INE\n\n",
      dataset.c_str(), flags.k, flags.num_objects);
  TablePrinter table(
      {"f (1/s)", "G-Grid (lazy)", "G-Grid (eager)", "CPU-INE"});
  for (double f : frequencies) {
    ScenarioOptions scenario = flags.ToScenario();
    scenario.update_frequency_hz = f;
    std::vector<std::string> row = {FormatDouble(f, 2)};

    for (int variant = 0; variant < 3; ++variant) {
      gpusim::Device device(ScaledDeviceConfig(flags.scale));
      core::GGridOptions options;
      options.eager_updates = variant == 1;
      auto algorithm = BuildAlgorithm(variant == 2 ? "CPU-INE" : "G-Grid",
                                      &*graph, &device, options);
      GKNN_CHECK(algorithm.ok()) << algorithm.status().ToString();
      const RunResult r = RunScenario(algorithm->get(), *graph, scenario);
      row.push_back(FormatSeconds(r.amortized_seconds));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
}

}  // namespace
}  // namespace gknn::bench

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  const auto flags = bench::CommonFlags::Parse(args);
  std::vector<double> frequencies;
  for (const auto& s :
       bench::SplitCsv(args.GetString("frequencies", "0.5,1,2,4"))) {
    frequencies.push_back(std::stod(s));
  }
  bench::Run(args.GetString("dataset", "FLA"), frequencies, flags);
  return 0;
}
