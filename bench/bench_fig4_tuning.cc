// Reproduces Fig. 4: tuning the G-Grid system parameters.
//   (a) bucket capacity delta^b in {4 .. 256}   — expect a U-shape with the
//       minimum near 128;
//   (b) bundle size 2^eta in {4 .. 128}         — expect degradation past
//       the warp size 32 (cross-warp sync penalty);
//   (c) CPU/GPU balance rho in {1.4 .. 3.0}     — expect a dip near 1.8.
//
// Usage: bench_fig4_tuning [--param=db|eta|rho|all] [--datasets=NY,FLA,COL]
//                          [--scale=N] [--objects=N] [--queries=N] ...

#include <cstdio>
#include <string>
#include <vector>

#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "util/logging.h"

namespace gknn::bench {
namespace {

/// Runs the default scenario with one G-Grid configuration.
RunResult MeasureConfig(const roadnet::Graph& graph,
                        const core::GGridOptions& options,
                        const CommonFlags& flags) {
  gpusim::Device device(ScaledDeviceConfig(flags.scale));
  auto algorithm =
      BuildAlgorithm("G-Grid", &graph, &device, options);
  GKNN_CHECK(algorithm.ok()) << algorithm.status().ToString();
  return RunScenario(algorithm->get(), graph, flags.ToScenario());
}

void SweepParameter(const std::string& param,
                    const std::vector<std::string>& datasets,
                    const CommonFlags& flags) {
  struct Sweep {
    std::string title;
    std::vector<double> values;
  };
  Sweep sweep;
  if (param == "db") {
    sweep = {"Fig. 4a: varying bucket capacity delta^b",
             {4, 8, 16, 32, 64, 128, 256}};
  } else if (param == "eta") {
    sweep = {"Fig. 4b: varying bundle size 2^eta",
             {4, 8, 16, 32, 64, 128}};
  } else {
    sweep = {"Fig. 4c: varying rho",
             {1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.6, 2.8, 3.0}};
  }

  // delta_b and eta tune the cleaning kernels, so those sweeps report the
  // modeled device time per query (kernels + transfers); the rho sweep
  // balances CPU against GPU and reports the amortized total.
  const bool report_device_time = param != "rho";
  std::printf("%s (%s per query)\n\n", sweep.title.c_str(),
              report_device_time ? "device time" : "amortized time");
  std::vector<std::string> headers = {param};
  for (const auto& d : datasets) headers.push_back(d);
  TablePrinter table(headers);
  // Load each dataset once; rebuild the index per parameter value.
  std::vector<roadnet::Graph> graphs;
  for (const auto& d : datasets) {
    auto graph = LoadDataset(d, flags.scale, flags.seed, flags.dimacs_dir);
    GKNN_CHECK(graph.ok()) << graph.status().ToString();
    graphs.push_back(std::move(graph).ValueOrDie());
  }
  for (double value : sweep.values) {
    core::GGridOptions options;
    if (param == "db") {
      options.delta_b = static_cast<uint32_t>(value);
    } else if (param == "eta") {
      uint32_t eta = 0;
      while ((1u << eta) < static_cast<uint32_t>(value)) ++eta;
      options.eta = eta;
    } else {
      options.rho = value;
    }
    std::vector<std::string> row = {param == "rho"
                                        ? FormatDouble(value, 1)
                                        : std::to_string(
                                              static_cast<int>(value))};
    for (const auto& graph : graphs) {
      const RunResult r = MeasureConfig(graph, options, flags);
      row.push_back(FormatSeconds(
          report_device_time ? r.query_gpu_seconds / flags.num_queries
                             : r.amortized_seconds));
    }
    table.AddRow(std::move(row));
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace gknn::bench

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  auto flags = bench::CommonFlags::Parse(args);
  // Tuning needs real message pressure in the buckets: a higher default
  // update rate and more queries than the other figures.
  flags.frequency = args.GetDouble("f", 4.0);
  flags.num_queries = static_cast<uint32_t>(args.GetInt("queries", 40));
  const std::string param = args.GetString("param", "all");
  const auto datasets =
      bench::SplitCsv(args.GetString("datasets", "NY,COL,FLA"));

  if (param == "all" || param == "db") {
    bench::SweepParameter("db", datasets, flags);
  }
  if (param == "all" || param == "eta") {
    bench::SweepParameter("eta", datasets, flags);
  }
  if (param == "all" || param == "rho") {
    bench::SweepParameter("rho", datasets, flags);
  }
  return 0;
}
