// Validates the paper's §VI analytical cost model against measurement:
// for each dataset, print the model's predicted transfer volume, device
// time, and index-memory components next to the values the instrumented
// run actually produced. The asymptotic claims (§VI) hold when the ratios
// stay roughly constant across rows.
//
// Usage: bench_cost_model [--datasets=NY,FLA,USA] [--scale=N] [--objects=N]

#include <cstdio>
#include <string>
#include <vector>

#include "baselines/ggrid_adapter.h"
#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "core/cost_model.h"
#include "util/logging.h"

namespace gknn::bench {
namespace {

void Run(const std::vector<std::string>& datasets, const CommonFlags& flags) {
  std::printf(
      "Cost-model validation (paper §VI): predicted vs measured, k=%u\n\n",
      flags.k);
  TablePrinter table({"Dataset", "xfer/query (pred)", "xfer/query (meas)",
                      "GPU/query (pred)", "GPU/query (meas)",
                      "msg mem (pred)", "msg mem (meas)"});
  for (const std::string& name : datasets) {
    auto graph = LoadDataset(name, flags.scale, flags.seed,
                             flags.dimacs_dir);
    GKNN_CHECK(graph.ok()) << graph.status().ToString();
    gpusim::Device device(ScaledDeviceConfig(flags.scale));
    auto algorithm = baselines::GGridAlgorithm::Build(
        &*graph, core::GGridOptions{}, &device);
    GKNN_CHECK(algorithm.ok()) << algorithm.status().ToString();

    ScenarioOptions scenario = flags.ToScenario();
    const RunResult r = RunScenario(algorithm->get(), *graph, scenario);

    core::CostModelInputs inputs;
    inputs.k = flags.k;
    inputs.rho = core::GGridOptions{}.rho;
    // f_Delta = updates per object per t_Delta window; the scenario polls
    // queries every query_interval, which is how much traffic accrues
    // per query between cleanings of a region.
    inputs.f_delta =
        scenario.update_frequency_hz * core::GGridOptions{}.t_delta;
    inputs.num_vertices = graph->num_vertices();
    inputs.num_edges = graph->num_edges();
    inputs.num_objects = scenario.num_objects;
    const auto pred = core::PredictCosts(inputs, device.config());

    const auto mem = (*algorithm)->index().Memory();
    table.AddRow(
        {name,
         FormatBytes(pred.messages_transferred * inputs.message_bytes),
         FormatBytes((r.h2d_bytes + r.d2h_bytes) / std::max(1u, r.queries)),
         FormatSeconds(pred.total_gpu_seconds),
         FormatSeconds(r.query_gpu_seconds / std::max(1u, r.queries)),
         FormatBytes(pred.message_list_bytes),
         FormatBytes(mem.message_lists)});
  }
  table.Print();
  std::printf(
      "\nNotes: the model predicts the paper's O(f_Delta*rho*k) transfer\n"
      "bound per cleaning batch; measured transfer includes SDist inputs\n"
      "and ring re-cleaning, so measured >= predicted with a roughly\n"
      "constant ratio across datasets. Message memory is the §VI-A worst\n"
      "case f_Delta*|O| (between cleanings); steady-state measured memory\n"
      "sits below it because queries keep compacting hot regions.\n");
}

}  // namespace
}  // namespace gknn::bench

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  const auto flags = bench::CommonFlags::Parse(args);
  const auto datasets =
      bench::SplitCsv(args.GetString("datasets", "NY,COL,FLA,CAL,LKS,USA"));
  bench::Run(datasets, flags);
  return 0;
}
