// Reproduces Table II: statistics of the six road networks, plus the
// statistics of the scaled instances this reproduction actually runs on
// (real DIMACS files are used instead when --dimacs_dir contains them).
//
// Usage: bench_table2_datasets [--scale=N] [--seed=S] [--dimacs_dir=DIR]

#include <cstdio>

#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "util/logging.h"
#include "workload/datasets.h"

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  const auto flags = bench::CommonFlags::Parse(args);

  std::printf("Table II: statistics of road networks\n");
  std::printf("(instances scaled by 1/%u; see DESIGN.md for the dataset "
              "substitution)\n\n",
              flags.scale);
  bench::TablePrinter table({"Dataset", "Region", "|V| (paper)",
                             "|E| (paper)", "|V| (run)", "|E| (run)",
                             "|E|/|V|", "Connected"});
  for (const auto& spec : workload::PaperDatasets()) {
    auto graph = bench::LoadDataset(spec.name, flags.scale, flags.seed,
                                    flags.dimacs_dir);
    GKNN_CHECK(graph.ok()) << graph.status().ToString();
    const double ratio = static_cast<double>(graph->num_edges()) /
                         graph->num_vertices();
    table.AddRow({spec.name, spec.region, std::to_string(spec.full_vertices),
                  std::to_string(spec.full_edges),
                  std::to_string(graph->num_vertices()),
                  std::to_string(graph->num_edges()),
                  bench::FormatDouble(ratio, 2),
                  graph->IsWeaklyConnected() ? "yes" : "no"});
  }
  table.Print();
  return 0;
}
