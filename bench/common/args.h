#ifndef GKNN_BENCH_COMMON_ARGS_H_
#define GKNN_BENCH_COMMON_ARGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gknn::bench {

/// Splits "NY,FLA,USA" into its comma-separated parts (empty parts kept).
std::vector<std::string> SplitCsv(const std::string& csv);

/// Minimal command-line parser for the benchmark binaries: flags are
/// `--key=value` or bare `--key` (treated as "true"). Unknown positional
/// arguments are rejected so typos fail loudly.
class Args {
 public:
  Args(int argc, char** argv);

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  bool GetBool(const std::string& key, bool default_value) const;

  /// True if any argument failed to parse; main() should print usage and
  /// exit non-zero.
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  std::map<std::string, std::string> values_;
  std::string error_;
};

}  // namespace gknn::bench

#endif  // GKNN_BENCH_COMMON_ARGS_H_
