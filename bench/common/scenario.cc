#include "common/scenario.h"

#include <algorithm>
#include <iostream>

#include "baselines/brute_force.h"
#include "baselines/cpu_grid.h"
#include "baselines/ggrid_adapter.h"
#include "baselines/road.h"
#include "baselines/vtree.h"
#include "baselines/vtree_gpu.h"
#include "workload/datasets.h"
#include "workload/moving_objects.h"
#include "workload/queries.h"

namespace gknn::bench {

using baselines::KnnAlgorithm;
using baselines::TimeBreakdown;

RunResult RunScenario(KnnAlgorithm* algorithm, const roadnet::Graph& graph,
                      const ScenarioOptions& options) {
  workload::MovingObjectSimulator sim(
      &graph, {.num_objects = options.num_objects,
               .update_frequency_hz = options.update_frequency_hz,
               .seed = options.seed});
  // Prime with the initial fleet (index load, not measured — the paper
  // measures steady-state query/update behaviour).
  std::vector<workload::LocationUpdate> updates;
  sim.EmitFullSnapshot(&updates);
  for (const auto& u : updates) {
    algorithm->Ingest(u.object_id, u.position, u.time);
  }
  (void)algorithm->ConsumeCosts();

  const auto queries = workload::GenerateQueries(
      graph, {.num_queries = options.num_queries,
              .k = options.k,
              .start_time = options.warmup_seconds,
              .interval_seconds = options.query_interval,
              .seed = options.seed + 7});

  RunResult result;
  result.queries = options.num_queries;
  TimeBreakdown update_costs;
  TimeBreakdown query_costs;
  for (const auto& q : queries) {
    updates.clear();
    sim.AdvanceTo(q.time, &updates);
    for (const auto& u : updates) {
      algorithm->Ingest(u.object_id, u.position, u.time);
    }
    result.updates += updates.size();
    update_costs += algorithm->ConsumeCosts();

    auto answer = algorithm->QueryKnn(q.location, q.k, q.time);
    GKNN_CHECK(answer.ok()) << algorithm->name() << ": "
                            << answer.status().ToString();
    query_costs += algorithm->ConsumeCosts();
  }

  result.update_seconds = update_costs.total();
  result.query_cpu_seconds = query_costs.cpu_seconds;
  result.query_gpu_seconds = query_costs.gpu_seconds;
  result.transfer_seconds =
      update_costs.transfer_seconds + query_costs.transfer_seconds;
  result.h2d_bytes = update_costs.h2d_bytes + query_costs.h2d_bytes;
  result.d2h_bytes = update_costs.d2h_bytes + query_costs.d2h_bytes;

  const double n = options.num_queries;
  // Serial response: every phase of every query on the critical path.
  result.latency_seconds =
      (result.update_seconds + result.query_cpu_seconds +
       result.query_gpu_seconds) /
      n;
  // Overlapped: across a stream of queries the CPU phase of one query
  // runs while the device serves another, so the slower of the two pools
  // bounds throughput (the paper's G-Grid vs G-Grid (L) distinction).
  result.amortized_seconds =
      (result.update_seconds +
       std::max(result.query_cpu_seconds, result.query_gpu_seconds)) /
      n;

  if (options.emit_metrics_json) {
    if (auto* ggrid = dynamic_cast<baselines::GGridAlgorithm*>(algorithm)) {
      ggrid->index().FoldDeviceMetrics();
      std::cout << ggrid->index().metrics().RenderJson() << "\n";
    }
  }
  return result;
}

util::Result<std::unique_ptr<KnnAlgorithm>> BuildAlgorithm(
    const std::string& name, const roadnet::Graph* graph,
    gpusim::Device* device, const core::GGridOptions& ggrid_options,
    uint32_t leaf_size) {
  if (name == "G-Grid") {
    GKNN_ASSIGN_OR_RETURN(auto algorithm,
                          baselines::GGridAlgorithm::Build(
                              graph, ggrid_options, device));
    return std::unique_ptr<KnnAlgorithm>(std::move(algorithm));
  }
  if (name == "V-Tree") {
    GKNN_ASSIGN_OR_RETURN(
        auto algorithm,
        baselines::VTree::Build(graph,
                                baselines::VTree::Options{
                                    .leaf_size = leaf_size,
                                    .partition = ggrid_options.partition}));
    return std::unique_ptr<KnnAlgorithm>(std::move(algorithm));
  }
  if (name == "V-Tree (G)") {
    GKNN_ASSIGN_OR_RETURN(
        auto algorithm,
        baselines::VTreeG::Build(graph,
                                 baselines::VTree::Options{
                                     .leaf_size = leaf_size,
                                     .partition = ggrid_options.partition},
                                 device));
    return std::unique_ptr<KnnAlgorithm>(std::move(algorithm));
  }
  if (name == "ROAD") {
    GKNN_ASSIGN_OR_RETURN(
        auto algorithm,
        baselines::Road::Build(graph,
                               baselines::Road::Options{
                                   .leaf_size = leaf_size,
                                   .partition = ggrid_options.partition}));
    return std::unique_ptr<KnnAlgorithm>(std::move(algorithm));
  }
  if (name == "BruteForce") {
    return std::unique_ptr<KnnAlgorithm>(
        std::make_unique<baselines::BruteForce>(graph));
  }
  if (name == "CPU-INE") {
    return std::unique_ptr<KnnAlgorithm>(
        std::make_unique<baselines::CpuGrid>(graph));
  }
  return util::Status::InvalidArgument("unknown algorithm: " + name);
}

util::Result<roadnet::Graph> LoadDataset(const std::string& name,
                                         uint32_t scale, uint64_t seed,
                                         const std::string& dimacs_dir) {
  GKNN_ASSIGN_OR_RETURN(workload::DatasetSpec spec,
                        workload::FindDataset(name));
  return workload::InstantiateDataset(spec, scale, seed, dimacs_dir);
}

gpusim::DeviceConfig ScaledDeviceConfig(uint32_t scale) {
  gpusim::DeviceConfig config;  // Quadro-P2000-like defaults
  // Capacity shrinks with the dataset scale; 10% is held back as runtime
  // working memory (cleaning buffers, distance arrays, streams) the way a
  // real deployment cannot hand an index 100% of the device.
  config.memory_bytes = std::max<uint64_t>(
      1 << 20,
      static_cast<uint64_t>(0.9 * config.memory_bytes / std::max(1u, scale)));
  return config;
}

uint32_t ScaledObjectCount(uint32_t flag_objects, uint32_t num_vertices) {
  constexpr double kAnchorVertices = 48000.0;  // USA at 1/500
  const double proportional =
      flag_objects * (num_vertices / kAnchorVertices);
  return std::max(500u, static_cast<uint32_t>(proportional));
}

CommonFlags CommonFlags::Parse(const Args& args) {
  CommonFlags flags;
  flags.scale = static_cast<uint32_t>(args.GetInt("scale", 500));
  flags.num_objects =
      static_cast<uint32_t>(args.GetInt("objects", 2000));
  flags.num_queries = static_cast<uint32_t>(args.GetInt("queries", 30));
  flags.k = static_cast<uint32_t>(args.GetInt("k", 16));
  flags.frequency = args.GetDouble("f", 1.0);
  flags.seed = static_cast<uint64_t>(args.GetInt("seed", 1));
  flags.dimacs_dir = args.GetString("dimacs_dir", "");
  flags.metrics = args.GetBool("metrics", false);
  return flags;
}

ScenarioOptions CommonFlags::ToScenario() const {
  ScenarioOptions options;
  options.num_objects = num_objects;
  options.update_frequency_hz = frequency;
  options.num_queries = num_queries;
  options.k = k;
  options.seed = seed;
  options.emit_metrics_json = metrics;
  return options;
}

}  // namespace gknn::bench
