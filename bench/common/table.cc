#include "common/table.h"

#include <algorithm>
#include <cstdio>

namespace gknn::bench {

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : "";
      line += cell;
      line.append(widths[c] - cell.size() + 2, ' ');
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    std::printf("%s\n", line.c_str());
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::printf("%s\n", std::string(total - 2, '-').c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds < 0) {
    return "n/a";
  }
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.1f ns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  }
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else if (bytes < 1024ull * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", b / 1024);
  } else if (bytes < 1024ull * 1024 * 1024) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", b / (1024.0 * 1024));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f GB", b / (1024.0 * 1024 * 1024));
  }
  return buf;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

}  // namespace gknn::bench
