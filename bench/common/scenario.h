#ifndef GKNN_BENCH_COMMON_SCENARIO_H_
#define GKNN_BENCH_COMMON_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/knn_algorithm.h"
#include "common/args.h"
#include "core/options.h"
#include "gpusim/device.h"
#include "roadnet/graph.h"
#include "util/result.h"

namespace gknn::bench {

/// Workload parameters of one measured run, mirroring the paper's setup
/// (§VII-A): |O| moving objects updating at f Hz, queries at fixed
/// intervals with constant k, all seeded.
struct ScenarioOptions {
  uint32_t num_objects = 2000;        // |O| (paper default 10^4, scaled)
  double update_frequency_hz = 1.0;   // f (paper default 1 / second)
  uint32_t num_queries = 40;
  uint32_t k = 16;                    // paper default
  double query_interval = 0.25;       // seconds between queries
  double warmup_seconds = 1.0;        // movement before the first query
  uint64_t seed = 1;
  /// Print the algorithm's metrics-registry JSON ("gknn-metrics/v1" one-
  /// liner, G-Grid only) to stdout after the run; scripts/bench_to_csv.py
  /// turns those lines into a phase-breakdown CSV.
  bool emit_metrics_json = false;
};

/// Measured outcome of a run, in the paper's reporting terms.
struct RunResult {
  /// (T_u + T_q) / n_q with query CPU and GPU phases overlapped across
  /// queries — the paper's "G-Grid" line ("our system can process multiple
  /// queries in parallel").
  double amortized_seconds = 0;
  /// (T_u + T_q) / n_q with every query fully serialized — the paper's
  /// "G-Grid (L)" line (average end-to-end response). For CPU-only
  /// algorithms the two coincide.
  double latency_seconds = 0;

  double update_seconds = 0;      // total ingest cost T_u
  double query_cpu_seconds = 0;   // total query host time
  double query_gpu_seconds = 0;   // total modeled device time in queries
  double transfer_seconds = 0;    // modeled PCIe time (updates + queries)
  uint64_t h2d_bytes = 0;
  uint64_t d2h_bytes = 0;
  uint64_t updates = 0;
  uint32_t queries = 0;

  double throughput_qps() const {
    return amortized_seconds > 0 ? 1.0 / amortized_seconds : 0;
  }
};

/// Drives one algorithm through the scenario: prime with a fleet snapshot
/// (untimed), then interleave timed update ingestion and timed queries.
RunResult RunScenario(baselines::KnnAlgorithm* algorithm,
                      const roadnet::Graph& graph,
                      const ScenarioOptions& options);

/// Names accepted by BuildAlgorithm.
inline constexpr const char* kAlgorithmNames[] = {
    "G-Grid", "V-Tree", "V-Tree (G)", "ROAD", "BruteForce", "CPU-INE"};

/// Instantiates an algorithm over `graph`. `leaf_size` applies to the
/// tree-based baselines.
util::Result<std::unique_ptr<baselines::KnnAlgorithm>> BuildAlgorithm(
    const std::string& name, const roadnet::Graph* graph,
    gpusim::Device* device, const core::GGridOptions& ggrid_options,
    uint32_t leaf_size = 128);

/// Loads one of the Table-II datasets at 1/scale of its real size (or the
/// real DIMACS file if --dimacs_dir points at it). See
/// workload::InstantiateDataset.
util::Result<roadnet::Graph> LoadDataset(const std::string& name,
                                         uint32_t scale, uint64_t seed,
                                         const std::string& dimacs_dir);

/// Device configuration scaled to match: capacity shrinks by the same
/// factor as the datasets so memory-pressure effects (V-Tree (G) failing
/// to build on USA, Fig. 5) reproduce at reduced scale.
gpusim::DeviceConfig ScaledDeviceConfig(uint32_t scale);

/// Object count for a dataset in a cross-dataset sweep: proportional to
/// the instantiated network size (anchored at `flag_objects` for a
/// USA-at-1/500 sized network, floored at 500). Scaled-down networks with
/// an unscaled fleet are ~100x denser than the paper's setup, which
/// inverts the baselines' size trends (eager per-leaf maintenance swamps
/// the small networks); constant density preserves the paper's regime.
uint32_t ScaledObjectCount(uint32_t flag_objects, uint32_t num_vertices);

/// Common flags shared by the figure benchmarks.
struct CommonFlags {
  uint32_t scale;
  uint32_t num_objects;
  uint32_t num_queries;
  uint32_t k;
  double frequency;
  uint64_t seed;
  std::string dimacs_dir;
  bool metrics;  // --metrics: emit registry JSON after each G-Grid run

  static CommonFlags Parse(const Args& args);
  ScenarioOptions ToScenario() const;
};

}  // namespace gknn::bench

#endif  // GKNN_BENCH_COMMON_SCENARIO_H_
