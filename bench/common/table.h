#ifndef GKNN_BENCH_COMMON_TABLE_H_
#define GKNN_BENCH_COMMON_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gknn::bench {

/// Fixed-width text table, the output format of every figure/table
/// benchmark (one printed table per paper table or figure panel).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Renders to stdout with a separator line under the header.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1.23 us" / "45.6 ms" / "7.89 s" — human units for running times.
std::string FormatSeconds(double seconds);

/// "1.2 KB" / "3.4 MB" — human units for sizes.
std::string FormatBytes(uint64_t bytes);

/// Fixed-precision helper.
std::string FormatDouble(double value, int precision = 2);

}  // namespace gknn::bench

#endif  // GKNN_BENCH_COMMON_TABLE_H_
