#include "common/args.h"

#include <cstdlib>

namespace gknn::bench {

std::vector<std::string> SplitCsv(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(start));
      break;
    }
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

Args::Args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      error_ = "unexpected positional argument: " + arg;
      return;
    }
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "true";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

std::string Args::GetString(const std::string& key,
                            const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

int64_t Args::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Args::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value
                             : std::strtod(it->second.c_str(), nullptr);
}

bool Args::GetBool(const std::string& key, bool default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace gknn::bench
