// Batched query processing (paper §VII-C2: "our system can process
// multiple queries in parallel" — the mechanism behind G-Grid beating
// G-Grid (L)). Two experiments:
//
//  1. Device-pass sharing: issuing n simultaneous queries one-by-one vs
//     GGridIndex::QueryKnnBatch, which cleans the union of their candidate
//     regions in one device pass.
//  2. Device scaling: the same batch raced through QueryServer over a
//     gpusim::DeviceSet of 1/2/4 devices, placed by the multi-stream
//     scheduler (gpusim/scheduler.h). Reports wall-clock queries/sec and a
//     *measured multi-device* queries/sec: the makespan is the largest
//     per-device modeled-clock delta (DeviceSet::MaxClockSeconds), so the
//     number reflects where the scheduler actually put the work — not a
//     modeled packing — yet stays load-insensitive (modeled clocks only;
//     see docs/CONCURRENCY.md "Multi-device scheduling").
//
// Usage: bench_batch_queries [--dataset=FLA] [--batches=2,4,8,16]
//                            [--devices=1,2,4] [--scale=N]
//                            [--objects=N] [--k=K] [--smoke]
//
// --smoke runs a small scenario and exits non-zero unless the measured
// multi-device throughput is monotone in the device count and at least
// 1.5x the single-device figure at 2 devices (the CI regression gate for
// the scheduler).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/ggrid_adapter.h"
#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "server/query_server.h"
#include "util/logging.h"
#include "util/timer.h"
#include "workload/moving_objects.h"
#include "workload/queries.h"

namespace gknn::bench {
namespace {

void RunBatchSharing(const std::string& dataset,
                     const std::vector<uint32_t>& batches,
                     const CommonFlags& flags) {
  auto graph = LoadDataset(dataset, flags.scale, flags.seed,
                           flags.dimacs_dir);
  GKNN_CHECK(graph.ok()) << graph.status().ToString();

  std::printf("Batched queries on %s (k=%u, |O|=%u): device time per "
              "query, one-by-one vs QueryKnnBatch\n\n",
              dataset.c_str(), flags.k, flags.num_objects);
  TablePrinter table({"Batch size", "Serial device/query",
                      "Batched device/query", "Speedup"});
  for (uint32_t batch : batches) {
    // Two identical indexes fed the same fleet.
    gpusim::Device serial_device(ScaledDeviceConfig(flags.scale));
    gpusim::Device batch_device(ScaledDeviceConfig(flags.scale));
    auto serial_index = core::GGridIndex::Build(
        &*graph, core::GGridOptions{}, &serial_device);
    auto batch_index = core::GGridIndex::Build(
        &*graph, core::GGridOptions{}, &batch_device);
    GKNN_CHECK(serial_index.ok());
    GKNN_CHECK(batch_index.ok());
    workload::MovingObjectSimulator sim(
        &*graph, {.num_objects = flags.num_objects, .seed = flags.seed});
    std::vector<workload::LocationUpdate> updates;
    sim.AdvanceTo(2.0, &updates);
    for (const auto& u : updates) {
      GKNN_CHECK(
          (*serial_index)->Ingest(u.object_id, u.position, u.time).ok());
      GKNN_CHECK(
          (*batch_index)->Ingest(u.object_id, u.position, u.time).ok());
    }
    const auto queries = workload::GenerateQueries(
        *graph, {.num_queries = batch, .k = flags.k, .seed = flags.seed + 3});
    std::vector<roadnet::EdgePoint> locations;
    for (const auto& q : queries) locations.push_back(q.location);

    const double serial_before = serial_device.ClockSeconds();
    for (const auto& loc : locations) {
      auto r = (*serial_index)->QueryKnn(loc, flags.k, 2.0);
      GKNN_CHECK(r.ok());
    }
    const double serial_per_query =
        (serial_device.ClockSeconds() - serial_before) / batch;

    const double batch_before = batch_device.ClockSeconds();
    auto rb = (*batch_index)->QueryKnnBatch(locations, flags.k, 2.0);
    GKNN_CHECK(rb.ok());
    const double batch_per_query =
        (batch_device.ClockSeconds() - batch_before) / batch;

    table.AddRow({std::to_string(batch), FormatSeconds(serial_per_query),
                  FormatSeconds(batch_per_query),
                  FormatDouble(serial_per_query / batch_per_query, 2) + "x"});
  }
  table.Print();
}

/// Device-scaling experiment: one QueryServer per device count, each over
/// a fresh gpusim::DeviceSet, the batch fanned over the server's query
/// pool so concurrent queries hit the scheduler the way production load
/// does. Throughput is *measured* from the per-device modeled clocks: the
/// makespan of a run is max_i(clock_i_after - clock_i_before) — the
/// busiest device's timeline — so a scheduler that dumps everything on
/// one device shows no speedup no matter how many devices exist. Returns
/// false when the smoke gate fails.
bool RunDeviceScaling(const std::string& dataset,
                      const std::vector<uint32_t>& device_counts,
                      const CommonFlags& flags, bool smoke) {
  auto graph = LoadDataset(dataset, flags.scale, flags.seed,
                           flags.dimacs_dir);
  GKNN_CHECK(graph.ok()) << graph.status().ToString();
  const uint32_t num_queries = std::max<uint32_t>(flags.num_queries, 32);
  const auto queries = workload::GenerateQueries(
      *graph,
      {.num_queries = num_queries, .k = flags.k, .seed = flags.seed + 5});
  workload::MovingObjectSimulator sim(
      &*graph, {.num_objects = flags.num_objects, .seed = flags.seed});
  std::vector<workload::LocationUpdate> updates;
  sim.AdvanceTo(2.0, &updates);

  std::printf("\nDevice scaling on %s (k=%u, |O|=%u, %u queries): "
              "QueryKnnBatch over a DeviceSet via the multi-stream "
              "scheduler\n\n",
              dataset.c_str(), flags.k, flags.num_objects, num_queries);
  TablePrinter table({"Devices", "Wall q/s", "Measured q/s (clock)",
                      "Speedup", "Busiest/avg"});
  std::vector<double> measured_qps;
  double makespan_1 = 0;
  for (uint32_t num_devices : device_counts) {
    GKNN_CHECK(num_devices > 0);
    // A fresh set + server per row so caches and every clock start equal.
    gpusim::DeviceSet devices(num_devices, ScaledDeviceConfig(flags.scale));
    server::ServerOptions server_options;
    server_options.query_threads = 2 * num_devices;
    auto server = server::QueryServer::Create(
        &*graph, core::GGridOptions{}, &devices, server_options);
    GKNN_CHECK(server.ok()) << server.status().ToString();
    for (const auto& u : updates) {
      (*server)->Report(u.object_id, u.position, u.time);
    }
    std::vector<roadnet::EdgePoint> locations;
    for (const auto& q : queries) locations.push_back(q.location);
    // Pay the inbox drain + first cleaning outside the timed window (the
    // grid mirror uploads already happened at build time).
    GKNN_CHECK((*server)->QueryKnn(locations[0], flags.k, 2.0).ok());

    // Best of a few trials: OS thread-timing jitter can starve a pool
    // thread for one batch and skew placement, but the balanced makespan
    // is deterministic (modeled clocks, identical queries), so the best
    // trial converges to it — while a scheduler that cannot balance
    // fails every trial.
    constexpr int kTrials = 3;
    double wall_qps = 0;
    double makespan = 0;
    double balance = 0;
    for (int trial = 0; trial < kTrials; ++trial) {
      std::vector<double> clock_before(num_devices);
      for (uint32_t i = 0; i < num_devices; ++i) {
        clock_before[i] = devices.device(i).ClockSeconds();
      }
      util::Timer timer;
      auto rb = (*server)->QueryKnnBatch(locations, flags.k, 2.0);
      GKNN_CHECK(rb.ok()) << rb.status().ToString();
      const double trial_wall_qps = num_queries / timer.ElapsedSeconds();

      double trial_makespan = 0;
      double total_busy = 0;
      for (uint32_t i = 0; i < num_devices; ++i) {
        const double busy =
            devices.device(i).ClockSeconds() - clock_before[i];
        trial_makespan = std::max(trial_makespan, busy);
        total_busy += busy;
      }
      GKNN_CHECK(trial_makespan > 0) << "batch consumed no device time";
      if (makespan == 0 || trial_makespan < makespan) {
        makespan = trial_makespan;
        wall_qps = trial_wall_qps;
        // Busiest/avg = 1.00 is a perfectly balanced placement;
        // num_devices means everything landed on one device.
        balance = trial_makespan / (total_busy / num_devices);
      }
    }
    const double qps = num_queries / makespan;
    measured_qps.push_back(qps);
    if (num_devices == device_counts.front()) makespan_1 = makespan;
    table.AddRow({std::to_string(num_devices), FormatDouble(wall_qps, 0),
                  FormatDouble(qps, 0),
                  FormatDouble(makespan_1 / makespan, 2) + "x",
                  FormatDouble(balance, 2)});
  }
  table.Print();

  if (!smoke) return true;
  bool pass = true;
  for (size_t i = 1; i < measured_qps.size(); ++i) {
    if (measured_qps[i] < measured_qps[i - 1]) {
      std::printf("SMOKE FAIL: measured q/s dropped from %.0f (%u devices) "
                  "to %.0f (%u devices)\n",
                  measured_qps[i - 1], device_counts[i - 1], measured_qps[i],
                  device_counts[i]);
      pass = false;
    }
  }
  for (size_t i = 0; i < device_counts.size(); ++i) {
    if (device_counts[i] == 2 && measured_qps[i] < 1.5 * measured_qps[0]) {
      std::printf("SMOKE FAIL: 2-device throughput %.0f q/s is below 1.5x "
                  "the 1-device %.0f q/s\n",
                  measured_qps[i], measured_qps[0]);
      pass = false;
    }
  }
  if (pass) {
    std::printf("smoke: measured multi-device throughput is monotone "
                "(%.2fx at %u devices; gate: monotone, >= 1.5x at 2) -- "
                "PASS\n",
                measured_qps.back() / measured_qps.front(),
                device_counts.back());
  }
  return pass;
}

}  // namespace
}  // namespace gknn::bench

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  auto flags = bench::CommonFlags::Parse(args);
  const bool smoke = args.GetBool("smoke", false);
  if (smoke) {
    // Small deterministic scenario for the ctest/CI gate.
    flags.scale = std::max<uint32_t>(flags.scale, 2000);
    flags.num_objects = std::min<uint32_t>(flags.num_objects, 500);
    flags.num_queries = std::max<uint32_t>(flags.num_queries, 48);
  }
  std::vector<uint32_t> batches;
  for (const auto& s :
       bench::SplitCsv(args.GetString("batches", smoke ? "4" : "2,4,8,16"))) {
    batches.push_back(static_cast<uint32_t>(std::stoul(s)));
  }
  std::vector<uint32_t> devices;
  for (const auto& s :
       bench::SplitCsv(args.GetString("devices", "1,2,4"))) {
    devices.push_back(static_cast<uint32_t>(std::stoul(s)));
  }
  const std::string dataset = args.GetString("dataset", smoke ? "NY" : "FLA");
  bench::RunBatchSharing(dataset, batches, flags);
  if (!bench::RunDeviceScaling(dataset, devices, flags, smoke)) return 1;
  return 0;
}
