// Batched query processing (paper §VII-C2: "our system can process
// multiple queries in parallel" — the mechanism behind G-Grid beating
// G-Grid (L)). Compares issuing n simultaneous queries one-by-one against
// QueryKnnBatch, which cleans the union of their candidate regions in one
// device pass.
//
// Usage: bench_batch_queries [--dataset=FLA] [--batches=2,4,8,16]
//                            [--scale=N] [--objects=N] [--k=K]

#include <cstdio>
#include <vector>

#include "baselines/ggrid_adapter.h"
#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "workload/moving_objects.h"
#include "workload/queries.h"

namespace gknn::bench {
namespace {

void Run(const std::string& dataset, const std::vector<uint32_t>& batches,
         const CommonFlags& flags) {
  auto graph = LoadDataset(dataset, flags.scale, flags.seed,
                           flags.dimacs_dir);
  GKNN_CHECK(graph.ok()) << graph.status().ToString();
  util::ThreadPool pool;

  std::printf("Batched queries on %s (k=%u, |O|=%u): device time per "
              "query, one-by-one vs QueryKnnBatch\n\n",
              dataset.c_str(), flags.k, flags.num_objects);
  TablePrinter table({"Batch size", "Serial device/query",
                      "Batched device/query", "Speedup"});
  for (uint32_t batch : batches) {
    // Two identical indexes fed the same fleet.
    gpusim::Device serial_device(ScaledDeviceConfig(flags.scale));
    gpusim::Device batch_device(ScaledDeviceConfig(flags.scale));
    auto serial_index = core::GGridIndex::Build(
        &*graph, core::GGridOptions{}, &serial_device, &pool);
    auto batch_index = core::GGridIndex::Build(
        &*graph, core::GGridOptions{}, &batch_device, &pool);
    GKNN_CHECK(serial_index.ok());
    GKNN_CHECK(batch_index.ok());
    workload::MovingObjectSimulator sim(
        &*graph, {.num_objects = flags.num_objects, .seed = flags.seed});
    std::vector<workload::LocationUpdate> updates;
    sim.AdvanceTo(2.0, &updates);
    for (const auto& u : updates) {
      (*serial_index)->Ingest(u.object_id, u.position, u.time);
      (*batch_index)->Ingest(u.object_id, u.position, u.time);
    }
    const auto queries = workload::GenerateQueries(
        *graph, {.num_queries = batch, .k = flags.k, .seed = flags.seed + 3});
    std::vector<roadnet::EdgePoint> locations;
    for (const auto& q : queries) locations.push_back(q.location);

    const double serial_before = serial_device.ClockSeconds();
    for (const auto& loc : locations) {
      auto r = (*serial_index)->QueryKnn(loc, flags.k, 2.0);
      GKNN_CHECK(r.ok());
    }
    const double serial_per_query =
        (serial_device.ClockSeconds() - serial_before) / batch;

    const double batch_before = batch_device.ClockSeconds();
    auto rb = (*batch_index)->QueryKnnBatch(locations, flags.k, 2.0);
    GKNN_CHECK(rb.ok());
    const double batch_per_query =
        (batch_device.ClockSeconds() - batch_before) / batch;

    table.AddRow({std::to_string(batch), FormatSeconds(serial_per_query),
                  FormatSeconds(batch_per_query),
                  FormatDouble(serial_per_query / batch_per_query, 2) + "x"});
  }
  table.Print();
}

}  // namespace
}  // namespace gknn::bench

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  const auto flags = bench::CommonFlags::Parse(args);
  std::vector<uint32_t> batches;
  for (const auto& s :
       bench::SplitCsv(args.GetString("batches", "2,4,8,16"))) {
    batches.push_back(static_cast<uint32_t>(std::stoul(s)));
  }
  bench::Run(args.GetString("dataset", "FLA"), batches, flags);
  return 0;
}
