// Batched query processing (paper §VII-C2: "our system can process
// multiple queries in parallel" — the mechanism behind G-Grid beating
// G-Grid (L)). Two experiments:
//
//  1. Device-pass sharing: issuing n simultaneous queries one-by-one vs
//     GGridIndex::QueryKnnBatch, which cleans the union of their candidate
//     regions in one device pass.
//  2. Thread scaling: QueryServer::QueryKnnBatch fanned over the server's
//     query pool at 1/2/4/8 threads. Reports wall-clock queries/sec and a
//     *modeled multi-stream* queries/sec: per-query modeled cost (device
//     clock + host thread-CPU time) measured serially, then LPT-packed onto T
//     streams — the throughput T independent GPU streams would sustain,
//     which is the metric that scales on a host with fewer cores than
//     streams (docs/CONCURRENCY.md).
//
// Usage: bench_batch_queries [--dataset=FLA] [--batches=2,4,8,16]
//                            [--threads=1,2,4,8] [--scale=N]
//                            [--objects=N] [--k=K] [--smoke]
//
// --smoke runs a small scenario and exits non-zero unless the modeled
// 8-stream throughput is at least 4x the 1-stream throughput (the CI
// regression gate for the concurrency layer).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "baselines/ggrid_adapter.h"
#include "common/args.h"
#include "common/scenario.h"
#include "common/table.h"
#include "server/query_server.h"
#include "util/logging.h"
#include "util/timer.h"
#include "workload/moving_objects.h"
#include "workload/queries.h"

namespace gknn::bench {
namespace {

void RunBatchSharing(const std::string& dataset,
                     const std::vector<uint32_t>& batches,
                     const CommonFlags& flags) {
  auto graph = LoadDataset(dataset, flags.scale, flags.seed,
                           flags.dimacs_dir);
  GKNN_CHECK(graph.ok()) << graph.status().ToString();

  std::printf("Batched queries on %s (k=%u, |O|=%u): device time per "
              "query, one-by-one vs QueryKnnBatch\n\n",
              dataset.c_str(), flags.k, flags.num_objects);
  TablePrinter table({"Batch size", "Serial device/query",
                      "Batched device/query", "Speedup"});
  for (uint32_t batch : batches) {
    // Two identical indexes fed the same fleet.
    gpusim::Device serial_device(ScaledDeviceConfig(flags.scale));
    gpusim::Device batch_device(ScaledDeviceConfig(flags.scale));
    auto serial_index = core::GGridIndex::Build(
        &*graph, core::GGridOptions{}, &serial_device);
    auto batch_index = core::GGridIndex::Build(
        &*graph, core::GGridOptions{}, &batch_device);
    GKNN_CHECK(serial_index.ok());
    GKNN_CHECK(batch_index.ok());
    workload::MovingObjectSimulator sim(
        &*graph, {.num_objects = flags.num_objects, .seed = flags.seed});
    std::vector<workload::LocationUpdate> updates;
    sim.AdvanceTo(2.0, &updates);
    for (const auto& u : updates) {
      GKNN_CHECK(
          (*serial_index)->Ingest(u.object_id, u.position, u.time).ok());
      GKNN_CHECK(
          (*batch_index)->Ingest(u.object_id, u.position, u.time).ok());
    }
    const auto queries = workload::GenerateQueries(
        *graph, {.num_queries = batch, .k = flags.k, .seed = flags.seed + 3});
    std::vector<roadnet::EdgePoint> locations;
    for (const auto& q : queries) locations.push_back(q.location);

    const double serial_before = serial_device.ClockSeconds();
    for (const auto& loc : locations) {
      auto r = (*serial_index)->QueryKnn(loc, flags.k, 2.0);
      GKNN_CHECK(r.ok());
    }
    const double serial_per_query =
        (serial_device.ClockSeconds() - serial_before) / batch;

    const double batch_before = batch_device.ClockSeconds();
    auto rb = (*batch_index)->QueryKnnBatch(locations, flags.k, 2.0);
    GKNN_CHECK(rb.ok());
    const double batch_per_query =
        (batch_device.ClockSeconds() - batch_before) / batch;

    table.AddRow({std::to_string(batch), FormatSeconds(serial_per_query),
                  FormatSeconds(batch_per_query),
                  FormatDouble(serial_per_query / batch_per_query, 2) + "x"});
  }
  table.Print();
}

/// Longest-processing-time packing of per-query modeled costs onto
/// `streams` bins; returns the makespan (the busiest stream's total). With
/// one stream this is simply the serial total.
double MultiStreamMakespan(std::vector<double> costs, uint32_t streams) {
  std::sort(costs.begin(), costs.end(), std::greater<double>());
  std::vector<double> bins(std::max<uint32_t>(streams, 1), 0.0);
  for (double c : costs) {
    *std::min_element(bins.begin(), bins.end()) += c;
  }
  return *std::max_element(bins.begin(), bins.end());
}

/// Thread-scaling experiment. Returns false when the smoke gate fails.
bool RunThreadScaling(const std::string& dataset,
                      const std::vector<uint32_t>& thread_counts,
                      const CommonFlags& flags, bool smoke) {
  auto graph = LoadDataset(dataset, flags.scale, flags.seed,
                           flags.dimacs_dir);
  GKNN_CHECK(graph.ok()) << graph.status().ToString();
  const uint32_t num_queries = std::max<uint32_t>(flags.num_queries, 32);
  const auto queries = workload::GenerateQueries(
      *graph,
      {.num_queries = num_queries, .k = flags.k, .seed = flags.seed + 5});
  workload::MovingObjectSimulator sim(
      &*graph, {.num_objects = flags.num_objects, .seed = flags.seed});
  std::vector<workload::LocationUpdate> updates;
  sim.AdvanceTo(2.0, &updates);

  // Per-query modeled cost, measured serially on one server: the device
  // modeled-clock delta the query consumed plus its host CPU time. Host
  // time is read from the measuring thread's CPU clock, not the wall
  // clock, so other processes (or other tests under `ctest -j`) stealing
  // the core inflate neither the costs nor the smoke gate built on them.
  // The inbox drain is paid by an untimed warmup query — it is one-off
  // shared work, and folding it into a single query's cost would dominate
  // the stream packing below. Each query's own first-touch cell cleaning
  // stays in its cost: that work really belongs to that query.
  std::vector<double> costs;
  {
    gpusim::Device device(ScaledDeviceConfig(flags.scale));
    auto server =
        server::QueryServer::Create(&*graph, core::GGridOptions{}, &device);
    GKNN_CHECK(server.ok());
    for (const auto& u : updates) {
      (*server)->Report(u.object_id, u.position, u.time);
    }
    GKNN_CHECK((*server)->QueryKnn(queries[0].location, flags.k, 2.0).ok());
    for (const auto& q : queries) {
      const double device_before = device.ClockSeconds();
      util::ThreadCpuTimer timer;
      auto r = (*server)->QueryKnn(q.location, flags.k, 2.0);
      GKNN_CHECK(r.ok()) << r.status().ToString();
      costs.push_back((device.ClockSeconds() - device_before) +
                      timer.ElapsedSeconds());
    }
  }

  std::printf("\nThread scaling on %s (k=%u, |O|=%u, %u queries): "
              "QueryServer::QueryKnnBatch over the server's query pool\n\n",
              dataset.c_str(), flags.k, flags.num_objects, num_queries);
  TablePrinter table({"Threads", "Wall q/s", "Modeled multi-stream q/s",
                      "Modeled speedup"});
  const double serial_makespan = MultiStreamMakespan(costs, 1);
  double modeled_qps_1 = 0;
  double modeled_qps_last = 0;
  for (uint32_t threads : thread_counts) {
    // A fresh server per row so caches and the device clock start equal.
    gpusim::Device device(ScaledDeviceConfig(flags.scale));
    server::ServerOptions server_options;
    server_options.query_threads = threads;
    auto server = server::QueryServer::Create(
        &*graph, core::GGridOptions{}, &device, server_options);
    GKNN_CHECK(server.ok());
    for (const auto& u : updates) {
      (*server)->Report(u.object_id, u.position, u.time);
    }
    std::vector<roadnet::EdgePoint> locations;
    for (const auto& q : queries) locations.push_back(q.location);
    // Pay the drain + first cleaning outside the timed window.
    GKNN_CHECK((*server)->QueryKnn(locations[0], flags.k, 2.0).ok());

    util::Timer timer;
    auto rb = (*server)->QueryKnnBatch(locations, flags.k, 2.0);
    GKNN_CHECK(rb.ok()) << rb.status().ToString();
    const double wall_qps = num_queries / timer.ElapsedSeconds();

    const double makespan = MultiStreamMakespan(costs, threads);
    const double modeled_qps = num_queries / makespan;
    if (threads == 1) modeled_qps_1 = modeled_qps;
    modeled_qps_last = modeled_qps;
    table.AddRow({std::to_string(threads), FormatDouble(wall_qps, 0),
                  FormatDouble(modeled_qps, 0),
                  FormatDouble(serial_makespan / makespan, 2) + "x"});
  }
  table.Print();

  if (!smoke) return true;
  if (modeled_qps_1 <= 0) {
    std::printf("SMOKE FAIL: no 1-thread row measured\n");
    return false;
  }
  const double scaling = modeled_qps_last / modeled_qps_1;
  const bool pass = scaling >= 4.0;
  std::printf("smoke: modeled %u-stream throughput is %.2fx the 1-stream "
              "throughput (gate: >= 4x) -- %s\n",
              thread_counts.back(), scaling, pass ? "PASS" : "FAIL");
  return pass;
}

}  // namespace
}  // namespace gknn::bench

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)
  bench::Args args(argc, argv);
  if (!args.ok()) {
    std::fprintf(stderr, "%s\n", args.error().c_str());
    return 1;
  }
  auto flags = bench::CommonFlags::Parse(args);
  const bool smoke = args.GetBool("smoke", false);
  if (smoke) {
    // Small deterministic scenario for the ctest/CI gate.
    flags.scale = std::max<uint32_t>(flags.scale, 2000);
    flags.num_objects = std::min<uint32_t>(flags.num_objects, 500);
    flags.num_queries = std::max<uint32_t>(flags.num_queries, 48);
  }
  std::vector<uint32_t> batches;
  for (const auto& s :
       bench::SplitCsv(args.GetString("batches", smoke ? "4" : "2,4,8,16"))) {
    batches.push_back(static_cast<uint32_t>(std::stoul(s)));
  }
  std::vector<uint32_t> threads;
  for (const auto& s :
       bench::SplitCsv(args.GetString("threads", "1,2,4,8"))) {
    threads.push_back(static_cast<uint32_t>(std::stoul(s)));
  }
  const std::string dataset = args.GetString("dataset", smoke ? "NY" : "FLA");
  bench::RunBatchSharing(dataset, batches, flags);
  if (!bench::RunThreadScaling(dataset, threads, flags, smoke)) return 1;
  return 0;
}
