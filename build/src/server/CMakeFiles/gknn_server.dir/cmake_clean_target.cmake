file(REMOVE_RECURSE
  "libgknn_server.a"
)
