# Empty compiler generated dependencies file for gknn_server.
# This may be replaced when dependencies are built.
