file(REMOVE_RECURSE
  "CMakeFiles/gknn_server.dir/query_server.cc.o"
  "CMakeFiles/gknn_server.dir/query_server.cc.o.d"
  "libgknn_server.a"
  "libgknn_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gknn_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
