file(REMOVE_RECURSE
  "CMakeFiles/gknn_core.dir/cost_model.cc.o"
  "CMakeFiles/gknn_core.dir/cost_model.cc.o.d"
  "CMakeFiles/gknn_core.dir/ggrid_index.cc.o"
  "CMakeFiles/gknn_core.dir/ggrid_index.cc.o.d"
  "CMakeFiles/gknn_core.dir/graph_grid.cc.o"
  "CMakeFiles/gknn_core.dir/graph_grid.cc.o.d"
  "CMakeFiles/gknn_core.dir/grid_io.cc.o"
  "CMakeFiles/gknn_core.dir/grid_io.cc.o.d"
  "CMakeFiles/gknn_core.dir/knn_engine.cc.o"
  "CMakeFiles/gknn_core.dir/knn_engine.cc.o.d"
  "CMakeFiles/gknn_core.dir/message_cleaner.cc.o"
  "CMakeFiles/gknn_core.dir/message_cleaner.cc.o.d"
  "CMakeFiles/gknn_core.dir/mu.cc.o"
  "CMakeFiles/gknn_core.dir/mu.cc.o.d"
  "libgknn_core.a"
  "libgknn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gknn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
