
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/gknn_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/gknn_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/ggrid_index.cc" "src/core/CMakeFiles/gknn_core.dir/ggrid_index.cc.o" "gcc" "src/core/CMakeFiles/gknn_core.dir/ggrid_index.cc.o.d"
  "/root/repo/src/core/graph_grid.cc" "src/core/CMakeFiles/gknn_core.dir/graph_grid.cc.o" "gcc" "src/core/CMakeFiles/gknn_core.dir/graph_grid.cc.o.d"
  "/root/repo/src/core/grid_io.cc" "src/core/CMakeFiles/gknn_core.dir/grid_io.cc.o" "gcc" "src/core/CMakeFiles/gknn_core.dir/grid_io.cc.o.d"
  "/root/repo/src/core/knn_engine.cc" "src/core/CMakeFiles/gknn_core.dir/knn_engine.cc.o" "gcc" "src/core/CMakeFiles/gknn_core.dir/knn_engine.cc.o.d"
  "/root/repo/src/core/message_cleaner.cc" "src/core/CMakeFiles/gknn_core.dir/message_cleaner.cc.o" "gcc" "src/core/CMakeFiles/gknn_core.dir/message_cleaner.cc.o.d"
  "/root/repo/src/core/mu.cc" "src/core/CMakeFiles/gknn_core.dir/mu.cc.o" "gcc" "src/core/CMakeFiles/gknn_core.dir/mu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roadnet/CMakeFiles/gknn_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gknn_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gknn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
