# Empty compiler generated dependencies file for gknn_core.
# This may be replaced when dependencies are built.
