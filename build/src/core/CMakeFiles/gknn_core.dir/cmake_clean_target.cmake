file(REMOVE_RECURSE
  "libgknn_core.a"
)
