file(REMOVE_RECURSE
  "libgknn_util.a"
)
