# Empty dependencies file for gknn_util.
# This may be replaced when dependencies are built.
