file(REMOVE_RECURSE
  "CMakeFiles/gknn_util.dir/logging.cc.o"
  "CMakeFiles/gknn_util.dir/logging.cc.o.d"
  "CMakeFiles/gknn_util.dir/morton.cc.o"
  "CMakeFiles/gknn_util.dir/morton.cc.o.d"
  "CMakeFiles/gknn_util.dir/status.cc.o"
  "CMakeFiles/gknn_util.dir/status.cc.o.d"
  "CMakeFiles/gknn_util.dir/thread_pool.cc.o"
  "CMakeFiles/gknn_util.dir/thread_pool.cc.o.d"
  "libgknn_util.a"
  "libgknn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gknn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
