file(REMOVE_RECURSE
  "libgknn_gpusim.a"
)
