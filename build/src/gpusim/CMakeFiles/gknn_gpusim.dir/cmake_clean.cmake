file(REMOVE_RECURSE
  "CMakeFiles/gknn_gpusim.dir/scan.cc.o"
  "CMakeFiles/gknn_gpusim.dir/scan.cc.o.d"
  "libgknn_gpusim.a"
  "libgknn_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gknn_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
