# Empty dependencies file for gknn_gpusim.
# This may be replaced when dependencies are built.
