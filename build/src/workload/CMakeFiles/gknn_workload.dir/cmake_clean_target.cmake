file(REMOVE_RECURSE
  "libgknn_workload.a"
)
