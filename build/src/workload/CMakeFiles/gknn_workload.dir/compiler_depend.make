# Empty compiler generated dependencies file for gknn_workload.
# This may be replaced when dependencies are built.
