
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/datasets.cc" "src/workload/CMakeFiles/gknn_workload.dir/datasets.cc.o" "gcc" "src/workload/CMakeFiles/gknn_workload.dir/datasets.cc.o.d"
  "/root/repo/src/workload/moving_objects.cc" "src/workload/CMakeFiles/gknn_workload.dir/moving_objects.cc.o" "gcc" "src/workload/CMakeFiles/gknn_workload.dir/moving_objects.cc.o.d"
  "/root/repo/src/workload/queries.cc" "src/workload/CMakeFiles/gknn_workload.dir/queries.cc.o" "gcc" "src/workload/CMakeFiles/gknn_workload.dir/queries.cc.o.d"
  "/root/repo/src/workload/synthetic_network.cc" "src/workload/CMakeFiles/gknn_workload.dir/synthetic_network.cc.o" "gcc" "src/workload/CMakeFiles/gknn_workload.dir/synthetic_network.cc.o.d"
  "/root/repo/src/workload/trace.cc" "src/workload/CMakeFiles/gknn_workload.dir/trace.cc.o" "gcc" "src/workload/CMakeFiles/gknn_workload.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roadnet/CMakeFiles/gknn_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gknn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
