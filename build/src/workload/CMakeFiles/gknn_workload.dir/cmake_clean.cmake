file(REMOVE_RECURSE
  "CMakeFiles/gknn_workload.dir/datasets.cc.o"
  "CMakeFiles/gknn_workload.dir/datasets.cc.o.d"
  "CMakeFiles/gknn_workload.dir/moving_objects.cc.o"
  "CMakeFiles/gknn_workload.dir/moving_objects.cc.o.d"
  "CMakeFiles/gknn_workload.dir/queries.cc.o"
  "CMakeFiles/gknn_workload.dir/queries.cc.o.d"
  "CMakeFiles/gknn_workload.dir/synthetic_network.cc.o"
  "CMakeFiles/gknn_workload.dir/synthetic_network.cc.o.d"
  "CMakeFiles/gknn_workload.dir/trace.cc.o"
  "CMakeFiles/gknn_workload.dir/trace.cc.o.d"
  "libgknn_workload.a"
  "libgknn_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gknn_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
