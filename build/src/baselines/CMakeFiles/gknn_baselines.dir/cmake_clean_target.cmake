file(REMOVE_RECURSE
  "libgknn_baselines.a"
)
