
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/brute_force.cc" "src/baselines/CMakeFiles/gknn_baselines.dir/brute_force.cc.o" "gcc" "src/baselines/CMakeFiles/gknn_baselines.dir/brute_force.cc.o.d"
  "/root/repo/src/baselines/cpu_grid.cc" "src/baselines/CMakeFiles/gknn_baselines.dir/cpu_grid.cc.o" "gcc" "src/baselines/CMakeFiles/gknn_baselines.dir/cpu_grid.cc.o.d"
  "/root/repo/src/baselines/ggrid_adapter.cc" "src/baselines/CMakeFiles/gknn_baselines.dir/ggrid_adapter.cc.o" "gcc" "src/baselines/CMakeFiles/gknn_baselines.dir/ggrid_adapter.cc.o.d"
  "/root/repo/src/baselines/road.cc" "src/baselines/CMakeFiles/gknn_baselines.dir/road.cc.o" "gcc" "src/baselines/CMakeFiles/gknn_baselines.dir/road.cc.o.d"
  "/root/repo/src/baselines/vtree.cc" "src/baselines/CMakeFiles/gknn_baselines.dir/vtree.cc.o" "gcc" "src/baselines/CMakeFiles/gknn_baselines.dir/vtree.cc.o.d"
  "/root/repo/src/baselines/vtree_gpu.cc" "src/baselines/CMakeFiles/gknn_baselines.dir/vtree_gpu.cc.o" "gcc" "src/baselines/CMakeFiles/gknn_baselines.dir/vtree_gpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roadnet/CMakeFiles/gknn_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gknn_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gknn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gknn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
