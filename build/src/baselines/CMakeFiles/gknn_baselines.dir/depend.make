# Empty dependencies file for gknn_baselines.
# This may be replaced when dependencies are built.
