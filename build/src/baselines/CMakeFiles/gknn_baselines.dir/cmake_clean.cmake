file(REMOVE_RECURSE
  "CMakeFiles/gknn_baselines.dir/brute_force.cc.o"
  "CMakeFiles/gknn_baselines.dir/brute_force.cc.o.d"
  "CMakeFiles/gknn_baselines.dir/cpu_grid.cc.o"
  "CMakeFiles/gknn_baselines.dir/cpu_grid.cc.o.d"
  "CMakeFiles/gknn_baselines.dir/ggrid_adapter.cc.o"
  "CMakeFiles/gknn_baselines.dir/ggrid_adapter.cc.o.d"
  "CMakeFiles/gknn_baselines.dir/road.cc.o"
  "CMakeFiles/gknn_baselines.dir/road.cc.o.d"
  "CMakeFiles/gknn_baselines.dir/vtree.cc.o"
  "CMakeFiles/gknn_baselines.dir/vtree.cc.o.d"
  "CMakeFiles/gknn_baselines.dir/vtree_gpu.cc.o"
  "CMakeFiles/gknn_baselines.dir/vtree_gpu.cc.o.d"
  "libgknn_baselines.a"
  "libgknn_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gknn_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
