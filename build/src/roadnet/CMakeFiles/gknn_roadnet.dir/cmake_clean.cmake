file(REMOVE_RECURSE
  "CMakeFiles/gknn_roadnet.dir/border_hierarchy.cc.o"
  "CMakeFiles/gknn_roadnet.dir/border_hierarchy.cc.o.d"
  "CMakeFiles/gknn_roadnet.dir/dijkstra.cc.o"
  "CMakeFiles/gknn_roadnet.dir/dijkstra.cc.o.d"
  "CMakeFiles/gknn_roadnet.dir/dimacs.cc.o"
  "CMakeFiles/gknn_roadnet.dir/dimacs.cc.o.d"
  "CMakeFiles/gknn_roadnet.dir/graph.cc.o"
  "CMakeFiles/gknn_roadnet.dir/graph.cc.o.d"
  "CMakeFiles/gknn_roadnet.dir/partitioner.cc.o"
  "CMakeFiles/gknn_roadnet.dir/partitioner.cc.o.d"
  "libgknn_roadnet.a"
  "libgknn_roadnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gknn_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
