
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roadnet/border_hierarchy.cc" "src/roadnet/CMakeFiles/gknn_roadnet.dir/border_hierarchy.cc.o" "gcc" "src/roadnet/CMakeFiles/gknn_roadnet.dir/border_hierarchy.cc.o.d"
  "/root/repo/src/roadnet/dijkstra.cc" "src/roadnet/CMakeFiles/gknn_roadnet.dir/dijkstra.cc.o" "gcc" "src/roadnet/CMakeFiles/gknn_roadnet.dir/dijkstra.cc.o.d"
  "/root/repo/src/roadnet/dimacs.cc" "src/roadnet/CMakeFiles/gknn_roadnet.dir/dimacs.cc.o" "gcc" "src/roadnet/CMakeFiles/gknn_roadnet.dir/dimacs.cc.o.d"
  "/root/repo/src/roadnet/graph.cc" "src/roadnet/CMakeFiles/gknn_roadnet.dir/graph.cc.o" "gcc" "src/roadnet/CMakeFiles/gknn_roadnet.dir/graph.cc.o.d"
  "/root/repo/src/roadnet/partitioner.cc" "src/roadnet/CMakeFiles/gknn_roadnet.dir/partitioner.cc.o" "gcc" "src/roadnet/CMakeFiles/gknn_roadnet.dir/partitioner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gknn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
