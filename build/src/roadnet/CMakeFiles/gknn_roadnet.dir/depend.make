# Empty dependencies file for gknn_roadnet.
# This may be replaced when dependencies are built.
