file(REMOVE_RECURSE
  "libgknn_roadnet.a"
)
