# Empty dependencies file for geofence.
# This may be replaced when dependencies are built.
