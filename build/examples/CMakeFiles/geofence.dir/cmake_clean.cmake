file(REMOVE_RECURSE
  "CMakeFiles/geofence.dir/geofence.cpp.o"
  "CMakeFiles/geofence.dir/geofence.cpp.o.d"
  "geofence"
  "geofence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geofence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
