
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/city_comparison.cpp" "examples/CMakeFiles/city_comparison.dir/city_comparison.cpp.o" "gcc" "examples/CMakeFiles/city_comparison.dir/city_comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baselines/CMakeFiles/gknn_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/server/CMakeFiles/gknn_server.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gknn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/gknn_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/roadnet/CMakeFiles/gknn_roadnet.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/gknn_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gknn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
