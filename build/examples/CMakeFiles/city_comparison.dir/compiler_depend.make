# Empty compiler generated dependencies file for city_comparison.
# This may be replaced when dependencies are built.
