file(REMOVE_RECURSE
  "CMakeFiles/city_comparison.dir/city_comparison.cpp.o"
  "CMakeFiles/city_comparison.dir/city_comparison.cpp.o.d"
  "city_comparison"
  "city_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/city_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
