# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ride_hailing "/root/repo/build/examples/ride_hailing")
set_tests_properties(example_ride_hailing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_update_storm "/root/repo/build/examples/update_storm")
set_tests_properties(example_update_storm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_geofence "/root/repo/build/examples/geofence")
set_tests_properties(example_geofence PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
