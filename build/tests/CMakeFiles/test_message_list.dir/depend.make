# Empty dependencies file for test_message_list.
# This may be replaced when dependencies are built.
