file(REMOVE_RECURSE
  "CMakeFiles/test_message_list.dir/test_message_list.cc.o"
  "CMakeFiles/test_message_list.dir/test_message_list.cc.o.d"
  "test_message_list"
  "test_message_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_message_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
