file(REMOVE_RECURSE
  "CMakeFiles/test_index_maintenance.dir/test_index_maintenance.cc.o"
  "CMakeFiles/test_index_maintenance.dir/test_index_maintenance.cc.o.d"
  "test_index_maintenance"
  "test_index_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
