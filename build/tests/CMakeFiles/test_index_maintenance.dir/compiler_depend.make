# Empty compiler generated dependencies file for test_index_maintenance.
# This may be replaced when dependencies are built.
