file(REMOVE_RECURSE
  "CMakeFiles/test_graph_grid.dir/test_graph_grid.cc.o"
  "CMakeFiles/test_graph_grid.dir/test_graph_grid.cc.o.d"
  "test_graph_grid"
  "test_graph_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
