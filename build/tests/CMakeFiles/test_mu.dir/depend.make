# Empty dependencies file for test_mu.
# This may be replaced when dependencies are built.
