file(REMOVE_RECURSE
  "CMakeFiles/test_mu.dir/test_mu.cc.o"
  "CMakeFiles/test_mu.dir/test_mu.cc.o.d"
  "test_mu"
  "test_mu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
