file(REMOVE_RECURSE
  "CMakeFiles/test_message_cleaner.dir/test_message_cleaner.cc.o"
  "CMakeFiles/test_message_cleaner.dir/test_message_cleaner.cc.o.d"
  "test_message_cleaner"
  "test_message_cleaner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_message_cleaner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
