# Empty compiler generated dependencies file for test_message_cleaner.
# This may be replaced when dependencies are built.
