# Empty dependencies file for test_range_query.
# This may be replaced when dependencies are built.
