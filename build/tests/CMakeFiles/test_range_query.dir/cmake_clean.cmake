file(REMOVE_RECURSE
  "CMakeFiles/test_range_query.dir/test_range_query.cc.o"
  "CMakeFiles/test_range_query.dir/test_range_query.cc.o.d"
  "test_range_query"
  "test_range_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_range_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
