# Empty dependencies file for test_min_heap.
# This may be replaced when dependencies are built.
