file(REMOVE_RECURSE
  "CMakeFiles/test_min_heap.dir/test_min_heap.cc.o"
  "CMakeFiles/test_min_heap.dir/test_min_heap.cc.o.d"
  "test_min_heap"
  "test_min_heap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_min_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
