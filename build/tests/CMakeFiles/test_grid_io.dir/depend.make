# Empty dependencies file for test_grid_io.
# This may be replaced when dependencies are built.
