file(REMOVE_RECURSE
  "CMakeFiles/test_grid_io.dir/test_grid_io.cc.o"
  "CMakeFiles/test_grid_io.dir/test_grid_io.cc.o.d"
  "test_grid_io"
  "test_grid_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
