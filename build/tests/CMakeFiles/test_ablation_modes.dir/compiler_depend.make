# Empty compiler generated dependencies file for test_ablation_modes.
# This may be replaced when dependencies are built.
