file(REMOVE_RECURSE
  "CMakeFiles/test_ablation_modes.dir/test_ablation_modes.cc.o"
  "CMakeFiles/test_ablation_modes.dir/test_ablation_modes.cc.o.d"
  "test_ablation_modes"
  "test_ablation_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ablation_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
