file(REMOVE_RECURSE
  "CMakeFiles/test_border_hierarchy.dir/test_border_hierarchy.cc.o"
  "CMakeFiles/test_border_hierarchy.dir/test_border_hierarchy.cc.o.d"
  "test_border_hierarchy"
  "test_border_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_border_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
