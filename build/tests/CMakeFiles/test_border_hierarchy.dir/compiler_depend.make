# Empty compiler generated dependencies file for test_border_hierarchy.
# This may be replaced when dependencies are built.
