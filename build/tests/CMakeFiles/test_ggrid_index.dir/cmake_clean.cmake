file(REMOVE_RECURSE
  "CMakeFiles/test_ggrid_index.dir/test_ggrid_index.cc.o"
  "CMakeFiles/test_ggrid_index.dir/test_ggrid_index.cc.o.d"
  "test_ggrid_index"
  "test_ggrid_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ggrid_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
