# Empty dependencies file for test_ggrid_index.
# This may be replaced when dependencies are built.
