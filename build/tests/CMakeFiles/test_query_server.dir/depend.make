# Empty dependencies file for test_query_server.
# This may be replaced when dependencies are built.
