file(REMOVE_RECURSE
  "CMakeFiles/test_query_server.dir/test_query_server.cc.o"
  "CMakeFiles/test_query_server.dir/test_query_server.cc.o.d"
  "test_query_server"
  "test_query_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
