file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_internals.dir/test_baseline_internals.cc.o"
  "CMakeFiles/test_baseline_internals.dir/test_baseline_internals.cc.o.d"
  "test_baseline_internals"
  "test_baseline_internals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
