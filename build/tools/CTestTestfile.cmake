# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_record_replay "sh" "-c" "printf 'record /tmp/gknn_ci_trace.txt 50 1 5 4\\nreplay /tmp/gknn_ci_trace.txt\\nstats\\nquit\\n' | /root/repo/build/tools/gknn_cli --synthetic=400")
set_tests_properties(cli_record_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
