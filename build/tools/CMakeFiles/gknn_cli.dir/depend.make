# Empty dependencies file for gknn_cli.
# This may be replaced when dependencies are built.
