file(REMOVE_RECURSE
  "CMakeFiles/gknn_cli.dir/gknn_cli.cc.o"
  "CMakeFiles/gknn_cli.dir/gknn_cli.cc.o.d"
  "gknn_cli"
  "gknn_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gknn_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
