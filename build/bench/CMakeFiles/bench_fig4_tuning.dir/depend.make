# Empty dependencies file for bench_fig4_tuning.
# This may be replaced when dependencies are built.
