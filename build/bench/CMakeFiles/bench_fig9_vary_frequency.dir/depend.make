# Empty dependencies file for bench_fig9_vary_frequency.
# This may be replaced when dependencies are built.
