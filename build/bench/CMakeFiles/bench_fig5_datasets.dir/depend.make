# Empty dependencies file for bench_fig5_datasets.
# This may be replaced when dependencies are built.
