# Empty dependencies file for bench_batch_queries.
# This may be replaced when dependencies are built.
