file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_queries.dir/bench_batch_queries.cc.o"
  "CMakeFiles/bench_batch_queries.dir/bench_batch_queries.cc.o.d"
  "bench_batch_queries"
  "bench_batch_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
