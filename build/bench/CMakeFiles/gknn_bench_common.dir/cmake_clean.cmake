file(REMOVE_RECURSE
  "../lib/libgknn_bench_common.a"
  "../lib/libgknn_bench_common.pdb"
  "CMakeFiles/gknn_bench_common.dir/common/args.cc.o"
  "CMakeFiles/gknn_bench_common.dir/common/args.cc.o.d"
  "CMakeFiles/gknn_bench_common.dir/common/scenario.cc.o"
  "CMakeFiles/gknn_bench_common.dir/common/scenario.cc.o.d"
  "CMakeFiles/gknn_bench_common.dir/common/table.cc.o"
  "CMakeFiles/gknn_bench_common.dir/common/table.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gknn_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
