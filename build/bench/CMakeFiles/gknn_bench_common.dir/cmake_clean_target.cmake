file(REMOVE_RECURSE
  "../lib/libgknn_bench_common.a"
)
