# Empty compiler generated dependencies file for gknn_bench_common.
# This may be replaced when dependencies are built.
