# Empty compiler generated dependencies file for bench_fig8_vary_objects.
# This may be replaced when dependencies are built.
