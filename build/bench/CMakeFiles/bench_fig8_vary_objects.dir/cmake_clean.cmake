file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_vary_objects.dir/bench_fig8_vary_objects.cc.o"
  "CMakeFiles/bench_fig8_vary_objects.dir/bench_fig8_vary_objects.cc.o.d"
  "bench_fig8_vary_objects"
  "bench_fig8_vary_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_vary_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
