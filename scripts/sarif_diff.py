#!/usr/bin/env python3
"""Diff two gknn_check SARIF logs and fail on NEW findings.

The committed baseline (tools/analyzer/baseline.sarif) records the
accepted findings of the repo sweep. CI and the `gknn_check_repo` ctest
re-run the analyzer, diff against the baseline, and fail iff a finding
appears that the baseline does not contain — fixed findings never fail
the gate (they just mean the baseline can be tightened).

Two invocation modes:

  sarif_diff.py BASELINE.sarif CURRENT.sarif
      Diff two existing logs.

  sarif_diff.py --baseline BASELINE.sarif --tool PATH/gknn_check \
                [--root DIR] [--out CURRENT.sarif]
      Run the analyzer (its exit code is ignored; findings are expected),
      write its SARIF next to a temp dir (or --out), then diff.

Findings are keyed by (ruleId, file, message) with multiplicity — line
numbers are deliberately excluded so unrelated edits that shift a
baselined finding do not trip the gate. Exit codes: 0 = no new findings,
1 = new findings (each is printed), 2 = usage/IO error.
"""

import argparse
import collections
import json
import os
import subprocess
import sys
import tempfile


def load_findings(path):
    """Returns a Counter of (ruleId, file, message) and a sample map."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        sys.stderr.write("sarif_diff: cannot read %s: %s\n" % (path, exc))
        sys.exit(2)
    counts = collections.Counter()
    samples = {}
    for run in doc.get("runs", []):
        for res in run.get("results", []):
            uri = ""
            line = 0
            locs = res.get("locations", [])
            if locs:
                phys = locs[0].get("physicalLocation", {})
                uri = phys.get("artifactLocation", {}).get("uri", "")
                line = phys.get("region", {}).get("startLine", 0)
            key = (
                res.get("ruleId", ""),
                uri,
                res.get("message", {}).get("text", ""),
            )
            counts[key] += 1
            samples.setdefault(key, line)
    return counts, samples


def run_tool(tool, root, out_path):
    cmd = [tool, "--sarif=" + out_path]
    if root:
        cmd.append("--root=" + root)
    try:
        # A non-zero exit just means the sweep has findings; the diff
        # below decides whether any of them are new.
        proc = subprocess.run(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    except OSError as exc:
        sys.stderr.write("sarif_diff: cannot run %s: %s\n" % (tool, exc))
        sys.exit(2)
    sys.stderr.write(proc.stdout.decode("utf-8", "replace"))
    if not os.path.exists(out_path):
        sys.stderr.write("sarif_diff: %s produced no SARIF output\n" % tool)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(add_help=True)
    ap.add_argument("logs", nargs="*", help="BASELINE.sarif CURRENT.sarif")
    ap.add_argument("--baseline", help="baseline SARIF log")
    ap.add_argument("--tool", help="gknn_check binary to run for CURRENT")
    ap.add_argument("--root", help="--root to pass to the tool")
    ap.add_argument("--out", help="where to write the tool's SARIF log")
    args = ap.parse_args()

    tmpdir = None
    if args.tool:
        baseline = args.baseline
        if not baseline or args.logs:
            ap.error("--tool mode takes --baseline and no positional logs")
        current = args.out
        if not current:
            tmpdir = tempfile.TemporaryDirectory(prefix="gknn_sarif_")
            current = os.path.join(tmpdir.name, "current.sarif")
        run_tool(args.tool, args.root, current)
    else:
        if len(args.logs) != 2:
            ap.error("need BASELINE.sarif CURRENT.sarif (or --tool mode)")
        baseline, current = args.logs

    base_counts, _ = load_findings(baseline)
    cur_counts, cur_lines = load_findings(current)

    new = cur_counts - base_counts
    fixed = base_counts - cur_counts

    for key in sorted(fixed):
        rule, uri, _ = key
        print("fixed (baseline can be tightened): [%s] %s x%d"
              % (rule, uri, fixed[key]))

    if not new:
        print("sarif_diff: no new findings (%d current, %d baselined)"
              % (sum(cur_counts.values()), sum(base_counts.values())))
        return 0

    print("sarif_diff: %d NEW finding(s) vs %s:"
          % (sum(new.values()), baseline))
    for key in sorted(new):
        rule, uri, message = key
        print("  %s:%d: [%s] %s%s"
              % (uri, cur_lines.get(key, 0), rule, message,
                 " x%d" % new[key] if new[key] > 1 else ""))
    print("Fix the findings, suppress them with a "
          "'// gknn-check: allow(<rule>): reason' comment, or (for an "
          "accepted debt) regenerate tools/analyzer/baseline.sarif.")
    return 1


if __name__ == "__main__":
    sys.exit(main())
