#!/usr/bin/env python3
"""Assert gknn_check output is identical at --jobs=1 and --jobs=N.

The parallel front end lexes and extracts per-TU events concurrently but
must merge findings in file order, so the report (and the SARIF log) has
to be byte-identical regardless of the worker count. This is the ctest
behind that promise: run the sweep twice, diff stderr report + SARIF.
Exit 0 iff both match.
"""

import os
import subprocess
import sys
import tempfile


def run(tool, root, jobs, sarif):
    proc = subprocess.run(
        [tool, "--root=" + root, "--jobs=%d" % jobs, "--sarif=" + sarif],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    with open(sarif, "r", encoding="utf-8") as fh:
        return proc.stderr.decode("utf-8", "replace"), fh.read()


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(
            "usage: analyzer_jobs_determinism.py GKNN_CHECK ROOT\n")
        return 2
    tool, root = sys.argv[1], sys.argv[2]
    jobs = max(2, os.cpu_count() or 2)
    with tempfile.TemporaryDirectory(prefix="gknn_jobs_") as tmp:
        rep1, sarif1 = run(tool, root, 1, os.path.join(tmp, "j1.sarif"))
        repn, sarifn = run(tool, root, jobs, os.path.join(tmp, "jn.sarif"))
    if rep1 != repn:
        sys.stderr.write("report differs between --jobs=1 and --jobs=%d\n"
                         "--- jobs=1 ---\n%s--- jobs=%d ---\n%s"
                         % (jobs, rep1, jobs, repn))
        return 1
    if sarif1 != sarifn:
        sys.stderr.write(
            "SARIF differs between --jobs=1 and --jobs=%d\n" % jobs)
        return 1
    print("gknn_check deterministic across --jobs=1 and --jobs=%d" % jobs)
    return 0


if __name__ == "__main__":
    sys.exit(main())
