#!/usr/bin/env python3
"""Baseline regression gate for the committed bench_micro baselines.

Runs `bench_micro --json` filtered to the gated benchmarks, then compares
the fresh numbers against a committed baseline snapshot
(bench/baselines/BENCH_<rev>.json, schema gknn-bench/v1) and fails when a
gated metric regressed by more than the threshold:

  * BM_GGridQuery   amortized query cost (cpu seconds/query, lower better)
                    and throughput (queries/second, higher better)
  * BM_GGridIngest  amortized ingest cost (cpu seconds/update, lower
                    better) and throughput (updates/second, higher better)

Noise handling: timing on a shared runner is jittery, so the gate is
best-of-N (default two attempts). Every attempt's numbers are kept and the
most favorable value per metric is the one compared — a transient stall
must not fail the build, a real regression shows up in every attempt.

Usage:
  bench_regression_gate.py --bench=build/bench/bench_micro \
      --baseline=bench/baselines/BENCH_4c682d8.json \
      [--threshold=0.15] [--attempts=2] [--keep-json=DIR]

Exit status: 0 when every gated metric is within threshold, 1 on
regression (or when the fresh run is missing a gated metric), 2 on usage
errors.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

# (benchmark, metric, direction). Direction "lower" means the metric is a
# cost (regression = fresh exceeds baseline); "higher" means a throughput
# (regression = fresh falls short of baseline).
GATED_METRICS = [
    ("BM_GGridQuery", "gknn_bench_cpu_seconds", "lower"),
    ("BM_GGridQuery", "gknn_bench_items_per_second", "higher"),
    ("BM_GGridIngest", "gknn_bench_cpu_seconds", "lower"),
    ("BM_GGridIngest", "gknn_bench_items_per_second", "higher"),
]
BENCH_FILTER = "BM_GGridQuery|BM_GGridIngest"


def gauge_key(metric, bench):
    return '%s{name="%s"}' % (metric, bench)


def load_gauges(path):
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema")
    if schema != "gknn-bench/v1":
        raise ValueError("%s: unexpected schema %r" % (path, schema))
    return doc.get("metrics", {}).get("gauges", {})


def run_bench(bench, out_json):
    cmd = [
        bench,
        "--json=%s" % out_json,
        "--rev=gate",
        "--benchmark_filter=%s" % BENCH_FILTER,
    ]
    env = dict(os.environ)
    # The gate measures the healthy fast path; a fault schedule or the
    # shadow-memory hazard checker in the environment would gate the wrong
    # thing.
    env["GKNN_FAULTS"] = ""
    env["GKNN_HAZARD_CHECK"] = "0"
    proc = subprocess.run(cmd, env=env, stdout=subprocess.PIPE,
                          stderr=subprocess.STDOUT, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        raise RuntimeError("%s exited %d" % (" ".join(cmd), proc.returncode))
    return load_gauges(out_json)


def best(direction, values):
    return min(values) if direction == "lower" else max(values)


def is_regression(direction, fresh, base, threshold):
    if direction == "lower":
        return fresh > base * (1.0 + threshold)
    return fresh < base / (1.0 + threshold)


def format_value(metric, value):
    if metric.endswith("_seconds"):
        return "%.3f us" % (value * 1e6)
    return "%.0f /s" % value


def main():
    parser = argparse.ArgumentParser(
        description="bench_micro baseline regression gate")
    parser.add_argument("--bench", required=True,
                        help="path to the built bench_micro binary")
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_<rev>.json to compare against")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed relative regression (default 0.15)")
    parser.add_argument("--attempts", type=int, default=2,
                        help="timing attempts; best value per metric wins")
    parser.add_argument("--keep-json", default=None,
                        help="directory to keep the fresh JSON files in")
    args = parser.parse_args()
    if args.attempts < 1:
        parser.error("--attempts must be >= 1")

    try:
        baseline = load_gauges(args.baseline)
    except (OSError, ValueError) as e:
        sys.stderr.write("cannot load baseline: %s\n" % e)
        return 2

    out_dir = args.keep_json or tempfile.mkdtemp(prefix="bench_gate_")
    os.makedirs(out_dir, exist_ok=True)
    attempts = []
    for attempt in range(args.attempts):
        out_json = os.path.join(out_dir, "BENCH_gate_%d.json" % attempt)
        try:
            attempts.append(run_bench(args.bench, out_json))
        except (RuntimeError, OSError, ValueError) as e:
            sys.stderr.write("attempt %d failed: %s\n" % (attempt, e))
            return 2

    baseline_rev = re.sub(r"^BENCH_|\.json$", "",
                          os.path.basename(args.baseline))
    print("bench regression gate: baseline %s, threshold %.0f%%, "
          "best of %d attempt(s)" %
          (baseline_rev, args.threshold * 100, len(attempts)))
    failures = 0
    for bench_name, metric, direction in GATED_METRICS:
        key = gauge_key(metric, bench_name)
        if key not in baseline:
            print("  SKIP %-14s %-28s (not in baseline)" %
                  (bench_name, metric))
            continue
        fresh_values = [a[key] for a in attempts if key in a]
        if not fresh_values:
            print("  FAIL %-14s %-28s missing from the fresh run" %
                  (bench_name, metric))
            failures += 1
            continue
        base = baseline[key]
        fresh = best(direction, fresh_values)
        delta = (fresh - base) / base if base else float("inf")
        bad = is_regression(direction, fresh, base, args.threshold)
        print("  %s %-14s %-28s base=%s fresh=%s (%+.1f%%)" %
              ("FAIL" if bad else "ok  ", bench_name, metric,
               format_value(metric, base), format_value(metric, fresh),
               delta * 100))
        failures += bad
    if failures:
        print("regression gate FAILED: %d metric(s) regressed past %.0f%%"
              % (failures, args.threshold * 100))
        return 1
    print("regression gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
