#!/usr/bin/env bash
# Runs clang-tidy over every first-party translation unit using the
# compile_commands.json of an existing build directory.
#
# Usage: scripts/run_clang_tidy.sh [clang-tidy-binary] [build-dir]
set -euo pipefail

TIDY="${1:-clang-tidy}"
BUILD_DIR="${2:-build}"

if ! command -v "${TIDY}" >/dev/null 2>&1; then
  echo "error: ${TIDY} not found (install clang-tidy or pass its path)" >&2
  exit 1
fi
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json missing;" \
       "configure with cmake first (CMAKE_EXPORT_COMPILE_COMMANDS is on)" >&2
  exit 1
fi

mapfile -t SOURCES < <(git ls-files 'src/**/*.cc' 'tests/*.cc' 'bench/*.cc' \
                                    'examples/*.cc' 'tools/*.cc')
if [[ ${#SOURCES[@]} -eq 0 ]]; then
  echo "error: no sources found (run from the repository root)" >&2
  exit 1
fi

JOBS="$(nproc 2>/dev/null || echo 4)"
echo "clang-tidy: ${#SOURCES[@]} files, ${JOBS} jobs"
printf '%s\n' "${SOURCES[@]}" |
  xargs -P "${JOBS}" -n 4 "${TIDY}" -p "${BUILD_DIR}" --quiet
echo "clang-tidy: clean"
