#!/usr/bin/env python3
"""Convert gknn benchmark output into CSV files for plotting.

The figure benchmarks print fixed-width tables with a dashed separator
line. This script slices each table on its header columns and emits one
CSV per table, converting humanized values ("1.23 ms", "4.5 KB") back to
base units (seconds, bytes).

When a benchmark is run with --metrics, its output additionally carries
one-line metrics-registry JSON dumps (schema "gknn-metrics/v1", see
docs/OBSERVABILITY.md). Those lines are turned into phase-breakdown CSVs:
one row per histogram (count/sum/p50/p95/p99) plus one row per counter
and gauge. A JSON line with an unknown schema version is a hard error —
silent misparsing of a future format would corrupt plots.

Usage:
    ./build/bench/bench_fig5_datasets | scripts/bench_to_csv.py --out-dir csv/
    scripts/bench_to_csv.py --out-dir csv/ < bench_output.txt
"""

import argparse
import json
import os
import re
import sys

KNOWN_METRICS_SCHEMAS = {"gknn-metrics/v1"}

TIME_UNITS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
SIZE_UNITS = {"B": 1, "KB": 1024, "MB": 1024**2, "GB": 1024**3}


def convert(cell: str) -> str:
    """Convert a humanized cell to a base-unit number when possible."""
    m = re.fullmatch(r"([0-9.]+) (ns|us|ms|s)", cell)
    if m:
        return repr(float(m.group(1)) * TIME_UNITS[m.group(2)])
    m = re.fullmatch(r"([0-9.]+) (B|KB|MB|GB)", cell)
    if m:
        return repr(float(m.group(1)) * SIZE_UNITS[m.group(2)])
    m = re.fullmatch(r"([0-9.]+)x", cell)
    if m:
        return m.group(1)
    return cell


def split_columns(header: str):
    """Column start offsets from a fixed-width header line."""
    starts = [0]
    i = 0
    while i < len(header) - 2:
        if header[i] == " " and header[i + 1] == " " and header[i + 2] != " ":
            starts.append(i + 2)
            i += 2
        else:
            i += 1
    return starts


def slice_row(line: str, starts):
    cells = []
    for j, s in enumerate(starts):
        e = starts[j + 1] if j + 1 < len(starts) else len(line)
        cells.append(line[s:e].strip())
    return cells


def parse_metrics_line(line: str):
    """Parses a one-line registry dump; returns None for non-metrics lines.

    Raises ValueError when the line is a metrics dump of a schema version
    this script does not understand.
    """
    stripped = line.strip()
    if not stripped.startswith('{"schema":'):
        return None
    try:
        payload = json.loads(stripped)
    except json.JSONDecodeError as e:
        raise ValueError(f"malformed metrics JSON line: {e}") from e
    schema = payload.get("schema")
    if schema not in KNOWN_METRICS_SCHEMAS:
        raise ValueError(
            f"unknown metrics schema {schema!r}; this script understands "
            f"{sorted(KNOWN_METRICS_SCHEMAS)} — update scripts/bench_to_csv.py"
        )
    return payload


def write_metrics_csv(payload: dict, path: str):
    """One CSV row per metric: histograms carry the phase breakdown."""
    with open(path, "w") as f:
        f.write("metric,kind,count,sum,p50,p95,p99,value\n")
        if not payload.get("enabled", True):
            return
        for name, data in sorted(payload.get("histograms", {}).items()):
            f.write(
                f"{name},histogram,{data['count']},{data['sum']!r},"
                f"{data['p50']!r},{data['p95']!r},{data['p99']!r},\n")
        for name, value in sorted(payload.get("counters", {}).items()):
            f.write(f"{name},counter,,,,,,{value}\n")
        for name, value in sorted(payload.get("gauges", {}).items()):
            f.write(f"{name},gauge,,,,,,{value!r}\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out-dir", default=".", help="directory for CSVs")
    parser.add_argument("--prefix", default="table", help="file name prefix")
    args = parser.parse_args()
    os.makedirs(args.out_dir, exist_ok=True)

    lines = sys.stdin.read().splitlines()
    table_index = 0
    metrics_index = 0
    written = []

    # Metrics JSON lines are extracted first (they are one-liners and would
    # otherwise confuse the fixed-width table slicer). Unknown schemas fail
    # the whole run.
    remaining = []
    for line in lines:
        try:
            payload = parse_metrics_line(line)
        except ValueError as e:
            print(f"error: {e}", file=sys.stderr)
            return 1
        if payload is None:
            remaining.append(line)
            continue
        metrics_index += 1
        path = os.path.join(
            args.out_dir, f"{args.prefix}_metrics_{metrics_index:02d}.csv")
        write_metrics_csv(payload, path)
        written.append(path)
    lines = remaining

    i = 0
    while i < len(lines) - 1:
        # A table = header line followed by a dashed separator.
        if re.fullmatch(r"-{3,}", lines[i + 1].strip()) and lines[i].strip():
            header = lines[i]
            starts = split_columns(header)
            rows = []
            j = i + 2
            while j < len(lines) and lines[j].strip():
                rows.append(slice_row(lines[j], starts))
                j += 1
            table_index += 1
            path = os.path.join(
                args.out_dir, f"{args.prefix}_{table_index:02d}.csv")
            with open(path, "w") as f:
                f.write(",".join(slice_row(header, starts)) + "\n")
                for row in rows:
                    f.write(",".join(convert(c) for c in row) + "\n")
            written.append(path)
            i = j
        else:
            i += 1

    for path in written:
        print(path)
    if not written:
        print("no tables or metrics found on stdin", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
