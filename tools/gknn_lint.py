#!/usr/bin/env python3
"""Repo-wide source lint enforcing the gknn concurrency contract.

Rules (suppress one occurrence with `// gknn-lint: allow(<rule>): reason`
on the same line or an immediately preceding comment line):

  raw-mutex        std::mutex / std::shared_mutex / std guards /
                   std::condition_variable declared in src/ outside
                   src/util/lockdep.*. Locks must be the ranked
                   util::lockdep wrappers so the runtime validator sees
                   every acquisition (docs/LOCKDEP.md).
  discarded-status A Status- or Result-returning call in statement
                   position with the value discarded. The compiler
                   enforces this too ([[nodiscard]] + -Werror), but the
                   lint also runs where warnings are off.
  device-span      DeviceBuffer<T>::device_span() outside src/gpusim/.
                   Kernel code must use the checked Load/Store/AtomicMin
                   accessors so the hazard detector attributes accesses
                   (docs/HAZARD_CHECKER.md); host code touching a span
                   must state why that is safe.
  kernel-capture   A default-capture lambda ([&] or [=]) whose parameter
                   list takes ThreadCtx&/WarpCtx&. Kernel lambdas must
                   enumerate their captures: an accidental by-reference
                   capture of a host temporary is exactly the dangling-
                   pointer bug a real CUDA kernel launch turns into UB.
  lockdep-table    The rank table in src/util/lockdep.h and the lock-
                   order table in docs/CONCURRENCY.md must list the same
                   classes with the same ranks.

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage
errors.
"""

import argparse
import os
import re
import sys

ALLOW_RE = re.compile(r"gknn-lint:\s*allow\(([a-z-]+)\)")

# Files whose raw std primitives ARE the implementation of the contract.
RAW_MUTEX_EXEMPT = ("src/util/lockdep.h", "src/util/lockdep.cc")

RAW_MUTEX_RE = re.compile(
    r"std::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock|"
    r"condition_variable)\b")

DEVICE_SPAN_RE = re.compile(r"(?:\.|->)device_span\(\)")

KERNEL_CAPTURE_RE = re.compile(r"\[[&=]\]\s*\(\s*(?:const\s+)?(?:\w+::)*(?:ThreadCtx|WarpCtx)\s*&")

# Declarations that make a name Status/Result-returning. Scanned over
# headers; the resulting name set drives the discarded-status rule.
STATUS_DECL_RE = re.compile(
    r"(?:util::)?(?:Status|Result<[^;{=]*>)\s+(\w+)\(")

# A statement-position call: a receiver chain ending in .Name(...) or
# ->Name(...), or a bare Name(...) call, forming the whole statement.
# Heuristic and line-based — the compiler catches what this misses.
CALL_STMT_RE = re.compile(
    r"^\s*(?:\(\*?\w+\)|\*?\w+)?(?:(?:\.|->)\w+)*(?:\.|->)(\w+)\(.*\);\s*$"
    r"|^\s*(\w+)\(.*\);\s*$")

# Names also declared with a non-Status return type anywhere; flagging
# them would report the wrong overload (e.g. the baselines' void Ingest
# vs GGridIndex's Status Ingest).
VOID_DECL_RE = re.compile(r"(?:void|double|bool|int|uint\d+_t|size_t)\s+(\w+)\(")

LOCKDEP_TABLE_BEGIN = "// gknn-lockdep-table-begin"
LOCKDEP_TABLE_END = "// gknn-lockdep-table-end"
LOCKDEP_CLASS_RE = re.compile(
    r"LockClass\s+\w+\{\"([a-z.]+)\",\s*(\d+)(?:,\s*(true|false))?"
    r"(?:,\s*(true|false))?\}")
# docs/CONCURRENCY.md rows: | 100 | `server.index` | ...
DOC_ROW_RE = re.compile(r"^\|\s*(\d+)\s*\|\s*`([a-z.]+)`")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def is_suppressed(lines, index, rule):
    """Allow markers count on the flagged line or the comment block above."""
    if (m := ALLOW_RE.search(lines[index])) and m.group(1) == rule:
        return True
    i = index - 1
    while i >= 0 and lines[i].lstrip().startswith("//"):
        if (m := ALLOW_RE.search(lines[i])) and m.group(1) == rule:
            return True
        i -= 1
    return False


def iter_source_files(root, subdirs, exts):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames
                           if d not in ("lint_fixtures", "build")]
            for name in sorted(filenames):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def collect_status_names(root, files):
    """Names declared ONLY with Status/Result return types."""
    names = set()
    ambiguous = set()
    for path in iter_source_files(root, ["src"], (".h",)):
        with open(path, encoding="utf-8") as f:
            for line in f:
                for m in STATUS_DECL_RE.finditer(line):
                    names.add(m.group(1))
    # A name that some scanned file also declares with another return
    # type is ambiguous: a line-based lint cannot tell the overloads
    # apart, so it only flags unambiguous names.
    for path in files:
        with open(path, encoding="utf-8") as f:
            for line in f:
                for m in VOID_DECL_RE.finditer(line):
                    ambiguous.add(m.group(1))
    names -= ambiguous
    names.discard("operator")
    return names


def check_file(path, rel, lines, status_names, findings):
    # lint_fixtures files are linted as if they lived in src/ so the
    # fixture tests exercise every rule; the repo sweep skips them.
    in_src = rel.startswith("src/") or "lint_fixtures/" in rel
    prev_code = ";"
    for i, line in enumerate(lines):
        lineno = i + 1
        code = line.split("//", 1)[0]
        # A line can only open a new statement if the previous code line
        # finished one; otherwise it is a continuation (wrapped call
        # arguments, a multi-line assignment) and must not be flagged.
        opens_statement = prev_code.rstrip().endswith((";", "{", "}", ":"))
        if code.strip():
            prev_code = code

        if in_src and rel not in RAW_MUTEX_EXEMPT:
            if RAW_MUTEX_RE.search(code) and not is_suppressed(
                    lines, i, "raw-mutex"):
                findings.append(Finding(
                    rel, lineno, "raw-mutex",
                    "raw std synchronization primitive; use the ranked "
                    "util::lockdep wrappers (docs/LOCKDEP.md)"))

        if in_src and not rel.startswith("src/gpusim/"):
            if DEVICE_SPAN_RE.search(code) and not is_suppressed(
                    lines, i, "device-span"):
                findings.append(Finding(
                    rel, lineno, "device-span",
                    "device_span() bypasses the checked accessors the "
                    "hazard detector instruments; use Load/Store/AtomicMin "
                    "or annotate why the raw span is safe"))

        if in_src:
            if KERNEL_CAPTURE_RE.search(code) and not is_suppressed(
                    lines, i, "kernel-capture"):
                findings.append(Finding(
                    rel, lineno, "kernel-capture",
                    "kernel lambda with default capture; enumerate the "
                    "captures explicitly"))

        m = CALL_STMT_RE.match(code) if opens_statement else None
        name = (m.group(1) or m.group(2)) if m else None
        if name in status_names:
            stripped = code.strip()
            # Not a discard if the value is consumed or checked somehow.
            if not stripped.startswith(("return", "co_return", "if", "while",
                                        "for", "(void)")) \
                    and "=" not in stripped.split("(", 1)[0] \
                    and not is_suppressed(lines, i, "discarded-status"):
                findings.append(Finding(
                    rel, lineno, "discarded-status",
                    f"result of Status/Result-returning call '{name}' "
                    "is discarded"))


def parse_lockdep_table(root):
    path = os.path.join(root, "src", "util", "lockdep.h")
    classes = {}
    with open(path, encoding="utf-8") as f:
        text = f.read()
    begin = text.find(LOCKDEP_TABLE_BEGIN)
    end = text.find(LOCKDEP_TABLE_END)
    if begin < 0 or end < 0:
        return None
    for m in LOCKDEP_CLASS_RE.finditer(text[begin:end]):
        classes[m.group(1)] = int(m.group(2))
    return classes


def parse_doc_table(root):
    path = os.path.join(root, "docs", "CONCURRENCY.md")
    classes = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = DOC_ROW_RE.match(line)
            if m:
                classes[m.group(2)] = int(m.group(1))
    return classes


def check_lockdep_table(root, findings):
    code_table = parse_lockdep_table(root)
    if code_table is None:
        findings.append(Finding("src/util/lockdep.h", 1, "lockdep-table",
                                "missing gknn-lockdep-table markers"))
        return
    doc_path = os.path.join(root, "docs", "CONCURRENCY.md")
    if not os.path.exists(doc_path):
        findings.append(Finding("docs/CONCURRENCY.md", 1, "lockdep-table",
                                "docs/CONCURRENCY.md not found"))
        return
    doc_table = parse_doc_table(root)
    for name, rank in sorted(code_table.items()):
        if name not in doc_table:
            findings.append(Finding(
                "docs/CONCURRENCY.md", 1, "lockdep-table",
                f"lock class `{name}` (rank {rank}) is in lockdep.h but "
                "missing from the CONCURRENCY.md lock-order table"))
        elif doc_table[name] != rank:
            findings.append(Finding(
                "docs/CONCURRENCY.md", 1, "lockdep-table",
                f"lock class `{name}` has rank {rank} in lockdep.h but "
                f"{doc_table[name]} in CONCURRENCY.md"))
    for name, rank in sorted(doc_table.items()):
        if name not in code_table:
            findings.append(Finding(
                "docs/CONCURRENCY.md", 1, "lockdep-table",
                f"lock class `{name}` (rank {rank}) is documented but not "
                "declared in src/util/lockdep.h"))


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: the lint's parent)")
    parser.add_argument("paths", nargs="*",
                        help="explicit files to lint instead of the repo "
                             "sweep (table sync is skipped)")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = []

    if args.paths:
        files = [os.path.abspath(p) for p in args.paths]
    else:
        files = list(iter_source_files(
            root, ["src", "tools", "bench", "examples", "tests"],
            (".h", ".cc", ".cpp")))
    status_names = collect_status_names(root, files)

    for path in files:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        check_file(path, rel, lines, status_names, findings)

    if not args.paths:
        check_lockdep_table(root, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"gknn_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("gknn_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
