#!/usr/bin/env python3
"""Repo-wide source lint enforcing the gknn concurrency contract.

Rules (suppress one occurrence with `// gknn-lint: allow(<rule>): reason`
on the same line or an immediately preceding comment line):

  kernel-capture   A default-capture lambda ([&] or [=]) whose parameter
                   list takes ThreadCtx&/WarpCtx&. Kernel lambdas must
                   enumerate their captures: an accidental by-reference
                   capture of a host temporary is exactly the dangling-
                   pointer bug a real CUDA kernel launch turns into UB.
  lockdep-table    The rank table in src/util/lockdep.h and the lock-
                   order table in docs/CONCURRENCY.md must list the same
                   classes with the same ranks.

The raw-mutex, discarded-status (now `status-drop`), and device-span
rules moved to the interprocedural analyzer `tools/analyzer/gknn_check`,
which resolves receivers and call graphs instead of matching lines — see
docs/STATIC_ANALYSIS.md. This lint keeps only the rules that are purely
textual (lambda capture syntax, doc/table sync).

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage
errors.
"""

import argparse
import os
import re
import sys

ALLOW_RE = re.compile(r"gknn-lint:\s*allow\(([a-z-]+)\)")

KERNEL_CAPTURE_RE = re.compile(r"\[[&=]\]\s*\(\s*(?:const\s+)?(?:\w+::)*(?:ThreadCtx|WarpCtx)\s*&")

LOCKDEP_TABLE_BEGIN = "// gknn-lockdep-table-begin"
LOCKDEP_TABLE_END = "// gknn-lockdep-table-end"
LOCKDEP_CLASS_RE = re.compile(
    r"LockClass\s+\w+\{\"([a-z.]+)\",\s*(\d+)(?:,\s*(true|false))?"
    r"(?:,\s*(true|false))?\}")
# docs/CONCURRENCY.md rows: | 100 | `server.index` | ...
DOC_ROW_RE = re.compile(r"^\|\s*(\d+)\s*\|\s*`([a-z.]+)`")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def is_suppressed(lines, index, rule):
    """Allow markers count on the flagged line or the comment block above."""
    if (m := ALLOW_RE.search(lines[index])) and m.group(1) == rule:
        return True
    i = index - 1
    while i >= 0 and lines[i].lstrip().startswith("//"):
        if (m := ALLOW_RE.search(lines[i])) and m.group(1) == rule:
            return True
        i -= 1
    return False


def iter_source_files(root, subdirs, exts):
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [d for d in dirnames
                           if d not in ("lint_fixtures", "analyzer_fixtures",
                                        "build")]
            for name in sorted(filenames):
                if name.endswith(exts):
                    yield os.path.join(dirpath, name)


def check_file(path, rel, lines, findings):
    # lint_fixtures files are linted as if they lived in src/ so the
    # fixture tests exercise every rule; the repo sweep skips them.
    in_src = rel.startswith("src/") or "lint_fixtures/" in rel
    for i, line in enumerate(lines):
        lineno = i + 1
        code = line.split("//", 1)[0]

        if in_src:
            if KERNEL_CAPTURE_RE.search(code) and not is_suppressed(
                    lines, i, "kernel-capture"):
                findings.append(Finding(
                    rel, lineno, "kernel-capture",
                    "kernel lambda with default capture; enumerate the "
                    "captures explicitly"))


def parse_lockdep_table(root):
    path = os.path.join(root, "src", "util", "lockdep.h")
    classes = {}
    with open(path, encoding="utf-8") as f:
        text = f.read()
    begin = text.find(LOCKDEP_TABLE_BEGIN)
    end = text.find(LOCKDEP_TABLE_END)
    if begin < 0 or end < 0:
        return None
    for m in LOCKDEP_CLASS_RE.finditer(text[begin:end]):
        classes[m.group(1)] = int(m.group(2))
    return classes


def parse_doc_table(root):
    path = os.path.join(root, "docs", "CONCURRENCY.md")
    classes = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = DOC_ROW_RE.match(line)
            if m:
                classes[m.group(2)] = int(m.group(1))
    return classes


def check_lockdep_table(root, findings):
    code_table = parse_lockdep_table(root)
    if code_table is None:
        findings.append(Finding("src/util/lockdep.h", 1, "lockdep-table",
                                "missing gknn-lockdep-table markers"))
        return
    doc_path = os.path.join(root, "docs", "CONCURRENCY.md")
    if not os.path.exists(doc_path):
        findings.append(Finding("docs/CONCURRENCY.md", 1, "lockdep-table",
                                "docs/CONCURRENCY.md not found"))
        return
    doc_table = parse_doc_table(root)
    for name, rank in sorted(code_table.items()):
        if name not in doc_table:
            findings.append(Finding(
                "docs/CONCURRENCY.md", 1, "lockdep-table",
                f"lock class `{name}` (rank {rank}) is in lockdep.h but "
                "missing from the CONCURRENCY.md lock-order table"))
        elif doc_table[name] != rank:
            findings.append(Finding(
                "docs/CONCURRENCY.md", 1, "lockdep-table",
                f"lock class `{name}` has rank {rank} in lockdep.h but "
                f"{doc_table[name]} in CONCURRENCY.md"))
    for name, rank in sorted(doc_table.items()):
        if name not in code_table:
            findings.append(Finding(
                "docs/CONCURRENCY.md", 1, "lockdep-table",
                f"lock class `{name}` (rank {rank}) is documented but not "
                "declared in src/util/lockdep.h"))


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: the lint's parent)")
    parser.add_argument("paths", nargs="*",
                        help="explicit files to lint instead of the repo "
                             "sweep (table sync is skipped)")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    findings = []

    if args.paths:
        files = [os.path.abspath(p) for p in args.paths]
    else:
        files = list(iter_source_files(
            root, ["src", "tools", "bench", "examples", "tests"],
            (".h", ".cc", ".cpp")))

    for path in files:
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        check_file(path, rel, lines, findings)

    if not args.paths:
        check_lockdep_table(root, findings)

    for finding in findings:
        print(finding)
    if findings:
        print(f"gknn_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("gknn_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
