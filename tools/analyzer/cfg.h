#ifndef GKNN_TOOLS_ANALYZER_CFG_H_
#define GKNN_TOOLS_ANALYZER_CFG_H_

#include <cstddef>
#include <string>
#include <vector>

#include "token.h"

namespace gknn::check {

/// One basic block of the statement-level control-flow graph. Granularity
/// is one block per simple statement or per control-flow header (the
/// condition of an if/while/for/switch), so blocks own disjoint token
/// ranges [begin, end) inside the function body and dataflow facts can be
/// positioned by token index.
struct CfgBlock {
  size_t begin = 0;  // token index, inclusive
  size_t end = 0;    // token index, exclusive
  int line = 0;
  std::vector<int> succs;
  std::vector<int> preds;
};

/// A natural loop discovered during construction (while / do-while / for /
/// range-for). `blocks` is the contiguous id range [first_block,
/// past_block) of every block belonging to the loop, head included —
/// construction order makes loop bodies contiguous.
struct CfgLoop {
  enum class Kind { kWhile, kDoWhile, kFor, kRangeFor };
  Kind kind = Kind::kWhile;
  int head = -1;              // condition block (entry of every iteration)
  std::vector<int> latches;   // blocks with a back edge to `head`
  int first_block = -1;       // id range of member blocks, head included
  int past_block = -1;
  size_t begin_pos = 0;       // token span of the whole loop statement
  size_t end_pos = 0;
  int line = 0;
  bool infinite = false;      // for(;;) / while(true) / while(1)
  bool counted = false;       // range-for, or 3-clause for with cond & inc
  bool cond_has_call = false; // the condition contains a call

  bool Contains(int block) const {
    return block >= first_block && block < past_block;
  }
};

struct Cfg {
  std::vector<CfgBlock> blocks;
  std::vector<CfgLoop> loops;
  int entry = -1;  // -1 for an empty body

  /// Block whose token range contains `pos`, or -1. Ranges are disjoint.
  int BlockAt(size_t pos) const {
    for (size_t i = 0; i < blocks.size(); ++i) {
      if (pos >= blocks[i].begin && pos < blocks[i].end) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }
};

/// Builds the statement-level CFG for a function body spanning tokens
/// [body_begin, body_end). Understands if/else chains, while, do-while,
/// 3-clause for, range-for, switch with case fallthrough, break, continue
/// and return. Lambda bodies and brace initializers inside a statement are
/// opaque: their tokens stay inside the enclosing statement's block and
/// their control flow never leaks into the outer graph.
Cfg BuildCfg(const std::vector<Token>& tokens, size_t body_begin,
             size_t body_end);

}  // namespace gknn::check

#endif  // GKNN_TOOLS_ANALYZER_CFG_H_
