#include "passes.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace gknn::check {

const char* OpCategoryName(OpCategory c) {
  switch (c) {
    case OpCategory::kBlockingWait:
      return "blocking-wait";
    case OpCategory::kDeviceTransfer:
      return "device-transfer";
    case OpCategory::kDeviceSync:
      return "device-sync";
    case OpCategory::kDeviceAlloc:
      return "device-alloc";
    case OpCategory::kDeadlinePoll:
      return "deadline-poll";
  }
  return "unknown";
}

namespace {

/// Lock classes held by an acquisition event: its own class, or — for a
/// guard-returning call — everything the callee transitively acquires.
std::set<std::string> HeldSymbols(const Program& program,
                                  const AcquireEvent& a) {
  if (a.via_callee >= 0) {
    return program.functions[a.via_callee].acq_all;
  }
  return {a.class_symbol};
}

}  // namespace

void ComputeSummaries(Program* program) {
  // Seed with direct events.
  for (FunctionInfo& f : program->functions) {
    for (const AcquireEvent& a : f.acquires) {
      if (a.via_callee >= 0) continue;  // flows through the call event
      f.acq_all.insert(a.class_symbol);
      f.acq_via.emplace(a.class_symbol, -1);
      if (!a.shared) f.acq_excl.insert(a.class_symbol);
    }
    for (const OpEvent& op : f.ops) {
      f.ops_all.insert(static_cast<int>(op.category));
      f.ops_via.emplace(static_cast<int>(op.category), -1);
    }
    // Shared-write summary: a direct write to a non-atomic member of the
    // enclosing class with no exclusive hold region covering it.
    for (const FieldWrite& w : f.field_writes) {
      if (w.atomic) continue;
      bool guarded = false;
      for (const AcquireEvent& a : f.acquires) {
        if (a.shared) continue;
        if (a.begin_pos < w.pos && w.pos < a.end_pos) {
          guarded = true;
          break;
        }
      }
      if (!guarded && !f.unguarded_write) {
        f.unguarded_write = true;
        f.unguarded_witness =
            "'" + w.field + "' at line " + std::to_string(w.line);
      }
    }
  }
  // Propagate along resolved calls to a fixpoint.
  bool changed = true;
  int fuel = 64;
  while (changed && fuel-- > 0) {
    changed = false;
    for (FunctionInfo& f : program->functions) {
      for (const CallEvent& c : f.calls) {
        for (int id : c.resolved) {
          const FunctionInfo& g = program->functions[id];
          for (const std::string& s : g.acq_all) {
            if (f.acq_all.insert(s).second) {
              f.acq_via.emplace(s, id);
              changed = true;
            }
          }
          for (const std::string& s : g.acq_excl) {
            if (f.acq_excl.insert(s).second) changed = true;
          }
          for (int cat : g.ops_all) {
            if (f.ops_all.insert(cat).second) {
              f.ops_via.emplace(cat, id);
              changed = true;
            }
          }
        }
      }
    }
  }
}

void RunLockOrderPass(Program* program, const std::string& lockdep_path,
                      const std::string& doc_path,
                      std::vector<Finding>* findings) {
  auto add = [&](const std::string& file, int line, const std::string& msg) {
    Finding fd;
    fd.rule = "lock-order";
    fd.file = file;
    fd.line = line;
    fd.message = msg;
    fd.level = "error";
    findings->push_back(fd);
  };

  // --- Build the static acquisition-order edge set. ---
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  auto record_edge = [&](const std::string& from_sym,
                         const std::string& to_sym, const std::string& file,
                         int line, const std::string& via) {
    const LockClassInfo* from = program->locks.FindSymbol(from_sym);
    const LockClassInfo* to = program->locks.FindSymbol(to_sym);
    if (from == nullptr || to == nullptr) return;
    const auto key = std::make_pair(from->name, to->name);
    if (edges.count(key)) return;
    LockEdge e;
    e.from = from->name;
    e.to = to->name;
    e.file = file;
    e.line = line;
    e.via = via;
    edges.emplace(key, e);
  };

  for (const FunctionInfo& f : program->functions) {
    for (const AcquireEvent& a : f.acquires) {
      if (a.via_callee < 0 &&
          program->locks.FindSymbol(a.class_symbol) == nullptr) {
        add(f.file, a.line,
            "acquisition of unknown lock class symbol '" + a.class_symbol +
                "' — not present in the lockdep table (src/util/lockdep.h)");
        continue;
      }
      if (a.begin_pos >= a.end_pos) continue;  // degenerate (striped index)
      const std::set<std::string> held = HeldSymbols(*program, a);
      // Direct nested acquisitions inside this region.
      for (const AcquireEvent& b : f.acquires) {
        if (&b == &a) continue;
        if (b.begin_pos < a.begin_pos || b.begin_pos >= a.end_pos) continue;
        for (const std::string& h : held) {
          for (const std::string& tgt : HeldSymbols(*program, b)) {
            record_edge(h, tgt, f.file, b.line, "");
          }
        }
      }
      // Acquisitions reachable through calls made inside this region. A
      // call at exactly begin_pos is the guard factory itself, not a
      // nested acquisition.
      for (const CallEvent& c : f.calls) {
        if (c.pos <= a.begin_pos || c.pos >= a.end_pos) continue;
        for (int id : c.resolved) {
          const FunctionInfo& g = program->functions[id];
          for (const std::string& h : held) {
            for (const std::string& tgt : g.acq_all) {
              record_edge(h, tgt, f.file, c.line,
                          "call to " + g.qualified_name);
            }
          }
        }
      }
    }
  }
  program->edges.clear();
  for (const auto& [key, e] : edges) program->edges.push_back(e);

  // --- Check every edge against the rank discipline. ---
  for (const LockEdge& e : program->edges) {
    const LockClassInfo* from = program->locks.FindName(e.from);
    const LockClassInfo* to = program->locks.FindName(e.to);
    if (from == nullptr || to == nullptr) continue;
    const std::string via =
        e.via.empty() ? std::string() : " (via " + e.via + ")";
    if (e.from == e.to) {
      if (!from->nestable) {
        add(e.file, e.line,
            "lock class '" + e.from +
                "' is re-acquired while already held and is not nestable" +
                via + "; for a SharedMutex this is a reader->writer upgrade "
                      "deadlock");
      }
      continue;
    }
    if (from->leaf) {
      add(e.file, e.line,
          "leaf lock class '" + e.from + "' (rank " +
              std::to_string(from->rank) + ") is held while acquiring '" +
              e.to + "'" + via + "; leaf classes must never nest");
    }
    if (to->rank <= from->rank) {
      add(e.file, e.line,
          "rank inversion: acquiring '" + e.to + "' (rank " +
              std::to_string(to->rank) + ") while holding '" + e.from +
              "' (rank " + std::to_string(from->rank) + ")" + via +
              "; the runtime lockdep would abort here");
    }
  }

  // --- Cycle detection over the edge set (belt and braces: strict rank
  // ascent already forbids cycles, so any cycle co-occurs with a rank
  // finding, but report it explicitly with the full path). ---
  std::map<std::string, std::vector<const LockEdge*>> adj;
  for (const LockEdge& e : program->edges) {
    if (e.from != e.to) adj[e.from].push_back(&e);
  }
  std::set<std::string> done;
  std::vector<std::string> stack;
  std::set<std::string> on_stack;
  std::function<void(const std::string&)> dfs = [&](const std::string& v) {
    if (done.count(v)) return;
    on_stack.insert(v);
    stack.push_back(v);
    for (const LockEdge* e : adj[v]) {
      if (on_stack.count(e->to)) {
        std::string path;
        bool in_cycle = false;
        for (const std::string& s : stack) {
          if (s == e->to) in_cycle = true;
          if (in_cycle) path += s + " -> ";
        }
        path += e->to;
        add(e->file, e->line, "lock-order cycle: " + path);
      } else {
        dfs(e->to);
      }
    }
    stack.pop_back();
    on_stack.erase(v);
    done.insert(v);
  };
  for (const auto& [v, unused] : adj) dfs(v);

  // --- Diff the runtime table against docs/CONCURRENCY.md. ---
  for (const LockClassInfo& c : program->locks.classes) {
    const LockClassInfo* doc = program->doc_locks.FindName(c.name);
    if (doc == nullptr) {
      add(doc_path, 1,
          "lock class '" + c.name + "' (rank " + std::to_string(c.rank) +
              ") is in src/util/lockdep.h but missing from the rank table "
              "in docs/CONCURRENCY.md");
    } else if (doc->rank != c.rank) {
      add(doc_path, 1,
          "lock class '" + c.name + "' has rank " + std::to_string(c.rank) +
              " in src/util/lockdep.h but rank " + std::to_string(doc->rank) +
              " in docs/CONCURRENCY.md");
    }
  }
  for (const LockClassInfo& d : program->doc_locks.classes) {
    if (program->locks.FindName(d.name) == nullptr) {
      add(lockdep_path, 1,
          "lock class '" + d.name +
              "' is documented in docs/CONCURRENCY.md but missing from the "
              "lockdep table in src/util/lockdep.h");
    }
  }
}

void RunSharedBlockPass(Program* program, std::vector<Finding>* findings) {
  for (const FunctionInfo& f : program->functions) {
    for (const AcquireEvent& a : f.acquires) {
      if (!a.shared || a.begin_pos >= a.end_pos) continue;
      const LockClassInfo* cls = program->locks.FindSymbol(a.class_symbol);
      const std::string cls_name = cls ? cls->name : a.class_symbol;
      // category -> one witness description
      std::map<int, std::string> cats;
      for (const OpEvent& op : f.ops) {
        if (op.pos < a.begin_pos || op.pos >= a.end_pos) continue;
        cats.emplace(static_cast<int>(op.category),
                     "'" + op.detail + "' at line " +
                         std::to_string(op.line));
      }
      for (const CallEvent& c : f.calls) {
        if (c.pos < a.begin_pos || c.pos >= a.end_pos) continue;
        for (int id : c.resolved) {
          const FunctionInfo& g = program->functions[id];
          for (int cat : g.ops_all) {
            cats.emplace(cat, "call to " + g.qualified_name + " at line " +
                                  std::to_string(c.line));
          }
        }
      }
      if (cats.empty()) continue;
      std::string msg = "shared (reader) lock on '" + cls_name +
                        "' is held across: ";
      bool first = true;
      for (const auto& [cat, witness] : cats) {
        if (!first) msg += "; ";
        first = false;
        msg += std::string(OpCategoryName(static_cast<OpCategory>(cat))) +
               " (" + witness + ")";
      }
      msg += " — long or blocking work under a reader lock stalls writers";
      Finding fd;
      fd.rule = "shared-block";
      fd.file = f.file;
      fd.line = a.line;
      fd.message = msg;
      fd.level = "warning";
      findings->push_back(fd);
    }
  }
}

std::string DumpLockGraph(const Program& program) {
  std::ostringstream out;
  out << "# static lock graph (" << program.locks.classes.size()
      << " classes, " << program.edges.size() << " edges)\n";
  for (const LockClassInfo& c : program.locks.classes) {
    out << "class " << c.name << " rank=" << c.rank
        << (c.nestable ? " nestable" : "") << (c.leaf ? " leaf" : "")
        << "\n";
  }
  std::vector<LockEdge> sorted = program.edges;
  std::sort(sorted.begin(), sorted.end(),
            [](const LockEdge& a, const LockEdge& b) {
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  for (const LockEdge& e : sorted) {
    out << "edge " << e.from << " -> " << e.to << "  [" << e.file << ":"
        << e.line;
    if (!e.via.empty()) out << " " << e.via;
    out << "]\n";
  }
  return out.str();
}

}  // namespace gknn::check
