#include "sarif.h"

#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace gknn::check {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct RuleMeta {
  const char* id;
  const char* description;
};

constexpr RuleMeta kRules[] = {
    {"lock-order",
     "Static lock acquisition order must strictly ascend lockdep ranks; "
     "leaf classes must never nest; the static graph must match "
     "docs/CONCURRENCY.md."},
    {"shared-block",
     "Blocking waits, device transfers/syncs, and device allocation must "
     "not be reachable while a shared (reader) lock is held."},
    {"status-drop",
     "util::Status / util::Result failure values must be examined, not "
     "discarded."},
    {"device-span",
     "Raw DeviceBuffer spans must stay inside src/gpusim/, must not outlive "
     "their buffer, and must not be dereferenced across pending stream "
     "work."},
    {"raw-mutex",
     "Use the util::lockdep wrappers instead of raw std synchronization "
     "primitives so lock ordering is validated at runtime."},
    {"atomic-publication",
     "Atomic fields stored under a lock and read outside it must use "
     "release stores and acquire loads, or a correctly-ordered seqlock "
     "bracket."},
    {"deadline-checkpoint",
     "Unbounded loops reachable from a query entry point must poll the "
     "request deadline on every iteration path."},
    {"shared-write",
     "Non-atomic members must not be written while the owning class's "
     "shared_mutex is held in shared (reader) mode."},
    {"lease-lifetime",
     "Scheduler stream leases must not escape their acquiring scope, be "
     "used after move, or stay live across a DeviceSet metrics fold."},
};

}  // namespace

std::string ToSarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
         "Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"gknn_check\",\n"
      << "          \"informationUri\": "
         "\"docs/STATIC_ANALYSIS.md\",\n"
      << "          \"rules\": [\n";
  bool first = true;
  for (const RuleMeta& r : kRules) {
    if (!first) out << ",\n";
    first = false;
    out << "            {\"id\": \"" << r.id
        << "\", \"shortDescription\": {\"text\": \"" << JsonEscape(r.description)
        << "\"}}";
  }
  out << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [\n";
  first = true;
  for (const Finding& f : findings) {
    if (!first) out << ",\n";
    first = false;
    out << "        {\n"
        << "          \"ruleId\": \"" << JsonEscape(f.rule) << "\",\n"
        << "          \"level\": \"" << JsonEscape(f.level) << "\",\n"
        << "          \"message\": {\"text\": \"" << JsonEscape(f.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\"physicalLocation\": {\"artifactLocation\": "
           "{\"uri\": \""
        << JsonEscape(f.file) << "\"}, \"region\": {\"startLine\": "
        << (f.line > 0 ? f.line : 1) << "}}}\n"
        << "          ]\n"
        << "        }";
  }
  out << "\n      ]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

}  // namespace gknn::check
