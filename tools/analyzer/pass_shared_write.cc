// Shared-mode write pass.
//
// A SharedMutex held in shared (reader) mode promises other readers that
// the guarded state is quiescent. Writing a non-atomic member of the
// lock-owning class inside such a region — directly, or by calling a
// same-class method that writes without taking an exclusive lock — is a
// data race with the other readers.
//
// Scope is deliberately same-class: query code routinely mutates
// thread-confined helpers (per-query workspaces, stack-local builders)
// under the server's shared lock, and those writes are fine. Only writes
// to members of the class whose shared lock is held are flagged.

#include <string>
#include <vector>

#include "passes.h"

namespace gknn::check {

namespace {

/// True when an exclusive hold region inside `f` covers `pos` (a nested
/// writer lock makes the write safe).
bool UnderExclusive(const FunctionInfo& f, size_t pos) {
  for (const AcquireEvent& a : f.acquires) {
    if (!a.shared && a.begin_pos < pos && pos < a.end_pos) return true;
  }
  return false;
}

}  // namespace

void RunSharedWritePass(Program* program, std::vector<Finding>* findings) {
  auto add = [&](const FunctionInfo& f, int line, const std::string& msg) {
    Finding fd;
    fd.rule = "shared-write";
    fd.file = f.file;
    fd.line = line;
    fd.message = msg;
    fd.level = "error";
    findings->push_back(fd);
  };

  for (const FunctionInfo& f : program->functions) {
    for (const AcquireEvent& a : f.acquires) {
      if (!a.shared || a.begin_pos >= a.end_pos) continue;
      const LockClassInfo* cls = program->locks.FindSymbol(a.class_symbol);
      const std::string lock_name = cls ? cls->name : a.class_symbol;

      for (const FieldWrite& w : f.field_writes) {
        if (w.atomic) continue;
        if (!(a.begin_pos < w.pos && w.pos < a.end_pos)) continue;
        if (UnderExclusive(f, w.pos)) continue;
        add(f, w.line,
            "member '" + w.field + "' of " +
                (f.class_name.empty() ? "this class" : f.class_name) +
                " is " + (w.via_mutator ? "mutated" : "written") +
                " while '" + lock_name +
                "' is held in shared (reader) mode; take the exclusive "
                "lock or make the member atomic");
      }

      for (const CallEvent& c : f.calls) {
        if (!(a.begin_pos < c.pos && c.pos < a.end_pos)) continue;
        if (UnderExclusive(f, c.pos)) continue;
        for (int id : c.resolved) {
          const FunctionInfo& g = program->functions[id];
          if (g.class_name != f.class_name || !g.unguarded_write) continue;
          add(f, c.line,
              "call to '" + g.qualified_name + "' while '" + lock_name +
                  "' is held in shared (reader) mode; the callee writes "
                  "member " + g.unguarded_witness +
                  " without an exclusive lock");
        }
      }
    }
  }
}

}  // namespace gknn::check
