#include "lexer.h"

#include <cctype>
#include <cstring>

namespace gknn::check {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators, longest first so maximal munch works.
const char* const kPuncts[] = {
    "<<=", ">>=", "->*", "...", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "|=", "&=", "^=", "%=",
    "++", "--",
};

/// One stacked `#if` level: `active` says whether lines in the current
/// branch are lexed; `taken` says whether any branch at this level has been
/// active (so `#else`/`#elif` after a taken branch always skip).
struct CondLevel {
  bool active;
  bool taken;
};

/// First token of a directive line after the '#'.
std::string DirectiveName(const std::string& line) {
  size_t i = line.find('#');
  if (i == std::string::npos) return "";
  ++i;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
    ++i;
  size_t j = i;
  while (j < line.size() && IsIdentChar(line[j])) ++j;
  return line.substr(i, j - i);
}

/// The expression after `#if` — only "0" matters (everything else is
/// treated as true, matching the default-on build configuration).
bool IfConditionTrue(const std::string& line) {
  const size_t pos = line.find("if");
  if (pos == std::string::npos) return true;
  size_t i = pos + 2;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
    ++i;
  size_t j = i;
  while (j < line.size() &&
         !std::isspace(static_cast<unsigned char>(line[j]))) {
    ++j;
  }
  const std::string expr = line.substr(i, j - i);
  return expr != "0" && expr != "(0)";
}

}  // namespace

LexedFile Lex(const std::string& path, const std::string& text) {
  LexedFile out;
  out.path = path;
  std::vector<CondLevel> conds;
  auto active = [&] {
    for (const CondLevel& c : conds) {
      if (!c.active) return false;
    }
    return true;
  };

  size_t i = 0;
  int line = 1;
  const size_t n = text.size();
  bool at_line_start = true;

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Preprocessor directive: consume the full logical line (with
    // backslash continuations) and update the conditional stack.
    if (c == '#' && at_line_start) {
      std::string directive;
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          directive += ' ';
          i += 2;
          ++line;
          continue;
        }
        if (text[i] == '\n') break;
        directive += text[i];
        ++i;
      }
      const std::string name = DirectiveName(directive);
      if (name == "if") {
        const bool on = active() && IfConditionTrue(directive);
        conds.push_back({on, on});
      } else if (name == "ifdef" || name == "ifndef") {
        // Include guards and feature probes: take the first branch.
        const bool on = active();
        conds.push_back({on, on});
      } else if (name == "elif") {
        if (!conds.empty()) {
          CondLevel& top = conds.back();
          const bool parent_ok =
              conds.size() == 1 ||
              [&] {
                for (size_t k = 0; k + 1 < conds.size(); ++k) {
                  if (!conds[k].active) return false;
                }
                return true;
              }();
          top.active = parent_ok && !top.taken && IfConditionTrue(directive);
          top.taken = top.taken || top.active;
        }
      } else if (name == "else") {
        if (!conds.empty()) {
          CondLevel& top = conds.back();
          const bool parent_ok = [&] {
            for (size_t k = 0; k + 1 < conds.size(); ++k) {
              if (!conds[k].active) return false;
            }
            return true;
          }();
          top.active = parent_ok && !top.taken;
          top.taken = top.taken || top.active;
        }
      } else if (name == "endif") {
        if (!conds.empty()) conds.pop_back();
      }
      continue;  // next loop iteration handles the newline
    }
    at_line_start = false;

    // Inactive conditional branch: skip to end of line, but keep scanning
    // for directives (handled above at line starts).
    if (!active()) {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      size_t j = i + 2;
      while (j < n && text[j] != '\n') ++j;
      std::string& slot = out.comments[line];
      if (!slot.empty()) slot += ' ';
      slot += text.substr(i + 2, j - i - 2);
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      size_t j = i + 2;
      int start_line = line;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) {
        if (text[j] == '\n') ++line;
        ++j;
      }
      std::string body = text.substr(i + 2, j - i - 2);
      std::string& slot = out.comments[start_line];
      if (!slot.empty()) slot += ' ';
      slot += body;
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }

    // Raw string literal R"delim(...)delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && text[j] != '(') delim += text[j++];
      const std::string close = ")" + delim + "\"";
      size_t end = text.find(close, j);
      if (end == std::string::npos) end = n;
      for (size_t k = i; k < end && k < n; ++k) {
        if (text[k] == '\n') ++line;
      }
      out.tokens.push_back({TokenKind::kString, "<raw>", line});
      i = std::min(n, end + close.size());
      continue;
    }

    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\') ++j;
        if (j < n && text[j] == '\n') ++line;
        ++j;
      }
      out.tokens.push_back({quote == '"' ? TokenKind::kString
                                         : TokenKind::kChar,
                            text.substr(i + 1, j - i - 1), line});
      i = (j < n) ? j + 1 : n;
      continue;
    }

    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(text[j])) ++j;
      out.tokens.push_back({TokenKind::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (IsIdentChar(text[j]) || text[j] == '.' ||
                       text[j] == '\'')) {
        // Exponent sign: 1e-5, 0x1p+3.
        if ((text[j] == 'e' || text[j] == 'E' || text[j] == 'p' ||
             text[j] == 'P') &&
            j + 1 < n && (text[j + 1] == '+' || text[j + 1] == '-')) {
          ++j;
        }
        ++j;
      }
      out.tokens.push_back({TokenKind::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }

    // Punctuators: maximal munch over the multi-char table.
    bool matched = false;
    for (const char* p : kPuncts) {
      const size_t len = std::strlen(p);
      if (text.compare(i, len, p) == 0) {
        out.tokens.push_back({TokenKind::kPunct, p, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      out.tokens.push_back({TokenKind::kPunct, std::string(1, c), line});
      ++i;
    }
  }

  out.max_line = line;
  out.tokens.push_back({TokenKind::kEnd, "", line});
  return out;
}

}  // namespace gknn::check
