#ifndef GKNN_TOOLS_ANALYZER_PASSES_H_
#define GKNN_TOOLS_ANALYZER_PASSES_H_

#include <string>
#include <vector>

#include "model.h"

namespace gknn::check {

/// Interprocedural fixpoint: propagates acquired-lock-class and
/// op-category summaries along the call graph until stable. Must run
/// after ExtractEvents over every file.
void ComputeSummaries(Program* program);

/// Pass 1 — static lock order. Builds Program::edges (the static
/// acquisition-order graph) and reports rank inversions, leaf-class
/// nesting, same-class reacquisition, cycles, and drift between the
/// lockdep table and docs/CONCURRENCY.md.
void RunLockOrderPass(Program* program, const std::string& lockdep_path,
                      const std::string& doc_path,
                      std::vector<Finding>* findings);

/// Pass 2 — blocking work reachable while a shared (reader) lock is held.
/// One aggregated finding per (shared region, op category set).
void RunSharedBlockPass(Program* program, std::vector<Finding>* findings);

/// Human-readable dump of the static lock graph (classes then edges).
std::string DumpLockGraph(const Program& program);

}  // namespace gknn::check

#endif  // GKNN_TOOLS_ANALYZER_PASSES_H_
