#ifndef GKNN_TOOLS_ANALYZER_PASSES_H_
#define GKNN_TOOLS_ANALYZER_PASSES_H_

#include <string>
#include <vector>

#include "model.h"

namespace gknn::check {

/// Interprocedural fixpoint: propagates acquired-lock-class and
/// op-category summaries along the call graph until stable. Must run
/// after ExtractEvents over every file.
void ComputeSummaries(Program* program);

/// Pass 1 — static lock order. Builds Program::edges (the static
/// acquisition-order graph) and reports rank inversions, leaf-class
/// nesting, same-class reacquisition, cycles, and drift between the
/// lockdep table and docs/CONCURRENCY.md.
void RunLockOrderPass(Program* program, const std::string& lockdep_path,
                      const std::string& doc_path,
                      std::vector<Finding>* findings);

/// Pass 2 — blocking work reachable while a shared (reader) lock is held.
/// One aggregated finding per (shared region, op category set).
void RunSharedBlockPass(Program* program, std::vector<Finding>* findings);

/// Pass 3 — atomic publication protocol. Groups atomic member accesses by
/// (owner, field), infers each field's owning lock from the intersection
/// of lock sets held at stores, and requires release stores / acquire
/// loads (or a correctly-ordered seqlock bracket) whenever the field is
/// read outside that lock.
void RunAtomicPublicationPass(Program* program,
                              std::vector<Finding>* findings);

/// Pass 4 — deadline checkpoint coverage. Every unbounded loop in a
/// function reachable from a QueryServer/ShardRouter query entry point
/// must have no cyclic path that dodges every deadline-poll block.
void RunDeadlineCheckpointPass(Program* program,
                               std::vector<Finding>* findings);

/// Pass 5 — writes to non-atomic members of the lock-owning class while a
/// shared_mutex is held in shared mode (directly or via a same-class
/// callee that writes unguarded).
void RunSharedWritePass(Program* program, std::vector<Finding>* findings);

/// Pass 6 — StreamLease lifetime: leases must not escape their acquiring
/// scope (return / member store), must not be used after std::move, and
/// must be released before a DeviceSet metrics fold consumes their
/// stream's counters.
void RunLeaseLifetimePass(Program* program, std::vector<Finding>* findings);

/// Human-readable dump of the static lock graph (classes then edges).
std::string DumpLockGraph(const Program& program);

}  // namespace gknn::check

#endif  // GKNN_TOOLS_ANALYZER_PASSES_H_
