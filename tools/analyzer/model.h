#ifndef GKNN_TOOLS_ANALYZER_MODEL_H_
#define GKNN_TOOLS_ANALYZER_MODEL_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cfg.h"
#include "lexer.h"

namespace gknn::check {

// ---------------------------------------------------------------------------
// Lock classes (parsed from src/util/lockdep.h and docs/CONCURRENCY.md)
// ---------------------------------------------------------------------------

struct LockClassInfo {
  std::string name;    // e.g. "server.index"
  std::string symbol;  // e.g. "kServerIndexClass"
  int rank = 0;
  bool nestable = false;
  bool leaf = false;
};

struct LockTable {
  std::vector<LockClassInfo> classes;
  std::map<std::string, int> by_symbol;  // kServerIndexClass -> index
  std::map<std::string, int> by_name;    // "server.index" -> index

  const LockClassInfo* FindSymbol(const std::string& symbol) const {
    auto it = by_symbol.find(symbol);
    return it == by_symbol.end() ? nullptr : &classes[it->second];
  }
  const LockClassInfo* FindName(const std::string& name) const {
    auto it = by_name.find(name);
    return it == by_name.end() ? nullptr : &classes[it->second];
  }
};

// ---------------------------------------------------------------------------
// Per-function events
// ---------------------------------------------------------------------------

/// Categories of "work you should not do while holding a reader lock" and
/// of device-side effects, used by the blocking-under-shared-lock pass.
enum class OpCategory {
  kBlockingWait,    // SleepNext, sleep_for, wait/wait_for/wait_until
  kDeviceTransfer,  // Upload/Download/EnqueueH2D/EnqueueD2H/UploadAsync
  kDeviceSync,      // Stream::Synchronize
  kDeviceAlloc,     // DeviceBuffer::Allocate / Device::RegisterAlloc
  kDeadlinePoll,    // Deadline::Expired/RemainingSeconds, CheckBudget
};

const char* OpCategoryName(OpCategory c);

/// A lock acquisition with a lexical hold region [begin_pos, end_pos) in
/// the owning function's token indices.
struct AcquireEvent {
  std::string class_symbol;  // lock class symbol (kServerIndexClass, ...)
  bool shared = false;       // reader side of a SharedMutex
  bool multi = false;        // MultiLock / striped set
  int line = 0;
  size_t begin_pos = 0;      // token index in the function body walk
  size_t end_pos = 0;        // token index where the guard scope closes
  // When >= 0: this acquisition is a call to a guard-returning function
  // (e.g. `auto locks = LockCellStripes(...)`) and the held classes are the
  // callee's transitive acquire set rather than `class_symbol`.
  int via_callee = -1;
};

/// A call site inside a function body.
struct CallEvent {
  std::string callee_name;          // bare method/function name
  std::string receiver_type;        // resolved class of the receiver, or ""
  bool qualified = false;           // Class::Name(...) form
  std::string qualifier;            // the Class in qualified calls
  int line = 0;
  size_t pos = 0;                   // token index
  std::vector<int> resolved;        // function ids after resolution
};

struct OpEvent {
  OpCategory category;
  std::string detail;  // callee name for diagnostics
  int line = 0;
  size_t pos = 0;
};

/// A `Status`/`Result` value bound to a local variable.
struct StatusVar {
  std::string name;
  int line = 0;
  bool consumed = false;
};

/// One access to an atomic data member, with its lexical position so the
/// atomic-publication pass can intersect it with lock hold regions.
struct AtomicAccess {
  enum class Kind { kLoad, kStore, kRmw };
  Kind kind = Kind::kLoad;
  std::string owner;   // class owning the field
  std::string field;   // dotted member path within the owner (a.b)
  std::string order;   // "relaxed", "release", ... ; "" = default seq_cst
  bool explicit_order = false;
  int line = 0;
  size_t pos = 0;
};

/// A direct write to a (non-atomic or atomic) member of the enclosing
/// class: assignment, compound assignment, ++/--, or a mutating container
/// call (push_back & co). Input to the shared-write pass.
struct FieldWrite {
  std::string field;
  bool atomic = false;
  bool via_mutator = false;  // push_back/clear/... rather than assignment
  int line = 0;
  size_t pos = 0;
};

/// A local `Scheduler::Lease` (move-only stream slot) and its lifecycle
/// events, input to the lease-lifetime pass.
struct LeaseVar {
  std::string name;
  int line = 0;
  size_t pos = 0;        // declaration position
  size_t scope_end = 0;  // token index where the enclosing scope closes
};

struct LeaseMove {
  std::string name;
  int line = 0;
  size_t pos = 0;
};

struct LeaseUse {
  std::string name;
  std::string member;  // method called on the lease, "" for a bare use
  int line = 0;
  size_t pos = 0;
};

struct LeaseEscape {
  enum class Kind { kReturn, kMemberStore };
  Kind kind = Kind::kReturn;
  std::string name;
  std::string detail;  // member the lease is stored into, if any
  int line = 0;
};

/// A device span bound to a local variable (`auto s = buf.device_span()`).
struct SpanVar {
  std::string name;
  std::string buffer;      // last identifier of the buffer expression
  bool buffer_local = false;
  int bind_line = 0;
  size_t bind_pos = 0;
};

struct FunctionInfo {
  int id = 0;
  std::string qualified_name;  // Namespace-free "Class::Name" or "Name"
  std::string class_name;      // enclosing class, or ""
  std::string file;
  int line = 0;
  std::string return_type;     // unwrapped type key of the return type
  bool returns_status = false;       // Status or Result<...>
  bool returns_guard = false;        // MultiLock (lock-handle factory)
  bool is_definition = false;
  size_t body_begin = 0;       // token index just past the body '{'
  size_t body_end = 0;         // token index of the matching '}'

  std::vector<AcquireEvent> acquires;
  std::vector<CallEvent> calls;
  std::vector<OpEvent> ops;

  // Statement-level CFG of the body (built during event extraction) and
  // the event streams consumed by the v2 dataflow passes.
  Cfg cfg;
  std::vector<AtomicAccess> atomics;
  std::vector<FieldWrite> field_writes;
  std::vector<LeaseVar> leases;
  std::vector<LeaseMove> lease_moves;
  std::vector<LeaseUse> lease_uses;
  std::vector<LeaseEscape> lease_escapes;

  // Summaries (computed by the interprocedural fixpoint).
  std::set<std::string> acq_all;        // class symbols (transitive)
  std::set<std::string> acq_excl;       // transitively, exclusive-mode only
  std::set<int> ops_all;                // OpCategory values (transitive)
  // One witness callee per summarized fact, for diagnostics.
  std::map<std::string, int> acq_via;   // class symbol -> callee id (-1 direct)
  std::map<int, int> ops_via;           // category -> callee id (-1 direct)
  // Shared-write pass: this function directly writes a non-atomic member
  // of its own class outside any exclusive hold region.
  bool unguarded_write = false;
  std::string unguarded_witness;        // "field at line N"
};

// ---------------------------------------------------------------------------
// Program-wide model
// ---------------------------------------------------------------------------

/// Return-type signature of a declared function, kept even for functions
/// with no analyzed definition (pure declarations in headers).
struct RetSig {
  std::string type_key;  // unwrapped last type identifier, "" when unknown
  bool status = false;   // Status or Result<...>
  bool guard = false;    // MultiLock (lock-handle factory)
  bool known = false;
};

struct ClassInfo {
  std::string name;
  // member variable -> "type key" (last identifier of the unwrapped type;
  // smart pointers and Result are unwrapped to the pointee).
  std::map<std::string, std::string> members;
  // member variable -> lock class symbol, for lockdep wrapper members.
  std::map<std::string, std::string> lock_members;
  std::set<std::string> shared_lock_members;   // SharedMutex members
  std::set<std::string> striped_lock_members;  // StripedMutexes members
  // Members whose declared type mentions std::atomic anywhere (including
  // std::array<std::atomic<T>, N> — element access stays atomic).
  std::set<std::string> atomic_members;
  // method name -> return signature (from declarations and definitions).
  std::map<std::string, RetSig> method_return;
};

/// One edge of the static lock acquisition-order graph: `from` is held at
/// the point where `to` is acquired (directly or via `via`).
struct LockEdge {
  std::string from;  // lock class name, e.g. "server.index"
  std::string to;
  std::string file;
  int line = 0;
  std::string via;  // "" for direct acquisitions, else callee description
};

struct Program {
  LockTable locks;
  LockTable doc_locks;  // parsed from docs/CONCURRENCY.md (name+rank only)

  std::vector<FunctionInfo> functions;
  std::map<std::string, std::vector<int>> functions_by_name;  // bare name
  std::map<std::string, ClassInfo> classes;

  // Global (namespace-scope) lock variables, if any.
  std::map<std::string, std::string> global_lock_vars;
  std::set<std::string> global_shared_lock_vars;

  // Free (namespace-scope) function signatures, including declarations.
  std::map<std::string, RetSig> free_returns;

  // Name-level status knowledge: a bare call name is status-returning when
  // it appears in status_names and never in nonstatus_names. Mirrors the
  // old regex lint's ambiguity filter for unresolvable call sites.
  std::set<std::string> status_names;
  std::set<std::string> nonstatus_names;

  // Static lock graph, filled by the lock-order pass.
  std::vector<LockEdge> edges;

  FunctionInfo* FindMethod(const std::string& cls, const std::string& name) {
    auto it = functions_by_name.find(name);
    if (it == functions_by_name.end()) return nullptr;
    for (int id : it->second) {
      if (functions[id].class_name == cls) return &functions[id];
    }
    return nullptr;
  }
};

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

struct Finding {
  std::string rule;     // "lock-order", "shared-block", "status-drop",
                        // "device-span", "raw-mutex"
  std::string file;
  int line = 0;
  std::string message;
  std::string level = "error";  // SARIF level: "error" | "warning"

  bool operator<(const Finding& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
};

}  // namespace gknn::check

#endif  // GKNN_TOOLS_ANALYZER_MODEL_H_
