// Deadline checkpoint coverage pass.
//
// Query-path code runs under a per-request util::Deadline budget; a loop
// that can iterate without ever polling the deadline (Expired /
// RemainingSeconds / CheckBudget, directly or through a callee) turns an
// expensive query into an unbounded one and defeats admission control.
//
// The pass walks the call graph from the QueryServer / ShardRouter query
// entry points, and for every unbounded loop in a reachable function asks
// the CFG: is there a cyclic path (head -> latch -> head) that stays
// inside the loop and dodges every checkpoint block? Counted loops
// (range-for, 3-clause for with condition and increment) are bounded by
// construction and exempt unless they perform device work.

#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dataflow.h"
#include "passes.h"

namespace gknn::check {

namespace {

bool IsQueryEntry(const FunctionInfo& f) {
  if (f.class_name != "QueryServer" && f.class_name != "ShardRouter") {
    return false;
  }
  const size_t sep = f.qualified_name.rfind("::");
  const std::string bare =
      sep == std::string::npos ? f.qualified_name
                               : f.qualified_name.substr(sep + 2);
  return bare.rfind("QueryKnn", 0) == 0 || bare.rfind("QueryRange", 0) == 0;
}

/// Only code on the query hot path is in scope; utility containers (heap
/// sift loops, list splices) are bounded by their callers' budgets.
bool InScopeFile(const std::string& file) {
  if (file.rfind("src/core/", 0) == 0) return true;
  if (file.rfind("src/server/", 0) == 0) return true;
  if (file.rfind("src/roadnet/", 0) == 0) return true;
  return file.find("analyzer_fixtures/") != std::string::npos ||
         file.find("lint_fixtures/") != std::string::npos;
}

bool IsDeviceCategory(int cat) {
  const OpCategory c = static_cast<OpCategory>(cat);
  return c == OpCategory::kDeviceTransfer || c == OpCategory::kDeviceSync ||
         c == OpCategory::kDeviceAlloc;
}

}  // namespace

void RunDeadlineCheckpointPass(Program* program,
                               std::vector<Finding>* findings) {
  // --- Reachability from the query entry points, with one witness path
  // edge per function for diagnostics. ---
  std::map<int, int> reached_via;  // function id -> caller id (-1 = entry)
  std::deque<int> work;
  for (const FunctionInfo& f : program->functions) {
    if (f.is_definition && IsQueryEntry(f)) {
      reached_via.emplace(f.id, -1);
      work.push_back(f.id);
    }
  }
  while (!work.empty()) {
    const int id = work.front();
    work.pop_front();
    for (const CallEvent& c : program->functions[id].calls) {
      for (int callee : c.resolved) {
        if (reached_via.emplace(callee, id).second) work.push_back(callee);
      }
    }
  }

  for (const auto& [id, via] : reached_via) {
    const FunctionInfo& f = program->functions[id];
    if (!f.is_definition || !InScopeFile(f.file)) continue;
    const Cfg& cfg = f.cfg;

    for (const CfgLoop& loop : cfg.loops) {
      // Is this loop unbounded (or does it do device work per iteration)?
      bool device_work = false;
      for (const OpEvent& op : f.ops) {
        if (op.pos >= loop.begin_pos && op.pos < loop.end_pos &&
            IsDeviceCategory(static_cast<int>(op.category))) {
          device_work = true;
          break;
        }
      }
      const bool unbounded =
          loop.infinite ||
          ((loop.kind == CfgLoop::Kind::kWhile ||
            loop.kind == CfgLoop::Kind::kDoWhile) &&
           loop.cond_has_call);
      if (!unbounded && !device_work) continue;
      if (loop.counted && !device_work) continue;

      // Checkpoint blocks: blocks of the loop containing a direct deadline
      // poll or a call whose transitive op summary polls.
      std::set<int> polls;
      for (const OpEvent& op : f.ops) {
        if (op.category != OpCategory::kDeadlinePoll) continue;
        const int b = cfg.BlockAt(op.pos);
        if (b >= 0 && loop.Contains(b)) polls.insert(b);
      }
      for (const CallEvent& c : f.calls) {
        const int b = cfg.BlockAt(c.pos);
        if (b < 0 || !loop.Contains(b)) continue;
        for (int callee : c.resolved) {
          if (program->functions[callee].ops_all.count(
                  static_cast<int>(OpCategory::kDeadlinePoll))) {
            polls.insert(b);
            break;
          }
        }
      }

      std::set<int> members;
      for (int b = loop.first_block; b < loop.past_block; ++b) {
        members.insert(b);
      }
      bool uncovered = false;
      for (int latch : loop.latches) {
        if (CanReachAvoiding(cfg, loop.head, latch, polls, &members)) {
          uncovered = true;
          break;
        }
      }
      if (!uncovered) continue;

      std::string path;
      int hop = via;
      int guard = 0;
      while (hop >= 0 && guard++ < 8) {
        path = program->functions[hop].qualified_name +
               (path.empty() ? "" : " -> ") + path;
        auto it = reached_via.find(hop);
        hop = it == reached_via.end() ? -1 : it->second;
      }
      const std::string reach =
          path.empty() ? "a query entry point" : "query path " + path;

      Finding fd;
      fd.rule = "deadline-checkpoint";
      fd.file = f.file;
      fd.line = loop.line;
      fd.message =
          "loop in '" + f.qualified_name + "' (reachable from " + reach +
          ") has an iteration path with no deadline checkpoint; poll "
          "Deadline::Expired / CheckBudget inside the loop so the query "
          "budget bounds it" +
          (device_work ? " (the loop performs device work per iteration)"
                       : "");
      fd.level = "error";
      findings->push_back(fd);
    }
  }
}

}  // namespace gknn::check
