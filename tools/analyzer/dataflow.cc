#include "dataflow.h"

#include <deque>

namespace gknn::check {

ForwardDataflow::ForwardDataflow(const Cfg& cfg, int num_facts, Meet meet)
    : cfg_(cfg),
      num_facts_(num_facts),
      meet_(meet),
      words_((static_cast<size_t>(num_facts) + 63) / 64) {
  if (words_ == 0) words_ = 1;
  const size_t n = cfg.blocks.size();
  gen_.assign(n, Bits(words_, 0));
  kill_.assign(n, Bits(words_, 0));
  in_.assign(n, Bits(words_, 0));
  out_.assign(n, Bits(words_, 0));
  entry_.assign(words_, 0);
}

bool ForwardDataflow::Has(const Bits& b, int fact) {
  return (b[fact / 64] >> (fact % 64)) & 1;
}

void ForwardDataflow::Set(Bits* b, int fact) {
  (*b)[fact / 64] |= uint64_t{1} << (fact % 64);
}

void ForwardDataflow::AddGen(int block, int fact) {
  if (block < 0 || fact < 0 || fact >= num_facts_) return;
  Set(&gen_[block], fact);
}

void ForwardDataflow::AddKill(int block, int fact) {
  if (block < 0 || fact < 0 || fact >= num_facts_) return;
  Set(&kill_[block], fact);
}

void ForwardDataflow::AddEntryFact(int fact) {
  if (fact < 0 || fact >= num_facts_) return;
  Set(&entry_, fact);
}

void ForwardDataflow::Solve() {
  const size_t n = cfg_.blocks.size();
  std::deque<int> worklist;
  std::vector<bool> queued(n, false);
  for (size_t b = 0; b < n; ++b) {
    worklist.push_back(static_cast<int>(b));
    queued[b] = true;
  }
  while (!worklist.empty()) {
    const int b = worklist.front();
    worklist.pop_front();
    queued[b] = false;

    // The virtual function entry acts as one more predecessor (with OUT =
    // entry facts) of the entry block, so a loop head in first position
    // still meets the incoming facts correctly.
    Bits in(words_, 0);
    bool first = true;
    auto meet_in = [&](const Bits& x) {
      if (first) {
        in = x;
        first = false;
      } else if (meet_ == Meet::kUnion) {
        for (size_t w = 0; w < words_; ++w) in[w] |= x[w];
      } else {
        for (size_t w = 0; w < words_; ++w) in[w] &= x[w];
      }
    };
    const std::vector<int>& preds = cfg_.blocks[b].preds;
    if (b == cfg_.entry || preds.empty()) meet_in(entry_);
    for (int p : preds) meet_in(out_[p]);
    in_[b] = in;

    Bits out(words_, 0);
    for (size_t w = 0; w < words_; ++w) {
      out[w] = (in[w] & ~kill_[b][w]) | gen_[b][w];
    }
    if (out != out_[b]) {
      out_[b] = std::move(out);
      for (int s : cfg_.blocks[b].succs) {
        if (!queued[s]) {
          worklist.push_back(s);
          queued[s] = true;
        }
      }
    }
  }
}

bool ForwardDataflow::InHas(int block, int fact) const {
  if (block < 0 || static_cast<size_t>(block) >= in_.size()) return false;
  if (fact < 0 || fact >= num_facts_) return false;
  return Has(in_[block], fact);
}

bool ForwardDataflow::OutHas(int block, int fact) const {
  if (block < 0 || static_cast<size_t>(block) >= out_.size()) return false;
  if (fact < 0 || fact >= num_facts_) return false;
  return Has(out_[block], fact);
}

bool CanReachAvoiding(const Cfg& cfg, int from, int to,
                      const std::set<int>& avoid,
                      const std::set<int>* within) {
  if (from < 0 || to < 0) return false;
  if (avoid.count(from) || avoid.count(to)) return false;
  if (within != nullptr && (!within->count(from) || !within->count(to))) {
    return false;
  }
  if (from == to) return true;
  std::vector<bool> seen(cfg.blocks.size(), false);
  std::deque<int> queue{from};
  seen[from] = true;
  while (!queue.empty()) {
    const int b = queue.front();
    queue.pop_front();
    for (int s : cfg.blocks[b].succs) {
      if (seen[s] || avoid.count(s)) continue;
      if (within != nullptr && !within->count(s)) continue;
      if (s == to) return true;
      seen[s] = true;
      queue.push_back(s);
    }
  }
  return false;
}

}  // namespace gknn::check
