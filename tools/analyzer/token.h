#ifndef GKNN_TOOLS_ANALYZER_TOKEN_H_
#define GKNN_TOOLS_ANALYZER_TOKEN_H_

#include <string>
#include <vector>

namespace gknn::check {

enum class TokenKind {
  kIdent,
  kNumber,
  kString,
  kChar,
  kPunct,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  int line = 0;

  bool Is(TokenKind k, const char* t) const { return kind == k && text == t; }
  bool IsIdent(const char* t) const { return Is(TokenKind::kIdent, t); }
  bool IsPunct(const char* t) const { return Is(TokenKind::kPunct, t); }
};

}  // namespace gknn::check

#endif  // GKNN_TOOLS_ANALYZER_TOKEN_H_
