// Atomic publication protocol pass.
//
// An atomic member that is written under a lock and read outside it is a
// publication channel: the writer must use release (or stronger) stores
// and cross-thread readers must use acquire (or stronger) loads, unless
// both sides sit inside a correctly-ordered seqlock bracket (a fetch_add
// release pair around the writes, an acquire load pair around the reads
// of a companion "seq" counter).
//
// The owning lock of a field is inferred, not declared: it is the
// intersection of the lock-class sets held at every store. Fields with no
// stores, or whose stores are not consistently under any lock (lock-free
// counters), are out of scope. Relaxed RMWs are also out of scope — a
// fetch_add on a counter is not publication.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "passes.h"

namespace gknn::check {

namespace {

struct SiteInfo {
  const FunctionInfo* fn = nullptr;
  const AtomicAccess* access = nullptr;
  std::set<std::string> held;  // lock class symbols held at the access
};

std::set<std::string> HeldAt(const Program& program, const FunctionInfo& f,
                             size_t pos) {
  std::set<std::string> held;
  for (const AcquireEvent& a : f.acquires) {
    if (!(a.begin_pos < pos && pos < a.end_pos)) continue;
    if (a.via_callee >= 0) {
      const auto& acq = program.functions[a.via_callee].acq_all;
      held.insert(acq.begin(), acq.end());
    } else {
      held.insert(a.class_symbol);
    }
  }
  return held;
}

bool Intersects(const std::set<std::string>& a,
                const std::set<std::string>& b) {
  for (const std::string& s : a) {
    if (b.count(s)) return true;
  }
  return false;
}

bool IsSeqField(const std::string& field) {
  return field.find("seq") != std::string::npos;
}

bool WriteBracketOrder(const std::string& order) {
  return order == "release" || order == "acq_rel" || order == "seq_cst";
}

bool ReadBracketOrder(const std::string& order) {
  // "" means an implicit or default-argument seq_cst access.
  return order.empty() || order == "acquire" || order == "seq_cst";
}

/// Looks for accesses to a companion seq-named atomic of the same owner on
/// both sides of `pos` within the same function. Returns 0 when there is
/// no bracket, 1 for a correctly-ordered bracket, -1 for a bracket whose
/// memory orders are too weak to order the protected accesses.
int SeqlockBracket(const FunctionInfo& fn, const AtomicAccess& at,
                   bool write_side) {
  const AtomicAccess* before = nullptr;
  const AtomicAccess* after = nullptr;
  for (const AtomicAccess& other : fn.atomics) {
    if (other.owner != at.owner || !IsSeqField(other.field)) continue;
    const bool shape_ok = write_side
                              ? other.kind == AtomicAccess::Kind::kRmw
                              : other.kind == AtomicAccess::Kind::kLoad;
    if (!shape_ok) continue;
    if (other.pos < at.pos &&
        (before == nullptr || other.pos > before->pos)) {
      before = &other;
    }
    if (other.pos > at.pos && (after == nullptr || other.pos < after->pos)) {
      after = &other;
    }
  }
  if (before == nullptr || after == nullptr) return 0;
  auto order_ok = [&](const AtomicAccess& a) {
    return write_side ? WriteBracketOrder(a.order) : ReadBracketOrder(a.order);
  };
  return order_ok(*before) && order_ok(*after) ? 1 : -1;
}

}  // namespace

void RunAtomicPublicationPass(Program* program,
                              std::vector<Finding>* findings) {
  auto add = [&](const FunctionInfo& fn, const AtomicAccess& at,
                 const std::string& msg, const std::string& level) {
    Finding fd;
    fd.rule = "atomic-publication";
    fd.file = fn.file;
    fd.line = at.line;
    fd.message = msg;
    fd.level = level;
    findings->push_back(fd);
  };

  // Group every atomic access by (owner class, field path).
  std::map<std::pair<std::string, std::string>, std::vector<SiteInfo>> fields;
  for (const FunctionInfo& f : program->functions) {
    for (const AtomicAccess& at : f.atomics) {
      SiteInfo site;
      site.fn = &f;
      site.access = &at;
      site.held = HeldAt(*program, f, at.pos);
      fields[{at.owner, at.field}].push_back(site);
    }
  }

  for (const auto& [key, sites] : fields) {
    // Infer the owning lock: intersection of held sets over all stores.
    bool has_store = false;
    std::set<std::string> owning;
    bool first_store = true;
    for (const SiteInfo& s : sites) {
      if (s.access->kind != AtomicAccess::Kind::kStore) continue;
      has_store = true;
      if (first_store) {
        owning = s.held;
        first_store = false;
      } else {
        std::set<std::string> both;
        for (const std::string& sym : owning) {
          if (s.held.count(sym)) both.insert(sym);
        }
        owning = std::move(both);
      }
    }
    // No stores (counter RMWed in place) or no consistent owning lock
    // (lock-free field): no publication protocol to enforce.
    if (!has_store || owning.empty()) continue;

    // Readers outside the owning lock are what make the field published.
    bool outside_reader = false;
    for (const SiteInfo& s : sites) {
      if (s.access->kind == AtomicAccess::Kind::kLoad &&
          !Intersects(s.held, owning)) {
        outside_reader = true;
        break;
      }
    }
    if (!outside_reader) continue;

    const std::string what =
        "'" + key.first + "::" + key.second + "' (published: stored under " +
        *owning.begin() + ", read outside it)";

    for (const SiteInfo& s : sites) {
      const AtomicAccess& at = *s.access;
      if (at.kind == AtomicAccess::Kind::kStore) {
        if (at.order == "relaxed") {
          const int bracket = SeqlockBracket(*s.fn, at, /*write_side=*/true);
          if (bracket == 1) continue;
          if (bracket == -1) {
            add(*s.fn, at,
                "relaxed store to " + what +
                    " sits inside a seqlock bracket whose seq counter "
                    "updates are not release-ordered; use fetch_add(1, "
                    "memory_order_release) on both sides",
                "error");
          } else {
            add(*s.fn, at,
                "relaxed store to " + what +
                    " is not ordered: a reader outside the lock can observe "
                    "the pointer/value before the writes it guards; use "
                    "memory_order_release (or bracket with a seq counter)",
                "error");
          }
        } else if (!at.explicit_order && at.order.empty()) {
          add(*s.fn, at,
              "store to " + what +
                  " relies on an implicit memory order; make the "
                  "publication explicit with memory_order_release",
              "warning");
        }
      } else if (at.kind == AtomicAccess::Kind::kLoad &&
                 !Intersects(s.held, owning)) {
        if (at.order == "relaxed") {
          const int bracket = SeqlockBracket(*s.fn, at, /*write_side=*/false);
          if (bracket == 1) continue;
          if (bracket == -1) {
            add(*s.fn, at,
                "relaxed load of " + what +
                    " sits inside a seqlock read bracket whose seq counter "
                    "loads are not acquire-ordered; load the seq counter "
                    "with memory_order_acquire on both sides",
                "error");
          } else {
            add(*s.fn, at,
                "relaxed load of " + what +
                    " outside its owning lock; the reader can see the "
                    "published value without the writes that precede it; "
                    "use memory_order_acquire (or a seqlock read bracket)",
                "error");
          }
        }
      }
    }
  }
}

}  // namespace gknn::check
