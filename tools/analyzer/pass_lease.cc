// StreamLease lifetime pass.
//
// Scheduler::Lease is a move-only RAII slot on a device stream. Three
// protocol violations are checked per function:
//
//   1. Escape — returning a lease (by name or std::move) or storing it
//      into a member lets it outlive the scheduler epoch that issued it.
//   2. Use after move — a forward may-moved dataflow over the CFG marks
//      every block reachable from a std::move(lease); any later use of
//      the moved-from lease is flagged.
//   3. Fold while live — DeviceSet::FoldDeviceMetrics drains per-stream
//      counters; running it while a lease is still held double-counts the
//      in-flight stream's work when the lease destructor retires it.

#include <string>
#include <vector>

#include "dataflow.h"
#include "passes.h"

namespace gknn::check {

void RunLeaseLifetimePass(Program* program, std::vector<Finding>* findings) {
  auto add = [&](const FunctionInfo& f, int line, const std::string& msg) {
    Finding fd;
    fd.rule = "lease-lifetime";
    fd.file = f.file;
    fd.line = line;
    fd.message = msg;
    fd.level = "error";
    findings->push_back(fd);
  };

  for (const FunctionInfo& f : program->functions) {
    if (f.leases.empty()) continue;

    for (const LeaseEscape& esc : f.lease_escapes) {
      if (esc.kind == LeaseEscape::Kind::kReturn) {
        add(f, esc.line,
            "stream lease '" + esc.name +
                "' is returned from '" + f.qualified_name +
                "'; leases must not escape their acquiring scope — do the "
                "stream work here and let the lease retire");
      } else {
        add(f, esc.line,
            "stream lease '" + esc.name + "' is stored into member '" +
                esc.detail +
                "'; leases must not outlive their acquiring scope");
      }
    }

    // --- Use after move (may-analysis, union meet). ---
    if (!f.lease_moves.empty() && !f.cfg.blocks.empty()) {
      ForwardDataflow moved(f.cfg, static_cast<int>(f.leases.size()),
                            ForwardDataflow::Meet::kUnion);
      auto lease_index = [&](const std::string& name) {
        for (size_t k = 0; k < f.leases.size(); ++k) {
          if (f.leases[k].name == name) return static_cast<int>(k);
        }
        return -1;
      };
      for (const LeaseMove& mv : f.lease_moves) {
        moved.AddGen(f.cfg.BlockAt(mv.pos), lease_index(mv.name));
      }
      moved.Solve();
      for (const LeaseUse& use : f.lease_uses) {
        const int idx = lease_index(use.name);
        if (idx < 0) continue;
        const int block = f.cfg.BlockAt(use.pos);
        bool after_move = block >= 0 && moved.InHas(block, idx);
        if (!after_move) {
          for (const LeaseMove& mv : f.lease_moves) {
            if (mv.name == use.name && mv.pos < use.pos &&
                f.cfg.BlockAt(mv.pos) == block) {
              after_move = true;
              break;
            }
          }
        }
        if (after_move) {
          add(f, use.line,
              "stream lease '" + use.name + "' is used" +
                  (use.member.empty() ? "" : " ('" + use.member + "')") +
                  " after being moved away; the moved-from lease no longer "
                  "owns a stream slot");
        }
      }
    }

    // --- DeviceSet metrics fold while a lease is live. ---
    for (const CallEvent& c : f.calls) {
      if (c.callee_name != "FoldDeviceMetrics") continue;
      for (const LeaseVar& lv : f.leases) {
        if (!(lv.pos < c.pos && c.pos < lv.scope_end)) continue;
        bool moved_before = false;
        for (const LeaseMove& mv : f.lease_moves) {
          if (mv.name == lv.name && mv.pos < c.pos) {
            moved_before = true;
            break;
          }
        }
        if (moved_before) continue;
        add(f, c.line,
            "DeviceSet metrics fold runs while stream lease '" + lv.name +
                "' (acquired at line " + std::to_string(lv.line) +
                ") is still live; release the lease first so its stream's "
                "counters are retired exactly once");
      }
    }
  }
}

}  // namespace gknn::check
