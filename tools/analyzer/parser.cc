#include "parser.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace gknn::check {
namespace {

using Tokens = std::vector<Token>;
constexpr size_t kNpos = static_cast<size_t>(-1);

bool IsKeyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",       "for",     "while",    "switch",   "return", "sizeof",
      "catch",    "new",     "delete",   "alignof",  "noexcept",
      "decltype", "static_assert",       "throw",    "co_return",
      "case",     "default", "do",       "else",     "goto",   "try",
      "alignas",  "typeid",  "co_await", "co_yield",
  };
  return kw.count(s) > 0;
}

bool IsSpecifier(const std::string& s) {
  static const std::set<std::string> sp = {
      "inline",    "static",   "virtual",      "explicit", "constexpr",
      "constinit", "consteval", "extern",      "friend",   "mutable",
      "typename",  "register", "thread_local", "volatile",
  };
  return sp.count(s) > 0;
}

bool IsGuardName(const std::string& s) {
  return s == "MutexLock" || s == "UniqueLock" || s == "SharedLock" ||
         s == "ExclusiveLock" || s == "MultiLock";
}

bool IsLockWrapperType(const std::string& s) {
  return s == "Mutex" || s == "SharedMutex" || s == "StripedMutexes";
}

/// `<` opens a template argument list (rather than being a comparison) when
/// it directly follows an identifier or `::`. Inside the declaration
/// headers this scanner looks at, that heuristic is exact.
bool CanOpenAngle(const Tokens& t, size_t j) {
  if (j == 0) return false;
  const Token& p = t[j - 1];
  if (p.kind == TokenKind::kIdent && !IsKeyword(p.text)) return true;
  return p.IsPunct("::");
}

/// t[open] is one of ( [ { — returns the index just past the matching
/// close, counting only that pair (other pairs nest in a balanced way).
size_t SkipBalancedForward(const Tokens& t, size_t open) {
  const std::string& o = t[open].text;
  const std::string c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (size_t j = open; j < t.size() && !t[j].Is(TokenKind::kEnd, ""); ++j) {
    if (t[j].kind != TokenKind::kPunct) continue;
    if (t[j].text == o) ++depth;
    if (t[j].text == c && --depth == 0) return j + 1;
  }
  return t.size() - 1;
}

/// t[open] is `<` — returns the index just past the matching `>`,
/// understanding `>>` as two closes.
size_t SkipAnglesForward(const Tokens& t, size_t open) {
  int depth = 0;
  for (size_t j = open; j < t.size() && !t[j].Is(TokenKind::kEnd, ""); ++j) {
    if (t[j].kind != TokenKind::kPunct) continue;
    if (t[j].text == "<") ++depth;
    if (t[j].text == "<<") depth += 2;
    if (t[j].text == ">") {
      if (--depth == 0) return j + 1;
    }
    if (t[j].text == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    }
  }
  return t.size() - 1;
}

/// t[close] is ) ] } — returns the index of the matching open.
size_t SkipBalancedBackward(const Tokens& t, size_t close) {
  const std::string& c = t[close].text;
  const std::string o = c == ")" ? "(" : c == "]" ? "[" : "{";
  int depth = 0;
  for (size_t j = close + 1; j-- > 0;) {
    if (t[j].kind != TokenKind::kPunct) continue;
    if (t[j].text == c) ++depth;
    if (t[j].text == o && --depth == 0) return j;
  }
  return 0;
}

/// t[close] is `>` closing a template argument list — index of its `<`.
size_t SkipAnglesBackward(const Tokens& t, size_t close) {
  int depth = 0;
  for (size_t j = close + 1; j-- > 0;) {
    if (t[j].kind != TokenKind::kPunct) continue;
    if (t[j].text == ">") ++depth;
    if (t[j].text == "<" && --depth == 0) return j;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Type analysis
// ---------------------------------------------------------------------------

bool IsWrapperTemplate(const std::string& s) {
  return s == "unique_ptr" || s == "shared_ptr" || s == "Result" ||
         s == "optional" || s == "StatusOr";
}

struct BasePick {
  size_t id_pos = kNpos;
  size_t group_b = 0, group_e = 0;  // token range inside <...>, if any
};

/// Last top-level identifier in [b, e), with its template argument group.
BasePick PickBase(const Tokens& t, size_t b, size_t e) {
  BasePick out;
  size_t j = b;
  while (j < e) {
    const Token& tk = t[j];
    if (tk.kind == TokenKind::kIdent && !IsSpecifier(tk.text) &&
        tk.text != "const" && tk.text != "unsigned" && tk.text != "signed") {
      out.id_pos = j;
      out.group_b = out.group_e = 0;
      if (j + 1 < e && t[j + 1].IsPunct("<") && CanOpenAngle(t, j + 1)) {
        const size_t after = SkipAnglesForward(t, j + 1);
        if (after <= e) {
          out.group_b = j + 2;
          out.group_e = after - 1;
          j = after;
          continue;
        }
      }
      ++j;
      continue;
    }
    if (tk.IsPunct("[") && j + 1 < e && t[j + 1].IsPunct("[")) {
      // attribute [[...]]
      size_t k = j + 2;
      while (k + 1 < e && !(t[k].IsPunct("]") && t[k + 1].IsPunct("]"))) ++k;
      j = k + 2;
      continue;
    }
    ++j;
  }
  return out;
}

struct TypeSig {
  std::string key;
  bool status = false;
  bool guard = false;
};

/// Classifies the return/declared type spelled by tokens [b, e): unwraps
/// smart pointers and Result to the pointee, flags Status/Result/MultiLock.
TypeSig AnalyzeTypeTokens(const Tokens& t, size_t b, size_t e) {
  TypeSig sig;
  BasePick pick = PickBase(t, b, e);
  if (pick.id_pos == kNpos) return sig;
  std::string base = t[pick.id_pos].text;
  if (base == "Status" || base == "Result" || base == "StatusOr")
    sig.status = true;
  if (base == "MultiLock") sig.guard = true;
  // Unwrap wrappers to the pointee for receiver typing.
  int fuel = 4;
  while (IsWrapperTemplate(base) && pick.group_b < pick.group_e && fuel-- > 0) {
    pick = PickBase(t, pick.group_b, pick.group_e);
    if (pick.id_pos == kNpos) break;
    base = t[pick.id_pos].text;
  }
  sig.key = base;
  return sig;
}

RetSig ToRetSig(const TypeSig& ts) {
  RetSig r;
  r.type_key = ts.key;
  r.status = ts.status;
  r.guard = ts.guard;
  r.known = true;
  return r;
}

void MergeRet(std::map<std::string, RetSig>* table, const std::string& name,
              const RetSig& sig) {
  auto it = table->find(name);
  if (it == table->end() || !it->second.known) (*table)[name] = sig;
}

void NoteNameStatus(Program* program, const std::string& name,
                    const TypeSig& sig) {
  if (sig.status) {
    program->status_names.insert(name);
  } else {
    program->nonstatus_names.insert(name);
  }
}

// ---------------------------------------------------------------------------
// Phase A
// ---------------------------------------------------------------------------

/// The name chain directly before the parameter `(` at `paren`:
/// `DrainIfPending` → {DrainIfPending}; `QueryServer::DrainIfPending` →
/// {QueryServer, DrainIfPending}. Empty for operators and destructors.
struct NameChain {
  std::vector<std::string> names;
  size_t start_pos = kNpos;  // token index of the first chain identifier
};

NameChain ExtractNameChain(const Tokens& t, size_t paren) {
  NameChain out;
  if (paren == 0) return out;
  size_t j = paren - 1;
  if (t[j].IsPunct(">")) {
    const size_t open = SkipAnglesBackward(t, j);
    if (open == 0) return out;
    j = open - 1;
  }
  if (t[j].kind != TokenKind::kIdent) return out;
  if (t[j].text == "operator") return out;
  out.names.push_back(t[j].text);
  out.start_pos = j;
  while (j >= 2 && t[j - 1].IsPunct("::")) {
    size_t k = j - 2;
    if (t[k].IsPunct(">")) {
      const size_t open = SkipAnglesBackward(t, k);
      if (open == 0) break;
      k = open - 1;
    }
    if (t[k].kind != TokenKind::kIdent) break;
    out.names.insert(out.names.begin(), t[k].text);
    out.start_pos = k;
    j = k;
  }
  if (out.start_pos > 0 && t[out.start_pos - 1].IsPunct("~")) {
    out.names.clear();  // destructor: consume the body, register nothing
  }
  return out;
}

/// Extracts a member/global variable declaration from [b, stop): name,
/// declared-type slice, initializer slice. Returns false when no name.
struct VarDecl {
  std::string name;
  size_t type_b = 0, type_e = 0;
  size_t init_b = 0, init_e = 0;  // tokens after the name, before ';'
};

bool ExtractVarDecl(const Tokens& t, size_t b, size_t stop, VarDecl* out) {
  int pd = 0, bd = 0, ad = 0;
  size_t name_pos = kNpos;
  size_t init_start = stop;
  for (size_t j = b; j < stop; ++j) {
    const Token& tk = t[j];
    if (tk.kind == TokenKind::kPunct) {
      const std::string& s = tk.text;
      if (s == "(") ++pd;
      else if (s == ")") --pd;
      else if (s == "<" && CanOpenAngle(t, j)) ++ad;
      else if (s == ">" && ad > 0) --ad;
      else if (s == ">>" && ad > 0) ad = std::max(0, ad - 2);
      else if (pd == 0 && bd == 0 && ad == 0 &&
               (s == "=" || s == "{" || s == "[")) {
        init_start = j;
        break;
      }
      if (s == "[") ++bd;
      else if (s == "]") --bd;
    } else if (tk.kind == TokenKind::kIdent && pd == 0 && bd == 0 && ad == 0) {
      name_pos = j;
    }
  }
  if (name_pos == kNpos || name_pos >= init_start) {
    // Name may come after re-scan boundary (e.g. `int x[3];` name before
    // '['): name_pos tracked the last zero-depth ident before init_start.
    if (name_pos == kNpos) return false;
  }
  out->name = t[name_pos].text;
  out->type_b = b;
  out->type_e = name_pos;
  out->init_b = init_start;
  out->init_e = stop;
  return true;
}

/// Finds a lock class symbol (an identifier registered in the lockdep
/// table, or failing that a `k...Class` identifier) in tokens [b, e).
std::string FindLockSymbol(const Tokens& t, size_t b, size_t e,
                           const Program& program) {
  std::string fallback;
  for (size_t j = b; j < e; ++j) {
    if (t[j].kind != TokenKind::kIdent) continue;
    const std::string& s = t[j].text;
    if (program.locks.by_symbol.count(s)) return s;
    if (fallback.empty() && s.size() > 6 && s[0] == 'k' &&
        s.compare(s.size() - 5, 5, "Class") == 0) {
      fallback = s;
    }
  }
  return fallback;
}

struct Frame {
  bool is_class = false;
  std::string class_name;
};

size_t SkipToSemi(const Tokens& t, size_t i) {
  int pd = 0, brace = 0;
  for (size_t j = i; j < t.size() && !t[j].Is(TokenKind::kEnd, ""); ++j) {
    if (t[j].kind != TokenKind::kPunct) continue;
    if (t[j].text == "(") ++pd;
    else if (t[j].text == ")") --pd;
    else if (t[j].text == "{") ++brace;
    else if (t[j].text == "}") --brace;
    else if (t[j].text == ";" && pd == 0 && brace == 0) return j + 1;
  }
  return t.size() - 1;
}

/// Scans one declaration-or-definition starting at `i` (namespace or class
/// scope). Registers what it finds and returns the index to resume at.
size_t DeclOrFunction(const LexedFile& file, size_t i, const std::string& cls,
                      bool at_class_scope, Program* program) {
  const Tokens& t = file.tokens;
  const size_t n = t.size();
  size_t j = i;
  int pd = 0, bd = 0, ad = 0;
  size_t top_paren = kNpos, top_paren_close = kNpos;
  bool seen_eq = false;
  size_t stop = kNpos;
  bool body = false;

  while (j < n && !t[j].Is(TokenKind::kEnd, "")) {
    const Token& tk = t[j];
    if (tk.kind != TokenKind::kPunct) {
      ++j;
      continue;
    }
    const std::string& s = tk.text;
    if (s == "(") {
      if (pd == 0 && bd == 0 && ad == 0 && top_paren == kNpos && !seen_eq &&
          j > i &&
          (t[j - 1].kind == TokenKind::kIdent || t[j - 1].IsPunct(">"))) {
        top_paren = j;
      }
      ++pd;
    } else if (s == ")") {
      --pd;
      if (pd == 0 && bd == 0 && top_paren != kNpos &&
          top_paren_close == kNpos) {
        top_paren_close = j;
      }
    } else if (s == "[") {
      ++bd;
    } else if (s == "]") {
      --bd;
    } else if (s == "<") {
      if (CanOpenAngle(t, j)) ++ad;
    } else if (s == ">") {
      if (ad > 0) --ad;
    } else if (s == ">>") {
      if (ad > 0) ad = std::max(0, ad - 2);
    } else if (s == "=") {
      if (pd == 0 && bd == 0 && ad == 0) seen_eq = true;
    } else if (s == ";") {
      if (pd == 0 && bd == 0) {
        stop = j;
        break;
      }
    } else if (s == "{") {
      if (pd == 0 && bd == 0) {
        if (seen_eq) {
          j = SkipBalancedForward(t, j);
          continue;
        }
        if (top_paren_close != kNpos) {
          body = true;
          stop = j;
          break;
        }
        // Brace-initialized variable: `Foo x{...};` — consume the group.
        j = SkipBalancedForward(t, j);
        continue;
      }
    } else if (s == ":" && pd == 0 && bd == 0 && ad == 0 &&
               top_paren_close != kNpos && !seen_eq) {
      // Constructor initializer list: `name(...)` / `name{...}` items,
      // then the body `{`.
      size_t k = j + 1;
      while (k < n && !t[k].Is(TokenKind::kEnd, "")) {
        if (t[k].IsPunct("(")) {
          k = SkipBalancedForward(t, k);
          continue;
        }
        if (t[k].IsPunct("{")) {
          if (k > 0 && t[k - 1].kind == TokenKind::kIdent) {
            k = SkipBalancedForward(t, k);
            continue;
          }
          body = true;
          stop = k;
          break;
        }
        ++k;
      }
      if (body) break;
      return k;  // malformed; bail past it
    }
    ++j;
  }
  if (stop == kNpos) return n - 1;

  if (!body) {
    if (top_paren != kNpos && !seen_eq) {
      // Function/method declaration (or, at namespace scope, a variable
      // with constructor arguments — harmless to record as a signature).
      NameChain chain = ExtractNameChain(t, top_paren);
      if (!chain.names.empty()) {
        const std::string& name = chain.names.back();
        const TypeSig sig = AnalyzeTypeTokens(t, i, chain.start_pos);
        const RetSig ret = ToRetSig(sig);
        std::string owner = at_class_scope ? cls : std::string();
        if (!at_class_scope && chain.names.size() > 1) {
          owner = chain.names[chain.names.size() - 2];
        }
        if (!owner.empty()) {
          MergeRet(&program->classes[owner].method_return, name, ret);
        } else {
          MergeRet(&program->free_returns, name, ret);
        }
        if (name != owner) NoteNameStatus(program, name, sig);
      }
    } else {
      VarDecl var;
      if (ExtractVarDecl(t, i, stop, &var)) {
        const TypeSig sig = AnalyzeTypeTokens(t, var.type_b, var.type_e);
        bool is_lockdep = false;
        for (size_t k = var.type_b; k < var.type_e; ++k) {
          if (t[k].IsIdent("lockdep")) is_lockdep = true;
        }
        if (is_lockdep && IsLockWrapperType(sig.key)) {
          const std::string symbol =
              FindLockSymbol(t, var.init_b, var.init_e, *program);
          if (!symbol.empty()) {
            if (at_class_scope) {
              ClassInfo& ci = program->classes[cls];
              ci.lock_members[var.name] = symbol;
              if (sig.key == "SharedMutex")
                ci.shared_lock_members.insert(var.name);
              if (sig.key == "StripedMutexes")
                ci.striped_lock_members.insert(var.name);
            } else {
              program->global_lock_vars[var.name] = symbol;
              if (sig.key == "SharedMutex")
                program->global_shared_lock_vars.insert(var.name);
            }
          }
        } else if (at_class_scope && !sig.key.empty()) {
          ClassInfo& ci = program->classes[cls];
          ci.members[var.name] = sig.key;
          // std::atomic anywhere in the declared type (including
          // array<atomic<T>, N>) makes element accesses atomic.
          for (size_t k = var.type_b; k < var.type_e; ++k) {
            if (t[k].IsIdent("atomic")) {
              ci.atomic_members.insert(var.name);
              break;
            }
          }
        }
      }
    }
    return stop + 1;
  }

  // Function definition: stop is the body '{'.
  const size_t after_body = SkipBalancedForward(t, stop);
  NameChain chain = ExtractNameChain(t, top_paren);
  if (chain.names.empty()) return after_body;
  const std::string& name = chain.names.back();
  std::string class_name = at_class_scope ? cls : std::string();
  if (!at_class_scope && chain.names.size() > 1) {
    class_name = chain.names[chain.names.size() - 2];
  }
  const TypeSig sig = AnalyzeTypeTokens(t, i, chain.start_pos);

  FunctionInfo f;
  f.id = static_cast<int>(program->functions.size());
  f.class_name = class_name;
  f.qualified_name = class_name.empty() ? name : class_name + "::" + name;
  f.file = file.path;
  f.line = t[chain.start_pos].line;
  f.return_type = sig.key;
  f.returns_status = sig.status;
  f.returns_guard = sig.guard;
  f.is_definition = true;
  f.body_begin = stop + 1;
  f.body_end = after_body > 0 ? after_body - 1 : stop + 1;
  program->functions_by_name[name].push_back(f.id);
  program->functions.push_back(std::move(f));

  const RetSig ret = ToRetSig(sig);
  if (!class_name.empty()) {
    MergeRet(&program->classes[class_name].method_return, name, ret);
  } else {
    MergeRet(&program->free_returns, name, ret);
  }
  if (name != class_name) NoteNameStatus(program, name, sig);
  return after_body;
}

}  // namespace

void ScanStructure(const LexedFile& file, Program* program) {
  const Tokens& t = file.tokens;
  const size_t n = t.size();
  std::vector<Frame> frames;
  auto current_class = [&]() -> std::pair<bool, std::string> {
    if (!frames.empty() && frames.back().is_class) {
      return {true, frames.back().class_name};
    }
    return {false, ""};
  };

  size_t i = 0;
  while (i + 1 < n && !t[i].Is(TokenKind::kEnd, "")) {
    const Token& tk = t[i];
    if (tk.IsPunct("}")) {
      if (!frames.empty()) frames.pop_back();
      ++i;
      // Class definitions end with `};` — consume the stray semicolon.
      if (i < n && t[i].IsPunct(";")) ++i;
      continue;
    }
    if (tk.IsPunct("{")) {  // extern "C" or stray block
      frames.push_back({});
      ++i;
      continue;
    }
    if (tk.IsPunct(";")) {
      ++i;
      continue;
    }
    if (tk.IsIdent("namespace")) {
      size_t j = i + 1;
      while (j < n && !t[j].IsPunct("{") && !t[j].IsPunct(";") &&
             !t[j].IsPunct("=")) {
        ++j;
      }
      if (j < n && t[j].IsPunct("{")) {
        frames.push_back({});
        i = j + 1;
      } else {
        i = SkipToSemi(t, j);
      }
      continue;
    }
    if (tk.IsIdent("template")) {
      if (i + 1 < n && t[i + 1].IsPunct("<")) {
        i = SkipAnglesForward(t, i + 1);
      } else {
        ++i;
      }
      continue;
    }
    if (tk.IsIdent("using") || tk.IsIdent("typedef") ||
        tk.IsIdent("static_assert") || tk.IsIdent("friend")) {
      i = SkipToSemi(t, i);
      continue;
    }
    if ((tk.IsIdent("public") || tk.IsIdent("private") ||
         tk.IsIdent("protected")) &&
        i + 1 < n && t[i + 1].IsPunct(":")) {
      i += 2;
      continue;
    }
    if (tk.IsIdent("enum")) {
      size_t j = i + 1;
      while (j < n && !t[j].IsPunct("{") && !t[j].IsPunct(";")) ++j;
      if (j < n && t[j].IsPunct("{")) j = SkipBalancedForward(t, j);
      i = SkipToSemi(t, j);
      continue;
    }
    if (tk.IsIdent("class") || tk.IsIdent("struct") || tk.IsIdent("union")) {
      size_t j = i + 1;
      std::string last_ident;
      size_t open = kNpos;
      int pd = 0;
      while (j < n && !t[j].Is(TokenKind::kEnd, "")) {
        const Token& c = t[j];
        if (c.kind == TokenKind::kIdent) {
          if (c.text != "final" && c.text != "alignas") last_ident = c.text;
          ++j;
          continue;
        }
        if (c.IsPunct("<") && CanOpenAngle(t, j)) {
          j = SkipAnglesForward(t, j);
          continue;
        }
        if (c.IsPunct("(")) ++pd;
        if (c.IsPunct(")")) --pd;
        if (pd == 0 && c.IsPunct(";")) {
          open = kNpos;
          break;  // forward declaration / elaborated specifier
        }
        if (pd == 0 && c.IsPunct(":")) {
          // base clause: scan on to the '{'
          while (j < n && !t[j].IsPunct("{")) {
            if (t[j].IsPunct("<") && CanOpenAngle(t, j)) {
              j = SkipAnglesForward(t, j);
              continue;
            }
            ++j;
          }
          open = j;
          break;
        }
        if (pd == 0 && c.IsPunct("{")) {
          open = j;
          break;
        }
        ++j;
      }
      if (open == kNpos) {
        i = SkipToSemi(t, j);
        continue;
      }
      if (!last_ident.empty()) {
        program->classes[last_ident].name = last_ident;
        frames.push_back({true, last_ident});
      } else {
        frames.push_back({});  // anonymous
      }
      i = open + 1;
      continue;
    }
    const auto [in_class, cls] = current_class();
    i = DeclOrFunction(file, i, cls, in_class, program);
  }
}

// ---------------------------------------------------------------------------
// Phase B
// ---------------------------------------------------------------------------

namespace {

const std::set<std::string>& BlockingNames() {
  static const std::set<std::string> s = {
      "SleepNext",  "sleep_for", "sleep_until", "wait",
      "wait_for",   "wait_until", "join",       "Join",
  };
  return s;
}

const std::set<std::string>& TransferNames() {
  static const std::set<std::string> s = {
      "Upload", "Download", "UploadAsync", "EnqueueH2D", "EnqueueD2H",
  };
  return s;
}

/// One element of a receiver chain, innermost last: for
/// `device_->ledger().RecordH2D(...)` the chain is
/// {device_ (var), ledger (call)} and the callee is RecordH2D.
struct ChainElem {
  std::string name;
  bool is_call = false;
  bool is_index = false;
};

struct Chain {
  std::vector<ChainElem> elems;  // receiver elements, base first
  size_t base_pos = kNpos;       // token index of the base identifier
  bool qualified = false;        // Class::Name(...) form
  std::string qualifier;
};

/// Walks the receiver chain backward from the callee identifier at `pos`.
Chain WalkReceiver(const Tokens& t, size_t pos) {
  Chain out;
  out.base_pos = pos;
  if (pos == 0) return out;
  if (t[pos - 1].IsPunct("::")) {
    size_t k = pos >= 2 ? pos - 2 : 0;
    if (t[k].IsPunct(">")) {
      const size_t open = SkipAnglesBackward(t, k);
      if (open > 0) k = open - 1;
    }
    if (t[k].kind == TokenKind::kIdent) {
      out.qualified = true;
      out.qualifier = t[k].text;
      out.base_pos = k;
      // Walk further qualifiers (util::lockdep::Foo) just for base_pos.
      while (out.base_pos >= 2 && t[out.base_pos - 1].IsPunct("::") &&
             t[out.base_pos - 2].kind == TokenKind::kIdent) {
        out.base_pos -= 2;
      }
    }
    return out;
  }
  size_t j = pos;
  while (j >= 2 && (t[j - 1].IsPunct(".") || t[j - 1].IsPunct("->"))) {
    size_t k = j - 2;
    ChainElem elem;
    if (t[k].IsPunct(")")) {
      const size_t open = SkipBalancedBackward(t, k);
      if (open == 0 || t[open - 1].kind != TokenKind::kIdent) {
        out.elems.clear();
        out.base_pos = pos;
        return out;  // parenthesized expression receiver — give up typing
      }
      elem.is_call = true;
      elem.name = t[open - 1].text;
      k = open - 1;
    } else if (t[k].IsPunct("]")) {
      const size_t open = SkipBalancedBackward(t, k);
      if (open == 0 || t[open - 1].kind != TokenKind::kIdent) {
        out.elems.clear();
        out.base_pos = pos;
        return out;
      }
      elem.is_index = true;
      elem.name = t[open - 1].text;
      k = open - 1;
    } else if (t[k].kind == TokenKind::kIdent) {
      elem.name = t[k].text;
    } else {
      break;
    }
    out.elems.insert(out.elems.begin(), elem);
    out.base_pos = k;
    j = k;
  }
  return out;
}

struct BodyWalker {
  const LexedFile& file;
  const Tokens& t;
  FunctionInfo& f;
  Program& program;
  std::vector<Finding>& findings;
  const ClassInfo* cls;  // enclosing class, or nullptr

  std::map<std::string, std::string> locals;           // name -> type key
  std::map<std::string, std::string> local_lock_vars;  // name -> class symbol
  std::set<std::string> local_shared_lock_vars;

  struct SpanLocal {
    std::string name, buffer;
    bool buffer_local = false;
    int line = 0;
    size_t pos = 0;
    bool reported_pending = false;
    bool invalid = false;
  };
  std::vector<SpanLocal> spans;

  struct StatusLocal {
    std::string name;
    int line = 0;
    size_t decl_end = 0;
  };
  std::vector<StatusLocal> statuses;

  std::set<std::string> pending_streams;
  std::vector<size_t> open_braces;
  std::map<size_t, size_t> close_of;

  BodyWalker(const LexedFile& lf, FunctionInfo& fn, Program& prog,
             std::vector<Finding>& out)
      : file(lf), t(lf.tokens), f(fn), program(prog), findings(out) {
    auto it = program.classes.find(f.class_name);
    cls = it == program.classes.end() ? nullptr : &it->second;
    // Pre-match braces inside the body.
    std::vector<size_t> stack;
    for (size_t j = f.body_begin; j < f.body_end; ++j) {
      if (t[j].IsPunct("{")) stack.push_back(j);
      if (t[j].IsPunct("}") && !stack.empty()) {
        close_of[stack.back()] = j;
        stack.pop_back();
      }
    }
  }

  size_t ScopeClose() const {
    if (open_braces.empty()) return f.body_end;
    auto it = close_of.find(open_braces.back());
    return it == close_of.end() ? f.body_end : it->second;
  }

  std::string TypeOf(const std::string& name) const {
    if (name == "this") return f.class_name;
    auto it = locals.find(name);
    if (it != locals.end()) return it->second;
    if (cls) {
      auto mt = cls->members.find(name);
      if (mt != cls->members.end()) return mt->second;
    }
    return "";
  }

  const RetSig* MethodSig(const std::string& type,
                          const std::string& name) const {
    auto it = program.classes.find(type);
    if (it == program.classes.end()) return nullptr;
    auto mt = it->second.method_return.find(name);
    return mt == it->second.method_return.end() ? nullptr : &mt->second;
  }

  /// Type of the receiver for the call at `pos`, or "".
  std::string ReceiverType(const Chain& chain) const {
    if (chain.elems.empty()) return "";
    std::string type = TypeOf(chain.elems[0].name);
    if (type.empty()) return "";
    for (size_t k = 1; k < chain.elems.size(); ++k) {
      const ChainElem& e = chain.elems[k];
      if (e.is_index) return "";  // container element — unknown
      if (e.is_call) {
        const RetSig* sig = MethodSig(type, e.name);
        if (sig == nullptr || sig->type_key.empty()) return "";
        type = sig->type_key;
      } else {
        auto it = program.classes.find(type);
        if (it == program.classes.end()) return "";
        auto mt = it->second.members.find(e.name);
        if (mt == it->second.members.end()) return "";
        type = mt->second;
      }
    }
    // The first element was typed as a variable; if the chain had N elems
    // the loop above already consumed the rest. For a 1-element chain the
    // receiver type is just the base variable's type.
    return type;
  }

  /// Resolves a call event to function ids (empty = unresolved).
  std::vector<int> Resolve(const std::string& name,
                           const std::string& receiver_type,
                           bool qualified, const std::string& qualifier) {
    auto find_in = [&](const std::string& c) -> int {
      auto it = program.functions_by_name.find(name);
      if (it == program.functions_by_name.end()) return -1;
      for (int id : it->second) {
        if (program.functions[id].class_name == c) return id;
      }
      return -1;
    };
    if (!receiver_type.empty()) {
      const int id = find_in(receiver_type);
      if (id >= 0) return {id};
      return {};
    }
    if (qualified) {
      const int id = find_in(qualifier);
      if (id >= 0) return {id};
      // Namespace qualifier (core::Foo): fall through to by-name.
    } else {
      const int id = find_in(f.class_name);
      if (id >= 0) return {id};
      const int free_id = find_in("");
      if (free_id >= 0) return {free_id};
    }
    auto it = program.functions_by_name.find(name);
    if (it != program.functions_by_name.end() && it->second.size() == 1) {
      return {it->second[0]};
    }
    return {};
  }

  /// Return signature of the call, consulting resolution, then declared
  /// method tables, then free functions.
  RetSig CallSig(const std::string& name, const std::string& receiver_type,
                 bool qualified, const std::string& qualifier,
                 const std::vector<int>& resolved) const {
    if (resolved.size() == 1) {
      const FunctionInfo& g = program.functions[resolved[0]];
      RetSig sig;
      sig.type_key = g.return_type;
      sig.status = g.returns_status;
      sig.guard = g.returns_guard;
      sig.known = true;
      return sig;
    }
    if (!receiver_type.empty()) {
      const RetSig* sig = MethodSig(receiver_type, name);
      if (sig != nullptr) return *sig;
    }
    if (qualified) {
      const RetSig* sig = MethodSig(qualifier, name);
      if (sig != nullptr) return *sig;
    }
    if (!f.class_name.empty()) {
      const RetSig* sig = MethodSig(f.class_name, name);
      if (sig != nullptr) return *sig;
    }
    auto it = program.free_returns.find(name);
    if (it != program.free_returns.end()) return it->second;
    return RetSig{};
  }

  /// Resolves the lock class of a guard constructor argument [b, e).
  std::string ResolveMutexExpr(size_t b, size_t e, bool* shared_mutex) {
    size_t j = b;
    while (j < e && (t[j].IsPunct("&") || t[j].IsPunct("*"))) ++j;
    if (j >= e || t[j].kind != TokenKind::kIdent) return "";
    std::string base = t[j].text;
    // this->member
    if (base == "this" && j + 2 < e && t[j + 1].IsPunct("->")) {
      j += 2;
      base = t[j].text;
    }
    const bool has_field =
        j + 2 < e && (t[j + 1].IsPunct(".") || t[j + 1].IsPunct("->")) &&
        t[j + 2].kind == TokenKind::kIdent;
    if (has_field) {
      const std::string type = TypeOf(base);
      auto it = program.classes.find(type);
      if (it == program.classes.end()) return "";
      auto lm = it->second.lock_members.find(t[j + 2].text);
      if (lm == it->second.lock_members.end()) return "";
      if (shared_mutex != nullptr) {
        *shared_mutex = it->second.shared_lock_members.count(t[j + 2].text) > 0;
      }
      return lm->second;
    }
    auto llv = local_lock_vars.find(base);
    if (llv != local_lock_vars.end()) {
      if (shared_mutex != nullptr) {
        *shared_mutex = local_shared_lock_vars.count(base) > 0;
      }
      return llv->second;
    }
    if (cls != nullptr) {
      auto lm = cls->lock_members.find(base);
      if (lm != cls->lock_members.end()) {
        if (shared_mutex != nullptr) {
          *shared_mutex = cls->shared_lock_members.count(base) > 0;
        }
        return lm->second;
      }
    }
    auto gv = program.global_lock_vars.find(base);
    if (gv != program.global_lock_vars.end()) {
      if (shared_mutex != nullptr) {
        *shared_mutex = program.global_shared_lock_vars.count(base) > 0;
      }
      return gv->second;
    }
    return "";
  }

  /// A receiver chain plus leaf resolved to a dotted member path of the
  /// enclosing class (`this->` allowed; locals shadow members).
  struct FieldPath {
    std::string path;
    bool atomic = false;  // atomicity of the LAST path element
    bool ok = false;
  };

  FieldPath ResolveFieldPath(const std::vector<ChainElem>& elems) const {
    FieldPath out;
    if (cls == nullptr || elems.empty()) return out;
    size_t k = 0;
    if (elems[0].name == "this") {
      ++k;
      if (k >= elems.size()) return out;
    } else if (locals.count(elems[0].name)) {
      return out;  // a local shadows any member of the same name
    }
    const ClassInfo* ci = cls;
    for (; k < elems.size(); ++k) {
      const ChainElem& e = elems[k];
      if (e.is_call || ci == nullptr) return FieldPath{};
      auto mt = ci->members.find(e.name);
      if (mt == ci->members.end()) return FieldPath{};
      out.atomic = ci->atomic_members.count(e.name) > 0;
      if (!out.path.empty()) out.path += ".";
      out.path += e.name;
      auto nx = program.classes.find(mt->second);
      ci = nx == program.classes.end() ? nullptr : &nx->second;
    }
    out.ok = true;
    return out;
  }

  /// Parses the explicit memory_order argument (if any) of the atomic
  /// operation whose argument list spans (b, e): both the classic
  /// `std::memory_order_release` spelling and `memory_order::release`.
  static void ParseOrder(const Tokens& t, size_t b, size_t e,
                         AtomicAccess* access) {
    for (size_t k = b; k < e; ++k) {
      if (t[k].kind != TokenKind::kIdent) continue;
      const std::string& s = t[k].text;
      if (s.rfind("memory_order_", 0) == 0) {
        access->explicit_order = true;
        access->order = s.substr(13);
        return;
      }
      if (s == "memory_order" && k + 2 < e && t[k + 1].IsPunct("::") &&
          t[k + 2].kind == TokenKind::kIdent) {
        access->explicit_order = true;
        access->order = t[k + 2].text;
        return;
      }
    }
  }

  void AddAtomicAccess(AtomicAccess::Kind kind, const FieldPath& fp,
                       size_t order_b, size_t order_e, int line, size_t pos) {
    AtomicAccess aa;
    aa.kind = kind;
    aa.owner = f.class_name;
    aa.field = fp.path;
    aa.line = line;
    aa.pos = pos;
    if (order_e > order_b) ParseOrder(t, order_b, order_e, &aa);
    f.atomics.push_back(aa);
  }

  const LeaseVar* FindLease(const std::string& name) const {
    for (const LeaseVar& lv : f.leases) {
      if (lv.name == name) return &lv;
    }
    return nullptr;
  }

  void NoteLeaseLocal(const std::string& name, int line, size_t pos) {
    LeaseVar lv;
    lv.name = name;
    lv.line = line;
    lv.pos = pos;
    lv.scope_end = ScopeClose();
    f.leases.push_back(lv);
  }

  /// First token of the statement containing `i` (walks back to the
  /// previous ; { or }).
  size_t StmtBegin(size_t i) const {
    size_t j = i;
    while (j > f.body_begin && !(t[j - 1].IsPunct(";") ||
                                 t[j - 1].IsPunct("{") ||
                                 t[j - 1].IsPunct("}"))) {
      --j;
    }
    return j;
  }

  bool StatementStart(size_t i) const {
    size_t j = i;
    while (j > f.body_begin &&
           (t[j - 1].IsIdent("const") || t[j - 1].IsIdent("constexpr") ||
            t[j - 1].IsIdent("static"))) {
      --j;
    }
    if (j == f.body_begin) return true;
    const Token& p = t[j - 1];
    return p.IsPunct(";") || p.IsPunct("{") || p.IsPunct("}");
  }

  /// Typed local declaration: `[const] A::B<...> [&*] name (=|{|(|;)`.
  /// Records the local's type; returns true if matched (never consumes —
  /// the initializer is scanned normally for calls).
  bool TryTypedDecl(size_t i) {
    if (t[i].kind != TokenKind::kIdent || IsKeyword(t[i].text)) return false;
    if (t[i].text == "auto" || t[i].text == "return") return false;
    if (!StatementStart(i)) return false;
    size_t j = i;
    size_t type_b = i;
    // identifier chain with :: and template args
    while (j < f.body_end) {
      if (t[j].kind != TokenKind::kIdent) break;
      ++j;
      if (j < f.body_end && t[j].IsPunct("<") && CanOpenAngle(t, j)) {
        j = SkipAnglesForward(t, j);
      }
      if (j < f.body_end && t[j].IsPunct("::")) {
        ++j;
        continue;
      }
      break;
    }
    const size_t type_e = j;
    if (type_e == type_b) return false;
    while (j < f.body_end && (t[j].IsPunct("&") || t[j].IsPunct("*"))) ++j;
    if (j >= f.body_end || t[j].kind != TokenKind::kIdent) return false;
    const std::string name = t[j].text;
    if (j + 1 >= f.body_end) return false;
    const Token& next = t[j + 1];
    if (!(next.IsPunct("=") || next.IsPunct("{") || next.IsPunct("(") ||
          next.IsPunct(";"))) {
      return false;
    }
    const TypeSig sig = AnalyzeTypeTokens(t, type_b, type_e);
    if (sig.key.empty() || !std::isupper(static_cast<unsigned char>(
                               sig.key[0]))) {
      return false;  // lowercase base — probably not a type we know
    }
    bool is_lockdep = false;
    for (size_t k = type_b; k < type_e; ++k) {
      if (t[k].IsIdent("lockdep")) is_lockdep = true;
    }
    if (is_lockdep && IsLockWrapperType(sig.key)) {
      const size_t stmt_end = SkipToSemi(t, j);
      const std::string symbol = FindLockSymbol(t, j + 1, stmt_end, program);
      if (!symbol.empty()) {
        local_lock_vars[name] = symbol;
        if (sig.key == "SharedMutex") local_shared_lock_vars.insert(name);
      }
      return true;
    }
    locals[name] = sig.key;
    if (sig.key == "Status" || sig.key == "Result" || sig.key == "StatusOr") {
      StatusLocal sv;
      sv.name = name;
      sv.line = t[j].line;
      sv.decl_end = SkipToSemi(t, j);
      statuses.push_back(sv);
    }
    if (sig.key == "Lease") NoteLeaseLocal(name, t[j].line, j);
    return true;
  }

  /// First call chain in [b, e): returns its signature and, via out
  /// params, whether it is a `device_span()` bind and the buffer chain.
  RetSig FirstCallSig(size_t b, size_t e, bool* is_device_span,
                      std::string* buffer, bool* buffer_is_local) {
    for (size_t k = b; k < e; ++k) {
      if (t[k].kind != TokenKind::kIdent || IsKeyword(t[k].text)) continue;
      if (k + 1 >= e || !t[k + 1].IsPunct("(")) continue;
      if (t[k].text == "std" || t[k].text == "move") continue;
      const Chain chain = WalkReceiver(t, k);
      if (t[k].text == "device_span") {
        if (is_device_span != nullptr) *is_device_span = true;
        if (buffer != nullptr && !chain.elems.empty()) {
          *buffer = chain.elems.back().name;
          if (buffer_is_local != nullptr) {
            auto it = locals.find(*buffer);
            *buffer_is_local =
                it != locals.end() && it->second == "DeviceBuffer";
          }
        }
        return RetSig{};
      }
      if (t[k].text == "move") continue;
      const std::string rt = ReceiverType(chain);
      const std::vector<int> ids =
          Resolve(t[k].text, rt, chain.qualified, chain.qualifier);
      return CallSig(t[k].text, rt, chain.qualified, chain.qualifier, ids);
    }
    return RetSig{};
  }

  void AddFinding(const std::string& rule, int line, const std::string& msg,
                  const std::string& level) {
    Finding fd;
    fd.rule = rule;
    fd.file = file.path;
    fd.line = line;
    fd.message = msg;
    fd.level = level;
    findings.push_back(fd);
  }

  void Walk();
  void HandleCall(size_t i);
  void FinishStatuses();
};

void BodyWalker::HandleCall(size_t i) {
  const std::string& name = t[i].text;
  const Chain chain = WalkReceiver(t, i);
  const std::string receiver_type = ReceiverType(chain);

  CallEvent ev;
  ev.callee_name = name;
  ev.receiver_type = receiver_type;
  ev.qualified = chain.qualified;
  ev.qualifier = chain.qualifier;
  ev.line = t[i].line;
  ev.pos = i;
  ev.resolved = Resolve(name, receiver_type, chain.qualified, chain.qualifier);

  // Guard-returning call: the callee's transitive acquires are held until
  // the current scope closes (`auto locks = LockCellStripes(...)`).
  const RetSig sig =
      CallSig(name, receiver_type, chain.qualified, chain.qualifier,
              ev.resolved);
  if (sig.guard && ev.resolved.size() == 1) {
    AcquireEvent acq;
    acq.via_callee = ev.resolved[0];
    acq.multi = true;
    acq.line = t[i].line;
    acq.begin_pos = i;
    acq.end_pos = ScopeClose();
    f.acquires.push_back(acq);
  }

  // Op classification for the blocking-under-shared-lock pass.
  auto add_op = [&](OpCategory cat) {
    OpEvent op;
    op.category = cat;
    op.detail = name;
    op.line = t[i].line;
    op.pos = i;
    f.ops.push_back(op);
  };
  if (BlockingNames().count(name)) add_op(OpCategory::kBlockingWait);
  if (TransferNames().count(name)) add_op(OpCategory::kDeviceTransfer);
  if (name == "Synchronize" || name == "Launch")
    add_op(OpCategory::kDeviceSync);
  if ((name == "Allocate" &&
       ((chain.qualified && chain.qualifier == "DeviceBuffer") ||
        receiver_type == "DeviceBuffer")) ||
      name == "RegisterAlloc") {
    add_op(OpCategory::kDeviceAlloc);
  }
  // Deadline observation points for the deadline-checkpoint pass. Matched
  // by name because parameters are untyped in this parser: `deadline` and
  // `control->deadline` both surface as bare Expired() calls.
  if (name == "Expired" || name == "RemainingSeconds" ||
      name == "CheckBudget") {
    add_op(OpCategory::kDeadlinePoll);
  }

  // Atomic member operations (x_.store(v, order) / load / RMW) feed the
  // atomic-publication pass.
  static const std::set<std::string> kAtomicRmwNames = {
      "exchange",       "fetch_add", "fetch_sub",
      "fetch_and",      "fetch_or",  "fetch_xor",
      "compare_exchange_weak",       "compare_exchange_strong",
  };
  if ((name == "store" || name == "load" || kAtomicRmwNames.count(name)) &&
      !chain.qualified && !chain.elems.empty()) {
    const FieldPath fp = ResolveFieldPath(chain.elems);
    if (fp.ok && fp.atomic) {
      const AtomicAccess::Kind kind =
          name == "store" ? AtomicAccess::Kind::kStore
          : name == "load" ? AtomicAccess::Kind::kLoad
                           : AtomicAccess::Kind::kRmw;
      const size_t after = SkipBalancedForward(t, i + 1);
      AddAtomicAccess(kind, fp, i + 2, after > 0 ? after - 1 : i + 2,
                      t[i].line, i);
    }
  }

  // Mutating container calls on a member (counts as a field write for the
  // shared-write pass).
  static const std::set<std::string> kMutatorNames = {
      "push_back", "pop_back", "emplace_back", "emplace", "clear",
      "insert",    "erase",    "resize",       "reserve", "assign",
  };
  if (kMutatorNames.count(name) && !chain.qualified && !chain.elems.empty()) {
    const FieldPath fp = ResolveFieldPath(chain.elems);
    if (fp.ok && !fp.atomic) {
      FieldWrite fw;
      fw.field = fp.path;
      fw.via_mutator = true;
      fw.line = t[i].line;
      fw.pos = i;
      f.field_writes.push_back(fw);
    }
  }

  // Stream pending-work tracking for the device-span pass.
  if (!chain.elems.empty()) {
    const std::string& base = chain.elems[0].name;
    if (TypeOf(base) == "Stream") {
      if (name == "EnqueueH2D" || name == "EnqueueD2H" ||
          name == "MoveKernelToStream" || name == "UploadAsync") {
        pending_streams.insert(base);
      } else if (name == "Synchronize") {
        pending_streams.erase(base);
      }
    }
    // Buffer invalidation: buf.Release() kills spans bound to buf.
    if (name == "Release") {
      for (SpanLocal& sv : spans) {
        if (sv.buffer == base) sv.invalid = true;
      }
    }
  }

  // Statement-position discard of a Status/Result value.
  const size_t base_pos = chain.base_pos;
  const bool stmt_pos =
      base_pos == f.body_begin ||
      (base_pos > 0 && (t[base_pos - 1].IsPunct(";") ||
                        t[base_pos - 1].IsPunct("{") ||
                        t[base_pos - 1].IsPunct("}")));
  if (stmt_pos) {
    const size_t after = SkipBalancedForward(t, i + 1);
    if (after < f.body_end && t[after].IsPunct(";")) {
      bool drop = false;
      if (sig.known && sig.status) {
        drop = true;
      } else if (!sig.known && program.status_names.count(name) &&
                 !program.nonstatus_names.count(name)) {
        drop = true;
      }
      if (drop) {
        AddFinding("status-drop", t[i].line,
                   "result of '" + name +
                       "' (returns Status/Result) is discarded; check it or "
                       "cast through a named variable",
                   "error");
      }
    }
  }

  f.calls.push_back(ev);
}

void BodyWalker::Walk() {
  for (size_t i = f.body_begin; i < f.body_end; ++i) {
    const Token& tk = t[i];
    if (tk.IsPunct("{")) {
      open_braces.push_back(i);
      continue;
    }
    if (tk.IsPunct("}")) {
      if (!open_braces.empty()) open_braces.pop_back();
      continue;
    }
    if (tk.kind != TokenKind::kIdent) continue;

    // Guard declaration: [util::lockdep::] MutexLock name(expr);
    if (IsGuardName(tk.text) && i + 2 < f.body_end &&
        t[i + 1].kind == TokenKind::kIdent &&
        (t[i + 2].IsPunct("(") || t[i + 2].IsPunct("{"))) {
      const size_t open = i + 2;
      const size_t after = SkipBalancedForward(t, open);
      bool shared_mutex = false;
      const std::string symbol =
          ResolveMutexExpr(open + 1, after > 0 ? after - 1 : open + 1,
                           &shared_mutex);
      if (!symbol.empty()) {
        AcquireEvent acq;
        acq.class_symbol = symbol;
        acq.shared = tk.text == "SharedLock";
        acq.multi = tk.text == "MultiLock";
        acq.line = tk.line;
        acq.begin_pos = i;
        acq.end_pos = ScopeClose();
        f.acquires.push_back(acq);
      }
      i = open;  // args are scanned naturally; the guard var makes no call
      continue;
    }

    // Striped member direct indexing: clean_stripes_[i] is an acquisition
    // point for the striped class (the MultiLock holds it later).
    if (cls != nullptr && cls->striped_lock_members.count(tk.text) &&
        i + 1 < f.body_end && t[i + 1].IsPunct("[")) {
      AcquireEvent acq;
      acq.class_symbol = cls->lock_members.at(tk.text);
      acq.multi = true;
      acq.line = tk.line;
      acq.begin_pos = i;
      acq.end_pos = i;  // degenerate: the hold belongs to the MultiLock
      f.acquires.push_back(acq);
      continue;
    }

    // GKNN_ASSIGN_OR_RETURN(lhs, rexpr): type the lhs from the rexpr.
    if (tk.text == "GKNN_ASSIGN_OR_RETURN" && i + 1 < f.body_end &&
        t[i + 1].IsPunct("(")) {
      const size_t after = SkipBalancedForward(t, i + 1);
      // lhs = tokens up to the first top-level comma.
      size_t comma = kNpos;
      int pd = 0, ad = 0;
      for (size_t k = i + 2; k < after - 1; ++k) {
        if (t[k].IsPunct("(")) ++pd;
        else if (t[k].IsPunct(")")) --pd;
        else if (t[k].IsPunct("<") && CanOpenAngle(t, k)) ++ad;
        else if (t[k].IsPunct(">") && ad > 0) --ad;
        else if (t[k].IsPunct(",") && pd == 0 && ad == 0) {
          comma = k;
          break;
        }
      }
      if (comma != kNpos) {
        std::string lhs_name;
        for (size_t k = i + 2; k < comma; ++k) {
          if (t[k].kind == TokenKind::kIdent && !IsSpecifier(t[k].text) &&
              t[k].text != "auto" && t[k].text != "const") {
            lhs_name = t[k].text;  // last identifier wins
          }
        }
        if (!lhs_name.empty()) {
          bool is_span = false;
          std::string buffer;
          bool buffer_local = false;
          const RetSig sig = FirstCallSig(comma + 1, after - 1, &is_span,
                                          &buffer, &buffer_local);
          if (is_span) {
            SpanLocal sv;
            sv.name = lhs_name;
            sv.buffer = buffer;
            sv.buffer_local = buffer_local;
            sv.line = tk.line;
            sv.pos = i;
            spans.push_back(sv);
          } else if (!sig.type_key.empty()) {
            locals[lhs_name] = sig.type_key;
          }
        }
      }
      // Fall through: the rexpr's calls are scanned by the main loop.
      continue;
    }

    // auto name = expr;  (span binds, status binds, receiver typing)
    if (tk.text == "auto" && StatementStart(i)) {
      size_t j = i + 1;
      while (j < f.body_end && (t[j].IsPunct("&") || t[j].IsPunct("*"))) ++j;
      if (j < f.body_end && t[j].kind == TokenKind::kIdent &&
          j + 1 < f.body_end && t[j + 1].IsPunct("=")) {
        const std::string name = t[j].text;
        const size_t stmt_end = SkipToSemi(t, j + 1);
        bool is_span = false;
        std::string buffer;
        bool buffer_local = false;
        const RetSig sig = FirstCallSig(j + 2, stmt_end - 1, &is_span,
                                        &buffer, &buffer_local);
        if (is_span) {
          SpanLocal sv;
          sv.name = name;
          sv.buffer = buffer;
          sv.buffer_local = buffer_local;
          sv.line = t[j].line;
          sv.pos = j;
          spans.push_back(sv);
        } else if (sig.known) {
          if (!sig.type_key.empty()) locals[name] = sig.type_key;
          if (sig.status) {
            StatusLocal sv;
            sv.name = name;
            sv.line = t[j].line;
            sv.decl_end = stmt_end;
            statuses.push_back(sv);
          }
          if (sig.type_key == "Lease") NoteLeaseLocal(name, t[j].line, j);
        }
      }
      continue;
    }

    // Typed local declarations (records types; does not consume).
    if (TryTypedDecl(i)) {
      // no continue: the same token cannot also start a call (next token
      // is an identifier), so falling through is safe but pointless.
      continue;
    }

    // return <span>; — a raw device span escaping the function.
    if (tk.text == "return" && i + 2 < f.body_end &&
        t[i + 1].kind == TokenKind::kIdent && t[i + 2].IsPunct(";")) {
      for (const SpanLocal& sv : spans) {
        if (sv.name == t[i + 1].text) {
          AddFinding("device-span", tk.line,
                     "device span '" + sv.name + "' (over buffer '" +
                         sv.buffer +
                         "') is returned from the function; raw spans must "
                         "not outlive their scope",
                     "error");
        }
      }
      // return lease; — a stream lease escaping its acquiring scope.
      if (FindLease(t[i + 1].text) != nullptr) {
        LeaseEscape esc;
        esc.kind = LeaseEscape::Kind::kReturn;
        esc.name = t[i + 1].text;
        esc.line = tk.line;
        f.lease_escapes.push_back(esc);
      }
      continue;
    }

    // Lease lifecycle: std::move transfers, uses, return-by-move escapes.
    if (const LeaseVar* lv = FindLease(tk.text);
        lv != nullptr && i != lv->pos) {
      const bool is_move = i >= f.body_begin + 2 && t[i - 1].IsPunct("(") &&
                           t[i - 2].IsIdent("move");
      if (is_move) {
        if (t[StmtBegin(i)].IsIdent("return")) {
          LeaseEscape esc;
          esc.kind = LeaseEscape::Kind::kReturn;
          esc.name = tk.text;
          esc.line = tk.line;
          f.lease_escapes.push_back(esc);
        } else {
          LeaseMove mv;
          mv.name = tk.text;
          mv.line = tk.line;
          mv.pos = i;
          f.lease_moves.push_back(mv);
        }
      } else {
        LeaseUse use;
        use.name = tk.text;
        use.line = tk.line;
        use.pos = i;
        if (i + 2 < f.body_end && t[i + 1].IsPunct(".") &&
            t[i + 2].kind == TokenKind::kIdent) {
          use.member = t[i + 2].text;
        }
        f.lease_uses.push_back(use);
      }
    }

    // Member writes and operator-form atomic accesses. Only the leaf of a
    // member path is inspected — intermediates (next token . -> ::) are
    // reached later in the walk.
    if (cls != nullptr && !IsKeyword(tk.text) && !IsSpecifier(tk.text) &&
        i + 1 < f.body_end && !t[i + 1].IsPunct(".") &&
        !t[i + 1].IsPunct("->") && !t[i + 1].IsPunct("::")) {
      static const std::set<std::string> kAssignOps = {
          "=",  "+=", "-=", "*=",  "/=",  "%=",
          "&=", "|=", "^=", "<<=", ">>=",
      };
      size_t wend = i + 1;
      bool indexed = false;
      if (t[i + 1].IsPunct("[")) {
        wend = SkipBalancedForward(t, i + 1);
        indexed = true;
      }
      const Chain wchain = WalkReceiver(t, i);
      bool write = false, rmw = false;
      if (wend < f.body_end && t[wend].kind == TokenKind::kPunct &&
          kAssignOps.count(t[wend].text)) {
        write = true;
        rmw = !t[wend].IsPunct("=");
      } else if (wend < f.body_end &&
                 (t[wend].IsPunct("++") || t[wend].IsPunct("--"))) {
        write = true;
        rmw = true;
      } else if (wchain.base_pos > f.body_begin &&
                 (t[wchain.base_pos - 1].IsPunct("++") ||
                  t[wchain.base_pos - 1].IsPunct("--"))) {
        write = true;
        rmw = true;
      }
      const bool value_read = !write && !indexed && !t[i + 1].IsPunct("(");
      if (write || value_read) {
        std::vector<ChainElem> full = wchain.elems;
        ChainElem leaf;
        leaf.name = tk.text;
        full.push_back(leaf);
        const FieldPath fp = ResolveFieldPath(full);
        if (fp.ok && write && fp.atomic) {
          // Plain assignment / ++ on an atomic member: a store or RMW at
          // the default order with nothing spelled out.
          AddAtomicAccess(rmw ? AtomicAccess::Kind::kRmw
                              : AtomicAccess::Kind::kStore,
                          fp, 0, 0, tk.line, i);
        } else if (fp.ok && write) {
          FieldWrite fw;
          fw.field = fp.path;
          fw.atomic = false;
          fw.line = tk.line;
          fw.pos = i;
          f.field_writes.push_back(fw);
        }
        if (fp.ok && write && !rmw) {
          // member_ = std::move(lease); — the lease outlives its scope.
          const size_t stmt_end = SkipToSemi(t, wend);
          for (size_t k = wend + 1; k < stmt_end; ++k) {
            if (t[k].kind == TokenKind::kIdent &&
                FindLease(t[k].text) != nullptr) {
              LeaseEscape esc;
              esc.kind = LeaseEscape::Kind::kMemberStore;
              esc.name = t[k].text;
              esc.detail = fp.path;
              esc.line = tk.line;
              f.lease_escapes.push_back(esc);
            }
          }
        }
        if (fp.ok && !write && fp.atomic && value_read) {
          // Implicit value read of an atomic member (default seq_cst).
          AddAtomicAccess(AtomicAccess::Kind::kLoad, fp, 0, 0, tk.line, i);
        }
      }
    }

    // Span variable uses.
    for (SpanLocal& sv : spans) {
      if (tk.text != sv.name || i <= sv.pos + 1) continue;
      if (sv.invalid) {
        AddFinding("device-span", tk.line,
                   "device span '" + sv.name + "' used after buffer '" +
                       sv.buffer + "' was released",
                   "error");
        sv.invalid = false;  // report once
      }
      if (!pending_streams.empty() && !sv.reported_pending) {
        AddFinding(
            "device-span", sv.line,
            "device span '" + sv.name + "' (buffer '" + sv.buffer +
                "') is dereferenced at line " + std::to_string(tk.line) +
                " while a stream has pending asynchronous work; "
                "synchronize first or route through checked accessors",
            "warning");
        sv.reported_pending = true;
      }
    }

    // Member-store escape: member_ = span;
    if (cls != nullptr && cls->members.count(tk.text) && i + 2 < f.body_end &&
        t[i + 1].IsPunct("=") && t[i + 2].kind == TokenKind::kIdent) {
      for (const SpanLocal& sv : spans) {
        if (sv.name == t[i + 2].text) {
          AddFinding("device-span", tk.line,
                     "device span '" + sv.name +
                         "' is stored into member '" + tk.text +
                         "'; raw spans must not outlive their scope",
                     "error");
        }
      }
    }

    // Calls.
    if (i + 1 < f.body_end && t[i + 1].IsPunct("(") && !IsKeyword(tk.text) &&
        !IsGuardName(tk.text)) {
      HandleCall(i);
    }
  }
  FinishStatuses();
}

void BodyWalker::FinishStatuses() {
  for (const StatusLocal& sv : statuses) {
    bool consumed = false;
    for (size_t j = sv.decl_end; j < f.body_end; ++j) {
      if (t[j].kind == TokenKind::kIdent && t[j].text == sv.name) {
        consumed = true;
        break;
      }
    }
    if (!consumed) {
      AddFinding("status-drop", sv.line,
                 "Status/Result value '" + sv.name +
                     "' is assigned but never examined",
                 "warning");
    }
  }
}

}  // namespace

void ExtractEvents(const LexedFile& file, Program* program,
                   std::vector<Finding>* findings) {
  for (FunctionInfo& f : program->functions) {
    if (f.file != file.path || !f.is_definition) continue;
    if (f.body_end <= f.body_begin) continue;
    BodyWalker walker(file, f, *program, *findings);
    walker.Walk();
    f.cfg = BuildCfg(file.tokens, f.body_begin, f.body_end);
  }
}

void StyleScan(const LexedFile& file, bool flag_raw_mutex,
               bool flag_device_span, std::vector<Finding>* findings) {
  static const std::set<std::string> kRawMutexNames = {
      "mutex",         "shared_mutex", "recursive_mutex",
      "timed_mutex",   "lock_guard",   "unique_lock",
      "shared_lock",   "scoped_lock",  "condition_variable",
  };
  const Tokens& t = file.tokens;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (flag_raw_mutex && t[i].IsIdent("std") && t[i + 1].IsPunct("::") &&
        t[i + 2].kind == TokenKind::kIdent &&
        kRawMutexNames.count(t[i + 2].text)) {
      Finding fd;
      fd.rule = "raw-mutex";
      fd.file = file.path;
      fd.line = t[i].line;
      fd.message = "raw std::" + t[i + 2].text +
                   "; use the util::lockdep wrappers so lock ordering is "
                   "validated";
      fd.level = "error";
      findings->push_back(fd);
    }
    if (flag_device_span && t[i + 2].IsIdent("device_span") &&
        (t[i + 1].IsPunct(".") || t[i + 1].IsPunct("->")) &&
        i + 3 < t.size() && t[i + 3].IsPunct("(")) {
      Finding fd;
      fd.rule = "device-span";
      fd.file = file.path;
      fd.line = t[i + 2].line;
      fd.message =
          "raw device_span() access outside src/gpusim/; prefer the checked "
          "Load/Store accessors or justify with a suppression";
      fd.level = "error";
      findings->push_back(fd);
    }
  }
}

}  // namespace gknn::check
