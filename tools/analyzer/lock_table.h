#ifndef GKNN_TOOLS_ANALYZER_LOCK_TABLE_H_
#define GKNN_TOOLS_ANALYZER_LOCK_TABLE_H_

#include <string>

#include "model.h"

namespace gknn::check {

/// Parses the `gknn-lockdep-table-begin/end` block in src/util/lockdep.h:
/// `inline constinit LockClass kFooClass{"a.b", 100, true, false};` rows.
/// Returns false (with *error set) when the file or markers are missing.
bool ParseLockdepHeader(const std::string& path, LockTable* table,
                        std::string* error);

/// Parses the `| rank | \`class.name\` | ...` rows of docs/CONCURRENCY.md.
bool ParseConcurrencyDoc(const std::string& path, LockTable* table,
                         std::string* error);

}  // namespace gknn::check

#endif  // GKNN_TOOLS_ANALYZER_LOCK_TABLE_H_
