// gknn_check — interprocedural static analyzer for this repository's
// lock-order, Status-propagation, device-lifetime, and
// concurrency-protocol invariants.
//
// Usage:
//   gknn_check [--root=DIR] [--sarif=FILE] [--rule=r1,r2] [--compdb=FILE]
//              [--jobs=N] [--dump-lock-graph] [paths...]
//
// Paths (files or directories) default to {src, tools} under --root.
// Exit codes: 0 clean, 1 findings, 2 usage/configuration error.
//
// The per-TU front end (lex + event extraction) runs on N threads
// (default: hardware concurrency); whole-program structure scanning and
// the passes are sequential, and findings are merged in sorted file
// order, so output is identical for every --jobs value.
//
// Suppressions: `// gknn-check: allow(<rule>): reason` (the historical
// `gknn-lint:` prefix is honored too) on the flagged line or in the
// comment block directly above it.

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "lexer.h"
#include "lock_table.h"
#include "model.h"
#include "parser.h"
#include "passes.h"
#include "sarif.h"

namespace fs = std::filesystem;
using namespace gknn::check;

namespace {

std::string ReadAll(const fs::path& path) {
  std::ifstream f(path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

bool HasSourceExt(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp" || ext == ".hpp";
}

std::string Relativize(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty()) return p.generic_string();
  return rel.generic_string();
}

bool IsLockdepFile(const std::string& rel) {
  return rel == "src/util/lockdep.h" || rel == "src/util/lockdep.cc";
}

/// Fixture directories are analyzed as if they lived under src/ so the
/// bad/good example pairs exercise every rule.
bool TreatAsSrc(const std::string& rel) {
  if (rel.rfind("src/", 0) == 0) return true;
  return rel.find("lint_fixtures/") != std::string::npos ||
         rel.find("analyzer_fixtures/") != std::string::npos;
}

/// Parse compile_commands.json just enough to pull out the "file" entries.
std::vector<std::string> CompdbFiles(const std::string& path) {
  std::vector<std::string> out;
  const std::string text = ReadAll(path);
  size_t pos = 0;
  while ((pos = text.find("\"file\"", pos)) != std::string::npos) {
    pos = text.find(':', pos);
    if (pos == std::string::npos) break;
    const size_t q1 = text.find('"', pos);
    if (q1 == std::string::npos) break;
    const size_t q2 = text.find('"', q1 + 1);
    if (q2 == std::string::npos) break;
    out.push_back(text.substr(q1 + 1, q2 - q1 - 1));
    pos = q2 + 1;
  }
  return out;
}

struct SuppressionIndex {
  std::map<int, std::string> comments;
  std::set<int> token_lines;
};

bool AllowedOnLine(const std::string& comment, const std::string& rule) {
  const std::string needle = "allow(" + rule + ")";
  const size_t at = comment.find(needle);
  if (at == std::string::npos) return false;
  // Require one of the recognized marker prefixes somewhere before it.
  const size_t lint = comment.rfind("gknn-lint:", at);
  const size_t check = comment.rfind("gknn-check:", at);
  return lint != std::string::npos || check != std::string::npos;
}

bool IsSuppressed(const SuppressionIndex& idx, int line,
                  const std::string& rule) {
  auto on = [&](int l) {
    auto it = idx.comments.find(l);
    return it != idx.comments.end() && AllowedOnLine(it->second, rule);
  };
  if (on(line)) return true;
  // Walk the comment-only block directly above the flagged line.
  for (int l = line - 1; l >= 1; --l) {
    if (idx.token_lines.count(l)) break;
    if (!idx.comments.count(l)) break;
    if (on(l)) return true;
  }
  return false;
}

void Usage() {
  std::cerr
      << "usage: gknn_check [--root=DIR] [--sarif=FILE] [--rule=r1,r2]\n"
      << "                  [--compdb=FILE] [--jobs=N] [--dump-lock-graph]\n"
      << "                  [paths...]\n"
      << "rules: lock-order shared-block status-drop device-span raw-mutex\n"
      << "       atomic-publication deadline-checkpoint shared-write\n"
      << "       lease-lifetime\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::string sarif_path;
  std::string compdb_path;
  bool dump_lock_graph = false;
  int jobs = static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;
  std::set<std::string> rule_filter;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) {
      return arg.substr(std::string(prefix).size());
    };
    if (arg.rfind("--root=", 0) == 0) {
      root = value("--root=");
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = value("--sarif=");
    } else if (arg.rfind("--compdb=", 0) == 0) {
      compdb_path = value("--compdb=");
    } else if (arg.rfind("--rule=", 0) == 0) {
      std::stringstream ss(value("--rule="));
      std::string r;
      while (std::getline(ss, r, ',')) {
        if (!r.empty()) rule_filter.insert(r);
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = std::atoi(value("--jobs=").c_str());
      if (jobs < 1) {
        std::cerr << "gknn_check: --jobs must be >= 1\n";
        return 2;
      }
    } else if (arg == "--dump-lock-graph") {
      dump_lock_graph = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "gknn_check: unknown flag " << arg << "\n";
      Usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  Program program;
  std::string error;
  const fs::path lockdep_path = root / "src" / "util" / "lockdep.h";
  if (!ParseLockdepHeader(lockdep_path.string(), &program.locks, &error)) {
    std::cerr << "gknn_check: " << error << "\n";
    return 2;
  }
  const fs::path doc_path = root / "docs" / "CONCURRENCY.md";
  if (!ParseConcurrencyDoc(doc_path.string(), &program.doc_locks, &error)) {
    std::cerr << "gknn_check: " << error << "\n";
    return 2;
  }

  // --- Discover files. ---
  if (paths.empty()) {
    paths = {"src", "tools"};
  }
  std::vector<fs::path> files;
  std::set<std::string> seen;
  auto add_file = [&](const fs::path& p) {
    if (!HasSourceExt(p)) return;
    std::error_code ec;
    const fs::path canon = fs::weakly_canonical(p, ec);
    const std::string key = ec ? p.generic_string() : canon.generic_string();
    if (seen.insert(key).second) files.push_back(p);
  };
  for (const std::string& ps : paths) {
    fs::path p = fs::path(ps);
    if (!p.is_absolute() && !fs::exists(p)) p = root / ps;
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (ec) break;
        const std::string name = it->path().filename().string();
        if (it->is_directory(ec)) {
          if (name == "build" || name == ".git" ||
              name == "lint_fixtures" || name == "analyzer_fixtures") {
            it.disable_recursion_pending();
          }
          continue;
        }
        add_file(it->path());
      }
    } else if (fs::exists(p, ec)) {
      add_file(p);
    } else {
      std::cerr << "gknn_check: no such path: " << ps << "\n";
      return 2;
    }
  }
  if (!compdb_path.empty()) {
    for (const std::string& f : CompdbFiles(compdb_path)) {
      std::error_code ec;
      if (fs::exists(f, ec)) add_file(f);
    }
  }
  std::sort(files.begin(), files.end());

  // --- Front end. Lexing and per-TU event extraction parallelize over
  // files (each translation unit only writes its own FunctionInfo entries
  // and a private finding buffer); structure scanning stays sequential in
  // sorted file order so function ids — and therefore all downstream
  // output — are deterministic for every --jobs value. ---
  struct Unit {
    fs::path path;
    std::string rel;
  };
  std::vector<Unit> units;
  for (const fs::path& p : files) {
    const std::string rel = Relativize(p, root);
    if (IsLockdepFile(rel)) continue;  // the layer itself is exempt
    units.push_back({p, rel});
  }

  auto run_parallel = [&](const std::function<void(size_t)>& fn) {
    std::atomic<size_t> next{0};
    auto worker = [&] {
      for (size_t i = next.fetch_add(1); i < units.size();
           i = next.fetch_add(1)) {
        fn(i);
      }
    };
    if (jobs <= 1 || units.size() <= 1) {
      worker();
      return;
    }
    std::vector<std::thread> threads;
    const int n = std::min<int>(jobs, static_cast<int>(units.size()));
    threads.reserve(n);
    for (int k = 0; k < n; ++k) threads.emplace_back(worker);
    for (std::thread& th : threads) th.join();
  };

  std::vector<LexedFile> lexed(units.size());
  std::vector<SuppressionIndex> unit_suppressions(units.size());
  run_parallel([&](size_t i) {
    lexed[i] = Lex(units[i].rel, ReadAll(units[i].path));
    SuppressionIndex& idx = unit_suppressions[i];
    idx.comments = lexed[i].comments;
    for (const Token& t : lexed[i].tokens) {
      if (t.kind != TokenKind::kEnd) idx.token_lines.insert(t.line);
    }
  });
  std::map<std::string, SuppressionIndex> suppressions;
  for (size_t i = 0; i < units.size(); ++i) {
    suppressions.emplace(units[i].rel, std::move(unit_suppressions[i]));
  }

  for (const LexedFile& lf : lexed) ScanStructure(lf, &program);

  std::vector<std::vector<Finding>> unit_findings(units.size());
  run_parallel([&](size_t i) {
    const LexedFile& lf = lexed[i];
    ExtractEvents(lf, &program, &unit_findings[i]);
    const bool as_src = TreatAsSrc(lf.path);
    const bool gpusim = lf.path.rfind("src/gpusim/", 0) == 0;
    StyleScan(lf, /*flag_raw_mutex=*/true,
              /*flag_device_span=*/as_src && !gpusim, &unit_findings[i]);
  });
  std::vector<Finding> findings;
  for (std::vector<Finding>& uf : unit_findings) {
    findings.insert(findings.end(), uf.begin(), uf.end());
  }

  ComputeSummaries(&program);
  RunLockOrderPass(&program, lockdep_path.generic_string(),
                   doc_path.generic_string(), &findings);
  RunSharedBlockPass(&program, &findings);
  RunAtomicPublicationPass(&program, &findings);
  RunDeadlineCheckpointPass(&program, &findings);
  RunSharedWritePass(&program, &findings);
  RunLeaseLifetimePass(&program, &findings);

  if (dump_lock_graph) {
    std::cout << DumpLockGraph(program);
  }

  // --- Filter: rule selection, then suppressions. ---
  std::vector<Finding> kept;
  int suppressed = 0;
  for (const Finding& f : findings) {
    if (!rule_filter.empty() && !rule_filter.count(f.rule)) continue;
    auto it = suppressions.find(f.file);
    if (it != suppressions.end() &&
        IsSuppressed(it->second, f.line, f.rule)) {
      ++suppressed;
      continue;
    }
    kept.push_back(f);
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Finding& a, const Finding& b) {
                           return a.file == b.file && a.line == b.line &&
                                  a.rule == b.rule && a.message == b.message;
                         }),
             kept.end());

  for (const Finding& f : kept) {
    std::cerr << f.file << ":" << f.line << ": " << f.level << ": ["
              << f.rule << "] " << f.message << "\n";
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path);
    if (!out) {
      std::cerr << "gknn_check: cannot write " << sarif_path << "\n";
      return 2;
    }
    out << ToSarif(kept);
  }

  std::cerr << "gknn_check: " << lexed.size() << " files, "
            << program.functions.size() << " functions, "
            << program.edges.size() << " lock edges, " << kept.size()
            << " finding(s), " << suppressed << " suppressed\n";
  return kept.empty() ? 0 : 1;
}
