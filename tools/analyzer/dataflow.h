#ifndef GKNN_TOOLS_ANALYZER_DATAFLOW_H_
#define GKNN_TOOLS_ANALYZER_DATAFLOW_H_

#include <cstdint>
#include <set>
#include <vector>

#include "cfg.h"

namespace gknn::check {

/// Forward worklist dataflow over bit-vector fact sets. Facts are small
/// integers (variable ids, lock modes, checkpoint flags); each block has
/// gen/kill sets and the solver iterates IN/OUT to a fixpoint:
///
///   IN(b)  = meet over preds p of OUT(p)      (union = may, intersect = must)
///   OUT(b) = (IN(b) - kill(b)) | gen(b)
///
/// For must-analyses the IN of the entry block (and of unreachable blocks)
/// is the empty set, not top, so facts never materialize from nowhere.
class ForwardDataflow {
 public:
  enum class Meet { kUnion, kIntersect };

  ForwardDataflow(const Cfg& cfg, int num_facts, Meet meet);

  void AddGen(int block, int fact);
  void AddKill(int block, int fact);
  /// Facts that hold on entry to the function.
  void AddEntryFact(int fact);

  /// Iterates to a fixpoint. Terminates: fact sets grow (union) or shrink
  /// (intersect) monotonically within a finite lattice.
  void Solve();

  bool InHas(int block, int fact) const;
  bool OutHas(int block, int fact) const;

 private:
  using Bits = std::vector<uint64_t>;
  static bool Has(const Bits& b, int fact);
  static void Set(Bits* b, int fact);

  const Cfg& cfg_;
  int num_facts_;
  Meet meet_;
  size_t words_;
  std::vector<Bits> gen_, kill_, in_, out_;
  Bits entry_;
};

/// True when `to` can be reached from `from` without entering any block in
/// `avoid` (both endpoints must themselves stay out of `avoid`). When
/// `within` is non-null the walk is confined to that block set — the loop
/// passes use it to ask "is there a cyclic path through this loop that
/// dodges every checkpoint block?".
bool CanReachAvoiding(const Cfg& cfg, int from, int to,
                      const std::set<int>& avoid,
                      const std::set<int>* within = nullptr);

}  // namespace gknn::check

#endif  // GKNN_TOOLS_ANALYZER_DATAFLOW_H_
