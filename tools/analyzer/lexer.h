#ifndef GKNN_TOOLS_ANALYZER_LEXER_H_
#define GKNN_TOOLS_ANALYZER_LEXER_H_

#include <map>
#include <string>
#include <vector>

#include "token.h"

namespace gknn::check {

/// The lexed form of one translation unit (or header).
///
/// Comments are not tokens: they land in `comments`, keyed by line, so the
/// suppression scanner can find `gknn-check: allow(<rule>)` markers on the
/// flagged line or the comment block above it without the parser having to
/// skip them.
///
/// Preprocessor conditionals are resolved the way the production build
/// resolves them: the *first* branch of every `#if`/`#ifdef`/`#ifndef` is
/// taken (`#if 0` takes the `#else`), so compile-away gates like
/// GKNN_LOCKDEP / GKNN_OBS are analyzed in their enabled form and the
/// disabled stubs never produce duplicate definitions.
struct LexedFile {
  std::string path;      // as given to the lexer (repo-relative preferred)
  std::vector<Token> tokens;
  std::map<int, std::string> comments;  // line -> concatenated comment text
  int max_line = 0;
};

/// Lexes `text` into tokens. Never fails: unrecognized bytes are skipped.
LexedFile Lex(const std::string& path, const std::string& text);

}  // namespace gknn::check

#endif  // GKNN_TOOLS_ANALYZER_LEXER_H_
