#ifndef GKNN_TOOLS_ANALYZER_PARSER_H_
#define GKNN_TOOLS_ANALYZER_PARSER_H_

#include <string>
#include <vector>

#include "lexer.h"
#include "model.h"

namespace gknn::check {

/// Phase A: structural scan of one lexed file. Registers classes (member
/// types, lockdep members, method return types), records every function
/// *definition* with its body token range, and registers free-function
/// return types. Tuned to this codebase's idioms — see docs/STATIC_ANALYSIS.md
/// for exactly what it understands.
void ScanStructure(const LexedFile& file, Program* program);

/// Phase B: event extraction over every function body recorded for `file`
/// in phase A. Requires phase A to have run over ALL files first, because
/// call resolution uses the program-wide class and function tables.
/// Appends span/status findings that are purely intraprocedural to
/// `findings`.
void ExtractEvents(const LexedFile& file, Program* program,
                   std::vector<Finding>* findings);

/// Token-level style rules migrated from tools/gknn_lint.py:
///   raw-mutex   — `std::mutex` & friends instead of the lockdep wrappers
///                 (applies to every analyzed file; lockdep.* is never
///                 handed to the analyzer in the first place).
///   device-span — `.device_span()` outside src/gpusim/ (`flag_device_span`
///                 is false for gpusim files and files outside src/).
void StyleScan(const LexedFile& file, bool flag_raw_mutex,
               bool flag_device_span, std::vector<Finding>* findings);

}  // namespace gknn::check

#endif  // GKNN_TOOLS_ANALYZER_PARSER_H_
