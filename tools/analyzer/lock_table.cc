#include "lock_table.h"

#include <cctype>
#include <fstream>
#include <sstream>

namespace gknn::check {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream f(path);
  if (!f) return "";
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void Insert(LockTable* table, LockClassInfo info) {
  const int index = static_cast<int>(table->classes.size());
  table->by_symbol[info.symbol] = index;
  table->by_name[info.name] = index;
  table->classes.push_back(std::move(info));
}

}  // namespace

bool ParseLockdepHeader(const std::string& path, LockTable* table,
                        std::string* error) {
  const std::string text = ReadAll(path);
  if (text.empty()) {
    *error = "cannot read " + path;
    return false;
  }
  const size_t begin = text.find("gknn-lockdep-table-begin");
  const size_t end = text.find("gknn-lockdep-table-end");
  if (begin == std::string::npos || end == std::string::npos || end < begin) {
    *error = path + ": gknn-lockdep-table markers not found";
    return false;
  }
  // Rows look like:
  //   inline constinit LockClass kFoo{"a.b", 100, true, false};
  size_t pos = begin;
  while (true) {
    pos = text.find("LockClass", pos);
    if (pos == std::string::npos || pos > end) break;
    pos += 9;
    // symbol
    while (pos < end && std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
    size_t sym_end = pos;
    while (sym_end < end &&
           (std::isalnum(static_cast<unsigned char>(text[sym_end])) ||
            text[sym_end] == '_')) {
      ++sym_end;
    }
    LockClassInfo info;
    info.symbol = text.substr(pos, sym_end - pos);
    pos = text.find('{', sym_end);
    if (pos == std::string::npos || pos > end) break;
    const size_t close = text.find('}', pos);
    if (close == std::string::npos || close > end) break;
    const std::string args = text.substr(pos + 1, close - pos - 1);
    // "name", rank[, nestable[, leaf]]
    const size_t q1 = args.find('"');
    const size_t q2 = args.find('"', q1 + 1);
    if (q1 == std::string::npos || q2 == std::string::npos) {
      pos = close;
      continue;
    }
    info.name = args.substr(q1 + 1, q2 - q1 - 1);
    std::string rest = args.substr(q2 + 1);
    std::vector<std::string> fields;
    std::string cur;
    for (char c : rest) {
      if (c == ',') {
        fields.push_back(cur);
        cur.clear();
      } else if (!std::isspace(static_cast<unsigned char>(c))) {
        cur += c;
      }
    }
    fields.push_back(cur);
    // fields[0] is empty (text before first comma was the quoted name).
    if (fields.size() > 1) info.rank = std::atoi(fields[1].c_str());
    if (fields.size() > 2) info.nestable = fields[2] == "true";
    if (fields.size() > 3) info.leaf = fields[3] == "true";
    Insert(table, std::move(info));
    pos = close;
  }
  if (table->classes.empty()) {
    *error = path + ": no LockClass rows between the lockdep-table markers";
    return false;
  }
  return true;
}

bool ParseConcurrencyDoc(const std::string& path, LockTable* table,
                         std::string* error) {
  std::ifstream f(path);
  if (!f) {
    *error = "cannot read " + path;
    return false;
  }
  std::string line;
  while (std::getline(f, line)) {
    // | 100 | `server.index` | ...
    size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i >= line.size() || line[i] != '|') continue;
    ++i;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    size_t j = i;
    while (j < line.size() && std::isdigit(static_cast<unsigned char>(line[j])))
      ++j;
    if (j == i) continue;
    LockClassInfo info;
    info.rank = std::atoi(line.substr(i, j - i).c_str());
    const size_t tick1 = line.find('`', j);
    if (tick1 == std::string::npos) continue;
    const size_t tick2 = line.find('`', tick1 + 1);
    if (tick2 == std::string::npos) continue;
    info.name = line.substr(tick1 + 1, tick2 - tick1 - 1);
    info.symbol = info.name;
    // Only rows whose backticked field looks like a lock class name.
    bool plausible = !info.name.empty();
    for (char c : info.name) {
      if (!std::islower(static_cast<unsigned char>(c)) && c != '.') {
        plausible = false;
        break;
      }
    }
    if (plausible && info.name.find('.') != std::string::npos) {
      Insert(table, std::move(info));
    }
  }
  return true;
}

}  // namespace gknn::check
