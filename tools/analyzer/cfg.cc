#include "cfg.h"

#include <algorithm>

namespace gknn::check {
namespace {

using Tokens = std::vector<Token>;

/// t[open] is ( [ { — index of the matching close, or `limit`.
size_t MatchForward(const Tokens& t, size_t open, size_t limit) {
  const std::string& o = t[open].text;
  const std::string c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (size_t j = open; j < limit; ++j) {
    if (t[j].kind != TokenKind::kPunct) continue;
    if (t[j].text == o) {
      ++depth;
    } else if (t[j].text == c && --depth == 0) {
      return j;
    }
  }
  return limit;
}

bool IsCallKeyword(const std::string& s) {
  return s == "sizeof" || s == "alignof" || s == "decltype" ||
         s == "noexcept" || s == "if" || s == "while" || s == "for" ||
         s == "switch";
}

struct Builder {
  const Tokens& t;
  size_t body_end;
  Cfg cfg;
  std::vector<std::vector<int>*> break_stack;
  std::vector<int> continue_stack;

  struct StmtResult {
    size_t next = 0;
    std::vector<int> exits;  // blocks that fall through to what follows
    int entry = -1;          // first block of the statement, -1 if empty
  };

  Builder(const Tokens& tokens, size_t end) : t(tokens), body_end(end) {}

  int NewBlock(size_t b, size_t e) {
    CfgBlock blk;
    blk.begin = b;
    blk.end = e;
    blk.line = b < t.size() ? t[b].line : 0;
    cfg.blocks.push_back(blk);
    return static_cast<int>(cfg.blocks.size()) - 1;
  }

  void Edge(int from, int to) {
    if (from < 0 || to < 0) return;
    std::vector<int>& s = cfg.blocks[from].succs;
    if (std::find(s.begin(), s.end(), to) != s.end()) return;
    s.push_back(to);
    cfg.blocks[to].preds.push_back(from);
  }

  int ConnectNew(const std::vector<int>& preds, size_t b, size_t e) {
    const int id = NewBlock(b, e);
    for (int p : preds) Edge(p, id);
    return id;
  }

  bool RangeHasCall(size_t b, size_t e) const {
    for (size_t j = b; j + 1 < e; ++j) {
      if (t[j].kind == TokenKind::kIdent && !IsCallKeyword(t[j].text) &&
          t[j + 1].IsPunct("(")) {
        return true;
      }
    }
    return false;
  }

  bool CondIsTrue(size_t b, size_t e) const {
    if (e != b + 1) return false;
    return t[b].IsIdent("true") ||
           (t[b].kind == TokenKind::kNumber && t[b].text == "1");
  }

  /// End of a simple statement starting at `i`: index just past its `;`.
  /// Bracket groups of every kind — including lambda bodies and brace
  /// initializers — are skipped, so their semicolons do not terminate the
  /// enclosing statement.
  size_t SimpleEnd(size_t i, size_t e) const {
    int depth = 0;
    for (size_t j = i; j < e; ++j) {
      if (t[j].kind != TokenKind::kPunct) continue;
      const std::string& s = t[j].text;
      if (s == "(" || s == "[" || s == "{") ++depth;
      else if (s == ")" || s == "]" || s == "}") --depth;
      else if (s == ";" && depth <= 0) return j + 1;
    }
    return e;
  }

  StmtResult ParseLoopTail(CfgLoop loop, int head, size_t body_start,
                           size_t e, std::vector<int> head_exit) {
    std::vector<int> breaks;
    break_stack.push_back(&breaks);
    continue_stack.push_back(head);
    StmtResult body = ParseStmt(body_start, e, {head});
    continue_stack.pop_back();
    break_stack.pop_back();
    for (int x : body.exits) Edge(x, head);
    loop.latches = body.exits;
    loop.past_block = static_cast<int>(cfg.blocks.size());
    loop.end_pos = body.next;
    cfg.loops.push_back(loop);
    StmtResult out;
    out.next = body.next;
    out.entry = head;
    out.exits = breaks;
    for (int x : head_exit) out.exits.push_back(x);
    return out;
  }

  StmtResult ParseStmt(size_t i, size_t e, std::vector<int> preds) {
    StmtResult out;
    if (i >= e) {
      out.next = e;
      out.exits = std::move(preds);
      return out;
    }
    const Token& tk = t[i];

    if (tk.IsPunct(";")) {
      out.next = i + 1;
      out.exits = std::move(preds);
      return out;
    }

    if (tk.IsPunct("{")) {
      const size_t close = MatchForward(t, i, e);
      out.exits = ParseSeq(i + 1, close, std::move(preds), -1, nullptr,
                           &out.entry);
      out.next = close + 1;
      return out;
    }

    if (tk.IsIdent("if") && i + 1 < e && t[i + 1].IsPunct("(")) {
      const size_t close = MatchForward(t, i + 1, e);
      const int cond = ConnectNew(preds, i, close + 1);
      StmtResult then = ParseStmt(close + 1, e, {cond});
      out.entry = cond;
      if (then.next < e && t[then.next].IsIdent("else")) {
        StmtResult els = ParseStmt(then.next + 1, e, {cond});
        out.exits = then.exits;
        out.exits.insert(out.exits.end(), els.exits.begin(),
                         els.exits.end());
        out.next = els.next;
      } else {
        out.exits = then.exits;
        out.exits.push_back(cond);
        out.next = then.next;
      }
      return out;
    }

    if (tk.IsIdent("while") && i + 1 < e && t[i + 1].IsPunct("(")) {
      const size_t close = MatchForward(t, i + 1, e);
      CfgLoop loop;
      loop.kind = CfgLoop::Kind::kWhile;
      loop.begin_pos = i;
      loop.line = tk.line;
      loop.infinite = CondIsTrue(i + 2, close);
      loop.cond_has_call = RangeHasCall(i + 2, close);
      loop.first_block = static_cast<int>(cfg.blocks.size());
      const int head = ConnectNew(preds, i, close + 1);
      loop.head = head;
      return ParseLoopTail(loop, head, close + 1, e,
                           loop.infinite ? std::vector<int>{}
                                         : std::vector<int>{head});
    }

    if (tk.IsIdent("for") && i + 1 < e && t[i + 1].IsPunct("(")) {
      const size_t close = MatchForward(t, i + 1, e);
      // Top-level ';' positions inside the header decide the form.
      size_t s1 = close, s2 = close;
      bool range_for = false;
      int depth = 0;
      for (size_t j = i + 2; j < close; ++j) {
        if (t[j].kind != TokenKind::kPunct) continue;
        const std::string& s = t[j].text;
        if (s == "(" || s == "[" || s == "{") ++depth;
        else if (s == ")" || s == "]" || s == "}") --depth;
        else if (depth == 0 && s == ":" && s1 == close) {
          range_for = true;
          break;
        } else if (depth == 0 && s == ";") {
          if (s1 == close) s1 = j;
          else if (s2 == close) s2 = j;
        }
      }
      CfgLoop loop;
      loop.begin_pos = i;
      loop.line = tk.line;
      loop.first_block = static_cast<int>(cfg.blocks.size());
      if (range_for) {
        loop.kind = CfgLoop::Kind::kRangeFor;
        loop.counted = true;
      } else {
        loop.kind = CfgLoop::Kind::kFor;
        loop.infinite = s1 < close && s1 + 1 == s2;  // empty condition
        loop.counted = s1 < close && s2 < close && s1 + 1 < s2 &&
                       s2 + 1 < close;  // non-empty cond and increment
        if (s1 < close && s2 < close) {
          loop.cond_has_call = RangeHasCall(s1 + 1, s2);
        }
      }
      const int head = ConnectNew(preds, i, close + 1);
      loop.head = head;
      return ParseLoopTail(loop, head, close + 1, e,
                           loop.infinite ? std::vector<int>{}
                                         : std::vector<int>{head});
    }

    if (tk.IsIdent("do")) {
      // The condition block is created first (so `continue` can target
      // it); its token range is patched once the trailing while is found.
      const int cond = NewBlock(i, i);
      CfgLoop loop;
      loop.kind = CfgLoop::Kind::kDoWhile;
      loop.begin_pos = i;
      loop.line = tk.line;
      loop.first_block = cond;
      std::vector<int> breaks;
      break_stack.push_back(&breaks);
      continue_stack.push_back(cond);
      StmtResult body = ParseStmt(i + 1, e, std::move(preds));
      continue_stack.pop_back();
      break_stack.pop_back();
      size_t j = body.next;
      size_t close = j;
      if (j < e && t[j].IsIdent("while") && j + 1 < e &&
          t[j + 1].IsPunct("(")) {
        close = MatchForward(t, j + 1, e);
        cfg.blocks[cond].begin = j;
        cfg.blocks[cond].end = close + 1;
        cfg.blocks[cond].line = t[j].line;
        loop.infinite = CondIsTrue(j + 2, close);
        loop.cond_has_call = RangeHasCall(j + 2, close);
      }
      for (int x : body.exits) Edge(x, cond);
      const int body_entry = body.entry >= 0 ? body.entry : cond;
      Edge(cond, body_entry);
      loop.head = body_entry;
      loop.latches = {cond};
      loop.past_block = static_cast<int>(cfg.blocks.size());
      size_t next = close + 1;
      if (next < e && t[next].IsPunct(";")) ++next;
      loop.end_pos = next;
      cfg.loops.push_back(loop);
      out.next = next;
      out.entry = cond == body_entry ? cond : body_entry;
      out.exits = breaks;
      if (!loop.infinite) out.exits.push_back(cond);
      return out;
    }

    if (tk.IsIdent("switch") && i + 1 < e && t[i + 1].IsPunct("(")) {
      const size_t close = MatchForward(t, i + 1, e);
      const int head = ConnectNew(preds, i, close + 1);
      out.entry = head;
      size_t ob = close + 1;
      if (ob >= e || !t[ob].IsPunct("{")) {  // malformed; treat as simple
        out.next = SimpleEnd(i, e);
        out.exits = {head};
        return out;
      }
      const size_t cb = MatchForward(t, ob, e);
      std::vector<int> breaks;
      break_stack.push_back(&breaks);
      bool saw_default = false;
      std::vector<int> fall =
          ParseSeq(ob + 1, cb, {}, head, &saw_default, nullptr);
      break_stack.pop_back();
      out.exits = std::move(fall);
      out.exits.insert(out.exits.end(), breaks.begin(), breaks.end());
      if (!saw_default) out.exits.push_back(head);
      out.next = cb + 1;
      return out;
    }

    if (tk.IsIdent("break") || tk.IsIdent("continue")) {
      const size_t end = SimpleEnd(i, e);
      const int blk = ConnectNew(preds, i, end);
      out.entry = blk;
      if (tk.IsIdent("break")) {
        if (!break_stack.empty()) break_stack.back()->push_back(blk);
      } else {
        if (!continue_stack.empty()) Edge(blk, continue_stack.back());
      }
      out.next = end;
      return out;  // no fallthrough exits
    }

    if (tk.IsIdent("return") || tk.IsIdent("co_return") ||
        tk.IsIdent("throw") || tk.IsIdent("goto")) {
      const size_t end = SimpleEnd(i, e);
      out.entry = ConnectNew(preds, i, end);
      out.next = end;
      return out;  // terminator: no exits
    }

    if (tk.IsIdent("try")) {
      StmtResult body = ParseStmt(i + 1, e, preds);
      out.entry = body.entry;
      out.exits = body.exits;
      size_t j = body.next;
      while (j < e && t[j].IsIdent("catch") && j + 1 < e &&
             t[j + 1].IsPunct("(")) {
        const size_t close = MatchForward(t, j + 1, e);
        StmtResult handler =
            ParseStmt(close + 1, e,
                      body.entry >= 0 ? std::vector<int>{body.entry} : preds);
        out.exits.insert(out.exits.end(), handler.exits.begin(),
                         handler.exits.end());
        j = handler.next;
      }
      out.next = j;
      return out;
    }

    // Simple statement.
    const size_t end = SimpleEnd(i, e);
    out.entry = ConnectNew(preds, i, end);
    out.exits = {out.entry};
    out.next = end > i ? end : i + 1;
    return out;
  }

  /// Parses a statement sequence. When `switch_head` >= 0, `case`/`default`
  /// labels at this level add an entry edge from the switch head to the
  /// statement that follows them (fallthrough between cases is the natural
  /// sequential flow).
  std::vector<int> ParseSeq(size_t b, size_t e, std::vector<int> preds,
                            int switch_head, bool* saw_default,
                            int* entry_out) {
    size_t i = b;
    std::vector<int> cur = std::move(preds);
    if (entry_out != nullptr) *entry_out = -1;
    while (i < e) {
      if (t[i].IsPunct(";")) {
        ++i;
        continue;
      }
      bool labeled = false;
      if (switch_head >= 0) {
        while (i < e &&
               (t[i].IsIdent("case") || t[i].IsIdent("default"))) {
          labeled = true;
          if (t[i].IsIdent("default")) {
            if (saw_default != nullptr) *saw_default = true;
            i += (i + 1 < e && t[i + 1].IsPunct(":")) ? 2 : 1;
            continue;
          }
          // case <expr> :  — scan to the top-level ':' ("::" is one token).
          size_t j = i + 1;
          int depth = 0;
          while (j < e) {
            if (t[j].kind == TokenKind::kPunct) {
              const std::string& s = t[j].text;
              if (s == "(" || s == "[" || s == "{") ++depth;
              else if (s == ")" || s == "]" || s == "}") --depth;
              else if (s == ":" && depth == 0) break;
            }
            ++j;
          }
          i = j < e ? j + 1 : e;
        }
        if (i >= e) break;
      }
      if (labeled) cur.push_back(switch_head);
      StmtResult r = ParseStmt(i, e, std::move(cur));
      if (entry_out != nullptr && *entry_out < 0 && r.entry >= 0) {
        *entry_out = r.entry;
      }
      cur = std::move(r.exits);
      i = r.next > i ? r.next : i + 1;
    }
    return cur;
  }
};

}  // namespace

Cfg BuildCfg(const std::vector<Token>& tokens, size_t body_begin,
             size_t body_end) {
  Builder builder(tokens, body_end);
  builder.ParseSeq(body_begin, body_end, {}, -1, nullptr,
                   &builder.cfg.entry);
  return std::move(builder.cfg);
}

}  // namespace gknn::check
