#ifndef GKNN_TOOLS_ANALYZER_SARIF_H_
#define GKNN_TOOLS_ANALYZER_SARIF_H_

#include <string>
#include <vector>

#include "model.h"

namespace gknn::check {

/// Serializes findings as a SARIF 2.1.0 log (one run, tool "gknn_check").
std::string ToSarif(const std::vector<Finding>& findings);

}  // namespace gknn::check

#endif  // GKNN_TOOLS_ANALYZER_SARIF_H_
