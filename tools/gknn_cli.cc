// gknn_cli — interactive/scriptable front end to the G-Grid query server.
//
// Load a road network (a DIMACS .gr file or a generated one), then drive
// the server with line commands on stdin:
//
//   add <object> <edge> <offset> <time>    report an object location
//   remove <object> <time>                 deregister an object
//   query <edge> <offset> <k> <time>       k nearest objects
//   trim <time>                            maintenance sweep
//   record <file> <objects> <f> <queries> <k>   write a workload trace
//   replay <file>                          replay a trace file
//   stats                                  counters, memory, degradation
//   metrics                                Prometheus text exposition
//   help                                   this list
//   quit
//
// Flags:
//   --graph=FILE | --synthetic=N   road network source
//   --shards=N                     serve through a ShardRouter over N
//                                  region shards, each with its own
//                                  device/index/inbox (docs/SHARDING.md);
//                                  1 (default) keeps the single-engine
//                                  QueryServer path
//   --devices=N                    simulated GPUs per engine: a
//                                  gpusim::DeviceSet of N independent
//                                  fault domains behind the multi-stream
//                                  scheduler (docs/GPU_SIMULATION.md
//                                  "Multi-device"); composes with
//                                  --shards=S for S x N devices total
//   --seed=N                       workload seed
//   --faults=SPEC                  fault-injection spec (same grammar as
//                                  GKNN_FAULTS; see docs/ROBUSTNESS.md),
//                                  e.g. --faults='alloc:p=0.05;seed=7'
//   --threads=N                    worker threads of the server's batch-
//                                  query pool (docs/CONCURRENCY.md);
//                                  0 (default) answers batches inline
//   --deadline-ms=D                per-query latency budget; queries that
//                                  blow it return DeadlineExceeded
//                                  (0 = unlimited)
//   --max-inflight=N               admission control: concurrent query
//                                  slots (0 = admission off)
//   --max-queued=N                 arrivals allowed to wait for a slot;
//                                  beyond that the server sheds with
//                                  ResourceExhausted
//   --brownout                     degrade admitted queries under pressure
//                                  before shedding (docs/ROBUSTNESS.md)
//   --stats                        dump the stats block on exit
//   --metrics[=FILE]               on exit, dump the observability registry
//                                  (Prometheus text + one-line JSON, see
//                                  docs/OBSERVABILITY.md) to stdout, or to
//                                  FILE (text) and FILE.json (JSON)
//
// Exits non-zero when any command reported an error.
//
// Examples:
//   ./build/tools/gknn_cli --synthetic=5000
//   ./build/tools/gknn_cli --graph=USA-road-d.NY.gr < trace.txt

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "core/ggrid_index.h"
#include "gpusim/device.h"
#include "gpusim/device_set.h"
#include "roadnet/dimacs.h"
#include "server/query_server.h"
#include "server/shard_router.h"
#include "util/timer.h"
#include "workload/synthetic_network.h"
#include "workload/trace.h"

namespace {

void PrintHelp() {
  std::printf(
      "commands:\n"
      "  add <object> <edge> <offset> <time>\n"
      "  remove <object> <time>\n"
      "  query <edge> <offset> <k> <time>\n"
      "  trim <time>\n"
      "  record <file> <objects> <f> <queries> <k>\n"
      "  replay <file>\n"
      "  stats\n"
      "  metrics\n"
      "  help\n"
      "  quit\n");
}

/// Dumps the full observability registry: Prometheus text to `out`, and —
/// when writing to a file — the one-line JSON beside it (FILE.json).
bool DumpMetrics(const std::string& text, const std::string& json,
                 const std::string& path) {
  if (path.empty()) {
    std::fputs(text.c_str(), stdout);
    std::printf("%s\n", json.c_str());
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return false;
  }
  std::fputs(text.c_str(), f);
  std::fclose(f);
  const std::string json_path = path + ".json";
  f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
    return false;
  }
  std::fprintf(f, "%s\n", json.c_str());
  std::fclose(f);
  std::printf("metrics written to %s and %s\n", path.c_str(),
              json_path.c_str());
  return true;
}

void PrintStats(gknn::server::QueryServer& server) {
  const auto& counters = server.index().counters();
  const auto& engine = server.index().engine_counters();
  const auto server_stats = server.stats();
  const auto mem = server.index().Memory();
  gknn::gpusim::DeviceSet& devices = server.index().device_set();
  unsigned long long h2d_bytes = 0, d2h_bytes = 0;
  unsigned long long fault_checks = 0, fault_injected = 0;
  for (uint32_t i = 0; i < devices.size(); ++i) {
    const auto totals = devices.device(i).ledger().totals();
    h2d_bytes += totals.h2d_bytes;
    d2h_bytes += totals.d2h_bytes;
    fault_checks += devices.device(i).fault_injector().total_checks();
    fault_injected += devices.device(i).fault_injector().total_injected();
  }
  std::printf(
      "updates=%llu tombstones=%llu queries=%llu cached_messages=%llu "
      "pending=%llu\n"
      "memory: cpu=%llu B gpu=%llu B total=%llu B\n"
      "device: kernels=%llu modeled_gpu=%.3f ms h2d=%llu B d2h=%llu B\n"
      "robustness: degraded=%d gpu_failures=%llu retries=%llu "
      "fallback_queries=%llu degraded_queries=%llu breaker_trips=%llu "
      "breaker_closes=%llu update_requeues=%llu clean_fallbacks=%llu\n"
      "overload: admitted=%llu shed=%llu expired=%llu brownout=%llu "
      "inflight=%u queue_depth=%u\n"
      "faults: spec='%s' checks=%llu injected=%llu\n",
      static_cast<unsigned long long>(counters.updates_ingested),
      static_cast<unsigned long long>(counters.tombstones_written),
      static_cast<unsigned long long>(counters.queries_processed),
      static_cast<unsigned long long>(server.index().cached_messages()),
      static_cast<unsigned long long>(server.pending_updates()),
      static_cast<unsigned long long>(mem.cpu_total()),
      static_cast<unsigned long long>(mem.grid_gpu),
      static_cast<unsigned long long>(mem.total()),
      static_cast<unsigned long long>(devices.TotalKernelLaunches()),
      devices.TotalClockSeconds() * 1e3, h2d_bytes, d2h_bytes,
      server_stats.degraded ? 1 : 0,
      static_cast<unsigned long long>(server_stats.gpu_failures +
                                      engine.gpu_failures),
      static_cast<unsigned long long>(server_stats.retries),
      static_cast<unsigned long long>(server_stats.fallback_queries +
                                      engine.fallback_queries),
      static_cast<unsigned long long>(server_stats.degraded_queries),
      static_cast<unsigned long long>(server_stats.breaker_trips),
      static_cast<unsigned long long>(server_stats.breaker_closes),
      static_cast<unsigned long long>(server_stats.update_requeues),
      static_cast<unsigned long long>(counters.clean_fallbacks),
      static_cast<unsigned long long>(server_stats.admitted_queries),
      static_cast<unsigned long long>(server_stats.shed_queries),
      static_cast<unsigned long long>(server_stats.expired_queries),
      static_cast<unsigned long long>(server_stats.brownout_queries),
      server.inflight_queries(), server.admission_queue_depth(),
      devices.device(0).fault_injector().spec().c_str(), fault_checks,
      fault_injected);
  // With more than one device, one placement line per fault domain.
  if (devices.size() > 1) {
    for (uint32_t i = 0; i < devices.size(); ++i) {
      const auto sched = server.index().scheduler().device_stats(i);
      std::printf(
          "  device %u: kernels=%llu modeled_gpu=%.3f ms leases=%llu "
          "errors=%llu unhealthy=%d\n",
          i,
          static_cast<unsigned long long>(devices.device(i).kernel_launches()),
          devices.device(i).ClockSeconds() * 1e3,
          static_cast<unsigned long long>(sched.leases),
          static_cast<unsigned long long>(sched.device_errors),
          sched.unhealthy ? 1 : 0);
    }
  }
}

/// Router-mode stats block: the router's logical-query counters, the
/// fleet-wide aggregate, then one degradation line per shard.
void PrintRouterStats(gknn::server::ShardRouter& router) {
  const auto rs = router.router_stats();
  const auto agg = router.AggregateStats();
  std::printf(
      "router: shards=%u queries=%llu admitted=%llu shed=%llu "
      "expired=%llu brownout=%llu\n"
      "fanout: phase2_shards=%llu refine_shards=%llu "
      "border_refinements=%llu full_fanouts=%llu\n"
      "routing: updates=%llu cross_shard_moves=%llu pending=%llu "
      "applied=%llu\n"
      "aggregate: degraded=%d gpu_failures=%llu retries=%llu "
      "fallback_queries=%llu degraded_queries=%llu breaker_trips=%llu\n",
      router.num_shards(), static_cast<unsigned long long>(rs.queries),
      static_cast<unsigned long long>(rs.admitted_queries),
      static_cast<unsigned long long>(rs.shed_queries),
      static_cast<unsigned long long>(rs.expired_queries),
      static_cast<unsigned long long>(rs.brownout_queries),
      static_cast<unsigned long long>(rs.fanout_shards),
      static_cast<unsigned long long>(rs.refine_shards),
      static_cast<unsigned long long>(rs.border_refinements),
      static_cast<unsigned long long>(rs.full_fanouts),
      static_cast<unsigned long long>(rs.routed_updates),
      static_cast<unsigned long long>(rs.cross_shard_moves),
      static_cast<unsigned long long>(router.pending_updates()),
      static_cast<unsigned long long>(router.applied_updates()),
      agg.degraded ? 1 : 0,
      static_cast<unsigned long long>(agg.gpu_failures),
      static_cast<unsigned long long>(agg.retries),
      static_cast<unsigned long long>(agg.fallback_queries),
      static_cast<unsigned long long>(agg.degraded_queries),
      static_cast<unsigned long long>(agg.breaker_trips));
  for (uint32_t s = 0; s < router.num_shards(); ++s) {
    const auto stats = router.ShardStats(s);
    std::printf(
        "  shard %u: degraded=%d gpu_failures=%llu fallback=%llu "
        "kernels=%llu modeled_gpu=%.3f ms pending=%llu\n",
        s, stats.degraded ? 1 : 0,
        static_cast<unsigned long long>(stats.gpu_failures),
        static_cast<unsigned long long>(stats.fallback_queries),
        static_cast<unsigned long long>(router.device(s).kernel_launches()),
        router.device(s).ClockSeconds() * 1e3,
        static_cast<unsigned long long>(router.shard(s).pending_updates()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gknn;  // NOLINT(build/namespaces)

  std::string graph_path;
  std::string fault_spec;
  bool have_fault_spec = false;
  bool stats_on_exit = false;
  bool metrics_on_exit = false;
  std::string metrics_path;
  uint32_t synthetic = 0;
  uint32_t num_shards = 1;
  uint32_t num_devices = 1;
  uint32_t query_threads = 0;
  double deadline_ms = 0;
  uint32_t max_inflight = 0;
  uint32_t max_queued = 0;
  bool brownout = false;
  uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--graph=", 0) == 0) {
      graph_path = arg.substr(8);
    } else if (arg.rfind("--synthetic=", 0) == 0) {
      synthetic = static_cast<uint32_t>(std::stoul(arg.substr(12)));
    } else if (arg.rfind("--shards=", 0) == 0) {
      num_shards = static_cast<uint32_t>(std::stoul(arg.substr(9)));
      if (num_shards == 0) {
        std::fprintf(stderr, "--shards must be >= 1\n");
        return 1;
      }
    } else if (arg.rfind("--devices=", 0) == 0) {
      num_devices = static_cast<uint32_t>(std::stoul(arg.substr(10)));
      if (num_devices == 0) {
        std::fprintf(stderr, "--devices must be >= 1\n");
        return 1;
      }
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed = std::stoull(arg.substr(7));
    } else if (arg.rfind("--threads=", 0) == 0) {
      query_threads = static_cast<uint32_t>(std::stoul(arg.substr(10)));
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      deadline_ms = std::stod(arg.substr(14));
    } else if (arg.rfind("--max-inflight=", 0) == 0) {
      max_inflight = static_cast<uint32_t>(std::stoul(arg.substr(15)));
    } else if (arg.rfind("--max-queued=", 0) == 0) {
      max_queued = static_cast<uint32_t>(std::stoul(arg.substr(13)));
    } else if (arg == "--brownout") {
      brownout = true;
    } else if (arg.rfind("--faults=", 0) == 0) {
      fault_spec = arg.substr(9);
      have_fault_spec = true;
    } else if (arg == "--stats") {
      stats_on_exit = true;
    } else if (arg == "--metrics") {
      metrics_on_exit = true;
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_on_exit = true;
      metrics_path = arg.substr(10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 1;
    }
  }
  if (graph_path.empty() && synthetic == 0) synthetic = 2000;

  util::Result<roadnet::Graph> graph =
      graph_path.empty()
          ? workload::GenerateSyntheticRoadNetwork(
                {.num_vertices = synthetic, .seed = seed})
          : roadnet::ReadDimacsGraph(graph_path);
  if (!graph.ok()) {
    std::fprintf(stderr, "failed to load graph: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %u vertices, %u arcs\n", graph->num_vertices(),
              graph->num_edges());

  gpusim::DeviceConfig device_config;
  if (have_fault_spec) {
    const auto parsed = gpusim::FaultInjector::Parse(fault_spec);
    if (!parsed.ok()) {
      std::fprintf(stderr, "invalid --faults spec: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    device_config.faults = fault_spec;
  }
  server::ServerOptions server_options;
  server_options.query_threads = query_threads;
  server_options.default_deadline_ms = deadline_ms;
  server_options.max_inflight = max_inflight;
  server_options.max_queued = max_queued;
  server_options.brownout = brownout;
  std::unique_ptr<server::ShardRouter> router;
  std::unique_ptr<gpusim::DeviceSet> devices;  // single-server mode only
  std::unique_ptr<server::QueryServer> single;
  if (num_shards > 1) {
    server::ShardRouterOptions router_options;
    router_options.num_shards = num_shards;
    router_options.devices_per_shard = num_devices;
    router_options.server = server_options;
    router_options.device = device_config;
    auto built = server::ShardRouter::Create(&*graph, core::GGridOptions{},
                                             router_options);
    if (!built.ok()) {
      std::fprintf(stderr, "failed to build shard router: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    router = std::move(built).ValueOrDie();
    std::printf(
        "ShardRouter ready: %u shards x %u devices over %u cells (psi=%u). "
        "Type 'help' for commands.\n",
        router->num_shards(), num_devices,
        router->shard(0).index().grid().num_cells(),
        router->shard(0).index().grid().psi());
    if (router->device(0).fault_injector().armed()) {
      std::printf("fault injection armed on every shard: %s\n",
                  router->device(0).fault_injector().spec().c_str());
    }
  } else {
    devices = std::make_unique<gpusim::DeviceSet>(num_devices, device_config);
    auto built = server::QueryServer::Create(&*graph, core::GGridOptions{},
                                             devices.get(), server_options);
    if (!built.ok()) {
      std::fprintf(stderr, "failed to build index: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    single = std::move(built).ValueOrDie();
    std::printf(
        "G-Grid ready: %u cells (psi=%u), %u device(s). Type 'help' for "
        "commands.\n",
        single->index().grid().num_cells(), single->index().grid().psi(),
        num_devices);
    if (devices->device(0).fault_injector().armed()) {
      std::printf("fault injection armed: %s\n",
                  devices->device(0).fault_injector().spec().c_str());
    }
  }

  // Every command below runs against whichever front end was built; the
  // router exposes the same Report/Deregister/QueryKnn surface as a
  // single-engine server (that equivalence is the point — see
  // tests/test_shard_differential.cc).
  const auto report = [&](core::ObjectId object, roadnet::EdgePoint position,
                          double time) {
    if (router != nullptr) {
      router->Report(object, position, time);
    } else {
      single->Report(object, position, time);
    }
  };
  const auto deregister = [&](core::ObjectId object, double time) {
    if (router != nullptr) {
      router->Deregister(object, time);
    } else {
      single->Deregister(object, time);
    }
  };
  const auto query_knn = [&](roadnet::EdgePoint location, uint32_t k,
                             double time) {
    return router != nullptr ? router->QueryKnn(location, k, time)
                             : single->QueryKnn(location, k, time);
  };
  const auto print_stats = [&] {
    if (router != nullptr) {
      PrintRouterStats(*router);
    } else {
      PrintStats(*single);
    }
  };
  const auto dump_metrics = [&](const std::string& path) {
    return router != nullptr
               ? DumpMetrics(router->MetricsPrometheus(),
                             router->MetricsJson(), path)
               : DumpMetrics(single->MetricsPrometheus(),
                             single->MetricsJson(), path);
  };

  bool had_error = false;
  char line[512];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    unsigned long long object = 0, edge = 0, offset = 0, k = 0;
    double time = 0;
    if (std::sscanf(line, "add %llu %llu %llu %lf", &object, &edge, &offset,
                    &time) == 4) {
      if (edge >= graph->num_edges() ||
          offset > graph->edge(static_cast<roadnet::EdgeId>(edge)).weight) {
        std::printf("error: invalid edge/offset\n");
        had_error = true;
        continue;
      }
      report(static_cast<core::ObjectId>(object),
             {static_cast<roadnet::EdgeId>(edge),
              static_cast<uint32_t>(offset)},
             time);
      std::printf("ok\n");
    } else if (std::sscanf(line, "remove %llu %lf", &object, &time) == 2) {
      deregister(static_cast<core::ObjectId>(object), time);
      std::printf("ok\n");
    } else if (std::sscanf(line, "query %llu %llu %llu %lf", &edge, &offset,
                           &k, &time) == 4) {
      auto result = query_knn({static_cast<roadnet::EdgeId>(edge),
                               static_cast<uint32_t>(offset)},
                              static_cast<uint32_t>(k), time);
      if (!result.ok()) {
        std::printf("error: %s\n", result.status().ToString().c_str());
        had_error = true;
        continue;
      }
      for (const auto& entry : *result) {
        std::printf("  object %u  distance %llu\n", entry.object,
                    static_cast<unsigned long long>(entry.distance));
      }
      std::printf("%zu result(s)\n", result->size());
    } else if (std::strncmp(line, "record ", 7) == 0) {
      char file[256];
      unsigned long long objects = 0, queries = 0, kk = 0;
      double freq = 1.0;
      if (std::sscanf(line, "record %255s %llu %lf %llu %llu", file,
                      &objects, &freq, &queries, &kk) != 5) {
        std::printf("usage: record <file> <objects> <f> <queries> <k>\n");
        continue;
      }
      workload::RecordOptions options;
      options.num_objects = static_cast<uint32_t>(objects);
      options.update_frequency_hz = freq;
      options.num_queries = static_cast<uint32_t>(queries);
      options.k = static_cast<uint32_t>(kk);
      options.seed = seed;
      const auto events = workload::RecordScenario(*graph, options);
      auto status = workload::WriteTrace(events, file);
      if (status.ok()) {
        std::printf("recorded %zu events to %s\n", events.size(), file);
      } else {
        std::printf("error: %s\n", status.ToString().c_str());
        had_error = true;
      }
    } else if (std::strncmp(line, "replay ", 7) == 0) {
      char file[256];
      if (std::sscanf(line, "replay %255s", file) != 1) {
        std::printf("usage: replay <file>\n");
        continue;
      }
      auto events = workload::ReadTrace(*graph, file);
      if (!events.ok()) {
        std::printf("error: %s\n", events.status().ToString().c_str());
        had_error = true;
        continue;
      }
      util::Timer replay_timer;
      uint32_t queries_run = 0;
      uint32_t query_errors = 0;
      for (const auto& e : *events) {
        switch (e.kind) {
          case workload::TraceEvent::Kind::kUpdate:
            report(e.object, e.position, e.time);
            break;
          case workload::TraceEvent::Kind::kRemove:
            deregister(e.object, e.time);
            break;
          case workload::TraceEvent::Kind::kQuery: {
            auto result = query_knn(e.position, e.k, e.time);
            if (!result.ok()) {
              std::printf("error: %s\n",
                          result.status().ToString().c_str());
              ++query_errors;
              had_error = true;
            } else {
              ++queries_run;
            }
            break;
          }
        }
      }
      std::printf("replayed %zu events (%u queries, %u errors) in %.1f ms\n",
                  events->size(), queries_run, query_errors,
                  replay_timer.ElapsedMillis());
    } else if (std::sscanf(line, "trim %lf", &time) == 1) {
      util::Status status = util::Status::OK();
      if (router != nullptr) {
        // Maintenance sweeps every shard; first failure wins.
        for (uint32_t s = 0; s < router->num_shards() && status.ok(); ++s) {
          status = router->shard(s).index().TrimCaches(time);
        }
      } else {
        status = single->index().TrimCaches(time);
      }
      if (status.ok()) {
        std::printf("ok\n");
      } else {
        std::printf("error: %s\n", status.ToString().c_str());
        had_error = true;
      }
    } else if (std::strncmp(line, "stats", 5) == 0) {
      print_stats();
    } else if (std::strncmp(line, "metrics", 7) == 0) {
      if (!dump_metrics("")) had_error = true;
    } else if (std::strncmp(line, "help", 4) == 0) {
      PrintHelp();
    } else if (std::strncmp(line, "quit", 4) == 0 ||
               std::strncmp(line, "exit", 4) == 0) {
      break;
    } else if (line[0] != '\n' && line[0] != '#') {
      std::printf("unrecognized command; type 'help'\n");
    }
  }
  if (stats_on_exit) print_stats();
  if (metrics_on_exit && !dump_metrics(metrics_path)) {
    had_error = true;
  }
  return had_error ? 1 : 0;
}
