// City comparison: builds a G-Grid over each of the paper's six road
// networks (scaled instances of Table II) and reports grid geometry, index
// memory breakdown, and cold/warm query latency — the kind of capacity
// survey an operator would run before a deployment.
//
//   ./build/examples/city_comparison

#include <cstdio>

#include "core/ggrid_index.h"
#include "gpusim/device.h"
#include "util/timer.h"
#include "workload/datasets.h"
#include "workload/moving_objects.h"
#include "workload/queries.h"

int main() {
  using namespace gknn;  // NOLINT(build/namespaces)
  constexpr uint32_t kScale = 1000;  // 1/1000 of the real networks
  constexpr uint32_t kFleet = 1000;

  std::printf(
      "%-5s %9s %9s %7s %6s %12s %12s %10s %10s\n", "city", "|V|", "|E|",
      "cells", "psi", "index (CPU)", "index (GPU)", "cold query",
      "warm query");
  for (const auto& spec : workload::PaperDatasets()) {
    auto graph = workload::InstantiateDataset(spec, kScale, /*seed=*/1);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   graph.status().ToString().c_str());
      return 1;
    }
    gpusim::Device device;
    auto index = core::GGridIndex::Build(&*graph, core::GGridOptions{},
                                         &device);
    if (!index.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   index.status().ToString().c_str());
      return 1;
    }

    workload::MovingObjectSimulator fleet(
        &*graph, {.num_objects = kFleet, .seed = 2});
    std::vector<workload::LocationUpdate> updates;
    fleet.EmitFullSnapshot(&updates);
    for (const auto& u : updates) {
      if (!(*index)->Ingest(u.object_id, u.position, u.time).ok()) return 1;
    }

    const auto queries = workload::GenerateQueries(
        *graph, {.num_queries = 9, .k = 16, .seed = 3});
    // Cold: the first query pays for cleaning the cached fleet snapshot.
    util::Timer cold;
    auto first = (*index)->QueryKnn(queries[0].location, 16, 0.0);
    const double cold_ms = cold.ElapsedMillis();
    if (!first.ok()) return 1;
    // Warm: subsequent queries hit compacted lists.
    util::Timer warm;
    for (size_t i = 1; i < queries.size(); ++i) {
      auto r = (*index)->QueryKnn(queries[i].location, 16, 0.0);
      if (!r.ok()) return 1;
    }
    const double warm_ms = warm.ElapsedMillis() / (queries.size() - 1);

    const auto mem = (*index)->Memory();
    std::printf("%-5s %9u %9u %7u %6u %9.1f KB %9.1f KB %8.2fms %8.2fms\n",
                spec.name.c_str(), graph->num_vertices(), graph->num_edges(),
                (*index)->grid().num_cells(), (*index)->grid().psi(),
                mem.cpu_total() / 1024.0, mem.grid_gpu / 1024.0, cold_ms,
                warm_ms);
  }
  return 0;
}
