// Geofencing: range queries over a live fleet through the thread-safe
// QueryServer — "how many couriers are within 2 km of the depot right
// now?". Demonstrates QueryRange, the server front end, and concurrent
// producers.
//
//   ./build/examples/geofence

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "server/query_server.h"
#include "workload/moving_objects.h"
#include "workload/synthetic_network.h"

int main() {
  using namespace gknn;  // NOLINT(build/namespaces)

  // A radial city: depot rings around a central hub.
  auto city = workload::GenerateRadialCityNetwork(
      {.num_rings = 20, .num_spokes = 24, .seed = 7});
  if (!city.ok()) return 1;
  gpusim::Device device;
  auto server = server::QueryServer::Create(&*city, core::GGridOptions{},
                                            &device);
  if (!server.ok()) return 1;
  std::printf("radial city: %u vertices, %u arcs\n", city->num_vertices(),
              city->num_edges());

  // Two producer threads stream courier positions; couriers run trips.
  workload::MovingObjectSimulator fleet(
      &*city,
      {.num_objects = 300,
       .update_frequency_hz = 2.0,
       .movement = workload::MovingObjectSimulator::MovementModel::kTrips,
       .seed = 8});
  std::vector<workload::LocationUpdate> updates;
  fleet.AdvanceTo(20.0, &updates);
  std::atomic<size_t> cursor{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&] {
      for (;;) {
        const size_t i = cursor.fetch_add(1);
        if (i >= updates.size()) return;
        const auto& u = updates[i];
        (*server)->Report(u.object_id, u.position, u.time);
      }
    });
  }

  // Meanwhile, the dispatcher polls the geofence around the depot (edge 0
  // leaves the central hub).
  const roadnet::EdgePoint depot{0, 0};
  for (int poll = 0; poll < 5; ++poll) {
    for (roadnet::Distance radius : {500u, 2000u, 8000u}) {
      auto in_fence = (*server)->QueryRange(depot, radius, 20.0);
      if (!in_fence.ok()) return 1;
      if (poll == 4) {
        std::printf("radius %5llu: %3zu couriers in fence",
                    static_cast<unsigned long long>(radius),
                    in_fence->size());
        if (!in_fence->empty()) {
          std::printf(" (nearest #%u at %llu)", (*in_fence)[0].object,
                      static_cast<unsigned long long>(
                          (*in_fence)[0].distance));
        }
        std::printf("\n");
      }
    }
  }
  for (auto& p : producers) p.join();

  // Final authoritative count after all reports landed.
  auto in_fence = (*server)->QueryRange(depot, 4000, 20.0);
  if (!in_fence.ok()) return 1;
  std::printf("\nafter %zu reports: %zu couriers within 4000 of the depot\n",
              updates.size(), in_fence->size());
  std::printf("pending updates: %llu (all drained by the query)\n",
              static_cast<unsigned long long>((*server)->pending_updates()));
  return 0;
}
