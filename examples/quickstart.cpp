// Quickstart: build a G-Grid index over a small road network, report a few
// object locations, and ask for the k nearest objects.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/ggrid_index.h"
#include "gpusim/device.h"
#include "util/thread_pool.h"
#include "workload/synthetic_network.h"

int main() {
  using namespace gknn;  // NOLINT(build/namespaces)

  // 1. A road network. Real DIMACS files load via roadnet::ReadDimacsGraph;
  //    here we generate a small synthetic city (bidirectional roads,
  //    integer weights).
  auto graph = workload::GenerateSyntheticRoadNetwork(
      {.num_vertices = 2000, .seed = 7});
  if (!graph.ok()) {
    std::fprintf(stderr, "network generation failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("road network: %u vertices, %u arcs\n", graph->num_vertices(),
              graph->num_edges());

  // 2. The runtime piece: a (simulated) GPU for the
  //    refinement step.
  gpusim::Device device;

  // 3. Build the index. GGridOptions defaults are the paper's tuned values
  //    (delta_c=3, delta_v=2, delta_b=128, 2^eta=32, rho=1.8).
  auto index = core::GGridIndex::Build(&*graph, core::GGridOptions{},
                                       &device);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }
  std::printf("G-Grid: %u cells (%ux%u), psi=%u\n",
              (*index)->grid().num_cells(), (*index)->grid().grid_dim(),
              (*index)->grid().grid_dim(), (*index)->grid().psi());

  // 4. Objects report their positions as <edge, offset-from-source> pairs.
  //    Updates are cached lazily — no index maintenance happens here.
  for (core::ObjectId car = 0; car < 10; ++car) {
    const roadnet::EdgeId edge = car * 97 % graph->num_edges();
    const uint32_t offset = graph->edge(edge).weight / 2;
    if (!(*index)->Ingest(car, {edge, offset}, /*time=*/0.0).ok()) return 1;
  }
  std::printf("ingested 10 car positions (%llu messages cached, 0 kernels "
              "run so far)\n",
              static_cast<unsigned long long>((*index)->cached_messages()));

  // 5. Query: 3 nearest cars from a location on edge 5.
  auto result = (*index)->QueryKnn({5, 0}, /*k=*/3, /*t_now=*/0.0);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("3 nearest cars:\n");
  for (const auto& entry : *result) {
    std::printf("  car %u at network distance %llu\n", entry.object,
                static_cast<unsigned long long>(entry.distance));
  }
  return 0;
}
