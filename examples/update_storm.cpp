// Update storm: demonstrates the paper's central claim — lazy update
// handling keeps ingestion O(1) per message no matter how fast the fleet
// reports, while an eager index pays maintenance on every message.
//
// The example ingests bursts of increasing intensity into two G-Grid
// instances (lazy vs the eager-ablation mode) and into a V-Tree, then
// issues one query to show answers are identical either way.
//
//   ./build/examples/update_storm

#include <cstdio>
#include <vector>

#include "baselines/vtree.h"
#include "core/ggrid_index.h"
#include "gpusim/device.h"
#include "util/timer.h"
#include "workload/moving_objects.h"
#include "workload/synthetic_network.h"

int main() {
  using namespace gknn;  // NOLINT(build/namespaces)

  auto graph = workload::GenerateSyntheticRoadNetwork(
      {.num_vertices = 4000, .seed = 11});
  if (!graph.ok()) return 1;

  gpusim::Device device;

  auto lazy = core::GGridIndex::Build(&*graph, core::GGridOptions{}, &device);
  core::GGridOptions eager_options;
  eager_options.eager_updates = true;
  auto eager = core::GGridIndex::Build(&*graph, eager_options, &device);
  auto vtree = baselines::VTree::Build(&*graph, baselines::VTree::Options{});
  if (!lazy.ok() || !eager.ok() || !vtree.ok()) return 1;

  std::printf("%-18s %14s %14s %14s\n", "burst", "lazy G-Grid",
              "eager G-Grid", "V-Tree");
  for (uint32_t frequency : {1u, 4u, 16u}) {
    workload::MovingObjectSimulator fleet(
        &*graph, {.num_objects = 1000,
                  .update_frequency_hz = static_cast<double>(frequency),
                  .seed = 5});
    std::vector<workload::LocationUpdate> updates;
    fleet.AdvanceTo(2.0, &updates);

    util::Timer lazy_timer;
    for (const auto& u : updates) {
      if (!(*lazy)->Ingest(u.object_id, u.position, u.time).ok()) return 1;
    }
    const double lazy_ms = lazy_timer.ElapsedMillis();

    util::Timer eager_timer;
    for (const auto& u : updates) {
      if (!(*eager)->Ingest(u.object_id, u.position, u.time).ok()) return 1;
    }
    const double eager_ms = eager_timer.ElapsedMillis();

    util::Timer vtree_timer;
    for (const auto& u : updates) {
      (*vtree)->Ingest(u.object_id, u.position, u.time);
    }
    const double vtree_ms = vtree_timer.ElapsedMillis();

    char label[64];
    std::snprintf(label, sizeof(label), "%zu msgs (f=%u/s)", updates.size(),
                  frequency);
    std::printf("%-18s %12.2fms %12.2fms %12.2fms\n", label, lazy_ms,
                eager_ms, vtree_ms);
  }

  // The lazy index answers exactly like the eager one.
  auto a = (*lazy)->QueryKnn({3, 0}, 5, 2.0);
  auto b = (*eager)->QueryKnn({3, 0}, 5, 2.0);
  if (!a.ok() || !b.ok() || a->size() != b->size()) return 1;
  std::printf("\n5-NN answers (lazy vs eager):\n");
  for (size_t i = 0; i < a->size(); ++i) {
    std::printf("  #%u d=%llu   |   #%u d=%llu\n", (*a)[i].object,
                static_cast<unsigned long long>((*a)[i].distance),
                (*b)[i].object,
                static_cast<unsigned long long>((*b)[i].distance));
  }
  std::printf("\ncached messages still pending in the lazy index: %llu\n",
              static_cast<unsigned long long>((*lazy)->cached_messages()));
  return 0;
}
