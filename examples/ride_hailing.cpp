// Ride hailing: the paper's motivating scenario (§I, Fig. 1). A fleet of
// cars moves on the road network reporting positions once per second; ride
// requests arrive and each is answered with the 3 nearest cars at request
// time.
//
//   ./build/examples/ride_hailing

#include <cstdio>
#include <vector>

#include "core/ggrid_index.h"
#include "gpusim/device.h"
#include "util/timer.h"
#include "workload/moving_objects.h"
#include "workload/queries.h"
#include "workload/synthetic_network.h"

int main() {
  using namespace gknn;  // NOLINT(build/namespaces)

  auto graph = workload::GenerateSyntheticRoadNetwork(
      {.num_vertices = 5000, .seed = 2026});
  if (!graph.ok()) return 1;

  gpusim::Device device;
  auto index = core::GGridIndex::Build(&*graph, core::GGridOptions{},
                                       &device);
  if (!index.ok()) return 1;

  // A fleet of 500 cars reporting once per second.
  workload::MovingObjectSimulator fleet(
      &*graph, {.num_objects = 500, .update_frequency_hz = 1.0, .seed = 1});
  std::vector<workload::LocationUpdate> updates;
  fleet.EmitFullSnapshot(&updates);
  for (const auto& u : updates) {
    if (!(*index)->Ingest(u.object_id, u.position, u.time).ok()) return 1;
  }
  std::printf("fleet of %u cars on a %u-vertex network\n",
              fleet.num_objects(), graph->num_vertices());

  // Ride requests: one every 400 ms for 20 seconds.
  const auto requests = workload::GenerateQueries(
      *graph, {.num_queries = 50,
               .k = 3,
               .start_time = 1.0,
               .interval_seconds = 0.4,
               .seed = 99});

  util::Timer wall;
  double total_gpu = 0;
  uint64_t total_updates = 0;
  for (const auto& request : requests) {
    // The world moves on; cars keep reporting.
    updates.clear();
    fleet.AdvanceTo(request.time, &updates);
    for (const auto& u : updates) {
      if (!(*index)->Ingest(u.object_id, u.position, u.time).ok()) return 1;
    }
    total_updates += updates.size();

    core::KnnStats stats;
    auto cars = (*index)->QueryKnn(request.location, request.k, request.time,
                                   &stats);
    if (!cars.ok()) {
      std::fprintf(stderr, "dispatch failed: %s\n",
                   cars.status().ToString().c_str());
      return 1;
    }
    total_gpu += stats.gpu_seconds;
    if (&request == &requests.front() || &request == &requests.back()) {
      std::printf("t=%5.1fs request on edge %u -> cars:", request.time,
                  request.location.edge);
      for (const auto& car : *cars) {
        std::printf(" #%u(d=%llu)", car.object,
                    static_cast<unsigned long long>(car.distance));
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nserved %zu requests, absorbed %llu location updates in %.1f ms "
      "wall\n",
      requests.size(), static_cast<unsigned long long>(total_updates),
      wall.ElapsedMillis());
  std::printf("modeled GPU time across all dispatches: %.2f ms\n",
              total_gpu * 1e3);
  std::printf("tombstones written while cars crossed cells: %llu\n",
              static_cast<unsigned long long>(
                  (*index)->counters().tombstones_written));
  return 0;
}
